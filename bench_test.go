// Benchmarks regenerating every table and figure of the paper's
// evaluation (run: go test -bench=. -benchmem). Each benchmark executes
// the corresponding experiment end to end in virtual time and reports
// the headline quantity as a custom metric; the rendered tables are
// logged with -v. Ablation benchmarks cover the design choices DESIGN.md
// calls out (group-marked vs global GC, zero-copy receive, write-back
// cache, checkpoint interval).
package repro

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/fabrics"
	"repro/internal/hostif"
	"repro/internal/landscape"
	"repro/internal/lightlsm"
	"repro/internal/lsm"
	"repro/internal/netfault"
	"repro/internal/oxblock"
	"repro/internal/vclock"
)

// benchFig3 is a bench-scale Figure 3 grid (≈½ of the default).
func benchFig3() exp.Fig3Config {
	cfg := exp.DefaultFig3()
	cfg.FailPoints = []vclock.Duration{
		5 * vclock.Second, 10 * vclock.Second, 15 * vclock.Second,
		20 * vclock.Second, 25 * vclock.Second, 30 * vclock.Second,
	}
	return cfg
}

func BenchmarkFigure3Recovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := exp.Figure3(benchFig3())
		if err != nil {
			b.Fatal(err)
		}
		last := points[len(points)-1]
		b.ReportMetric(points[5].RecoverySecs, "noCkptRecovery_s")
		b.ReportMetric(last.RecoverySecs, "ci30Recovery_s")
		if i == 0 {
			b.Log("\n" + exp.Figure3Table(points).Render())
		}
	}
}

// benchFig5 is a bench-scale Figure 5/6 configuration.
func benchFig5() exp.Fig5Config {
	return exp.Fig5Config{
		ClientCounts:     []int{1, 2, 4, 8},
		FillOpsPerClient: 16000,
		ReadOpsPerClient: 2000,
		Seed:             7,
		TimelineBucket:   100 * vclock.Millisecond,
		PagesPerBlock:    12,
		MemtableMB:       8,
	}
}

func BenchmarkFigure5DbBench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := exp.Figure5(benchFig5())
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Clients == 1 && c.Workload == 0 && c.Placement == 0 {
				b.ReportMetric(c.KOps, "fillH1_kops")
			}
		}
		if i == 0 {
			b.Log("\n" + exp.Figure5Table(cells).Render())
		}
	}
}

// BenchmarkFigure5DbBenchNotify is the notification-mode twin of
// BenchmarkFigure5DbBench: the host-interface client consumes
// completions through interrupt-style notification instead of polling
// Reap. Virtual-time results are identical by the timing-equality
// contract; the entry exists so benchcheck tracks the notification
// path's allocation budget separately.
func BenchmarkFigure5DbBenchNotify(b *testing.B) {
	cfg := benchFig5()
	cfg.Notify = true
	for i := 0; i < b.N; i++ {
		cells, err := exp.Figure5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Clients == 1 && c.Workload == 0 && c.Placement == 0 {
				b.ReportMetric(c.KOps, "fillH1_kops")
			}
		}
		if i == 0 {
			b.Log("\n" + exp.Figure5Table(cells).Render())
		}
	}
}

func BenchmarkFigure6Timeline(b *testing.B) {
	cfg := benchFig5()
	cfg.ClientCounts = []int{1, 8}
	for i := 0; i < b.N; i++ {
		cells, err := exp.Figure5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exp.Figure6Table(cells, 0).Render())
			b.Log("\n" + exp.Figure6Table(cells, 1).Render())
		}
	}
}

func BenchmarkFigure7DataCopies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := exp.Figure7(exp.DefaultFig7())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].Utilization*100, "util1thread_pct")
		b.ReportMetric(points[1].Utilization*100, "util2threads_pct")
		if i == 0 {
			b.Log("\n" + exp.Figure7Table(points).Render())
		}
	}
}

func BenchmarkGCLocalityTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := exp.GCLocality(exp.DefaultGCLocality())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Channels == 16 {
				b.ReportMetric(p.Unaffected*100, "unaffected16ch_pct")
			}
		}
		if i == 0 {
			b.Log("\n" + exp.GCLocalityTable(points).Render())
		}
	}
}

func BenchmarkUnitOfWriteTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.UnitOfWrite()
		if len(rows) != 12 {
			b.Fatal("table incomplete")
		}
		if i == 0 {
			b.Log("\n" + exp.UnitOfWriteTable(rows).Render())
		}
	}
}

func BenchmarkFigure1Landscape(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := landscape.Render()
		if len(out) == 0 {
			b.Fatal("empty landscape")
		}
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

// BenchmarkQDSweep regenerates the queue-depth sweep: throughput and
// per-command-type latency percentiles through one host-interface
// queue pair.
func BenchmarkQDSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := exp.QDSweep(exp.DefaultQDSweep())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].KIOPS, "qd1_kIOPS")
		b.ReportMetric(points[len(points)-1].KIOPS, "qd32_kIOPS")
		if i == 0 {
			b.Log("\n" + exp.QDSweepTable(points).Render())
		}
	}
}

// BenchmarkTenants regenerates the multi-tenant namespace scenario.
func BenchmarkTenants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := exp.Tenants(exp.DefaultTenants())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].KIOPS, "tenant0_kIOPS")
		if i == 0 {
			b.Log("\n" + exp.TenantsTable(points).Render())
		}
	}
}

// BenchmarkTenantsQoS regenerates the asymmetric multi-tenant QoS
// scenario: WRR classes, unequal load, shared-vs-solo p99 isolation.
func BenchmarkTenantsQoS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := exp.TenantsQoS(exp.DefaultTenantsQoS())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].Lat.Percentile(99).Seconds()*1000, "highP99_ms")
		b.ReportMetric(points[3].Lat.Percentile(99).Seconds()*1000, "lowP99_ms")
		if i == 0 {
			b.Log("\n" + exp.TenantsQoSTable(points).Render())
		}
	}
}

// BenchmarkWRRSweep regenerates the arbitration-class sweep.
func BenchmarkWRRSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := exp.WRRSweep(exp.DefaultWRRSweep())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].Lat.Percentile(99).Seconds()*1000, "urgentP99_ms")
		b.ReportMetric(points[len(points)-1].Lat.Percentile(99).Seconds()*1000, "lowP99_ms")
		if i == 0 {
			b.Log("\n" + exp.WRRSweepTable(points).Render())
		}
	}
}

// BenchmarkFabricLoopback measures the fabric transport's wall-clock
// and allocation overhead: submit-to-completion round trips through
// the full wire path (encode, CRC, frame the doorbell batch, server
// drain, completion push, decode) over the in-process loopback. Each
// iteration is 64 pairs of one 4 KB write and one 4 KB read, so
// allocs/op amortizes pool warm-up noise; the steady-state figure is
// the tracked budget — the wire layer is designed to recycle every
// frame and data buffer.
func BenchmarkFabricLoopback(b *testing.B) {
	_, ctrl, err := exp.DefaultRig().Build()
	if err != nil {
		b.Fatal(err)
	}
	d, _, now, err := oxblock.New(ctrl, oxblock.Config{LogicalPages: 4096}, 0)
	if err != nil {
		b.Fatal(err)
	}
	host := hostif.NewHost(ctrl, hostif.HostConfig{ChargeHostLink: true})
	nsid, err := host.Admin().AttachNamespace(now, hostif.NewBlockNamespace(d))
	if err != nil {
		b.Fatal(err)
	}
	srv := fabrics.NewServer(host)
	defer srv.Close()
	qp, err := fabrics.Loopback(srv).QueuePair(now, 1, hostif.ClassMedium, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer qp.Close()

	const span = 64 // pages cycled through
	data := make([]byte, 4096)
	at := now
	roundtrip := func(write bool, lpn int64) {
		cmd := qp.AcquireCommand()
		if write {
			cmd.Op, cmd.NSID, cmd.LPN, cmd.Data = hostif.OpWrite, nsid, lpn, data
		} else {
			cmd.Op, cmd.NSID, cmd.LPN, cmd.Pages = hostif.OpRead, nsid, lpn, 1
		}
		if err := qp.Push(at, cmd); err != nil {
			b.Fatal(err)
		}
		comp := qp.MustReap()
		if comp.Err != nil {
			b.Fatal(comp.Err)
		}
		at = comp.Done
	}
	// Warm-up: map the span and fill the frame/data buffer pools.
	for lpn := int64(0); lpn < span; lpn++ {
		roundtrip(true, lpn)
		roundtrip(false, lpn)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lpn := int64(0); lpn < span; lpn++ {
			roundtrip(true, lpn)
			roundtrip(false, lpn)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*2*span/b.Elapsed().Seconds()/1000, "wire_kops_wall")
}

// BenchmarkFabricReconnect measures the session-resumption path: the
// netfault proxy kills the connection on every fourth data frame
// (looping), so each iteration's four write round trips include one
// full redial — dial, token re-handshake, un-acked command replay,
// dedup'd completion redelivery. The delta against BenchmarkFabricLoopback
// is the price of surviving a connection loss.
func BenchmarkFabricReconnect(b *testing.B) {
	_, ctrl, err := exp.DefaultRig().Build()
	if err != nil {
		b.Fatal(err)
	}
	d, _, now, err := oxblock.New(ctrl, oxblock.Config{LogicalPages: 4096}, 0)
	if err != nil {
		b.Fatal(err)
	}
	host := hostif.NewHost(ctrl, hostif.HostConfig{ChargeHostLink: true})
	nsid, err := host.Admin().AttachNamespace(now, hostif.NewBlockNamespace(d))
	if err != nil {
		b.Fatal(err)
	}
	srv := fabrics.NewServer(host)
	defer srv.Close()
	proxy := netfault.New(fabrics.LoopbackDial(srv), netfault.Config{
		Script: []netfault.Event{{After: 4, Action: netfault.Kill}},
		Loop:   true,
	})
	cli := fabrics.NewClient(proxy.Dial).WithConfig(fabrics.Config{
		Redial: fabrics.RedialConfig{MaxAttempts: 10, Base: 50 * time.Microsecond, Cap: time.Millisecond, Seed: 3},
	})
	qp, err := cli.QueuePair(now, 1, hostif.ClassMedium, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer qp.Close()

	const span = 64
	data := make([]byte, 4096)
	at := now
	write := func(lpn int64) {
		cmd := qp.AcquireCommand()
		cmd.Op, cmd.NSID, cmd.LPN, cmd.Data = hostif.OpWrite, nsid, lpn, data
		if err := qp.Push(at, cmd); err != nil {
			b.Fatal(err)
		}
		comp := qp.MustReap()
		if comp.Err != nil {
			b.Fatal(comp.Err)
		}
		at = comp.Done
	}
	// Warm-up: map the span, fill the pools, take the first kill.
	for lpn := int64(0); lpn < span; lpn++ {
		write(lpn)
	}

	warm := qp.Stats().Redials
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 4; k++ {
			write(int64((i*4 + k) % span))
		}
	}
	b.StopTimer()
	redials := qp.Stats().Redials - warm
	b.ReportMetric(float64(redials)/float64(b.N), "redials_per_op")
}

// BenchmarkHostPipelinedExecutor measures the pipelined execution
// engine against the serial reference on the scale scenario's widest
// geometry: 8 parallel units of disjoint-group zone appends, serial vs
// a worker pool sized to the machine (minimum 2 workers, the smallest
// pool that can overlap). Virtual-time results are bit-identical by the
// determinism contract (exp.Scale fails the run otherwise); the
// benchmark tracks wall-clock. speedup_x is serial wall over pipelined
// wall — above 1 when GOMAXPROCS allows real parallelism, around 1 on
// a single-core runner where overlap cannot buy wall-clock time.
func BenchmarkHostPipelinedExecutor(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	cfg := exp.DefaultScale()
	cfg.PUCounts = []int{8}
	cfg.Workers = []int{workers}
	for i := 0; i < b.N; i++ {
		points, err := exp.Scale(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var serial, pipelined exp.ScalePoint
		for _, p := range points {
			if p.Executor == hostif.ExecutorPipelined {
				pipelined = p
			} else {
				serial = p
			}
		}
		b.ReportMetric(float64(serial.Wall.Microseconds())/1000, "serial_ms")
		b.ReportMetric(float64(pipelined.Wall.Microseconds())/1000, "pipelined_ms")
		b.ReportMetric(pipelined.Speedup, "speedup_x")
		b.ReportMetric(float64(pipelined.Overlapped), "overlapped")
		if i == 0 {
			b.Log("\n" + exp.ScaleTable(points).Render())
		}
	}
}

// BenchmarkScaleSweep regenerates the full worker × PU sweep table.
func BenchmarkScaleSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := exp.Scale(exp.DefaultScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exp.ScaleTable(points).Render())
		}
	}
}

// BenchmarkScaleSweep512 is the production-scale headline: the 512-PU
// terabyte-class geometry (64 groups × 8 PUs) under the batched
// executor, serial-verified on every run. metadata_bytes_per_chunk is
// the packed per-chunk device footprint (the unpacked struct was 64 B;
// the packed one is 24 B plus slot-table overhead) and acq_per_grant
// is how many arbitration lock acquisitions a grant costs at batch 16
// — the two gated compaction metrics, tracked alongside wall clock.
func BenchmarkScaleSweep512(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	cfg := exp.DefaultScale()
	cfg.PUCounts = []int{512}
	cfg.Workers = []int{workers}
	cfg.BatchSizes = []int{hostif.DefaultBatchSize}
	for i := 0; i < b.N; i++ {
		points, err := exp.Scale(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var batched exp.ScalePoint
		for _, p := range points {
			if p.Executor == hostif.ExecutorBatched {
				batched = p
			}
		}
		b.ReportMetric(batched.MetaBytesPerChunk, "metadata_bytes_per_chunk")
		b.ReportMetric(batched.AcqPerGrant, "acq_per_grant")
		b.ReportMetric(float64(batched.Wall.Microseconds())/1000, "batched_ms")
		b.ReportMetric(batched.VirtMBps, "virt_MBps")
		if i == 0 {
			b.Log("\n" + exp.ScaleTable(points).Render())
		}
	}
}

// BenchmarkPoolAcquire measures vclock.Pool's hot path: one Acquire on
// a 512-member pool per op (the indexed min-heap replaces the O(n)
// scan; allocs/op must stay 0).
func BenchmarkPoolAcquire(b *testing.B) {
	p := vclock.NewPool("bench", 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Acquire(vclock.Time(i), vclock.Microsecond)
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationGlobalGC disables group marking: interference spreads
// across all channels instead of staying on the marked one (§4.3).
func BenchmarkAblationGlobalGC(b *testing.B) {
	cfg := exp.DefaultGCLocality()
	cfg.ChannelCounts = []int{8}
	cfg.GlobalGC = true
	for i := 0; i < b.N; i++ {
		points, err := exp.GCLocality(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].Unaffected*100, "unaffectedGlobalGC_pct")
		if i == 0 {
			b.Log("\n" + exp.GCLocalityTable(points).Render())
		}
	}
}

// BenchmarkAblationZeroCopy measures §4.4's co-design hint: eliding the
// network→FTL copy (AF_XDP-style) raises the saturation throughput.
func BenchmarkAblationZeroCopy(b *testing.B) {
	cfg := exp.DefaultFig7()
	cfg.ThreadCounts = []int{2}
	for i := 0; i < b.N; i++ {
		with, err := exp.Figure7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		zc := cfg
		zc.ZeroCopyRX = true
		without, err := exp.Figure7(zc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(with[0].MBps, "copies_MBps")
		b.ReportMetric(without[0].MBps, "zerocopy_MBps")
	}
}

// BenchmarkAblationCheckpointInterval sweeps Ci beyond the paper's two
// settings to show the recovery/checkpoint-overhead trade-off.
// BenchmarkCrashRecovery runs a reduced crashstorm — power-cut
// kill/recover cycles on file-backed devices across all four FTLs —
// and reports the total virtual recovery time and replay volume. It
// guards the wall-clock cost of the durable backend's restore path and
// the allocation discipline of WAL replay.
func BenchmarkCrashRecovery(b *testing.B) {
	cfg := exp.DefaultCrashstorm()
	cfg.Cycles = 10
	for i := 0; i < b.N; i++ {
		points, err := exp.Crashstorm(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var recoveryMs float64
		var recs int64
		for _, p := range points {
			recoveryMs += p.RecoveryMs
			recs += p.ReplayRecs
		}
		b.ReportMetric(recoveryMs, "recoveryVirt_ms")
		b.ReportMetric(float64(recs), "replayedRecords")
		if i == 0 {
			b.Log("\n" + exp.CrashstormTable(points).Render())
		}
	}
}

func BenchmarkAblationCheckpointInterval(b *testing.B) {
	cfg := benchFig3()
	cfg.FailPoints = []vclock.Duration{20 * vclock.Second}
	cfg.Intervals = []vclock.Duration{
		0, 2 * vclock.Second, 5 * vclock.Second, 10 * vclock.Second, 30 * vclock.Second,
	}
	for i := 0; i < b.N; i++ {
		points, err := exp.Figure3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				b.Logf("Ci=%v: recovery %.2fs (replayed %d, checkpoints %d)",
					p.Interval, p.RecoverySecs, p.Replayed, p.Checkpoints)
			}
		}
	}
}

// BenchmarkOffloadGet measures the computational-storage point-lookup
// paths side by side: each iteration issues 64 offloaded gets
// (OpOffloadGet — the key goes down, only flags+value come back) and
// 64 host-side gets (the whole SSTable block crosses the host link)
// against identically pre-filled LightLSM-backed databases. Wall-clock
// and allocs/op track the offload machinery's overhead; the custom
// metrics report each path's virtual latency per lookup.
func BenchmarkOffloadGet(b *testing.B) {
	const keys, valueSize, getsPerOp = 512, 4096, 64
	build := func(offloaded bool) (*lsm.DB, vclock.Time) {
		_, ctrl, err := exp.DefaultRig().Build()
		if err != nil {
			b.Fatal(err)
		}
		env, err := lightlsm.New(ctrl, lightlsm.Config{TableChunks: 1})
		if err != nil {
			b.Fatal(err)
		}
		host := hostif.NewHost(ctrl, hostif.HostConfig{ChargeHostLink: true})
		cli, err := hostif.AttachLSM(host, env)
		if err != nil {
			b.Fatal(err)
		}
		opts := lsm.Options{Env: cli, MemtableBytes: 256 << 10, Seed: 7}
		if offloaded {
			opts.Lookup = cli.OffloadGet
		}
		db, err := lsm.Open(opts)
		if err != nil {
			b.Fatal(err)
		}
		value := make([]byte, valueSize)
		rng := rand.New(rand.NewSource(11))
		var now vclock.Time
		for i := 0; i < keys; i++ {
			rng.Read(value)
			if now, err = db.Put(now, []byte(fmt.Sprintf("key-%04d", i)), value); err != nil {
				b.Fatal(err)
			}
		}
		if now, err = db.Flush(now); err != nil {
			b.Fatal(err)
		}
		return db, db.WaitIdle(now)
	}
	hostDB, hostNow := build(false)
	devDB, devNow := build(true)
	lookups := func(db *lsm.DB, now vclock.Time, round int) (vclock.Time, vclock.Duration) {
		start := now
		for k := 0; k < getsPerOp; k++ {
			key := []byte(fmt.Sprintf("key-%04d", (round*getsPerOp+k)*7%keys))
			_, end, err := db.Get(now, key)
			if err != nil {
				b.Fatal(err)
			}
			now = end
		}
		return now, vclock.Duration(now-start) / getsPerOp
	}
	b.ResetTimer()
	var hostLat, devLat vclock.Duration
	for i := 0; i < b.N; i++ {
		hostNow, hostLat = lookups(hostDB, hostNow, i)
		devNow, devLat = lookups(devDB, devNow, i)
	}
	b.ReportMetric(hostLat.Seconds()*1e6, "hostGet_us")
	b.ReportMetric(devLat.Seconds()*1e6, "devGet_us")
}
