// Command benchcheck guards the benchmark trajectory: it runs the
// tracked benchmarks with -benchmem, compares allocs/op and wall-clock
// (sec/op) against the latest entry in BENCH_baseline.json, and exits
// non-zero on a regression beyond either threshold. CI runs it on
// every push so an allocation or wall-clock regression on the hot path
// fails the build instead of quietly eroding the perf-PR trail.
//
// Thresholds are separate because the failure modes are: allocs/op is
// machine-independent and gated tightly (-threshold, default 20%);
// ns/op measures the runner and is gated loosely (-wall-threshold,
// default 100%, i.e. fail only past 2x) so scheduler noise passes but
// an accidental serialization or busy-wait does not.
// metadata_bytes_per_chunk (reported by BenchmarkScaleSweep512) is
// machine-independent like allocs/op and shares its tight threshold:
// a struct field added to the device's per-chunk metadata without
// re-baselining fails the build.
//
// Usage:
//
//	benchcheck [-baseline BENCH_baseline.json] [-threshold 0.20] [-wall-threshold 1.0] [-json]
//
// -json prints the measured numbers as a baseline-entry fragment, ready
// to append to BENCH_baseline.json when a perf PR moves the needle.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// tracked are the benchmarks recorded in BENCH_baseline.json.
var tracked = []string{
	"BenchmarkFigure5DbBench",
	"BenchmarkFigure5DbBenchNotify",
	"BenchmarkFigure3Recovery",
	"BenchmarkFigure7DataCopies",
	"BenchmarkHostPipelinedExecutor",
	"BenchmarkCrashRecovery",
	"BenchmarkFabricLoopback",
	"BenchmarkFabricReconnect",
	"BenchmarkOffloadGet",
	"BenchmarkScaleSweep512",
	"BenchmarkPoolAcquire",
}

type baseline struct {
	Description string  `json:"description"`
	Entries     []entry `json:"entries"`
}

type entry struct {
	Date       string                     `json:"date"`
	Label      string                     `json:"label"`
	Benchmarks map[string]json.RawMessage `json:"benchmarks"`
}

// benchNums holds one benchmark's measurements keyed like the baseline
// file: ns_per_op / bytes_per_op / allocs_per_op plus any custom
// metrics the benchmark reports (fillH1_kops, ci30Recovery_s, ...), so
// a -json fragment is appendable to BENCH_baseline.json as-is.
type benchNums map[string]float64

// metricKeys maps go-test units to baseline field names; custom metric
// units (which are already snake_case names) pass through unchanged.
var metricKeys = map[string]string{
	"ns/op":     "ns_per_op",
	"B/op":      "bytes_per_op",
	"allocs/op": "allocs_per_op",
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline trajectory file")
	threshold := flag.Float64("threshold", 0.20, "allowed fractional allocs/op regression")
	wallThreshold := flag.Float64("wall-threshold", 1.0, "allowed fractional wall-clock (sec/op) regression")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime value")
	asJSON := flag.Bool("json", false, "print measured numbers as a baseline-entry fragment")
	flag.Parse()

	base, err := loadBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	if len(base.Entries) == 0 {
		fatal(fmt.Errorf("%s has no entries", *baselinePath))
	}
	last := base.Entries[len(base.Entries)-1]

	measured, err := runBenchmarks(*benchtime)
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		out, _ := json.MarshalIndent(measured, "", "  ")
		fmt.Println(string(out))
	}

	failed := false
	for _, name := range tracked {
		got, ok := measured[name]
		if !ok {
			fmt.Printf("FAIL %-28s did not run\n", name)
			failed = true
			continue
		}
		var want benchNums
		raw, ok := last.Benchmarks[name]
		if !ok {
			fmt.Printf("SKIP %-28s not in baseline entry %q\n", name, last.Label)
			continue
		}
		if err := json.Unmarshal(raw, &want); err != nil {
			fatal(fmt.Errorf("baseline %s: %w", name, err))
		}
		limit := want["allocs_per_op"] * (1 + *threshold)
		status := "ok  "
		if got["allocs_per_op"] > limit {
			status = "FAIL"
			failed = true
		}
		metaNote := ""
		if base, ok := want["metadata_bytes_per_chunk"]; ok && base > 0 {
			metaLimit := base * (1 + *threshold)
			metaNote = fmt.Sprintf("  meta B/chunk %.1f (baseline %.1f, limit %.1f)", got["metadata_bytes_per_chunk"], base, metaLimit)
			if got["metadata_bytes_per_chunk"] > metaLimit {
				status = "FAIL"
				failed = true
				metaNote += "  METADATA REGRESSION"
			}
		}
		wallNote := ""
		if base, ok := want["ns_per_op"]; ok && base > 0 {
			wallLimit := base * (1 + *wallThreshold)
			wallNote = fmt.Sprintf("  (baseline %.2fs, limit %.2fs)", base/1e9, wallLimit/1e9)
			if got["ns_per_op"] > wallLimit {
				status = "FAIL"
				failed = true
				wallNote += "  WALL REGRESSION"
			}
		}
		fmt.Printf("%s %-30s allocs/op %10.0f (baseline %10.0f, limit %10.0f)  ns/op %.2fs%s%s\n",
			status, name, got["allocs_per_op"], want["allocs_per_op"], limit, got["ns_per_op"]/1e9, wallNote, metaNote)
	}
	if failed {
		fmt.Printf("\nallocs/op regressed more than %.0f%% or wall-clock more than %.0f%% against baseline entry %q\n",
			*threshold*100, *wallThreshold*100, last.Label)
		os.Exit(1)
	}
}

func loadBaseline(path string) (baseline, error) {
	var b baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	return b, json.Unmarshal(data, &b)
}

// runBenchmarks executes the tracked benchmarks once and parses the
// standard testing output: "BenchmarkName-N  iters  X ns/op ... Y B/op
// Z allocs/op" with any custom metrics in between.
func runBenchmarks(benchtime string) (map[string]benchNums, error) {
	pattern := "^(" + strings.Join(tracked, "|") + ")$"
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", pattern, "-benchmem", "-benchtime", benchtime, ".")
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test -bench: %w\n%s", err, out.String())
	}
	res := make(map[string]benchNums)
	for _, line := range strings.Split(out.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.SplitN(fields[0], "-", 2)[0]
		n := make(benchNums)
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			key := fields[i+1]
			if k, ok := metricKeys[key]; ok {
				key = k
			}
			n[key] = v
		}
		if len(n) > 0 {
			res[name] = n
		}
	}
	return res, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
