// Command dbbench is the db_bench clone of §4.3: it runs
// fill-sequential, read-sequential and read-random over the miniature
// RocksDB on a LightLSM environment.
//
// Usage:
//
//	dbbench -clients 4 -ops 20000 -placement vertical
//	dbbench -addr 127.0.0.1:7710    # remote LightLSM served by oxfabd -ftl lsm
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dbbench"
	"repro/internal/exp"
	"repro/internal/fabrics"
	"repro/internal/hostif"
	"repro/internal/lightlsm"
	"repro/internal/lsm"
	"repro/internal/metrics"
)

func main() {
	clients := flag.Int("clients", 1, "client threads")
	ops := flag.Int("ops", 16000, "fill operations per client (1 KB values)")
	readOps := flag.Int("readops", 2000, "read operations per client")
	placement := flag.String("placement", "horizontal", "SSTable placement: horizontal | vertical (in-process rig only)")
	seed := flag.Int64("seed", 7, "workload seed")
	addr := flag.String("addr", "", "oxfabd address: drive a served LightLSM namespace (oxfabd -ftl lsm) over the fabric")
	nsid := flag.Int("nsid", 1, "served namespace to drive in -addr mode")
	flag.Parse()

	var (
		env  lsm.Env
		desc string
	)
	if *addr != "" {
		// Remote mode: every SSTable block the database flushes or
		// reads is a typed command over the fabric connection; the
		// placement policy lives with the server.
		cli, err := fabrics.Dial(*addr).OpenLSM(0, *nsid)
		fail(err)
		defer cli.Close()
		env = cli
		desc = fmt.Sprintf("fabric %s nsid %d", *addr, *nsid)
	} else {
		p := lightlsm.Horizontal
		if *placement == "vertical" {
			p = lightlsm.Vertical
		}
		rig := exp.DefaultRig()
		rig.PagesPerBlock = 12
		rig.CacheMB = 4
		_, ctrl, err := rig.Build()
		fail(err)
		lenv, err := lightlsm.New(ctrl, lightlsm.Config{Placement: p})
		fail(err)
		// The database reaches the FTL through host-interface queue
		// pairs; attachment and queue-pair creation are admin-queue
		// commands.
		host := hostif.NewHost(ctrl, hostif.HostConfig{})
		cli, err := hostif.AttachLSM(host, lenv)
		fail(err)
		env = cli
		desc = fmt.Sprintf("%s placement", p)
	}
	db, err := lsm.Open(lsm.Options{
		Env:           env,
		MemtableBytes: 8 << 20,
		MaxImmutables: 6,
		FlushWorkers:  4,
		RateLimitMBps: 400,
		Seed:          *seed,
	})
	fail(err)

	cfg := dbbench.Config{Clients: *clients, OpsPerClient: *ops, Seed: *seed}
	fmt.Printf("db_bench on LightLSM (%s), %d clients, 16 B keys, 1 KB values\n\n", desc, *clients)

	fill, err := dbbench.Run(db, dbbench.FillSequential, cfg, 0)
	fail(err)
	report(fill)
	start := db.WaitIdle(fill.End)

	cfg.OpsPerClient = *readOps
	for _, w := range []dbbench.Workload{dbbench.ReadSequential, dbbench.ReadRandom} {
		res, err := dbbench.Run(db, w, cfg, start)
		fail(err)
		report(res)
	}
	s := db.Stats()
	fmt.Printf("\nlevels L0/L1/L2: %d/%d/%d  flushes: %d  compactions: %d  stall: %v\n",
		s.TablesL0, s.TablesL1, s.TablesL2, s.Flushes, s.Compactions, s.StallTime)
}

func report(r dbbench.Result) {
	fmt.Printf("%-16s %8d ops in %8.3fs virtual  →  %s kops/s\n",
		r.Workload, r.Ops, r.Elapsed().Seconds(), metrics.Fmt(r.OpsPerSec))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbbench:", err)
		os.Exit(1)
	}
}
