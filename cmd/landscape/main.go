// Command landscape prints Figure 1 of the paper: the SSD landscape
// organized by FTL placement and abstraction.
package main

import (
	"fmt"

	"repro/internal/landscape"
)

func main() {
	fmt.Print(landscape.Render())
}
