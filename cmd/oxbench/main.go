// Command oxbench regenerates the paper's tables and figures on the
// simulated testbed and prints them as text tables (optionally CSV).
//
// Usage:
//
//	oxbench -run all
//	oxbench -run fig3,fig7 -csv out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/exp"
	"repro/internal/landscape"
	"repro/internal/lightlsm"
)

func main() {
	runs := flag.String("run", "all", "comma-separated experiments: fig1,fig3,fig5,fig6,fig7,gc,unit,qd,qdwrr,tenants,all")
	csvDir := flag.String("csv", "", "directory for CSV output (optional)")
	flag.Parse()

	want := map[string]bool{}
	for _, r := range strings.Split(*runs, ",") {
		want[strings.TrimSpace(r)] = true
	}
	all := want["all"]

	emit := func(name string, t *exp.Table) {
		fmt.Println(t.Render())
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*csvDir, name+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}

	if all || want["fig1"] {
		fmt.Println(landscape.Render())
	}
	if all || want["unit"] {
		emit("unit_of_write", exp.UnitOfWriteTable(exp.UnitOfWrite()))
	}
	if all || want["fig3"] {
		points, err := exp.Figure3(exp.DefaultFig3())
		if err != nil {
			fatal(err)
		}
		emit("figure3", exp.Figure3Table(points))
	}
	if all || want["fig5"] || want["fig6"] {
		cells, err := exp.Figure5(exp.DefaultFig5())
		if err != nil {
			fatal(err)
		}
		if all || want["fig5"] {
			emit("figure5", exp.Figure5Table(cells))
		}
		if all || want["fig6"] {
			emit("figure6_horizontal", exp.Figure6Table(cells, lightlsm.Horizontal))
			emit("figure6_vertical", exp.Figure6Table(cells, lightlsm.Vertical))
		}
	}
	if all || want["fig7"] {
		points, err := exp.Figure7(exp.DefaultFig7())
		if err != nil {
			fatal(err)
		}
		emit("figure7", exp.Figure7Table(points))
	}
	if all || want["gc"] {
		points, err := exp.GCLocality(exp.DefaultGCLocality())
		if err != nil {
			fatal(err)
		}
		emit("gc_locality", exp.GCLocalityTable(points))
	}
	if all || want["qd"] {
		points, err := exp.QDSweep(exp.DefaultQDSweep())
		if err != nil {
			fatal(err)
		}
		emit("qd_sweep", exp.QDSweepTable(points))
	}
	if all || want["qdwrr"] {
		points, err := exp.WRRSweep(exp.DefaultWRRSweep())
		if err != nil {
			fatal(err)
		}
		emit("wrr_sweep", exp.WRRSweepTable(points))
	}
	if all || want["tenants"] {
		points, err := exp.Tenants(exp.DefaultTenants())
		if err != nil {
			fatal(err)
		}
		emit("tenants", exp.TenantsTable(points))
		// The asymmetric QoS companion: WRR classes, unequal load, and
		// the shared-vs-solo p99 isolation metric.
		qos, err := exp.TenantsQoS(exp.DefaultTenantsQoS())
		if err != nil {
			fatal(err)
		}
		emit("tenants_qos", exp.TenantsQoSTable(qos))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oxbench:", err)
	os.Exit(1)
}
