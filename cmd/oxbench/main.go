// Command oxbench regenerates the paper's tables and figures on the
// simulated testbed and prints them as text tables (optionally CSV).
//
// Usage:
//
//	oxbench -run all
//	oxbench -run fig3,fig7 -csv out/
//	oxbench -run fig3,gc -executor pipelined
//	oxbench -run scale
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/exp"
	"repro/internal/hostif"
	"repro/internal/landscape"
	"repro/internal/lightlsm"
)

func main() {
	runs := flag.String("run", "all", "comma-separated experiments: fig1,fig3,fig5,fig6,fig7,gc,unit,qd,qdwrr,qdfabric,tenants,scale,crashstorm,fabric,netstorm,offload,offloadfabric,all")
	csvDir := flag.String("csv", "", "directory for CSV output (optional)")
	executor := flag.String("executor", "serial", "host command-service engine: serial | pipelined | batched (tables are bit-identical any way)")
	workers := flag.Int("workers", 0, "pipelined/batched executor worker-pool size (0 = GOMAXPROCS)")
	addr := flag.String("addr", "", "oxfabd address for -run fabric (default: in-process loopback server; remote runs are not deterministic)")
	flag.Parse()

	var ex hostif.ExecutorKind
	switch *executor {
	case "", "serial":
		ex = hostif.ExecutorSerial
	case "pipelined":
		ex = hostif.ExecutorPipelined
	case "batched":
		ex = hostif.ExecutorBatched
	default:
		fatal(fmt.Errorf("unknown -executor %q (serial | pipelined | batched)", *executor))
	}

	want := map[string]bool{}
	for _, r := range strings.Split(*runs, ",") {
		want[strings.TrimSpace(r)] = true
	}
	all := want["all"]

	emit := func(name string, t *exp.Table) {
		fmt.Println(t.Render())
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*csvDir, name+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}

	if all || want["fig1"] {
		fmt.Println(landscape.Render())
	}
	if all || want["unit"] {
		emit("unit_of_write", exp.UnitOfWriteTable(exp.UnitOfWrite()))
	}
	if all || want["fig3"] {
		cfg := exp.DefaultFig3()
		cfg.Executor, cfg.Workers = ex, *workers
		points, err := exp.Figure3(cfg)
		if err != nil {
			fatal(err)
		}
		emit("figure3", exp.Figure3Table(points))
	}
	if all || want["fig5"] || want["fig6"] {
		cfg := exp.DefaultFig5()
		cfg.Executor, cfg.Workers = ex, *workers
		cells, err := exp.Figure5(cfg)
		if err != nil {
			fatal(err)
		}
		if all || want["fig5"] {
			emit("figure5", exp.Figure5Table(cells))
		}
		if all || want["fig6"] {
			emit("figure6_horizontal", exp.Figure6Table(cells, lightlsm.Horizontal))
			emit("figure6_vertical", exp.Figure6Table(cells, lightlsm.Vertical))
		}
	}
	if all || want["fig7"] {
		cfg := exp.DefaultFig7()
		cfg.Executor, cfg.Workers = ex, *workers
		points, err := exp.Figure7(cfg)
		if err != nil {
			fatal(err)
		}
		emit("figure7", exp.Figure7Table(points))
	}
	if all || want["gc"] {
		cfg := exp.DefaultGCLocality()
		cfg.Executor, cfg.Workers = ex, *workers
		points, err := exp.GCLocality(cfg)
		if err != nil {
			fatal(err)
		}
		emit("gc_locality", exp.GCLocalityTable(points))
	}
	if all || want["qd"] {
		cfg := exp.DefaultQDSweep()
		cfg.Executor, cfg.Workers = ex, *workers
		points, err := exp.QDSweep(cfg)
		if err != nil {
			fatal(err)
		}
		emit("qd_sweep", exp.QDSweepTable(points))
	}
	if want["qdfabric"] {
		// The qd sweep with every command crossing the fabrics wire
		// layer over loopback. Not part of "all": its table is required
		// to be byte-identical to qd_sweep, which is exactly what the CI
		// cross-transport cmp checks.
		cfg := exp.DefaultQDSweep()
		cfg.Executor, cfg.Workers = ex, *workers
		points, err := exp.QDSweepLoopback(cfg)
		if err != nil {
			fatal(err)
		}
		emit("qd_fabric", exp.QDSweepTable(points))
	}
	if all || want["qdwrr"] {
		cfg := exp.DefaultWRRSweep()
		cfg.Executor, cfg.Workers = ex, *workers
		points, err := exp.WRRSweep(cfg)
		if err != nil {
			fatal(err)
		}
		emit("wrr_sweep", exp.WRRSweepTable(points))
	}
	if all || want["tenants"] {
		cfg := exp.DefaultTenants()
		cfg.Executor, cfg.Workers = ex, *workers
		points, err := exp.Tenants(cfg)
		if err != nil {
			fatal(err)
		}
		emit("tenants", exp.TenantsTable(points))
		// The asymmetric QoS companion: WRR classes, unequal load, and
		// the shared-vs-solo p99 isolation metric.
		qcfg := exp.DefaultTenantsQoS()
		qcfg.Executor, qcfg.Workers = ex, *workers
		qos, err := exp.TenantsQoS(qcfg)
		if err != nil {
			fatal(err)
		}
		emit("tenants_qos", exp.TenantsQoSTable(qos))
	}
	if all || want["crashstorm"] {
		// 50 power-cut kill/recover cycles per FTL on a file-backed
		// device; errors out on the first lost acknowledged write.
		// All metrics are virtual or op counts, so the table joins the
		// figure tables in the CI byte-diff determinism set.
		cfg := exp.DefaultCrashstorm()
		cfg.Executor, cfg.Workers = ex, *workers
		points, err := exp.Crashstorm(cfg)
		if err != nil {
			fatal(err)
		}
		emit("crashstorm", exp.CrashstormTable(points))
	}
	if all || want["fabric"] {
		// The fabric overload scenario: hundreds of open-loop Poisson
		// clients over the TCP transport, with connection churn and
		// backlog shedding. All columns are virtual-time-derived, so the
		// default (loopback) run joins the CI determinism byte-diff.
		cfg := exp.DefaultFabric()
		cfg.Executor, cfg.Workers = ex, *workers
		cfg.Addr = *addr
		points, err := exp.Fabric(cfg)
		if err != nil {
			fatal(err)
		}
		emit("fabric", exp.FabricTable(points))
	}
	if all || want["netstorm"] {
		// The network-fault storm: scripted connection kills, drops and
		// partitions against every fabric-served FTL, with a fault-free
		// shadow pass pinning zero lost acked writes and zero duplicate
		// applications. Fault triggers are frame-count-based and the
		// orchestrator is single-threaded over virtual time, so the
		// table joins the CI determinism byte-diff.
		cfg := exp.DefaultNetstorm()
		cfg.Executor, cfg.Workers = ex, *workers
		points, err := exp.Netstorm(cfg)
		if err != nil {
			fatal(err)
		}
		emit("netstorm", exp.NetstormTable(points))
	}
	if all || want["offload"] {
		// The computational-storage crossover: KV lookups, filtered
		// scans and compaction, host-side vs in-device, swept over value
		// size and predicate selectivity. Every column is virtual-time-
		// or counter-derived, so the table joins the CI determinism
		// byte-diff.
		cfg := exp.DefaultOffload()
		cfg.Executor, cfg.Workers = ex, *workers
		points, err := exp.Offload(cfg)
		if err != nil {
			fatal(err)
		}
		emit("offload", exp.OffloadTable(points))
	}
	if want["offloadfabric"] {
		// The offload crossover with every command crossing the fabrics
		// wire layer over loopback. Not part of "all": its table is
		// required to be byte-identical to offload, which is exactly
		// what the CI cross-transport cmp checks.
		cfg := exp.DefaultOffload()
		cfg.Executor, cfg.Workers = ex, *workers
		points, err := exp.OffloadLoopback(cfg)
		if err != nil {
			fatal(err)
		}
		emit("offload_fabric", exp.OffloadTable(points))
	}
	if all || want["scale"] {
		// The scale sweep runs all three executors itself (serial
		// reference rows plus one row per worker count and per batch
		// size) and fails if their virtual timings diverge; -executor
		// does not apply. Its wall-clock and
		// speedup columns measure this machine and vary run to run, so
		// the scenario stays out of the byte-diff determinism set.
		points, err := exp.Scale(exp.DefaultScale())
		if err != nil {
			fatal(err)
		}
		emit("scale", exp.ScaleTable(points))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oxbench:", err)
	os.Exit(1)
}
