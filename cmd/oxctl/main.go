// Command oxctl inspects a simulated Open-Channel SSD over the OX
// admin queue: geometry (AdminIdentify), the chunk report
// (AdminGetLogPage) and the Figure 4 placement layouts
// (LogTableChunks). Every control-plane access is a typed admin
// command through queue 0 — oxctl is the admin-queue client of the
// host interface. With -addr it becomes a fabric client: the same
// commands run against a served controller (oxfabd) over TCP.
//
// Usage:
//
//	oxctl -cmd geometry [-paper]
//	oxctl -cmd report [-addr 127.0.0.1:7710]
//	oxctl -cmd placement -mode vertical
//	oxctl -cmd executor [-executor batched] [-batch 16] [-domains 2]
//	oxctl -cmd faults [-addr 127.0.0.1:7710]   # remote rig needs oxfabd -faults
//	oxctl -cmd offload [-addr 127.0.0.1:7710]  # remote rig needs a LightLSM namespace
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/exp"
	"repro/internal/fabrics"
	"repro/internal/fault"
	"repro/internal/hostif"
	"repro/internal/lightlsm"
	"repro/internal/lsm"
	"repro/internal/ocssd"
	"repro/internal/offload"
	"repro/internal/oxblock"
	"repro/internal/vclock"
	"repro/internal/zns"
)

// adminSurface is the control-plane slice oxctl needs; both the
// in-process hostif.AdminClient and the fabrics.AdminClient satisfy
// it, which is what makes -addr a drop-in.
type adminSurface interface {
	Identify(vclock.Time) (hostif.IdentifyController, error)
	ChunkReport(vclock.Time) ([]ocssd.ChunkInfo, error)
	FaultLog(vclock.Time) (ocssd.FaultLog, error)
	ExecutorStats(vclock.Time) (hostif.ExecutorLog, error)
	OffloadStats(vclock.Time, int) (offload.Stats, error)
}

// ioSession is the data-path slice the faults hammer drives; satisfied
// by hostif.QueuePair and fabrics.QueuePair alike.
type ioSession interface {
	AcquireCommand() *hostif.Command
	Push(vclock.Time, *hostif.Command) error
	MustReap() hostif.Completion
}

func main() {
	cmd := flag.String("cmd", "geometry", "geometry | report | placement | executor | faults | offload")
	paper := flag.Bool("paper", false, "use the paper's exact Figure 4 geometry (1.4 TB)")
	mode := flag.String("mode", "horizontal", "placement mode: horizontal | vertical")
	executor := flag.String("executor", "pipelined", "engine for -cmd executor: serial | pipelined | batched")
	batch := flag.Int("batch", 0, "grant-batch size for -executor batched (0 = default)")
	domains := flag.Int("domains", 1, "arbitration domains for -cmd executor (queue pairs round-robin across them)")
	addr := flag.String("addr", "", "oxfabd address: run against a served controller instead of an in-process rig")
	flag.Parse()

	if *paper && *cmd != "geometry" {
		fmt.Fprintln(os.Stderr, "oxctl: -paper only supports -cmd geometry (the full device does not fit in memory)")
		os.Exit(1)
	}

	switch *cmd {
	case "geometry":
		g := geoFor(*paper, *addr)
		fmt.Println("Open-Channel 2.0 identify:")
		fmt.Printf("  %s\n", g)
		fmt.Printf("  ws_min = %d sectors, ws_opt = %d sectors (%d KB unit of write)\n",
			g.WSMin, g.WSOpt, g.UnitOfWriteBytes()/1024)
		fmt.Printf("  chunk = %d sectors (%d MB), %d stripes\n",
			g.SectorsPerChunk(), g.ChunkBytes()>>20, g.StripesPerChunk())
		fmt.Printf("  SSTable sizing rule (§4.3): %d PUs × %d MB chunk = %d MB\n",
			g.TotalPUs(), g.ChunkBytes()>>20, int64(g.TotalPUs())*g.ChunkBytes()>>20)
	case "report":
		admin := adminFor(*addr)
		report, err := admin.ChunkReport(0)
		fail(err)
		states := map[ocssd.ChunkState]int{}
		for _, ci := range report {
			states[ci.State]++
		}
		fmt.Println("chunk report summary:")
		for _, s := range []ocssd.ChunkState{ocssd.ChunkFree, ocssd.ChunkOpen, ocssd.ChunkClosed, ocssd.ChunkOffline} {
			fmt.Printf("  %-8s %d\n", s, states[s])
		}
	case "placement":
		if *addr != "" {
			fmt.Fprintln(os.Stderr, "oxctl: -cmd placement needs an in-process rig (it attaches a fresh LightLSM namespace)")
			os.Exit(1)
		}
		_, ctrl, err := exp.DefaultRig().Build()
		fail(err)
		p := lightlsm.Horizontal
		if *mode == "vertical" {
			p = lightlsm.Vertical
		}
		env, err := lightlsm.New(ctrl, lightlsm.Config{Placement: p})
		fail(err)
		// Flush one SSTable through the host interface: create, append
		// one block, commit — all as queue-pair commands — then read
		// the placement back as admin log pages.
		host := hostif.NewHost(ctrl, hostif.HostConfig{})
		cli, err := hostif.AttachLSM(host, env)
		fail(err)
		w, err := cli.CreateTable(0)
		fail(err)
		block := make([]byte, cli.BlockSize())
		now, err := w.Append(0, block)
		fail(err)
		h, end, err := w.Commit(now)
		fail(err)
		admin := host.Admin()
		chunks, err := admin.TableChunks(end, 0, uint64(h.ID))
		fail(err)
		id, err := admin.Identify(end)
		fail(err)
		fmt.Printf("Figure 4: %s placement — one SSTable (%d chunks of %d KB blocks):\n",
			p, len(chunks), cli.BlockSize()/1024)
		perGroup := map[int][]string{}
		for _, c := range chunks {
			perGroup[c.Group] = append(perGroup[c.Group], fmt.Sprintf("pu%d/c%d", c.PU, c.Chunk))
		}
		for g := 0; g < id.Geometry.Groups; g++ {
			if len(perGroup[g]) == 0 {
				fmt.Printf("  group%-2d: -\n", g)
				continue
			}
			fmt.Printf("  group%-2d: %v\n", g, perGroup[g])
		}
	case "executor":
		if *addr != "" {
			// Remote mode reads the served controller's live execution
			// log; the local mode below drives its own workload first.
			log, err := adminFor(*addr).ExecutorStats(0)
			fail(err)
			printExecutor(log)
			return
		}
		// Drive a short disjoint-PU zone workload under the selected
		// engine, then read the LogExecutor admin page back over queue
		// 0 — the pipeline's grants, realized overlap and stalls are
		// control-plane observable like any other log. The rig runs
		// cache-less: with a write-back cache, zone writes fall back to
		// exclusive footprints (cache admission is device-global) and
		// the log would show conflict stalls instead of overlap.
		switch *executor {
		case "serial", "pipelined", "batched":
		default:
			fmt.Fprintf(os.Stderr, "oxctl: unknown -executor %q (serial | pipelined | batched)\n", *executor)
			os.Exit(1)
		}
		rig := exp.DefaultRig()
		rig.CacheMB = 0
		_, ctrl, err := rig.Build()
		fail(err)
		tgt, err := zns.New(ctrl, zns.Config{})
		fail(err)
		host := hostif.NewHost(ctrl, hostif.HostConfig{
			Executor:  hostif.ExecutorKind(*executor),
			BatchSize: *batch,
			Domains:   *domains,
		})
		admin := host.Admin()
		nsid, err := admin.AttachNamespace(0, hostif.NewZoneNamespace(tgt))
		fail(err)
		report, err := admin.ZoneReport(0, nsid)
		fail(err)
		id, err := admin.IdentifyNamespace(0, nsid)
		fail(err)
		zoneOf := map[int]int{} // group -> one zone
		for _, zi := range report {
			if _, ok := zoneOf[zi.Group]; !ok {
				zoneOf[zi.Group] = zi.Index
			}
		}
		ident, err := admin.Identify(0)
		fail(err)
		block := make([]byte, id.BlockSize)
		var qps []*hostif.QueuePair
		for g := 0; g < ident.Geometry.Groups; g++ {
			// One queue pair per group, round-robined across the
			// arbitration domains — legal because each pair only ever
			// touches its own group's zones, so no footprint crosses a
			// domain boundary.
			qp, err := admin.CreateIOQueuePairIn(0, 1, hostif.ClassMedium, g%ident.Domains)
			fail(err)
			qps = append(qps, qp)
		}
		var last vclock.Time
		for round := 0; round < 4; round++ {
			for g, qp := range qps {
				c := qp.AcquireCommand()
				c.Op, c.NSID, c.Zone, c.Data = hostif.OpZoneAppend, nsid, zoneOf[g], block
				fail(qp.Push(last, c))
			}
			for _, qp := range qps {
				comp := qp.MustReap()
				fail(comp.Err)
				if comp.Done > last {
					last = comp.Done
				}
			}
		}
		log, err := admin.ExecutorStats(last)
		fail(err)
		printExecutor(log)
	case "faults":
		// Hammer the device with writes and reads until chunks grow
		// bad, then read the LogFaults admin page back over queue 0 —
		// the device's error accounting is control-plane observable
		// like any other log. Locally the rig gets an aggressive fault
		// injector; with -addr the same hammer runs over the fabric
		// against a server started with oxfabd -faults.
		var (
			qp    ioSession
			admin adminSurface
			nsid  = 1
			now   vclock.Time
		)
		if *addr != "" {
			cli := fabrics.Dial(*addr)
			fqp, err := cli.QueuePair(0, 1, hostif.ClassMedium, 1)
			fail(err)
			defer fqp.Close()
			qp, admin = fqp, adminFor(*addr)
		} else {
			rig := exp.DefaultRig()
			rig.Faults = fault.New(fault.Config{
				Seed:          7,
				ReadErrorRate: 0.05,
				GrowBadAfter:  2,
				EraseFailRate: 0.01,
			})
			_, ctrl, err := rig.Build()
			fail(err)
			d, _, at, err := oxblock.New(ctrl, oxblock.Config{LogicalPages: 4096}, 0)
			fail(err)
			host := hostif.NewHost(ctrl, hostif.HostConfig{})
			nsid, err = host.Admin().AttachNamespace(at, hostif.NewBlockNamespace(d))
			fail(err)
			hqp, err := host.Admin().CreateIOQueuePair(at, 1, hostif.ClassMedium)
			fail(err)
			qp, admin, now = hqp, host.Admin(), at
		}
		data := make([]byte, 8*4096)
		failures := map[hostif.Status]int{}
		for i := 0; i < 400; i++ {
			w := qp.AcquireCommand()
			w.Op, w.NSID, w.LPN, w.Data = hostif.OpWrite, nsid, int64(i%64)*8, data
			fail(qp.Push(now, w))
			if comp := qp.MustReap(); comp.Err == nil {
				now = comp.Done
			} else {
				failures[comp.Status]++
			}
			r := qp.AcquireCommand()
			r.Op, r.NSID, r.LPN, r.Pages = hostif.OpRead, nsid, int64(i%64)*8, 8
			fail(qp.Push(now, r))
			if comp := qp.MustReap(); comp.Err == nil {
				now = comp.Done
			} else {
				failures[comp.Status]++
			}
		}
		fl, err := admin.FaultLog(now)
		fail(err)
		fmt.Printf("fault log (LogFaults over queue 0):\n")
		fmt.Printf("  media ops        %d\n", fl.Injected.MediaOps)
		fmt.Printf("  read errors      %d\n", fl.Injected.ReadErrors)
		fmt.Printf("  program fails    %d\n", fl.Injected.ProgramFails)
		fmt.Printf("  erase fails      %d\n", fl.Injected.EraseFails)
		fmt.Printf("  grown bad        %d chunks\n", fl.GrownBadChunks)
		fmt.Printf("  host completions with error status:\n")
		for _, s := range []hostif.Status{hostif.StatusMediaRead, hostif.StatusMediaWrite, hostif.StatusOffline, hostif.StatusInternal} {
			if failures[s] > 0 {
				fmt.Printf("    %-12s %d\n", s, failures[s])
			}
		}
		if n := len(fl.Events); n > 0 {
			fmt.Printf("  last %d fault events:\n", min(n, 5))
			for _, e := range fl.Events[max(0, n-5):] {
				fmt.Printf("    %v: %s\n", e.Chunk, e.Err)
			}
		}
	case "offload":
		// Read the computational-storage log page (LogOffload) over
		// queue 0. With -addr the page comes from the served
		// controller's namespace 1; locally oxctl drives a short
		// offloaded KV workload first — point lookups and compactions
		// resolved inside the device — so the counters have something
		// to say.
		if *addr != "" {
			st, err := adminFor(*addr).OffloadStats(0, 1)
			fail(err)
			printOffload(st)
			return
		}
		_, ctrl, err := exp.DefaultRig().Build()
		fail(err)
		env, err := lightlsm.New(ctrl, lightlsm.Config{TableChunks: 1})
		fail(err)
		host := hostif.NewHost(ctrl, hostif.HostConfig{ChargeHostLink: true})
		cli, err := hostif.AttachLSM(host, env)
		fail(err)
		db, err := lsm.Open(lsm.Options{
			Env:           cli,
			MemtableBytes: 64 << 10,
			Seed:          7,
			Lookup:        cli.OffloadGet,
			Compactor:     cli.OffloadCompact,
		})
		fail(err)
		rng := rand.New(rand.NewSource(11))
		value := make([]byte, 2048)
		var now vclock.Time
		for i := 0; i < 600; i++ {
			rng.Read(value)
			now, err = db.Put(now, []byte(fmt.Sprintf("key-%04d", rng.Intn(200))), value)
			fail(err)
		}
		now, err = db.Flush(now)
		fail(err)
		now = db.WaitIdle(now)
		for i := 0; i < 200; i++ {
			if _, end, err := db.Get(now, []byte(fmt.Sprintf("key-%04d", i))); err == nil {
				now = end
			}
		}
		st, err := host.Admin().OffloadStats(now, cli.NSID())
		fail(err)
		printOffload(st)
	default:
		fmt.Fprintf(os.Stderr, "oxctl: unknown command %q\n", *cmd)
		os.Exit(1)
	}
}

func printOffload(st offload.Stats) {
	fmt.Printf("computational storage (LogOffload over queue 0):\n")
	fmt.Printf("  gets            %d (%d hits)\n", st.Gets, st.GetHits)
	fmt.Printf("  scans           %d (%d of %d pages matched)\n", st.Scans, st.PagesMatched, st.PagesScanned)
	fmt.Printf("  compactions     %d (%d blocks merged)\n", st.Compactions, st.BlocksMerged)
	fmt.Printf("  bytes out       %d KB over the host link\n", st.BytesOut>>10)
	fmt.Printf("  bytes direct    %d KB host-side equivalent\n", st.BytesDirect>>10)
	fmt.Printf("  bytes saved     %d KB\n", st.BytesSaved()>>10)
	fmt.Printf("  compute busy    %v in-device\n", st.ComputeBusy)
}

func printExecutor(log hostif.ExecutorLog) {
	fmt.Printf("execution engine (LogExecutor over queue 0):\n")
	fmt.Printf("  executor        %s\n", log.Executor)
	fmt.Printf("  workers         %d\n", log.Workers)
	if log.Executor == hostif.ExecutorBatched {
		fmt.Printf("  batch size      %d\n", log.BatchSize)
	}
	fmt.Printf("  domains         %d\n", log.Domains)
	fmt.Printf("  grants          %d\n", log.Grants)
	fmt.Printf("  acquisitions    %d", log.Acquisitions)
	if log.Grants > 0 {
		fmt.Printf(" (%.3f per grant)", float64(log.Acquisitions)/float64(log.Grants))
	}
	fmt.Println()
	fmt.Printf("  dispatched      %d\n", log.Dispatched)
	fmt.Printf("  inline          %d\n", log.Inline)
	fmt.Printf("  overlapped      %d\n", log.Overlapped)
	fmt.Printf("  barrier stalls  %d\n", log.BarrierStalls)
	fmt.Printf("  conflict stalls %d\n", log.ConflictStalls)
	fmt.Printf("  max inflight    %d\n", log.MaxInflight)
	for _, d := range log.PerDomain {
		fmt.Printf("  domain %-2d       qps %-3d grants %-6d acquisitions %-6d overlapped %-6d max inflight %d\n",
			d.Domain, d.QueuePairs, d.Grants, d.Acquisitions, d.Overlapped, d.MaxInflight)
	}
}

// adminFor returns the control-plane client: a fabric admin connection
// when addr is set, otherwise the default in-process rig's admin
// queue.
func adminFor(addr string) adminSurface {
	if addr != "" {
		a, err := fabrics.Dial(addr).Admin()
		fail(err)
		return a
	}
	_, ctrl, err := exp.DefaultRig().Build()
	fail(err)
	return hostif.NewHost(ctrl, hostif.HostConfig{}).Admin()
}

// geoFor reads the geometry over the admin queue (or returns the
// paper's published geometry, which has no simulated device behind it).
func geoFor(paper bool, addr string) ocssd.Geometry {
	if paper {
		return ocssd.PaperGeometry()
	}
	id, err := adminFor(addr).Identify(0)
	fail(err)
	return id.Geometry
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "oxctl:", err)
		os.Exit(1)
	}
}
