// Command oxfabd serves a simulated OX controller over TCP — the
// NVMe-over-Fabrics face of the testbed. Each accepted connection is
// one queue pair (or one admin channel); remote oxctl, oxbench and
// dbbench processes drive the controller exactly as in-process callers
// do, with virtual time travelling on the wire.
//
// Usage:
//
//	oxfabd -addr 127.0.0.1:7710 -ftl block -pages 16384
//	oxfabd -ftl lsm -placement vertical     # serve LightLSM for dbbench -addr
//	oxfabd -ftl block -faults               # rig with fault injection for oxctl -cmd faults
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/exp"
	"repro/internal/fabrics"
	"repro/internal/fault"
	"repro/internal/hostif"
	"repro/internal/lightlsm"
	"repro/internal/oxblock"
	"repro/internal/vclock"
	"repro/internal/zns"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7710", "listen address")
	ftl := flag.String("ftl", "block", "served namespace FTL: block | zns | lsm")
	pages := flag.Int64("pages", 16384, "OX-Block namespace size in 4 KB logical pages")
	placement := flag.String("placement", "horizontal", "LightLSM SSTable placement: horizontal | vertical")
	executor := flag.String("executor", "serial", "host command-service engine: serial | pipelined | batched")
	workers := flag.Int("workers", 0, "pipelined/batched executor worker-pool size (0 = GOMAXPROCS)")
	faults := flag.Bool("faults", false, "inject media faults (read errors, program fails, grown-bad chunks)")
	flag.Parse()

	var ex hostif.ExecutorKind
	switch *executor {
	case "", "serial":
		ex = hostif.ExecutorSerial
	case "pipelined":
		ex = hostif.ExecutorPipelined
	case "batched":
		ex = hostif.ExecutorBatched
	default:
		fail(fmt.Errorf("unknown -executor %q (serial | pipelined | batched)", *executor))
	}

	rig := exp.DefaultRig()
	if *faults {
		rig.Faults = fault.New(fault.Config{
			Seed:          7,
			ReadErrorRate: 0.05,
			GrowBadAfter:  2,
			EraseFailRate: 0.01,
		})
	}
	_, ctrl, err := rig.Build()
	fail(err)

	var (
		ns  hostif.Namespace
		now vclock.Time
	)
	switch *ftl {
	case "block":
		d, _, at, err := oxblock.New(ctrl, oxblock.Config{LogicalPages: *pages}, 0)
		fail(err)
		ns, now = hostif.NewBlockNamespace(d), at
	case "zns":
		tgt, err := zns.New(ctrl, zns.Config{})
		fail(err)
		ns = hostif.NewZoneNamespace(tgt)
	case "lsm":
		p := lightlsm.Horizontal
		if *placement == "vertical" {
			p = lightlsm.Vertical
		}
		env, err := lightlsm.New(ctrl, lightlsm.Config{Placement: p})
		fail(err)
		ns = hostif.NewLSMNamespace(env)
	default:
		fail(fmt.Errorf("unknown -ftl %q (block | zns | lsm)", *ftl))
	}

	host := hostif.NewHost(ctrl, hostif.HostConfig{
		ChargeHostLink: true,
		Executor:       ex,
		Workers:        *workers,
	})
	nsid, err := host.Admin().AttachNamespace(now, ns)
	fail(err)

	l, err := net.Listen("tcp", *addr)
	fail(err)
	fmt.Printf("oxfabd: serving %s namespace %d on %s (executor %s)\n", *ftl, nsid, l.Addr(), ex)
	srv := fabrics.NewServer(host)

	// SIGINT/SIGTERM drain gracefully: stop accepting, flush every
	// in-flight completion, send each live queue pair a goaway frame
	// (clients treat it as a clean redial trigger), then exit.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Printf("oxfabd: %v, draining\n", s)
		srv.Shutdown()
	}()

	if err := srv.Serve(l); err != nil && !errors.Is(err, fabrics.ErrClosed) {
		fail(err)
	}
	fmt.Println("oxfabd: drained, exiting")
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "oxfabd:", err)
		os.Exit(1)
	}
}
