// Package repro is a from-scratch Go reproduction of "Open-Channel SSD
// (What is it Good For)" (Picoli, Hedam, Bonnet, Tözün — CIDR 2020).
//
// The repository contains the whole stack the paper describes, built on
// a virtual-time simulator so the experiments run deterministically on a
// laptop:
//
//   - internal/nand     — NAND flash chips (planes, blocks, paired pages,
//     SLC..QLC timing, wear, bad blocks)
//   - internal/ocssd    — an Open-Channel 2.0 SSD (groups/PUs/chunks,
//     vector I/O, chunk reset, device copy, write-back cache)
//   - internal/ox       — the OX controller framework (media manager,
//     FTL layer, host interface; CPU/copy accounting)
//   - internal/ftl/ftlcore — the modular FTL of Figure 2 (mapping,
//     provisioning, WAL, checkpoint, recovery, GC, bad-block management)
//   - internal/oxblock  — OX-Block, the generic block-device FTL
//   - internal/oxeleos  — OX-ELEOS, the log-structured FTL for LLAMA
//   - internal/lightlsm — LightLSM, the RocksDB-environment FTL
//   - internal/zns      — OX-ZNS, the Zoned-Namespaces FTL of §2.3
//   - internal/hostif   — the NVMe-style host interface: typed commands
//     over submission/completion queue pairs, an admin queue pair
//     (identify, log pages, namespace attach, queue-pair lifecycle),
//     deterministic weighted-round-robin arbitration classes,
//     interrupt-style completion notification, one namespace adapter
//     per FTL, and a pipelined execution engine that overlaps
//     disjoint-footprint commands on a worker pool with bit-identical
//     virtual timing (serial mode remains the reference oracle)
//   - internal/lsm      — a miniature RocksDB (memtable, SSTables,
//     bloom filters, leveled compaction, rate limiter)
//   - internal/dbbench  — the db_bench workloads of §4.3
//   - internal/landscape — Figure 1's SSD taxonomy
//   - internal/exp      — one driver per table/figure of the evaluation
//
// The benchmarks in bench_test.go regenerate every figure; cmd/oxbench
// prints them as paper-style tables. See README.md and DESIGN.md.
package repro
