// kvstore: the miniature RocksDB running on the LightLSM FTL — the
// paper's application-specific environment with horizontal or vertical
// SSTable placement (run with -placement vertical to compare). With
// -offload, point lookups and compactions resolve inside the device
// (OpOffloadGet / OpOffloadCompact): only values and table metadata
// cross the host link instead of whole SSTable blocks.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/exp"
	"repro/internal/hostif"
	"repro/internal/lightlsm"
	"repro/internal/lsm"
	"repro/internal/vclock"
)

func main() {
	placement := flag.String("placement", "horizontal", "horizontal | vertical")
	offload := flag.Bool("offload", false, "resolve point lookups and compactions in-device (computational storage)")
	flag.Parse()
	p := lightlsm.Horizontal
	if *placement == "vertical" {
		p = lightlsm.Vertical
	}

	rig := exp.DefaultRig()
	rig.PagesPerBlock = 12 // small chunks for a quick demo
	_, ctrl, err := rig.Build()
	if err != nil {
		log.Fatal(err)
	}
	env, err := lightlsm.New(ctrl, lightlsm.Config{Placement: p})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LightLSM: %s placement, %d KB blocks, %d MB SSTables\n",
		env.Placement(), env.BlockSize()/1024, env.TableBytes()>>20)

	// The database reaches the FTL through host-interface queue pairs:
	// every SSTable flush block and block read is a typed command, and
	// the attachment itself is admin-queue commands.
	host := hostif.NewHost(ctrl, hostif.HostConfig{})
	cli, err := hostif.AttachLSM(host, env)
	if err != nil {
		log.Fatal(err)
	}
	// A small memtable so the demo's 5000 pairs actually force flushes
	// and compactions (and give the offloaded paths work to do).
	opts := lsm.Options{Env: cli, MemtableBytes: 16 << 10, Seed: 1}
	if *offload {
		// Offloaded variant: positive table probes and table merges run
		// inside the device through the same queue pair.
		opts.Lookup = cli.OffloadGet
		opts.Compactor = cli.OffloadCompact
	}
	db, err := lsm.Open(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Load 5000 key-value pairs, then overwrite a third of them so the
	// L0 tables overlap and real merge compactions run (sequential-only
	// fill would just trivially move tables down); finally read some
	// back and scan a range.
	now := vclock.Time(0)
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("user%06d", i)
		v := fmt.Sprintf("profile-%d", i*i)
		if now, err = db.Put(now, []byte(k), []byte(v)); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 5000; i += 3 {
		k := fmt.Sprintf("user%06d", i)
		v := fmt.Sprintf("profile-%d-v2", i*i)
		if now, err = db.Put(now, []byte(k), []byte(v)); err != nil {
			log.Fatal(err)
		}
	}
	now = db.WaitIdle(now)

	val, now, err := db.Get(now, []byte("user001234"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get user001234 = %s\n", val)

	it := db.NewIterator(&now)
	fmt.Println("first five keys:")
	for i := 0; i < 5; i++ {
		k, v, ok := it.Next()
		if !ok {
			break
		}
		fmt.Printf("  %s = %s\n", k, v)
	}

	s := db.Stats()
	// FTL counters come back as an admin log page.
	v, err := host.Admin().NamespaceStats(now, cli.NSID())
	if err != nil {
		log.Fatal(err)
	}
	es := v.(lightlsm.Stats)
	fmt.Printf("flushes %d, compactions %d, levels %d/%d/%d\n",
		s.Flushes, s.Compactions, s.TablesL0, s.TablesL1, s.TablesL2)
	fmt.Printf("FTL: %d blocks written, %d read, %d chunk resets (SSTable deletes)\n",
		es.BlocksWritten, es.BlocksRead, es.ChunkResets)
	if *offload {
		st, err := host.Admin().OffloadStats(now, cli.NSID())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("offload: %d gets (%d hits), %d compactions, %d KB saved on the host link\n",
			st.Gets, st.GetHits, st.Compactions, st.BytesSaved()>>10)
	}
}
