// logstructured: OX-ELEOS as a log-structured store — 8 MB LSS I/O
// buffers in, variable-size page reads out (§4.2), with the two
// controller copies of Figure 7 accounted.
package main

import (
	"fmt"
	"log"

	"repro/internal/exp"
	"repro/internal/oxeleos"
)

func main() {
	_, ctrl, err := exp.DefaultRig().Build()
	if err != nil {
		log.Fatal(err)
	}
	store, err := oxeleos.New(ctrl, oxeleos.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OX-ELEOS: %d MB LSS I/O buffers\n", store.BufferBytes()>>20)

	// Build one LSS buffer holding variable-sized pages (LLAMA delta
	// pages are "an arbitrary number of bytes").
	sizes := []int{500, 4096, 12000, 333, 64 * 1024}
	buf := make([]byte, 0, 1<<20)
	var pages []oxeleos.PageDesc
	for i, sz := range sizes {
		desc := oxeleos.PageDesc{ID: int64(i + 1), Offset: len(buf), Length: sz}
		pages = append(pages, desc)
		for j := 0; j < sz; j++ {
			buf = append(buf, byte(i+1))
		}
	}
	end, err := store.Flush(0, buf, pages)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flushed %d bytes holding %d pages at %v\n", len(buf), len(pages), end)

	// Page-granular reads: mapping is finer than the 4 KB unit of read.
	for _, d := range pages {
		data, e, err := store.ReadPage(end, d.ID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  page %d: %5d bytes (read finished %v)\n", d.ID, len(data), e)
		end = e
	}

	// The Figure 7 story: every byte crossed the memory bus twice.
	st := ctrl.Stats()
	fmt.Printf("controller copies: %d B network→FTL, %d B FTL→device\n",
		st.BytesRX, st.BytesToDevice)
	fmt.Printf("memory-bus utilization so far: %.1f%%\n", ctrl.Utilization(end)*100)
}
