// logstructured: OX-ELEOS as a log-structured store — 8 MB LSS I/O
// buffers in, variable-size page reads out (§4.2), with the two
// controller copies of Figure 7 accounted. The store is driven as a
// host-interface namespace: flushes and page reads are queue-pair
// commands, and the host link is charged per command.
package main

import (
	"fmt"
	"log"

	"repro/internal/exp"
	"repro/internal/hostif"
	"repro/internal/oxeleos"
)

func main() {
	_, ctrl, err := exp.DefaultRig().Build()
	if err != nil {
		log.Fatal(err)
	}
	store, err := oxeleos.New(ctrl, oxeleos.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OX-ELEOS: %d MB LSS I/O buffers\n", store.BufferBytes()>>20)

	host := hostif.NewHost(ctrl, hostif.HostConfig{ChargeHostLink: true})
	admin := host.Admin()
	nsid, err := admin.AttachNamespace(0, hostif.NewEleosNamespace(store))
	if err != nil {
		log.Fatal(err)
	}
	qp, err := admin.CreateIOQueuePair(0, 1, hostif.ClassMedium)
	if err != nil {
		log.Fatal(err)
	}

	// Build one LSS buffer holding variable-sized pages (LLAMA delta
	// pages are "an arbitrary number of bytes").
	sizes := []int{500, 4096, 12000, 333, 64 * 1024}
	buf := make([]byte, 0, 1<<20)
	var pages []hostif.PageDesc
	for i, sz := range sizes {
		desc := hostif.PageDesc{ID: int64(i + 1), Offset: len(buf), Length: sz}
		pages = append(pages, desc)
		for j := 0; j < sz; j++ {
			buf = append(buf, byte(i+1))
		}
	}
	if err := qp.Push(0, &hostif.Command{Op: hostif.OpFlush, NSID: nsid, Data: buf, Descs: pages}); err != nil {
		log.Fatal(err)
	}
	fc := qp.MustReap()
	if fc.Err != nil {
		log.Fatal(fc.Err)
	}
	end := fc.Done
	fmt.Printf("flushed %d bytes holding %d pages at %v\n", len(buf), len(pages), end)

	// Page-granular reads: mapping is finer than the 4 KB unit of read.
	for _, d := range pages {
		if err := qp.Push(end, &hostif.Command{Op: hostif.OpRead, NSID: nsid, LPN: d.ID}); err != nil {
			log.Fatal(err)
		}
		rc := qp.MustReap()
		if rc.Err != nil {
			log.Fatal(rc.Err)
		}
		fmt.Printf("  page %d: %5d bytes (read finished %v)\n", d.ID, len(rc.Data), rc.Done)
		end = rc.Done
	}

	// The Figure 7 story: every byte crossed the memory bus twice —
	// read back as admin log pages.
	st, err := admin.ControllerStats(end)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("controller copies: %d B network→FTL, %d B FTL→device\n",
		st.BytesRX, st.BytesToDevice)
	util, err := admin.Utilization(end)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("memory-bus utilization so far: %.1f%%\n", util.MemBus*100)
}
