// Quickstart: build a simulated Open-Channel SSD, mount the OX-Block
// FTL on the OX controller, and drive it as an NVMe-style namespace
// through a host-interface queue pair.
package main

import (
	"fmt"
	"log"

	"repro/internal/exp"
	"repro/internal/hostif"
	"repro/internal/oxblock"
)

func main() {
	// A scaled-down dual-plane TLC drive: 8 groups × 4 PUs, 96 KB unit
	// of write — structurally the paper's device.
	dev, ctrl, err := exp.DefaultRig().Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("device:", dev.Geometry())

	// Mount OX-Block: a 4 KB block device with WAL + checkpoint
	// transactions and group-marked garbage collection — then attach it
	// over the admin queue and create an I/O queue pair (depth 4,
	// medium WRR class). All management is typed admin commands on
	// queue 0.
	blk, _, now, err := oxblock.New(ctrl, oxblock.Config{LogicalPages: 16384}, 0)
	if err != nil {
		log.Fatal(err)
	}
	host := hostif.NewHost(ctrl, hostif.HostConfig{ChargeHostLink: true})
	admin := host.Admin()
	nsid, err := admin.AttachNamespace(now, hostif.NewBlockNamespace(blk))
	if err != nil {
		log.Fatal(err)
	}
	qp, err := admin.CreateIOQueuePair(now, 4, hostif.ClassMedium)
	if err != nil {
		log.Fatal(err)
	}

	// Every write of up to 1 MB is one atomic, durable transaction: a
	// Write command submitted to the queue and reaped as a completion.
	payload := make([]byte, 8*4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := qp.Push(now, &hostif.Command{Op: hostif.OpWrite, NSID: nsid, LPN: 100, Data: payload}); err != nil {
		log.Fatal(err)
	}
	wc := qp.MustReap()
	if wc.Err != nil {
		log.Fatal(wc.Err)
	}
	if err := qp.Push(wc.Done, &hostif.Command{Op: hostif.OpRead, NSID: nsid, LPN: 100, Pages: 8}); err != nil {
		log.Fatal(err)
	}
	rc := qp.MustReap()
	if rc.Err != nil {
		log.Fatal(rc.Err)
	}
	fmt.Printf("wrote+read 8 pages at lpn 100: first byte %#x, latency %v, virtual time %v\n",
		rc.Data[0], rc.Latency(), rc.Done)

	// Crash the controller and recover: the committed write survives.
	// Recovery is the admin path — it rebuilds the FTL, after which a
	// fresh namespace serves the same data.
	dev.Crash()
	blk2, report, end, err := oxblock.New(ctrl, oxblock.Config{LogicalPages: 16384}, rc.Done)
	if err != nil {
		log.Fatal(err)
	}
	host2 := hostif.NewHost(ctrl, hostif.HostConfig{ChargeHostLink: true})
	admin2 := host2.Admin()
	nsid2, err := admin2.AttachNamespace(end, hostif.NewBlockNamespace(blk2))
	if err != nil {
		log.Fatal(err)
	}
	qp2, err := admin2.CreateIOQueuePair(end, 1, hostif.ClassMedium)
	if err != nil {
		log.Fatal(err)
	}
	if err := qp2.Push(end, &hostif.Command{Op: hostif.OpRead, NSID: nsid2, LPN: 100, Pages: 1}); err != nil {
		log.Fatal(err)
	}
	rc2 := qp2.MustReap()
	if rc2.Err != nil {
		log.Fatal(rc2.Err)
	}
	fmt.Printf("after crash: replayed %d records in %v; data intact: %v\n",
		report.ReplayedRecords, report.Duration, rc2.Data[0] == 0)
	// Device counters are an admin log page, like any NVMe smart log.
	stats, err := admin2.MediaStats(rc2.Done)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device stats: %+v\n", stats)
}
