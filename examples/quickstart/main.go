// Quickstart: build a simulated Open-Channel SSD, mount the OX-Block
// FTL on the OX controller, and use it as a transactional block device.
package main

import (
	"fmt"
	"log"

	"repro/internal/exp"
	"repro/internal/oxblock"
)

func main() {
	// A scaled-down dual-plane TLC drive: 8 groups × 4 PUs, 96 KB unit
	// of write — structurally the paper's device.
	dev, ctrl, err := exp.DefaultRig().Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("device:", dev.Geometry())

	// Mount OX-Block: a 4 KB block device with WAL + checkpoint
	// transactions and group-marked garbage collection.
	blk, _, now, err := oxblock.New(ctrl, oxblock.Config{LogicalPages: 16384}, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Every write of up to 1 MB is one atomic, durable transaction.
	payload := make([]byte, 8*4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	now, err = blk.Write(now, 100, payload)
	if err != nil {
		log.Fatal(err)
	}
	got, now, err := blk.Read(now, 100, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote+read 8 pages at lpn 100: first byte %#x, virtual time %v\n", got[0], now)

	// Crash the controller and recover: the committed write survives.
	dev.Crash()
	blk2, report, end, err := oxblock.New(ctrl, oxblock.Config{LogicalPages: 16384}, now)
	if err != nil {
		log.Fatal(err)
	}
	got, _, err = blk2.Read(end, 100, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after crash: replayed %d records in %v; data intact: %v\n",
		report.ReplayedRecords, report.Duration, got[0] == 0)
	fmt.Printf("device stats: %+v\n", dev.Stats())
}
