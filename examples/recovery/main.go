// recovery: crash recovery end to end, twice over.
//
// Part 1 is Figure 3 in miniature — kill OX-Block at different points
// with and without checkpoints and watch recovery time change (the
// restart is simulated in memory).
//
// Part 2 is the real thing: a file-backed device, a fault injector
// armed with a power cut, a write burst over an I/O queue pair that
// dies mid-flight with a power-loss completion status, and then a
// power-on — the device reopens from its backend file, OX-Block
// replays checkpoint + WAL, and the admin queue reports what happened
// (recovery report, fault log page). Every acknowledged write reads
// back; the one the cut interrupted is allowed to have committed or
// not.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/hostif"
	"repro/internal/oxblock"
	"repro/internal/vclock"
)

func main() {
	miniFig3()
	powerCutAndRecover()
}

func miniFig3() {
	cfg := exp.Fig3Config{
		FailPoints: []vclock.Duration{
			2 * vclock.Second, 4 * vclock.Second, 6 * vclock.Second, 8 * vclock.Second,
		},
		Intervals: []vclock.Duration{0, 2 * vclock.Second},
		TxnPages:  64,
		TxnEvery:  10 * vclock.Millisecond,
		Seed:      1,
	}
	points, err := exp.Figure3(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("kill -9 at T, then recover (WAL replay + checkpoint load):")
	fmt.Println()
	for _, p := range points {
		ci := "disabled"
		if p.Interval > 0 {
			ci = p.Interval.String()
		}
		fmt.Printf("  checkpoint %-9s  fail at %4.0fs  %5d txns  replayed %5d records  recovery %6.2fs\n",
			ci, p.FailAt.Seconds(), p.Txns, p.Replayed, p.RecoverySecs)
	}
	fmt.Println()
	fmt.Println("without checkpoints recovery grows with the log; with them it stays bounded.")
	fmt.Println()
}

func powerCutAndRecover() {
	dir, err := os.MkdirTemp("", "recovery-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	rc := exp.RigConfig{
		Groups: 2, PUsPerGroup: 2, ChunksPerPU: 32,
		PagesPerBlock: 12, CacheMB: 8, Seed: 1, PLP: true,
		BackendPath: filepath.Join(dir, "device.img"),
	}
	inj := fault.New(fault.Config{Seed: 42})
	rc.Faults = inj

	// --- Power on #1: fresh device, write until the cut kills it. ---
	_, ctrl, err := rc.Build()
	if err != nil {
		log.Fatal(err)
	}
	d, _, now, err := oxblock.New(ctrl, oxblock.Config{LogicalPages: 1024, StripeWidth: 2}, 0)
	if err != nil {
		log.Fatal(err)
	}
	host := hostif.NewHost(ctrl, hostif.HostConfig{})
	admin := host.Admin()
	nsid, err := admin.AttachNamespace(now, hostif.NewBlockNamespace(d))
	if err != nil {
		log.Fatal(err)
	}
	qp, err := admin.CreateIOQueuePair(now, 1, hostif.ClassMedium)
	if err != nil {
		log.Fatal(err)
	}

	const wpages = 8
	acked := map[int64]byte{} // base LPN -> fill of last acknowledged write
	payload := make([]byte, wpages*4096)

	fmt.Println("file-backed device: write burst, power cut, power on, recover:")
	fmt.Println()
	inj.PowerCut(40) // die on the 40th media operation from here
	for i := 0; ; i++ {
		base := int64(i%128) * wpages // 128 ranges: the cut fires long before any reuse
		fill := byte(i + 1)
		for j := range payload {
			payload[j] = fill
		}
		cmd := qp.AcquireCommand()
		cmd.Op, cmd.NSID, cmd.LPN, cmd.Data = hostif.OpWrite, nsid, base, payload
		if err := qp.Push(now, cmd); err != nil {
			log.Fatal(err)
		}
		comp := qp.MustReap()
		if comp.Err != nil {
			if comp.Status != hostif.StatusPowerLoss {
				log.Fatalf("write failed with %v: %v", comp.Status, comp.Err)
			}
			fmt.Printf("  write %2d (lpn %3d): completion status %q — the device is gone\n",
				i, base, comp.Status)
			break
		}
		now = comp.Done
		acked[base] = fill
	}
	fmt.Printf("  %d distinct LPN ranges acknowledged before the cut\n", len(acked))

	// --- Power on #2: reopen from the backend file and recover. The
	// injector that fired is dead for good; power-on gets a fresh one.
	rc.Faults = fault.New(fault.Config{Seed: 43})
	_, ctrl2, err := rc.Reopen()
	if err != nil {
		log.Fatal(err)
	}
	d2, rep, now2, err := oxblock.New(ctrl2, oxblock.Config{LogicalPages: 1024, StripeWidth: 2}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  recovered: checkpoint=%v, %d WAL records over %d segments, %s virtual\n",
		rep.CheckpointFound, rep.ReplayedRecords, rep.ReplayedSegments, rep.Duration)

	host2 := hostif.NewHost(ctrl2, hostif.HostConfig{})
	admin2 := host2.Admin()
	nsid2, err := admin2.AttachNamespace(now2, hostif.NewBlockNamespace(d2))
	if err != nil {
		log.Fatal(err)
	}
	qp2, err := admin2.CreateIOQueuePair(now2, 1, hostif.ClassMedium)
	if err != nil {
		log.Fatal(err)
	}
	bases := make([]int64, 0, len(acked))
	for base := range acked {
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	for _, base := range bases {
		cmd := qp2.AcquireCommand()
		cmd.Op, cmd.NSID, cmd.LPN, cmd.Pages = hostif.OpRead, nsid2, base, wpages
		if err := qp2.Push(now2, cmd); err != nil {
			log.Fatal(err)
		}
		comp := qp2.MustReap()
		if comp.Err != nil {
			log.Fatalf("acked write at lpn %d lost: %v", base, comp.Err)
		}
		for _, b := range comp.Data {
			if b != acked[base] {
				log.Fatalf("acked write at lpn %d corrupted: %#x != %#x", base, b, acked[base])
			}
		}
		now2 = comp.Done
	}
	fmt.Printf("  all %d acknowledged ranges read back intact over the admin-created queue pair\n", len(acked))

	fl, err := admin2.FaultLog(now2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  fault log page: %d media ops since power-on, %d grown-bad chunks\n",
		fl.Injected.MediaOps, fl.GrownBadChunks)
	fmt.Println()
	fmt.Println("acknowledged means durable: the cut never takes back a completed write.")
}
