// recovery: Figure 3 in miniature — kill OX-Block at different points
// with and without checkpoints and watch recovery time change.
package main

import (
	"fmt"
	"log"

	"repro/internal/exp"
	"repro/internal/vclock"
)

func main() {
	cfg := exp.Fig3Config{
		FailPoints: []vclock.Duration{
			2 * vclock.Second, 4 * vclock.Second, 6 * vclock.Second, 8 * vclock.Second,
		},
		Intervals: []vclock.Duration{0, 2 * vclock.Second},
		TxnPages:  64,
		TxnEvery:  10 * vclock.Millisecond,
		Seed:      1,
	}
	points, err := exp.Figure3(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("kill -9 at T, then recover (WAL replay + checkpoint load):")
	fmt.Println()
	for _, p := range points {
		ci := "disabled"
		if p.Interval > 0 {
			ci = p.Interval.String()
		}
		fmt.Printf("  checkpoint %-9s  fail at %4.0fs  %5d txns  replayed %5d records  recovery %6.2fs\n",
			ci, p.FailAt.Seconds(), p.Txns, p.Replayed, p.RecoverySecs)
	}
	fmt.Println()
	fmt.Println("without checkpoints recovery grows with the log; with them it stays bounded.")
}
