// zns: OX-ZNS — the Zoned-Namespaces target of §2.3 implemented as an
// application-specific FTL over the Open-Channel SSD (the paper notes
// this "should be straightforward" but was never released), driven with
// the NVMe ZNS command set over a host-interface queue pair.
package main

import (
	"fmt"
	"log"

	"repro/internal/exp"
	"repro/internal/hostif"
	"repro/internal/zns"
)

func main() {
	_, ctrl, err := exp.DefaultRig().Build()
	if err != nil {
		log.Fatal(err)
	}
	tgt, err := zns.New(ctrl, zns.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OX-ZNS: %d zones of %d MB, %d KB blocks\n",
		tgt.Zones(), tgt.ZoneCapacity()>>20, tgt.BlockSize()/1024)

	host := hostif.NewHost(ctrl, hostif.HostConfig{})
	admin := host.Admin()
	nsid, err := admin.AttachNamespace(0, hostif.NewZoneNamespace(tgt))
	if err != nil {
		log.Fatal(err)
	}
	qp, err := admin.CreateIOQueuePair(0, 2, hostif.ClassMedium)
	if err != nil {
		log.Fatal(err)
	}

	// Zone append: concurrent writers need no write-pointer
	// coordination — two appends batched behind one doorbell ring.
	block := make([]byte, tgt.BlockSize())
	for i := range block {
		block[i] = 0xAB
	}
	for i := 0; i < 2; i++ {
		if _, err := qp.Submit(&hostif.Command{Op: hostif.OpZoneAppend, NSID: nsid, Zone: 0, Data: block}); err != nil {
			log.Fatal(err)
		}
	}
	qp.Ring(0)
	a1, a2 := qp.MustReap(), qp.MustReap()
	if a1.Err != nil || a2.Err != nil {
		log.Fatal(a1.Err, a2.Err)
	}
	fmt.Printf("appends landed at offsets %d and %d\n", a1.Offset, a2.Offset)
	now := a2.Done

	// Sequential-write-required: writing anywhere else fails.
	if err := qp.Push(now, &hostif.Command{Op: hostif.OpWrite, NSID: nsid, Zone: 0, LPN: 0, Data: block}); err != nil {
		log.Fatal(err)
	}
	if wc := qp.MustReap(); wc.Err != nil {
		fmt.Println("rewrite without reset correctly refused:", wc.Err)
	}

	// Read back, then reclaim the zone with a reset.
	if err := qp.Push(now, &hostif.Command{
		Op: hostif.OpRead, NSID: nsid, Zone: 0, LPN: 0, Length: int64(tgt.BlockSize()),
	}); err != nil {
		log.Fatal(err)
	}
	rc := qp.MustReap()
	if rc.Err != nil {
		log.Fatal(rc.Err)
	}
	fmt.Printf("read back %d bytes, first %#x\n", len(rc.Data), rc.Data[0])
	if err := qp.Push(rc.Done, &hostif.Command{Op: hostif.OpZoneReset, NSID: nsid, Zone: 0}); err != nil {
		log.Fatal(err)
	}
	rst := qp.MustReap()
	if rst.Err != nil {
		log.Fatal(rst.Err)
	}
	// The zone report is an admin log page — the NVMe ZNS report-zones
	// command, not data I/O.
	zones, err := admin.ZoneReport(rst.Done, nsid)
	if err != nil {
		log.Fatal(err)
	}
	zi := zones[0]
	fmt.Printf("after reset: state=%v wp=%d (virtual time %v)\n", zi.State, zi.WP, rst.Done)
}
