// zns: OX-ZNS — the Zoned-Namespaces target of §2.3 implemented as an
// application-specific FTL over the Open-Channel SSD (the paper notes
// this "should be straightforward" but was never released).
package main

import (
	"fmt"
	"log"

	"repro/internal/exp"
	"repro/internal/zns"
)

func main() {
	_, ctrl, err := exp.DefaultRig().Build()
	if err != nil {
		log.Fatal(err)
	}
	tgt, err := zns.New(ctrl, zns.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OX-ZNS: %d zones of %d MB, %d KB blocks\n",
		tgt.Zones(), tgt.ZoneCapacity()>>20, tgt.BlockSize()/1024)

	// Zone append: concurrent writers need no write-pointer coordination.
	block := make([]byte, tgt.BlockSize())
	for i := range block {
		block[i] = 0xAB
	}
	off1, now, err := tgt.Append(0, 0, block)
	if err != nil {
		log.Fatal(err)
	}
	off2, now, err := tgt.Append(now, 0, block)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("appends landed at offsets %d and %d\n", off1, off2)

	// Sequential-write-required: writing anywhere else fails.
	if _, err := tgt.Write(now, 0, 0, block); err != nil {
		fmt.Println("rewrite without reset correctly refused:", err)
	}

	// Read back, then reclaim the zone with a reset.
	got, now, err := tgt.Read(now, 0, 0, int64(tgt.BlockSize()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back %d bytes, first %#x\n", len(got), got[0])
	if now, err = tgt.Reset(now, 0); err != nil {
		log.Fatal(err)
	}
	zi, _ := tgt.Zone(0)
	fmt.Printf("after reset: state=%v wp=%d (virtual time %v)\n", zi.State, zi.WP, now)
}
