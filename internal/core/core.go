// Package core re-exports the entry points of the paper's primary
// contribution: the modular FTL toolkit (internal/ftl/ftlcore) and the
// OX controller runtime (internal/ox) it plugs into. It exists so the
// repository keeps a meaningful `internal/core` package; new code should
// import the underlying packages directly.
package core

import (
	"repro/internal/ftl/ftlcore"
	"repro/internal/ox"
)

// Controller is the OX controller runtime (§4.1's three-layer design).
type Controller = ox.Controller

// Media is the media-manager abstraction FTLs program against.
type Media = ox.Media

// PageMap is the 4 KB page-level mapping table of OX-Block.
type PageMap = ftlcore.PageMap

// Allocator is the chunk-provisioning component of Figure 2.
type Allocator = ftlcore.Allocator

// WAL is the recovery-log component of Figure 2.
type WAL = ftlcore.WAL

// Checkpointer is the checkpoint process of Figure 2.
type Checkpointer = ftlcore.Checkpointer

// GC is the garbage-collection component of Figure 2.
type GC = ftlcore.GC

// NewController wires a controller over media.
var NewController = ox.NewController

// NewPageMap creates a mapping table for n logical pages.
var NewPageMap = ftlcore.NewPageMap

// NewAllocator builds a chunk allocator over the media's chunk report.
var NewAllocator = ftlcore.NewAllocator
