// Package dbbench reproduces the db_bench workloads of §4.3: fill-
// sequential, read-sequential and read-random with 16-byte keys and
// 1 KB values, run by a configurable number of client threads. Clients
// are simulated deterministically: a discrete-event loop always advances
// the client with the smallest virtual clock, so runs are reproducible
// bit-for-bit for a given seed.
package dbbench

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/lsm"
	"repro/internal/metrics"
	"repro/internal/vclock"
)

// Workload selects a db_bench workload.
type Workload int

// The three workloads of Figure 5.
const (
	FillSequential Workload = iota
	ReadSequential
	ReadRandom
)

func (w Workload) String() string {
	switch w {
	case FillSequential:
		return "fill-sequential"
	case ReadSequential:
		return "read-sequential"
	case ReadRandom:
		return "read-random"
	default:
		return fmt.Sprintf("Workload(%d)", int(w))
	}
}

// Config shapes a run.
type Config struct {
	Clients      int
	KeySize      int // default 16 (paper)
	ValueSize    int // default 1024 (paper)
	OpsPerClient int
	Seed         int64
	// TimelineBucket is the sampling width for throughput-vs-time
	// series (Figure 6); zero disables the timeline.
	TimelineBucket vclock.Duration
}

func (c *Config) fill() error {
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.KeySize <= 0 {
		c.KeySize = 16
	}
	if c.KeySize < 10 {
		return errors.New("dbbench: keys need at least 10 bytes")
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 1024
	}
	if c.OpsPerClient <= 0 {
		return errors.New("dbbench: OpsPerClient must be positive")
	}
	return nil
}

// Result reports one run.
type Result struct {
	Workload  Workload
	Clients   int
	Ops       int64
	NotFound  int64
	Start     vclock.Time
	End       vclock.Time
	OpsPerSec float64
	Timeline  *metrics.Timeline
}

// Elapsed reports the run's virtual duration.
func (r Result) Elapsed() vclock.Duration { return r.End.Sub(r.Start) }

// KeyInto renders key index i (non-negative) in db_bench style — a
// fixed-width decimal padded to size bytes — into dst, reusing its
// capacity. Client loops pass their scratch buffer so steady-state key
// generation allocates nothing.
func KeyInto(dst []byte, i int64, size int) []byte {
	if cap(dst) < size {
		dst = make([]byte, size)
	} else {
		dst = dst[:size]
	}
	for j := range dst {
		dst[j] = '0'
	}
	var dbuf [20]byte
	d := strconv.AppendInt(dbuf[:0], i, 10)
	if len(d) > size {
		d = d[len(d)-size:]
	}
	copy(dst[size-len(d):], d)
	return dst
}

// Key is KeyInto with a fresh buffer.
func Key(i int64, size int) []byte { return KeyInto(nil, i, size) }

// ValueInto produces the deterministic value for key index i into dst,
// reusing its capacity.
func ValueInto(dst []byte, i int64, size int) []byte {
	if cap(dst) < size {
		dst = make([]byte, size)
	} else {
		dst = dst[:size]
	}
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], uint64(i)*0x9E3779B97F4A7C15+1)
	for j := 0; j < size; j++ {
		dst[j] = seed[j%8] ^ byte(j)
	}
	return dst
}

// Value is ValueInto with a fresh buffer.
func Value(i int64, size int) []byte { return ValueInto(nil, i, size) }

type client struct {
	id   int
	now  vclock.Time
	done int
	rng  *rand.Rand
	iter *lsm.Iterator
	// key and value are per-client scratch buffers: the LSM copies keys
	// and values into its own arenas, so the read/write loops reuse the
	// same two slices for every operation instead of allocating per op.
	key   []byte
	value []byte
}

// Run executes one workload against db. Fill runs write each client's
// key range; read runs assume the fill ranges exist (run FillSequential
// first, as the paper does).
func Run(db *lsm.DB, w Workload, cfg Config, start vclock.Time) (Result, error) {
	if err := cfg.fill(); err != nil {
		return Result{}, err
	}
	res := Result{Workload: w, Clients: cfg.Clients, Start: start}
	if cfg.TimelineBucket > 0 {
		res.Timeline = metrics.NewTimeline(cfg.TimelineBucket)
	}
	clients := make([]*client, cfg.Clients)
	for i := range clients {
		clients[i] = &client{
			id:  i,
			now: start,
			rng: rand.New(rand.NewSource(cfg.Seed + int64(i)*7919)),
		}
		if w == ReadSequential {
			c := clients[i]
			c.iter = db.NewIterator(&c.now)
		}
	}
	totalKeys := int64(cfg.Clients) * int64(cfg.OpsPerClient)
	var fillCounter int64

	// Discrete-event loop: always advance the laggard client.
	remaining := cfg.Clients * cfg.OpsPerClient
	for remaining > 0 {
		c := clients[0]
		for _, cand := range clients[1:] {
			if cand.done < cfg.OpsPerClient && (c.done >= cfg.OpsPerClient || cand.now < c.now) {
				c = cand
			}
		}
		if c.done >= cfg.OpsPerClient {
			break
		}
		var err error
		switch w {
		case FillSequential:
			// db_bench fillseq semantics: all threads draw from one
			// shared ascending counter, so the key stream is globally
			// sorted and L0 files stay non-overlapping.
			idx := fillCounter
			fillCounter++
			c.key = KeyInto(c.key, idx, cfg.KeySize)
			c.value = ValueInto(c.value, idx, cfg.ValueSize)
			c.now, err = db.Put(c.now, c.key, c.value)
		case ReadSequential:
			_, _, ok := c.iter.Next()
			if !ok {
				// Wrap: restart the scan (keeps op counts comparable).
				c.iter = db.NewIterator(&c.now)
				if _, _, ok = c.iter.Next(); !ok {
					return res, errors.New("dbbench: database is empty; run fill first")
				}
			}
		case ReadRandom:
			idx := c.rng.Int63n(totalKeys)
			c.key = KeyInto(c.key, idx, cfg.KeySize)
			var v []byte
			v, c.now, err = db.GetInto(c.now, c.key, c.value)
			if v != nil {
				c.value = v // keep the (possibly grown) scratch buffer
			}
			if errors.Is(err, lsm.ErrNotFound) {
				res.NotFound++
				err = nil
			}
		default:
			return res, fmt.Errorf("dbbench: unknown workload %d", w)
		}
		if err != nil {
			return res, fmt.Errorf("dbbench: client %d op %d: %w", c.id, c.done, err)
		}
		c.done++
		remaining--
		res.Ops++
		if res.Timeline != nil {
			res.Timeline.Record(c.now, 1)
		}
		if c.now > res.End {
			res.End = c.now
		}
	}
	if res.End > res.Start {
		res.OpsPerSec = metrics.Throughput(res.Ops, res.Elapsed())
	}
	return res, nil
}
