package dbbench

import (
	"bytes"
	"testing"

	"repro/internal/lsm"
	"repro/internal/vclock"
)

func testDB(t *testing.T) *lsm.DB {
	t.Helper()
	db, err := lsm.Open(lsm.Options{
		Env:           lsm.NewMemEnv(16*1024, 16),
		MemtableBytes: 64 * 1024,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestKeyEncoding(t *testing.T) {
	k := Key(42, 16)
	if len(k) != 16 {
		t.Fatalf("key length = %d", len(k))
	}
	if string(k) != "0000000000000042" {
		t.Fatalf("key = %q", k)
	}
	// Keys sort in index order.
	if !(bytes.Compare(Key(1, 16), Key(2, 16)) < 0 && bytes.Compare(Key(99, 16), Key(100, 16)) < 0) {
		t.Fatal("keys do not sort numerically")
	}
	// Deterministic values.
	if !bytes.Equal(Value(7, 100), Value(7, 100)) {
		t.Fatal("values not deterministic")
	}
	if bytes.Equal(Value(7, 100), Value(8, 100)) {
		t.Fatal("distinct keys share a value")
	}
}

func TestFillThenReadWorkloads(t *testing.T) {
	db := testDB(t)
	cfg := Config{Clients: 2, OpsPerClient: 300, ValueSize: 128, Seed: 1}
	fill, err := Run(db, FillSequential, cfg, 0)
	if err != nil {
		t.Fatalf("fill: %v", err)
	}
	if fill.Ops != 600 {
		t.Fatalf("fill ops = %d", fill.Ops)
	}
	if fill.OpsPerSec <= 0 {
		t.Fatal("fill throughput not measured")
	}
	start := db.WaitIdle(fill.End)

	rseq, err := Run(db, ReadSequential, cfg, start)
	if err != nil {
		t.Fatalf("read-seq: %v", err)
	}
	if rseq.Ops != 600 {
		t.Fatalf("read-seq ops = %d", rseq.Ops)
	}

	rrand, err := Run(db, ReadRandom, cfg, start)
	if err != nil {
		t.Fatalf("read-random: %v", err)
	}
	if rrand.Ops != 600 {
		t.Fatalf("read-random ops = %d", rrand.Ops)
	}
	// Every random read must hit (the fill wrote all keys).
	if rrand.NotFound != 0 {
		t.Fatalf("read-random missed %d keys", rrand.NotFound)
	}
}

func TestReadSeqFasterThanReadRandom(t *testing.T) {
	// The paper: "The throughput of read-sequential is much higher than
	// the throughput of read-random."
	db := testDB(t)
	cfg := Config{Clients: 1, OpsPerClient: 2000, ValueSize: 128, Seed: 2}
	fill, err := Run(db, FillSequential, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	start := db.WaitIdle(fill.End)
	rseq, err := Run(db, ReadSequential, cfg, start)
	if err != nil {
		t.Fatal(err)
	}
	rrand, err := Run(db, ReadRandom, cfg, start)
	if err != nil {
		t.Fatal(err)
	}
	if rseq.OpsPerSec <= rrand.OpsPerSec {
		t.Fatalf("read-seq (%.0f) should beat read-random (%.0f)",
			rseq.OpsPerSec, rrand.OpsPerSec)
	}
}

func TestTimelineRecorded(t *testing.T) {
	db := testDB(t)
	cfg := Config{Clients: 1, OpsPerClient: 500, ValueSize: 128, Seed: 3,
		TimelineBucket: vclock.Millisecond}
	res, err := Run(db, FillSequential, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline == nil || res.Timeline.Total() != 500 {
		t.Fatal("timeline missing or incomplete")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (vclock.Time, float64) {
		db := testDB(t)
		cfg := Config{Clients: 4, OpsPerClient: 200, ValueSize: 128, Seed: 9}
		res, err := Run(db, FillSequential, cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.End, res.OpsPerSec
	}
	e1, t1 := run()
	e2, t2 := run()
	if e1 != e2 || t1 != t2 {
		t.Fatalf("runs diverged: %v/%v vs %v/%v", e1, t1, e2, t2)
	}
}

func TestConfigValidation(t *testing.T) {
	db := testDB(t)
	if _, err := Run(db, FillSequential, Config{Clients: 1}, 0); err == nil {
		t.Fatal("zero ops should be rejected")
	}
	if _, err := Run(db, FillSequential, Config{Clients: 1, OpsPerClient: 10, KeySize: 4}, 0); err == nil {
		t.Fatal("tiny keys should be rejected")
	}
	if _, err := Run(db, ReadSequential, Config{Clients: 1, OpsPerClient: 10}, 0); err == nil {
		t.Fatal("read of empty database should be rejected")
	}
	if _, err := Run(db, Workload(99), Config{Clients: 1, OpsPerClient: 1}, 0); err == nil {
		t.Fatal("unknown workload should be rejected")
	}
}

func TestWorkloadNames(t *testing.T) {
	if FillSequential.String() != "fill-sequential" ||
		ReadSequential.String() != "read-sequential" ||
		ReadRandom.String() != "read-random" {
		t.Fatal("workload names wrong")
	}
}

func TestMultiClientSharesVirtualTime(t *testing.T) {
	// With k clients the aggregate ops are k× but elapsed should grow
	// far less than k× (clients overlap in virtual time).
	elapsed := func(clients int) vclock.Duration {
		db := testDB(t)
		cfg := Config{Clients: clients, OpsPerClient: 400, ValueSize: 128, Seed: 5}
		res, err := Run(db, FillSequential, cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed()
	}
	one := elapsed(1)
	four := elapsed(4)
	if four >= 4*one {
		t.Fatalf("4 clients took %v, 1 client %v: no overlap at all", four, one)
	}
}
