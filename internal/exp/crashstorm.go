package exp

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/fault"
	"repro/internal/hostif"
	"repro/internal/lightlsm"
	"repro/internal/lsm"
	"repro/internal/ocssd"
	"repro/internal/ox"
	"repro/internal/oxblock"
	"repro/internal/oxeleos"
	"repro/internal/vclock"
	"repro/internal/zns"
)

// CrashstormConfig parameterizes the crash-recovery storm: every FTL
// that owns recovery machinery (OX-Block, OX-ELEOS, LightLSM, OX-ZNS)
// runs on a file-backed device, is killed mid-write-burst by a power
// cut at a deterministically varying media-op count, reopened from the
// backend, and replays its recovery path; a host-side oracle then
// verifies that no acknowledged write was lost and nothing deleted was
// resurrected with wrong content. Recovery cost is virtual time, so
// the whole table is bit-identical run to run and sits in the CI
// determinism diff next to the figure tables.
type CrashstormConfig struct {
	// Cycles is the number of kill/recover cycles per FTL.
	Cycles int
	Seed   int64
	// Dir holds the backend files; empty uses a private temp directory
	// removed afterwards.
	Dir string
	// Executor/Workers select the host engine for the OX-Block storm
	// (the one storm driven through queue pairs).
	Executor hostif.ExecutorKind
	Workers  int
}

// DefaultCrashstorm returns the default configuration: 50 cycles per
// FTL, the acceptance floor.
func DefaultCrashstorm() CrashstormConfig {
	return CrashstormConfig{Cycles: 50, Seed: 9}
}

// CrashstormPoint is one FTL's row of the storm.
type CrashstormPoint struct {
	FTL        string
	Cycles     int
	Cuts       int     // power cuts fired (== Cycles)
	Acked      int64   // acknowledged operations (writes/flushes/commits/appends)
	Verified   int64   // pages/blocks read back and content-checked after recovery
	ReplaySegs int64   // WAL segments replayed across all recoveries
	ReplayRecs int64   // WAL records replayed across all recoveries
	RecoveryMs float64 // total virtual recovery time across all recoveries
	GrownBad   int64   // chunks the device retired (injected + wear)
}

// Crashstorm runs the storm on all four FTLs.
func Crashstorm(cfg CrashstormConfig) ([]CrashstormPoint, error) {
	if cfg.Cycles <= 0 {
		cfg.Cycles = DefaultCrashstorm().Cycles
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "crashstorm")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	var out []CrashstormPoint
	for _, storm := range []struct {
		name string
		run  func(CrashstormConfig, string) (CrashstormPoint, error)
	}{
		{"oxblock", crashstormBlock},
		{"oxeleos", crashstormEleos},
		{"lightlsm", crashstormLSM},
		{"oxzns", crashstormZNS},
	} {
		p, err := storm.run(cfg, dir)
		if err != nil {
			return out, fmt.Errorf("crashstorm %s: %w", storm.name, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// CrashstormTable renders the storm rows.
func CrashstormTable(points []CrashstormPoint) *Table {
	t := &Table{
		Title: "Crashstorm: power-cut kill/recover cycles per FTL (zero lost acked writes)",
		Headers: []string{"ftl", "cycles", "cuts", "acked", "verified",
			"replay_segs", "replay_recs", "recovery_virt_ms", "grown_bad"},
	}
	for _, p := range points {
		t.Add(p.FTL, p.Cycles, p.Cuts, p.Acked, p.Verified,
			p.ReplaySegs, p.ReplayRecs, p.RecoveryMs, p.GrownBad)
	}
	return t
}

// stormRig is the small durable testbed every storm starts from: 2
// groups × 2 PUs keeps restore-at-reopen cheap enough for 50 cycles,
// and 384 small chunks leave headroom for the chunks each incarnation
// strands (WAL segments of old epochs, half-written data chunks) —
// they hold recovered state and never return to the allocator pool.
func stormRig(seed int64) RigConfig {
	return RigConfig{
		Groups:        2,
		PUsPerGroup:   2,
		ChunksPerPU:   96,
		PagesPerBlock: 12, // 384 KB chunks
		CacheMB:       8,
		Seed:          seed,
		PLP:           true,
	}
}

// stormCut varies the power-cut point cycle to cycle so kills land in
// every phase of a burst: mid data stripe, mid WAL sync, mid pad.
func stormCut(cycle int) int64 {
	return int64(3 + (cycle*13)%29)
}

func sortedLPNs(m map[int64]byte) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// crashstormBlock storms OX-Block through the host interface: the
// write burst is queue-pair commands, the cut surfaces as a
// power-loss completion status, and every reopened incarnation
// recovers from checkpoint + log before the oracle re-reads all
// acknowledged transactions.
func crashstormBlock(cfg CrashstormConfig, dir string) (CrashstormPoint, error) {
	rc := stormRig(cfg.Seed)
	rc.BackendPath = filepath.Join(dir, "oxblock.img")
	const wpages = 8 // one 32 KB transaction
	const logicalPages = 2048
	p := CrashstormPoint{FTL: "oxblock", Cycles: cfg.Cycles}
	oracle := make(map[int64]byte) // transaction base LPN -> payload fill
	// pending holds the fill of the one write each cut interrupts: its
	// commit record may have reached the backend through the PLP flush
	// even though the host saw a power-loss completion, so after
	// recovery that LPN legally reads as either generation. The oracle
	// resolves to whichever the device kept.
	pending := make(map[int64]byte)
	rng := rand.New(rand.NewSource(cfg.Seed))
	payload := make([]byte, wpages*4096)

	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		inj := fault.New(fault.Config{Seed: cfg.Seed + int64(cycle)})
		rc.Faults = inj
		var dev *ocssd.Device
		var ctrl *ox.Controller
		var err error
		if cycle == 0 {
			dev, ctrl, err = rc.Build()
		} else {
			dev, ctrl, err = rc.Reopen()
		}
		if err != nil {
			return p, err
		}
		d, rep, now, err := oxblock.New(ctrl, oxblock.Config{
			LogicalPages:       logicalPages,
			StripeWidth:        1, // one stranded data chunk per incarnation
			CheckpointInterval: 20 * vclock.Millisecond,
		}, 0)
		if err != nil {
			return p, fmt.Errorf("cycle %d: recover: %w", cycle, err)
		}
		if rep != nil {
			p.ReplaySegs += int64(rep.ReplayedSegments)
			p.ReplayRecs += int64(rep.ReplayedRecords)
			p.RecoveryMs += float64(rep.Duration) / float64(vclock.Millisecond)
		}
		host := hostif.NewHost(ctrl, hostConfig(hostif.HostConfig{}, cfg.Executor, cfg.Workers))
		admin := host.Admin()
		nsid, err := admin.AttachNamespace(now, hostif.NewBlockNamespace(d))
		if err != nil {
			return p, err
		}
		qp, err := admin.CreateIOQueuePair(now, 1, hostif.ClassMedium)
		if err != nil {
			return p, err
		}

		// Oracle check: every acknowledged transaction reads back.
		for _, base := range sortedLPNs(oracle) {
			cmd := qp.AcquireCommand()
			cmd.Op, cmd.NSID, cmd.LPN, cmd.Pages = hostif.OpRead, nsid, base, wpages
			if err := qp.Push(now, cmd); err != nil {
				return p, err
			}
			comp := qp.MustReap()
			if comp.Err != nil {
				return p, fmt.Errorf("cycle %d: lost acked txn at lpn %d: %w", cycle, base, comp.Err)
			}
			want := oracle[base]
			if alt, ok := pending[base]; ok && len(comp.Data) > 0 && comp.Data[0] == alt {
				want = alt // the cut write's commit record survived
			}
			for i, b := range comp.Data {
				if b != want {
					return p, fmt.Errorf("cycle %d: lpn %d byte %d = %#x, want %#x",
						cycle, base, i, b, want)
				}
			}
			oracle[base] = want
			now = comp.Done
			p.Verified += wpages
		}
		// The cut ambiguity is settled once one recovery has run.
		pending = make(map[int64]byte)

		// Write burst until the armed cut kills the device. Cycle 0
		// first lays down a few unarmed transactions so there is always
		// a log to recover.
		burst := func(armed bool) error {
			for i := 0; ; i++ {
				if armed && i > 400 {
					return errors.New("power cut never fired")
				}
				base := rng.Int63n(logicalPages/wpages) * wpages
				fill := byte(cycle*31+i*7) | 1
				for j := range payload {
					payload[j] = fill
				}
				cmd := qp.AcquireCommand()
				cmd.Op, cmd.NSID, cmd.LPN = hostif.OpWrite, nsid, base
				cmd.Data = payload
				if err := qp.Push(now, cmd); err != nil {
					return err
				}
				comp := qp.MustReap()
				if comp.Err != nil {
					if comp.Status != hostif.StatusPowerLoss {
						return fmt.Errorf("write failed with status %v: %w", comp.Status, comp.Err)
					}
					pending[base] = fill
					p.Cuts++
					return nil
				}
				now = comp.Done
				oracle[base] = fill
				p.Acked++
				if !armed && i >= 3 {
					return nil
				}
			}
		}
		if cycle == 0 {
			if err := burst(false); err != nil {
				return p, err
			}
		}
		inj.PowerCut(stormCut(cycle))
		if err := burst(true); err != nil {
			return p, fmt.Errorf("cycle %d: %w", cycle, err)
		}
		p.GrownBad = dev.FaultLog().GrownBadChunks
		dev.Close()
	}
	return p, nil
}

// crashstormEleos storms OX-ELEOS: flush bursts of variable pages,
// occasional deletes, recovery by full log replay. A flush interrupted
// by the cut may or may not have reached durability (the PLP flush can
// persist its WAL record); the oracle accepts either generation and
// resolves to what the device actually kept. A delete is logged
// lazily, so until a later acknowledged flush syncs the log the oracle
// accepts the page resurfacing with its old content.
func crashstormEleos(cfg CrashstormConfig, dir string) (CrashstormPoint, error) {
	rc := stormRig(cfg.Seed + 100)
	rc.BackendPath = filepath.Join(dir, "oxeleos.img")
	ecfg := oxeleos.Config{BufferBytes: 1 << 20, StripeWidth: 1}
	const pageBytes = 4096
	const idSpace = 48
	p := CrashstormPoint{FTL: "oxeleos", Cycles: cfg.Cycles}

	oracle := make(map[int64]int)  // id -> acked generation, -1 deleted
	pending := make(map[int64]int) // id -> generation of a cut flush
	// pendingDel holds the prior generation of ids whose delete is not
	// yet known durable (no acked flush since).
	pendingDel := make(map[int64]int)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	content := func(id int64, gen int) []byte {
		b := make([]byte, pageBytes)
		for j := range b {
			b[j] = byte(int(id)*11 + gen*101 + j)
		}
		return b
	}
	sortedIDs := func() []int64 {
		out := make([]int64, 0, len(oracle))
		for id := range oracle {
			out = append(out, id)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}

	gen := 1
	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		inj := fault.New(fault.Config{Seed: cfg.Seed + 200 + int64(cycle)})
		rc.Faults = inj
		var dev *ocssd.Device
		var ctrl *ox.Controller
		var err error
		var s *oxeleos.Store
		if cycle == 0 {
			if dev, ctrl, err = rc.Build(); err != nil {
				return p, err
			}
			if s, err = oxeleos.New(ctrl, ecfg); err != nil {
				return p, err
			}
		} else {
			if dev, ctrl, err = rc.Reopen(); err != nil {
				return p, err
			}
			var rep *oxeleos.RecoveryReport
			if s, rep, err = oxeleos.Recover(0, ctrl, ecfg); err != nil {
				return p, fmt.Errorf("cycle %d: recover: %w", cycle, err)
			}
			p.ReplaySegs += int64(rep.ReplayedSegments)
			p.ReplayRecs += int64(rep.ReplayedRecords)
			p.RecoveryMs += float64(rep.End) / float64(vclock.Millisecond)
		}
		now := vclock.Time(0)

		// Oracle check.
		for _, id := range sortedIDs() {
			want := oracle[id]
			got, end, err := s.ReadPage(now, id)
			switch {
			case want < 0 && err != nil:
				if !errors.Is(err, oxeleos.ErrNotFound) {
					return p, fmt.Errorf("cycle %d: page %d: %w", cycle, id, err)
				}
				delete(pendingDel, id)
			case want < 0 && err == nil:
				// Delete not yet durable: only its old content may appear.
				old, has := pendingDel[id]
				if !has || !bytes.Equal(got, content(id, old)) {
					return p, fmt.Errorf("cycle %d: deleted page %d resurrected with wrong content", cycle, id)
				}
				oracle[id] = old
				now = end
				p.Verified++
			case err != nil:
				return p, fmt.Errorf("cycle %d: lost acked page %d: %w", cycle, id, err)
			default:
				ok := bytes.Equal(got, content(id, want))
				if pg, has := pending[id]; has && !ok && bytes.Equal(got, content(id, pg)) {
					oracle[id] = pg
					ok = true
				}
				if !ok {
					return p, fmt.Errorf("cycle %d: page %d content mismatch", cycle, id)
				}
				now = end
				p.Verified++
			}
			delete(pending, id)
		}

		// Flush burst until the cut; one delete per cycle keeps the
		// trim replay path hot.
		if len(oracle) > 4 && cycle%2 == 1 {
			victim := sortedIDs()[cycle%len(oracle)]
			if oracle[victim] >= 0 {
				if end, err := s.Delete(now, victim); err == nil {
					pendingDel[victim] = oracle[victim]
					oracle[victim] = -1
					now = end
				} else if !errors.Is(err, oxeleos.ErrNotFound) {
					return p, fmt.Errorf("cycle %d: delete %d: %w", cycle, victim, err)
				}
			}
		}
		inj.PowerCut(stormCut(cycle))
		for i := 0; ; i++ {
			if i > 400 {
				return p, fmt.Errorf("cycle %d: power cut never fired", cycle)
			}
			gen++
			ids := []int64{rng.Int63n(idSpace), rng.Int63n(idSpace)}
			if ids[1] == ids[0] {
				ids[1] = (ids[0] + 1) % idSpace
			}
			buf := make([]byte, 0, len(ids)*pageBytes)
			var descs []oxeleos.PageDesc
			for k, id := range ids {
				buf = append(buf, content(id, gen)...)
				descs = append(descs, oxeleos.PageDesc{ID: id, Offset: k * pageBytes, Length: pageBytes})
			}
			end, err := s.Flush(now, buf, descs)
			if err != nil {
				if !errors.Is(err, fault.ErrPowerCut) {
					return p, fmt.Errorf("cycle %d: flush: %w", cycle, err)
				}
				for _, id := range ids {
					pending[id] = gen
				}
				p.Cuts++
				break
			}
			now = end
			for _, id := range ids {
				oracle[id] = gen
				delete(pending, id)
			}
			// An acked sync flush also made every earlier delete durable.
			for id := range pendingDel {
				delete(pendingDel, id)
			}
			p.Acked++
		}
		p.GrownBad = dev.FaultLog().GrownBadChunks
		dev.Close()
	}
	return p, nil
}

// crashstormLSM storms LightLSM: SSTable commit bursts, rolling
// deletes, recovery by metadata-log replay. A commit interrupted by
// the cut may still be durable (the PLP flush can persist its record);
// such tables are verified if present. Deleted tables may resurrect
// when the lazily-logged trim was lost, but only with intact content —
// Recover prunes half-deleted and chunk-conflicted tables.
func crashstormLSM(cfg CrashstormConfig, dir string) (CrashstormPoint, error) {
	rc := stormRig(cfg.Seed + 300)
	rc.BackendPath = filepath.Join(dir, "lightlsm.img")
	lcfg := lightlsm.Config{TableChunks: 2}
	const tableBlocks = 3
	const maxLive = 6
	p := CrashstormPoint{FTL: "lightlsm", Cycles: cfg.Cycles}

	type entry struct {
		h    lsm.TableHandle
		fill byte
	}
	var live []entry     // committed and acknowledged tables, commit order
	var maybeDel []entry // deleted, trim record possibly not yet durable

	verifyTable := func(e *lightlsm.Env, now *vclock.Time, en entry, dst []byte) error {
		for b := 0; b < en.h.Blocks; b++ {
			end, err := e.ReadBlock(*now, en.h, b, dst)
			if err != nil {
				return fmt.Errorf("table %d block %d: %w", en.h.ID, b, err)
			}
			*now = end
			fill := en.fill + byte(b)
			for j, got := range dst {
				if got != fill {
					return fmt.Errorf("table %d block %d byte %d = %#x, want %#x",
						en.h.ID, b, j, got, fill)
				}
			}
			p.Verified++
		}
		return nil
	}

	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		inj := fault.New(fault.Config{Seed: cfg.Seed + 400 + int64(cycle)})
		rc.Faults = inj
		var dev *ocssd.Device
		var ctrl *ox.Controller
		var err error
		var e *lightlsm.Env
		if cycle == 0 {
			if dev, ctrl, err = rc.Build(); err != nil {
				return p, err
			}
			if e, err = lightlsm.New(ctrl, lcfg); err != nil {
				return p, err
			}
		} else {
			if dev, ctrl, err = rc.Reopen(); err != nil {
				return p, err
			}
			var rep *lightlsm.RecoveryReport
			if e, rep, err = lightlsm.Recover(0, ctrl, lcfg); err != nil {
				return p, fmt.Errorf("cycle %d: recover: %w", cycle, err)
			}
			p.ReplaySegs += int64(rep.ReplayedSegments)
			p.ReplayRecs += int64(rep.ReplayedRecords)
			p.RecoveryMs += float64(rep.End) / float64(vclock.Millisecond)
		}
		now := vclock.Time(0)
		dst := make([]byte, e.BlockSize())

		// Every acknowledged commit must read back intact.
		for _, en := range live {
			if err := verifyTable(e, &now, en, dst); err != nil {
				return p, fmt.Errorf("cycle %d: lost committed table: %w", cycle, err)
			}
		}
		// A lazily-logged delete may have been lost: the table may
		// resurrect, but only with intact content; re-delete it.
		for _, en := range maybeDel {
			if _, ok := e.TableChunks(en.h.ID); !ok {
				continue
			}
			if err := verifyTable(e, &now, en, dst); err != nil {
				return p, fmt.Errorf("cycle %d: resurrected table corrupt: %w", cycle, err)
			}
			if now, err = e.DeleteTable(now, en.h); err != nil {
				return p, fmt.Errorf("cycle %d: re-delete %d: %w", cycle, en.h.ID, err)
			}
		}
		// Roll the window before arming: deletes stay un-armed so a
		// mid-delete cut cannot half-reset a verified table.
		for len(live) > maxLive {
			en := live[0]
			live = live[1:]
			if now, err = e.DeleteTable(now, en.h); err != nil {
				return p, fmt.Errorf("cycle %d: delete %d: %w", cycle, en.h.ID, err)
			}
			maybeDel = append(maybeDel, en)
		}

		// Commit burst until the cut fires.
		inj.PowerCut(stormCut(cycle))
		for i := 0; ; i++ {
			if i > 400 {
				return p, fmt.Errorf("cycle %d: power cut never fired", cycle)
			}
			fill := byte(cycle*17+i*5) | 1
			w, err := e.CreateTable(now)
			if err != nil {
				return p, fmt.Errorf("cycle %d: create: %w", cycle, err)
			}
			cut := false
			for b := 0; b < tableBlocks && !cut; b++ {
				for j := range dst {
					dst[j] = fill + byte(b)
				}
				end, err := w.Append(now, dst)
				if err != nil {
					if !errors.Is(err, fault.ErrPowerCut) {
						return p, fmt.Errorf("cycle %d: append: %w", cycle, err)
					}
					cut = true
					break
				}
				now = end
			}
			if cut {
				p.Cuts++
				break
			}
			h, end, err := w.Commit(now)
			if err != nil {
				if !errors.Is(err, fault.ErrPowerCut) {
					return p, fmt.Errorf("cycle %d: commit: %w", cycle, err)
				}
				// The commit record may still have reached durability
				// via the PLP flush, but no handle was returned, so
				// the table is unaddressable garbage: it stays out of
				// the oracle and its chunks stay stranded — the sizing
				// headroom of stormRig absorbs them.
				p.Cuts++
				break
			}
			now = end
			live = append(live, entry{h: h, fill: fill})
			p.Acked++
			// This durable sync also made every earlier trim durable.
			maybeDel = maybeDel[:0]
		}
		p.GrownBad = dev.FaultLog().GrownBadChunks
		dev.Close()
	}
	return p, nil
}

// crashstormZNS storms OX-ZNS on a non-PLP device with torn writes
// enabled: zone appends are whole write-units, so an acknowledged
// append is durable by the data-before-record ordering of the backend,
// while a cut mid-program persists only a stripe prefix that the
// restored write pointer excludes. Zone state is rebuilt from chunk
// metadata alone — no log, no replay.
func crashstormZNS(cfg CrashstormConfig, dir string) (CrashstormPoint, error) {
	rc := stormRig(cfg.Seed + 500)
	rc.PLP = false
	rc.BackendPath = filepath.Join(dir, "oxzns.img")
	p := CrashstormPoint{FTL: "oxzns", Cycles: cfg.Cycles}

	var oracle [][]byte // per zone: fill byte of each acked block
	pendingReset := make(map[int]bool)
	rng := rand.New(rand.NewSource(cfg.Seed + 2))

	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		inj := fault.New(fault.Config{Seed: cfg.Seed + 600 + int64(cycle), TornWrites: true})
		rc.Faults = inj
		var dev *ocssd.Device
		var ctrl *ox.Controller
		var err error
		if cycle == 0 {
			dev, ctrl, err = rc.Build()
		} else {
			dev, ctrl, err = rc.Reopen()
		}
		if err != nil {
			return p, err
		}
		t, err := zns.New(ctrl, zns.Config{})
		if err != nil {
			return p, fmt.Errorf("cycle %d: rebuild: %w", cycle, err)
		}
		if oracle == nil {
			oracle = make([][]byte, t.Zones())
		}
		blockBytes := int64(t.BlockSize())
		blocksPerZone := int(t.ZoneCapacity() / blockBytes)
		now := vclock.Time(0)

		// Oracle check: restored write pointers exclude torn stripes
		// and cover exactly the acknowledged appends.
		for z := 0; z < t.Zones(); z++ {
			if pendingReset[z] {
				// The cut hit mid-reset: state is indeterminate, so
				// finish the reset and restart the zone's history.
				if now, err = t.Reset(now, z); err != nil {
					return p, fmt.Errorf("cycle %d: re-reset zone %d: %w", cycle, z, err)
				}
				delete(pendingReset, z)
				oracle[z] = nil
				continue
			}
			info, err := t.Zone(z)
			if err != nil {
				return p, err
			}
			want := int64(len(oracle[z])) * blockBytes
			if info.WP != want {
				return p, fmt.Errorf("cycle %d: zone %d wp = %d, want %d (acked blocks %d)",
					cycle, z, info.WP, want, len(oracle[z]))
			}
			for b, fill := range oracle[z] {
				data, end, err := t.Read(now, z, int64(b)*blockBytes, blockBytes)
				if err != nil {
					return p, fmt.Errorf("cycle %d: zone %d block %d: %w", cycle, z, b, err)
				}
				now = end
				for j, got := range data {
					if got != fill {
						return p, fmt.Errorf("cycle %d: zone %d block %d byte %d = %#x, want %#x",
							cycle, z, b, j, got, fill)
					}
				}
				p.Verified++
			}
		}

		// Append burst until the cut fires. The burst works a bounded
		// set of zones: every partially filled zone holds its chunk
		// open across incarnations, and an unbounded working set would
		// eventually trip the device's open-chunks-per-PU limit.
		const zoneSpan = 32
		span := zoneSpan
		if span > t.Zones() {
			span = t.Zones()
		}
		inj.PowerCut(stormCut(cycle))
		block := make([]byte, blockBytes)
		cut := false
		for i := 0; !cut; i++ {
			if i > 400 {
				return p, fmt.Errorf("cycle %d: power cut never fired", cycle)
			}
			z := rng.Intn(span)
			if len(oracle[z]) >= blocksPerZone {
				end, err := t.Reset(now, z)
				if err != nil {
					if !errors.Is(err, fault.ErrPowerCut) {
						return p, fmt.Errorf("cycle %d: reset zone %d: %w", cycle, z, err)
					}
					pendingReset[z] = true
					p.Cuts++
					cut = true
					break
				}
				now = end
				oracle[z] = nil
			}
			fill := byte(cycle*7+i*3) | 1
			for j := range block {
				block[j] = fill
			}
			_, end, err := t.Append(now, z, block)
			if err != nil {
				if !errors.Is(err, fault.ErrPowerCut) {
					return p, fmt.Errorf("cycle %d: append zone %d: %w", cycle, z, err)
				}
				p.Cuts++
				cut = true
				break
			}
			now = end
			oracle[z] = append(oracle[z], fill)
			p.Acked++
		}
		p.GrownBad = dev.FaultLog().GrownBadChunks
		dev.Close()
	}
	return p, nil
}
