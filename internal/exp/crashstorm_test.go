package exp

import (
	"testing"

	"repro/internal/hostif"
)

// TestCrashstormShape runs a reduced storm (the full 50-cycle run is
// cmd/oxbench -run crashstorm and the CI determinism diff) and checks
// the invariants the scenario exists to enforce: every cycle fired a
// cut, nothing acknowledged was lost (Crashstorm errors out on any
// integrity violation), and the log-structured FTLs actually replayed
// records — a storm that never exercises recovery proves nothing.
func TestCrashstormShape(t *testing.T) {
	cfg := DefaultCrashstorm()
	cfg.Cycles = 10
	pts, err := Crashstorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d storm rows, want 4", len(pts))
	}
	for _, p := range pts {
		if p.Cuts != cfg.Cycles {
			t.Errorf("%s: %d cuts over %d cycles, want one per cycle", p.FTL, p.Cuts, cfg.Cycles)
		}
		if p.Acked == 0 || p.Verified == 0 {
			t.Errorf("%s: acked=%d verified=%d, storm did no work", p.FTL, p.Acked, p.Verified)
		}
		switch p.FTL {
		case "oxblock", "oxeleos", "lightlsm":
			if p.ReplayRecs == 0 {
				t.Errorf("%s: no WAL records replayed across %d recoveries", p.FTL, cfg.Cycles)
			}
		case "oxzns":
			// Zone state rebuilds from chunk metadata alone.
			if p.ReplayRecs != 0 {
				t.Errorf("oxzns: replayed %d records, want 0 (no log)", p.ReplayRecs)
			}
		}
	}
}

// TestCrashstormDeterministic pins the storm table bit-for-bit across
// two runs, including under the pipelined executor: recovery time is
// virtual, cut points are op-count-based, and the oracle iterates in
// sorted order, so nothing in the table may wobble.
func TestCrashstormDeterministic(t *testing.T) {
	run := func(ex hostif.ExecutorKind, workers int) string {
		cfg := DefaultCrashstorm()
		cfg.Cycles = 6
		cfg.Executor, cfg.Workers = ex, workers
		pts, err := Crashstorm(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return CrashstormTable(pts).CSV()
	}
	a := run(hostif.ExecutorSerial, 0)
	if b := run(hostif.ExecutorSerial, 0); a != b {
		t.Fatalf("storm table differs between runs:\n%s\nvs\n%s", a, b)
	}
	if p := run(hostif.ExecutorPipelined, 4); a != p {
		t.Fatalf("storm table differs under pipelined executor:\n%s\nvs\n%s", a, p)
	}
}
