package exp

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/dbbench"
	"repro/internal/hostif"
	"repro/internal/lightlsm"
	"repro/internal/vclock"
)

// Scaled-down configurations keep these integration tests fast; the
// full-scale runs live in the root bench_test.go and cmd/oxbench.

func smallFig3() Fig3Config {
	return Fig3Config{
		FailPoints: []vclock.Duration{2 * vclock.Second, 4 * vclock.Second, 6 * vclock.Second},
		Intervals:  []vclock.Duration{0, 1 * vclock.Second},
		TxnPages:   64,
		TxnEvery:   20 * vclock.Millisecond,
		Seed:       3,
	}
}

func TestFigure3Shape(t *testing.T) {
	points, err := Figure3(smallFig3())
	if err != nil {
		t.Fatal(err)
	}
	byInterval := map[vclock.Duration][]Fig3Point{}
	for _, p := range points {
		byInterval[p.Interval] = append(byInterval[p.Interval], p)
	}
	none := byInterval[0]
	ckpt := byInterval[vclock.Second]
	if len(none) != 3 || len(ckpt) != 3 {
		t.Fatalf("points: %d/%d", len(none), len(ckpt))
	}
	// Without checkpoints, recovery grows with the failure time.
	if !(none[0].RecoverySecs < none[2].RecoverySecs) {
		t.Fatalf("no-checkpoint recovery not increasing: %v vs %v",
			none[0].RecoverySecs, none[2].RecoverySecs)
	}
	// With checkpoints, recovery at the last failure point is far lower.
	if ckpt[2].RecoverySecs >= none[2].RecoverySecs/2 {
		t.Fatalf("checkpointing did not bound recovery: %.3f vs %.3f",
			ckpt[2].RecoverySecs, none[2].RecoverySecs)
	}
	// Replay volume shrinks accordingly.
	if ckpt[2].Replayed >= none[2].Replayed {
		t.Fatalf("checkpointing did not bound replay: %d vs %d",
			ckpt[2].Replayed, none[2].Replayed)
	}
	// The render includes every failure point.
	table := Figure3Table(points)
	out := table.Render()
	if !strings.Contains(out, "T=2s") || !strings.Contains(out, "T=6s") {
		t.Fatalf("table missing rows:\n%s", out)
	}
}

func smallFig5() Fig5Config {
	return Fig5Config{
		ClientCounts:     []int{1, 4, 8},
		FillOpsPerClient: 16000,
		ReadOpsPerClient: 1500,
		Seed:             7,
		TimelineBucket:   100 * vclock.Millisecond,
		PagesPerBlock:    12, // 384 KB chunks → 12 MB tables
		MemtableMB:       8,
	}
}

func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	cells, err := Figure5(smallFig5())
	if err != nil {
		t.Fatal(err)
	}
	get := func(w dbbench.Workload, p lightlsm.Placement, c int) float64 {
		for _, cell := range cells {
			if cell.Workload == w && cell.Placement == p && cell.Clients == c {
				return cell.KOps
			}
		}
		t.Fatalf("missing cell %v %v %d", w, p, c)
		return 0
	}
	// Shape 1: writes are much faster than reads (write-back cache).
	if get(dbbench.FillSequential, lightlsm.Horizontal, 1) <= get(dbbench.ReadRandom, lightlsm.Horizontal, 1) {
		t.Error("fill should beat read-random (write-back policy)")
	}
	// Shape 2: read-sequential beats read-random.
	for _, p := range []lightlsm.Placement{lightlsm.Horizontal, lightlsm.Vertical} {
		if get(dbbench.ReadSequential, p, 1) <= get(dbbench.ReadRandom, p, 1) {
			t.Errorf("%v: read-seq should beat read-random", p)
		}
	}
	// Shape 3: under flush backpressure (4 clients here), horizontal fill
	// beats vertical fill — the SSTable is striped across all PUs, so a
	// single flush streams at the whole device's bandwidth rather than
	// one group's (§4.3: "with one thread we observe 4x more throughput
	// with horizontal placement").
	h4 := get(dbbench.FillSequential, lightlsm.Horizontal, 4)
	v4 := get(dbbench.FillSequential, lightlsm.Vertical, 4)
	if h4 <= v4 {
		t.Errorf("horizontal fill (%.1f) should beat vertical (%.1f) under backpressure", h4, v4)
	}
	// Shape 4: horizontal fill degrades sharply at 8 clients (§4.3:
	// "performance degrades by 60% when considering 4 or 8 db_bench
	// threads"). NOTE: the paper's 8-client vertical>horizontal
	// crossover — which the authors themselves call "unexpected" — is
	// not reproduced; see EXPERIMENTS.md.
	h8 := get(dbbench.FillSequential, lightlsm.Horizontal, 8)
	if h8 >= h4*0.6 {
		t.Errorf("horizontal fill should degrade at 8 clients: %.1f -> %.1f", h4, h8)
	}
	// Shape 5: horizontal placement dominates vertical on reads
	// ("Horizontal placement consistently dominates vertical placement",
	// with marginal impact) — allow a small tolerance.
	for _, n := range []int{4, 8} {
		hr := get(dbbench.ReadRandom, lightlsm.Horizontal, n)
		vr := get(dbbench.ReadRandom, lightlsm.Vertical, n)
		if hr < vr*0.9 {
			t.Errorf("%d clients: horizontal read-random (%.1f) far below vertical (%.1f)", n, hr, vr)
		}
	}
	// Figure 6 tables render with timelines.
	f6 := Figure6Table(cells, lightlsm.Horizontal)
	if len(f6.Rows) == 0 {
		t.Error("figure 6 table empty")
	}
	if !strings.Contains(Figure5Table(cells).Render(), "fill-seq horiz") {
		t.Error("figure 5 render broken")
	}
}

func TestFigure7Shape(t *testing.T) {
	cfg := DefaultFig7()
	cfg.BuffersPerThread = 10
	points, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	// Utilization is monotone in thread count and saturates by 2 threads
	// (the paper: "The storage controller is saturated with 2 host
	// threads").
	if points[0].Utilization >= 0.95 {
		t.Errorf("1 thread already saturated: %.2f", points[0].Utilization)
	}
	if points[1].Utilization < 0.85 {
		t.Errorf("2 threads should (near-)saturate the bus: %.2f", points[1].Utilization)
	}
	if points[2].Utilization < 0.93 || points[3].Utilization < 0.93 {
		t.Errorf("4/8 threads should pin the bus: %.2f %.2f",
			points[2].Utilization, points[3].Utilization)
	}
	// Throughput stops scaling once the bus is saturated.
	if points[3].MBps > points[1].MBps*1.35 {
		t.Errorf("throughput kept scaling past saturation: %v", points)
	}
	if len(Figure7Table(points).Rows) != 4 {
		t.Error("figure 7 table broken")
	}
}

func TestFigure7ZeroCopyAblation(t *testing.T) {
	base := DefaultFig7()
	base.BuffersPerThread = 8
	base.ThreadCounts = []int{2}
	with, err := Figure7(base)
	if err != nil {
		t.Fatal(err)
	}
	base.ZeroCopyRX = true
	without, err := Figure7(base)
	if err != nil {
		t.Fatal(err)
	}
	// §4.4: avoiding the RX copy raises achievable throughput.
	if without[0].MBps <= with[0].MBps {
		t.Errorf("zero-copy should raise throughput: %.0f vs %.0f",
			without[0].MBps, with[0].MBps)
	}
}

func TestGCLocalityMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	cfg := DefaultGCLocality()
	cfg.TxnsPerWriter = 2400
	points, err := GCLocality(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Collections == 0 {
			t.Fatalf("%d channels: GC never ran", p.Channels)
		}
		// The paper: 87.5% at 8 channels, 93.7% at 16. Allow ±8pp of
		// sampling noise around the structural expectation (in-window
		// samples are sparse at test scale).
		if diff := p.Unaffected - p.Expected; diff < -0.08 || diff > 0.08 {
			t.Errorf("%d channels: unaffected %.1f%%, expected %.1f%%",
				p.Channels, p.Unaffected*100, p.Expected*100)
		}
	}
	if len(GCLocalityTable(points).Rows) != len(points) {
		t.Error("table broken")
	}
}

func TestUnitOfWriteMatchesPaper(t *testing.T) {
	rows := UnitOfWrite()
	lookup := func(cell, planes int) int {
		for _, r := range rows {
			if int(r.Cell) == cell && r.Planes == planes {
				return r.Unit
			}
		}
		return -1
	}
	// §2.2: dual-plane TLC → 24 sectors = 96 KB.
	if lookup(3, 2) != 96*1024 {
		t.Errorf("TLC×2 = %d, want 96KB", lookup(3, 2))
	}
	// §2.1: QLC with 4 planes → 256 KB.
	if lookup(4, 4) != 256*1024 {
		t.Errorf("QLC×4 = %d, want 256KB", lookup(4, 4))
	}
	// SLC single plane: one 16 KB page.
	if lookup(1, 1) != 16*1024 {
		t.Errorf("SLC×1 = %d, want 16KB", lookup(1, 1))
	}
	if len(UnitOfWriteTable(rows).Rows) != 12 {
		t.Error("table should have 12 rows")
	}
}

func smallQD() QDSweepConfig {
	return QDSweepConfig{
		Depths:       []int{1, 4, 16},
		Ops:          400,
		TxnPages:     32,
		ReadPages:    32,
		LogicalPages: 4096,
		Seed:         17,
	}
}

func TestQDSweepShape(t *testing.T) {
	points, err := QDSweep(smallQD())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Deeper queues never lose throughput at this scale...
	if points[2].KIOPS < points[0].KIOPS {
		t.Errorf("QD16 throughput (%.2f) below QD1 (%.2f)", points[2].KIOPS, points[0].KIOPS)
	}
	// ...and pay for it in queueing latency.
	if points[2].WriteLat.Percentile(99) < points[0].WriteLat.Percentile(99) {
		t.Errorf("QD16 write p99 (%v) below QD1 (%v)",
			points[2].WriteLat.Percentile(99), points[0].WriteLat.Percentile(99))
	}
	for _, p := range points {
		if p.WriteLat.Count()+p.ReadLat.Count() != int64(p.Ops) {
			t.Errorf("QD%d: %d latencies recorded for %d ops",
				p.Depth, p.WriteLat.Count()+p.ReadLat.Count(), p.Ops)
		}
	}
	out := QDSweepTable(points).Render()
	if !strings.Contains(out, "wr p99") || !strings.Contains(out, "rd p50") {
		t.Fatalf("table missing latency columns:\n%s", out)
	}
}

// TestQDSweepDeterministic pins the queue-pair determinism contract at
// the scenario level: two runs with the same seed render byte-identical
// tables.
func TestQDSweepDeterministic(t *testing.T) {
	cfg := smallQD()
	cfg.Depths = []int{4}
	a, err := QDSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := QDSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := QDSweepTable(a).Render(), QDSweepTable(b).Render()
	if ta != tb {
		t.Fatalf("tables differ across identical runs:\n%s\nvs\n%s", ta, tb)
	}
}

func TestTenantsFairness(t *testing.T) {
	cfg := DefaultTenants()
	cfg.OpsPerTenant = 300
	cfg.PagesPerTenant = 2048
	points, err := Tenants(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != cfg.Tenants {
		t.Fatalf("points = %d", len(points))
	}
	// Symmetric tenants behind round-robin arbitration finish with
	// near-identical throughput.
	minK, maxK := points[0].KIOPS, points[0].KIOPS
	for _, p := range points {
		if p.KIOPS < minK {
			minK = p.KIOPS
		}
		if p.KIOPS > maxK {
			maxK = p.KIOPS
		}
	}
	if minK <= 0 || maxK/minK > 1.10 {
		t.Errorf("tenant throughput unfair: min %.2f max %.2f kIOPS", minK, maxK)
	}
	if len(TenantsTable(points).Rows) != cfg.Tenants {
		t.Error("tenants table broken")
	}
}

// TestFig5NotifyMatchesPoll: the db_bench grid produces the identical
// table whether the host-interface client polls Reap or consumes
// interrupt-style notifications — the end-to-end timing-equality proof
// behind the notification-mode baseline entry.
func TestFig5NotifyMatchesPoll(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	cfg := smallFig5()
	cfg.ClientCounts = []int{2}
	poll, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Notify = true
	notified, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := Figure5Table(poll).Render(), Figure5Table(notified).Render()
	if a != b {
		t.Fatalf("notification mode changed the table:\n%s\nvs\n%s", a, b)
	}
}

func TestTenantsQoSIsolation(t *testing.T) {
	cfg := DefaultTenantsQoS()
	cfg.OpsPerTenant = 200
	cfg.PagesPerTenant = 2048
	points, err := TenantsQoS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != cfg.Tenants {
		t.Fatalf("points = %d", len(points))
	}
	iso := func(p TenantPoint) float64 {
		if p.SoloP99 <= 0 {
			t.Fatalf("tenant %d missing solo baseline", p.Tenant)
		}
		return p.Lat.Percentile(99).Seconds() / p.SoloP99.Seconds()
	}
	// The high-class tenant pushes 4x the load yet its isolation factor
	// must not exceed the low-class batch tenant's.
	if hi, lo := iso(points[0]), iso(points[3]); hi > lo {
		t.Errorf("high-class isolation %.2fx worse than low-class %.2fx", hi, lo)
	}
	table := TenantsQoSTable(points)
	if len(table.Rows) != cfg.Tenants {
		t.Error("QoS table broken")
	}
	if out := table.Render(); !strings.Contains(out, "high") || !strings.Contains(out, "solo p99") {
		t.Errorf("QoS render missing columns:\n%s", out)
	}
}

func TestWRRSweepShape(t *testing.T) {
	cfg := DefaultWRRSweep()
	cfg.Ops = 180
	cfg.PagesPerTenant = 2048
	run := func() []WRRPoint {
		points, err := WRRSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return points
	}
	points := run()
	if len(points) != len(cfg.Classes) {
		t.Fatalf("points = %d", len(points))
	}
	// Sharing the batch tenant's low class must cost tail latency
	// against every preempting class.
	low := points[len(points)-1]
	for _, p := range points[:len(points)-1] {
		if low.Lat.Percentile(99) < p.Lat.Percentile(99) {
			t.Errorf("low-class p99 %v beat %v-class p99 %v",
				low.Lat.Percentile(99), p.Class, p.Lat.Percentile(99))
		}
	}
	// Deterministic: an identical run renders the identical table.
	if a, b := WRRSweepTable(points).Render(), WRRSweepTable(run()).Render(); a != b {
		t.Fatalf("tables differ across identical runs:\n%s\nvs\n%s", a, b)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "T", Headers: []string{"a", "b"}}
	tab.Add("x", 1.5)
	tab.Add("longer", "cell,with,commas")
	out := tab.Render()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "1.500") {
		t.Fatalf("render:\n%s", out)
	}
	csv := tab.CSV()
	if !strings.Contains(csv, `"cell,with,commas"`) {
		t.Fatalf("csv escaping broken:\n%s", csv)
	}
}

// TestExecutorEquivalence is the table-level oracle of the execution
// engines: every scenario renders a byte-identical table under the
// serial reference executor, the pipelined one, and the batched one.
// Scaled-down configurations keep it fast; the full-scale twin is the
// CI determinism job, which regenerates the figure CSVs in all modes
// and diffs them.
func TestExecutorEquivalence(t *testing.T) {
	const workers = 4
	cases := []struct {
		name string
		run  func(ex hostif.ExecutorKind) (string, error)
	}{
		{"fig3", func(ex hostif.ExecutorKind) (string, error) {
			cfg := smallFig3()
			cfg.Executor, cfg.Workers = ex, workers
			p, err := Figure3(cfg)
			if err != nil {
				return "", err
			}
			return Figure3Table(p).Render(), nil
		}},
		{"fig7", func(ex hostif.ExecutorKind) (string, error) {
			cfg := DefaultFig7()
			cfg.BuffersPerThread = 6
			cfg.ThreadCounts = []int{1, 2}
			cfg.Executor, cfg.Workers = ex, workers
			p, err := Figure7(cfg)
			if err != nil {
				return "", err
			}
			return Figure7Table(p).Render(), nil
		}},
		{"gc", func(ex hostif.ExecutorKind) (string, error) {
			cfg := DefaultGCLocality()
			cfg.ChannelCounts = []int{8}
			cfg.TxnsPerWriter = 300
			cfg.Executor, cfg.Workers = ex, workers
			p, err := GCLocality(cfg)
			if err != nil {
				return "", err
			}
			return GCLocalityTable(p).Render(), nil
		}},
		{"qd", func(ex hostif.ExecutorKind) (string, error) {
			cfg := smallQD()
			cfg.Depths = []int{4}
			cfg.Executor, cfg.Workers = ex, workers
			p, err := QDSweep(cfg)
			if err != nil {
				return "", err
			}
			return QDSweepTable(p).Render(), nil
		}},
		{"tenants", func(ex hostif.ExecutorKind) (string, error) {
			cfg := DefaultTenants()
			cfg.OpsPerTenant = 200
			cfg.PagesPerTenant = 2048
			cfg.Executor, cfg.Workers = ex, workers
			p, err := Tenants(cfg)
			if err != nil {
				return "", err
			}
			return TenantsTable(p).Render(), nil
		}},
		{"qdwrr", func(ex hostif.ExecutorKind) (string, error) {
			cfg := DefaultWRRSweep()
			cfg.Ops = 200
			cfg.Classes = []hostif.Class{hostif.ClassHigh, hostif.ClassLow}
			cfg.Executor, cfg.Workers = ex, workers
			p, err := WRRSweep(cfg)
			if err != nil {
				return "", err
			}
			return WRRSweepTable(p).Render(), nil
		}},
		{"offload", func(ex hostif.ExecutorKind) (string, error) {
			cfg := DefaultOffload()
			cfg.ValueSizes = []int{1024, 16384}
			cfg.FillMB = 1
			cfg.Gets = 64
			cfg.ScanMasks = []byte{0x0F}
			cfg.Scans = 24
			cfg.LogicalPages = 1024
			cfg.CompactMB = 4
			cfg.Executor, cfg.Workers = ex, workers
			p, err := Offload(cfg)
			if err != nil {
				return "", err
			}
			return OffloadTable(p).Render(), nil
		}},
		{"scale", func(ex hostif.ExecutorKind) (string, error) {
			// Scale verifies serial≡pipelined≡batched equality internally
			// on every run; here we additionally pin that two invocations
			// agree on the deterministic virtual columns (wall/speedup
			// vary run to run and are excluded).
			p, err := Scale(smallScale())
			if err != nil {
				return "", err
			}
			var out strings.Builder
			for _, pt := range p {
				fmt.Fprintf(&out, "%d %s %d %v %.0f\n", pt.PUs, pt.Executor, pt.Ops, pt.Elapsed, pt.VirtMBps)
			}
			return out.String(), nil
		}},
	}
	if !testing.Short() {
		// fig5 runs the mini-RocksDB end to end; keep it but at the
		// smallest grid.
		cases = append(cases, struct {
			name string
			run  func(ex hostif.ExecutorKind) (string, error)
		}{"fig5", func(ex hostif.ExecutorKind) (string, error) {
			cfg := smallFig5()
			cfg.ClientCounts = []int{2}
			cfg.FillOpsPerClient = 4000
			cfg.ReadOpsPerClient = 500
			cfg.Executor, cfg.Workers = ex, workers
			c, err := Figure5(cfg)
			if err != nil {
				return "", err
			}
			return Figure5Table(c).Render(), nil
		}})
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial, err := tc.run(hostif.ExecutorSerial)
			if err != nil {
				t.Fatal(err)
			}
			for _, ex := range []hostif.ExecutorKind{hostif.ExecutorPipelined, hostif.ExecutorBatched} {
				got, err := tc.run(ex)
				if err != nil {
					t.Fatal(err)
				}
				if serial != got {
					t.Fatalf("executor %s changed the table:\n--- serial ---\n%s\n--- %s ---\n%s", ex, serial, ex, got)
				}
			}
		})
	}
}

func smallScale() ScaleConfig {
	return ScaleConfig{
		PUCounts:     []int{1, 4, 128},
		Workers:      []int{2},
		BatchSizes:   []int{4},
		AppendsPerPU: 24,
		MaxOps:       512,
		AppendBlocks: 2,
		Seed:         13,
	}
}

// TestScaleShape checks the scale sweep's structure: the serial row,
// every worker row and every batch row agree on virtual timing
// (enforced inside Scale), the pipelined rows realize overlap on
// multi-PU geometry, the batched rows amortize arbitration
// acquisitions, the packed per-chunk metadata stays within budget, and
// the table renders every row. One PU count above 64 exercises the
// deep-group geometry (64 groups, PUs/group > 1) with the MaxOps cap.
func TestScaleShape(t *testing.T) {
	cfg := smallScale()
	points, err := Scale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(cfg.PUCounts) * (1 + len(cfg.Workers) + len(cfg.BatchSizes))
	if len(points) != wantRows {
		t.Fatalf("points = %d, want %d", len(points), wantRows)
	}
	var sawOverlap, sawBatched bool
	for _, p := range points {
		if p.PUs > 1 && p.Executor == hostif.ExecutorPipelined && p.Overlapped > 0 {
			sawOverlap = true
		}
		if p.Executor == hostif.ExecutorSerial && p.Overlapped != 0 {
			t.Errorf("serial row reports overlap: %+v", p)
		}
		if p.Executor == hostif.ExecutorBatched {
			sawBatched = true
			if p.BatchSize != cfg.BatchSizes[0] {
				t.Errorf("batched row batch size = %d, want %d", p.BatchSize, cfg.BatchSizes[0])
			}
			// With several queues feeding one doorbell instant, a batch
			// of 4 must take fewer acquisitions than grants.
			if p.PUs > 1 && p.AcqPerGrant >= 1 {
				t.Errorf("batched %d-PU row did not amortize: acq/grant = %.3f", p.PUs, p.AcqPerGrant)
			}
		}
		if p.MetaBytesPerChunk <= 0 || p.MetaBytesPerChunk >= 64 {
			t.Errorf("%d-PU metadata footprint out of budget: %.1f B/chunk (packed struct is 24 B)", p.PUs, p.MetaBytesPerChunk)
		}
	}
	if !sawOverlap {
		t.Error("pipelined multi-PU rows realized no overlap")
	}
	if !sawBatched {
		t.Error("no batched rows in sweep")
	}
	if rows := len(ScaleTable(points).Rows); rows != wantRows {
		t.Fatalf("table rows = %d, want %d", rows, wantRows)
	}
}
