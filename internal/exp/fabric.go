package exp

import (
	"container/heap"
	"fmt"
	"math/rand"

	"repro/internal/fabrics"
	"repro/internal/hostif"
	"repro/internal/metrics"
	"repro/internal/vclock"
)

// FabricConfig parameterizes the fabric overload scenario: hundreds of
// simulated hosts, each with its own fabric connection (one queue pair
// per connection), driving the served controller open-loop. Arrivals
// are Poisson per client; a client with a full command window queues
// the op in a bounded backlog and sheds it when the backlog is full —
// the backpressure path. A subset of clients churns: they abruptly
// drop their connection every ChurnEvery completions and redial,
// exercising the server's reap-and-release cleanup mid-run.
//
// A single-threaded orchestrator sequences everything through a global
// virtual-time event heap (ties broken by client then sequence
// number), so although hundreds of real connections and server
// goroutines exist, at most one doorbell is in flight at any moment
// and the output is a pure function of the seed: every column is
// virtual-time-derived and lands in the CI determinism diff.
type FabricConfig struct {
	// Clients is the number of simulated hosts (one connection each),
	// assigned round-robin to the high, medium and low WRR classes.
	Clients int
	// OpsPerClient is the number of open-loop arrivals each client
	// generates per load point.
	OpsPerClient int
	// Window is each client's command window (and the queue depth its
	// handshake requests): ops beyond it wait in the backlog.
	Window int
	// BacklogCap bounds the per-client backlog; arrivals past it are
	// shed — the scenario's explicit backpressure signal.
	BacklogCap int
	// TxnPages / ReadPages size writes and reads in 4 KB pages.
	TxnPages  int
	ReadPages int
	// LogicalPages sizes the OX-Block namespace.
	LogicalPages int64
	// Loads are offered-load multipliers of the calibrated closed-loop
	// capacity; values past 1.0 drive the device into overload.
	Loads []float64
	// CalOps / CalDepth parameterize the calibration run that measures
	// capacity on a fresh rig before the load points.
	CalOps   int
	CalDepth int
	// ChurnClients is how many clients drop and redial their
	// connection every ChurnEvery completed ops.
	ChurnClients int
	ChurnEvery   int
	// Executor/Workers select the host's command-service engine.
	Executor hostif.ExecutorKind
	Workers  int
	Seed     int64
	// Addr, when non-empty, targets an already-running oxfabd server
	// instead of a fresh loopback rig per load point. Remote targets
	// accumulate state across points, so output is not deterministic
	// run-to-run; the CI determinism diff only pins the default.
	Addr string
	// NSID is the namespace to drive in Addr mode (default 1).
	NSID int
}

// DefaultFabric returns the default scenario shape: 240 clients, a
// load sweep from comfortable to past saturation, and a quarter of the
// fleet churning.
func DefaultFabric() FabricConfig {
	return FabricConfig{
		Clients:      240,
		OpsPerClient: 40,
		Window:       4,
		BacklogCap:   8,
		TxnPages:     8,
		ReadPages:    8,
		LogicalPages: 8192,
		Loads:        []float64{0.6, 1.0, 1.5},
		CalOps:       1200,
		CalDepth:     32,
		ChurnClients: 60,
		ChurnEvery:   15,
		Seed:         23,
		NSID:         1,
	}
}

// qd maps the scenario's rig knobs onto the qd-sweep config it reuses
// for rig construction and capacity calibration.
func (cfg FabricConfig) qd() QDSweepConfig {
	return QDSweepConfig{
		TxnPages:     cfg.TxnPages,
		ReadPages:    cfg.ReadPages,
		LogicalPages: cfg.LogicalPages,
		Executor:     cfg.Executor,
		Workers:      cfg.Workers,
		Seed:         cfg.Seed,
	}
}

// fabricClasses maps the table's class columns to WRR classes.
var fabricClasses = [3]hostif.Class{hostif.ClassHigh, hostif.ClassMedium, hostif.ClassLow}

// FabricPoint is one load point of the scenario.
type FabricPoint struct {
	Load          float64
	OfferedKIOPS  float64
	AchievedKIOPS float64
	Done          int
	Shed          int
	Redials       int
	Elapsed       vclock.Duration
	// Lat holds per-class open-loop latency (arrival to completion,
	// including backlog wait), indexed as fabricClasses.
	Lat [3]*metrics.Histogram
}

// Event kinds for the orchestrator heap.
const (
	evArrival = iota
	evSlotFree
)

// fabricEvent is one entry in the global virtual-time event heap.
// Backlogged arrivals keep their generation instant in the client's
// backlog slice, not here.
type fabricEvent struct {
	t      vclock.Time
	client int
	seq    uint64
	kind   int
}

type eventHeap []fabricEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	if h[i].client != h[j].client {
		return h[i].client < h[j].client
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(fabricEvent)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h *eventHeap) next() fabricEvent { return heap.Pop(h).(fabricEvent) }

// fabricClient is one simulated host's live state.
type fabricClient struct {
	qp        *fabrics.QueuePair
	class     hostif.Class
	classIdx  int
	rng       *rand.Rand
	draw      func(*hostif.Command)
	interval  float64 // mean inter-arrival time in virtual seconds
	free      int     // open window slots
	backlog   []vclock.Time
	generated int
	completed int
	churn     bool
}

// Fabric runs the scenario: calibrate closed-loop capacity, then one
// open-loop run per offered-load multiplier.
func Fabric(cfg FabricConfig) ([]FabricPoint, error) {
	capacity, err := fabricCapacity(cfg)
	if err != nil {
		return nil, fmt.Errorf("fabric calibration: %w", err)
	}
	var out []FabricPoint
	for _, load := range cfg.Loads {
		p, err := fabricPoint(cfg, load, capacity)
		if err != nil {
			return out, fmt.Errorf("fabric load %.2f: %w", load, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// fabricCapacity measures the device's closed-loop capacity in IOPS at
// CalDepth: the denominator that turns Loads into arrival rates. The
// default mode calibrates on a fresh rig (qdRunFabric builds its own);
// Addr mode calibrates against the remote server.
func fabricCapacity(cfg FabricConfig) (float64, error) {
	q := cfg.qd()
	q.Ops = cfg.CalOps
	var p QDPoint
	var err error
	if cfg.Addr == "" {
		p, err = qdRunFabric(q, cfg.CalDepth)
	} else {
		cli := fabrics.Dial(cfg.Addr)
		var qp *fabrics.QueuePair
		qp, err = cli.QueuePair(0, cfg.CalDepth, hostif.ClassMedium, 1)
		if err != nil {
			return 0, err
		}
		p, err = qdMeasure(q, cfg.CalDepth, cfg.NSID, 0, qp)
		qp.Close()
	}
	if err != nil {
		return 0, err
	}
	if p.KIOPS <= 0 {
		return 0, fmt.Errorf("calibration measured no throughput")
	}
	return p.KIOPS * 1000, nil
}

// fabricPoint runs one load point: fresh rig and server (default mode),
// prefill, then the open-loop event heap until every arrival is
// generated and every issued command's window slot has freed.
func fabricPoint(cfg FabricConfig, load, capacity float64) (FabricPoint, error) {
	cli, nsid, now, cleanup, err := fabricConnect(cfg)
	if err != nil {
		return FabricPoint{}, err
	}
	defer cleanup()

	// Prefill through a synchronous queue pair so reads hit mapped
	// pages; the measured run starts at the prefill's end instant.
	data := make([]byte, cfg.TxnPages*4096)
	pre, err := cli.QueuePair(now, 1, hostif.ClassMedium, 1)
	if err != nil {
		return FabricPoint{}, err
	}
	now, err = prefillBlock(pre, nsid, cfg.LogicalPages, cfg.TxnPages, data, now)
	pre.Close()
	if err != nil {
		return FabricPoint{}, err
	}

	p := FabricPoint{
		Load:         load,
		OfferedKIOPS: load * capacity / 1000,
	}
	for i := range p.Lat {
		p.Lat[i] = metrics.NewHistogram()
	}

	// Build the fleet: one connection per client, classes round-robin,
	// the churn subset spread evenly across classes.
	clients := make([]*fabricClient, cfg.Clients)
	perClient := load * capacity / float64(cfg.Clients)
	for i := range clients {
		c := &fabricClient{
			class:    fabricClasses[i%3],
			classIdx: i % 3,
			rng:      rand.New(rand.NewSource(cfg.Seed + int64(i)*7919)),
			interval: 1 / perClient,
			free:     cfg.Window,
			churn:    i < cfg.ChurnClients,
		}
		c.draw = mixedDraw(c.rng, nsid, cfg.LogicalPages, cfg.TxnPages, cfg.ReadPages, data)
		if c.qp, err = cli.QueuePair(now, cfg.Window, c.class, 1); err != nil {
			return FabricPoint{}, err
		}
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			c.qp.Close()
		}
	}()

	var (
		h      eventHeap
		seq    uint64
		end    = now
		start  = now
		redial = func(c *fabricClient, t vclock.Time) error {
			c.qp.Close()
			qp, err := cli.QueuePair(t, cfg.Window, c.class, 1)
			if err != nil {
				return err
			}
			c.qp = qp
			p.Redials++
			return nil
		}
	)
	push := func(t vclock.Time, client, kind int) {
		seq++
		heap.Push(&h, fabricEvent{t: t, client: client, seq: seq, kind: kind})
	}
	// issue submits one op at virtual time t (arrival genT may be
	// earlier if it waited in the backlog), rings the doorbell, and
	// reaps its completion immediately: the completion's Done instant
	// is when the window slot frees, so the heap — not the wire —
	// decides when the next queued op may go.
	issue := func(ci int, c *fabricClient, genT, t vclock.Time) error {
		c.free--
		cmd := c.qp.AcquireCommand()
		c.draw(cmd)
		if err := c.qp.Push(t, cmd); err != nil {
			return err
		}
		comp, ok := c.qp.Reap()
		if !ok {
			return c.qp.Err()
		}
		if comp.Err != nil {
			return comp.Err
		}
		p.Lat[c.classIdx].Observe(comp.Done.Sub(genT))
		p.Done++
		if comp.Done > end {
			end = comp.Done
		}
		push(comp.Done, ci, evSlotFree)
		c.completed++
		if c.churn && c.completed%cfg.ChurnEvery == 0 {
			return redial(c, t)
		}
		return nil
	}

	for i, c := range clients {
		push(now.Add(expDur(c)), i, evArrival)
	}
	for h.Len() > 0 {
		ev := h.next()
		c := clients[ev.client]
		switch ev.kind {
		case evArrival:
			c.generated++
			if c.generated < cfg.OpsPerClient {
				push(ev.t.Add(expDur(c)), ev.client, evArrival)
			}
			switch {
			case c.free > 0:
				if err := issue(ev.client, c, ev.t, ev.t); err != nil {
					return FabricPoint{}, err
				}
			case len(c.backlog) < cfg.BacklogCap:
				c.backlog = append(c.backlog, ev.t)
			default:
				p.Shed++
			}
		case evSlotFree:
			c.free++
			if len(c.backlog) > 0 {
				genT := c.backlog[0]
				c.backlog = c.backlog[1:]
				if err := issue(ev.client, c, genT, ev.t); err != nil {
					return FabricPoint{}, err
				}
			}
		}
	}

	p.Elapsed = end.Sub(start)
	if p.Elapsed > 0 {
		p.AchievedKIOPS = float64(p.Done) / p.Elapsed.Seconds() / 1000
	}
	return p, nil
}

// expDur draws one exponential inter-arrival gap from the client's
// stream.
func expDur(c *fabricClient) vclock.Duration {
	return vclock.Duration(c.rng.ExpFloat64() * c.interval * float64(vclock.Second))
}

// fabricConnect yields the scenario's client: a fresh loopback rig and
// server by default, or a dialer at the configured remote address.
func fabricConnect(cfg FabricConfig) (cli *fabrics.Client, nsid int, now vclock.Time, cleanup func(), err error) {
	if cfg.Addr != "" {
		nsid = cfg.NSID
		if nsid == 0 {
			nsid = 1
		}
		return fabrics.Dial(cfg.Addr), nsid, 0, func() {}, nil
	}
	host, nsid, now, err := qdRig(cfg.qd())
	if err != nil {
		return nil, 0, 0, nil, err
	}
	srv := fabrics.NewServer(host)
	return fabrics.Loopback(srv), nsid, now, func() { srv.Close() }, nil
}

// FabricTable renders the scenario: offered versus achieved load, shed
// and redial counts, and per-class open-loop latency percentiles.
func FabricTable(points []FabricPoint) *Table {
	t := &Table{
		Title: "Fabric overload: open-loop Poisson clients over the TCP transport (per-class arrival-to-completion latency)",
		Headers: []string{"load", "offer kIOPS", "ach kIOPS", "done", "shed", "redials",
			"hi p50", "hi p95", "hi p99",
			"md p50", "md p95", "md p99",
			"lo p50", "lo p95", "lo p99"},
	}
	for _, p := range points {
		cells := []any{fmt.Sprintf("%.2f", p.Load),
			fmt.Sprintf("%.1f", p.OfferedKIOPS), fmt.Sprintf("%.1f", p.AchievedKIOPS),
			p.Done, p.Shed, p.Redials}
		for _, h := range p.Lat {
			for _, s := range metrics.LatencyRow(h) {
				cells = append(cells, s)
			}
		}
		t.Add(cells...)
	}
	return t
}
