package exp

import (
	"strings"
	"testing"
)

// TestFabricLoopbackEquivalence is the wire layer's semantic-drift
// gate: the qd sweep driven through the loopback fabrics transport
// must render byte-for-byte the same CSV as the in-process queue-pair
// run. Virtual timing is a pure function of the submission history;
// if the transport added, reordered or retimed anything, the tables
// would diverge.
func TestFabricLoopbackEquivalence(t *testing.T) {
	cfg := DefaultQDSweep()
	cfg.Depths = []int{1, 4, 16}
	cfg.Ops = 400
	cfg.LogicalPages = 4096

	local, err := QDSweep(cfg)
	if err != nil {
		t.Fatalf("in-process sweep: %v", err)
	}
	fabric, err := QDSweepLoopback(cfg)
	if err != nil {
		t.Fatalf("loopback sweep: %v", err)
	}
	want := QDSweepTable(local).CSV()
	got := QDSweepTable(fabric).CSV()
	if want != got {
		t.Fatalf("fabric transport drifted from in-process run\nin-process:\n%s\nfabric:\n%s", want, got)
	}
}

// smallFabric is a scaled-down scenario config for tests: enough
// clients and churn to exercise every code path, small enough to run
// in seconds.
func smallFabric() FabricConfig {
	cfg := DefaultFabric()
	cfg.Clients = 24
	cfg.OpsPerClient = 12
	cfg.LogicalPages = 2048
	cfg.CalOps = 300
	cfg.Loads = []float64{0.8, 1.8}
	cfg.ChurnClients = 6
	cfg.ChurnEvery = 5
	cfg.BacklogCap = 4
	return cfg
}

// TestFabricScenario runs the overload scenario twice at a small scale
// and checks (1) the overload point actually overloads — it sheds
// arrivals and its latency exceeds the comfortable point's — and
// (2) the rendered CSV is byte-identical across runs: the real TCP
// connections and goroutines underneath must not leak into the
// virtual-time columns.
func TestFabricScenario(t *testing.T) {
	cfg := smallFabric()
	run := func() ([]FabricPoint, string) {
		points, err := Fabric(cfg)
		if err != nil {
			t.Fatalf("fabric scenario: %v", err)
		}
		return points, FabricTable(points).CSV()
	}
	points, csv1 := run()
	_, csv2 := run()
	if csv1 != csv2 {
		t.Fatalf("fabric scenario is nondeterministic\nfirst:\n%s\nsecond:\n%s", csv1, csv2)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	under, over := points[0], points[1]
	if under.Done == 0 || over.Done == 0 {
		t.Fatalf("no completed ops: under=%d over=%d", under.Done, over.Done)
	}
	if over.Shed == 0 {
		t.Errorf("overload point shed nothing (load %.2f, done %d) — backpressure path unexercised", over.Load, over.Done)
	}
	if under.Redials == 0 || over.Redials == 0 {
		t.Errorf("no connection churn: under=%d over=%d redials", under.Redials, over.Redials)
	}
	for i, h := range over.Lat {
		if h.Count() == 0 {
			t.Errorf("class column %d has no samples", i)
		} else if h.Percentile(99) < under.Lat[i].Percentile(99) {
			t.Errorf("class %d p99 under overload (%v) below comfortable load (%v)",
				i, h.Percentile(99), under.Lat[i].Percentile(99))
		}
	}
	if !strings.Contains(csv1, "\n") {
		t.Fatalf("unexpected CSV shape:\n%s", csv1)
	}
}
