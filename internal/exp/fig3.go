package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/hostif"
	"repro/internal/oxblock"
	"repro/internal/vclock"
)

// Fig3Config parameterizes the Figure 3 reproduction: OX-Block serves a
// paced stream of random transactional writes; at each failure point the
// controller is killed and recovery time is measured, for checkpointing
// disabled and for two checkpoint intervals.
//
// Scale note: the paper runs minutes of workload against a 1.4 TB drive
// and reports recovery up to ~100 s. The simulated drive and the
// failure points are scaled down together (see EXPERIMENTS.md); the
// shape — linear growth without checkpoints, bounded oscillation with
// them, little difference between the two intervals — is preserved.
type Fig3Config struct {
	// FailPoints are the T1..T6 kill instants.
	FailPoints []vclock.Duration
	// Intervals are the checkpoint settings; 0 means disabled.
	Intervals []vclock.Duration
	// TxnPages is the size of each random write in 4 KB pages (≤ 256,
	// the paper's "random writes of up to 1 MB").
	TxnPages int
	// TxnEvery paces the writer (one transaction per TxnEvery).
	TxnEvery vclock.Duration
	Seed     int64
	// Executor/Workers select the host's command-service engine
	// (results are identical for either engine).
	Executor hostif.ExecutorKind
	Workers  int
}

// DefaultFig3 returns the scaled default configuration.
func DefaultFig3() Fig3Config {
	return Fig3Config{
		FailPoints: []vclock.Duration{
			10 * vclock.Second, 20 * vclock.Second, 30 * vclock.Second,
			40 * vclock.Second, 50 * vclock.Second, 60 * vclock.Second,
		},
		Intervals: []vclock.Duration{0, 10 * vclock.Second, 30 * vclock.Second},
		TxnPages:  128, // 512 KB transactions
		TxnEvery:  20 * vclock.Millisecond,
		Seed:      42,
	}
}

// Fig3Point is one measurement of Figure 3.
type Fig3Point struct {
	Interval     vclock.Duration // 0 = checkpoint disabled
	FailAt       vclock.Duration
	Txns         int
	RecoverySecs float64
	Replayed     int
	Checkpoints  int64
}

// Figure3 runs the whole grid and returns one point per (interval,
// failure time).
func Figure3(cfg Fig3Config) ([]Fig3Point, error) {
	var out []Fig3Point
	for _, ci := range cfg.Intervals {
		for _, failAt := range cfg.FailPoints {
			p, err := figure3Run(cfg, ci, failAt)
			if err != nil {
				return out, fmt.Errorf("fig3 Ci=%v T=%v: %w", ci, failAt, err)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

func figure3Run(cfg Fig3Config, interval, failAt vclock.Duration) (Fig3Point, error) {
	rigCfg := DefaultRig()
	rigCfg.Seed = cfg.Seed
	dev, ctrl, err := rigCfg.Build()
	if err != nil {
		return Fig3Point{}, err
	}
	geo := dev.Geometry()
	logicalPages := int64(geo.TotalPUs()) * int64(geo.ChunksPerPU) * int64(geo.SectorsPerChunk()) / 4
	blkCfg := oxblock.Config{
		LogicalPages:       logicalPages,
		CheckpointInterval: interval,
		// Per-record replay cost: one commit record carries TxnPages
		// mapping updates; ~30 µs per update on the ARM controller.
		CPUPerRecordReplay: vclock.Duration(cfg.TxnPages) * 30 * vclock.Microsecond,
	}
	d, _, now, err := oxblock.New(ctrl, blkCfg, 0)
	if err != nil {
		return Fig3Point{}, err
	}

	// The paced writer is one host actor on one queue pair (depth 1):
	// each transaction is a Write command submitted with a doorbell ring
	// at the writer's clock and reaped before the next is issued. Setup
	// is pure control plane: namespace attach and queue-pair creation
	// are admin commands over queue 0.
	host := hostif.NewHost(ctrl, hostConfig(hostif.HostConfig{}, cfg.Executor, cfg.Workers))
	admin := host.Admin()
	nsid, err := admin.AttachNamespace(now, hostif.NewBlockNamespace(d))
	if err != nil {
		return Fig3Point{}, err
	}
	qp, err := admin.CreateIOQueuePair(now, 1, hostif.ClassMedium)
	if err != nil {
		return Fig3Point{}, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	data := make([]byte, cfg.TxnPages*4096) // zero payload: content-free
	deadline := vclock.Time(failAt)
	txns := 0
	next := now
	for next < deadline {
		// Depth 1: the arena hands back the same recycled slot each loop.
		cmd := qp.AcquireCommand()
		cmd.Op, cmd.NSID, cmd.Data = hostif.OpWrite, nsid, data
		cmd.LPN = rng.Int63n(logicalPages - int64(cfg.TxnPages))
		if err := qp.Push(next, cmd); err != nil {
			return Fig3Point{}, fmt.Errorf("txn %d: %w", txns, err)
		}
		comp := qp.MustReap()
		if comp.Err != nil {
			return Fig3Point{}, fmt.Errorf("txn %d: %w", txns, comp.Err)
		}
		txns++
		// Paced submission: the next transaction starts one period after
		// the previous submission, or when the previous one finished.
		next = vclock.Max(comp.Done, next.Add(cfg.TxnEvery))
	}

	// Read the checkpoint counter over the admin queue, then kill -9:
	// all volatile state is lost.
	st, err := admin.NamespaceStats(next, nsid)
	if err != nil {
		return Fig3Point{}, err
	}
	ckpts := st.(oxblock.Stats).Checkpoints
	dev.Crash()
	_, report, _, err := oxblock.New(ctrl, blkCfg, deadline)
	if err != nil {
		return Fig3Point{}, fmt.Errorf("recovery: %w", err)
	}
	p := Fig3Point{
		Interval:    interval,
		FailAt:      failAt,
		Txns:        txns,
		Checkpoints: ckpts,
	}
	if report != nil {
		p.RecoverySecs = report.Duration.Seconds()
		p.Replayed = report.ReplayedRecords
	}
	return p, nil
}

// Figure3Table renders the grid the way the paper's plot is read:
// one row per failure point, one column per checkpoint setting.
func Figure3Table(points []Fig3Point) *Table {
	t := &Table{
		Title:   "Figure 3: impact of checkpoint intervals on recovery time (seconds)",
		Headers: []string{"fail at", "no checkpoint", "Ci=10s", "Ci=30s", "replayed (none/10/30)"},
	}
	byFail := map[vclock.Duration]map[vclock.Duration]Fig3Point{}
	var fails []vclock.Duration
	for _, p := range points {
		m, ok := byFail[p.FailAt]
		if !ok {
			m = map[vclock.Duration]Fig3Point{}
			byFail[p.FailAt] = m
			fails = append(fails, p.FailAt)
		}
		m[p.Interval] = p
	}
	for _, f := range fails {
		m := byFail[f]
		t.Add(
			fmt.Sprintf("T=%.0fs", f.Seconds()),
			fmt.Sprintf("%.2f", m[0].RecoverySecs),
			fmt.Sprintf("%.2f", m[10*vclock.Second].RecoverySecs),
			fmt.Sprintf("%.2f", m[30*vclock.Second].RecoverySecs),
			fmt.Sprintf("%d / %d / %d", m[0].Replayed, m[10*vclock.Second].Replayed, m[30*vclock.Second].Replayed),
		)
	}
	return t
}
