package exp

import (
	"fmt"

	"repro/internal/dbbench"
	"repro/internal/hostif"
	"repro/internal/lightlsm"
	"repro/internal/lsm"
	"repro/internal/metrics"
	"repro/internal/vclock"
)

// Fig5Config parameterizes the db_bench reproduction (Figures 5 and 6):
// fill-sequential, read-sequential and read-random with 16 B keys and
// 1 KB values, for horizontal and vertical SSTable placement across
// client counts. Data volume is scaled down from the paper's 3 GB per
// client (see EXPERIMENTS.md); SSTable sizing keeps the paper's rule
// (chunks = number of PUs, so SSTable = #PUs × chunk size).
type Fig5Config struct {
	ClientCounts []int
	// FillOpsPerClient is the number of 1 KB puts per client.
	FillOpsPerClient int
	// ReadOpsPerClient bounds the read workloads.
	ReadOpsPerClient int
	Seed             int64
	// TimelineBucket samples fill throughput over time (Figure 6).
	TimelineBucket vclock.Duration
	// PagesPerBlock sizes the rig's chunks (48 → 1.5 MB chunks and
	// 48 MB SSTables with the paper's 32-PU striping rule).
	PagesPerBlock int
	// MemtableMB sizes the write buffer; the paper pins SSTable size
	// (768 MB) to the flush size, so this should be close to the
	// 32-chunk table capacity.
	MemtableMB int
	// Notify switches the host-interface client from Reap-polling to
	// interrupt-style completion notification (timing-equivalent; the
	// tables are identical either way).
	Notify bool
	// Executor/Workers select the host's command-service engine
	// (results are identical for either engine).
	Executor hostif.ExecutorKind
	Workers  int
}

// DefaultFig5 returns the scaled default configuration.
func DefaultFig5() Fig5Config {
	return Fig5Config{
		ClientCounts:     []int{1, 2, 4, 8},
		FillOpsPerClient: 64_000, // 64 MB per client (paper: 3 GB)
		ReadOpsPerClient: 4_000,
		Seed:             7,
		TimelineBucket:   200 * vclock.Millisecond,
		PagesPerBlock:    48, // 1.5 MB chunks → 48 MB SSTables
		MemtableMB:       32,
	}
}

// Fig5Cell is one bar of Figure 5.
type Fig5Cell struct {
	Workload  dbbench.Workload
	Placement lightlsm.Placement
	Clients   int
	KOps      float64 // thousands of operations per second
	Stall     vclock.Duration
	Timeline  *metrics.Timeline // fill only (Figure 6)
}

// Figure5 runs the full grid: for each placement and client count it
// fills a fresh database, then runs the two read workloads over it.
func Figure5(cfg Fig5Config) ([]Fig5Cell, error) {
	var out []Fig5Cell
	for _, placement := range []lightlsm.Placement{lightlsm.Horizontal, lightlsm.Vertical} {
		for _, clients := range cfg.ClientCounts {
			cells, err := figure5Run(cfg, placement, clients)
			if err != nil {
				return out, fmt.Errorf("fig5 %v %d clients: %w", placement, clients, err)
			}
			out = append(out, cells...)
		}
	}
	return out, nil
}

func figure5Run(cfg Fig5Config, placement lightlsm.Placement, clients int) ([]Fig5Cell, error) {
	rigCfg := DefaultRig()
	rigCfg.Seed = cfg.Seed
	if cfg.PagesPerBlock > 0 {
		rigCfg.PagesPerBlock = cfg.PagesPerBlock
	}
	// Keep the write-back cache small relative to the fill volume so
	// media drain speed matters, as it does at the paper's 3 GB scale.
	rigCfg.CacheMB = 4
	_, ctrl, err := rigCfg.Build()
	if err != nil {
		return nil, err
	}
	env, err := lightlsm.New(ctrl, lightlsm.Config{Placement: placement})
	if err != nil {
		return nil, err
	}
	// The database drives the FTL through the host interface: every
	// SSTable command (create/append/commit/read/delete) crosses a
	// queue pair instead of calling LightLSM directly. Attachment is
	// all admin-queue commands; cfg.Notify swaps Reap-polling for
	// interrupt-style completion delivery.
	host := hostif.NewHost(ctrl, hostConfig(hostif.HostConfig{}, cfg.Executor, cfg.Workers))
	cli, err := hostif.AttachLSM(host, env)
	if err != nil {
		return nil, err
	}
	if cfg.Notify {
		cli.EnableNotify()
	}
	memtable := int64(cfg.MemtableMB)
	if memtable <= 0 {
		memtable = 32
	}
	db, err := lsm.Open(lsm.Options{
		Env:           cli,
		MemtableBytes: memtable << 20,
		// Flush pipelining grows with client pressure: a deeper write-
		// buffer queue over four background flushes lets vertical
		// placement spread concurrent flushes across groups.
		MaxImmutables: 6,
		FlushWorkers:  4,
		Seed:          cfg.Seed,
		// RocksDB's rate limiter, whose throttling the paper blames for
		// Figure 6's fluctuation.
		RateLimitMBps: 400,
	})
	if err != nil {
		return nil, err
	}

	bench := dbbench.Config{
		Clients:        clients,
		KeySize:        16,
		ValueSize:      1024,
		OpsPerClient:   cfg.FillOpsPerClient,
		Seed:           cfg.Seed,
		TimelineBucket: cfg.TimelineBucket,
	}
	fill, err := dbbench.Run(db, dbbench.FillSequential, bench, 0)
	if err != nil {
		return nil, fmt.Errorf("fill: %w", err)
	}
	cells := []Fig5Cell{{
		Workload:  dbbench.FillSequential,
		Placement: placement,
		Clients:   clients,
		KOps:      fill.OpsPerSec / 1000,
		Stall:     db.Stats().StallTime,
		Timeline:  fill.Timeline,
	}}

	start := db.WaitIdle(fill.End)
	bench.OpsPerClient = cfg.ReadOpsPerClient
	bench.TimelineBucket = 0
	for _, w := range []dbbench.Workload{dbbench.ReadSequential, dbbench.ReadRandom} {
		res, err := dbbench.Run(db, w, bench, start)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", w, err)
		}
		cells = append(cells, Fig5Cell{
			Workload:  w,
			Placement: placement,
			Clients:   clients,
			KOps:      res.OpsPerSec / 1000,
		})
	}
	return cells, nil
}

// Figure5Table renders the grid like the paper's bar chart: workloads ×
// placements as columns, client counts as rows, in thousands of ops/sec.
func Figure5Table(cells []Fig5Cell) *Table {
	t := &Table{
		Title: "Figure 5: db_bench average throughput (operations/sec, thousands)",
		Headers: []string{"clients",
			"fill-seq horiz", "fill-seq vert",
			"read-seq horiz", "read-seq vert",
			"read-rand horiz", "read-rand vert"},
	}
	type key struct {
		w dbbench.Workload
		p lightlsm.Placement
		c int
	}
	m := map[key]float64{}
	clientSet := map[int]bool{}
	var clients []int
	for _, c := range cells {
		m[key{c.Workload, c.Placement, c.Clients}] = c.KOps
		if !clientSet[c.Clients] {
			clientSet[c.Clients] = true
			clients = append(clients, c.Clients)
		}
	}
	for _, n := range clients {
		t.Add(
			fmt.Sprintf("%d", n),
			m[key{dbbench.FillSequential, lightlsm.Horizontal, n}],
			m[key{dbbench.FillSequential, lightlsm.Vertical, n}],
			m[key{dbbench.ReadSequential, lightlsm.Horizontal, n}],
			m[key{dbbench.ReadSequential, lightlsm.Vertical, n}],
			m[key{dbbench.ReadRandom, lightlsm.Horizontal, n}],
			m[key{dbbench.ReadRandom, lightlsm.Vertical, n}],
		)
	}
	return t
}

// Figure6Table renders throughput-over-time series for the fill runs
// (one row per time bucket; columns are client counts), matching
// Figure 6's two panels.
func Figure6Table(cells []Fig5Cell, placement lightlsm.Placement) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Figure 6: fill-sequential throughput over time, %v placement (ops/sec, thousands)", placement),
		Headers: []string{"t (s)"},
	}
	var series []*metrics.Timeline
	var counts []int
	for _, c := range cells {
		if c.Workload == dbbench.FillSequential && c.Placement == placement && c.Timeline != nil {
			series = append(series, c.Timeline)
			counts = append(counts, c.Clients)
			t.Headers = append(t.Headers, fmt.Sprintf("%d clients", c.Clients))
		}
	}
	if len(series) == 0 {
		return t
	}
	points := make([][]metrics.Point, len(series))
	maxLen := 0
	for i, tl := range series {
		points[i] = tl.Series()
		if len(points[i]) > maxLen {
			maxLen = len(points[i])
		}
	}
	for row := 0; row < maxLen; row++ {
		cellsOut := make([]any, 0, len(series)+1)
		var ts float64
		for i := range points {
			if row < len(points[i]) {
				ts = points[i][row].T.Seconds()
				break
			}
		}
		cellsOut = append(cellsOut, fmt.Sprintf("%.1f", ts))
		for i := range points {
			if row < len(points[i]) {
				cellsOut = append(cellsOut, points[i][row].Rate/1000)
			} else {
				cellsOut = append(cellsOut, "")
			}
		}
		t.Add(cellsOut...)
	}
	return t
}
