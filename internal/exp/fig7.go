package exp

import (
	"fmt"

	"repro/internal/ox"
	"repro/internal/oxeleos"
	"repro/internal/vclock"
)

// Fig7Config parameterizes the data-copy experiment of Figure 7: host
// threads stream 8 MB LSS buffers into OX-ELEOS; the controller's
// memory bus carries two copies per buffer (network→FTL, FTL→device)
// and saturates at two threads.
type Fig7Config struct {
	ThreadCounts     []int
	BuffersPerThread int
	BufferBytes      int
	Seed             int64
	// ZeroCopyRX enables the §4.4 ablation (AF_XDP-style receive).
	ZeroCopyRX bool
}

// DefaultFig7 returns the default configuration.
func DefaultFig7() Fig7Config {
	return Fig7Config{
		ThreadCounts:     []int{1, 2, 4, 8},
		BuffersPerThread: 24,
		BufferBytes:      8 << 20,
		Seed:             11,
	}
}

// Fig7Point is one bar of Figure 7.
type Fig7Point struct {
	Threads     int
	Utilization float64 // controller memory-bus utilization, 0..1
	CoreUtil    float64
	MBps        float64 // aggregate ingest throughput
	Elapsed     vclock.Duration
}

// Figure7 measures controller utilization for each host thread count.
func Figure7(cfg Fig7Config) ([]Fig7Point, error) {
	var out []Fig7Point
	for _, threads := range cfg.ThreadCounts {
		p, err := figure7Run(cfg, threads)
		if err != nil {
			return out, fmt.Errorf("fig7 %d threads: %w", threads, err)
		}
		out = append(out, p)
	}
	return out, nil
}

func figure7Run(cfg Fig7Config, threads int) (Fig7Point, error) {
	rigCfg := DefaultRig()
	rigCfg.Seed = cfg.Seed
	rigCfg.CacheMB = 64
	_, ctrl, err := rigCfg.Build()
	if err != nil {
		return Fig7Point{}, err
	}
	// The DFC's ARM memory bus copies far slower than the two OCSSDs
	// drain: on that platform the copies, not the flash, are the
	// bottleneck (§4.3). Rebuild the controller copy-bound.
	c := ctrl.Config()
	c.MemMBps = 400
	c.ZeroCopyRX = cfg.ZeroCopyRX
	if ctrl, err = ox.NewController(c, ctrl.Media()); err != nil {
		return Fig7Point{}, err
	}
	store, err := oxeleos.New(ctrl, oxeleos.Config{BufferBytes: cfg.BufferBytes})
	if err != nil {
		return Fig7Point{}, err
	}

	// Each host thread streams buffers back to back; the DES loop always
	// advances the thread with the smallest clock.
	clocks := make([]vclock.Time, threads)
	done := make([]int, threads)
	buf := make([]byte, cfg.BufferBytes) // zero payload (content-free)
	pageBytes := 32 * 1024
	var end vclock.Time
	remaining := threads * cfg.BuffersPerThread
	bufIdx := 0
	for remaining > 0 {
		ti := 0
		for i := 1; i < threads; i++ {
			if done[i] < cfg.BuffersPerThread && (done[ti] >= cfg.BuffersPerThread || clocks[i] < clocks[ti]) {
				ti = i
			}
		}
		// Host link transfer, then the OX-ELEOS flush (both copies).
		t := ctrl.HostTransfer(clocks[ti], int64(cfg.BufferBytes))
		pages := make([]oxeleos.PageDesc, 0, cfg.BufferBytes/pageBytes)
		for off := 0; off+pageBytes <= cfg.BufferBytes; off += pageBytes {
			pages = append(pages, oxeleos.PageDesc{
				ID:     int64(bufIdx*1_000_000 + off),
				Offset: off,
				Length: pageBytes,
			})
		}
		t, err := store.Flush(t, buf, pages)
		if err != nil {
			return Fig7Point{}, err
		}
		clocks[ti] = t
		done[ti]++
		remaining--
		bufIdx++
		if t > end {
			end = t
		}
	}
	totalBytes := int64(threads) * int64(cfg.BuffersPerThread) * int64(cfg.BufferBytes)
	return Fig7Point{
		Threads:     threads,
		Utilization: ctrl.Utilization(end),
		CoreUtil:    ctrl.CoreUtilization(end),
		MBps:        float64(totalBytes) / 1e6 / end.Seconds(),
		Elapsed:     end.Sub(0),
	}, nil
}

// Figure7Table renders the utilization-vs-threads series.
func Figure7Table(points []Fig7Point) *Table {
	t := &Table{
		Title:   "Figure 7: impact of data copies on storage controller utilization (OX-ELEOS writes)",
		Headers: []string{"host threads", "membus util %", "ingest MB/s", "core util %"},
	}
	for _, p := range points {
		t.Add(p.Threads,
			fmt.Sprintf("%.1f", p.Utilization*100),
			fmt.Sprintf("%.0f", p.MBps),
			fmt.Sprintf("%.1f", p.CoreUtil*100),
		)
	}
	return t
}
