package exp

import (
	"fmt"

	"repro/internal/hostif"
	"repro/internal/ox"
	"repro/internal/oxeleos"
	"repro/internal/vclock"
)

// Fig7Config parameterizes the data-copy experiment of Figure 7: host
// threads stream 8 MB LSS buffers into OX-ELEOS; the controller's
// memory bus carries two copies per buffer (network→FTL, FTL→device)
// and saturates at two threads.
type Fig7Config struct {
	ThreadCounts     []int
	BuffersPerThread int
	BufferBytes      int
	Seed             int64
	// ZeroCopyRX enables the §4.4 ablation (AF_XDP-style receive).
	ZeroCopyRX bool
	// Executor selects the host's command-service engine (zero value:
	// serial); Workers sizes the pipelined worker pool. Results are
	// identical for either engine.
	Executor hostif.ExecutorKind
	Workers  int
}

// DefaultFig7 returns the default configuration.
func DefaultFig7() Fig7Config {
	return Fig7Config{
		ThreadCounts:     []int{1, 2, 4, 8},
		BuffersPerThread: 24,
		BufferBytes:      8 << 20,
		Seed:             11,
	}
}

// Fig7Point is one bar of Figure 7.
type Fig7Point struct {
	Threads     int
	Utilization float64 // controller memory-bus utilization, 0..1
	CoreUtil    float64
	MBps        float64 // aggregate ingest throughput
	Elapsed     vclock.Duration
}

// Figure7 measures controller utilization for each host thread count.
func Figure7(cfg Fig7Config) ([]Fig7Point, error) {
	var out []Fig7Point
	for _, threads := range cfg.ThreadCounts {
		p, err := figure7Run(cfg, threads)
		if err != nil {
			return out, fmt.Errorf("fig7 %d threads: %w", threads, err)
		}
		out = append(out, p)
	}
	return out, nil
}

func figure7Run(cfg Fig7Config, threads int) (Fig7Point, error) {
	rigCfg := DefaultRig()
	rigCfg.Seed = cfg.Seed
	rigCfg.CacheMB = 64
	_, ctrl, err := rigCfg.Build()
	if err != nil {
		return Fig7Point{}, err
	}
	// The DFC's ARM memory bus copies far slower than the two OCSSDs
	// drain: on that platform the copies, not the flash, are the
	// bottleneck (§4.3). Rebuild the controller copy-bound.
	c := ctrl.Config()
	c.MemMBps = 400
	c.ZeroCopyRX = cfg.ZeroCopyRX
	if ctrl, err = ox.NewController(c, ctrl.Media()); err != nil {
		return Fig7Point{}, err
	}
	store, err := oxeleos.New(ctrl, oxeleos.Config{BufferBytes: cfg.BufferBytes})
	if err != nil {
		return Fig7Point{}, err
	}

	// Each host thread is one queue pair at depth 1 streaming buffers
	// back to back: a Flush command rings the doorbell at the thread's
	// clock, the host charges the host-link transfer, and the namespace
	// adapter performs both controller copies. The closed loop always
	// resumes the thread whose command completes first (ReapAny) — the
	// queue-pair incarnation of the old smallest-clock DES loop.
	host := hostif.NewHost(ctrl, hostConfig(hostif.HostConfig{ChargeHostLink: true}, cfg.Executor, cfg.Workers))
	admin := host.Admin()
	nsid, err := admin.AttachNamespace(0, hostif.NewEleosNamespace(store))
	if err != nil {
		return Fig7Point{}, err
	}
	qps := make([]*hostif.QueuePair, threads)
	for i := range qps {
		if qps[i], err = admin.CreateIOQueuePair(0, 1, hostif.ClassMedium); err != nil {
			return Fig7Point{}, err
		}
	}
	buf := make([]byte, cfg.BufferBytes) // zero payload (content-free)
	pageBytes := 32 * 1024
	bufIdx := 0
	// One descriptor slice per thread, rebuilt in place each submission:
	// a buffer carries hundreds of page descriptors, so reallocating the
	// slice (and the command) per flush dominated the driver's allocs.
	descs := make([][]hostif.PageDesc, threads)
	for i := range descs {
		descs[i] = make([]hostif.PageDesc, 0, cfg.BufferBytes/pageBytes)
	}
	submit := func(ti int, at vclock.Time) error {
		pages := descs[ti][:0]
		for off := 0; off+pageBytes <= cfg.BufferBytes; off += pageBytes {
			pages = append(pages, hostif.PageDesc{
				ID:     int64(bufIdx*1_000_000 + off),
				Offset: off,
				Length: pageBytes,
			})
		}
		descs[ti] = pages
		bufIdx++
		cmd := qps[ti].AcquireCommand() // depth 1: same recycled slot each loop
		cmd.Op, cmd.NSID, cmd.Data, cmd.Descs = hostif.OpFlush, nsid, buf, pages
		return qps[ti].Push(at, cmd)
	}
	var end vclock.Time
	issued := make([]int, threads)
	for i := range qps {
		if err := submit(i, 0); err != nil {
			return Fig7Point{}, err
		}
		issued[i]++
	}
	qid0 := qps[0].ID() // I/O queue IDs start after the admin queue
	err = reapLoop(host, "fig7", threads*cfg.BuffersPerThread, func(comp hostif.Completion) error {
		if comp.Done > end {
			end = comp.Done
		}
		if ti := comp.QueueID - qid0; issued[ti] < cfg.BuffersPerThread {
			if err := submit(ti, comp.Done); err != nil {
				return err
			}
			issued[ti]++
		}
		return nil
	})
	if err != nil {
		return Fig7Point{}, err
	}
	// The utilization figures are an admin log page read at the last
	// completion instant.
	util, err := admin.Utilization(end)
	if err != nil {
		return Fig7Point{}, err
	}
	totalBytes := int64(threads) * int64(cfg.BuffersPerThread) * int64(cfg.BufferBytes)
	return Fig7Point{
		Threads:     threads,
		Utilization: util.MemBus,
		CoreUtil:    util.Core,
		MBps:        float64(totalBytes) / 1e6 / end.Seconds(),
		Elapsed:     end.Sub(0),
	}, nil
}

// Figure7Table renders the utilization-vs-threads series.
func Figure7Table(points []Fig7Point) *Table {
	t := &Table{
		Title:   "Figure 7: impact of data copies on storage controller utilization (OX-ELEOS writes)",
		Headers: []string{"host threads", "membus util %", "ingest MB/s", "core util %"},
	}
	for _, p := range points {
		t.Add(p.Threads,
			fmt.Sprintf("%.1f", p.Utilization*100),
			fmt.Sprintf("%.0f", p.MBps),
			fmt.Sprintf("%.1f", p.CoreUtil*100),
		)
	}
	return t
}
