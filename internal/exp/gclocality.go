package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/hostif"
	"repro/internal/oxblock"
	"repro/internal/vclock"
)

// GCLocalityConfig parameterizes the §4.3 locality measurement: OX-Block
// under overwrite churn triggers group-marked garbage collection while
// several writers keep issuing uniform traffic; the fraction of I/Os
// (issued during collection windows) that avoid the marked group should
// approach (groups-1)/groups — the paper's 93.7% at 16 channels and
// 87.5% at 8.
type GCLocalityConfig struct {
	ChannelCounts []int
	Writers       int
	TxnPages      int
	TxnsPerWriter int
	Seed          int64
	// GlobalGC disables group marking (the ablation: interference
	// spreads everywhere).
	GlobalGC bool
	// Executor/Workers select the host's command-service engine
	// (results are identical for either engine).
	Executor hostif.ExecutorKind
	Workers  int
}

// DefaultGCLocality returns the default configuration.
func DefaultGCLocality() GCLocalityConfig {
	return GCLocalityConfig{
		ChannelCounts: []int{8, 16},
		Writers:       8,
		TxnPages:      64,
		TxnsPerWriter: 2400,
		Seed:          5,
	}
}

// GCLocalityPoint is one row of the §4.3 claim.
type GCLocalityPoint struct {
	Channels    int
	Collections int64
	Unaffected  float64 // fraction of in-window I/O not on the marked group
	Expected    float64 // (n-1)/n
}

// GCLocality measures the §4.3 percentages for each channel count.
func GCLocality(cfg GCLocalityConfig) ([]GCLocalityPoint, error) {
	var out []GCLocalityPoint
	for _, channels := range cfg.ChannelCounts {
		p, err := gcLocalityRun(cfg, channels)
		if err != nil {
			return out, fmt.Errorf("gc locality %d channels: %w", channels, err)
		}
		out = append(out, p)
	}
	return out, nil
}

func gcLocalityRun(cfg GCLocalityConfig, channels int) (GCLocalityPoint, error) {
	rigCfg := DefaultRig()
	rigCfg.Groups = channels
	rigCfg.PUsPerGroup = 2
	rigCfg.ChunksPerPU = 32
	rigCfg.Seed = cfg.Seed
	dev, ctrl, err := rigCfg.Build()
	if err != nil {
		return GCLocalityPoint{}, err
	}
	geo := dev.Geometry()
	phys := int64(geo.TotalPUs()) * int64(geo.ChunksPerPU) * int64(geo.SectorsPerChunk())
	totalChunks := geo.TotalPUs() * geo.ChunksPerPU
	d, _, now, err := oxblock.New(ctrl, oxblock.Config{
		LogicalPages: phys / 3, // overwrite pressure with log headroom
		GlobalGC:     cfg.GlobalGC,
		// Aggressive thresholds keep collection running throughout the
		// churn; frequent checkpoints keep the log truncated.
		GCFreeThreshold:    totalChunks / 6,
		GCTargetFree:       totalChunks / 4,
		CheckpointInterval: vclock.Second,
	}, 0)
	if err != nil {
		return GCLocalityPoint{}, err
	}

	// N writers overwrite a small working set uniformly: churn feeds the
	// collector while concurrent traffic samples every group. Each
	// writer is one queue pair at depth 1 driven closed-loop: the writer
	// whose command completes first (ReapAny) draws the next LPN and
	// rings its doorbell at the completion instant, so the shared random
	// stream is consumed in deterministic completion order.
	data := make([]byte, cfg.TxnPages*4096)
	host := hostif.NewHost(ctrl, hostConfig(hostif.HostConfig{}, cfg.Executor, cfg.Workers))
	admin := host.Admin()
	nsid, err := admin.AttachNamespace(now, hostif.NewBlockNamespace(d))
	if err != nil {
		return GCLocalityPoint{}, err
	}
	qps := make([]*hostif.QueuePair, cfg.Writers)
	for i := range qps {
		if qps[i], err = admin.CreateIOQueuePair(now, 1, hostif.ClassMedium); err != nil {
			return GCLocalityPoint{}, err
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	submit := func(w int, at vclock.Time) error {
		cmd := qps[w].AcquireCommand() // depth 1: same recycled slot each loop
		cmd.Op, cmd.NSID, cmd.Data = hostif.OpWrite, nsid, data
		cmd.LPN = rng.Int63n(d.LogicalPages() - int64(cfg.TxnPages))
		return qps[w].Push(at, cmd)
	}
	issued := make([]int, cfg.Writers)
	for w := 0; w < cfg.Writers; w++ {
		if err := submit(w, now); err != nil {
			return GCLocalityPoint{}, err
		}
		issued[w]++
	}
	qid0 := qps[0].ID() // I/O queue IDs start after the admin queue
	var last vclock.Time
	err = reapLoop(host, "gc locality", cfg.Writers*cfg.TxnsPerWriter, func(comp hostif.Completion) error {
		last = comp.Done
		if w := comp.QueueID - qid0; issued[w] < cfg.TxnsPerWriter {
			if err := submit(w, comp.Done); err != nil {
				return err
			}
			issued[w]++
		}
		return nil
	})
	if err != nil {
		return GCLocalityPoint{}, err
	}
	gs, err := admin.GCStats(last, nsid)
	if err != nil {
		return GCLocalityPoint{}, err
	}
	return GCLocalityPoint{
		Channels:    channels,
		Collections: gs.Collections,
		Unaffected:  gs.UnaffectedFraction(),
		Expected:    float64(channels-1) / float64(channels),
	}, nil
}

// GCLocalityTable renders the §4.3 numbers.
func GCLocalityTable(points []GCLocalityPoint) *Table {
	t := &Table{
		Title:   "§4.3: application I/O unaffected by group-marked GC",
		Headers: []string{"channels", "collections", "unaffected %", "paper/expected %"},
	}
	for _, p := range points {
		t.Add(p.Channels, p.Collections,
			fmt.Sprintf("%.1f", p.Unaffected*100),
			fmt.Sprintf("%.1f", p.Expected*100))
	}
	return t
}
