package exp

import (
	"strings"
	"testing"
)

// TestGCLocalityPinned pins the §4.3 locality table byte-for-byte at
// the default configuration. The victim-selection refactor (packed
// chunk-indexed candidate set with the ascending-scan tie-break
// replacing the sorted map walk) must not move a single collection
// count or percentage: these are the exact values the sweep produced
// before the refactor.
func TestGCLocalityPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("full §4.3 sweep in -short mode")
	}
	p, err := GCLocality(DefaultGCLocality())
	if err != nil {
		t.Fatal(err)
	}
	const want = "channels,collections,unaffected %,paper/expected %\n" +
		"8,59,92.8,87.5\n" +
		"16,26,95.6,93.8\n"
	got := GCLocalityTable(p).CSV()
	if !strings.HasSuffix(got, want) || !strings.HasPrefix(got, "channels") {
		t.Fatalf("§4.3 table moved:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
