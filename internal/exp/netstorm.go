package exp

import (
	"bytes"
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/fabrics"
	"repro/internal/hostif"
	"repro/internal/metrics"
	"repro/internal/netfault"
	"repro/internal/oxblock"
	"repro/internal/oxeleos"
	"repro/internal/vclock"
	"repro/internal/zns"
)

// NetstormConfig parameterizes the network-fault storm: for each FTL
// served over the fabric (OX-Block, OX-ELEOS, OX-ZNS), a fleet of
// closed-loop clients drives a mixed workload through the
// internal/netfault proxy while a scripted schedule of connection
// kills, drops and partitions tears connections out from under them.
// The session layer's keep-alive, redial and idempotent-replay
// machinery must carry every client through: the run errors out on the
// first lost acknowledged write, and a fault-free shadow pass of the
// identical workload pins zero duplicate applications — a
// double-applied write would shift media timing and break the
// virtual-time equality the match column asserts.
//
// The fault script triggers on counts of upstream data frames, and the
// single-threaded virtual-time orchestrator keeps exactly one command
// in flight across the whole fleet, so faults land on a deterministic
// frame of a deterministic client: every column is a pure function of
// the seed and the table joins the CI determinism byte-diff.
type NetstormConfig struct {
	// Clients is the fleet size per FTL, assigned round-robin to the
	// high, medium and low WRR classes.
	Clients int
	// OpsPerClient is each client's closed-loop op count.
	OpsPerClient int
	// Events is the number of scripted faults per FTL.
	Events int
	// KeepAlive is the fleet's KATO (wall-clock liveness only; it
	// cannot touch virtual time).
	KeepAlive time.Duration
	Seed      int64
	// Executor/Workers select the host's command-service engine.
	Executor hostif.ExecutorKind
	Workers  int
}

// DefaultNetstorm returns the default storm shape: 9 clients × 60 ops
// per FTL under 24 scripted faults, 20 of them kills or partitions —
// the acceptance floor.
func DefaultNetstorm() NetstormConfig {
	return NetstormConfig{
		Clients:      9,
		OpsPerClient: 60,
		Events:       24,
		KeepAlive:    250 * time.Millisecond,
		Seed:         41,
	}
}

// netstormScript builds the per-FTL fault schedule: a repeating
// kill/partition-heavy pattern (3 kills and 2 partitions per 6 events)
// with deterministically varying inter-fault spacing so faults land in
// every phase of the workload. Partitions refuse the next two dials,
// forcing the redial loop to back off through them.
func netstormScript(n int) []netfault.Event {
	pattern := []netfault.Action{
		netfault.Kill, netfault.Partition, netfault.Kill,
		netfault.Drop, netfault.Kill, netfault.Partition,
	}
	script := make([]netfault.Event, n)
	for i := range script {
		script[i] = netfault.Event{
			After:  11 + (i*7)%17,
			Action: pattern[i%len(pattern)],
		}
		if script[i].Action == netfault.Partition {
			script[i].RefuseDials = 2
		}
	}
	return script
}

// NetstormPoint is one FTL's row of the storm.
type NetstormPoint struct {
	FTL      string
	Clients  int
	Ops      int   // total ops driven through the proxy
	Acked    int64 // acknowledged operations
	Verified int64 // blocks/pages content-checked after the storm
	Events   int   // scripted faults fired
	Kills    int
	Drops    int
	Parts    int
	Resumes  int // successful session resumptions across the fleet
	// Lat holds per-class closed-loop latency, indexed as fabricClasses.
	Lat     [3]*metrics.Histogram
	Elapsed vclock.Duration
	Match   bool // storm pass virtually identical to the fault-free pass
}

// netstormOp is one generated operation: prep fills the command, ack
// checks the completion against the oracle and records it.
type netstormOp struct {
	prep func(cmd *hostif.Command)
	ack  func(comp hostif.Completion) error
}

// netstormBench is one FTL's fresh testbed: a host with the namespace
// attached, a workload generator closed over a fresh oracle, and a
// post-storm verification sweep. Each pass builds its own so the storm
// and shadow passes start bit-identical.
type netstormBench struct {
	host  *hostif.Host
	nsid  int
	now   vclock.Time
	gen   func(rng *rand.Rand) netstormOp
	sweep func(now vclock.Time, qp *fabrics.QueuePair) (int64, error)
}

// netstormResult is one pass's virtual-time outcome.
type netstormResult struct {
	acked    int64
	verified int64
	elapsed  vclock.Duration
	lat      [3]*metrics.Histogram
	resumes  int
}

// Netstorm runs the storm on all three fabric-served FTLs.
func Netstorm(cfg NetstormConfig) ([]NetstormPoint, error) {
	if cfg.Clients <= 0 {
		cfg = DefaultNetstorm()
	}
	var out []NetstormPoint
	for _, ftl := range []struct {
		name  string
		build func(NetstormConfig) (*netstormBench, error)
	}{
		{"oxblock", netstormBlockBench},
		{"oxeleos", netstormEleosBench},
		{"oxzns", netstormZNSBench},
	} {
		p, err := netstormFTL(cfg, ftl.name, ftl.build)
		if err != nil {
			return out, fmt.Errorf("netstorm %s: %w", ftl.name, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// netstormFTL storms one FTL: a fault-free shadow pass fixes the
// expected virtual timeline, then the storm pass runs the identical
// workload through the fault proxy and must reproduce it exactly.
func netstormFTL(cfg NetstormConfig, name string,
	build func(NetstormConfig) (*netstormBench, error)) (NetstormPoint, error) {
	p := NetstormPoint{FTL: name, Clients: cfg.Clients, Ops: cfg.Clients * cfg.OpsPerClient}

	clean, _, err := netstormPass(cfg, build, nil)
	if err != nil {
		return p, fmt.Errorf("shadow pass: %w", err)
	}
	script := netstormScript(cfg.Events)
	storm, faults, err := netstormPass(cfg, build, script)
	if err != nil {
		return p, fmt.Errorf("storm pass: %w", err)
	}

	fired := faults.Kills + faults.Drops + faults.Partitions
	if fired != len(script) {
		return p, fmt.Errorf("only %d of %d scripted faults fired (workload too short for the script)",
			fired, len(script))
	}
	p.Acked = storm.acked
	p.Verified = storm.verified
	p.Events = fired
	p.Kills = faults.Kills
	p.Drops = faults.Drops
	p.Parts = faults.Partitions
	p.Resumes = storm.resumes
	p.Lat = storm.lat
	p.Elapsed = storm.elapsed
	p.Match = netstormMatch(clean, storm)
	if !p.Match {
		return p, fmt.Errorf("storm pass diverged from the fault-free pass: duplicate or lost application (acked %d/%d, elapsed %v/%v)",
			storm.acked, clean.acked, storm.elapsed, clean.elapsed)
	}
	return p, nil
}

// netstormMatch compares the two passes' virtual outcomes: any
// double-applied or dropped command shifts media timing and shows up
// here.
func netstormMatch(a, b netstormResult) bool {
	if a.acked != b.acked || a.verified != b.verified || a.elapsed != b.elapsed {
		return false
	}
	for i := range a.lat {
		x, y := a.lat[i], b.lat[i]
		if x.Count() != y.Count() || x.Mean() != y.Mean() || x.Max() != y.Max() ||
			x.Percentile(50) != y.Percentile(50) || x.Percentile(99) != y.Percentile(99) {
			return false
		}
	}
	return true
}

// netstormPass drives the workload once. With a script it dials
// through the netfault proxy; without one it dials the loopback
// directly (the shadow pass). The orchestrator is a global virtual-
// time event heap with exactly one command in flight at any moment, so
// upstream data frames — the proxy's script clock — flow in a
// deterministic order.
func netstormPass(cfg NetstormConfig, build func(NetstormConfig) (*netstormBench, error),
	script []netfault.Event) (netstormResult, netfault.Stats, error) {
	res := netstormResult{}
	for i := range res.lat {
		res.lat[i] = metrics.NewHistogram()
	}
	b, err := build(cfg)
	if err != nil {
		return res, netfault.Stats{}, err
	}
	srv := fabrics.NewServer(b.host)
	defer srv.Close()

	dial := fabrics.LoopbackDial(srv)
	var proxy *netfault.Proxy
	if script != nil {
		proxy = netfault.New(dial, netfault.Config{Script: script})
		dial = proxy.Dial
	}
	cli := fabrics.NewClient(dial).WithConfig(fabrics.Config{
		KeepAlive: cfg.KeepAlive,
		Redial: fabrics.RedialConfig{
			MaxAttempts: 60,
			Base:        100 * time.Microsecond,
			Cap:         2 * time.Millisecond,
			Seed:        cfg.Seed,
		},
	})

	type stormClient struct {
		qp       *fabrics.QueuePair
		rng      *rand.Rand
		classIdx int
		done     int
	}
	clients := make([]*stormClient, cfg.Clients)
	for i := range clients {
		qp, err := cli.QueuePair(b.now, 2, fabricClasses[i%3], 1)
		if err != nil {
			return res, netfault.Stats{}, err
		}
		clients[i] = &stormClient{
			qp:       qp,
			rng:      rand.New(rand.NewSource(cfg.Seed + int64(i)*7919)),
			classIdx: i % 3,
		}
	}
	defer func() {
		for _, c := range clients {
			c.qp.Close()
		}
	}()

	var (
		h    eventHeap
		seq  uint64
		end  = b.now
		gapD = float64(150 * vclock.Microsecond)
	)
	gap := func(rng *rand.Rand) vclock.Duration {
		return vclock.Duration(rng.ExpFloat64() * gapD)
	}
	for i, c := range clients {
		seq++
		heap.Push(&h, fabricEvent{t: b.now.Add(gap(c.rng)), client: i, seq: seq, kind: evArrival})
	}
	for h.Len() > 0 {
		ev := h.next()
		c := clients[ev.client]
		op := b.gen(c.rng)
		cmd := c.qp.AcquireCommand()
		op.prep(cmd)
		cmd.NSID = b.nsid
		if err := c.qp.Push(ev.t, cmd); err != nil {
			return res, netfault.Stats{}, fmt.Errorf("client %d push: %w", ev.client, err)
		}
		comp, ok := c.qp.Reap()
		if !ok {
			return res, netfault.Stats{}, fmt.Errorf("client %d: %w", ev.client, c.qp.Err())
		}
		if comp.Err != nil {
			return res, netfault.Stats{}, fmt.Errorf("client %d op failed: %w", ev.client, comp.Err)
		}
		if err := op.ack(comp); err != nil {
			return res, netfault.Stats{}, fmt.Errorf("client %d: %w", ev.client, err)
		}
		res.lat[c.classIdx].Observe(comp.Done.Sub(ev.t))
		res.acked++
		if comp.Done > end {
			end = comp.Done
		}
		c.done++
		if c.done < cfg.OpsPerClient {
			seq++
			heap.Push(&h, fabricEvent{t: comp.Done.Add(gap(c.rng)), client: ev.client, seq: seq, kind: evArrival})
		}
	}
	for _, c := range clients {
		res.resumes += c.qp.Stats().Redials
	}
	res.elapsed = end.Sub(b.now)

	// Verification sweep: a fresh, unproxied connection reads back
	// every acknowledged write — the zero-lost-acked-writes oracle.
	sqp, err := fabrics.Loopback(srv).QueuePair(end, 2, hostif.ClassMedium, 1)
	if err != nil {
		return res, netfault.Stats{}, err
	}
	defer sqp.Close()
	if res.verified, err = b.sweep(end, sqp); err != nil {
		return res, netfault.Stats{}, fmt.Errorf("verification sweep: %w", err)
	}
	if proxy != nil {
		return res, proxy.Stats(), nil
	}
	return res, netfault.Stats{}, nil
}

// netstormRig is the small in-memory testbed each bench starts from.
func netstormRig(seed int64) RigConfig {
	return RigConfig{
		Groups:        2,
		PUsPerGroup:   2,
		ChunksPerPU:   48,
		PagesPerBlock: 12,
		CacheMB:       8,
		Seed:          seed,
		PLP:           true,
	}
}

// netstormBlockBench storms OX-Block: 4 KB writes over a 2048-page
// namespace, reads verifying previously acknowledged content.
func netstormBlockBench(cfg NetstormConfig) (*netstormBench, error) {
	const logicalPages = 2048
	dev, ctrl, err := netstormRig(cfg.Seed).Build()
	if err != nil {
		return nil, err
	}
	_ = dev
	d, _, now, err := oxblock.New(ctrl, oxblock.Config{LogicalPages: logicalPages}, 0)
	if err != nil {
		return nil, err
	}
	host := hostif.NewHost(ctrl, hostConfig(hostif.HostConfig{ChargeHostLink: true}, cfg.Executor, cfg.Workers))
	nsid, err := host.Admin().AttachNamespace(now, hostif.NewBlockNamespace(d))
	if err != nil {
		return nil, err
	}

	oracle := make(map[int64]byte)
	fills := byte(0)
	b := &netstormBench{host: host, nsid: nsid, now: now}
	b.gen = func(rng *rand.Rand) netstormOp {
		if len(oracle) == 0 || rng.Intn(100) < 60 {
			lpn := rng.Int63n(logicalPages)
			fills = fills*31 + 7 | 1
			fill := fills
			data := make([]byte, 4096)
			for j := range data {
				data[j] = fill
			}
			return netstormOp{
				prep: func(cmd *hostif.Command) {
					cmd.Op, cmd.LPN, cmd.Data = hostif.OpWrite, lpn, data
				},
				ack: func(hostif.Completion) error {
					oracle[lpn] = fill
					return nil
				},
			}
		}
		lpns := sortedLPNs(oracle)
		lpn := lpns[rng.Intn(len(lpns))]
		want := oracle[lpn]
		return netstormOp{
			prep: func(cmd *hostif.Command) {
				cmd.Op, cmd.LPN, cmd.Pages = hostif.OpRead, lpn, 1
			},
			ack: func(comp hostif.Completion) error {
				for j, got := range comp.Data {
					if got != want {
						return fmt.Errorf("read lpn %d byte %d = %#x, want %#x", lpn, j, got, want)
					}
				}
				return nil
			},
		}
	}
	b.sweep = func(now vclock.Time, qp *fabrics.QueuePair) (int64, error) {
		var verified int64
		for _, lpn := range sortedLPNs(oracle) {
			cmd := qp.AcquireCommand()
			cmd.Op, cmd.NSID, cmd.LPN, cmd.Pages = hostif.OpRead, nsid, lpn, 1
			if err := qp.Push(now, cmd); err != nil {
				return verified, err
			}
			comp := qp.MustReap()
			if comp.Err != nil {
				return verified, fmt.Errorf("lost acked write at lpn %d: %w", lpn, comp.Err)
			}
			for j, got := range comp.Data {
				if got != oracle[lpn] {
					return verified, fmt.Errorf("lpn %d byte %d = %#x, want %#x", lpn, j, got, oracle[lpn])
				}
			}
			now = comp.Done
			verified++
		}
		return verified, nil
	}
	return b, nil
}

// netstormEleosBench storms OX-ELEOS: two-page LSS flushes against a
// 48-id space, reads verifying the acknowledged generation.
func netstormEleosBench(cfg NetstormConfig) (*netstormBench, error) {
	const pageBytes = 4096
	const idSpace = 48
	_, ctrl, err := netstormRig(cfg.Seed + 100).Build()
	if err != nil {
		return nil, err
	}
	s, err := oxeleos.New(ctrl, oxeleos.Config{BufferBytes: 1 << 20, StripeWidth: 1})
	if err != nil {
		return nil, err
	}
	host := hostif.NewHost(ctrl, hostConfig(hostif.HostConfig{ChargeHostLink: true}, cfg.Executor, cfg.Workers))
	nsid, err := host.Admin().AttachNamespace(0, hostif.NewEleosNamespace(s))
	if err != nil {
		return nil, err
	}

	content := func(id int64, gen int) []byte {
		p := make([]byte, pageBytes)
		for j := range p {
			p[j] = byte(int(id)*11 + gen*101 + j)
		}
		return p
	}
	oracle := make(map[int64]int)
	gen := 0
	b := &netstormBench{host: host, nsid: nsid, now: 0}
	b.gen = func(rng *rand.Rand) netstormOp {
		if len(oracle) == 0 || rng.Intn(100) < 60 {
			gen++
			g := gen
			ids := []int64{rng.Int63n(idSpace), rng.Int63n(idSpace)}
			if ids[1] == ids[0] {
				ids[1] = (ids[0] + 1) % idSpace
			}
			buf := make([]byte, 0, 2*pageBytes)
			var descs []hostif.PageDesc
			for k, id := range ids {
				buf = append(buf, content(id, g)...)
				descs = append(descs, hostif.PageDesc{ID: id, Offset: k * pageBytes, Length: pageBytes})
			}
			return netstormOp{
				prep: func(cmd *hostif.Command) {
					cmd.Op, cmd.Data, cmd.Descs = hostif.OpFlush, buf, descs
				},
				ack: func(hostif.Completion) error {
					for _, id := range ids {
						oracle[id] = g
					}
					return nil
				},
			}
		}
		ids := sortedIDKeys(oracle)
		id := ids[rng.Intn(len(ids))]
		want := content(id, oracle[id])
		return netstormOp{
			prep: func(cmd *hostif.Command) {
				cmd.Op, cmd.LPN = hostif.OpRead, id
			},
			ack: func(comp hostif.Completion) error {
				if !bytes.Equal(comp.Data, want) {
					return fmt.Errorf("page %d content mismatch", id)
				}
				return nil
			},
		}
	}
	b.sweep = func(now vclock.Time, qp *fabrics.QueuePair) (int64, error) {
		var verified int64
		for _, id := range sortedIDKeys(oracle) {
			cmd := qp.AcquireCommand()
			cmd.Op, cmd.NSID, cmd.LPN = hostif.OpRead, nsid, id
			if err := qp.Push(now, cmd); err != nil {
				return verified, err
			}
			comp := qp.MustReap()
			if comp.Err != nil {
				return verified, fmt.Errorf("lost acked page %d: %w", id, comp.Err)
			}
			if !bytes.Equal(comp.Data, content(id, oracle[id])) {
				return verified, fmt.Errorf("page %d content mismatch after storm", id)
			}
			now = comp.Done
			verified++
		}
		return verified, nil
	}
	return b, nil
}

// netstormZNSBench storms OX-ZNS: zone appends round-robin across a
// bounded zone span (the completion's assigned offset is checked
// against the oracle — a double-applied append shifts it immediately),
// reads verifying acknowledged blocks.
func netstormZNSBench(cfg NetstormConfig) (*netstormBench, error) {
	_, ctrl, err := netstormRig(cfg.Seed + 200).Build()
	if err != nil {
		return nil, err
	}
	t, err := zns.New(ctrl, zns.Config{})
	if err != nil {
		return nil, err
	}
	host := hostif.NewHost(ctrl, hostConfig(hostif.HostConfig{ChargeHostLink: true}, cfg.Executor, cfg.Workers))
	nsid, err := host.Admin().AttachNamespace(0, hostif.NewZoneNamespace(t))
	if err != nil {
		return nil, err
	}

	blockBytes := int64(t.BlockSize())
	blocksPerZone := int(t.ZoneCapacity() / blockBytes)
	span := 64
	if span > t.Zones() {
		span = t.Zones()
	}
	oracle := make([][]byte, span) // per zone: fill of each acked block
	fills := byte(0)
	zcur := 0
	b := &netstormBench{host: host, nsid: nsid, now: 0}
	b.gen = func(rng *rand.Rand) netstormOp {
		any := false
		for z := 0; z < span; z++ {
			if len(oracle[z]) > 0 {
				any = true
				break
			}
		}
		if !any || rng.Intn(100) < 60 {
			z := zcur
			for len(oracle[z]) >= blocksPerZone {
				z = (z + 1) % span
				if z == zcur {
					break // every zone full: overwrite path errors loudly
				}
			}
			zcur = (z + 1) % span
			fills = fills*31 + 7 | 1
			fill := fills
			data := make([]byte, blockBytes)
			for j := range data {
				data[j] = fill
			}
			wantOff := int64(len(oracle[z])) * blockBytes
			return netstormOp{
				prep: func(cmd *hostif.Command) {
					cmd.Op, cmd.Zone, cmd.Data = hostif.OpZoneAppend, z, data
				},
				ack: func(comp hostif.Completion) error {
					if comp.Offset != wantOff {
						return fmt.Errorf("zone %d append landed at %d, want %d (duplicate application)",
							z, comp.Offset, wantOff)
					}
					oracle[z] = append(oracle[z], fill)
					return nil
				},
			}
		}
		var nonEmpty []int
		for z := 0; z < span; z++ {
			if len(oracle[z]) > 0 {
				nonEmpty = append(nonEmpty, z)
			}
		}
		z := nonEmpty[rng.Intn(len(nonEmpty))]
		blk := rng.Intn(len(oracle[z]))
		want := oracle[z][blk]
		return netstormOp{
			prep: func(cmd *hostif.Command) {
				cmd.Op, cmd.Zone, cmd.LPN, cmd.Length = hostif.OpRead, z, int64(blk)*blockBytes, blockBytes
			},
			ack: func(comp hostif.Completion) error {
				for j, got := range comp.Data {
					if got != want {
						return fmt.Errorf("zone %d block %d byte %d = %#x, want %#x", z, blk, j, got, want)
					}
				}
				return nil
			},
		}
	}
	b.sweep = func(now vclock.Time, qp *fabrics.QueuePair) (int64, error) {
		var verified int64
		for z := 0; z < span; z++ {
			for blk, fill := range oracle[z] {
				cmd := qp.AcquireCommand()
				cmd.Op, cmd.NSID, cmd.Zone, cmd.LPN, cmd.Length = hostif.OpRead, nsid, z, int64(blk)*blockBytes, blockBytes
				if err := qp.Push(now, cmd); err != nil {
					return verified, err
				}
				comp := qp.MustReap()
				if comp.Err != nil {
					return verified, fmt.Errorf("lost acked append zone %d block %d: %w", z, blk, comp.Err)
				}
				for j, got := range comp.Data {
					if got != fill {
						return verified, fmt.Errorf("zone %d block %d byte %d = %#x, want %#x", z, blk, j, got, fill)
					}
				}
				now = comp.Done
				verified++
			}
		}
		return verified, nil
	}
	return b, nil
}

// sortedIDKeys orders an id→generation oracle for deterministic
// iteration (sortedLPNs' sibling for the OX-ELEOS generation map).
func sortedIDKeys(m map[int64]int) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NetstormTable renders the storm rows.
func NetstormTable(points []NetstormPoint) *Table {
	t := &Table{
		Title: "Netstorm: scripted connection kills/drops/partitions per fabric-served FTL (zero lost acked writes, zero duplicate applications)",
		Headers: []string{"ftl", "clients", "ops", "acked", "verified",
			"events", "kills", "drops", "parts", "resumes",
			"hi p99", "md p99", "lo p99", "elapsed_virt_ms", "match"},
	}
	for _, p := range points {
		match := "ok"
		if !p.Match {
			match = "DIVERGED"
		}
		t.Add(p.FTL, p.Clients, p.Ops, p.Acked, p.Verified,
			p.Events, p.Kills, p.Drops, p.Parts, p.Resumes,
			p.Lat[0].Percentile(99).String(),
			p.Lat[1].Percentile(99).String(),
			p.Lat[2].Percentile(99).String(),
			fmt.Sprintf("%.3f", float64(p.Elapsed)/float64(vclock.Millisecond)),
			match)
	}
	return t
}
