package exp

import (
	"testing"
	"time"

	"repro/internal/hostif"
)

// netstormTestConfig is the reduced storm the tests run (the full
// 24-event run is cmd/oxbench -run netstorm and the CI determinism
// diff): small enough to iterate, large enough that every scripted
// fault fires and every FTL resumes through kills, drops and
// partitions.
func netstormTestConfig() NetstormConfig {
	cfg := DefaultNetstorm()
	cfg.Clients = 6
	cfg.OpsPerClient = 30
	cfg.Events = 8
	cfg.KeepAlive = 100 * time.Millisecond
	return cfg
}

// TestNetstormShape checks the invariants the scenario exists to
// enforce: every scripted fault fired, every fault cost exactly one
// session resumption, every acknowledged write read back (Netstorm
// errors out on any integrity violation), and the storm pass's virtual
// timeline matched the fault-free pass — the zero-duplicate oracle.
func TestNetstormShape(t *testing.T) {
	cfg := netstormTestConfig()
	pts, err := Netstorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d storm rows, want 3", len(pts))
	}
	for _, p := range pts {
		if p.Events != cfg.Events {
			t.Errorf("%s: %d faults fired, want %d", p.FTL, p.Events, cfg.Events)
		}
		if p.Resumes != cfg.Events {
			t.Errorf("%s: %d resumes for %d severing faults, want one each", p.FTL, p.Resumes, cfg.Events)
		}
		if p.Acked != int64(cfg.Clients*cfg.OpsPerClient) {
			t.Errorf("%s: acked %d of %d ops", p.FTL, p.Acked, cfg.Clients*cfg.OpsPerClient)
		}
		if p.Verified == 0 {
			t.Errorf("%s: verification sweep checked nothing", p.FTL)
		}
		if !p.Match {
			t.Errorf("%s: storm pass diverged from fault-free pass", p.FTL)
		}
	}
}

// TestNetstormDeterministic pins the storm table bit-for-bit across
// two runs and under the pipelined executor: fault triggers are
// frame-count-based, the orchestrator keeps one command in flight
// globally, and replay re-executes at original doorbell instants, so
// nothing in the table may wobble.
func TestNetstormDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("storm determinism run is slow")
	}
	run := func(ex hostif.ExecutorKind, workers int) string {
		cfg := netstormTestConfig()
		cfg.Executor, cfg.Workers = ex, workers
		pts, err := Netstorm(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return NetstormTable(pts).CSV()
	}
	a := run(hostif.ExecutorSerial, 0)
	b := run(hostif.ExecutorSerial, 0)
	if a != b {
		t.Fatalf("netstorm table differs across runs:\n%s\n---\n%s", a, b)
	}
	c := run(hostif.ExecutorPipelined, 2)
	if a != c {
		t.Fatalf("netstorm table differs across executors:\n%s\n---\n%s", a, c)
	}
}
