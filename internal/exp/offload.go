package exp

import (
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/fabrics"
	"repro/internal/hostif"
	"repro/internal/lightlsm"
	"repro/internal/lsm"
	"repro/internal/offload"
	"repro/internal/ox"
	"repro/internal/oxblock"
	"repro/internal/vclock"
)

// OffloadConfig parameterizes the computational-storage crossover
// scenario: the same three workloads run host-side (raw blocks cross
// the host link, the host computes) and in-storage (the device
// computes, only results cross the link), and the table shows where
// each side wins.
//
//   - KV point lookups against LightLSM, swept over value size: the
//     host-side path ships a whole SSTable block per lookup; the
//     offloaded path ships flags plus the value. In-storage wins while
//     the value is small against the block; once the value approaches
//     the block size the host side would have moved the data anyway
//     and the in-device compute surcharge loses.
//   - Predicate-filtered range scans against OX-Block, swept over
//     selectivity: the offloaded scan ships only matching sectors.
//     In-storage wins at low selectivity and loses as the match rate
//     approaches one.
//   - LSM compaction against LightLSM: the device-side merge moves no
//     block over the link at all — the column of interest is link
//     traffic, not latency.
//
// Every column is virtual-time- or counter-derived, so the table is a
// pure function of the seed: it joins the CI determinism diff, must be
// identical under the serial and pipelined executors (offload data
// commands are host-link-charged and therefore inline barriers), and
// identical again when every command crosses the fabrics loopback
// transport (OffloadLoopback).
type OffloadConfig struct {
	// ValueSizes are the KV value sizes swept, in bytes.
	ValueSizes []int
	// FillMB is the data volume filled per value-size point.
	FillMB int
	// Gets is the number of measured point lookups per point.
	Gets int
	// ScanMasks are the scan predicate masks; each mask matches a page
	// with probability 2^-popcount(mask), dialing selectivity.
	ScanMasks []byte
	// ScanPages is the extent length of each measured scan, in 4 KB
	// pages; Scans is the number of measured scans per mask.
	ScanPages int
	Scans     int
	// LogicalPages sizes the OX-Block namespace for the scan sweep.
	LogicalPages int64
	// CompactMB is the fill volume of the compaction comparison (sized
	// to trigger several L0 compactions).
	CompactMB int
	// Executor/Workers select the host's command-service engine
	// (results are identical for either engine).
	Executor hostif.ExecutorKind
	Workers  int
	Seed     int64
}

// DefaultOffload returns the default crossover sweep.
func DefaultOffload() OffloadConfig {
	return OffloadConfig{
		ValueSizes:   []int{64, 1024, 4096, 16384, 65536},
		FillMB:       2,
		Gets:         256,
		ScanMasks:    []byte{0xFF, 0x0F, 0x03, 0x01, 0x00},
		ScanPages:    64,
		Scans:        96,
		LogicalPages: 4096,
		CompactMB:    12,
		Seed:         29,
	}
}

// OffloadPoint is one row of the crossover table: one workload
// parameter, both variants.
type OffloadPoint struct {
	Op    string // "get", "scan" or "compact"
	Param string
	// HostLat / DevLat are mean virtual latencies per operation.
	HostLat, DevLat vclock.Duration
	// HostLinkKB / DevLinkKB are host-link bytes per operation, from
	// the controller's link counter.
	HostLinkKB, DevLinkKB float64
	// SavedMB is the link traffic the offloaded variant avoided in
	// total, from its AdminGetLogPage(LogOffload) counters.
	SavedMB float64
}

// Winner names the cheaper side by mean virtual latency; the
// compaction row is judged on link traffic (its latencies are merge
// schedules, near-equal by construction).
func (p OffloadPoint) Winner() string {
	if p.Op == "compact" {
		if p.DevLinkKB < p.HostLinkKB {
			return "device"
		}
		return "host"
	}
	if p.DevLat < p.HostLat {
		return "device"
	}
	return "host"
}

// offloadEnv is the lsm.Env surface plus the two offload hooks, as
// implemented by both the in-process and the fabric environment
// clients — what lets one scenario body run over either transport.
type offloadEnv interface {
	lsm.Env
	OffloadGet(now vclock.Time, h lsm.TableHandle, block int, key []byte) ([]byte, bool, bool, vclock.Time, error)
	OffloadCompact(now vclock.Time, inputs []lsm.TableHandle, bitsPerKey int, dropDeletes bool) ([]*lsm.TableMeta, vclock.Time, error)
}

// offloadAdmin reads the LogOffload page, over either transport.
type offloadAdmin interface {
	OffloadStats(now vclock.Time, nsid int) (offload.Stats, error)
}

// Offload runs the crossover scenario with in-process queue pairs.
func Offload(cfg OffloadConfig) ([]OffloadPoint, error) {
	return offloadRun(cfg, false)
}

// OffloadLoopback runs the identical scenario with every command
// crossing the fabrics wire layer over the loopback transport. Virtual
// timing is a pure function of the submission history, which the wire
// preserves exactly, so the table must be byte-identical to Offload.
func OffloadLoopback(cfg OffloadConfig) ([]OffloadPoint, error) {
	return offloadRun(cfg, true)
}

func offloadRun(cfg OffloadConfig, fabric bool) ([]OffloadPoint, error) {
	var out []OffloadPoint
	for _, vs := range cfg.ValueSizes {
		p, err := offloadGetPoint(cfg, vs, fabric)
		if err != nil {
			return out, fmt.Errorf("offload get %dB: %w", vs, err)
		}
		out = append(out, p)
	}
	for _, mask := range cfg.ScanMasks {
		p, err := offloadScanPoint(cfg, mask, fabric)
		if err != nil {
			return out, fmt.Errorf("offload scan mask %02x: %w", mask, err)
		}
		out = append(out, p)
	}
	p, err := offloadCompactPoint(cfg, fabric)
	if err != nil {
		return out, fmt.Errorf("offload compact: %w", err)
	}
	return append(out, p), nil
}

// offloadLSMRig builds one KV measurement's testbed: rig, LightLSM
// namespace, host-link-charged host, and an environment client over
// the selected transport.
func offloadLSMRig(cfg OffloadConfig, fabric bool) (*ox.Controller, offloadEnv, offloadAdmin, int, func(), error) {
	rigCfg := DefaultRig()
	rigCfg.Seed = cfg.Seed
	_, ctrl, err := rigCfg.Build()
	if err != nil {
		return nil, nil, nil, 0, nil, err
	}
	env, err := lightlsm.New(ctrl, lightlsm.Config{Placement: lightlsm.Horizontal})
	if err != nil {
		return nil, nil, nil, 0, nil, err
	}
	host := hostif.NewHost(ctrl, hostConfig(hostif.HostConfig{ChargeHostLink: true}, cfg.Executor, cfg.Workers))
	if !fabric {
		cli, err := hostif.AttachLSM(host, env)
		if err != nil {
			return nil, nil, nil, 0, nil, err
		}
		return ctrl, cli, host.Admin(), cli.NSID(), func() {}, nil
	}
	nsid, err := host.Admin().AttachNamespace(0, hostif.NewLSMNamespace(env))
	if err != nil {
		return nil, nil, nil, 0, nil, err
	}
	srv := fabrics.NewServer(host)
	cli := fabrics.Loopback(srv)
	fenv, err := cli.OpenLSM(0, nsid)
	if err != nil {
		srv.Close()
		return nil, nil, nil, 0, nil, err
	}
	admin, err := cli.Admin()
	if err != nil {
		srv.Close()
		return nil, nil, nil, 0, nil, err
	}
	cleanup := func() {
		admin.Close()
		fenv.Close()
		srv.Close()
	}
	return ctrl, fenv, admin, nsid, cleanup, nil
}

// offloadKey renders the i-th fill key (fixed width keeps table order
// equal to insertion order).
func offloadKey(i int) []byte { return []byte(fmt.Sprintf("key%08d", i)) }

// offloadFill puts keys of the given value size until the volume is
// reached, then flushes and drains so every measured lookup hits
// SSTables rather than the memtable. Values come from the rng, so both
// variants of a point fill byte-identical databases.
func offloadFill(db *lsm.DB, rng *rand.Rand, keys, valueSize int) (vclock.Time, error) {
	value := make([]byte, valueSize)
	now := vclock.Time(0)
	var err error
	for i := 0; i < keys; i++ {
		rng.Read(value)
		if now, err = db.Put(now, offloadKey(i), value); err != nil {
			return now, err
		}
	}
	if now, err = db.Flush(now); err != nil {
		return now, err
	}
	return db.WaitIdle(now), nil
}

func offloadGetPoint(cfg OffloadConfig, valueSize int, fabric bool) (OffloadPoint, error) {
	keys := cfg.FillMB << 20 / valueSize
	p := OffloadPoint{Op: "get", Param: fmt.Sprintf("%d B values", valueSize)}
	for _, offl := range []bool{false, true} {
		ctrl, env, admin, nsid, cleanup, err := offloadLSMRig(cfg, fabric)
		if err != nil {
			return p, err
		}
		opts := lsm.Options{Env: env, MemtableBytes: 1 << 20, Seed: cfg.Seed}
		if offl {
			opts.Lookup = env.OffloadGet
		}
		db, err := lsm.Open(opts)
		if err != nil {
			cleanup()
			return p, err
		}
		now, err := offloadFill(db, rand.New(rand.NewSource(cfg.Seed+int64(valueSize))), keys, valueSize)
		if err != nil {
			cleanup()
			return p, err
		}
		draw := rand.New(rand.NewSource(cfg.Seed * 31))
		linkStart := ctrl.Stats().BytesHost
		var total vclock.Duration
		for i := 0; i < cfg.Gets; i++ {
			start := now
			_, end, err := db.Get(start, offloadKey(draw.Intn(keys)))
			if err != nil {
				cleanup()
				return p, err
			}
			total += end.Sub(start)
			now = end
		}
		lat := total / vclock.Duration(cfg.Gets)
		linkKB := float64(ctrl.Stats().BytesHost-linkStart) / float64(cfg.Gets) / 1024
		if offl {
			p.DevLat, p.DevLinkKB = lat, linkKB
			st, err := admin.OffloadStats(now, nsid)
			if err != nil {
				cleanup()
				return p, err
			}
			p.SavedMB = float64(st.BytesSaved()) / (1 << 20)
		} else {
			p.HostLat, p.HostLinkKB = lat, linkKB
		}
		cleanup()
	}
	return p, nil
}

func offloadScanPoint(cfg OffloadConfig, mask byte, fabric bool) (OffloadPoint, error) {
	sel := fmt.Sprintf("1/%d", 1<<bits.OnesCount8(mask))
	p := OffloadPoint{Op: "scan", Param: "sel " + sel}
	pred := offload.Predicate{Offset: 0, Mask: mask, Value: 0}
	for _, offl := range []bool{false, true} {
		rigCfg := DefaultRig()
		rigCfg.Seed = cfg.Seed
		_, ctrl, err := rigCfg.Build()
		if err != nil {
			return p, err
		}
		dev, _, now, err := oxblock.New(ctrl, oxblock.Config{LogicalPages: cfg.LogicalPages}, 0)
		if err != nil {
			return p, err
		}
		host := hostif.NewHost(ctrl, hostConfig(hostif.HostConfig{ChargeHostLink: true}, cfg.Executor, cfg.Workers))
		nsid, err := host.Admin().AttachNamespace(now, hostif.NewBlockNamespace(dev))
		if err != nil {
			return p, err
		}
		var qp pushSession
		cleanup := func() {}
		if fabric {
			srv := fabrics.NewServer(host)
			fqp, err := fabrics.Loopback(srv).QueuePair(now, 1, hostif.ClassMedium, 1)
			if err != nil {
				srv.Close()
				return p, err
			}
			qp = fqp
			cleanup = func() { fqp.Close(); srv.Close() }
		} else {
			lqp, err := host.Admin().CreateIOQueuePair(now, 1, hostif.ClassMedium)
			if err != nil {
				return p, err
			}
			qp = lqp
		}

		// Prefill with seeded random pages: each page matches the mask
		// with probability 2^-popcount(mask), so the mask alone dials
		// selectivity and both variants scan identical data.
		const txn = 32
		rng := rand.New(rand.NewSource(cfg.Seed + int64(mask)))
		data := make([]byte, txn*4096)
		for lpn := int64(0); lpn+txn <= cfg.LogicalPages; lpn += txn {
			rng.Read(data)
			cmd := qp.AcquireCommand()
			cmd.Op, cmd.NSID, cmd.LPN, cmd.Data = hostif.OpWrite, nsid, lpn, data
			if err := qp.Push(now, cmd); err != nil {
				cleanup()
				return p, err
			}
			comp := qp.MustReap()
			if comp.Err != nil {
				cleanup()
				return p, comp.Err
			}
			now = comp.Done
		}

		draw := rand.New(rand.NewSource(cfg.Seed * 37))
		span := cfg.LogicalPages - int64(cfg.ScanPages)
		linkStart := ctrl.Stats().BytesHost
		var total vclock.Duration
		for i := 0; i < cfg.Scans; i++ {
			lpn := draw.Int63n(span) / int64(cfg.ScanPages) * int64(cfg.ScanPages)
			cmd := qp.AcquireCommand()
			if offl {
				cmd.Op, cmd.NSID, cmd.LPN, cmd.Pages, cmd.Data =
					hostif.OpOffloadScan, nsid, lpn, cfg.ScanPages, pred.Encode()
			} else {
				cmd.Op, cmd.NSID, cmd.LPN, cmd.Pages = hostif.OpRead, nsid, lpn, cfg.ScanPages
			}
			if err := qp.Push(now, cmd); err != nil {
				cleanup()
				return p, err
			}
			comp := qp.MustReap()
			if comp.Err != nil {
				cleanup()
				return p, comp.Err
			}
			if offl {
				if _, _, _, err := offload.DecodeScanResult(comp.Data); err != nil {
					cleanup()
					return p, err
				}
			} else {
				// The host-side variant pays its filter here: every page
				// crossed the link and the host applies the predicate.
				for o := 0; o+4096 <= len(comp.Data); o += 4096 {
					pred.Match(comp.Data[o : o+4096])
				}
			}
			total += comp.Done.Sub(now)
			now = comp.Done
		}
		lat := total / vclock.Duration(cfg.Scans)
		linkKB := float64(ctrl.Stats().BytesHost-linkStart) / float64(cfg.Scans) / 1024
		if offl {
			p.DevLat, p.DevLinkKB = lat, linkKB
			st, err := host.Admin().OffloadStats(now, nsid)
			if err != nil {
				cleanup()
				return p, err
			}
			p.SavedMB = float64(st.BytesSaved()) / (1 << 20)
		} else {
			p.HostLat, p.HostLinkKB = lat, linkKB
		}
		cleanup()
	}
	return p, nil
}

func offloadCompactPoint(cfg OffloadConfig, fabric bool) (OffloadPoint, error) {
	const valueSize = 1024
	puts := cfg.CompactMB << 20 / valueSize
	// Draw keys randomly from a quarter-sized key space: successive
	// flushes overwrite each other's ranges, so L0 tables overlap and
	// compaction must actually merge instead of trivially moving files.
	keySpace := puts / 4
	p := OffloadPoint{Op: "compact"}
	for _, offl := range []bool{false, true} {
		ctrl, env, admin, nsid, cleanup, err := offloadLSMRig(cfg, fabric)
		if err != nil {
			return p, err
		}
		opts := lsm.Options{Env: env, MemtableBytes: 1 << 20, Seed: cfg.Seed}
		if offl {
			opts.Compactor = env.OffloadCompact
		}
		db, err := lsm.Open(opts)
		if err != nil {
			cleanup()
			return p, err
		}
		linkStart := ctrl.Stats().BytesHost
		rng := rand.New(rand.NewSource(cfg.Seed + 101))
		value := make([]byte, valueSize)
		end := vclock.Time(0)
		for i := 0; i < puts; i++ {
			rng.Read(value)
			if end, err = db.Put(end, offloadKey(rng.Intn(keySpace)), value); err != nil {
				cleanup()
				return p, err
			}
		}
		if end, err = db.Flush(end); err != nil {
			cleanup()
			return p, err
		}
		end = db.WaitIdle(end)
		comps := db.Stats().Compactions
		p.Param = fmt.Sprintf("%d MB fill, %d compactions", cfg.CompactMB, comps)
		lat := vclock.Duration(end) / vclock.Duration(puts)
		linkKB := float64(ctrl.Stats().BytesHost-linkStart) / float64(puts) / 1024
		if offl {
			p.DevLat, p.DevLinkKB = lat, linkKB
			st, err := admin.OffloadStats(end, nsid)
			if err != nil {
				cleanup()
				return p, err
			}
			p.SavedMB = float64(st.BytesSaved()) / (1 << 20)
		} else {
			p.HostLat, p.HostLinkKB = lat, linkKB
		}
		cleanup()
	}
	return p, nil
}

// OffloadTable renders the crossover: per-op virtual latency and
// host-link traffic for the host-side and in-storage variants of each
// workload point, plus the link bytes the offloads saved.
func OffloadTable(points []OffloadPoint) *Table {
	t := &Table{
		Title: "Computational storage: host-side vs in-storage execution (per-op virtual latency and host-link traffic)",
		Headers: []string{"op", "param", "host us/op", "dev us/op",
			"host linkKB/op", "dev linkKB/op", "saved MB", "winner"},
	}
	for _, p := range points {
		t.Add(p.Op, p.Param,
			fmt.Sprintf("%.2f", p.HostLat.Seconds()*1e6),
			fmt.Sprintf("%.2f", p.DevLat.Seconds()*1e6),
			fmt.Sprintf("%.2f", p.HostLinkKB),
			fmt.Sprintf("%.2f", p.DevLinkKB),
			fmt.Sprintf("%.2f", p.SavedMB),
			p.Winner())
	}
	return t
}
