package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/fabrics"
	"repro/internal/hostif"
	"repro/internal/metrics"
	"repro/internal/oxblock"
	"repro/internal/vclock"
)

// QDSweepConfig parameterizes the queue-depth sweep — a scenario the
// host-interface layer opens up beyond the paper's figures: one host
// actor keeps QD commands in flight on a single queue pair against
// OX-Block (doorbell-batched initial burst, then one resubmission per
// completion), mixing transactional writes with reads. Throughput and
// per-command-type latency percentiles show the classic trade: deeper
// queues buy throughput until the device saturates, then only buy
// latency.
type QDSweepConfig struct {
	// Depths are the queue depths to sweep.
	Depths []int
	// Ops is the number of measured commands per depth point.
	Ops int
	// TxnPages is the size of each write transaction in 4 KB pages.
	TxnPages int
	// ReadPages is the size of each read in 4 KB pages.
	ReadPages int
	// Executor/Workers select the host's command-service engine
	// (results are identical for either engine).
	Executor hostif.ExecutorKind
	Workers  int
	// LogicalPages sizes the OX-Block namespace (prefilled before
	// measuring so reads hit mapped pages).
	LogicalPages int64
	Seed         int64
}

// DefaultQDSweep returns the default sweep.
func DefaultQDSweep() QDSweepConfig {
	return QDSweepConfig{
		Depths:       []int{1, 2, 4, 8, 16, 32},
		Ops:          2000,
		TxnPages:     32,
		ReadPages:    32,
		LogicalPages: 16384,
		Seed:         17,
	}
}

// QDPoint is one row of the sweep.
type QDPoint struct {
	Depth    int
	Ops      int
	WriteKB  int // bytes per write command, in KB
	ReadKB   int // bytes per read command, in KB
	KIOPS    float64
	MBps     float64
	Elapsed  vclock.Duration
	WriteLat *metrics.Histogram
	ReadLat  *metrics.Histogram
}

// pushSession is the synchronous (depth-1) queue-pair surface:
// satisfied by hostif.QueuePair and by the fabric client queue pair,
// so prefill runs identically in-process and over the wire.
type pushSession interface {
	AcquireCommand() *hostif.Command
	Push(vclock.Time, *hostif.Command) error
	MustReap() hostif.Completion
}

// qdSession is the full closed-loop surface the measured sweep drives:
// batched submission plus earliest-completion reaping. The in-process
// implementation pairs a queue pair with host.ReapAny (localSession);
// the fabric client queue pair implements it directly, which is what
// lets the loopback-equivalence test byte-diff the two.
type qdSession interface {
	pushSession
	Submit(*hostif.Command) (uint64, error)
	Ring(vclock.Time) int
	ReapEarliest() (hostif.Completion, bool)
}

// localSession adapts an in-process queue pair to qdSession: with a
// single I/O queue pair, host.ReapAny's globally-earliest pick is the
// queue's earliest completion by (Done, slot).
type localSession struct {
	*hostif.QueuePair
	host *hostif.Host
}

func (s localSession) ReapEarliest() (hostif.Completion, bool) { return s.host.ReapAny() }

// prefillBlock writes the namespace's pages sequentially through the
// session (depth-1 submissions) so later reads hit mapped media.
func prefillBlock(qp pushSession, nsid int, pages int64, txnPages int, data []byte, now vclock.Time) (vclock.Time, error) {
	for lpn := int64(0); lpn+int64(txnPages) <= pages; lpn += int64(txnPages) {
		cmd := qp.AcquireCommand()
		cmd.Op, cmd.NSID, cmd.Data, cmd.LPN = hostif.OpWrite, nsid, data, lpn
		if err := qp.Push(now, cmd); err != nil {
			return now, err
		}
		comp := qp.MustReap()
		if comp.Err != nil {
			return now, comp.Err
		}
		now = comp.Done
	}
	return now, nil
}

// mixedDraw returns a generator for a 50/50 read/write command mix at
// random aligned extents within the namespace.
func mixedDraw(rng *rand.Rand, nsid int, span int64, txnPages, readPages int, data []byte) func(*hostif.Command) {
	writeSpan := span - int64(txnPages)
	readSpan := span - int64(readPages)
	return func(cmd *hostif.Command) {
		if rng.Intn(2) == 0 {
			*cmd = hostif.Command{Op: hostif.OpWrite, NSID: nsid,
				LPN: rng.Int63n(writeSpan) / int64(txnPages) * int64(txnPages), Data: data}
		} else {
			*cmd = hostif.Command{Op: hostif.OpRead, NSID: nsid,
				LPN: rng.Int63n(readSpan) / int64(readPages) * int64(readPages), Pages: readPages}
		}
	}
}

// QDSweep runs the sweep, one fresh rig per depth point.
func QDSweep(cfg QDSweepConfig) ([]QDPoint, error) {
	var out []QDPoint
	for _, depth := range cfg.Depths {
		p, err := qdRun(cfg, depth)
		if err != nil {
			return out, fmt.Errorf("qd sweep depth %d: %w", depth, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// QDSweepLoopback runs the identical sweep with every command crossing
// the fabrics wire layer over the loopback transport. Virtual timing
// is a pure function of the submission history, which the wire
// preserves exactly, so the result must be byte-identical to QDSweep —
// the loopback-equivalence guarantee the fabrics tests and the CI
// determinism diff pin.
func QDSweepLoopback(cfg QDSweepConfig) ([]QDPoint, error) {
	var out []QDPoint
	for _, depth := range cfg.Depths {
		p, err := qdRunFabric(cfg, depth)
		if err != nil {
			return out, fmt.Errorf("qd fabric sweep depth %d: %w", depth, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// qdRig builds one depth point's testbed: rig, OX-Block namespace and
// host, returning the host and attach instant.
func qdRig(cfg QDSweepConfig) (*hostif.Host, int, vclock.Time, error) {
	rigCfg := DefaultRig()
	rigCfg.Seed = cfg.Seed
	_, ctrl, err := rigCfg.Build()
	if err != nil {
		return nil, 0, 0, err
	}
	d, _, now, err := oxblock.New(ctrl, oxblock.Config{LogicalPages: cfg.LogicalPages}, 0)
	if err != nil {
		return nil, 0, 0, err
	}
	host := hostif.NewHost(ctrl, hostConfig(hostif.HostConfig{ChargeHostLink: true}, cfg.Executor, cfg.Workers))
	nsid, err := host.Admin().AttachNamespace(now, hostif.NewBlockNamespace(d))
	if err != nil {
		return nil, 0, 0, err
	}
	return host, nsid, now, nil
}

func qdRun(cfg QDSweepConfig, depth int) (QDPoint, error) {
	host, nsid, now, err := qdRig(cfg)
	if err != nil {
		return QDPoint{}, err
	}
	qp, err := host.Admin().CreateIOQueuePair(now, depth, hostif.ClassMedium)
	if err != nil {
		return QDPoint{}, err
	}
	return qdMeasure(cfg, depth, nsid, now, localSession{QueuePair: qp, host: host})
}

// qdRunFabric is qdRun with the queue pair served over the loopback
// fabric: same rig, same seed, same command sequence — only the
// transport differs.
func qdRunFabric(cfg QDSweepConfig, depth int) (QDPoint, error) {
	host, nsid, now, err := qdRig(cfg)
	if err != nil {
		return QDPoint{}, err
	}
	srv := fabrics.NewServer(host)
	defer srv.Close()
	qp, err := fabrics.Loopback(srv).QueuePair(now, depth, hostif.ClassMedium, 1)
	if err != nil {
		return QDPoint{}, err
	}
	defer qp.Close()
	return qdMeasure(cfg, depth, nsid, now, qp)
}

// qdMeasure is the sweep's measured loop, generic over the transport.
func qdMeasure(cfg QDSweepConfig, depth, nsid int, now vclock.Time, qp qdSession) (QDPoint, error) {
	// Prefill the namespace sequentially (depth 1) so reads hit media.
	data := make([]byte, cfg.TxnPages*4096)
	now, err := prefillBlock(qp, nsid, cfg.LogicalPages, cfg.TxnPages, data, now)
	if err != nil {
		return QDPoint{}, err
	}

	// Measured phase: a 50/50 read/write mix at random aligned extents.
	// The initial QD commands are staged and made visible with a single
	// doorbell ring — batched submission — then the loop keeps the
	// queue full by resubmitting at each completion. The seed does not
	// vary with depth: every depth point replays the identical command
	// sequence, so queue depth is the sweep's only variable.
	rng := rand.New(rand.NewSource(cfg.Seed))
	draw := mixedDraw(rng, nsid, cfg.LogicalPages, cfg.TxnPages, cfg.ReadPages, data)
	issued := 0
	for i := 0; i < depth && issued < cfg.Ops; i++ {
		cmd := qp.AcquireCommand()
		draw(cmd)
		if _, err := qp.Submit(cmd); err != nil {
			return QDPoint{}, err
		}
		issued++
	}
	start := now
	qp.Ring(start)

	p := QDPoint{
		Depth:    depth,
		Ops:      cfg.Ops,
		WriteKB:  cfg.TxnPages * 4,
		ReadKB:   cfg.ReadPages * 4,
		WriteLat: metrics.NewHistogram(),
		ReadLat:  metrics.NewHistogram(),
	}
	var bytes int64
	end := start
	for remaining := cfg.Ops; remaining > 0; remaining-- {
		comp, ok := qp.ReapEarliest()
		if !ok {
			return QDPoint{}, fmt.Errorf("qd sweep: completion queue ran dry with %d outstanding", remaining)
		}
		if comp.Err != nil {
			return QDPoint{}, comp.Err
		}
		switch comp.Op {
		case hostif.OpWrite:
			p.WriteLat.Observe(comp.Latency())
			bytes += int64(cfg.TxnPages) * 4096
		case hostif.OpRead:
			p.ReadLat.Observe(comp.Latency())
			bytes += int64(cfg.ReadPages) * 4096
		}
		if comp.Done > end {
			end = comp.Done
		}
		if issued < cfg.Ops {
			// The reaped completion just recycled its command slot; the
			// arena hands the same storage straight back.
			cmd := qp.AcquireCommand()
			draw(cmd)
			if err := qp.Push(comp.Done, cmd); err != nil {
				return QDPoint{}, err
			}
			issued++
		}
	}
	p.Elapsed = end.Sub(start)
	if p.Elapsed > 0 {
		p.KIOPS = float64(cfg.Ops) / p.Elapsed.Seconds() / 1000
		p.MBps = float64(bytes) / 1e6 / p.Elapsed.Seconds()
	}
	return p, nil
}

// QDSweepTable renders the sweep: throughput plus p50/p95/p99 latency
// per command type at each queue depth.
func QDSweepTable(points []QDPoint) *Table {
	title := "Queue-depth sweep: OX-Block 50/50 read/write through one queue pair"
	if len(points) > 0 {
		title += fmt.Sprintf(" (%d KB writes, %d KB reads)", points[0].WriteKB, points[0].ReadKB)
	}
	t := &Table{
		Title: title,
		Headers: []string{"QD", "kIOPS", "MB/s",
			"wr p50", "wr p95", "wr p99",
			"rd p50", "rd p95", "rd p99"},
	}
	for _, p := range points {
		cells := []any{p.Depth, fmt.Sprintf("%.1f", p.KIOPS), fmt.Sprintf("%.0f", p.MBps)}
		for _, s := range metrics.LatencyRow(p.WriteLat) {
			cells = append(cells, s)
		}
		for _, s := range metrics.LatencyRow(p.ReadLat) {
			cells = append(cells, s)
		}
		t.Add(cells...)
	}
	return t
}
