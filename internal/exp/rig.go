package exp

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/hostif"
	"repro/internal/nand"
	"repro/internal/ocssd"
	"repro/internal/ox"
)

// RigConfig sizes a simulated testbed (device + controller). The
// defaults mirror the paper's drive structurally — 8 groups × 4 PUs,
// dual-plane TLC, 96 KB unit of write — at a chunk size scaled down
// (1.5 MB instead of 24 MB) so whole experiments fit in memory.
type RigConfig struct {
	Groups        int
	PUsPerGroup   int
	ChunksPerPU   int
	PagesPerBlock int
	CacheMB       int
	Seed          int64
	PLP           bool
	// BackendPath persists the device to a file (crashstorm); empty
	// keeps the device in memory (every figure scenario).
	BackendPath string
	// Faults optionally injects media faults (crashstorm).
	Faults *fault.Injector
}

// DefaultRig returns the standard scaled testbed.
func DefaultRig() RigConfig {
	return RigConfig{
		Groups:        8,
		PUsPerGroup:   4,
		ChunksPerPU:   48,
		PagesPerBlock: 48, // 48 pages × 2 planes × 4 sectors = 1.5 MB chunks
		CacheMB:       32,
		Seed:          1,
		PLP:           true,
	}
}

// hostConfig applies a scenario's executor selection to its base host
// configuration. Scenario configs carry Executor/Workers so every
// figure can run under the serial reference executor (the zero value)
// or the pipelined engine; results are bit-identical either way, which
// TestExecutorEquivalence pins table by table.
func hostConfig(base hostif.HostConfig, ex hostif.ExecutorKind, workers int) hostif.HostConfig {
	base.Executor = ex
	base.Workers = workers
	return base
}

// reapLoop is the shared closed-loop driver: reap the globally
// earliest completion, let the scenario's callback do its bookkeeping
// and resubmit on that completion's queue, repeat total times. Every
// closed-loop scenario (fig7, gc locality, the qd sweep, tenants, the
// scale sweep) is this loop plus a different callback.
func reapLoop(host *hostif.Host, what string, total int, onComplete func(hostif.Completion) error) error {
	for remaining := total; remaining > 0; remaining-- {
		comp, ok := host.ReapAny()
		if !ok {
			return fmt.Errorf("%s: completion queue ran dry with %d outstanding", what, remaining)
		}
		if comp.Err != nil {
			return comp.Err
		}
		if err := onComplete(comp); err != nil {
			return err
		}
	}
	return nil
}

// geometry expands the rig sizing into the full device geometry.
func (rc RigConfig) geometry() ocssd.Geometry {
	chip := nand.Geometry{
		Planes:         2,
		BlocksPerPlane: rc.ChunksPerPU,
		PagesPerBlock:  rc.PagesPerBlock,
		SectorsPerPage: 4,
		SectorSize:     4096,
		OOBPerPage:     64,
		Cell:           nand.TLC,
	}
	return ocssd.Finish(ocssd.Geometry{
		Groups:       rc.Groups,
		PUsPerGroup:  rc.PUsPerGroup,
		ChunksPerPU:  rc.ChunksPerPU,
		Chip:         chip,
		ChannelMBps:  800,
		CacheMBps:    3200,
		CacheMB:      rc.CacheMB,
		MaxOpenPerPU: 64,
	})
}

func (rc RigConfig) options() ocssd.Options {
	return ocssd.Options{
		Seed:               rc.Seed,
		PowerLossProtected: rc.PLP,
		BackendPath:        rc.BackendPath,
		Faults:             rc.Faults,
	}
}

// Build constructs the device and controller.
func (rc RigConfig) Build() (*ocssd.Device, *ox.Controller, error) {
	dev, err := ocssd.New(rc.geometry(), rc.options())
	if err != nil {
		return nil, nil, fmt.Errorf("exp: building device: %w", err)
	}
	ctrl, err := ox.NewController(ox.DefaultConfig(), dev)
	if err != nil {
		return nil, nil, fmt.Errorf("exp: building controller: %w", err)
	}
	return dev, ctrl, nil
}

// Reopen restores the device from its file backend (BackendPath must
// be set) — the crashstorm's power-on after a cut.
func (rc RigConfig) Reopen() (*ocssd.Device, *ox.Controller, error) {
	dev, err := ocssd.OpenDevice(rc.geometry(), rc.options())
	if err != nil {
		return nil, nil, fmt.Errorf("exp: reopening device: %w", err)
	}
	ctrl, err := ox.NewController(ox.DefaultConfig(), dev)
	if err != nil {
		return nil, nil, fmt.Errorf("exp: rebuilding controller: %w", err)
	}
	return dev, ctrl, nil
}
