package exp

import (
	"fmt"
	"time"

	"repro/internal/hostif"
	"repro/internal/vclock"
	"repro/internal/zns"
)

// ScaleConfig parameterizes the executor scaling scenario — the paper's
// §2.2 argument ("parallel units never interfere") driven end to end
// through the host interface: an OX-ZNS namespace on a cache-less rig,
// one queue pair per group appending closed-loop into zones of its own
// group. Under the serial executor every append executes under the
// host's single sequencer; the pipelined executor overlaps the
// disjoint-group appends on a worker pool; the batched executor
// additionally gathers a batch of grants per arbitration acquisition.
// Virtual-time results are bit-identical across all three by the
// determinism contract (the run verifies this and fails otherwise);
// what the sweep measures is wall-clock — how much of the simulated
// device's parallelism the simulator itself can exploit — plus the
// arbitration-acquisition and metadata footprint costs of scale.
type ScaleConfig struct {
	// PUCounts sweeps the device size. Up to 64 PUs each point is a rig
	// of single-PU groups; beyond 64 the rig keeps 64 groups and deepens
	// them (the host's footprint group mask is 64 bits wide, so 512 PUs
	// is 64 groups × 8 PUs). Counts above 64 must be multiples of 64.
	PUCounts []int
	// Workers sweeps the pipelined executor's pool size. Serial
	// reference rows are always included.
	Workers []int
	// BatchSizes adds one batched-executor row per entry (using the last
	// Workers entry as its pool size). Empty disables batched rows.
	BatchSizes []int
	// AppendsPerPU is the closed-loop command count per parallel unit.
	AppendsPerPU int
	// MaxOps caps one run's total appends so terabyte-scale points stay
	// bounded: effective appends per PU = min(AppendsPerPU, MaxOps/PUs),
	// floored at 1. Zero means no cap. The cap is part of the workload
	// definition, so the serial/pipelined/batched equivalence check
	// always compares identical schedules.
	MaxOps int
	// AppendBlocks sizes each zone append in device write units.
	AppendBlocks int
	Seed         int64
}

// DefaultScale returns the default sweep, up to a 512-PU geometry.
func DefaultScale() ScaleConfig {
	return ScaleConfig{
		PUCounts:     []int{1, 2, 4, 8, 64, 512},
		Workers:      []int{1, 2, 4},
		BatchSizes:   []int{hostif.DefaultBatchSize},
		AppendsPerPU: 256,
		MaxOps:       16384,
		AppendBlocks: 2,
		Seed:         13,
	}
}

// ScalePoint is one row of the sweep.
type ScalePoint struct {
	PUs      int
	Executor hostif.ExecutorKind
	Workers  int
	// BatchSize is the batched executor's grants per acquisition (0 for
	// the other executors).
	BatchSize int
	Ops       int
	// Elapsed is the virtual completion instant of the last append —
	// identical across executors at equal PU count.
	Elapsed vclock.Duration
	// VirtMBps is ingest throughput in virtual time.
	VirtMBps float64
	// Wall is the measured wall-clock time of the run.
	Wall time.Duration
	// Grants/Acquisitions/Overlapped/MaxInflight echo the executor log
	// page; AcqPerGrant is Acquisitions/Grants — how often the sequencer
	// had to take the arbitration lock per command it granted (1.0
	// serial, ~1/batch for the batched executor under deep backlogs).
	Grants       int64
	Acquisitions int64
	AcqPerGrant  float64
	Overlapped   int64
	MaxInflight  int
	// MetaBytesPerChunk is the device's resident per-chunk metadata
	// footprint (controller chunk records + buffer-slot bookkeeping)
	// divided by total chunks.
	MetaBytesPerChunk float64
	// Speedup is serial wall-clock over this row's wall-clock at the
	// same PU count (1.0 for the serial row itself).
	Speedup float64
}

// Scale runs the sweep: for each PU count, a serial reference run, one
// pipelined run per worker count and one batched run per batch size. It
// returns an error if any engine run's virtual timing diverges from the
// serial reference — the determinism contract, enforced on every
// invocation.
func Scale(cfg ScaleConfig) ([]ScalePoint, error) {
	var out []ScalePoint
	for _, pus := range cfg.PUCounts {
		serial, err := scaleRun(cfg, pus, "", 0, 0)
		if err != nil {
			return out, fmt.Errorf("scale %d PUs serial: %w", pus, err)
		}
		serial.Speedup = 1
		out = append(out, serial)
		check := func(p ScalePoint, what string) error {
			if p.Elapsed != serial.Elapsed {
				return fmt.Errorf("scale %d PUs %s: virtual elapsed %v diverged from serial %v",
					pus, what, p.Elapsed, serial.Elapsed)
			}
			return nil
		}
		for _, workers := range cfg.Workers {
			p, err := scaleRun(cfg, pus, hostif.ExecutorPipelined, workers, 0)
			if err != nil {
				return out, fmt.Errorf("scale %d PUs %d workers: %w", pus, workers, err)
			}
			if err := check(p, fmt.Sprintf("%d workers", workers)); err != nil {
				return out, err
			}
			if p.Wall > 0 {
				p.Speedup = float64(serial.Wall) / float64(p.Wall)
			}
			out = append(out, p)
		}
		for _, batch := range cfg.BatchSizes {
			workers := 0
			if n := len(cfg.Workers); n > 0 {
				workers = cfg.Workers[n-1]
			}
			p, err := scaleRun(cfg, pus, hostif.ExecutorBatched, workers, batch)
			if err != nil {
				return out, fmt.Errorf("scale %d PUs batch %d: %w", pus, batch, err)
			}
			if err := check(p, fmt.Sprintf("batch %d", batch)); err != nil {
				return out, err
			}
			if p.Wall > 0 {
				p.Speedup = float64(serial.Wall) / float64(p.Wall)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// scaleRig builds a cache-less device with pus parallel units: single-PU
// groups up to 64 PUs (group == PU, maximum isolation), 64 ever-deeper
// groups beyond (the footprint group mask is 64 bits wide).
func scaleRig(cfg ScaleConfig, pus int) RigConfig {
	rc := DefaultRig()
	groups := pus
	if groups > 64 {
		groups = 64
	}
	rc.Groups = groups
	rc.PUsPerGroup = pus / groups
	rc.ChunksPerPU = 32
	rc.CacheMB = 0 // cache admission is device-global; without it,
	// disjoint-PU writes commute and may overlap
	rc.Seed = cfg.Seed
	return rc
}

// scaleOps reports the effective appends per PU after the MaxOps cap.
func scaleOps(cfg ScaleConfig, pus int) int {
	per := cfg.AppendsPerPU
	if cfg.MaxOps > 0 && per*pus > cfg.MaxOps {
		per = cfg.MaxOps / pus
		if per < 1 {
			per = 1
		}
	}
	return per
}

func scaleRun(cfg ScaleConfig, pus int, ex hostif.ExecutorKind, workers, batch int) (ScalePoint, error) {
	if pus > 64 && pus%64 != 0 {
		return ScalePoint{}, fmt.Errorf("scale: %d PUs not a multiple of 64", pus)
	}
	rig := scaleRig(cfg, pus)
	dev, ctrl, err := rig.Build()
	if err != nil {
		return ScalePoint{}, err
	}
	tgt, err := zns.New(ctrl, zns.Config{})
	if err != nil {
		return ScalePoint{}, err
	}
	hc := hostConfig(hostif.HostConfig{BatchSize: batch}, ex, workers)
	host := hostif.NewHost(ctrl, hc)
	defer host.Close() // one host per sweep point: release its workers
	admin := host.Admin()
	nsid, err := admin.AttachNamespace(0, hostif.NewZoneNamespace(tgt))
	if err != nil {
		return ScalePoint{}, err
	}
	report, err := admin.ZoneReport(0, nsid)
	if err != nil {
		return ScalePoint{}, err
	}
	id, err := admin.IdentifyNamespace(0, nsid)
	if err != nil {
		return ScalePoint{}, err
	}

	// One actor per group: its zones are the ones in its group (spanning
	// the group's PUs), filled round-robin; each append is AppendBlocks
	// write units. The payload is all zeros so the NAND model's zero-page
	// dedup keeps even terabyte-scale sweeps memory-free — content never
	// affects virtual timing.
	groups := rig.Groups
	zonesOf := make([][]int, groups)
	for _, zi := range report {
		zonesOf[zi.Group] = append(zonesOf[zi.Group], zi.Index)
	}
	appendBytes := cfg.AppendBlocks * id.BlockSize
	perZone := int(id.ZoneCapacity) / appendBytes
	if perZone == 0 {
		return ScalePoint{}, fmt.Errorf("scale: %d-byte appends exceed the %d-byte zone capacity", appendBytes, id.ZoneCapacity)
	}
	data := make([]byte, appendBytes)
	perPU := scaleOps(cfg, pus)
	perActor := perPU * rig.PUsPerGroup
	type actor struct {
		qp       *hostif.QueuePair
		zones    []int
		issued   int
		lastDone vclock.Time
	}
	actors := make([]*actor, groups)
	for i := range actors {
		qp, err := admin.CreateIOQueuePair(0, 1, hostif.ClassMedium)
		if err != nil {
			return ScalePoint{}, err
		}
		actors[i] = &actor{qp: qp, zones: zonesOf[i]}
	}
	need := (perActor + perZone - 1) / perZone
	for _, a := range actors {
		if len(a.zones) < need {
			return ScalePoint{}, fmt.Errorf("scale: %d zones per group, need %d", len(a.zones), need)
		}
	}
	submit := func(a *actor, at vclock.Time) error {
		cmd := a.qp.AcquireCommand()
		cmd.Op, cmd.NSID, cmd.Data = hostif.OpZoneAppend, nsid, data
		cmd.Zone = a.zones[a.issued/perZone]
		a.issued++
		return a.qp.Push(at, cmd)
	}

	// Lockstep rounds: every group's next append is visible before the
	// round's drain, so the execution engine always sees the full
	// disjoint-group batch at once. Each actor still advances its own
	// virtual clock (it resubmits at its own completion instant), and
	// the round barrier is what a completion-batching driver does
	// anyway. The serial executor runs the identical schedule, so the
	// virtual results stay comparable command for command.
	wallStart := time.Now()
	for _, a := range actors {
		if err := submit(a, 0); err != nil {
			return ScalePoint{}, err
		}
	}
	qid0 := actors[0].qp.ID()
	var end vclock.Time
	inRound := 0
	totalOps := perActor * groups
	err = reapLoop(host, "scale", totalOps, func(comp hostif.Completion) error {
		a := actors[comp.QueueID-qid0]
		a.lastDone = comp.Done
		if comp.Done > end {
			end = comp.Done
		}
		if inRound++; inRound == len(actors) {
			inRound = 0
			for _, a := range actors {
				if a.issued < perActor {
					if err := submit(a, a.lastDone); err != nil {
						return err
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		return ScalePoint{}, err
	}
	wall := time.Since(wallStart)

	p := ScalePoint{
		PUs:      pus,
		Executor: hostif.ExecutorSerial,
		Ops:      totalOps,
		Elapsed:  end.Sub(0),
		Wall:     wall,
	}
	if ex != "" {
		p.Executor = ex
	}
	log, err := admin.ExecutorStats(end)
	if err != nil {
		return ScalePoint{}, err
	}
	p.Workers = log.Workers
	p.BatchSize = 0
	if ex == hostif.ExecutorBatched {
		p.BatchSize = log.BatchSize
	}
	p.Grants = log.Grants
	p.Acquisitions = log.Acquisitions
	if log.Grants > 0 {
		p.AcqPerGrant = float64(log.Acquisitions) / float64(log.Grants)
	}
	p.Overlapped = log.Overlapped
	p.MaxInflight = log.MaxInflight
	totalChunks := pus * rig.ChunksPerPU
	p.MetaBytesPerChunk = float64(dev.MetadataBytes()) / float64(totalChunks)
	if end > 0 {
		p.VirtMBps = float64(p.Ops) * float64(appendBytes) / 1e6 / end.Seconds()
	}
	return p, nil
}

// ScaleTable renders the sweep. Virtual columns are deterministic and
// byte-stable; the wall-clock and speedup columns measure the host
// machine and vary run to run (they are excluded from the determinism
// diffs for exactly that reason).
func ScaleTable(points []ScalePoint) *Table {
	t := &Table{
		Title: "Executor scaling: disjoint-group zone appends, serial vs pipelined vs batched (OX-ZNS, cache-less rig)",
		Headers: []string{"PUs", "executor", "workers", "batch", "ops",
			"virt elapsed", "virt MB/s", "acq/grant", "overlap", "max inflight",
			"meta B/chunk", "wall ms", "speedup"},
	}
	for _, p := range points {
		workers, batch := "-", "-"
		if p.Executor == hostif.ExecutorPipelined || p.Executor == hostif.ExecutorBatched {
			workers = fmt.Sprintf("%d", p.Workers)
		}
		if p.Executor == hostif.ExecutorBatched {
			batch = fmt.Sprintf("%d", p.BatchSize)
		}
		t.Add(p.PUs, string(p.Executor), workers, batch, p.Ops,
			p.Elapsed.String(), fmt.Sprintf("%.0f", p.VirtMBps),
			fmt.Sprintf("%.3f", p.AcqPerGrant),
			p.Overlapped, p.MaxInflight,
			fmt.Sprintf("%.1f", p.MetaBytesPerChunk),
			fmt.Sprintf("%.1f", float64(p.Wall.Microseconds())/1000),
			fmt.Sprintf("%.2fx", p.Speedup))
	}
	return t
}
