package exp

import (
	"fmt"
	"time"

	"repro/internal/hostif"
	"repro/internal/vclock"
	"repro/internal/zns"
)

// ScaleConfig parameterizes the pipelined-executor scaling scenario —
// the paper's §2.2 argument ("parallel units never interfere") driven
// end to end through the host interface: an OX-ZNS namespace on a
// cache-less rig with one chunk-wide zones per PU, one queue pair per
// PU appending closed-loop into zones of its own PU's group. Under the
// serial executor every append executes under the host's single
// sequencer; the pipelined executor overlaps the disjoint-PU appends on
// a worker pool. Virtual-time results are bit-identical by the
// determinism contract (the run verifies this and fails otherwise);
// what the sweep measures is wall-clock — how much of the simulated
// device's parallelism the simulator itself can exploit.
type ScaleConfig struct {
	// PUCounts sweeps the device size: each point is a rig with that
	// many single-PU groups.
	PUCounts []int
	// Workers sweeps the pipelined executor's pool size. Serial
	// reference rows are always included.
	Workers []int
	// AppendsPerPU is the closed-loop command count per parallel unit.
	AppendsPerPU int
	// AppendBlocks sizes each zone append in device write units.
	AppendBlocks int
	Seed         int64
}

// DefaultScale returns the default sweep.
func DefaultScale() ScaleConfig {
	return ScaleConfig{
		PUCounts:     []int{1, 2, 4, 8},
		Workers:      []int{1, 2, 4},
		AppendsPerPU: 256,
		AppendBlocks: 2,
		Seed:         13,
	}
}

// ScalePoint is one row of the sweep.
type ScalePoint struct {
	PUs      int
	Executor hostif.ExecutorKind
	Workers  int
	Ops      int
	// Elapsed is the virtual completion instant of the last append —
	// identical across executors at equal PU count.
	Elapsed vclock.Duration
	// VirtMBps is ingest throughput in virtual time.
	VirtMBps float64
	// Wall is the measured wall-clock time of the run.
	Wall time.Duration
	// Overlapped/MaxInflight echo the executor log page.
	Overlapped  int64
	MaxInflight int
	// Speedup is serial wall-clock over this row's wall-clock at the
	// same PU count (1.0 for the serial row itself).
	Speedup float64
}

// Scale runs the sweep: for each PU count, a serial reference run and
// one pipelined run per worker count. It returns an error if any
// pipelined run's virtual timing diverges from the serial reference —
// the determinism contract, enforced on every invocation.
func Scale(cfg ScaleConfig) ([]ScalePoint, error) {
	var out []ScalePoint
	for _, pus := range cfg.PUCounts {
		serial, err := scaleRun(cfg, pus, "", 0)
		if err != nil {
			return out, fmt.Errorf("scale %d PUs serial: %w", pus, err)
		}
		serial.Speedup = 1
		out = append(out, serial)
		for _, workers := range cfg.Workers {
			p, err := scaleRun(cfg, pus, hostif.ExecutorPipelined, workers)
			if err != nil {
				return out, fmt.Errorf("scale %d PUs %d workers: %w", pus, workers, err)
			}
			if p.Elapsed != serial.Elapsed {
				return out, fmt.Errorf("scale %d PUs %d workers: virtual elapsed %v diverged from serial %v",
					pus, workers, p.Elapsed, serial.Elapsed)
			}
			if p.Wall > 0 {
				p.Speedup = float64(serial.Wall) / float64(p.Wall)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// scaleRig builds a cache-less device of pus single-PU groups, so
// group == PU and every zone is one chunk on one PU.
func scaleRig(cfg ScaleConfig, pus int) RigConfig {
	rc := DefaultRig()
	rc.Groups = pus
	rc.PUsPerGroup = 1
	rc.ChunksPerPU = 32
	rc.CacheMB = 0 // cache admission is device-global; without it,
	// disjoint-PU writes commute and may overlap
	rc.Seed = cfg.Seed
	return rc
}

func scaleRun(cfg ScaleConfig, pus int, ex hostif.ExecutorKind, workers int) (ScalePoint, error) {
	_, ctrl, err := scaleRig(cfg, pus).Build()
	if err != nil {
		return ScalePoint{}, err
	}
	tgt, err := zns.New(ctrl, zns.Config{})
	if err != nil {
		return ScalePoint{}, err
	}
	host := hostif.NewHost(ctrl, hostConfig(hostif.HostConfig{}, ex, workers))
	defer host.Close() // one host per sweep point: release its workers
	admin := host.Admin()
	nsid, err := admin.AttachNamespace(0, hostif.NewZoneNamespace(tgt))
	if err != nil {
		return ScalePoint{}, err
	}
	report, err := admin.ZoneReport(0, nsid)
	if err != nil {
		return ScalePoint{}, err
	}
	id, err := admin.IdentifyNamespace(0, nsid)
	if err != nil {
		return ScalePoint{}, err
	}

	// One actor per PU: its zones are the ones in its group, filled
	// round-robin; each append is AppendBlocks write units.
	zonesOf := make([][]int, pus)
	for _, zi := range report {
		zonesOf[zi.Group] = append(zonesOf[zi.Group], zi.Index)
	}
	appendBytes := cfg.AppendBlocks * id.BlockSize
	perZone := int(id.ZoneCapacity) / appendBytes
	if perZone == 0 {
		return ScalePoint{}, fmt.Errorf("scale: %d-byte appends exceed the %d-byte zone capacity", appendBytes, id.ZoneCapacity)
	}
	data := make([]byte, appendBytes)
	for i := range data {
		data[i] = byte(i)
	}
	type actor struct {
		qp       *hostif.QueuePair
		zones    []int
		issued   int
		lastDone vclock.Time
	}
	actors := make([]*actor, pus)
	for i := range actors {
		qp, err := admin.CreateIOQueuePair(0, 1, hostif.ClassMedium)
		if err != nil {
			return ScalePoint{}, err
		}
		actors[i] = &actor{qp: qp, zones: zonesOf[i]}
	}
	need := (cfg.AppendsPerPU + perZone - 1) / perZone
	for _, a := range actors {
		if len(a.zones) < need {
			return ScalePoint{}, fmt.Errorf("scale: %d zones per PU, need %d", len(a.zones), need)
		}
	}
	submit := func(a *actor, at vclock.Time) error {
		cmd := a.qp.AcquireCommand()
		cmd.Op, cmd.NSID, cmd.Data = hostif.OpZoneAppend, nsid, data
		cmd.Zone = a.zones[a.issued/perZone]
		a.issued++
		return a.qp.Push(at, cmd)
	}

	// Lockstep rounds: every PU's next append is visible before the
	// round's drain, so the execution engine always sees the full
	// disjoint-PU batch at once. Each actor still advances its own
	// virtual clock (it resubmits at its own completion instant), and
	// the round barrier is what a completion-batching driver does
	// anyway. The serial executor runs the identical schedule, so the
	// virtual results stay comparable command for command.
	wallStart := time.Now()
	for _, a := range actors {
		if err := submit(a, 0); err != nil {
			return ScalePoint{}, err
		}
	}
	qid0 := actors[0].qp.ID()
	var end vclock.Time
	inRound := 0
	err = reapLoop(host, "scale", pus*cfg.AppendsPerPU, func(comp hostif.Completion) error {
		a := actors[comp.QueueID-qid0]
		a.lastDone = comp.Done
		if comp.Done > end {
			end = comp.Done
		}
		if inRound++; inRound == len(actors) {
			inRound = 0
			for _, a := range actors {
				if a.issued < cfg.AppendsPerPU {
					if err := submit(a, a.lastDone); err != nil {
						return err
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		return ScalePoint{}, err
	}
	wall := time.Since(wallStart)

	p := ScalePoint{
		PUs:      pus,
		Executor: hostif.ExecutorSerial,
		Ops:      pus * cfg.AppendsPerPU,
		Elapsed:  end.Sub(0),
		Wall:     wall,
	}
	if ex == hostif.ExecutorPipelined {
		p.Executor = hostif.ExecutorPipelined
		log, err := admin.ExecutorStats(end)
		if err != nil {
			return ScalePoint{}, err
		}
		p.Workers = log.Workers
		p.Overlapped = log.Overlapped
		p.MaxInflight = log.MaxInflight
	}
	if end > 0 {
		p.VirtMBps = float64(p.Ops) * float64(appendBytes) / 1e6 / end.Seconds()
	}
	return p, nil
}

// ScaleTable renders the sweep. Virtual columns are deterministic and
// byte-stable; the wall-clock and speedup columns measure the host
// machine and vary run to run (they are excluded from the determinism
// diffs for exactly that reason).
func ScaleTable(points []ScalePoint) *Table {
	t := &Table{
		Title: "Pipelined executor scaling: disjoint-PU zone appends, serial vs worker pool (OX-ZNS, cache-less rig)",
		Headers: []string{"PUs", "executor", "workers", "ops",
			"virt elapsed", "virt MB/s", "overlap", "max inflight", "wall ms", "speedup"},
	}
	for _, p := range points {
		workers := "-"
		if p.Executor == hostif.ExecutorPipelined {
			workers = fmt.Sprintf("%d", p.Workers)
		}
		t.Add(p.PUs, string(p.Executor), workers, p.Ops,
			p.Elapsed.String(), fmt.Sprintf("%.0f", p.VirtMBps),
			p.Overlapped, p.MaxInflight,
			fmt.Sprintf("%.1f", float64(p.Wall.Microseconds())/1000),
			fmt.Sprintf("%.2fx", p.Speedup))
	}
	return t
}
