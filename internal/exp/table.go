// Package exp contains one driver per table and figure of the paper's
// evaluation (Figures 1, 3, 4, 5, 6, 7 and the §4.3 GC-locality and
// §2.1 unit-of-write claims). Drivers are shared by cmd/oxbench and the
// root bench_test.go, return structured rows, and render paper-style
// text tables and CSV.
package exp

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text/CSV table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row; values are rendered with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render draws the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Headers))
	for i, h := range t.Headers {
		cells[i] = esc(h)
	}
	b.WriteString(strings.Join(cells, ",") + "\n")
	for _, r := range t.Rows {
		cells = cells[:0]
		for _, c := range r {
			cells = append(cells, esc(c))
		}
		b.WriteString(strings.Join(cells, ",") + "\n")
	}
	return b.String()
}
