package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/hostif"
	"repro/internal/metrics"
	"repro/internal/oxblock"
	"repro/internal/vclock"
)

// TenantsConfig parameterizes the multi-tenant scenario: one OX-Block
// device is carved into per-tenant NVMe-style namespaces (disjoint LPN
// partitions), and every tenant drives its own queue pair closed-loop
// at a fixed depth. Deterministic round-robin arbitration should hand
// symmetric tenants near-identical throughput and tail latency — the
// "millions of users" sharing story in miniature.
type TenantsConfig struct {
	// Tenants is the number of namespaces/queue pairs.
	Tenants int
	// Depth is each tenant's queue depth.
	Depth int
	// OpsPerTenant is the measured command count per tenant.
	OpsPerTenant int
	// TxnPages sizes each command in 4 KB pages.
	TxnPages int
	// PagesPerTenant sizes each tenant's partition.
	PagesPerTenant int64
	Seed           int64
}

// DefaultTenants returns the default scenario.
func DefaultTenants() TenantsConfig {
	return TenantsConfig{
		Tenants:        4,
		Depth:          4,
		OpsPerTenant:   1200,
		TxnPages:       32,
		PagesPerTenant: 8192,
		Seed:           23,
	}
}

// TenantPoint is one tenant's results.
type TenantPoint struct {
	Tenant  int
	Ops     int
	KIOPS   float64
	Lat     *metrics.Histogram
	Elapsed vclock.Duration
}

// Tenants runs the scenario and returns one point per tenant.
func Tenants(cfg TenantsConfig) ([]TenantPoint, error) {
	rigCfg := DefaultRig()
	rigCfg.Seed = cfg.Seed
	_, ctrl, err := rigCfg.Build()
	if err != nil {
		return nil, err
	}
	logical := int64(cfg.Tenants) * cfg.PagesPerTenant
	d, _, now, err := oxblock.New(ctrl, oxblock.Config{LogicalPages: logical}, 0)
	if err != nil {
		return nil, err
	}
	host := hostif.NewHost(ctrl, hostif.HostConfig{ChargeHostLink: true})

	type tenant struct {
		nsid   int
		qp     *hostif.QueuePair
		draw   func(*hostif.Command)
		issued int
		point  TenantPoint
	}
	data := make([]byte, cfg.TxnPages*4096)
	tenants := make([]*tenant, cfg.Tenants)
	for i := range tenants {
		ns, err := hostif.NewBlockPartition(d, int64(i)*cfg.PagesPerTenant, cfg.PagesPerTenant)
		if err != nil {
			return nil, err
		}
		nsid := host.AddNamespace(ns)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*101))
		tenants[i] = &tenant{
			nsid: nsid,
			qp:   host.OpenQueuePair(cfg.Depth),
			draw: mixedDraw(rng, nsid, cfg.PagesPerTenant, cfg.TxnPages, cfg.TxnPages, data),
			point: TenantPoint{
				Tenant: i,
				Ops:    cfg.OpsPerTenant,
				Lat:    metrics.NewHistogram(),
			},
		}
	}

	// Prefill every partition sequentially so reads hit mapped pages.
	for _, tn := range tenants {
		if now, err = prefillBlock(tn.qp, tn.nsid, cfg.PagesPerTenant, cfg.TxnPages, data, now); err != nil {
			return nil, err
		}
	}

	// Measured phase: all tenants start together; each keeps Depth
	// mixed read/write commands in flight inside its own namespace.
	start := now
	for _, tn := range tenants {
		for i := 0; i < cfg.Depth && tn.issued < cfg.OpsPerTenant; i++ {
			cmd := tn.qp.AcquireCommand()
			tn.draw(cmd)
			if _, err := tn.qp.Submit(cmd); err != nil {
				return nil, err
			}
			tn.issued++
		}
		tn.qp.Ring(start)
	}
	for remaining := cfg.Tenants * cfg.OpsPerTenant; remaining > 0; remaining-- {
		comp, ok := host.ReapAny()
		if !ok {
			return nil, fmt.Errorf("tenants: completion queue ran dry")
		}
		if comp.Err != nil {
			return nil, comp.Err
		}
		tn := tenants[comp.QueueID]
		tn.point.Lat.Observe(comp.Latency())
		if end := comp.Done.Sub(start); end > tn.point.Elapsed {
			tn.point.Elapsed = end
		}
		if tn.issued < cfg.OpsPerTenant {
			cmd := tn.qp.AcquireCommand() // recycled by the reap above
			tn.draw(cmd)
			if err := tn.qp.Push(comp.Done, cmd); err != nil {
				return nil, err
			}
			tn.issued++
		}
	}
	out := make([]TenantPoint, cfg.Tenants)
	for i, tn := range tenants {
		if tn.point.Elapsed > 0 {
			tn.point.KIOPS = float64(cfg.OpsPerTenant) / tn.point.Elapsed.Seconds() / 1000
		}
		out[i] = tn.point
	}
	return out, nil
}

// TenantsTable renders per-tenant throughput and latency percentiles.
func TenantsTable(points []TenantPoint) *Table {
	t := &Table{
		Title:   "Multi-tenant namespaces: per-tenant throughput and latency (shared OX-Block device)",
		Headers: []string{"tenant", "ops", "kIOPS", "p50", "p95", "p99"},
	}
	for _, p := range points {
		cells := []any{p.Tenant, p.Ops, fmt.Sprintf("%.1f", p.KIOPS)}
		for _, s := range metrics.LatencyRow(p.Lat) {
			cells = append(cells, s)
		}
		t.Add(cells...)
	}
	return t
}
