package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/hostif"
	"repro/internal/metrics"
	"repro/internal/oxblock"
	"repro/internal/vclock"
)

// TenantsConfig parameterizes the multi-tenant scenario: one OX-Block
// device is carved into per-tenant NVMe-style namespaces (disjoint LPN
// partitions), and every tenant drives its own queue pair closed-loop
// at a fixed depth. With the default symmetric load and all-medium
// classes, deterministic arbitration hands every tenant near-identical
// throughput and tail latency — the "millions of users" sharing story
// in miniature. Classes and LoadFactors turn it into the asymmetric
// QoS scenario: tenants declare WRR arbitration classes and unequal
// load, and the isolation metric compares each tenant's shared-run p99
// against its solo-run p99.
type TenantsConfig struct {
	// Tenants is the number of namespaces/queue pairs.
	Tenants int
	// Depth is each tenant's queue depth.
	Depth int
	// OpsPerTenant is the measured command count per tenant (scaled by
	// that tenant's LoadFactor).
	OpsPerTenant int
	// TxnPages sizes each command in 4 KB pages.
	TxnPages int
	// PagesPerTenant sizes each tenant's partition.
	PagesPerTenant int64
	Seed           int64
	// Classes are per-tenant WRR arbitration classes; nil means all
	// medium (the symmetric default).
	Classes []hostif.Class
	// LoadFactors multiply OpsPerTenant per tenant; nil means 1 each.
	LoadFactors []int
	// Executor/Workers select the host's command-service engine
	// (results are identical for either engine).
	Executor hostif.ExecutorKind
	Workers  int
}

// DefaultTenants returns the symmetric default scenario.
func DefaultTenants() TenantsConfig {
	return TenantsConfig{
		Tenants:        4,
		Depth:          4,
		OpsPerTenant:   1200,
		TxnPages:       32,
		PagesPerTenant: 8192,
		Seed:           23,
	}
}

// DefaultTenantsQoS returns the asymmetric scenario: a high-class
// tenant pushing 4× load, two medium tenants, and a low-class batch
// tenant, all sharing one device under WRR arbitration.
func DefaultTenantsQoS() TenantsConfig {
	cfg := DefaultTenants()
	cfg.Classes = []hostif.Class{hostif.ClassHigh, hostif.ClassMedium, hostif.ClassMedium, hostif.ClassLow}
	cfg.LoadFactors = []int{4, 2, 1, 1}
	return cfg
}

// TenantPoint is one tenant's results.
type TenantPoint struct {
	Tenant  int
	Class   hostif.Class
	Ops     int
	KIOPS   float64
	Lat     *metrics.Histogram
	Elapsed vclock.Duration
	// SoloP99 is the tenant's p99 when running alone on the device
	// (TenantsQoS isolation baseline; zero when not measured).
	SoloP99 vclock.Duration
}

func (cfg TenantsConfig) class(i int) hostif.Class {
	if i < len(cfg.Classes) {
		return cfg.Classes[i]
	}
	return hostif.ClassMedium
}

func (cfg TenantsConfig) ops(i int) int {
	if i < len(cfg.LoadFactors) && cfg.LoadFactors[i] > 0 {
		return cfg.OpsPerTenant * cfg.LoadFactors[i]
	}
	return cfg.OpsPerTenant
}

// Tenants runs the shared scenario and returns one point per tenant.
func Tenants(cfg TenantsConfig) ([]TenantPoint, error) {
	return tenantsRun(cfg, nil)
}

// TenantsQoS runs the shared scenario plus one solo run per tenant —
// the same tenant workload with every other tenant silent — and fills
// each point's SoloP99, the denominator of the isolation metric.
func TenantsQoS(cfg TenantsConfig) ([]TenantPoint, error) {
	shared, err := tenantsRun(cfg, nil)
	if err != nil {
		return nil, err
	}
	for i := range shared {
		only := make([]bool, cfg.Tenants)
		only[i] = true
		solo, err := tenantsRun(cfg, only)
		if err != nil {
			return nil, fmt.Errorf("solo tenant %d: %w", i, err)
		}
		shared[i].SoloP99 = solo[i].Lat.Percentile(99)
	}
	return shared, nil
}

// tenantsRun executes the scenario. active selects which tenants issue
// traffic (nil = all); the device and namespace layout is always built
// in full, so a solo run differs from the shared run only in traffic.
func tenantsRun(cfg TenantsConfig, active []bool) ([]TenantPoint, error) {
	isActive := func(i int) bool { return active == nil || active[i] }
	rigCfg := DefaultRig()
	rigCfg.Seed = cfg.Seed
	_, ctrl, err := rigCfg.Build()
	if err != nil {
		return nil, err
	}
	logical := int64(cfg.Tenants) * cfg.PagesPerTenant
	d, _, now, err := oxblock.New(ctrl, oxblock.Config{LogicalPages: logical}, 0)
	if err != nil {
		return nil, err
	}
	host := hostif.NewHost(ctrl, hostConfig(hostif.HostConfig{ChargeHostLink: true}, cfg.Executor, cfg.Workers))
	admin := host.Admin()

	type tenant struct {
		nsid   int
		qp     *hostif.QueuePair
		draw   func(*hostif.Command)
		issued int
		ops    int
		point  TenantPoint
	}
	data := make([]byte, cfg.TxnPages*4096)
	tenants := make([]*tenant, cfg.Tenants)
	for i := range tenants {
		ns, err := hostif.NewBlockPartition(d, int64(i)*cfg.PagesPerTenant, cfg.PagesPerTenant)
		if err != nil {
			return nil, err
		}
		nsid, err := admin.AttachNamespace(now, ns)
		if err != nil {
			return nil, err
		}
		qp, err := admin.CreateIOQueuePair(now, cfg.Depth, cfg.class(i))
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*101))
		tenants[i] = &tenant{
			nsid: nsid,
			qp:   qp,
			draw: mixedDraw(rng, nsid, cfg.PagesPerTenant, cfg.TxnPages, cfg.TxnPages, data),
			ops:  cfg.ops(i),
			point: TenantPoint{
				Tenant: i,
				Class:  cfg.class(i),
				Ops:    cfg.ops(i),
				Lat:    metrics.NewHistogram(),
			},
		}
	}

	// Prefill every active partition sequentially so reads hit mapped
	// pages.
	total := 0
	for i, tn := range tenants {
		if !isActive(i) {
			continue
		}
		if now, err = prefillBlock(tn.qp, tn.nsid, cfg.PagesPerTenant, cfg.TxnPages, data, now); err != nil {
			return nil, err
		}
		total += tn.ops
	}

	// Measured phase: all active tenants start together; each keeps
	// Depth mixed read/write commands in flight inside its own
	// namespace.
	start := now
	for i, tn := range tenants {
		if !isActive(i) {
			continue
		}
		for j := 0; j < cfg.Depth && tn.issued < tn.ops; j++ {
			cmd := tn.qp.AcquireCommand()
			tn.draw(cmd)
			if _, err := tn.qp.Submit(cmd); err != nil {
				return nil, err
			}
			tn.issued++
		}
		tn.qp.Ring(start)
	}
	qid0 := tenants[0].qp.ID() // I/O queue IDs start after the admin queue
	err = reapLoop(host, "tenants", total, func(comp hostif.Completion) error {
		tn := tenants[comp.QueueID-qid0]
		tn.point.Lat.Observe(comp.Latency())
		if end := comp.Done.Sub(start); end > tn.point.Elapsed {
			tn.point.Elapsed = end
		}
		if tn.issued < tn.ops {
			cmd := tn.qp.AcquireCommand() // recycled by the reap above
			tn.draw(cmd)
			if err := tn.qp.Push(comp.Done, cmd); err != nil {
				return err
			}
			tn.issued++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]TenantPoint, cfg.Tenants)
	for i, tn := range tenants {
		if tn.point.Elapsed > 0 {
			tn.point.KIOPS = float64(tn.ops) / tn.point.Elapsed.Seconds() / 1000
		}
		out[i] = tn.point
	}
	return out, nil
}

// TenantsTable renders per-tenant throughput and latency percentiles
// for the symmetric scenario.
func TenantsTable(points []TenantPoint) *Table {
	t := &Table{
		Title:   "Multi-tenant namespaces: per-tenant throughput and latency (shared OX-Block device)",
		Headers: []string{"tenant", "ops", "kIOPS", "p50", "p95", "p99"},
	}
	for _, p := range points {
		cells := []any{p.Tenant, p.Ops, fmt.Sprintf("%.1f", p.KIOPS)}
		for _, s := range metrics.LatencyRow(p.Lat) {
			cells = append(cells, s)
		}
		t.Add(cells...)
	}
	return t
}

// TenantsQoSTable renders the asymmetric scenario: WRR class and load
// per tenant, shared-run percentiles, and the isolation metric —
// shared p99 over solo p99 (1.00× means perfect isolation).
func TenantsQoSTable(points []TenantPoint) *Table {
	t := &Table{
		Title: "Multi-tenant QoS: asymmetric load under WRR arbitration (shared p99 vs solo p99)",
		Headers: []string{"tenant", "class", "ops", "kIOPS",
			"p50", "p95", "p99", "solo p99", "iso"},
	}
	for _, p := range points {
		cells := []any{p.Tenant, p.Class.String(), p.Ops, fmt.Sprintf("%.1f", p.KIOPS)}
		for _, s := range metrics.LatencyRow(p.Lat) {
			cells = append(cells, s)
		}
		iso := "-"
		if p.SoloP99 > 0 {
			iso = fmt.Sprintf("%.2fx", p.Lat.Percentile(99).Seconds()/p.SoloP99.Seconds())
		}
		cells = append(cells, p.SoloP99.String(), iso)
		t.Add(cells...)
	}
	return t
}
