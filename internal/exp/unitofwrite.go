package exp

import (
	"fmt"

	"repro/internal/nand"
)

// UnitOfWriteRow is one line of the §2.1 unit-of-write arithmetic.
type UnitOfWriteRow struct {
	Cell   nand.CellType
	Planes int
	Unit   int // bytes
}

// UnitOfWrite tabulates how the unit of write grows with storage
// density and planes (§2.1 and §2.2): paired pages × planes × sectors.
// The paper's two worked examples are dual-plane TLC (96 KB, §2.2) and
// 4-plane QLC (256 KB, §2.1).
func UnitOfWrite() []UnitOfWriteRow {
	var out []UnitOfWriteRow
	for _, cell := range []nand.CellType{nand.SLC, nand.MLC, nand.TLC, nand.QLC} {
		for _, planes := range []int{1, 2, 4} {
			g := nand.Geometry{
				Planes:         planes,
				BlocksPerPlane: 8,
				PagesPerBlock:  12 * cell.BitsPerCell(),
				SectorsPerPage: 4,
				SectorSize:     4096,
				Cell:           cell,
			}
			out = append(out, UnitOfWriteRow{Cell: cell, Planes: planes, Unit: g.UnitOfWrite()})
		}
	}
	return out
}

// UnitOfWriteTable renders the §2.1 table.
func UnitOfWriteTable(rows []UnitOfWriteRow) *Table {
	t := &Table{
		Title:   "§2.1: unit of write = sectors/page × paired pages × planes × 4 KB",
		Headers: []string{"cell", "planes", "unit of write"},
	}
	for _, r := range rows {
		t.Add(r.Cell.String(), r.Planes, fmt.Sprintf("%d KB", r.Unit/1024))
	}
	return t
}
