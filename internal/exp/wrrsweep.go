package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/hostif"
	"repro/internal/metrics"
	"repro/internal/oxblock"
	"repro/internal/vclock"
)

// WRRSweepConfig parameterizes the arbitration-class sweep: a
// foreground tenant is measured once per WRR class while a fixed
// low-class batch tenant (created first, so it wins same-class
// doorbell ties) keeps a deep queue saturated on the same device. The
// sweep shows what a class buys under contention: urgent and high
// bursts preempt the batch queue entirely, a medium burst larger than
// the medium credit weight is split by the arbiter, and a low
// foreground queues behind the batch tenant's whole backlog.
type WRRSweepConfig struct {
	// Classes are the foreground classes to sweep (one table row each).
	Classes []hostif.Class
	// Depth is the foreground queue depth; BgDepth the background's.
	Depth   int
	BgDepth int
	// Ops is the measured foreground command count per class.
	Ops int
	// TxnPages sizes each command in 4 KB pages.
	TxnPages int
	// PagesPerTenant sizes the two partitions.
	PagesPerTenant int64
	Seed           int64
	// Executor/Workers select the host's command-service engine
	// (results are identical for either engine).
	Executor hostif.ExecutorKind
	Workers  int
}

// DefaultWRRSweep returns the default sweep. The urgent, high and
// medium rows come out close: a foreground burst near the credit
// weight is served ahead of the batch tenant in every case, because
// the batch queue spends its low-class credits on each round's tail
// (a WRR phase effect — the credit mechanics themselves are pinned by
// hostif's TestWRRCreditSchedule). The low row is the payoff: sharing
// the batch tenant's class means queueing behind its whole backlog.
func DefaultWRRSweep() WRRSweepConfig {
	return WRRSweepConfig{
		Classes: []hostif.Class{
			hostif.ClassUrgent, hostif.ClassHigh, hostif.ClassMedium, hostif.ClassLow,
		},
		Depth:          6,
		BgDepth:        16,
		Ops:            1500,
		TxnPages:       32,
		PagesPerTenant: 8192,
		Seed:           31,
	}
}

// WRRPoint is one row of the sweep.
type WRRPoint struct {
	Class   hostif.Class
	Ops     int
	KIOPS   float64 // foreground throughput over its completion window
	BgKIOPS float64 // background throughput over the same window
	Lat     *metrics.Histogram
	Elapsed vclock.Duration
}

// WRRSweep measures each foreground class against the fixed background.
func WRRSweep(cfg WRRSweepConfig) ([]WRRPoint, error) {
	var out []WRRPoint
	for _, class := range cfg.Classes {
		p, err := wrrRun(cfg, class)
		if err != nil {
			return out, fmt.Errorf("wrr sweep class %v: %w", class, err)
		}
		out = append(out, p)
	}
	return out, nil
}

func wrrRun(cfg WRRSweepConfig, class hostif.Class) (WRRPoint, error) {
	rigCfg := DefaultRig()
	rigCfg.Seed = cfg.Seed
	_, ctrl, err := rigCfg.Build()
	if err != nil {
		return WRRPoint{}, err
	}
	d, _, now, err := oxblock.New(ctrl, oxblock.Config{LogicalPages: 2 * cfg.PagesPerTenant}, 0)
	if err != nil {
		return WRRPoint{}, err
	}
	host := hostif.NewHost(ctrl, hostConfig(hostif.HostConfig{ChargeHostLink: true}, cfg.Executor, cfg.Workers))
	admin := host.Admin()

	type actor struct {
		nsid   int
		qp     *hostif.QueuePair
		draw   func(*hostif.Command)
		issued int
		done   int
	}
	data := make([]byte, cfg.TxnPages*4096)
	build := func(idx int, cl hostif.Class, depth int) (*actor, error) {
		ns, err := hostif.NewBlockPartition(d, int64(idx)*cfg.PagesPerTenant, cfg.PagesPerTenant)
		if err != nil {
			return nil, err
		}
		nsid, err := admin.AttachNamespace(now, ns)
		if err != nil {
			return nil, err
		}
		qp, err := admin.CreateIOQueuePair(now, depth, cl)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(idx)*101))
		return &actor{
			nsid: nsid,
			qp:   qp,
			draw: mixedDraw(rng, nsid, cfg.PagesPerTenant, cfg.TxnPages, cfg.TxnPages, data),
		}, nil
	}
	// The batch tenant is created first: it holds the lower queue ID,
	// so a low-class foreground genuinely loses same-class ties to it.
	bg, err := build(0, hostif.ClassLow, cfg.BgDepth)
	if err != nil {
		return WRRPoint{}, err
	}
	fg, err := build(1, class, cfg.Depth)
	if err != nil {
		return WRRPoint{}, err
	}
	for _, a := range []*actor{fg, bg} {
		if now, err = prefillBlock(a.qp, a.nsid, cfg.PagesPerTenant, cfg.TxnPages, data, now); err != nil {
			return WRRPoint{}, err
		}
	}

	// Measured phase: lockstep doorbell rounds. Each round, both actors
	// ring their full burst at the same instant — the moment class
	// arbitration decides who reaches the media first — then every
	// completion is reaped and the next round starts at the last one.
	// Per-completion resubmission would leave at most one command
	// visible per arbitration pass and no choice for the arbiter to
	// make; batched doorbells are where WRR classes bind.
	start := now
	burst := func(a *actor, depth int, at vclock.Time) error {
		for i := 0; i < depth; i++ {
			cmd := a.qp.AcquireCommand()
			a.draw(cmd)
			if _, err := a.qp.Submit(cmd); err != nil {
				return err
			}
			a.issued++
		}
		a.qp.Ring(at)
		return nil
	}
	p := WRRPoint{Class: class, Ops: cfg.Ops, Lat: metrics.NewHistogram()}
	fgID := fg.qp.ID()
	var end vclock.Time
	round := now
	for fg.done < cfg.Ops {
		if err := burst(fg, cfg.Depth, round); err != nil {
			return WRRPoint{}, err
		}
		if err := burst(bg, cfg.BgDepth, round); err != nil {
			return WRRPoint{}, err
		}
		next := round
		for reaped := 0; reaped < cfg.Depth+cfg.BgDepth; reaped++ {
			comp, ok := host.ReapAny()
			if !ok {
				return WRRPoint{}, fmt.Errorf("completion queue ran dry after %d fg ops", fg.done)
			}
			if comp.Err != nil {
				return WRRPoint{}, comp.Err
			}
			if comp.QueueID == fgID {
				fg.done++
				p.Lat.Observe(comp.Latency())
				if comp.Done > end {
					end = comp.Done
				}
			} else {
				bg.done++
			}
			if comp.Done > next {
				next = comp.Done
			}
		}
		round = next
	}
	p.Elapsed = end.Sub(start)
	if p.Elapsed > 0 {
		p.KIOPS = float64(fg.done) / p.Elapsed.Seconds() / 1000
		p.BgKIOPS = float64(bg.done) / p.Elapsed.Seconds() / 1000
	}
	return p, nil
}

// WRRSweepTable renders the sweep: foreground class vs throughput and
// latency under a saturating low-class batch background. The mean is
// exact (percentiles are bucketed), so it is where the high-vs-medium
// credit split shows.
func WRRSweepTable(points []WRRPoint) *Table {
	t := &Table{
		Title: "WRR arbitration: foreground class vs saturating low-class batch tenant (shared OX-Block device)",
		Headers: []string{"class", "fg kIOPS", "mean", "p50", "p95", "p99",
			"bg kIOPS"},
	}
	for _, p := range points {
		cells := []any{p.Class.String(), fmt.Sprintf("%.1f", p.KIOPS),
			fmt.Sprintf("%.3fms", p.Lat.Mean().Seconds()*1000)}
		for _, s := range metrics.LatencyRow(p.Lat) {
			cells = append(cells, s)
		}
		cells = append(cells, fmt.Sprintf("%.1f", p.BgKIOPS))
		t.Add(cells...)
	}
	return t
}
