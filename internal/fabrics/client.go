package fabrics

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/ftl/ftlcore"
	"repro/internal/hostif"
	"repro/internal/ocssd"
	"repro/internal/offload"
	"repro/internal/ox"
	"repro/internal/vclock"
	"repro/internal/zns"
)

// Default wall-clock guard rails. They bound how long a frame exchange
// may hang on a dead peer, not how long commands take in virtual time.
const (
	// DefaultAdminTimeout bounds one admin request/reply round trip and
	// the connect handshake.
	DefaultAdminTimeout = 30 * time.Second
	// DefaultWriteTimeout bounds one frame write on an I/O connection.
	DefaultWriteTimeout = 30 * time.Second
	// Redial backoff defaults (capped exponential, seeded jitter).
	defaultRedialBase = 2 * time.Millisecond
	defaultRedialCap  = 250 * time.Millisecond
)

// RedialConfig shapes the session-resumption retry loop: capped
// exponential backoff with seeded jitter. MaxAttempts 0 disables
// resumption entirely — a connection loss is then terminal, the
// pre-session behavior.
type RedialConfig struct {
	// MaxAttempts is the redial budget per outage (not per queue-pair
	// lifetime). 0 disables resumption.
	MaxAttempts int
	// Base is the first backoff step (default 2ms); doubles per attempt.
	Base time.Duration
	// Cap bounds the backoff step (default 250ms).
	Cap time.Duration
	// Seed makes the jitter deterministic; mixed with the session token
	// so concurrent queue pairs don't thunder in lockstep.
	Seed int64
}

// Config carries the client's liveness and resilience settings. The
// zero value keeps the wire liveness features off (no keep-alive, no
// redial) but applies sane wall-clock timeouts so a dead server can no
// longer hang a caller forever.
type Config struct {
	// KeepAlive is the NVMe-style KATO: the client heartbeats at a
	// third of it, the server reaps sessions silent past ~1.25x it, and
	// the client treats a read silence of KATO as a lost connection.
	// 0 disables keep-alive.
	KeepAlive time.Duration
	// AdminTimeout bounds admin round trips and connect handshakes.
	// 0 means DefaultAdminTimeout; negative disables the deadline.
	AdminTimeout time.Duration
	// WriteTimeout bounds I/O-connection frame writes. 0 means
	// DefaultWriteTimeout; negative disables the deadline.
	WriteTimeout time.Duration
	// Redial enables session resumption with idempotent replay.
	Redial RedialConfig
}

// resolveTimeout maps the Config convention (0 = default, negative =
// disabled) onto a concrete deadline span (0 = none).
func resolveTimeout(d, def time.Duration) time.Duration {
	if d == 0 {
		return def
	}
	if d < 0 {
		return 0
	}
	return d
}

// Client is one fabric initiator. It owns only the dial function and
// the resilience config; every QueuePair and AdminClient opens its own
// connection, because one connection is one queue pair.
type Client struct {
	dial func() (net.Conn, error)
	cfg  Config
}

// Dial returns a client that connects to a fabrics server at a TCP
// address. No connection is made until a queue pair or admin client is
// opened.
func Dial(addr string) *Client {
	return NewClient(func() (net.Conn, error) { return net.Dial("tcp", addr) })
}

// NewClient returns a client over a custom dial function — the
// loopback transport's entry point.
func NewClient(dial func() (net.Conn, error)) *Client {
	return &Client{dial: dial}
}

// WithConfig returns a client sharing this one's dial function with
// the given resilience config.
func (c *Client) WithConfig(cfg Config) *Client {
	return &Client{dial: c.dial, cfg: cfg}
}

// connect dials and runs the handshake, returning the accepted
// queue-pair ID, depth and session token. token 0 requests a fresh
// session; non-zero resumes a retained one.
func (c *Client) connect(kind uint8, now vclock.Time, depth int, class hostif.Class, coalesce int, token uint64) (net.Conn, int, int, uint64, error) {
	conn, err := c.dial()
	if err != nil {
		return nil, 0, 0, 0, err
	}
	if ht := resolveTimeout(c.cfg.AdminTimeout, DefaultAdminTimeout); ht > 0 {
		conn.SetDeadline(time.Now().Add(ht))
		defer conn.SetDeadline(time.Time{})
	}
	var f frameBuf
	f.start(frameConnect)
	f.u8(kind)
	f.u8(uint8(class))
	f.u32(uint32(depth))
	f.u32(uint32(coalesce))
	f.i64(int64(now))
	f.u32(uint32(c.cfg.KeepAlive / time.Millisecond))
	f.u64(token)
	if _, err := conn.Write(f.finish()); err != nil {
		conn.Close()
		return nil, 0, 0, 0, wrapTimeout(err)
	}
	var rbuf []byte
	ftype, payload, err := readFrame(conn, &rbuf)
	if err != nil {
		conn.Close()
		return nil, 0, 0, 0, wrapTimeout(err)
	}
	d := decoder{b: payload}
	switch ftype {
	case frameAccept:
		qid := int(d.u32())
		dep := int(d.u32())
		tok := d.u64()
		if err := d.done(); err != nil {
			conn.Close()
			return nil, 0, 0, 0, err
		}
		return conn, qid, dep, tok, nil
	case frameError:
		code := d.u16()
		msg := d.str()
		conn.Close()
		if code == errSessionUnknown {
			return nil, 0, 0, 0, fmt.Errorf("%w: %s", ErrSessionUnknown, msg)
		}
		return nil, 0, 0, 0, fmt.Errorf("%w: %s", ErrRejected, msg)
	default:
		conn.Close()
		return nil, 0, 0, 0, fmt.Errorf("%w: %d in handshake", ErrBadFrameType, ftype)
	}
}

// wrapTimeout surfaces deadline misses as the typed ErrTimeout while
// passing other transport errors through.
func wrapTimeout(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	}
	return err
}

// pendingCmd is one submitted command the server has not completed:
// staged (rung false) or in flight (rung true, at = doorbell instant).
// Rung entries are the replay set after a reconnect.
type pendingCmd struct {
	cmd  *hostif.Command
	at   vclock.Time
	rung bool
}

// recvEntry is one received completion awaiting Reap.
type recvEntry struct {
	comp hostif.Completion
	cmd  *hostif.Command
	data []byte // pooled buffer backing comp.Data (nil when none)
}

// QueuePair is the client half of one fabric queue pair: the same
// Submit / Ring / Reap / Push surface as hostif.QueuePair, over a
// connection. Slot accounting mirrors the in-process pair exactly —
// staged, in-flight and received-but-unreaped completions all hold a
// slot against the depth — so a driver moved onto the fabric sees
// identical ErrQueueFull backpressure.
//
// Differences from the in-process pair, inherent to a network hop:
// Reap blocks until a completion arrives (there is no host to drain
// synchronously) and returns false only when nothing is in flight;
// server-side submission rejections surface as error completions
// (Status/Err set, echoing the command) rather than Submit errors. A
// reaped completion's Data is valid until its command storage is
// recycled by a later completion.
//
// Resilience: when the client was built with a Redial budget, a lost
// connection is not terminal — the pair redials with capped
// exponential backoff, resumes its server-side session by token, and
// replays every un-acked rung command at its original doorbell
// instant. The server dedups sequence numbers already executed, so no
// acked write is lost or double-applied, and virtual timing is
// identical to the uninterrupted run. Callers blocked in Reap simply
// keep waiting across the outage.
//
// Like its in-process counterpart, a queue pair is driven by one actor
// at a time.
type QueuePair struct {
	cli      *Client
	id       int
	depth    int
	class    hostif.Class
	coalesce int
	token    uint64

	wmu  sync.Mutex // write side: ring frames, keep-alives, disconnect
	wbuf frameBuf

	mu     sync.Mutex
	cond   *sync.Cond
	conn   net.Conn
	gen    int   // bumped per reconnect; guards breakConn
	werr   error // first write error on the current conn (redial context)
	rerr   error // terminal reader error (sticky)
	closed bool
	kaStop chan struct{}

	// Local command arena with the in-process misuse detection.
	free  []*hostif.Command
	state map[*hostif.Command]uint8

	// Sequence-numbered pending set. Sequence numbers start at 1 and
	// never repeat; ack is the highest seq below which every completion
	// has been received (carried on ring frames so the server can prune
	// its replay cache).
	pending  map[uint64]*pendingCmd
	pendFree []*pendingCmd
	staged   []uint64
	nextSeq  uint64
	rung     int // rung, completion not yet received
	held     int // staged + rung + unreaped (slot gate)
	ack      uint64
	ackAhead map[uint64]struct{}
	lastRing vclock.Time

	nextSlot uint64
	cq       []recvEntry
	dataFree [][]byte

	redials  int
	replayed int
}

// QueuePair opens an I/O queue pair: the handshake is the remote
// AdminCreateIOQP, carrying depth, arbitration class and the
// completion-coalescing threshold (how many completions the server
// batches per push; 1 pushes each immediately). now is the virtual
// instant of the connection.
func (c *Client) QueuePair(now vclock.Time, depth int, class hostif.Class, coalesce int) (*QueuePair, error) {
	if depth < 1 {
		depth = 1
	}
	conn, qid, dep, token, err := c.connect(connKindIO, now, depth, class, coalesce, 0)
	if err != nil {
		return nil, err
	}
	qp := &QueuePair{
		cli:      c,
		conn:     conn,
		id:       qid,
		depth:    dep,
		class:    class,
		coalesce: coalesce,
		token:    token,
		state:    make(map[*hostif.Command]uint8),
		pending:  make(map[uint64]*pendingCmd, dep),
		ackAhead: make(map[uint64]struct{}),
		lastRing: now,
	}
	qp.cond = sync.NewCond(&qp.mu)
	qp.startKA(conn)
	go qp.sessionLoop(conn)
	return qp, nil
}

// ID reports the server-assigned queue-pair identifier.
func (qp *QueuePair) ID() int { return qp.id }

// Depth reports the accepted queue depth.
func (qp *QueuePair) Depth() int { return qp.depth }

// Class reports the queue pair's WRR arbitration class.
func (qp *QueuePair) Class() Class { return qp.class }

// Token reports the session token the server issued at connect.
func (qp *QueuePair) Token() uint64 { return qp.token }

// ReconnectStats counts session-resumption work over the pair's life.
type ReconnectStats struct {
	// Redials is the number of successful session resumptions.
	Redials int
	// Replayed is the total commands re-sent across all resumptions.
	Replayed int
}

// Stats reports the pair's resumption counters.
func (qp *QueuePair) Stats() ReconnectStats {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	return ReconnectStats{Redials: qp.redials, Replayed: qp.replayed}
}

// Class aliases the host interface's arbitration class for callers
// that only import fabrics.
type Class = hostif.Class

// AcquireCommand returns a Command from the queue pair's local arena,
// recycled when its completion is reaped — the same closed-loop
// storage contract as the in-process arena.
func (qp *QueuePair) AcquireCommand() *hostif.Command {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	if n := len(qp.free); n > 0 {
		cmd := qp.free[n-1]
		qp.free = qp.free[:n-1]
		qp.state[cmd] = cmdAcquired
		return cmd
	}
	cmd := new(hostif.Command)
	qp.state[cmd] = cmdAcquired
	return cmd
}

// Local arena states (values shared with hostif's convention).
const (
	cmdFree uint8 = iota
	cmdAcquired
	cmdInflight
)

// recycleLocked returns an arena command to the free list.
func (qp *QueuePair) recycleLocked(cmd *hostif.Command) {
	if cmd == nil {
		return
	}
	if _, ok := qp.state[cmd]; !ok {
		return
	}
	*cmd = hostif.Command{}
	qp.state[cmd] = cmdFree
	qp.free = append(qp.free, cmd)
}

// getPendingLocked pops a pooled pending entry. Caller holds mu.
func (qp *QueuePair) getPendingLocked() *pendingCmd {
	if n := len(qp.pendFree); n > 0 {
		pc := qp.pendFree[n-1]
		qp.pendFree = qp.pendFree[:n-1]
		return pc
	}
	return new(pendingCmd)
}

// putPendingLocked recycles a pending entry. Caller holds mu.
func (qp *QueuePair) putPendingLocked(pc *pendingCmd) {
	*pc = pendingCmd{}
	qp.pendFree = append(qp.pendFree, pc)
}

// Err reports the queue pair's terminal error: nil while healthy (or
// mid-resumption), ErrClosed after Close, or the transport/protocol
// error that killed the connection. RedialEligible discriminates
// causes a redial budget would have survived.
func (qp *QueuePair) Err() error {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	return qp.termErrLocked()
}

func (qp *QueuePair) termErrLocked() error {
	if qp.rerr != nil {
		return qp.rerr
	}
	if qp.closed {
		return ErrClosed
	}
	return nil
}

// Submit stages cmd for the next Ring, holding one of the queue's
// depth slots until the completion is reaped. It returns the local
// submission slot (which matches the controller's slot numbering when
// no command is rejected) or ErrQueueFull when every slot is held —
// the same backpressure surface as the in-process pair, enforced
// client-side so it is deterministic and immediate.
func (qp *QueuePair) Submit(cmd *hostif.Command) (uint64, error) {
	if cmd.Op.IsAdmin() {
		return 0, hostif.ErrAdminOnly
	}
	qp.mu.Lock()
	defer qp.mu.Unlock()
	if err := qp.termErrLocked(); err != nil {
		return 0, err
	}
	st, arena := qp.state[cmd]
	if arena {
		switch st {
		case cmdInflight:
			return 0, hostif.ErrCommandInFlight
		case cmdFree:
			return 0, hostif.ErrCommandRecycled
		}
	}
	if qp.held >= qp.depth {
		return 0, hostif.ErrQueueFull
	}
	qp.nextSeq++
	seq := qp.nextSeq
	pc := qp.getPendingLocked()
	pc.cmd = cmd
	qp.pending[seq] = pc
	qp.staged = append(qp.staged, seq)
	qp.held++
	slot := qp.nextSlot
	qp.nextSlot++
	if arena {
		qp.state[cmd] = cmdInflight
	}
	return slot, nil
}

// Ring sends every staged command to the controller as one doorbell
// batch at virtual instant now: one frame, one server-side Ring — the
// wire preserves batched submission exactly. It returns the number of
// commands sent. A write failure is not terminal when the client holds
// a redial budget: the rung entries stay pending and are replayed on
// resumption.
func (qp *QueuePair) Ring(now vclock.Time) int {
	qp.wmu.Lock()
	defer qp.wmu.Unlock()
	qp.mu.Lock()
	n := len(qp.staged)
	if n == 0 || qp.termErrLocked() != nil {
		qp.mu.Unlock()
		return 0
	}
	conn, gen := qp.conn, qp.gen
	qp.wbuf.start(frameRing)
	qp.wbuf.u64(qp.ack)
	qp.wbuf.u32(uint32(n))
	for _, seq := range qp.staged {
		pc := qp.pending[seq]
		pc.rung = true
		pc.at = now
		encodeCommand(&qp.wbuf, seq, now, pc.cmd)
	}
	qp.rung += n
	qp.staged = qp.staged[:0]
	qp.lastRing = now
	frame := qp.wbuf.finish()
	// Release mu (but not wmu) before the blocking write: the reader
	// goroutine needs mu to land completions, and a stalled write only
	// drains once the peer's pushes are being consumed.
	qp.mu.Unlock()
	qp.writeConn(conn, gen, frame)
	return n
}

// writeConn writes one frame under the configured write deadline.
// Failures break the connection (waking the reader) rather than
// failing the pair: the session loop decides whether the cause is
// redial-eligible. Caller holds wmu.
func (qp *QueuePair) writeConn(conn net.Conn, gen int, frame []byte) error {
	if wt := resolveTimeout(qp.cli.cfg.WriteTimeout, DefaultWriteTimeout); wt > 0 {
		conn.SetWriteDeadline(time.Now().Add(wt))
		defer conn.SetWriteDeadline(time.Time{})
	}
	if _, err := conn.Write(frame); err != nil {
		qp.breakConn(conn, gen, wrapTimeout(err))
		return err
	}
	return nil
}

// breakConn records a write failure against the connection generation
// it happened on and closes that connection so the reader observes the
// loss. A stale generation (the session already moved on) is ignored.
func (qp *QueuePair) breakConn(conn net.Conn, gen int, err error) {
	qp.mu.Lock()
	if qp.gen == gen && qp.werr == nil && !qp.closed {
		qp.werr = err
	}
	qp.mu.Unlock()
	conn.Close()
}

// Push submits cmd and rings the doorbell at now — the single-command
// convenience, mirroring the in-process Push.
func (qp *QueuePair) Push(now vclock.Time, cmd *hostif.Command) error {
	if _, err := qp.Submit(cmd); err != nil {
		return err
	}
	qp.Ring(now)
	return nil
}

// Reap pops the oldest received completion in push order (the server's
// completion order), blocking while commands are in flight and nothing
// has arrived yet — including across a connection outage while the
// session resumes. It returns false when no completion can ever come:
// nothing in flight, or the pair terminally failed (check Err).
func (qp *QueuePair) Reap() (hostif.Completion, bool) {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	for len(qp.cq) == 0 {
		if qp.rung == 0 || qp.rerr != nil || qp.closed {
			return hostif.Completion{}, false
		}
		qp.cond.Wait()
	}
	return qp.takeLocked(0), true
}

// MustReap is Reap for drivers whose protocol guarantees a completion
// is pending; it panics when none can arrive.
func (qp *QueuePair) MustReap() hostif.Completion {
	c, ok := qp.Reap()
	if !ok {
		panic(fmt.Sprintf("fabrics: MustReap with nothing in flight (%v)", qp.Err()))
	}
	return c
}

// ReapEarliest waits for every in-flight command to complete, then
// pops the earliest completion by (Done, Slot). Because a fabric ring
// drains the controller, all of a batch's completions arrive together,
// so this equals hostif.Host.ReapAny's globally-earliest pick for a
// single queue pair — the closed-loop driver equivalence the loopback
// test pins. It returns false when nothing is outstanding or the pair
// terminally failed.
func (qp *QueuePair) ReapEarliest() (hostif.Completion, bool) {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	for qp.rung > 0 && qp.rerr == nil && !qp.closed {
		qp.cond.Wait()
	}
	if len(qp.cq) == 0 {
		return hostif.Completion{}, false
	}
	best := 0
	for i := 1; i < len(qp.cq); i++ {
		c, b := &qp.cq[i].comp, &qp.cq[best].comp
		if c.Done < b.Done || (c.Done == b.Done && c.Slot < b.Slot) {
			best = i
		}
	}
	return qp.takeLocked(best), true
}

// takeLocked removes cq[i], recycling its arena command and data
// buffer. Caller holds mu.
func (qp *QueuePair) takeLocked(i int) hostif.Completion {
	e := qp.cq[i]
	qp.cq = append(qp.cq[:i], qp.cq[i+1:]...)
	if e.data != nil {
		qp.dataFree = append(qp.dataFree, e.data)
	}
	qp.recycleLocked(e.cmd)
	qp.held--
	return e.comp
}

// Outstanding reports slots currently held: staged, in flight, and
// received but unreaped.
func (qp *QueuePair) Outstanding() int {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	return qp.held
}

// Close tears the pair down. A best-effort disconnect frame tells the
// server this is a clean close — tear the session down now rather than
// retain it for resumption; locally, blocked Reaps return false.
func (qp *QueuePair) Close() error {
	qp.mu.Lock()
	if qp.closed {
		qp.mu.Unlock()
		return nil
	}
	qp.closed = true
	conn := qp.conn
	ka := qp.kaStop
	qp.kaStop = nil
	qp.cond.Broadcast()
	qp.mu.Unlock()
	if ka != nil {
		close(ka)
	}
	qp.wmu.Lock()
	qp.wbuf.start(frameDisconnect)
	conn.SetWriteDeadline(time.Now().Add(time.Second))
	conn.Write(qp.wbuf.finish())
	qp.wmu.Unlock()
	return conn.Close()
}

// fail records a terminal error and wakes every waiter.
func (qp *QueuePair) fail(err error) {
	qp.mu.Lock()
	if qp.rerr == nil && !qp.closed {
		qp.rerr = err
	}
	conn := qp.conn
	ka := qp.kaStop
	qp.kaStop = nil
	qp.cond.Broadcast()
	qp.mu.Unlock()
	if ka != nil {
		close(ka)
	}
	conn.Close()
}

// startKA spawns the keep-alive sender for conn: one heartbeat frame
// every KATO/3 so the server's session timer (KATO + slack) never
// expires while the client is healthy. No-op when keep-alive is off.
func (qp *QueuePair) startKA(conn net.Conn) {
	kato := qp.cli.cfg.KeepAlive
	if kato <= 0 {
		return
	}
	interval := kato / 3
	if interval <= 0 {
		interval = time.Millisecond
	}
	stop := make(chan struct{})
	qp.mu.Lock()
	if qp.closed || qp.rerr != nil {
		qp.mu.Unlock()
		return
	}
	gen := qp.gen
	qp.kaStop = stop
	qp.mu.Unlock()
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		var f frameBuf
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				f.start(frameKeepAlive)
				qp.wmu.Lock()
				err := qp.writeConn(conn, gen, f.finish())
				qp.wmu.Unlock()
				if err != nil {
					return
				}
			}
		}
	}()
}

// stopKA halts the current keep-alive sender, if any.
func (qp *QueuePair) stopKA() {
	qp.mu.Lock()
	ka := qp.kaStop
	qp.kaStop = nil
	qp.mu.Unlock()
	if ka != nil {
		close(ka)
	}
}

// terminalCause reports whether err is protocol damage (corrupt or
// alien frames, explicit rejection) rather than a connection loss.
// Losses — EOF, resets, closed sockets, truncated frames, missed
// keep-alive windows — are redial-eligible.
func terminalCause(err error) bool {
	for _, t := range []error{
		ErrBadMagic, ErrBadVersion, ErrBadFrameType, ErrFrameTooLarge,
		ErrCorruptFrame, ErrBadPayload, ErrBadOpcode, ErrRejected,
		ErrSessionUnknown,
	} {
		if errors.Is(err, t) {
			return true
		}
	}
	return false
}

// sessionLoop owns the pair's read side across connections: it
// consumes completion pushes until the connection dies, classifies the
// cause, and either resumes the session (redial, re-handshake with the
// token, replay un-acked commands) or fails the pair terminally.
func (qp *QueuePair) sessionLoop(conn net.Conn) {
	var rbuf []byte
	for {
		err := qp.readConn(conn, &rbuf)
		conn.Close()
		qp.stopKA()
		qp.mu.Lock()
		if qp.closed {
			qp.mu.Unlock()
			return
		}
		werr := qp.werr
		qp.werr = nil
		qp.mu.Unlock()

		// Classify. A local write error is the richer cause when the
		// read side only saw the connection close under it.
		cause := err
		switch {
		case errors.Is(err, ErrGoaway):
			cause = ErrGoaway
		case terminalCause(err):
			qp.fail(err)
			return
		default:
			if werr != nil && !terminalCause(werr) {
				cause = werr
			}
			cause = fmt.Errorf("%w: %w", ErrDisconnected, cause)
		}
		if qp.cli.cfg.Redial.MaxAttempts <= 0 {
			qp.fail(cause)
			return
		}
		next, rerr := qp.resume(cause)
		if rerr != nil {
			qp.fail(rerr)
			return
		}
		conn = next
	}
}

// readConn consumes frames from one connection until it dies, applying
// the keep-alive read deadline: any KATO of silence counts as a lost
// connection. Always returns a non-nil reason.
func (qp *QueuePair) readConn(conn net.Conn, rbuf *[]byte) error {
	kato := qp.cli.cfg.KeepAlive
	for {
		if kato > 0 {
			conn.SetReadDeadline(time.Now().Add(kato))
		}
		ftype, payload, err := readFrame(conn, rbuf)
		if err != nil {
			return wrapTimeout(err)
		}
		switch ftype {
		case frameCompletions:
			if err := qp.handleCompletions(payload); err != nil {
				return err
			}
		case frameKeepAlive:
			// Server heartbeat echo; the read itself reset the deadline.
		case frameGoaway:
			return ErrGoaway
		case frameError:
			d := decoder{b: payload}
			code := d.u16()
			msg := d.str()
			if code == errSessionUnknown {
				return fmt.Errorf("%w: %s", ErrSessionUnknown, msg)
			}
			return fmt.Errorf("%w: %s", ErrRejected, msg)
		default:
			return fmt.Errorf("%w: %d on I/O connection", ErrBadFrameType, ftype)
		}
	}
}

// resume redials with capped exponential backoff and seeded jitter,
// re-handshakes with the session token, and replays every un-acked
// rung command at its original doorbell instant in one ring frame.
// The server dedups already-executed sequence numbers from its session
// cache, so replay is idempotent and virtual timing is unperturbed.
func (qp *QueuePair) resume(cause error) (net.Conn, error) {
	r := qp.cli.cfg.Redial
	base := r.Base
	if base <= 0 {
		base = defaultRedialBase
	}
	ceil := r.Cap
	if ceil <= 0 {
		ceil = defaultRedialCap
	}
	rng := rand.New(rand.NewSource(r.Seed ^ int64(qp.token)*0x9e3779b9))
	last := cause
	for attempt := 0; attempt < r.MaxAttempts; attempt++ {
		d := base << uint(attempt)
		if d <= 0 || d > ceil {
			d = ceil
		}
		// Jitter to 50%..150% of the step.
		d = d/2 + time.Duration(rng.Int63n(int64(d)+1))
		time.Sleep(d)

		qp.mu.Lock()
		if qp.closed {
			qp.mu.Unlock()
			return nil, ErrClosed
		}
		token, at := qp.token, qp.lastRing
		qp.mu.Unlock()

		conn, qid, _, _, err := qp.cli.connect(connKindIO, at, qp.depth, qp.class, qp.coalesce, token)
		if err != nil {
			if errors.Is(err, ErrSessionUnknown) {
				return nil, err
			}
			last = err
			continue
		}

		// Install the connection and replay under wmu so no Ring can
		// interleave a frame between the replay set being collected and
		// the replay frame being written.
		qp.wmu.Lock()
		qp.mu.Lock()
		if qp.closed {
			qp.mu.Unlock()
			qp.wmu.Unlock()
			conn.Close()
			return nil, ErrClosed
		}
		qp.conn = conn
		qp.gen++
		gen := qp.gen
		qp.id = qid
		qp.redials++
		replay := make([]uint64, 0, len(qp.pending))
		for seq, pc := range qp.pending {
			if pc.rung {
				replay = append(replay, seq)
			}
		}
		sort.Slice(replay, func(i, j int) bool {
			a, b := qp.pending[replay[i]], qp.pending[replay[j]]
			if a.at != b.at {
				return a.at < b.at
			}
			return replay[i] < replay[j]
		})
		qp.replayed += len(replay)
		qp.wbuf.start(frameRing)
		qp.wbuf.u64(qp.ack)
		qp.wbuf.u32(uint32(len(replay)))
		for _, seq := range replay {
			pc := qp.pending[seq]
			encodeCommand(&qp.wbuf, seq, pc.at, pc.cmd)
		}
		frame := qp.wbuf.finish()
		qp.mu.Unlock()
		// The replay frame goes out even when empty: it carries the ack
		// so the server prunes its cache promptly.
		qp.writeConn(conn, gen, frame)
		qp.wmu.Unlock()
		qp.startKA(conn)
		return conn, nil
	}
	return nil, fmt.Errorf("fabrics: session resume abandoned after %d attempts: %w", r.MaxAttempts, last)
}

// handleCompletions lands one completion push: resolve each entry's
// sequence number to its pending command, copy returned data out of
// the frame buffer, advance the cumulative ack, and queue the
// completion for Reap.
func (qp *QueuePair) handleCompletions(payload []byte) error {
	d := decoder{b: payload}
	count := int(d.u32())
	if d.err == nil && (count < 0 || count > len(payload)) {
		d.fail()
	}
	qp.mu.Lock()
	defer qp.mu.Unlock()
	for i := 0; i < count; i++ {
		var e recvEntry
		seq, data, err := decodeCompletion(&d, &e.comp)
		if err != nil {
			return err
		}
		pc, ok := qp.pending[seq]
		if !ok {
			return fmt.Errorf("%w: completion for unknown seq %d", ErrBadPayload, seq)
		}
		cmd := pc.cmd
		delete(qp.pending, seq)
		if pc.rung {
			qp.rung--
		}
		qp.putPendingLocked(pc)
		// Advance the cumulative ack across any out-of-order arrivals.
		if seq == qp.ack+1 {
			qp.ack++
			for {
				if _, ahead := qp.ackAhead[qp.ack+1]; !ahead {
					break
				}
				delete(qp.ackAhead, qp.ack+1)
				qp.ack++
			}
		} else if seq > qp.ack {
			qp.ackAhead[seq] = struct{}{}
		}
		e.cmd = cmd
		if len(data) > 0 {
			if e.comp.Op == hostif.OpTableRead {
				// The lsm.Env contract reads into the caller's buffer.
				copy(cmd.Dst, data)
			} else {
				e.data = qp.getDataLocked(len(data))
				copy(e.data, data)
				e.comp.Data = e.data
			}
		} else {
			e.comp.Data = nil
		}
		qp.cq = append(qp.cq, e)
	}
	if err := d.done(); err != nil {
		return err
	}
	qp.cond.Broadcast()
	return nil
}

// getDataLocked pops a pooled completion-data buffer. Caller holds mu.
func (qp *QueuePair) getDataLocked(n int) []byte {
	for i := len(qp.dataFree) - 1; i >= 0; i-- {
		if cap(qp.dataFree[i]) >= n {
			b := qp.dataFree[i][:n]
			qp.dataFree = append(qp.dataFree[:i], qp.dataFree[i+1:]...)
			return b
		}
	}
	return make([]byte, n)
}

// AdminClient issues identify and log-page commands to a remote
// controller over an admin connection, with the same typed surface as
// the in-process hostif.AdminClient. Queue-pair lifecycle is not here:
// opening an I/O connection is the remote AdminCreateIOQP, closing it
// the delete. One admin client is one synchronous actor; calls are
// serialized internally. Every round trip runs under the configured
// AdminTimeout; a miss surfaces as ErrTimeout.
type AdminClient struct {
	mu      sync.Mutex
	conn    net.Conn
	timeout time.Duration
	wbuf    frameBuf
	rbuf    []byte
}

// Admin opens an admin connection to the remote controller.
func (c *Client) Admin() (*AdminClient, error) {
	conn, _, _, _, err := c.connect(connKindAdmin, 0, 0, 0, 0, 0)
	if err != nil {
		return nil, err
	}
	return &AdminClient{
		conn:    conn,
		timeout: resolveTimeout(c.cfg.AdminTimeout, DefaultAdminTimeout),
	}, nil
}

// Close closes the admin connection.
func (a *AdminClient) Close() error { return a.conn.Close() }

// do issues one admin request and decodes the reply synchronously.
func (a *AdminClient) do(now vclock.Time, op hostif.Op, nsid int, handle uint64, log hostif.LogPage) (any, hostif.Completion, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.timeout > 0 {
		a.conn.SetDeadline(time.Now().Add(a.timeout))
		defer a.conn.SetDeadline(time.Time{})
	}
	a.wbuf.start(frameAdmin)
	a.wbuf.u8(uint8(op))
	a.wbuf.u32(uint32(nsid))
	a.wbuf.u64(handle)
	a.wbuf.u8(uint8(log))
	a.wbuf.i64(int64(now))
	if _, err := a.conn.Write(a.wbuf.finish()); err != nil {
		return nil, hostif.Completion{}, wrapTimeout(err)
	}
	ftype, payload, err := readFrame(a.conn, &a.rbuf)
	if err != nil {
		return nil, hostif.Completion{}, wrapTimeout(err)
	}
	d := decoder{b: payload}
	switch ftype {
	case frameAdminReply:
	case frameError:
		code := d.u16()
		msg := d.str()
		if code == errSessionUnknown {
			return nil, hostif.Completion{}, fmt.Errorf("%w: %s", ErrSessionUnknown, msg)
		}
		return nil, hostif.Completion{}, fmt.Errorf("%w: %s", ErrRejected, msg)
	default:
		return nil, hostif.Completion{}, fmt.Errorf("%w: %d on admin connection", ErrBadFrameType, ftype)
	}
	code := d.u16()
	msg := d.str()
	var comp hostif.Completion
	comp.Op, comp.NSID = op, nsid
	comp.Done = vclock.Time(d.i64())
	comp.Handle = d.u64()
	comp.Blocks = int(d.i32())
	gobBytes := d.bytes()
	if err := d.done(); err != nil {
		return nil, hostif.Completion{}, err
	}
	if cerr := errorFor(code, msg); cerr != nil {
		comp.Err = cerr
		comp.Status = hostif.StatusOf(cerr)
		return nil, comp, cerr
	}
	var box payloadBox
	if len(gobBytes) > 0 {
		if err := gob.NewDecoder(bytes.NewReader(gobBytes)).Decode(&box); err != nil {
			return nil, comp, fmt.Errorf("%w: admin payload: %v", ErrBadPayload, err)
		}
	}
	comp.Admin = box.V
	return box.V, comp, nil
}

// payloadAs asserts a decoded admin payload's type, surfacing a typed
// error instead of a panic when the server sent something else.
func payloadAs[T any](v any, err error) (T, error) {
	var zero T
	if err != nil {
		return zero, err
	}
	t, ok := v.(T)
	if !ok {
		return zero, fmt.Errorf("%w: admin payload is %T", ErrBadPayload, v)
	}
	return t, nil
}

// Identify reports the remote controller's identity.
func (a *AdminClient) Identify(now vclock.Time) (hostif.IdentifyController, error) {
	v, _, err := a.do(now, hostif.OpAdminIdentify, 0, 0, 0)
	return payloadAs[hostif.IdentifyController](v, err)
}

// IdentifyNamespace reports one namespace's identity and geometry.
func (a *AdminClient) IdentifyNamespace(now vclock.Time, nsid int) (hostif.NamespaceIdentity, error) {
	v, _, err := a.do(now, hostif.OpAdminIdentify, nsid, 0, 0)
	return payloadAs[hostif.NamespaceIdentity](v, err)
}

// GetLogPage returns the selected log page; nsid is 0 for controller-
// and device-scoped pages.
func (a *AdminClient) GetLogPage(now vclock.Time, page hostif.LogPage, nsid int) (any, error) {
	v, _, err := a.do(now, hostif.OpAdminGetLogPage, nsid, 0, page)
	return v, err
}

// ControllerStats returns the controller counters log page.
func (a *AdminClient) ControllerStats(now vclock.Time) (ox.Stats, error) {
	return payloadAs[ox.Stats](a.GetLogPage(now, hostif.LogControllerStats, 0))
}

// Utilization returns memory-bus and core utilization at now.
func (a *AdminClient) Utilization(now vclock.Time) (hostif.UtilizationLog, error) {
	return payloadAs[hostif.UtilizationLog](a.GetLogPage(now, hostif.LogUtilization, 0))
}

// ChunkReport returns the device's Open-Channel chunk report.
func (a *AdminClient) ChunkReport(now vclock.Time) ([]ocssd.ChunkInfo, error) {
	return payloadAs[[]ocssd.ChunkInfo](a.GetLogPage(now, hostif.LogChunkReport, 0))
}

// MediaStats returns the device counters log page.
func (a *AdminClient) MediaStats(now vclock.Time) (ocssd.Stats, error) {
	return payloadAs[ocssd.Stats](a.GetLogPage(now, hostif.LogMediaStats, 0))
}

// FaultLog returns the device fault log page.
func (a *AdminClient) FaultLog(now vclock.Time) (ocssd.FaultLog, error) {
	return payloadAs[ocssd.FaultLog](a.GetLogPage(now, hostif.LogFaults, 0))
}

// ExecutorStats returns the execution-engine log page.
func (a *AdminClient) ExecutorStats(now vclock.Time) (hostif.ExecutorLog, error) {
	return payloadAs[hostif.ExecutorLog](a.GetLogPage(now, hostif.LogExecutor, 0))
}

// NamespaceStats returns a namespace's FTL counters; the concrete type
// depends on the adapter.
func (a *AdminClient) NamespaceStats(now vclock.Time, nsid int) (any, error) {
	return a.GetLogPage(now, hostif.LogNamespaceStats, nsid)
}

// ZoneReport returns an OX-ZNS namespace's zone report.
func (a *AdminClient) ZoneReport(now vclock.Time, nsid int) ([]zns.ZoneInfo, error) {
	return payloadAs[[]zns.ZoneInfo](a.GetLogPage(now, hostif.LogZoneReport, nsid))
}

// GCStats returns an OX-Block namespace's garbage-collection counters.
func (a *AdminClient) GCStats(now vclock.Time, nsid int) (ftlcore.GCStats, error) {
	return payloadAs[ftlcore.GCStats](a.GetLogPage(now, hostif.LogGCStats, nsid))
}

// TableChunks returns the chunks backing a committed LightLSM table.
func (a *AdminClient) TableChunks(now vclock.Time, nsid int, table uint64) ([]ocssd.ChunkID, error) {
	v, _, err := a.do(now, hostif.OpAdminGetLogPage, nsid, table, hostif.LogTableChunks)
	return payloadAs[[]ocssd.ChunkID](v, err)
}

// OffloadStats returns a namespace's computational-storage counters.
func (a *AdminClient) OffloadStats(now vclock.Time, nsid int) (offload.Stats, error) {
	return payloadAs[offload.Stats](a.GetLogPage(now, hostif.LogOffload, nsid))
}
