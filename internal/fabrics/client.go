package fabrics

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"repro/internal/ftl/ftlcore"
	"repro/internal/hostif"
	"repro/internal/ocssd"
	"repro/internal/ox"
	"repro/internal/vclock"
	"repro/internal/zns"
)

// Client is one fabric initiator. It owns only the dial function;
// every QueuePair and AdminClient opens its own connection, because
// one connection is one queue pair.
type Client struct {
	dial func() (net.Conn, error)
}

// Dial returns a client that connects to a fabrics server at a TCP
// address. No connection is made until a queue pair or admin client is
// opened.
func Dial(addr string) *Client {
	return NewClient(func() (net.Conn, error) { return net.Dial("tcp", addr) })
}

// NewClient returns a client over a custom dial function — the
// loopback transport's entry point.
func NewClient(dial func() (net.Conn, error)) *Client {
	return &Client{dial: dial}
}

// connect dials and runs the handshake, returning the accepted
// queue-pair ID and depth.
func (c *Client) connect(kind uint8, now vclock.Time, depth int, class hostif.Class, coalesce int) (net.Conn, int, int, error) {
	conn, err := c.dial()
	if err != nil {
		return nil, 0, 0, err
	}
	var f frameBuf
	f.start(frameConnect)
	f.u8(kind)
	f.u8(uint8(class))
	f.u32(uint32(depth))
	f.u32(uint32(coalesce))
	f.i64(int64(now))
	if _, err := conn.Write(f.finish()); err != nil {
		conn.Close()
		return nil, 0, 0, err
	}
	var rbuf []byte
	ftype, payload, err := readFrame(conn, &rbuf)
	if err != nil {
		conn.Close()
		return nil, 0, 0, err
	}
	d := decoder{b: payload}
	switch ftype {
	case frameAccept:
		qid := int(d.u32())
		dep := int(d.u32())
		if err := d.done(); err != nil {
			conn.Close()
			return nil, 0, 0, err
		}
		return conn, qid, dep, nil
	case frameError:
		msg := d.str()
		conn.Close()
		return nil, 0, 0, fmt.Errorf("%w: %s", ErrRejected, msg)
	default:
		conn.Close()
		return nil, 0, 0, fmt.Errorf("%w: %d in handshake", ErrBadFrameType, ftype)
	}
}

// stagedEntry is one locally staged submission awaiting its Ring.
type stagedEntry struct {
	cmd *hostif.Command
	tag uint32
}

// recvEntry is one received completion awaiting Reap.
type recvEntry struct {
	comp hostif.Completion
	cmd  *hostif.Command
	data []byte // pooled buffer backing comp.Data (nil when none)
}

// QueuePair is the client half of one fabric queue pair: the same
// Submit / Ring / Reap / Push surface as hostif.QueuePair, over a
// connection. Slot accounting mirrors the in-process pair exactly —
// staged, in-flight and received-but-unreaped completions all hold a
// slot against the depth — so a driver moved onto the fabric sees
// identical ErrQueueFull backpressure.
//
// Differences from the in-process pair, inherent to a network hop:
// Reap blocks until a completion arrives (there is no host to drain
// synchronously) and returns false only when nothing is in flight;
// server-side submission rejections surface as error completions
// (Status/Err set, echoing the command) rather than Submit errors. A
// reaped completion's Data is valid until its command storage is
// recycled by a later completion.
//
// Like its in-process counterpart, a queue pair is driven by one actor
// at a time.
type QueuePair struct {
	conn  net.Conn
	id    int
	depth int
	class hostif.Class

	wmu  sync.Mutex // write side: ring frames
	wbuf frameBuf

	mu     sync.Mutex
	cond   *sync.Cond
	rerr   error // terminal reader error (sticky)
	closed bool

	// Local command arena with the in-process misuse detection.
	free  []*hostif.Command
	state map[*hostif.Command]uint8

	staged   []stagedEntry
	nextSlot uint64
	inflight int // rung, completion not yet received
	held     int // staged + inflight + unreaped (slot gate)

	tagFree  []uint32
	tagCmd   []*hostif.Command
	cq       []recvEntry
	dataFree [][]byte
}

// QueuePair opens an I/O queue pair: the handshake is the remote
// AdminCreateIOQP, carrying depth, arbitration class and the
// completion-coalescing threshold (how many completions the server
// batches per push; 1 pushes each immediately). now is the virtual
// instant of the connection.
func (c *Client) QueuePair(now vclock.Time, depth int, class hostif.Class, coalesce int) (*QueuePair, error) {
	if depth < 1 {
		depth = 1
	}
	conn, qid, dep, err := c.connect(connKindIO, now, depth, class, coalesce)
	if err != nil {
		return nil, err
	}
	qp := &QueuePair{
		conn:   conn,
		id:     qid,
		depth:  dep,
		class:  class,
		state:  make(map[*hostif.Command]uint8),
		tagCmd: make([]*hostif.Command, dep),
	}
	qp.cond = sync.NewCond(&qp.mu)
	for t := dep - 1; t >= 0; t-- {
		qp.tagFree = append(qp.tagFree, uint32(t))
	}
	go qp.readLoop()
	return qp, nil
}

// ID reports the server-assigned queue-pair identifier.
func (qp *QueuePair) ID() int { return qp.id }

// Depth reports the accepted queue depth.
func (qp *QueuePair) Depth() int { return qp.depth }

// Class reports the queue pair's WRR arbitration class.
func (qp *QueuePair) Class() Class { return qp.class }

// Class aliases the host interface's arbitration class for callers
// that only import fabrics.
type Class = hostif.Class

// AcquireCommand returns a Command from the queue pair's local arena,
// recycled when its completion is reaped — the same closed-loop
// storage contract as the in-process arena.
func (qp *QueuePair) AcquireCommand() *hostif.Command {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	if n := len(qp.free); n > 0 {
		cmd := qp.free[n-1]
		qp.free = qp.free[:n-1]
		qp.state[cmd] = cmdAcquired
		return cmd
	}
	cmd := new(hostif.Command)
	qp.state[cmd] = cmdAcquired
	return cmd
}

// Local arena states (values shared with hostif's convention).
const (
	cmdFree uint8 = iota
	cmdAcquired
	cmdInflight
)

// recycleLocked returns an arena command to the free list.
func (qp *QueuePair) recycleLocked(cmd *hostif.Command) {
	if cmd == nil {
		return
	}
	if _, ok := qp.state[cmd]; !ok {
		return
	}
	*cmd = hostif.Command{}
	qp.state[cmd] = cmdFree
	qp.free = append(qp.free, cmd)
}

// Err reports the queue pair's terminal error: nil while healthy,
// ErrClosed after Close, or the transport/protocol error that killed
// the connection.
func (qp *QueuePair) Err() error {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	return qp.termErrLocked()
}

func (qp *QueuePair) termErrLocked() error {
	if qp.rerr != nil {
		return qp.rerr
	}
	if qp.closed {
		return ErrClosed
	}
	return nil
}

// Submit stages cmd for the next Ring, holding one of the queue's
// depth slots until the completion is reaped. It returns the local
// submission slot (which matches the controller's slot numbering when
// no command is rejected) or ErrQueueFull when every slot is held —
// the same backpressure surface as the in-process pair, enforced
// client-side so it is deterministic and immediate.
func (qp *QueuePair) Submit(cmd *hostif.Command) (uint64, error) {
	if cmd.Op.IsAdmin() {
		return 0, hostif.ErrAdminOnly
	}
	qp.mu.Lock()
	defer qp.mu.Unlock()
	if err := qp.termErrLocked(); err != nil {
		return 0, err
	}
	st, arena := qp.state[cmd]
	if arena {
		switch st {
		case cmdInflight:
			return 0, hostif.ErrCommandInFlight
		case cmdFree:
			return 0, hostif.ErrCommandRecycled
		}
	}
	if qp.held >= qp.depth {
		return 0, hostif.ErrQueueFull
	}
	tag := qp.tagFree[len(qp.tagFree)-1]
	qp.tagFree = qp.tagFree[:len(qp.tagFree)-1]
	qp.tagCmd[tag] = cmd
	qp.staged = append(qp.staged, stagedEntry{cmd: cmd, tag: tag})
	qp.held++
	slot := qp.nextSlot
	qp.nextSlot++
	if arena {
		qp.state[cmd] = cmdInflight
	}
	return slot, nil
}

// Ring sends every staged command to the controller as one doorbell
// batch at virtual instant now: one frame, one server-side Ring — the
// wire preserves batched submission exactly. It returns the number of
// commands sent.
func (qp *QueuePair) Ring(now vclock.Time) int {
	qp.wmu.Lock()
	defer qp.wmu.Unlock()
	qp.mu.Lock()
	n := len(qp.staged)
	if n == 0 || qp.termErrLocked() != nil {
		qp.mu.Unlock()
		return 0
	}
	qp.wbuf.start(frameRing)
	qp.wbuf.i64(int64(now))
	qp.wbuf.u32(uint32(n))
	for i := range qp.staged {
		encodeCommand(&qp.wbuf, qp.staged[i].tag, qp.staged[i].cmd)
	}
	qp.inflight += n
	qp.staged = qp.staged[:0]
	frame := qp.wbuf.finish()
	// Release mu (but not wmu) before the blocking write: the reader
	// goroutine needs mu to land completions, and a stalled write only
	// drains once the peer's pushes are being consumed.
	qp.mu.Unlock()
	if _, err := qp.conn.Write(frame); err != nil {
		qp.fail(err)
	}
	return n
}

// Push submits cmd and rings the doorbell at now — the single-command
// convenience, mirroring the in-process Push.
func (qp *QueuePair) Push(now vclock.Time, cmd *hostif.Command) error {
	if _, err := qp.Submit(cmd); err != nil {
		return err
	}
	qp.Ring(now)
	return nil
}

// Reap pops the oldest received completion in push order (the server's
// completion order), blocking while commands are in flight and nothing
// has arrived yet. It returns false when no completion can ever come:
// nothing in flight, or the connection died (check Err).
func (qp *QueuePair) Reap() (hostif.Completion, bool) {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	for len(qp.cq) == 0 {
		if qp.inflight == 0 || qp.rerr != nil || qp.closed {
			return hostif.Completion{}, false
		}
		qp.cond.Wait()
	}
	return qp.takeLocked(0), true
}

// MustReap is Reap for drivers whose protocol guarantees a completion
// is pending; it panics when none can arrive.
func (qp *QueuePair) MustReap() hostif.Completion {
	c, ok := qp.Reap()
	if !ok {
		panic(fmt.Sprintf("fabrics: MustReap with nothing in flight (%v)", qp.Err()))
	}
	return c
}

// ReapEarliest waits for every in-flight command to complete, then
// pops the earliest completion by (Done, Slot). Because a fabric ring
// drains the controller, all of a batch's completions arrive together,
// so this equals hostif.Host.ReapAny's globally-earliest pick for a
// single queue pair — the closed-loop driver equivalence the loopback
// test pins. It returns false when nothing is outstanding or the
// connection died.
func (qp *QueuePair) ReapEarliest() (hostif.Completion, bool) {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	for qp.inflight > 0 && qp.rerr == nil && !qp.closed {
		qp.cond.Wait()
	}
	if len(qp.cq) == 0 {
		return hostif.Completion{}, false
	}
	best := 0
	for i := 1; i < len(qp.cq); i++ {
		c, b := &qp.cq[i].comp, &qp.cq[best].comp
		if c.Done < b.Done || (c.Done == b.Done && c.Slot < b.Slot) {
			best = i
		}
	}
	return qp.takeLocked(best), true
}

// takeLocked removes cq[i], recycling its arena command and data
// buffer. Caller holds mu.
func (qp *QueuePair) takeLocked(i int) hostif.Completion {
	e := qp.cq[i]
	qp.cq = append(qp.cq[:i], qp.cq[i+1:]...)
	if e.data != nil {
		qp.dataFree = append(qp.dataFree, e.data)
	}
	qp.recycleLocked(e.cmd)
	qp.held--
	return e.comp
}

// Outstanding reports slots currently held: staged, in flight, and
// received but unreaped.
func (qp *QueuePair) Outstanding() int {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	return qp.held
}

// Close tears the connection down. The server observes the disconnect,
// completes anything in flight and deletes the queue pair; locally,
// blocked Reaps return false.
func (qp *QueuePair) Close() error {
	qp.mu.Lock()
	if qp.closed {
		qp.mu.Unlock()
		return nil
	}
	qp.closed = true
	qp.cond.Broadcast()
	qp.mu.Unlock()
	return qp.conn.Close()
}

// fail records a terminal reader error and wakes every waiter.
func (qp *QueuePair) fail(err error) {
	qp.mu.Lock()
	if qp.rerr == nil && !qp.closed {
		qp.rerr = err
	}
	qp.cond.Broadcast()
	qp.mu.Unlock()
	qp.conn.Close()
}

// readLoop is the queue pair's completion consumer: one goroutine per
// connection, so a blocked Ring write can never deadlock against the
// server's completion pushes (full-duplex flow).
func (qp *QueuePair) readLoop() {
	var rbuf []byte
	for {
		ftype, payload, err := readFrame(qp.conn, &rbuf)
		if err != nil {
			qp.fail(err)
			return
		}
		switch ftype {
		case frameCompletions:
			if err := qp.handleCompletions(payload); err != nil {
				qp.fail(err)
				return
			}
		case frameError:
			d := decoder{b: payload}
			msg := d.str()
			qp.fail(fmt.Errorf("%w: %s", ErrRejected, msg))
			return
		default:
			qp.fail(fmt.Errorf("%w: %d on I/O connection", ErrBadFrameType, ftype))
			return
		}
	}
}

// handleCompletions lands one completion push: resolve each entry's
// tag to its command, copy returned data out of the frame buffer, and
// queue the completion for Reap.
func (qp *QueuePair) handleCompletions(payload []byte) error {
	d := decoder{b: payload}
	count := int(d.u32())
	if d.err == nil && (count < 0 || count > len(payload)) {
		d.fail()
	}
	qp.mu.Lock()
	defer qp.mu.Unlock()
	for i := 0; i < count; i++ {
		var e recvEntry
		tag, data, err := decodeCompletion(&d, &e.comp)
		if err != nil {
			return err
		}
		if int(tag) >= len(qp.tagCmd) || qp.tagCmd[tag] == nil {
			return fmt.Errorf("%w: completion for unknown tag %d", ErrBadPayload, tag)
		}
		cmd := qp.tagCmd[tag]
		qp.tagCmd[tag] = nil
		qp.tagFree = append(qp.tagFree, tag)
		qp.inflight--
		e.cmd = cmd
		if len(data) > 0 {
			if e.comp.Op == hostif.OpTableRead {
				// The lsm.Env contract reads into the caller's buffer.
				copy(cmd.Dst, data)
			} else {
				e.data = qp.getDataLocked(len(data))
				copy(e.data, data)
				e.comp.Data = e.data
			}
		} else {
			e.comp.Data = nil
		}
		qp.cq = append(qp.cq, e)
	}
	if err := d.done(); err != nil {
		return err
	}
	qp.cond.Broadcast()
	return nil
}

// getDataLocked pops a pooled completion-data buffer. Caller holds mu.
func (qp *QueuePair) getDataLocked(n int) []byte {
	for i := len(qp.dataFree) - 1; i >= 0; i-- {
		if cap(qp.dataFree[i]) >= n {
			b := qp.dataFree[i][:n]
			qp.dataFree = append(qp.dataFree[:i], qp.dataFree[i+1:]...)
			return b
		}
	}
	return make([]byte, n)
}

// AdminClient issues identify and log-page commands to a remote
// controller over an admin connection, with the same typed surface as
// the in-process hostif.AdminClient. Queue-pair lifecycle is not here:
// opening an I/O connection is the remote AdminCreateIOQP, closing it
// the delete. One admin client is one synchronous actor; calls are
// serialized internally.
type AdminClient struct {
	mu   sync.Mutex
	conn net.Conn
	wbuf frameBuf
	rbuf []byte
}

// Admin opens an admin connection to the remote controller.
func (c *Client) Admin() (*AdminClient, error) {
	conn, _, _, err := c.connect(connKindAdmin, 0, 0, 0, 0)
	if err != nil {
		return nil, err
	}
	return &AdminClient{conn: conn}, nil
}

// Close closes the admin connection.
func (a *AdminClient) Close() error { return a.conn.Close() }

// do issues one admin request and decodes the reply synchronously.
func (a *AdminClient) do(now vclock.Time, op hostif.Op, nsid int, handle uint64, log hostif.LogPage) (any, hostif.Completion, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.wbuf.start(frameAdmin)
	a.wbuf.u8(uint8(op))
	a.wbuf.u32(uint32(nsid))
	a.wbuf.u64(handle)
	a.wbuf.u8(uint8(log))
	a.wbuf.i64(int64(now))
	if _, err := a.conn.Write(a.wbuf.finish()); err != nil {
		return nil, hostif.Completion{}, err
	}
	ftype, payload, err := readFrame(a.conn, &a.rbuf)
	if err != nil {
		return nil, hostif.Completion{}, err
	}
	d := decoder{b: payload}
	switch ftype {
	case frameAdminReply:
	case frameError:
		return nil, hostif.Completion{}, fmt.Errorf("%w: %s", ErrRejected, d.str())
	default:
		return nil, hostif.Completion{}, fmt.Errorf("%w: %d on admin connection", ErrBadFrameType, ftype)
	}
	code := d.u16()
	msg := d.str()
	var comp hostif.Completion
	comp.Op, comp.NSID = op, nsid
	comp.Done = vclock.Time(d.i64())
	comp.Handle = d.u64()
	comp.Blocks = int(d.i32())
	gobBytes := d.bytes()
	if err := d.done(); err != nil {
		return nil, hostif.Completion{}, err
	}
	if cerr := errorFor(code, msg); cerr != nil {
		comp.Err = cerr
		comp.Status = hostif.StatusOf(cerr)
		return nil, comp, cerr
	}
	var box payloadBox
	if len(gobBytes) > 0 {
		if err := gob.NewDecoder(bytes.NewReader(gobBytes)).Decode(&box); err != nil {
			return nil, comp, fmt.Errorf("%w: admin payload: %v", ErrBadPayload, err)
		}
	}
	comp.Admin = box.V
	return box.V, comp, nil
}

// payloadAs asserts a decoded admin payload's type, surfacing a typed
// error instead of a panic when the server sent something else.
func payloadAs[T any](v any, err error) (T, error) {
	var zero T
	if err != nil {
		return zero, err
	}
	t, ok := v.(T)
	if !ok {
		return zero, fmt.Errorf("%w: admin payload is %T", ErrBadPayload, v)
	}
	return t, nil
}

// Identify reports the remote controller's identity.
func (a *AdminClient) Identify(now vclock.Time) (hostif.IdentifyController, error) {
	v, _, err := a.do(now, hostif.OpAdminIdentify, 0, 0, 0)
	return payloadAs[hostif.IdentifyController](v, err)
}

// IdentifyNamespace reports one namespace's identity and geometry.
func (a *AdminClient) IdentifyNamespace(now vclock.Time, nsid int) (hostif.NamespaceIdentity, error) {
	v, _, err := a.do(now, hostif.OpAdminIdentify, nsid, 0, 0)
	return payloadAs[hostif.NamespaceIdentity](v, err)
}

// GetLogPage returns the selected log page; nsid is 0 for controller-
// and device-scoped pages.
func (a *AdminClient) GetLogPage(now vclock.Time, page hostif.LogPage, nsid int) (any, error) {
	v, _, err := a.do(now, hostif.OpAdminGetLogPage, nsid, 0, page)
	return v, err
}

// ControllerStats returns the controller counters log page.
func (a *AdminClient) ControllerStats(now vclock.Time) (ox.Stats, error) {
	return payloadAs[ox.Stats](a.GetLogPage(now, hostif.LogControllerStats, 0))
}

// Utilization returns memory-bus and core utilization at now.
func (a *AdminClient) Utilization(now vclock.Time) (hostif.UtilizationLog, error) {
	return payloadAs[hostif.UtilizationLog](a.GetLogPage(now, hostif.LogUtilization, 0))
}

// ChunkReport returns the device's Open-Channel chunk report.
func (a *AdminClient) ChunkReport(now vclock.Time) ([]ocssd.ChunkInfo, error) {
	return payloadAs[[]ocssd.ChunkInfo](a.GetLogPage(now, hostif.LogChunkReport, 0))
}

// MediaStats returns the device counters log page.
func (a *AdminClient) MediaStats(now vclock.Time) (ocssd.Stats, error) {
	return payloadAs[ocssd.Stats](a.GetLogPage(now, hostif.LogMediaStats, 0))
}

// FaultLog returns the device fault log page.
func (a *AdminClient) FaultLog(now vclock.Time) (ocssd.FaultLog, error) {
	return payloadAs[ocssd.FaultLog](a.GetLogPage(now, hostif.LogFaults, 0))
}

// ExecutorStats returns the execution-engine log page.
func (a *AdminClient) ExecutorStats(now vclock.Time) (hostif.ExecutorLog, error) {
	return payloadAs[hostif.ExecutorLog](a.GetLogPage(now, hostif.LogExecutor, 0))
}

// NamespaceStats returns a namespace's FTL counters; the concrete type
// depends on the adapter.
func (a *AdminClient) NamespaceStats(now vclock.Time, nsid int) (any, error) {
	return a.GetLogPage(now, hostif.LogNamespaceStats, nsid)
}

// ZoneReport returns an OX-ZNS namespace's zone report.
func (a *AdminClient) ZoneReport(now vclock.Time, nsid int) ([]zns.ZoneInfo, error) {
	return payloadAs[[]zns.ZoneInfo](a.GetLogPage(now, hostif.LogZoneReport, nsid))
}

// GCStats returns an OX-Block namespace's garbage-collection counters.
func (a *AdminClient) GCStats(now vclock.Time, nsid int) (ftlcore.GCStats, error) {
	return payloadAs[ftlcore.GCStats](a.GetLogPage(now, hostif.LogGCStats, nsid))
}

// TableChunks returns the chunks backing a committed LightLSM table.
func (a *AdminClient) TableChunks(now vclock.Time, nsid int, table uint64) ([]ocssd.ChunkID, error) {
	v, _, err := a.do(now, hostif.OpAdminGetLogPage, nsid, table, hostif.LogTableChunks)
	return payloadAs[[]ocssd.ChunkID](v, err)
}
