package fabrics

import (
	"fmt"

	"repro/internal/hostif"
	"repro/internal/lsm"
	"repro/internal/offload"
	"repro/internal/vclock"
)

// EnvClient implements lsm.Env over a fabric queue pair: the
// mini-RocksDB drives a LightLSM namespace in another process the way
// it drives the in-process hostif.EnvClient — every SSTable flush
// block, block read and table delete is one typed command over the
// wire. Calls are synchronous (one command in flight, depth 1), so the
// adapter adds no virtual time of its own.
type EnvClient struct {
	qp        *QueuePair
	nsid      int
	blockSize int
	maxBlocks int
}

// Statically assert EnvClient implements lsm.Env.
var _ lsm.Env = (*EnvClient)(nil)

// OpenLSM connects the client to a served LightLSM namespace: identify
// the namespace over an admin connection for the block geometry, then
// open a depth-1 queue pair for the data path — the fabric analog of
// hostif.AttachLSM's setup half.
func (c *Client) OpenLSM(now vclock.Time, nsid int) (*EnvClient, error) {
	admin, err := c.Admin()
	if err != nil {
		return nil, fmt.Errorf("fabrics: opening admin connection: %w", err)
	}
	id, err := admin.IdentifyNamespace(now, nsid)
	admin.Close()
	if err != nil {
		return nil, fmt.Errorf("fabrics: identifying namespace %d: %w", nsid, err)
	}
	if id.BlockSize == 0 || id.MaxTableBlocks == 0 {
		return nil, fmt.Errorf("%w: namespace %d (%s) has no table geometry",
			hostif.ErrUnsupported, nsid, id.Name)
	}
	qp, err := c.QueuePair(now, 1, hostif.ClassMedium, 1)
	if err != nil {
		return nil, fmt.Errorf("fabrics: opening queue pair: %w", err)
	}
	return NewEnvClient(qp, nsid, id), nil
}

// NewEnvClient builds the env over an already-open queue pair for the
// namespace attached under nsid, with the block geometry from its
// admin identity.
func NewEnvClient(qp *QueuePair, nsid int, id hostif.NamespaceIdentity) *EnvClient {
	return &EnvClient{
		qp:        qp,
		nsid:      nsid,
		blockSize: id.BlockSize,
		maxBlocks: id.MaxTableBlocks,
	}
}

// Close closes the underlying queue-pair connection.
func (c *EnvClient) Close() error { return c.qp.Close() }

// do issues one command synchronously through the queue pair's arena.
func (c *EnvClient) do(now vclock.Time, cmd hostif.Command) (hostif.Completion, error) {
	ac := c.qp.AcquireCommand()
	*ac = cmd
	ac.NSID = c.nsid
	if err := c.qp.Push(now, ac); err != nil {
		c.qp.ReleaseCommand(ac)
		return hostif.Completion{}, err
	}
	comp, ok := c.qp.Reap()
	if !ok {
		return hostif.Completion{}, c.qp.Err()
	}
	return comp, comp.Err
}

// ReleaseCommand mirrors the hostif arena's discard path for a
// rejected submit.
func (qp *QueuePair) ReleaseCommand(cmd *hostif.Command) {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	if st, ok := qp.state[cmd]; ok && st == cmdAcquired {
		qp.recycleLocked(cmd)
	}
}

// NSID reports the namespace the client is bound to.
func (c *EnvClient) NSID() int { return c.nsid }

// BlockSize implements lsm.Env.
func (c *EnvClient) BlockSize() int { return c.blockSize }

// MaxTableBlocks implements lsm.Env.
func (c *EnvClient) MaxTableBlocks() int { return c.maxBlocks }

// CreateTable implements lsm.Env.
func (c *EnvClient) CreateTable(now vclock.Time) (lsm.TableWriter, error) {
	comp, err := c.do(now, hostif.Command{Op: hostif.OpTableCreate})
	if err != nil {
		return nil, err
	}
	return &envWriter{env: c, handle: comp.Handle}, nil
}

// ReadBlock implements lsm.Env.
func (c *EnvClient) ReadBlock(now vclock.Time, h lsm.TableHandle, block int, dst []byte) (vclock.Time, error) {
	comp, err := c.do(now, hostif.Command{
		Op:     hostif.OpTableRead,
		Handle: uint64(h.ID),
		Length: int64(h.Blocks),
		LPN:    int64(block),
		Dst:    dst,
	})
	return comp.Done, err
}

// OffloadGet issues an in-device point lookup over the fabric: only
// the (flags, value) result crosses the wire instead of a full SSTable
// block. The signature matches lsm.Options.Lookup.
func (c *EnvClient) OffloadGet(now vclock.Time, h lsm.TableHandle, block int, key []byte) (value []byte, deleted, found bool, end vclock.Time, err error) {
	comp, err := c.do(now, hostif.Command{
		Op:     hostif.OpOffloadGet,
		Handle: uint64(h.ID),
		Length: int64(h.Blocks),
		LPN:    int64(block),
		Data:   key,
	})
	if err != nil {
		return nil, false, false, comp.Done, err
	}
	value, deleted, found, err = offload.DecodeGetResult(comp.Data)
	return value, deleted, found, comp.Done, err
}

// OffloadCompact issues an in-device compaction over the fabric: the
// remote device merges the input SSTables and only the output table
// metadata crosses the wire. The signature matches
// lsm.Options.Compactor.
func (c *EnvClient) OffloadCompact(now vclock.Time, inputs []lsm.TableHandle, bitsPerKey int, dropDeletes bool) ([]*lsm.TableMeta, vclock.Time, error) {
	refs := make([]offload.TableRef, len(inputs))
	for i, h := range inputs {
		refs[i] = offload.TableRef{ID: uint64(h.ID), Blocks: uint32(h.Blocks)}
	}
	req := offload.CompactRequest{Inputs: refs, DropDeletes: dropDeletes, BitsPerKey: uint16(bitsPerKey)}
	comp, err := c.do(now, hostif.Command{Op: hostif.OpOffloadCompact, Data: req.Encode()})
	if err != nil {
		return nil, comp.Done, err
	}
	blobs, err := offload.DecodeCompactResult(comp.Data)
	if err != nil {
		return nil, comp.Done, err
	}
	metas := make([]*lsm.TableMeta, len(blobs))
	for i, b := range blobs {
		if metas[i], err = lsm.UnmarshalTableMeta(b); err != nil {
			return nil, comp.Done, err
		}
	}
	return metas, comp.Done, nil
}

// DeleteTable implements lsm.Env.
func (c *EnvClient) DeleteTable(now vclock.Time, h lsm.TableHandle) (vclock.Time, error) {
	comp, err := c.do(now, hostif.Command{
		Op:     hostif.OpTableDelete,
		Handle: uint64(h.ID),
		Length: int64(h.Blocks),
	})
	return comp.Done, err
}

// envWriter implements lsm.TableWriter over the fabric.
type envWriter struct {
	env    *EnvClient
	handle uint64
}

// Append implements lsm.TableWriter.
func (w *envWriter) Append(now vclock.Time, block []byte) (vclock.Time, error) {
	comp, err := w.env.do(now, hostif.Command{Op: hostif.OpTableAppend, Handle: w.handle, Data: block})
	return comp.Done, err
}

// Commit implements lsm.TableWriter.
func (w *envWriter) Commit(now vclock.Time) (lsm.TableHandle, vclock.Time, error) {
	comp, err := w.env.do(now, hostif.Command{Op: hostif.OpTableCommit, Handle: w.handle})
	if err != nil {
		return lsm.TableHandle{}, comp.Done, err
	}
	return lsm.TableHandle{ID: lsm.TableID(comp.Handle), Blocks: comp.Blocks}, comp.Done, nil
}

// Abort implements lsm.TableWriter.
func (w *envWriter) Abort(now vclock.Time) (vclock.Time, error) {
	comp, err := w.env.do(now, hostif.Command{Op: hostif.OpTableAbort, Handle: w.handle})
	return comp.Done, err
}
