// Package fabrics is the interconnect layer of the OX controller: it
// serves the host interface (internal/hostif) over a network transport,
// the way OX 2.6 ships NVMe over Fabrics on TCP sockets. The other OX
// layers — media manager, FTLs, command parser, queue pairs — already
// exist in-process; this package adds the "interconnect handler" so a
// controller in one process can be driven by initiators in another.
//
// The design maps NVMe-oF concepts onto the existing queue-pair
// machinery rather than reinventing them:
//
//   - One connection is one queue pair. The connect handshake carries
//     the queue depth and WRR arbitration class (mirroring the
//     AdminCreateIOQP admin command) plus a completion-coalescing
//     threshold; the server creates the queue pair over its own admin
//     queue and tears it down when the connection dies.
//   - Doorbell batching is preserved end to end: the client stages
//     Submits locally and one Ring sends the whole batch in a single
//     frame, which the server submits and makes visible with a single
//     doorbell — several commands per network read, exactly as several
//     Submits share one Ring in-process.
//   - Completions are interrupt-driven: the server registers the queue
//     pair's SetNotify handler and pushes completion frames from the
//     notification callback, so the existing coalescing machinery is
//     the network batching policy. Frames may therefore be written by
//     whichever goroutine drove the drain, like a real NVMe-oF target
//     posting CQEs from its interrupt context.
//   - Virtual time travels on the wire. Doorbell instants go out with
//     each ring frame and completion instants come back, so a scenario
//     driven through the loopback transport produces bit-identical
//     virtual timing to the same scenario on in-process queue pairs
//     (the determinism contract; pinned by the loopback-equivalence
//     test in internal/exp).
//
// The wire protocol is a compact versioned binary encoding with
// CRC-framed payloads (wire.go); the data path reuses per-connection
// buffers and the queue pairs' command arenas on both sides, so
// encode/decode is allocation-free at steady state like the rest of
// the submit path. The control plane rides the same framing: an admin
// connection serves identify and log pages through a remote
// AdminClient with the same API shape as the in-process one.
package fabrics

import "errors"

// Typed wire-protocol errors. Frame decoding never panics: truncated,
// corrupt or alien input surfaces as one of these (wrapped with
// context), mirroring the WAL's ErrCorruptRecord discrimination.
var (
	// ErrBadMagic means the peer is not speaking the fabrics protocol.
	ErrBadMagic = errors.New("fabrics: bad frame magic")
	// ErrBadVersion means the peer speaks an unknown protocol version.
	ErrBadVersion = errors.New("fabrics: unsupported wire version")
	// ErrBadFrameType flags an unknown frame type byte.
	ErrBadFrameType = errors.New("fabrics: unknown frame type")
	// ErrFrameTooLarge rejects a frame whose declared payload exceeds
	// the protocol cap (a corrupt length field would otherwise make the
	// receiver try to allocate it).
	ErrFrameTooLarge = errors.New("fabrics: frame exceeds size cap")
	// ErrTruncatedFrame means the connection ended mid-frame.
	ErrTruncatedFrame = errors.New("fabrics: truncated frame")
	// ErrCorruptFrame means the payload failed its CRC.
	ErrCorruptFrame = errors.New("fabrics: frame CRC mismatch")
	// ErrBadPayload means a frame's payload did not decode (overran its
	// length, or held an out-of-range field).
	ErrBadPayload = errors.New("fabrics: malformed frame payload")
	// ErrBadOpcode flags a command entry with an opcode outside the
	// host interface's command set.
	ErrBadOpcode = errors.New("fabrics: unknown command opcode")
	// ErrClosed is returned by operations on a closed client or queue
	// pair.
	ErrClosed = errors.New("fabrics: connection closed")
	// ErrRejected wraps a server-side handshake rejection.
	ErrRejected = errors.New("fabrics: connection rejected by server")
	// ErrTimeout means a frame exchange missed its deadline (an admin
	// request against an unresponsive server, a keep-alive window with
	// no traffic). errors.Is(err, ErrTimeout) discriminates it.
	ErrTimeout = errors.New("fabrics: request timed out")
	// ErrDisconnected means the connection died mid-stream — EOF or a
	// transport error between frames, a truncated frame, a missed
	// keep-alive window. Redial-eligible: a session-holding queue pair
	// resumes and replays across it.
	ErrDisconnected = errors.New("fabrics: connection lost")
	// ErrGoaway means the server announced a graceful drain and served
	// every accepted command before going away. Redial-eligible.
	ErrGoaway = errors.New("fabrics: server going away")
	// ErrSessionUnknown rejects a session resume whose token names no
	// retained session (expired, reaped, or never issued). Terminal:
	// the client cannot replay into a server that forgot the session.
	ErrSessionUnknown = errors.New("fabrics: unknown session token")
)

// RedialEligible reports whether err describes a connection loss a
// session-holding queue pair may redial across (the server either
// drained gracefully or simply lost the connection), as opposed to a
// terminal cause: local Close, a protocol violation, or a rejected
// resume.
func RedialEligible(err error) bool {
	return errors.Is(err, ErrDisconnected) || errors.Is(err, ErrGoaway)
}

// RemoteError is a server-side command failure that has no canonical
// client-side error value. The NVMe-style status class survives the
// trip (Completion.Status carries it too); the text is diagnostic.
type RemoteError struct {
	Code uint16
	Msg  string
}

func (e *RemoteError) Error() string {
	if e.Msg != "" {
		return "fabrics: remote: " + e.Msg
	}
	return "fabrics: remote error"
}
