package fabrics_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/fabrics"
	"repro/internal/hostif"
	"repro/internal/oxblock"
	"repro/internal/vclock"
)

// testRig builds a small served controller: OX-Block over the default
// rig, host attached, server listening on an ephemeral TCP port.
func testRig(t *testing.T, logicalPages int64) (*fabrics.Server, string, vclock.Time) {
	t.Helper()
	_, ctrl, err := exp.DefaultRig().Build()
	if err != nil {
		t.Fatalf("rig: %v", err)
	}
	d, _, now, err := oxblock.New(ctrl, oxblock.Config{LogicalPages: logicalPages}, 0)
	if err != nil {
		t.Fatalf("oxblock: %v", err)
	}
	host := hostif.NewHost(ctrl, hostif.HostConfig{ChargeHostLink: true})
	if _, err := host.Admin().AttachNamespace(now, hostif.NewBlockNamespace(d)); err != nil {
		t.Fatalf("attach: %v", err)
	}
	srv := fabrics.NewServer(host)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(l)
	t.Cleanup(srv.Close)
	return srv, l.Addr().String(), now
}

// waitQPs polls the controller identity until the live I/O queue-pair
// count drains to want — connection cleanup runs on the server's
// handler goroutine, so tests observe it asynchronously.
func waitQPs(t *testing.T, admin *fabrics.AdminClient, now vclock.Time, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		id, err := admin.Identify(now)
		if err != nil {
			t.Fatalf("identify: %v", err)
		}
		if id.IOQueuePairs == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue pairs stuck at %d, want %d", id.IOQueuePairs, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTCPRoundtrip drives the full stack over a real socket: admin
// identify, a write, and a read whose payload must come back intact.
func TestTCPRoundtrip(t *testing.T) {
	_, addr, now := testRig(t, 1024)
	cli := fabrics.Dial(addr)

	admin, err := cli.Admin()
	if err != nil {
		t.Fatalf("admin connect: %v", err)
	}
	defer admin.Close()
	id, err := admin.Identify(now)
	if err != nil {
		t.Fatalf("identify: %v", err)
	}
	if id.Namespaces != 1 {
		t.Fatalf("namespaces = %d, want 1", id.Namespaces)
	}
	ns, err := admin.IdentifyNamespace(now, 1)
	if err != nil {
		t.Fatalf("identify namespace: %v", err)
	}
	if ns.Capacity != 1024 {
		t.Fatalf("namespace capacity = %d, want 1024", ns.Capacity)
	}

	qp, err := cli.QueuePair(now, 4, hostif.ClassHigh, 1)
	if err != nil {
		t.Fatalf("queue pair: %v", err)
	}
	defer qp.Close()

	payload := make([]byte, 4*4096)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	cmd := qp.AcquireCommand()
	cmd.Op, cmd.NSID, cmd.LPN, cmd.Data = hostif.OpWrite, 1, 8, payload
	if err := qp.Push(now, cmd); err != nil {
		t.Fatalf("write: %v", err)
	}
	wc := qp.MustReap()
	if wc.Err != nil {
		t.Fatalf("write completion: %v", wc.Err)
	}
	if wc.Done <= now {
		t.Fatalf("write Done %v not after doorbell %v", wc.Done, now)
	}

	cmd = qp.AcquireCommand()
	cmd.Op, cmd.NSID, cmd.LPN, cmd.Pages = hostif.OpRead, 1, 8, 4
	if err := qp.Push(wc.Done, cmd); err != nil {
		t.Fatalf("read: %v", err)
	}
	rc := qp.MustReap()
	if rc.Err != nil {
		t.Fatalf("read completion: %v", rc.Err)
	}
	if !bytes.Equal(rc.Data, payload) {
		t.Fatalf("read returned wrong bytes (%d of %d correct prefix)",
			commonPrefix(rc.Data, payload), len(payload))
	}
}

func commonPrefix(a, b []byte) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// TestAdminErrorsOverFabric pins the admin error path: a bad log page
// and a bad namespace come back as the canonical host errors, and the
// connection keeps working afterwards.
func TestAdminErrorsOverFabric(t *testing.T) {
	_, addr, now := testRig(t, 256)
	admin, err := fabrics.Dial(addr).Admin()
	if err != nil {
		t.Fatalf("admin connect: %v", err)
	}
	defer admin.Close()
	if _, err := admin.GetLogPage(now, hostif.LogPage(200), 0); !errors.Is(err, hostif.ErrBadLogPage) {
		t.Fatalf("bad log page: got %v", err)
	}
	if _, err := admin.IdentifyNamespace(now, 42); !errors.Is(err, hostif.ErrBadNSID) {
		t.Fatalf("bad nsid: got %v", err)
	}
	if _, err := admin.Identify(now); err != nil {
		t.Fatalf("identify after errors: %v", err)
	}
}

// TestSubmitRejectRidesAsCompletion: a command the server cannot
// submit comes back as an error completion carrying the canonical
// error, and the queue pair survives to run the next command.
func TestSubmitRejectRidesAsCompletion(t *testing.T) {
	_, addr, now := testRig(t, 256)
	qp, err := fabrics.Dial(addr).QueuePair(now, 2, hostif.ClassMedium, 1)
	if err != nil {
		t.Fatalf("queue pair: %v", err)
	}
	defer qp.Close()

	cmd := qp.AcquireCommand()
	cmd.Op, cmd.NSID, cmd.Pages = hostif.OpRead, 99, 1
	if err := qp.Push(now, cmd); err != nil {
		t.Fatalf("push: %v", err)
	}
	comp := qp.MustReap()
	if !errors.Is(comp.Err, hostif.ErrBadNSID) {
		t.Fatalf("bad-namespace read completed with %v, want %v", comp.Err, hostif.ErrBadNSID)
	}
	cmd = qp.AcquireCommand()
	cmd.Op, cmd.NSID, cmd.LPN, cmd.Data = hostif.OpWrite, 1, 0, make([]byte, 4096)
	if err := qp.Push(comp.Done, cmd); err != nil {
		t.Fatalf("push after reject: %v", err)
	}
	if comp := qp.MustReap(); comp.Err != nil {
		t.Fatalf("write after reject: %v", comp.Err)
	}
}

// TestClientDepthGate: the client refuses submissions past the
// negotiated depth without a wire round trip, exactly like the
// in-process arena.
func TestClientDepthGate(t *testing.T) {
	_, addr, now := testRig(t, 256)
	qp, err := fabrics.Dial(addr).QueuePair(now, 2, hostif.ClassMedium, 1)
	if err != nil {
		t.Fatalf("queue pair: %v", err)
	}
	defer qp.Close()
	for i := 0; i < 2; i++ {
		cmd := qp.AcquireCommand()
		cmd.Op, cmd.NSID, cmd.LPN, cmd.Data = hostif.OpWrite, 1, int64(i), make([]byte, 4096)
		if _, err := qp.Submit(cmd); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	cmd := qp.AcquireCommand()
	cmd.Op, cmd.NSID, cmd.Pages = hostif.OpRead, 1, 1
	if _, err := qp.Submit(cmd); !errors.Is(err, hostif.ErrQueueFull) {
		t.Fatalf("third submit at depth 2: got %v, want %v", err, hostif.ErrQueueFull)
	}
	qp.ReleaseCommand(cmd)
	qp.Ring(now)
	for i := 0; i < 2; i++ {
		if comp := qp.MustReap(); comp.Err != nil {
			t.Fatalf("completion %d: %v", i, comp.Err)
		}
	}
}

// TestServerSurvivesAbruptDisconnect kills connections mid-batch —
// doorbell rung, completions never read — and checks the server reaps
// the queue pair, releases its slots, and keeps serving new clients.
func TestServerSurvivesAbruptDisconnect(t *testing.T) {
	_, addr, now := testRig(t, 1024)
	cli := fabrics.Dial(addr)
	admin, err := cli.Admin()
	if err != nil {
		t.Fatalf("admin connect: %v", err)
	}
	defer admin.Close()

	for round := 0; round < 5; round++ {
		qp, err := cli.QueuePair(now, 8, hostif.ClassMedium, 4)
		if err != nil {
			t.Fatalf("round %d: queue pair: %v", round, err)
		}
		for i := 0; i < 8; i++ {
			cmd := qp.AcquireCommand()
			cmd.Op, cmd.NSID, cmd.LPN, cmd.Data = hostif.OpWrite, 1, int64(i*8), make([]byte, 4096)
			if _, err := qp.Submit(cmd); err != nil {
				t.Fatalf("round %d: submit %d: %v", round, i, err)
			}
		}
		qp.Ring(now)
		// Hang up with all eight completions unread.
		qp.Close()
		waitQPs(t, admin, now, 0)
	}

	// The controller must still serve a full roundtrip.
	qp, err := cli.QueuePair(now, 1, hostif.ClassMedium, 1)
	if err != nil {
		t.Fatalf("post-churn queue pair: %v", err)
	}
	defer qp.Close()
	cmd := qp.AcquireCommand()
	cmd.Op, cmd.NSID, cmd.Pages = hostif.OpRead, 1, 1
	if err := qp.Push(now, cmd); err != nil {
		t.Fatalf("post-churn push: %v", err)
	}
	if comp := qp.MustReap(); comp.Err != nil {
		t.Fatalf("post-churn completion: %v", comp.Err)
	}
}

// TestReapAfterConnectionDrop: a client blocked in Reap when its
// connection dies must unblock with ok=false and a terminal error, not
// hang.
func TestReapAfterConnectionDrop(t *testing.T) {
	srv, addr, now := testRig(t, 256)
	qp, err := fabrics.Dial(addr).QueuePair(now, 1, hostif.ClassMedium, 1)
	if err != nil {
		t.Fatalf("queue pair: %v", err)
	}
	srv.Close() // kills every tracked connection
	done := make(chan struct{})
	go func() {
		defer close(done)
		cmd := qp.AcquireCommand()
		cmd.Op, cmd.NSID, cmd.Pages = hostif.OpRead, 1, 1
		if err := qp.Push(now, cmd); err != nil {
			return // write failed fast: also fine
		}
		if _, ok := qp.Reap(); ok {
			t.Error("reap succeeded on a dead connection")
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("reap hung after connection drop")
	}
	if qp.Err() == nil {
		t.Fatal("dead queue pair reports no terminal error")
	}
}

// TestChurnStress is the -race workout: many goroutines dialing,
// writing, and dropping connections — half of them abruptly with
// completions unread — while admin clients hammer identify. The
// assertions are freedom from panics, races and deadlocks, full
// queue-pair drain, and a working controller afterwards.
func TestChurnStress(t *testing.T) {
	_, addr, now := testRig(t, 4096)
	cli := fabrics.Dial(addr)

	const workers = 12
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for r := 0; r < rounds; r++ {
				qp, err := cli.QueuePair(now, 4, hostif.Class(w%4), 2)
				if err != nil {
					errs <- fmt.Errorf("worker %d round %d: dial: %w", w, r, err)
					return
				}
				n := 1 + rng.Intn(4)
				for i := 0; i < n; i++ {
					cmd := qp.AcquireCommand()
					cmd.Op, cmd.NSID, cmd.Data = hostif.OpWrite, 1, make([]byte, 4096)
					cmd.LPN = int64(rng.Intn(4096))
					if _, err := qp.Submit(cmd); err != nil {
						errs <- fmt.Errorf("worker %d round %d: submit: %w", w, r, err)
						return
					}
				}
				qp.Ring(now)
				if rng.Intn(2) == 0 {
					qp.Close() // abrupt: completions unread
					continue
				}
				for i := 0; i < n; i++ {
					if comp := qp.MustReap(); comp.Err != nil {
						errs <- fmt.Errorf("worker %d round %d: completion: %w", w, r, comp.Err)
						return
					}
				}
				qp.Close()
			}
		}(w)
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			admin, err := cli.Admin()
			if err != nil {
				errs <- fmt.Errorf("admin %d: %w", w, err)
				return
			}
			defer admin.Close()
			for r := 0; r < rounds*4; r++ {
				if _, err := admin.Identify(now); err != nil {
					errs <- fmt.Errorf("admin %d round %d: %w", w, r, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	admin, err := cli.Admin()
	if err != nil {
		t.Fatalf("post-stress admin: %v", err)
	}
	defer admin.Close()
	waitQPs(t, admin, now, 0)
}

// TestLoopbackMatchesTCP: the same command sequence over loopback and
// over a real socket produces identical virtual-time completions — the
// transport medium cannot influence simulated time.
func TestLoopbackMatchesTCP(t *testing.T) {
	run := func(cli *fabrics.Client, now vclock.Time) []vclock.Time {
		qp, err := cli.QueuePair(now, 4, hostif.ClassMedium, 1)
		if err != nil {
			t.Fatalf("queue pair: %v", err)
		}
		defer qp.Close()
		var times []vclock.Time
		at := now
		for i := 0; i < 16; i++ {
			cmd := qp.AcquireCommand()
			if i%2 == 0 {
				cmd.Op, cmd.NSID, cmd.LPN, cmd.Data = hostif.OpWrite, 1, int64(i*4), make([]byte, 4*4096)
			} else {
				cmd.Op, cmd.NSID, cmd.LPN, cmd.Pages = hostif.OpRead, 1, int64((i-1)*4), 4
			}
			if err := qp.Push(at, cmd); err != nil {
				t.Fatalf("push %d: %v", i, err)
			}
			comp := qp.MustReap()
			if comp.Err != nil {
				t.Fatalf("completion %d: %v", i, comp.Err)
			}
			times = append(times, comp.Done)
			at = comp.Done
		}
		return times
	}

	srvT, addr, nowT := testRig(t, 1024)
	_ = srvT
	tcpTimes := run(fabrics.Dial(addr), nowT)

	srvL, _, nowL := testRig(t, 1024)
	loopTimes := run(fabrics.Loopback(srvL), nowL)

	if nowT != nowL {
		t.Fatalf("rig attach instants differ: %v vs %v", nowT, nowL)
	}
	for i := range tcpTimes {
		if tcpTimes[i] != loopTimes[i] {
			t.Fatalf("completion %d: tcp %v, loopback %v", i, tcpTimes[i], loopTimes[i])
		}
	}
}
