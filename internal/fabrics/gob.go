package fabrics

import (
	"encoding/gob"

	"repro/internal/ftl/ftlcore"
	"repro/internal/hostif"
	"repro/internal/lightlsm"
	"repro/internal/ocssd"
	"repro/internal/offload"
	"repro/internal/ox"
	"repro/internal/oxblock"
	"repro/internal/oxeleos"
	"repro/internal/zns"
)

// Admin replies carry Result.Admin as a gob-encoded interface value
// (payloadBox), so every concrete payload an admin command can return —
// identify structures and all log pages — must be registered. The data
// path never touches gob; only the control plane pays its cost.
func init() {
	gob.Register(hostif.IdentifyController{})
	gob.Register(hostif.NamespaceIdentity{})
	gob.Register(hostif.UtilizationLog{})
	gob.Register(hostif.ExecutorLog{})
	gob.Register(ox.Stats{})
	gob.Register(ocssd.Stats{})
	gob.Register(ocssd.FaultLog{})
	gob.Register([]ocssd.ChunkInfo(nil))
	gob.Register([]ocssd.ChunkID(nil))
	gob.Register([]zns.ZoneInfo(nil))
	gob.Register(ftlcore.GCStats{})
	gob.Register(oxblock.Stats{})
	gob.Register(oxeleos.Stats{})
	gob.Register(lightlsm.Stats{})
	gob.Register(offload.Stats{})
}
