package fabrics

import "net"

// Loopback returns a client whose connections are in-process pipes
// served directly by s — the fabric with the network removed. Every
// frame still crosses the full encode/validate/decode path, so a
// driver on the loopback exercises the entire wire layer while
// remaining deterministic; the loopback-equivalence test byte-diffs
// its output against in-process queue pairs.
func Loopback(s *Server) *Client {
	return NewClient(LoopbackDial(s))
}

// LoopbackDial returns the loopback's raw dial function, for wrapping
// in interposers (internal/netfault's proxy) before handing it to
// NewClient.
func LoopbackDial(s *Server) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		cli, srv := net.Pipe()
		go s.ServeConn(srv)
		return cli, nil
	}
}
