package fabrics_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"repro/internal/fabrics"
	"repro/internal/hostif"
	"repro/internal/lightlsm"
	"repro/internal/lsm"
	"repro/internal/nand"
	"repro/internal/ocssd"
	"repro/internal/offload"
	"repro/internal/ox"
	"repro/internal/vclock"
)

// lsmRig builds a small controller with a LightLSM environment holding
// one committed single-block table (key "key-7" → "offloaded-value").
// Both transports are built from identical rigs so their virtual
// timings are directly comparable.
func lsmRig(t *testing.T) (*hostif.Host, *lightlsm.Env, lsm.TableHandle, vclock.Time) {
	t.Helper()
	chip := nand.Geometry{
		Planes: 2, BlocksPerPlane: 16, PagesPerBlock: 12,
		SectorsPerPage: 4, SectorSize: 4096, OOBPerPage: 64, Cell: nand.TLC,
	}
	geo := ocssd.Finish(ocssd.Geometry{
		Groups: 2, PUsPerGroup: 2, ChunksPerPU: 16, Chip: chip,
		ChannelMBps: 800, CacheMBps: 3200, CacheMB: 8, MaxOpenPerPU: 64,
	})
	dev, err := ocssd.New(geo, ocssd.Options{Seed: 1, PowerLossProtected: true})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := ox.NewController(ox.DefaultConfig(), dev)
	if err != nil {
		t.Fatal(err)
	}
	env, err := lightlsm.New(ctrl, lightlsm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	host := hostif.NewHost(ctrl, hostif.HostConfig{})

	// One raw SSTable block in the entry format lsm.SearchBlock scans:
	// u16 key length, u32 value length, u64 sequence, key, value.
	key, value := "key-7", "offloaded-value"
	block := make([]byte, env.BlockSize())
	binary.LittleEndian.PutUint16(block[0:], uint16(len(key)))
	binary.LittleEndian.PutUint32(block[2:], uint32(len(value)))
	binary.LittleEndian.PutUint64(block[6:], 1)
	copy(block[14:], key)
	copy(block[14+len(key):], value)

	w, err := env.CreateTable(0)
	if err != nil {
		t.Fatal(err)
	}
	end, err := w.Append(0, block)
	if err != nil {
		t.Fatal(err)
	}
	h, end, err := w.Commit(end)
	if err != nil {
		t.Fatal(err)
	}
	return host, env, h, end
}

// TestOffloadLoopbackMatchesInProcess pins transport transparency for
// the offload path: the same offloaded lookup on identical rigs returns
// the same value at the same virtual time whether it is issued through
// an in-process queue pair or across the fabrics wire over loopback —
// and the offload log page travels the gob admin path intact.
func TestOffloadLoopbackMatchesInProcess(t *testing.T) {
	hostL, envL, hL, nowL := lsmRig(t)
	clientL, err := hostif.AttachLSM(hostL, envL)
	if err != nil {
		t.Fatal(err)
	}
	vL, delL, foundL, endL, err := clientL.OffloadGet(nowL, hL, 0, []byte("key-7"))
	if err != nil {
		t.Fatal(err)
	}

	hostF, envF, hF, nowF := lsmRig(t)
	nsid, err := hostF.Admin().AttachNamespace(0, hostif.NewLSMNamespace(envF))
	if err != nil {
		t.Fatal(err)
	}
	srv := fabrics.NewServer(hostF)
	t.Cleanup(srv.Close)
	cli := fabrics.Loopback(srv)
	envClient, err := cli.OpenLSM(nowF, nsid)
	if err != nil {
		t.Fatal(err)
	}
	defer envClient.Close()
	vF, delF, foundF, endF, err := envClient.OffloadGet(nowF, hF, 0, []byte("key-7"))
	if err != nil {
		t.Fatal(err)
	}

	if !foundL || !foundF || delL || delF || !bytes.Equal(vL, vF) || string(vL) != "offloaded-value" {
		t.Fatalf("results diverge: local (%q, del=%v, found=%v) vs fabric (%q, del=%v, found=%v)",
			vL, delL, foundL, vF, delF, foundF)
	}
	if nowL != nowF || endL != endF {
		t.Fatalf("offload timing is not transport-transparent: local %v→%v, fabric %v→%v",
			nowL, endL, nowF, endF)
	}

	admin, err := cli.Admin()
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	stF, err := admin.OffloadStats(endF, nsid)
	if err != nil {
		t.Fatal(err)
	}
	stL, err := hostL.Admin().OffloadStats(endL, clientL.NSID())
	if err != nil {
		t.Fatal(err)
	}
	if stF != stL {
		t.Fatalf("offload stats diverge across transports:\nlocal  %+v\nfabric %+v", stL, stF)
	}
	if stF.Gets != 1 {
		t.Fatalf("offload stats did not count the get: %+v", stF)
	}
}

// TestOffloadCorruptRequestRejectedOverFabric sends a malformed
// offload request across the wire: the frame layer passes it through
// (the payload is opaque), the namespace rejects it with the offload
// codec's typed complaint, and the session keeps working afterwards.
func TestOffloadCorruptRequestRejectedOverFabric(t *testing.T) {
	host, env, h, now := lsmRig(t)
	nsid, err := host.Admin().AttachNamespace(0, hostif.NewLSMNamespace(env))
	if err != nil {
		t.Fatal(err)
	}
	srv := fabrics.NewServer(host)
	t.Cleanup(srv.Close)
	cli := fabrics.Loopback(srv)
	qp, err := cli.QueuePair(now, 2, hostif.ClassMedium, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer qp.Close()

	cmd := qp.AcquireCommand()
	cmd.Op, cmd.NSID, cmd.Data = hostif.OpOffloadCompact, nsid, []byte{0xDE, 0xAD}
	if err := qp.Push(now, cmd); err != nil {
		t.Fatal(err)
	}
	comp := qp.MustReap()
	if comp.Err == nil {
		t.Fatal("corrupt compact request was accepted")
	}
	var re *fabrics.RemoteError
	if !errors.As(comp.Err, &re) || !strings.Contains(re.Msg, offload.ErrBadFrame.Error()) {
		t.Fatalf("rejection lost the offload codec's complaint: %v", comp.Err)
	}

	cmd = qp.AcquireCommand()
	cmd.Op, cmd.NSID = hostif.OpOffloadGet, nsid
	cmd.Handle, cmd.Length, cmd.LPN = uint64(h.ID), int64(h.Blocks), 0
	cmd.Data = []byte("key-7")
	if err := qp.Push(comp.Done, cmd); err != nil {
		t.Fatal(err)
	}
	comp = qp.MustReap()
	if comp.Err != nil {
		t.Fatalf("session did not survive the rejected request: %v", comp.Err)
	}
	value, del, found, err := offload.DecodeGetResult(comp.Data)
	if err != nil || del || !found || string(value) != "offloaded-value" {
		t.Fatalf("follow-up get = (%q, %v, %v, %v)", value, del, found, err)
	}
}
