package fabrics

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/hostif"
	"repro/internal/nand"
	"repro/internal/ocssd"
	"repro/internal/ox"
	"repro/internal/oxblock"
	"repro/internal/vclock"
)

// resilienceHost builds a small OX-Block host for wire-level tests.
func resilienceHost(t testing.TB) (*hostif.Host, vclock.Time) {
	t.Helper()
	chip := nand.Geometry{
		Planes:         2,
		BlocksPerPlane: 16,
		PagesPerBlock:  12,
		SectorsPerPage: 4,
		SectorSize:     4096,
		OOBPerPage:     64,
		Cell:           nand.TLC,
	}
	geo := ocssd.Finish(ocssd.Geometry{
		Groups:       2,
		PUsPerGroup:  2,
		ChunksPerPU:  16,
		Chip:         chip,
		ChannelMBps:  800,
		CacheMBps:    3200,
		CacheMB:      8,
		MaxOpenPerPU: 64,
	})
	dev, err := ocssd.New(geo, ocssd.Options{Seed: 1, PowerLossProtected: true})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := ox.NewController(ox.DefaultConfig(), dev)
	if err != nil {
		t.Fatal(err)
	}
	d, _, now, err := oxblock.New(ctrl, oxblock.Config{LogicalPages: 512}, 0)
	if err != nil {
		t.Fatal(err)
	}
	host := hostif.NewHost(ctrl, hostif.HostConfig{ChargeHostLink: true})
	if _, err := host.Admin().AttachNamespace(now, hostif.NewBlockNamespace(d)); err != nil {
		t.Fatal(err)
	}
	return host, now
}

// rawConnect hand-writes an I/O connect frame so the test controls the
// advertised keep-alive independently of any client machinery (a
// half-open peer that never heartbeats).
func rawConnect(t *testing.T, conn net.Conn, now vclock.Time, kato time.Duration, token uint64) (qid int, tok uint64) {
	t.Helper()
	var f frameBuf
	f.start(frameConnect)
	f.u8(connKindIO)
	f.u8(uint8(hostif.ClassMedium))
	f.u32(4) // depth
	f.u32(1) // coalesce
	f.i64(int64(now))
	f.u32(uint32(kato / time.Millisecond))
	f.u64(token)
	if _, err := conn.Write(f.finish()); err != nil {
		t.Fatalf("connect write: %v", err)
	}
	var rbuf []byte
	ftype, payload, err := readFrame(conn, &rbuf)
	if err != nil {
		t.Fatalf("handshake read: %v", err)
	}
	if ftype != frameAccept {
		t.Fatalf("handshake frame type %d, want accept", ftype)
	}
	d := decoder{b: payload}
	qid = int(d.u32())
	d.u32() // depth
	tok = d.u64()
	if err := d.done(); err != nil {
		t.Fatalf("accept decode: %v", err)
	}
	return qid, tok
}

// TestKeepAliveExpiryReapsSession pins the server half of the KATO
// contract: a connection that advertises a keep-alive timeout and then
// goes silent is detected, its session reaped (not retained for
// resumption), and a later resume with its token is rejected with
// ErrSessionUnknown.
func TestKeepAliveExpiryReapsSession(t *testing.T) {
	host, now := resilienceHost(t)
	srv := NewServer(host)
	defer srv.Close()

	cli, sconn := net.Pipe()
	go srv.ServeConn(sconn)
	_, token := rawConnect(t, cli, now, 40*time.Millisecond, 0)
	if got := srv.Sessions(); got != 1 {
		t.Fatalf("sessions after connect = %d, want 1", got)
	}

	// Silence. The server read deadline is KATO + KATO/4 = 50ms; the
	// session must be gone, not detached, well before a 5s ceiling.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Sessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("session not reaped after keep-alive expiry (sessions=%d)", srv.Sessions())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cli.Close()

	// Resuming the reaped token is a typed rejection.
	cli2, sconn2 := net.Pipe()
	defer cli2.Close()
	go srv.ServeConn(sconn2)
	var f frameBuf
	f.start(frameConnect)
	f.u8(connKindIO)
	f.u8(uint8(hostif.ClassMedium))
	f.u32(4)
	f.u32(1)
	f.i64(int64(now))
	f.u32(0)
	f.u64(token)
	if _, err := cli2.Write(f.finish()); err != nil {
		t.Fatalf("resume write: %v", err)
	}
	var rbuf []byte
	ftype, payload, err := readFrame(cli2, &rbuf)
	if err != nil {
		t.Fatalf("resume read: %v", err)
	}
	if ftype != frameError {
		t.Fatalf("resume frame type %d, want error", ftype)
	}
	d := decoder{b: payload}
	if code := d.u16(); code != errSessionUnknown {
		t.Fatalf("resume rejection code %d, want %d", code, errSessionUnknown)
	}
}

// TestSessionRetentionReapsDetached pins the retention bound: a
// session whose connection died abruptly (no clean disconnect) is
// retained for resumption only up to SessionRetention.
func TestSessionRetentionReapsDetached(t *testing.T) {
	host, now := resilienceHost(t)
	srv := NewServerWithConfig(host, ServerConfig{SessionRetention: 30 * time.Millisecond})
	defer srv.Close()

	cli, sconn := net.Pipe()
	go srv.ServeConn(sconn)
	rawConnect(t, cli, now, 0, 0)
	if got := srv.Sessions(); got != 1 {
		t.Fatalf("sessions after connect = %d, want 1", got)
	}
	cli.Close() // abrupt: no disconnect frame

	deadline := time.Now().Add(5 * time.Second)
	for srv.Sessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("detached session outlived retention (sessions=%d)", srv.Sessions())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCleanDisconnectDropsSession: a client Close sends the disconnect
// frame, so the server tears the session down immediately instead of
// retaining it.
func TestCleanDisconnectDropsSession(t *testing.T) {
	host, now := resilienceHost(t)
	srv := NewServerWithConfig(host, ServerConfig{SessionRetention: time.Hour})
	defer srv.Close()
	cli := Loopback(srv)

	qp, err := cli.QueuePair(now, 4, hostif.ClassMedium, 1)
	if err != nil {
		t.Fatalf("queue pair: %v", err)
	}
	if got := srv.Sessions(); got != 1 {
		t.Fatalf("sessions = %d, want 1", got)
	}
	qp.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Sessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("session survived a clean disconnect (sessions=%d)", srv.Sessions())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestAdminTimeout pins the satellite fix: an admin request against a
// server that accepts but never replies fails with the typed
// ErrTimeout instead of hanging forever.
func TestAdminTimeout(t *testing.T) {
	// A fake server: completes the handshake, then swallows frames.
	dial := func() (net.Conn, error) {
		cli, srv := net.Pipe()
		go func() {
			var rbuf []byte
			if _, _, err := readFrame(srv, &rbuf); err != nil {
				return
			}
			var f frameBuf
			f.start(frameAccept)
			f.u32(0)
			f.u32(0)
			f.u64(0)
			if _, err := srv.Write(f.finish()); err != nil {
				return
			}
			for {
				if _, _, err := readFrame(srv, &rbuf); err != nil {
					return
				}
			}
		}()
		return cli, nil
	}
	cli := NewClient(dial).WithConfig(Config{AdminTimeout: 50 * time.Millisecond})
	admin, err := cli.Admin()
	if err != nil {
		t.Fatalf("admin connect: %v", err)
	}
	defer admin.Close()
	start := time.Now()
	_, err = admin.Identify(0)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("identify against mute server: %v, want ErrTimeout", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("timeout took %v", waited)
	}
}

// TestErrClassification pins Err's redial-eligibility contract: a
// local Close is terminal (ErrClosed), a server-side connection loss
// is ErrDisconnected, and a goaway is ErrGoaway — the latter two
// RedialEligible, the first not.
func TestErrClassification(t *testing.T) {
	t.Run("local close", func(t *testing.T) {
		host, now := resilienceHost(t)
		srv := NewServer(host)
		defer srv.Close()
		qp, err := Loopback(srv).QueuePair(now, 4, hostif.ClassMedium, 1)
		if err != nil {
			t.Fatal(err)
		}
		qp.Close()
		if err := qp.Err(); !errors.Is(err, ErrClosed) {
			t.Fatalf("Err after Close: %v, want ErrClosed", err)
		}
		if RedialEligible(qp.Err()) {
			t.Fatal("local close classified redial-eligible")
		}
	})
	t.Run("mid-stream disconnect", func(t *testing.T) {
		host, now := resilienceHost(t)
		srv := NewServer(host)
		qp, err := Loopback(srv).QueuePair(now, 4, hostif.ClassMedium, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer qp.Close()
		srv.Close() // hard server death: no goaway
		deadline := time.Now().Add(5 * time.Second)
		for qp.Err() == nil {
			if time.Now().After(deadline) {
				t.Fatal("queue pair never observed the disconnect")
			}
			time.Sleep(2 * time.Millisecond)
		}
		if err := qp.Err(); !errors.Is(err, ErrDisconnected) {
			t.Fatalf("Err after server death: %v, want ErrDisconnected", err)
		}
		if !RedialEligible(qp.Err()) {
			t.Fatal("mid-stream disconnect not redial-eligible")
		}
	})
	t.Run("goaway", func(t *testing.T) {
		host, now := resilienceHost(t)
		srv := NewServer(host)
		defer srv.Close()
		qp, err := Loopback(srv).QueuePair(now, 4, hostif.ClassMedium, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer qp.Close()
		srv.Shutdown()
		deadline := time.Now().Add(5 * time.Second)
		for qp.Err() == nil {
			if time.Now().After(deadline) {
				t.Fatal("queue pair never observed goaway")
			}
			time.Sleep(2 * time.Millisecond)
		}
		if err := qp.Err(); !errors.Is(err, ErrGoaway) {
			t.Fatalf("Err after Shutdown: %v, want ErrGoaway", err)
		}
		if !RedialEligible(qp.Err()) {
			t.Fatal("goaway not redial-eligible")
		}
		if got := srv.Sessions(); got != 0 {
			t.Fatalf("sessions after Shutdown = %d, want 0", got)
		}
	})
}

// TestGoawayDrainLosesNoCompletions: a batch acknowledged before the
// drain is fully delivered, and the drain itself flushes anything the
// server accepted before the goaway frame goes out.
func TestGoawayDrainLosesNoCompletions(t *testing.T) {
	host, now := resilienceHost(t)
	srv := NewServer(host)
	defer srv.Close()
	qp, err := Loopback(srv).QueuePair(now, 8, hostif.ClassMedium, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer qp.Close()

	const n = 8
	payload := make([]byte, 4096)
	for i := 0; i < n; i++ {
		cmd := qp.AcquireCommand()
		cmd.Op, cmd.NSID, cmd.LPN, cmd.Data = hostif.OpWrite, 1, int64(i), payload
		if _, err := qp.Submit(cmd); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if rung := qp.Ring(now); rung != n {
		t.Fatalf("rang %d, want %d", rung, n)
	}
	// Wait until every completion has been pushed and received, then
	// drain the server: nothing may be lost.
	comp, ok := qp.ReapEarliest()
	if !ok || comp.Err != nil {
		t.Fatalf("first completion: ok=%v err=%v", ok, comp.Err)
	}
	srv.Shutdown()
	got := 1
	for {
		comp, ok := qp.Reap()
		if !ok {
			break
		}
		if comp.Err != nil {
			t.Fatalf("completion error: %v", comp.Err)
		}
		got++
	}
	if got != n {
		t.Fatalf("reaped %d completions across the drain, want %d", got, n)
	}
	if err := qp.Err(); !errors.Is(err, ErrGoaway) {
		t.Fatalf("Err after drain: %v, want ErrGoaway", err)
	}
}
