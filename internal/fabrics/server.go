package fabrics

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/hostif"
	"repro/internal/vclock"
)

// Server serves one host-interface controller over a network listener:
// the "interconnect handler" in OX's layering. Each accepted connection
// is one queue pair (I/O connections) or one admin-command channel
// (admin connections); connections are independent and may be serviced
// concurrently, exactly like in-process queue pairs driven by
// concurrent host actors.
type Server struct {
	host  *hostif.Host
	admin *hostif.AdminClient

	// adminMu serializes every use of the shared admin queue client:
	// connection handshakes, teardown and remote admin commands. The
	// in-process AdminClient is a single host actor; the server is the
	// one place many goroutines share it.
	adminMu sync.Mutex

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
}

// NewServer wraps host for serving. The host keeps working in-process:
// fabric queue pairs and local queue pairs coexist under the same
// arbitration.
func NewServer(host *hostif.Host) *Server {
	return &Server{
		host:      host,
		admin:     host.Admin(),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
}

// Serve accepts connections on l until the listener fails or the
// server is closed, handling each connection on its own goroutine.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrClosed
			}
			return err
		}
		go s.ServeConn(conn)
	}
}

// Close stops the server: listeners stop accepting and every live
// connection is closed (in-flight commands still complete; their queue
// pairs are reaped by the connection handlers on the way out).
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

// track registers a live connection for Close; it reports false when
// the server is already closed.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// ServeConn serves a single established connection — the loopback
// transport's entry point — blocking until the peer disconnects. The
// first frame must be a connect handshake; it selects the connection
// kind (admin or I/O queue pair).
func (s *Server) ServeConn(conn net.Conn) {
	if !s.track(conn) {
		conn.Close()
		return
	}
	defer s.untrack(conn)
	defer conn.Close()

	var rbuf []byte
	ftype, payload, err := readFrame(conn, &rbuf)
	if err != nil {
		s.sendError(conn, err)
		return
	}
	if ftype != frameConnect {
		s.sendError(conn, fmt.Errorf("%w: expected connect, got %d", ErrBadFrameType, ftype))
		return
	}
	d := decoder{b: payload}
	kind := d.u8()
	class := hostif.Class(d.u8())
	depth := int(d.u32())
	coalesce := int(d.u32())
	now := vclock.Time(d.i64())
	if err := d.done(); err != nil {
		s.sendError(conn, err)
		return
	}
	switch kind {
	case connKindAdmin:
		s.serveAdmin(conn, &rbuf)
	case connKindIO:
		if class > hostif.ClassLow {
			s.sendError(conn, fmt.Errorf("%w: unknown arbitration class %d", ErrBadPayload, class))
			return
		}
		s.serveIO(conn, &rbuf, now, depth, class, coalesce)
	default:
		s.sendError(conn, fmt.Errorf("%w: unknown connection kind %d", ErrBadPayload, kind))
	}
}

// sendError writes a connection-fatal error frame (best effort: the
// peer may already be gone).
func (s *Server) sendError(conn net.Conn, err error) {
	var f frameBuf
	f.start(frameError)
	f.str(err.Error())
	conn.Write(f.finish())
}

// pendEntry tracks one submitted command's connection-side state until
// its completion is pushed: the client's tag, the payload buffer the
// command data was copied into, and the read buffer for OpTableRead.
type pendEntry struct {
	tag  uint32
	data []byte
	dst  []byte
}

// ioConn is the server half of one fabric queue pair.
type ioConn struct {
	s    *Server
	conn net.Conn
	qp   *hostif.QueuePair

	// wmu guards the write side: completion frames are written from the
	// notify callback, which runs on whichever connection handler drove
	// the drain — possibly another connection's goroutine.
	wmu  sync.Mutex
	wbuf frameBuf

	// pmu guards the pending table and the buffer free list (reader
	// goroutine inserts, notify callback consumes).
	pmu     sync.Mutex
	pend    map[uint64]pendEntry // submission slot → client tag + buffers
	bufFree [][]byte
}

// serveIO runs one I/O queue-pair connection: create the queue pair
// over the admin queue (the handshake is the remote AdminCreateIOQP),
// push completions from the notify callback, and replay each ring
// frame as one doorbell batch. On disconnect the queue pair is drained,
// reaped and deleted so its slots and arbitration state are released.
func (s *Server) serveIO(conn net.Conn, rbuf *[]byte, now vclock.Time, depth int, class hostif.Class, coalesce int) {
	s.adminMu.Lock()
	qp, err := s.admin.CreateIOQueuePair(now, depth, class)
	s.adminMu.Unlock()
	if err != nil {
		s.sendError(conn, err)
		return
	}
	c := &ioConn{
		s:    s,
		conn: conn,
		qp:   qp,
		pend: make(map[uint64]pendEntry),
	}
	defer c.cleanup()
	qp.SetNotify(coalesce, c.onNotify)

	var f frameBuf
	f.start(frameAccept)
	f.u32(uint32(qp.ID()))
	f.u32(uint32(qp.Depth()))
	c.wmu.Lock()
	_, err = conn.Write(f.finish())
	c.wmu.Unlock()
	if err != nil {
		return
	}

	for {
		ftype, payload, err := readFrame(conn, rbuf)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.sendError(conn, err)
			}
			return
		}
		if ftype != frameRing {
			s.sendError(conn, fmt.Errorf("%w: expected ring, got %d", ErrBadFrameType, ftype))
			return
		}
		if err := c.handleRing(payload); err != nil {
			s.sendError(conn, err)
			return
		}
	}
}

// handleRing replays one doorbell batch: decode and submit every
// command, ring once at the batch's doorbell instant, and drain the
// host — completions flow back through the notify callback exactly as
// an in-process driver would see them. Per-command submit rejections
// (queue full under backpressure, bad namespace) are echoed as error
// completions carrying the client's tag; only protocol-level damage is
// connection-fatal.
func (c *ioConn) handleRing(payload []byte) error {
	d := decoder{b: payload}
	now := vclock.Time(d.i64())
	count := int(d.u32())
	if d.err == nil && (count < 0 || count > len(payload)) {
		d.fail()
	}
	type reject struct {
		tag uint32
		op  hostif.Op
		ns  int
		err error
	}
	var rejects []reject
	for i := 0; i < count; i++ {
		cmd := c.qp.AcquireCommand()
		tag, dstLen, err := decodeCommand(&d, cmd)
		if err != nil {
			c.qp.ReleaseCommand(cmd)
			return err
		}
		var pe pendEntry
		pe.tag = tag
		// The frame buffer is reused by the next network read, but the
		// FTL may retain write payloads (the simulated device stores
		// them): copy into a connection-pooled buffer that lives until
		// the completion is pushed.
		if len(cmd.Data) > 0 {
			pe.data = c.getBuf(len(cmd.Data))
			copy(pe.data, cmd.Data)
			cmd.Data = pe.data
		}
		if dstLen > 0 && cmd.Op == hostif.OpTableRead {
			pe.dst = c.getBuf(dstLen)
			cmd.Dst = pe.dst
		}
		slot, err := c.qp.Submit(cmd)
		if err != nil {
			op, ns := cmd.Op, cmd.NSID // ReleaseCommand zeroes the arena command
			c.qp.ReleaseCommand(cmd)
			c.putBufs(pe)
			rejects = append(rejects, reject{tag: tag, op: op, ns: ns, err: err})
			continue
		}
		c.pmu.Lock()
		c.pend[slot] = pe
		c.pmu.Unlock()
	}
	if err := d.done(); err != nil {
		return err
	}
	c.qp.Ring(now)
	c.s.host.Drain()
	if len(rejects) > 0 {
		c.wmu.Lock()
		c.wbuf.start(frameCompletions)
		c.wbuf.u32(uint32(len(rejects)))
		for _, r := range rejects {
			comp := hostif.Completion{
				Op:        r.op,
				NSID:      r.ns,
				Submitted: now,
				Done:      now,
				Result:    hostif.Result{End: now, Err: r.err, Status: hostif.StatusOf(r.err)},
			}
			encodeCompletion(&c.wbuf, r.tag, &comp, nil)
		}
		_, err := c.conn.Write(c.wbuf.finish())
		c.wmu.Unlock()
		if err != nil {
			return nil // read loop will observe the dead connection
		}
	}
	return nil
}

// onNotify is the queue pair's interrupt handler: reap the coalesced
// completions and push them to the client in one frame. It runs on
// whichever goroutine drove the drain (possibly another connection's
// handler), so all connection write state sits behind wmu. Write
// failures are ignored — the connection's read loop notices the dead
// peer and tears the queue pair down.
func (c *ioConn) onNotify(n hostif.Notification) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf.start(frameCompletions)
	countOff := len(c.wbuf.b)
	c.wbuf.u32(0)
	wrote := 0
	for i := 0; i < n.Coalesced; i++ {
		comp, ok := c.qp.Reap()
		if !ok {
			break
		}
		c.pmu.Lock()
		pe, havePend := c.pend[comp.Slot]
		delete(c.pend, comp.Slot)
		c.pmu.Unlock()
		data := comp.Data
		if len(data) == 0 && comp.Op == hostif.OpTableRead && havePend {
			data = pe.dst
		}
		encodeCompletion(&c.wbuf, pe.tag, &comp, data)
		c.putBufs(pe)
		wrote++
	}
	if wrote == 0 {
		return
	}
	binary.LittleEndian.PutUint32(c.wbuf.b[countOff:], uint32(wrote))
	c.conn.Write(c.wbuf.finish())
}

// cleanup tears the queue pair down after a disconnect: detach the
// notify handler, reap whatever completed (in-flight commands finish —
// an abrupt disconnect never corrupts device state), then delete the
// queue pair so its slots, arbitration entry and arena are released.
func (c *ioConn) cleanup() {
	c.qp.SetNotify(1, nil)
	c.s.host.Drain()
	for {
		if _, ok := c.qp.Reap(); !ok {
			break
		}
	}
	c.s.adminMu.Lock()
	c.s.admin.DeleteIOQueuePair(vclock.Time(0), c.qp)
	c.s.adminMu.Unlock()
	c.pmu.Lock()
	c.pend = nil
	c.bufFree = nil
	c.pmu.Unlock()
}

// getBuf pops a pooled buffer of at least n bytes (length n).
func (c *ioConn) getBuf(n int) []byte {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	for i := len(c.bufFree) - 1; i >= 0; i-- {
		if cap(c.bufFree[i]) >= n {
			b := c.bufFree[i][:n]
			c.bufFree = append(c.bufFree[:i], c.bufFree[i+1:]...)
			return b
		}
	}
	return make([]byte, n)
}

// putBufs returns a pending entry's buffers to the connection pool.
func (c *ioConn) putBufs(pe pendEntry) {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if c.pend == nil {
		return // connection torn down; let the buffers go
	}
	if pe.data != nil {
		c.bufFree = append(c.bufFree, pe.data)
	}
	if pe.dst != nil {
		c.bufFree = append(c.bufFree, pe.dst)
	}
}

// payloadBox wraps an admin Result.Admin value for gob: encoding an
// interface requires a concrete field of interface type, with every
// concrete payload registered (gob.go).
type payloadBox struct {
	V any
}

// serveAdmin runs one admin connection: a synchronous request/reply
// loop over the shared admin queue. Only host-memory admin commands
// are remotable — identify and log pages; queue-pair lifecycle rides
// the I/O connection handshake, and namespace attachment needs an
// in-process Namespace value, so both are rejected as unsupported.
func (s *Server) serveAdmin(conn net.Conn, rbuf *[]byte) {
	var f frameBuf
	f.start(frameAccept)
	f.u32(0)
	f.u32(0)
	if _, err := conn.Write(f.finish()); err != nil {
		return
	}
	var pbuf bytes.Buffer
	for {
		ftype, payload, err := readFrame(conn, rbuf)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.sendError(conn, err)
			}
			return
		}
		if ftype != frameAdmin {
			s.sendError(conn, fmt.Errorf("%w: expected admin, got %d", ErrBadFrameType, ftype))
			return
		}
		d := decoder{b: payload}
		var cmd hostif.Command
		cmd.Op = hostif.Op(d.u8())
		cmd.NSID = int(d.u32())
		cmd.Handle = d.u64()
		cmd.Admin.Log = hostif.LogPage(d.u8())
		now := vclock.Time(d.i64())
		if err := d.done(); err != nil {
			s.sendError(conn, err)
			return
		}
		comp, err := s.execRemoteAdmin(now, &cmd)
		f.start(frameAdminReply)
		if err == nil {
			err = comp.Err
		}
		code := codeFor(err)
		msg := ""
		if code == errOther && err != nil {
			msg = err.Error()
		}
		pbuf.Reset()
		if err == nil && comp.Admin != nil {
			if gerr := gob.NewEncoder(&pbuf).Encode(&payloadBox{V: comp.Admin}); gerr != nil {
				code, msg = errOther, "encoding admin payload: "+gerr.Error()
				pbuf.Reset()
			}
		}
		f.u16(code)
		f.str(msg)
		f.i64(int64(comp.Done))
		f.u64(comp.Handle)
		f.i32(int32(comp.Blocks))
		f.bytes(pbuf.Bytes())
		if _, err := conn.Write(f.finish()); err != nil {
			return
		}
	}
}

// execRemoteAdmin issues one remotable admin command through the
// shared admin queue, serialized against handshakes and teardowns.
func (s *Server) execRemoteAdmin(now vclock.Time, cmd *hostif.Command) (hostif.Completion, error) {
	switch cmd.Op {
	case hostif.OpAdminIdentify, hostif.OpAdminGetLogPage:
	default:
		return hostif.Completion{Done: now},
			fmt.Errorf("%w: %v over fabric admin connection", hostif.ErrUnsupported, cmd.Op)
	}
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	aqp := s.admin.Queue()
	ac := aqp.AcquireCommand()
	op, nsid, handle, log := cmd.Op, cmd.NSID, cmd.Handle, cmd.Admin.Log
	ac.Op, ac.NSID, ac.Handle = op, nsid, handle
	ac.Admin.Log = log
	if err := aqp.Push(now, ac); err != nil {
		aqp.ReleaseCommand(ac)
		return hostif.Completion{Done: now}, err
	}
	comp := aqp.MustReap()
	return comp, nil
}
