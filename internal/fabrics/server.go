package fabrics

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/hostif"
	"repro/internal/vclock"
)

// Server-side resilience defaults.
const (
	// DefaultSessionRetention bounds how long a detached session (its
	// client vanished without a clean disconnect) waits for resumption.
	DefaultSessionRetention = 60 * time.Second
	// DefaultDrainGrace bounds how long Shutdown waits for a client to
	// react to goaway before forcing its connection closed.
	DefaultDrainGrace = time.Second
)

// ServerConfig carries the server's liveness and session-retention
// settings. The zero value applies the defaults.
type ServerConfig struct {
	// SessionRetention is how long a detached session is kept for
	// resumption before being reaped. 0 means DefaultSessionRetention;
	// negative reaps detached sessions immediately on the next sweep.
	SessionRetention time.Duration
	// WriteTimeout bounds one frame write toward a client. 0 means
	// DefaultWriteTimeout; negative disables the deadline.
	WriteTimeout time.Duration
	// DrainGrace bounds Shutdown's wait per connection after goaway.
	// 0 means DefaultDrainGrace.
	DrainGrace time.Duration
}

// Server serves one host-interface controller over a network listener:
// the "interconnect handler" in OX's layering. Each accepted connection
// is one queue pair (I/O connections) or one admin-command channel
// (admin connections); connections are independent and may be serviced
// concurrently, exactly like in-process queue pairs driven by
// concurrent host actors.
//
// Every I/O connection is backed by a session keyed by a token issued
// in the accept frame. A connection that dies abruptly detaches from
// its session instead of destroying it: in-flight commands are drained
// into the session's completion cache, and a reconnect presenting the
// token resumes the session — the queue pair is recreated under its
// original ID and replayed commands are deduplicated against the cache
// by sequence number, so no acknowledged write is lost or applied
// twice. Sessions whose keep-alive window lapses, whose client
// disconnects cleanly, or that stay detached past the retention bound
// are torn down for good.
type Server struct {
	host  *hostif.Host
	admin *hostif.AdminClient
	cfg   ServerConfig

	// adminMu serializes every use of the shared admin queue client:
	// connection handshakes, teardown and remote admin commands. The
	// in-process AdminClient is a single host actor; the server is the
	// one place many goroutines share it.
	adminMu sync.Mutex

	mu         sync.Mutex
	listeners  map[net.Listener]struct{}
	conns      map[net.Conn]struct{}
	ioConns    map[*ioConn]struct{}
	sessions   map[uint64]*session
	nextToken  uint64
	reaperStop chan struct{}
	draining   bool
	closed     bool
	wg         sync.WaitGroup
}

// NewServer wraps host for serving with the default config. The host
// keeps working in-process: fabric queue pairs and local queue pairs
// coexist under the same arbitration.
func NewServer(host *hostif.Host) *Server {
	return NewServerWithConfig(host, ServerConfig{})
}

// NewServerWithConfig wraps host for serving with explicit resilience
// settings.
func NewServerWithConfig(host *hostif.Host, cfg ServerConfig) *Server {
	return &Server{
		host:      host,
		admin:     host.Admin(),
		cfg:       cfg,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		ioConns:   make(map[*ioConn]struct{}),
		sessions:  make(map[uint64]*session),
	}
}

func (s *Server) retention() time.Duration {
	if s.cfg.SessionRetention == 0 {
		return DefaultSessionRetention
	}
	return s.cfg.SessionRetention
}

func (s *Server) writeTimeout() time.Duration {
	return resolveTimeout(s.cfg.WriteTimeout, DefaultWriteTimeout)
}

// Serve accepts connections on l until the listener fails or the
// server is closed or drained, handling each connection on its own
// goroutine.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return ErrClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			stopped := s.closed || s.draining
			s.mu.Unlock()
			if stopped {
				return ErrClosed
			}
			return err
		}
		go s.ServeConn(conn)
	}
}

// Close stops the server hard: listeners stop accepting and every live
// connection is closed (in-flight commands still complete; their queue
// pairs are reaped by the connection handlers on the way out). All
// sessions are dropped — there is nothing left to resume into.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.dropAllSessions()
}

// Shutdown drains the server gracefully: stop accepting, flush every
// I/O connection's in-flight completions, announce goaway, and wait
// for the connection handlers to exit. Clients treat goaway as a clean
// redial trigger; since this server is going away, their redials fail
// and the pairs terminate with every pushed completion delivered.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	ls := make([]net.Listener, 0, len(s.listeners))
	for l := range s.listeners {
		ls = append(ls, l)
	}
	ios := make([]*ioConn, 0, len(s.ioConns))
	for c := range s.ioConns {
		ios = append(ios, c)
	}
	others := make([]net.Conn, 0, len(s.conns))
	for conn := range s.conns {
		owned := false
		for _, c := range ios {
			if c.conn == conn {
				owned = true
				break
			}
		}
		if !owned {
			others = append(others, conn)
		}
	}
	s.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	for _, c := range ios {
		c.goaway()
	}
	for _, conn := range others {
		conn.Close()
	}
	s.wg.Wait()
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.dropAllSessions()
}

// Sessions reports the number of live (attached or resumable) sessions
// — the observable for keep-alive expiry and retention tests.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// track registers a live connection for Close; it reports false when
// the server is already closed or draining.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.draining {
		return false
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.wg.Done()
}

// ServeConn serves a single established connection — the loopback
// transport's entry point — blocking until the peer disconnects. The
// first frame must be a connect handshake; it selects the connection
// kind (admin or I/O queue pair) and, for I/O, carries the keep-alive
// timeout and an optional session token to resume.
func (s *Server) ServeConn(conn net.Conn) {
	if !s.track(conn) {
		conn.Close()
		return
	}
	defer s.untrack(conn)
	defer conn.Close()

	var rbuf []byte
	ftype, payload, err := readFrame(conn, &rbuf)
	if err != nil {
		s.sendError(conn, err)
		return
	}
	if ftype != frameConnect {
		s.sendError(conn, fmt.Errorf("%w: expected connect, got %d", ErrBadFrameType, ftype))
		return
	}
	d := decoder{b: payload}
	kind := d.u8()
	class := hostif.Class(d.u8())
	depth := int(d.u32())
	coalesce := int(d.u32())
	now := vclock.Time(d.i64())
	kato := time.Duration(d.u32()) * time.Millisecond
	token := d.u64()
	if err := d.done(); err != nil {
		s.sendError(conn, err)
		return
	}
	switch kind {
	case connKindAdmin:
		s.serveAdmin(conn, &rbuf)
	case connKindIO:
		if class > hostif.ClassLow {
			s.sendError(conn, fmt.Errorf("%w: unknown arbitration class %d", ErrBadPayload, class))
			return
		}
		s.serveIO(conn, &rbuf, now, depth, class, coalesce, kato, token)
	default:
		s.sendError(conn, fmt.Errorf("%w: unknown connection kind %d", ErrBadPayload, kind))
	}
}

// sendError writes a connection-fatal error frame (best effort: the
// peer may already be gone).
func (s *Server) sendError(conn net.Conn, err error) {
	var f frameBuf
	f.start(frameError)
	f.u16(codeFor(err))
	f.str(err.Error())
	if wt := s.writeTimeout(); wt > 0 {
		conn.SetWriteDeadline(time.Now().Add(wt))
	}
	conn.Write(f.finish())
}

// savedComp is one cached completion in a session's replay table: the
// completion as pushed (original virtual instants) plus a
// session-owned copy of its payload.
type savedComp struct {
	comp hostif.Completion
	data []byte
}

// session is the durable half of one fabric queue pair: everything a
// reconnect needs to resume where the lost connection left off. The
// completion cache is bounded: the client's depth gates how many
// sequence numbers can be unacknowledged at once, and each ring
// frame's cumulative ack prunes everything at or below it.
type session struct {
	token    uint64
	qid      int
	depth    int
	class    hostif.Class
	coalesce int
	kato     time.Duration

	mu         sync.Mutex
	cond       *sync.Cond
	owner      *ioConn // nil while detached
	claimed    bool    // reserved by a resuming connection
	claimers   int     // connections waiting to claim
	gone       bool    // torn down; resumes are rejected
	detachedAt time.Time

	acked   uint64 // highest client-acknowledged seq (cache pruned below)
	maxSeen uint64 // highest seq ever submitted
	cache   map[uint64]savedComp
	bufFree [][]byte
}

func newSessionState(token uint64, qid, depth int, class hostif.Class, coalesce int, kato time.Duration) *session {
	sess := &session{
		token:    token,
		qid:      qid,
		depth:    depth,
		class:    class,
		coalesce: coalesce,
		kato:     kato,
		cache:    make(map[uint64]savedComp),
	}
	sess.cond = sync.NewCond(&sess.mu)
	return sess
}

// cacheCap bounds the replay table. Unacked completions are gated by
// the client's queue depth; the slack absorbs ack-carrying frames lost
// to an outage. Exceeding it means the peer is not acking at all —
// connection-fatal.
func (sess *session) cacheCap() int { return 4*sess.depth + 64 }

// save records a completed command in the replay table, copying its
// payload into session-owned storage. It reports false on overflow.
func (sess *session) save(seq uint64, comp *hostif.Completion, data []byte) bool {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.gone {
		return true
	}
	if len(sess.cache) >= sess.cacheCap() {
		return false
	}
	sc := savedComp{comp: *comp}
	sc.comp.Data = nil
	if len(data) > 0 {
		sc.data = sess.getBufLocked(len(data))
		copy(sc.data, data)
	}
	sess.cache[seq] = sc
	return true
}

// prune drops every cached completion at or below the client's
// cumulative ack.
func (sess *session) prune(ack uint64) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if ack > sess.acked {
		sess.acked = ack
	}
	for seq, sc := range sess.cache {
		if seq <= ack {
			if sc.data != nil {
				sess.bufFree = append(sess.bufFree, sc.data)
			}
			delete(sess.cache, seq)
		}
	}
}

// Sequence-number classification for one ring entry.
const (
	seqFresh = iota // never seen: execute
	seqDup          // executed, completion cached: re-push, don't execute
	seqStale        // acked or otherwise impossible: protocol violation
)

// classify dedups one submitted sequence number against the session
// history, advancing maxSeen for fresh ones.
func (sess *session) classify(seq uint64) int {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if seq <= sess.acked {
		return seqStale
	}
	if _, ok := sess.cache[seq]; ok {
		return seqDup
	}
	if seq <= sess.maxSeen {
		return seqStale
	}
	sess.maxSeen = seq
	return seqFresh
}

// cached returns the replay-table entry for a deduplicated seq.
func (sess *session) cached(seq uint64) (savedComp, bool) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sc, ok := sess.cache[seq]
	return sc, ok
}

// getBufLocked pops a session-pooled buffer. Caller holds sess.mu.
func (sess *session) getBufLocked(n int) []byte {
	for i := len(sess.bufFree) - 1; i >= 0; i-- {
		if cap(sess.bufFree[i]) >= n {
			b := sess.bufFree[i][:n]
			sess.bufFree = append(sess.bufFree[:i], sess.bufFree[i+1:]...)
			return b
		}
	}
	return make([]byte, n)
}

// attach binds a connection as the session owner.
func (sess *session) attach(c *ioConn) {
	sess.mu.Lock()
	sess.owner = c
	sess.claimed = false
	sess.mu.Unlock()
}

// detachLocked marks the session resumable. Caller holds sess.mu.
func (sess *session) detachLocked() {
	sess.owner = nil
	sess.detachedAt = time.Now()
	sess.cond.Broadcast()
}

// newSession mints a session for a fresh connection; nil when the
// server is draining or closed.
func (s *Server) newSession(qid, depth int, class hostif.Class, coalesce int, kato time.Duration) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.draining {
		return nil
	}
	s.nextToken++
	sess := newSessionState(s.nextToken, qid, depth, class, coalesce, kato)
	s.sessions[sess.token] = sess
	if s.reaperStop == nil {
		s.reaperStop = make(chan struct{})
		go s.reapSessions(s.reaperStop)
	}
	return sess
}

// claimSession reserves a detached session for resumption, kicking a
// stale owner (a half-open previous connection the server has not yet
// noticed is dead) and waiting for its detach to finish so every
// in-flight command has been drained into the replay cache.
func (s *Server) claimSession(token uint64) (*session, error) {
	s.mu.Lock()
	sess := s.sessions[token]
	s.mu.Unlock()
	if sess == nil {
		return nil, fmt.Errorf("%w: token %#x", ErrSessionUnknown, token)
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	for {
		if sess.gone {
			return nil, fmt.Errorf("%w: token %#x expired", ErrSessionUnknown, token)
		}
		if sess.owner == nil && !sess.claimed {
			sess.claimed = true
			return sess, nil
		}
		if sess.owner != nil {
			sess.owner.conn.Close()
		}
		sess.claimers++
		sess.cond.Wait()
		sess.claimers--
	}
}

// dropSession tears a session down for good.
func (s *Server) dropSession(sess *session) {
	if sess == nil {
		return
	}
	sess.mu.Lock()
	sess.gone = true
	sess.owner = nil
	sess.cond.Broadcast()
	sess.mu.Unlock()
	s.mu.Lock()
	delete(s.sessions, sess.token)
	s.mu.Unlock()
}

func (s *Server) dropAllSessions() {
	s.mu.Lock()
	all := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		all = append(all, sess)
	}
	if s.reaperStop != nil {
		close(s.reaperStop)
		s.reaperStop = nil
	}
	s.mu.Unlock()
	for _, sess := range all {
		s.dropSession(sess)
	}
}

// reapSessions sweeps detached sessions past the retention bound.
func (s *Server) reapSessions(stop chan struct{}) {
	period := s.retention() / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	if period > time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		s.mu.Lock()
		candidates := make([]*session, 0, len(s.sessions))
		for _, sess := range s.sessions {
			candidates = append(candidates, sess)
		}
		s.mu.Unlock()
		for _, sess := range candidates {
			sess.mu.Lock()
			expired := sess.owner == nil && !sess.claimed && sess.claimers == 0 &&
				!sess.gone && time.Since(sess.detachedAt) > s.retention()
			if expired {
				sess.gone = true
				sess.cond.Broadcast()
			}
			sess.mu.Unlock()
			if expired {
				s.mu.Lock()
				delete(s.sessions, sess.token)
				s.mu.Unlock()
			}
		}
	}
}

// pendEntry tracks one submitted command's connection-side state until
// its completion is pushed: the client's sequence number, the payload
// buffer the command data was copied into, and the read buffer for
// OpTableRead.
type pendEntry struct {
	seq  uint64
	data []byte
	dst  []byte
}

// ioConn is the server half of one fabric queue-pair connection (one
// incarnation of a session).
type ioConn struct {
	s    *Server
	conn net.Conn
	qp   *hostif.QueuePair
	sess *session

	// ringMu serializes ring processing against goaway: a drain never
	// interleaves with a doorbell batch, so every accepted command's
	// completion is pushed before the goaway frame.
	ringMu sync.Mutex

	// wmu guards the write side: completion frames are written from the
	// notify callback, which runs on whichever connection handler drove
	// the drain — possibly another connection's goroutine.
	wmu  sync.Mutex
	wbuf frameBuf

	// pmu guards the pending table and the buffer free list (reader
	// goroutine inserts, notify callback consumes).
	pmu     sync.Mutex
	pend    map[uint64]pendEntry // submission slot → seq + buffers
	bufFree [][]byte
}

// Connection-exit modes: how serveIO's teardown treats the session.
const (
	exitDetach = iota // connection lost: drain into cache, keep session
	exitClean         // client disconnect frame or KA expiry: drop session
)

// serveIO runs one I/O queue-pair connection. A fresh connect (token
// 0) creates the queue pair over the admin queue and mints a session;
// a resume claims the retained session and recreates the queue pair
// under its original ID, so arbitration tie-breaks are unchanged.
// Completions are pushed from the notify callback; each ring frame
// replays as doorbell batches grouped by virtual instant and is
// deduplicated against the session's replay cache.
func (s *Server) serveIO(conn net.Conn, rbuf *[]byte, now vclock.Time, depth int, class hostif.Class, coalesce int, kato time.Duration, token uint64) {
	var sess *session
	var qp *hostif.QueuePair
	var err error
	if token == 0 {
		s.adminMu.Lock()
		qp, err = s.admin.CreateIOQueuePair(now, depth, class)
		s.adminMu.Unlock()
		if err != nil {
			s.sendError(conn, err)
			return
		}
		sess = s.newSession(qp.ID(), qp.Depth(), class, coalesce, kato)
		if sess == nil {
			s.adminMu.Lock()
			s.admin.DeleteIOQueuePair(now, qp)
			s.adminMu.Unlock()
			s.sendError(conn, fmt.Errorf("%w: server draining", ErrClosed))
			return
		}
	} else {
		sess, err = s.claimSession(token)
		if err != nil {
			s.sendError(conn, err)
			return
		}
		s.adminMu.Lock()
		qp, err = s.admin.RecreateIOQueuePair(now, sess.qid, sess.depth, sess.class)
		s.adminMu.Unlock()
		if err != nil {
			// The session's queue pair cannot be resurrected; the
			// session is unusable.
			s.dropSession(sess)
			s.sendError(conn, err)
			return
		}
		coalesce = sess.coalesce
	}
	c := &ioConn{
		s:    s,
		conn: conn,
		qp:   qp,
		sess: sess,
		pend: make(map[uint64]pendEntry),
	}
	sess.attach(c)
	s.mu.Lock()
	if s.draining || s.closed {
		// Shutdown's goaway snapshot may already be done: refuse the
		// connection rather than leave it outside the drain.
		s.mu.Unlock()
		s.adminMu.Lock()
		s.admin.DeleteIOQueuePair(now, qp)
		s.adminMu.Unlock()
		s.dropSession(sess)
		s.sendError(conn, fmt.Errorf("%w: server draining", ErrClosed))
		return
	}
	s.ioConns[c] = struct{}{}
	s.mu.Unlock()
	exit := exitDetach
	defer func() {
		s.mu.Lock()
		delete(s.ioConns, c)
		draining := s.draining
		s.mu.Unlock()
		c.finish(exit, draining)
	}()
	qp.SetNotify(coalesce, c.onNotify)

	var f frameBuf
	f.start(frameAccept)
	f.u32(uint32(qp.ID()))
	f.u32(uint32(qp.Depth()))
	f.u64(sess.token)
	c.wmu.Lock()
	_, err = conn.Write(f.finish())
	c.wmu.Unlock()
	if err != nil {
		return
	}

	for {
		// The keep-alive contract: the client heartbeats at KATO/3, so
		// KATO plus slack of silence means the peer is gone — reap the
		// session rather than hold its queue pair hostage.
		if sess.kato > 0 {
			conn.SetReadDeadline(time.Now().Add(sess.kato + sess.kato/4))
		}
		ftype, payload, err := readFrame(conn, rbuf)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				exit = exitClean // KA expiry: the session dies with the silence
				return
			}
			if err != io.EOF && !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrClosedPipe) && !errors.Is(err, ErrTruncatedFrame) {
				s.sendError(conn, err)
				exit = exitClean
			}
			return
		}
		switch ftype {
		case frameRing:
			c.ringMu.Lock()
			err := c.handleRing(payload)
			c.ringMu.Unlock()
			if err != nil {
				s.sendError(conn, err)
				exit = exitClean
				return
			}
		case frameKeepAlive:
			// Echo so an idle client's read deadline is refreshed too.
			c.wmu.Lock()
			c.wbuf.start(frameKeepAlive)
			c.writeLocked(c.wbuf.finish())
			c.wmu.Unlock()
		case frameDisconnect:
			exit = exitClean
			return
		default:
			s.sendError(conn, fmt.Errorf("%w: %d on I/O connection", ErrBadFrameType, ftype))
			exit = exitClean
			return
		}
	}
}

// writeLocked writes one frame under the configured write deadline.
// Caller holds wmu. Failures are ignored by callers — the read loop
// observes the dead connection.
func (c *ioConn) writeLocked(frame []byte) error {
	if wt := c.s.writeTimeout(); wt > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(wt))
		defer c.conn.SetWriteDeadline(time.Time{})
	}
	_, err := c.conn.Write(frame)
	return err
}

// goaway flushes in-flight completions and announces a graceful drain.
// ringMu guarantees no doorbell batch is mid-flight: everything
// submitted has completed and been pushed (the notify callback writes
// under wmu before goaway takes it), so the goaway frame is the last
// thing the client reads.
func (c *ioConn) goaway() {
	c.ringMu.Lock()
	defer c.ringMu.Unlock()
	c.s.host.Drain()
	var f frameBuf
	f.start(frameGoaway)
	c.wmu.Lock()
	c.writeLocked(f.finish())
	c.wmu.Unlock()
	grace := c.s.cfg.DrainGrace
	if grace <= 0 {
		grace = DefaultDrainGrace
	}
	// Bound the handler's exit: the client closes on goaway; if it
	// never does, the read deadline forces the teardown.
	c.conn.SetReadDeadline(time.Now().Add(grace))
}

// handleRing replays one doorbell batch: decode every command, dedup
// its sequence number against the session history, submit the fresh
// ones, and ring once per distinct doorbell instant (a live batch has
// exactly one; a resume replay preserves each command's original
// instant, so re-executed commands land at the virtual times they
// originally rang). Completions flow back through the notify callback
// exactly as an in-process driver would see them. Per-command submit
// rejections (queue full under backpressure, bad namespace) are echoed
// as error completions carrying the client's seq; deduplicated seqs
// are re-pushed from the replay cache; only protocol-level damage is
// connection-fatal.
func (c *ioConn) handleRing(payload []byte) error {
	d := decoder{b: payload}
	ack := d.u64()
	count := int(d.u32())
	if d.err == nil && (count < 0 || count > len(payload)) {
		d.fail()
	}
	if d.err == nil {
		c.sess.prune(ack)
	}
	type reject struct {
		seq uint64
		at  vclock.Time
		op  hostif.Op
		ns  int
		err error
	}
	var rejects []reject
	var dedup []uint64
	ringing := false
	var ringAt vclock.Time
	flush := func() {
		if ringing {
			c.qp.Ring(ringAt)
			c.s.host.Drain()
			ringing = false
		}
	}
	for i := 0; i < count; i++ {
		cmd := c.qp.AcquireCommand()
		seq, at, dstLen, err := decodeCommand(&d, cmd)
		if err != nil {
			c.qp.ReleaseCommand(cmd)
			return err
		}
		switch c.sess.classify(seq) {
		case seqDup:
			c.qp.ReleaseCommand(cmd)
			dedup = append(dedup, seq)
			continue
		case seqStale:
			c.qp.ReleaseCommand(cmd)
			return fmt.Errorf("%w: seq %d replayed below the session ack", ErrBadPayload, seq)
		}
		if ringing && at != ringAt {
			flush()
		}
		var pe pendEntry
		pe.seq = seq
		// The frame buffer is reused by the next network read, but the
		// FTL may retain write payloads (the simulated device stores
		// them): copy into a connection-pooled buffer that lives until
		// the completion is pushed.
		if len(cmd.Data) > 0 {
			pe.data = c.getBuf(len(cmd.Data))
			copy(pe.data, cmd.Data)
			cmd.Data = pe.data
		}
		if dstLen > 0 && cmd.Op == hostif.OpTableRead {
			pe.dst = c.getBuf(dstLen)
			cmd.Dst = pe.dst
		}
		slot, err := c.qp.Submit(cmd)
		if err != nil {
			op, ns := cmd.Op, cmd.NSID // ReleaseCommand zeroes the arena command
			c.qp.ReleaseCommand(cmd)
			c.putBufs(pe)
			rejects = append(rejects, reject{seq: seq, at: at, op: op, ns: ns, err: err})
			continue
		}
		c.pmu.Lock()
		c.pend[slot] = pe
		c.pmu.Unlock()
		ringing = true
		ringAt = at
	}
	if err := d.done(); err != nil {
		return err
	}
	flush()
	if len(dedup)+len(rejects) > 0 {
		c.wmu.Lock()
		c.wbuf.start(frameCompletions)
		c.wbuf.u32(uint32(len(dedup) + len(rejects)))
		for _, seq := range dedup {
			sc, ok := c.sess.cached(seq)
			if !ok {
				// Pruned between classify and here by this frame's own
				// ack — impossible, since dedup seqs are above it.
				c.wmu.Unlock()
				return fmt.Errorf("%w: seq %d vanished from replay cache", ErrBadPayload, seq)
			}
			encodeCompletion(&c.wbuf, seq, &sc.comp, sc.data)
		}
		for _, r := range rejects {
			comp := hostif.Completion{
				Op:        r.op,
				NSID:      r.ns,
				Submitted: r.at,
				Done:      r.at,
				Result:    hostif.Result{End: r.at, Err: r.err, Status: hostif.StatusOf(r.err)},
			}
			encodeCompletion(&c.wbuf, r.seq, &comp, nil)
		}
		err := c.writeLocked(c.wbuf.finish())
		c.wmu.Unlock()
		if err != nil {
			return nil // read loop will observe the dead connection
		}
	}
	return nil
}

// onNotify is the queue pair's interrupt handler: reap the coalesced
// completions, record each in the session's replay cache, and push
// them to the client in one frame. It runs on whichever goroutine
// drove the drain (possibly another connection's handler), so all
// connection write state sits behind wmu. Write failures are ignored —
// the cached completions survive for the session's next incarnation,
// and the connection's read loop notices the dead peer.
func (c *ioConn) onNotify(n hostif.Notification) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf.start(frameCompletions)
	countOff := len(c.wbuf.b)
	c.wbuf.u32(0)
	wrote := 0
	overflow := false
	for i := 0; i < n.Coalesced; i++ {
		comp, ok := c.qp.Reap()
		if !ok {
			break
		}
		c.pmu.Lock()
		pe, havePend := c.pend[comp.Slot]
		delete(c.pend, comp.Slot)
		c.pmu.Unlock()
		data := comp.Data
		if len(data) == 0 && comp.Op == hostif.OpTableRead && havePend {
			data = pe.dst
		}
		if !c.sess.save(pe.seq, &comp, data) {
			overflow = true
		}
		encodeCompletion(&c.wbuf, pe.seq, &comp, data)
		c.putBufs(pe)
		wrote++
	}
	if overflow {
		// The peer is not acking: the replay table cannot grow safely.
		// Kill both the connection and the session.
		c.s.dropSession(c.sess)
		c.conn.Close()
		return
	}
	if wrote == 0 {
		return
	}
	binary.LittleEndian.PutUint32(c.wbuf.b[countOff:], uint32(wrote))
	c.writeLocked(c.wbuf.finish())
}

// finish tears the connection's queue pair down after a disconnect:
// detach the notify handler, reap whatever completed (in-flight
// commands finish — an abrupt disconnect never corrupts device state)
// into the session's replay cache, then delete the queue pair so its
// slots, arbitration entry and arena are released. The session itself
// survives a detach for later resumption; a clean exit (disconnect
// frame, keep-alive expiry, protocol violation, server drain) drops
// it.
func (c *ioConn) finish(exit int, draining bool) {
	c.qp.SetNotify(1, nil)
	c.s.host.Drain()
	for {
		comp, ok := c.qp.Reap()
		if !ok {
			break
		}
		c.pmu.Lock()
		pe, havePend := c.pend[comp.Slot]
		delete(c.pend, comp.Slot)
		c.pmu.Unlock()
		if havePend {
			data := comp.Data
			if len(data) == 0 && comp.Op == hostif.OpTableRead {
				data = pe.dst
			}
			c.sess.save(pe.seq, &comp, data)
		}
		c.putBufs(pe)
	}
	c.s.adminMu.Lock()
	c.s.admin.DeleteIOQueuePair(vclock.Time(0), c.qp)
	c.s.adminMu.Unlock()
	c.pmu.Lock()
	c.pend = nil
	c.bufFree = nil
	c.pmu.Unlock()
	if exit == exitDetach && !draining {
		c.sess.mu.Lock()
		c.sess.detachLocked()
		c.sess.mu.Unlock()
	} else {
		c.s.dropSession(c.sess)
	}
}

// getBuf pops a pooled buffer of at least n bytes (length n).
func (c *ioConn) getBuf(n int) []byte {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	for i := len(c.bufFree) - 1; i >= 0; i-- {
		if cap(c.bufFree[i]) >= n {
			b := c.bufFree[i][:n]
			c.bufFree = append(c.bufFree[:i], c.bufFree[i+1:]...)
			return b
		}
	}
	return make([]byte, n)
}

// putBufs returns a pending entry's buffers to the connection pool.
func (c *ioConn) putBufs(pe pendEntry) {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if c.pend == nil {
		return // connection torn down; let the buffers go
	}
	if pe.data != nil {
		c.bufFree = append(c.bufFree, pe.data)
	}
	if pe.dst != nil {
		c.bufFree = append(c.bufFree, pe.dst)
	}
}

// payloadBox wraps an admin Result.Admin value for gob: encoding an
// interface requires a concrete field of interface type, with every
// concrete payload registered (gob.go).
type payloadBox struct {
	V any
}

// serveAdmin runs one admin connection: a synchronous request/reply
// loop over the shared admin queue. Only host-memory admin commands
// are remotable — identify and log pages; queue-pair lifecycle rides
// the I/O connection handshake, and namespace attachment needs an
// in-process Namespace value, so both are rejected as unsupported.
func (s *Server) serveAdmin(conn net.Conn, rbuf *[]byte) {
	var f frameBuf
	f.start(frameAccept)
	f.u32(0)
	f.u32(0)
	f.u64(0)
	if _, err := conn.Write(f.finish()); err != nil {
		return
	}
	var pbuf bytes.Buffer
	for {
		ftype, payload, err := readFrame(conn, rbuf)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrClosedPipe) {
				s.sendError(conn, err)
			}
			return
		}
		switch ftype {
		case frameAdmin:
		case frameDisconnect:
			return
		default:
			s.sendError(conn, fmt.Errorf("%w: expected admin, got %d", ErrBadFrameType, ftype))
			return
		}
		d := decoder{b: payload}
		var cmd hostif.Command
		cmd.Op = hostif.Op(d.u8())
		cmd.NSID = int(d.u32())
		cmd.Handle = d.u64()
		cmd.Admin.Log = hostif.LogPage(d.u8())
		now := vclock.Time(d.i64())
		if err := d.done(); err != nil {
			s.sendError(conn, err)
			return
		}
		comp, err := s.execRemoteAdmin(now, &cmd)
		f.start(frameAdminReply)
		if err == nil {
			err = comp.Err
		}
		code := codeFor(err)
		msg := ""
		if code == errOther && err != nil {
			msg = err.Error()
		}
		pbuf.Reset()
		if err == nil && comp.Admin != nil {
			if gerr := gob.NewEncoder(&pbuf).Encode(&payloadBox{V: comp.Admin}); gerr != nil {
				code, msg = errOther, "encoding admin payload: "+gerr.Error()
				pbuf.Reset()
			}
		}
		f.u16(code)
		f.str(msg)
		f.i64(int64(comp.Done))
		f.u64(comp.Handle)
		f.i32(int32(comp.Blocks))
		f.bytes(pbuf.Bytes())
		if wt := s.writeTimeout(); wt > 0 {
			conn.SetWriteDeadline(time.Now().Add(wt))
		}
		if _, err := conn.Write(f.finish()); err != nil {
			return
		}
	}
}

// execRemoteAdmin issues one remotable admin command through the
// shared admin queue, serialized against handshakes and teardowns.
func (s *Server) execRemoteAdmin(now vclock.Time, cmd *hostif.Command) (hostif.Completion, error) {
	switch cmd.Op {
	case hostif.OpAdminIdentify, hostif.OpAdminGetLogPage:
	default:
		return hostif.Completion{Done: now},
			fmt.Errorf("%w: %v over fabric admin connection", hostif.ErrUnsupported, cmd.Op)
	}
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	aqp := s.admin.Queue()
	ac := aqp.AcquireCommand()
	op, nsid, handle, log := cmd.Op, cmd.NSID, cmd.Handle, cmd.Admin.Log
	ac.Op, ac.NSID, ac.Handle = op, nsid, handle
	ac.Admin.Log = log
	if err := aqp.Push(now, ac); err != nil {
		aqp.ReleaseCommand(ac)
		return hostif.Completion{Done: now}, err
	}
	comp := aqp.MustReap()
	return comp, nil
}
