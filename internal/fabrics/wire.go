package fabrics

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/hostif"
	"repro/internal/vclock"
)

// The wire format. Every message is one frame:
//
//	offset  size  field
//	0       2     magic 0x4F58 ("OX")
//	2       1     wire version (wireVersion)
//	3       1     frame type
//	4       4     payload length, little-endian
//	8       4     CRC-32 (IEEE) of the payload, little-endian
//	12      n     payload
//
// The payload layout depends on the frame type; integers are
// little-endian and fixed-width (the command set is small and the
// frames are dominated by data payloads, so varints buy nothing).
// Frames are validated before interpretation: magic, version, type and
// length sanity first, CRC second, payload decode last — each failure
// mode has its own typed error so transport code and tests can
// discriminate exactly like the WAL's torn-tail probe.
//
// Version 2 adds the resilience machinery: connect carries a
// keep-alive timeout and a session token, ring entries carry a
// session-scoped sequence number and their own doorbell instant (so a
// replayed batch re-executes at its original virtual time), the ring
// header carries a cumulative acknowledgement that prunes the server's
// replay cache, and three control frames (keep-alive, goaway,
// disconnect) distinguish liveness probes, graceful drain and clean
// close from a mid-stream disconnect.

const (
	wireVersion = 2
	headerBytes = 12
	// maxFrameBytes caps a frame's declared payload: large enough for
	// an 8 MB LSS buffer flush batch, small enough that a corrupt
	// length field cannot balloon the receiver.
	maxFrameBytes = 64 << 20
)

var wireMagic = [2]byte{'O', 'X'}

// Frame types.
const (
	// frameConnect opens a connection: kind, class, depth, coalesce,
	// instant, keep-alive timeout, session token (0 = new session).
	frameConnect = iota + 1
	// frameAccept answers a connect with the queue-pair ID, depth and
	// the session token the client resumes with after a disconnect.
	frameAccept
	// frameRing carries one doorbell batch: a cumulative completion
	// acknowledgement plus command entries, each with its sequence
	// number and doorbell instant.
	frameRing
	// frameCompletions carries completion entries (server push).
	frameCompletions
	// frameAdmin carries one admin request (admin connections only).
	frameAdmin
	// frameAdminReply answers an admin request (gob payload).
	frameAdminReply
	// frameError reports a connection-fatal typed error.
	frameError
	// frameKeepAlive is the NVMe-style liveness heartbeat: the client
	// sends it at a fraction of its keep-alive timeout, the server
	// echoes it. Empty payload.
	frameKeepAlive
	// frameGoaway announces a graceful server drain: every accepted
	// ring's completions have been flushed, nothing further will be
	// served. Clients treat it as a clean redial trigger. Empty payload.
	frameGoaway
	// frameDisconnect is a clean client close: the server tears the
	// session down immediately instead of retaining it for resumption.
	// Empty payload.
	frameDisconnect
	frameTypeMax = frameDisconnect
)

// FrameHeaderSize is the fixed frame-header length in bytes — exported
// for frame-boundary-aware network middleware (internal/netfault).
const FrameHeaderSize = headerBytes

// FrameInfo parses a frame header without touching the payload: the
// declared payload length and whether the frame carries command or
// completion traffic (ring, completions, admin request/reply — the
// frames a deterministic fault schedule counts; handshake and
// keep-alive frames pass uncounted). It validates only magic and
// length sanity; CRC and payload interpretation stay with the
// endpoints.
func FrameInfo(hdr []byte) (payloadLen int, data bool, err error) {
	if len(hdr) < headerBytes {
		return 0, false, fmt.Errorf("%w: %d-byte header", ErrTruncatedFrame, len(hdr))
	}
	if hdr[0] != wireMagic[0] || hdr[1] != wireMagic[1] {
		return 0, false, fmt.Errorf("%w: %02x%02x", ErrBadMagic, hdr[0], hdr[1])
	}
	n := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxFrameBytes {
		return 0, false, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	switch hdr[3] {
	case frameRing, frameCompletions, frameAdmin, frameAdminReply:
		return int(n), true, nil
	}
	return int(n), false, nil
}

// Connection kinds (frameConnect).
const (
	connKindAdmin = 0
	connKindIO    = 1
)

// Per-command error codes: the typed host-interface errors that have
// canonical client-side values. Everything else travels as errOther
// with its status class and message. The codes past errOther are
// fabrics-level handshake rejections (frameError only).
const (
	errNone = iota
	errQueueFull
	errBadNSID
	errUnsupported
	errBadHandle
	errBadLogPage
	errQueueClosed
	errOther
	// errSessionUnknown rejects a resume handshake whose token names no
	// retained session (expired, reaped or never issued) — terminal for
	// the client, which cannot replay into a server that forgot it.
	errSessionUnknown
)

// codeFor maps a server-side error to its wire code.
func codeFor(err error) uint16 {
	switch {
	case err == nil:
		return errNone
	case errors.Is(err, hostif.ErrQueueFull):
		return errQueueFull
	case errors.Is(err, hostif.ErrBadNSID):
		return errBadNSID
	case errors.Is(err, hostif.ErrUnsupported):
		return errUnsupported
	case errors.Is(err, hostif.ErrBadHandle):
		return errBadHandle
	case errors.Is(err, hostif.ErrBadLogPage):
		return errBadLogPage
	case errors.Is(err, hostif.ErrQueueClosed):
		return errQueueClosed
	case errors.Is(err, ErrSessionUnknown):
		return errSessionUnknown
	default:
		return errOther
	}
}

// errorFor reconstructs the client-side error for a wire code. The
// canonical codes map back to the host interface's error values so
// errors.Is works across the fabric; errOther yields a RemoteError
// carrying the server's message.
func errorFor(code uint16, msg string) error {
	switch code {
	case errNone:
		return nil
	case errQueueFull:
		return hostif.ErrQueueFull
	case errBadNSID:
		return hostif.ErrBadNSID
	case errUnsupported:
		return hostif.ErrUnsupported
	case errBadHandle:
		return hostif.ErrBadHandle
	case errBadLogPage:
		return hostif.ErrBadLogPage
	case errQueueClosed:
		return hostif.ErrQueueClosed
	case errSessionUnknown:
		return fmt.Errorf("%w: %s", ErrSessionUnknown, msg)
	default:
		return &RemoteError{Code: code, Msg: msg}
	}
}

// frameBuf accumulates one outgoing frame: header space is reserved up
// front and patched by finish, so a frame is encoded and written as a
// single contiguous buffer (one syscall, reused across frames).
type frameBuf struct {
	b []byte
}

func (f *frameBuf) start(ftype byte) {
	f.b = append(f.b[:0], wireMagic[0], wireMagic[1], wireVersion, ftype,
		0, 0, 0, 0, 0, 0, 0, 0)
}

func (f *frameBuf) u8(v uint8)   { f.b = append(f.b, v) }
func (f *frameBuf) u16(v uint16) { f.b = binary.LittleEndian.AppendUint16(f.b, v) }
func (f *frameBuf) u32(v uint32) { f.b = binary.LittleEndian.AppendUint32(f.b, v) }
func (f *frameBuf) u64(v uint64) { f.b = binary.LittleEndian.AppendUint64(f.b, v) }
func (f *frameBuf) i32(v int32)  { f.u32(uint32(v)) }
func (f *frameBuf) i64(v int64)  { f.u64(uint64(v)) }

func (f *frameBuf) bytes(p []byte) {
	f.u32(uint32(len(p)))
	f.b = append(f.b, p...)
}

func (f *frameBuf) str(s string) {
	f.u16(uint16(len(s)))
	f.b = append(f.b, s...)
}

// finish patches the header (length + CRC) and returns the full frame.
func (f *frameBuf) finish() []byte {
	payload := f.b[headerBytes:]
	binary.LittleEndian.PutUint32(f.b[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(f.b[8:12], crc32.ChecksumIEEE(payload))
	return f.b
}

// readFrame reads and validates one frame, reusing *buf for the
// payload. The returned payload aliases *buf and is valid until the
// next call.
func readFrame(r io.Reader, buf *[]byte) (ftype byte, payload []byte, err error) {
	var hdr [headerBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: reading header: %w", ErrTruncatedFrame, err)
	}
	if hdr[0] != wireMagic[0] || hdr[1] != wireMagic[1] {
		return 0, nil, fmt.Errorf("%w: %02x%02x", ErrBadMagic, hdr[0], hdr[1])
	}
	if hdr[2] != wireVersion {
		return 0, nil, fmt.Errorf("%w: %d", ErrBadVersion, hdr[2])
	}
	ftype = hdr[3]
	if ftype < 1 || ftype > frameTypeMax {
		return 0, nil, fmt.Errorf("%w: %d", ErrBadFrameType, ftype)
	}
	n := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxFrameBytes {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	payload = (*buf)[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: reading %d-byte payload: %w", ErrTruncatedFrame, n, err)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != binary.LittleEndian.Uint32(hdr[8:12]) {
		return 0, nil, fmt.Errorf("%w: got %08x want %08x", ErrCorruptFrame,
			crc, binary.LittleEndian.Uint32(hdr[8:12]))
	}
	return ftype, payload, nil
}

// decoder walks a validated payload. Overruns set err and make every
// further read return zero — decode paths check err once at the end,
// and malformed input can never panic.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: payload overrun at offset %d", ErrBadPayload, d.off)
	}
}

func (d *decoder) u8() uint8 {
	if d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if d.off+2 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) i32() int32 { return int32(d.u32()) }
func (d *decoder) i64() int64 { return int64(d.u64()) }

// bytes returns a length-prefixed slice aliasing the payload buffer.
func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || d.off+n > len(d.b) || n < 0 {
		d.fail()
		return nil
	}
	v := d.b[d.off : d.off+n : d.off+n]
	d.off += n
	return v
}

func (d *decoder) str() string {
	n := int(d.u16())
	if d.err != nil || d.off+n > len(d.b) {
		d.fail()
		return ""
	}
	v := string(d.b[d.off : d.off+n])
	d.off += n
	return v
}

// done reports a decode error if the payload failed or has trailing
// garbage.
func (d *decoder) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(d.b)-d.off)
	}
	return nil
}

// validOp reports whether op is a data opcode the wire may carry
// (admin opcodes travel as frameAdmin, never in a ring batch).
func validOp(op hostif.Op) bool {
	switch op {
	case hostif.OpRead, hostif.OpWrite, hostif.OpTrim, hostif.OpFlush,
		hostif.OpZoneAppend, hostif.OpZoneReset, hostif.OpZoneFinish,
		hostif.OpTableCreate, hostif.OpTableAppend, hostif.OpTableCommit,
		hostif.OpTableAbort, hostif.OpTableRead, hostif.OpTableDelete,
		hostif.OpOffloadGet, hostif.OpOffloadScan, hostif.OpOffloadCompact:
		return true
	}
	return false
}

// encodeCommand appends one ring-batch command entry: the session
// sequence number, the command's own doorbell instant (a replayed
// entry keeps its original instant so re-execution lands at the same
// virtual time), and the command fields. dstLen tells the server how
// many bytes an OpTableRead expects back.
func encodeCommand(f *frameBuf, seq uint64, at vclock.Time, cmd *hostif.Command) {
	f.u64(seq)
	f.i64(int64(at))
	f.u8(uint8(cmd.Op))
	f.u32(uint32(cmd.NSID))
	f.i64(cmd.LPN)
	f.i32(int32(cmd.Pages))
	f.i32(int32(cmd.Zone))
	f.i64(cmd.Length)
	f.u64(cmd.Handle)
	f.u32(uint32(len(cmd.Dst)))
	f.u32(uint32(len(cmd.Descs)))
	for i := range cmd.Descs {
		f.i64(cmd.Descs[i].ID)
		f.i32(int32(cmd.Descs[i].Offset))
		f.i32(int32(cmd.Descs[i].Length))
	}
	f.bytes(cmd.Data)
}

// decodeCommand fills cmd from one ring-batch entry. cmd.Data aliases
// the frame buffer (valid until the next read on the connection);
// cmd.Dst is left nil — the caller provides the read buffer sized by
// the returned dstLen. cmd.Descs reuses the slice already in cmd.
func decodeCommand(d *decoder, cmd *hostif.Command) (seq uint64, at vclock.Time, dstLen int, err error) {
	seq = d.u64()
	at = vclock.Time(d.i64())
	op := hostif.Op(d.u8())
	cmd.Op = op
	cmd.NSID = int(d.u32())
	cmd.LPN = d.i64()
	cmd.Pages = int(d.i32())
	cmd.Zone = int(d.i32())
	cmd.Length = d.i64()
	cmd.Handle = d.u64()
	dstLen = int(d.u32())
	nd := int(d.u32())
	if d.err == nil && (nd < 0 || nd > len(d.b)/16) {
		d.fail()
	}
	if d.err == nil {
		descs := cmd.Descs[:0]
		for i := 0; i < nd; i++ {
			id := d.i64()
			off := int(d.i32())
			ln := int(d.i32())
			descs = append(descs, hostif.PageDesc{ID: id, Offset: off, Length: ln})
		}
		cmd.Descs = descs
	}
	cmd.Data = d.bytes()
	if d.err != nil {
		return 0, 0, 0, d.err
	}
	if !validOp(op) {
		return 0, 0, 0, fmt.Errorf("%w: %d", ErrBadOpcode, uint8(op))
	}
	if dstLen < 0 || dstLen > maxFrameBytes {
		return 0, 0, 0, fmt.Errorf("%w: dst length %d", ErrBadPayload, dstLen)
	}
	return seq, at, dstLen, nil
}

// encodeCompletion appends one completion entry; data is the payload
// travelling back to the client (read results).
func encodeCompletion(f *frameBuf, seq uint64, c *hostif.Completion, data []byte) {
	f.u64(seq)
	f.u8(uint8(c.Op))
	f.u8(uint8(c.Status))
	errMsg := ""
	code := codeFor(c.Err)
	if code == errOther && c.Err != nil {
		errMsg = c.Err.Error()
	}
	f.u16(code)
	f.u32(uint32(c.NSID))
	f.u64(c.Slot)
	f.i64(int64(c.Submitted))
	f.i64(int64(c.Done))
	f.i64(c.Offset)
	f.u64(c.Handle)
	f.i32(int32(c.Blocks))
	f.str(errMsg)
	f.bytes(data)
}

// decodeCompletion reads one completion entry. The returned data
// aliases the frame buffer.
func decodeCompletion(d *decoder, c *hostif.Completion) (seq uint64, data []byte, err error) {
	seq = d.u64()
	c.Op = hostif.Op(d.u8())
	c.Status = hostif.Status(d.u8())
	code := d.u16()
	c.NSID = int(d.u32())
	c.Slot = d.u64()
	c.Submitted = vclock.Time(d.i64())
	c.Done = vclock.Time(d.i64())
	c.Offset = d.i64()
	c.Handle = d.u64()
	c.Blocks = int(d.i32())
	msg := d.str()
	data = d.bytes()
	if d.err != nil {
		return 0, nil, d.err
	}
	c.Err = errorFor(code, msg)
	return seq, data, nil
}
