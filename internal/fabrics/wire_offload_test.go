package fabrics

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/hostif"
	"repro/internal/offload"
)

// TestOffloadCommandCodec pins the computational-storage opcodes on the
// ring codec: offload requests ride Command.Data as opaque bytes, and
// every field the three ops use survives encode/decode bit-exactly.
func TestOffloadCommandCodec(t *testing.T) {
	pred := offload.Predicate{Offset: 8, Mask: 0xF0, Value: 0x30}
	req := offload.CompactRequest{
		Inputs:      []offload.TableRef{{ID: 4, Blocks: 9}, {ID: 5, Blocks: 2}},
		DropDeletes: true,
		BitsPerKey:  10,
	}
	cases := []hostif.Command{
		{Op: hostif.OpOffloadGet, NSID: 2, Handle: 11, Length: 3, LPN: 1, Data: []byte("key-0042")},
		{Op: hostif.OpOffloadScan, NSID: 1, LPN: 16, Pages: 64, Data: pred.Encode()},
		{Op: hostif.OpOffloadCompact, NSID: 1, Data: req.Encode()},
	}
	for _, in := range cases {
		var f frameBuf
		f.start(frameRing)
		encodeCommand(&f, 9, 4321, &in)
		d := decoder{b: f.finish()[headerBytes:]}
		var out hostif.Command
		seq, at, dstLen, err := decodeCommand(&d, &out)
		if err != nil {
			t.Fatalf("%v: decode: %v", in.Op, err)
		}
		if err := d.done(); err != nil {
			t.Fatalf("%v: done: %v", in.Op, err)
		}
		if seq != 9 || at != 4321 || dstLen != 0 {
			t.Fatalf("%v: seq=%d at=%d dstLen=%d", in.Op, seq, at, dstLen)
		}
		if out.Op != in.Op || out.NSID != in.NSID || out.Handle != in.Handle ||
			out.Length != in.Length || out.LPN != in.LPN || out.Pages != in.Pages ||
			!bytes.Equal(out.Data, in.Data) {
			t.Fatalf("%v: roundtrip mismatch: %+v vs %+v", in.Op, out, in)
		}
	}
}

// TestOffloadCommandTruncationRejected feeds every strict prefix of an
// encoded offload command through the decoder: a torn offload request
// must fail as a payload error, never reach a namespace half-parsed.
func TestOffloadCommandTruncationRejected(t *testing.T) {
	req := offload.CompactRequest{Inputs: []offload.TableRef{{ID: 1, Blocks: 4}}, BitsPerKey: 10}
	var f frameBuf
	f.start(frameRing)
	encodeCommand(&f, 1, 0, &hostif.Command{Op: hostif.OpOffloadCompact, NSID: 1, Data: req.Encode()})
	payload := append([]byte(nil), f.finish()[headerBytes:]...)
	for n := 0; n < len(payload); n++ {
		d := decoder{b: payload[:n]}
		var cmd hostif.Command
		if _, _, _, err := decodeCommand(&d, &cmd); !errors.Is(err, ErrBadPayload) {
			t.Fatalf("prefix %d: got %v, want %v", n, err, ErrBadPayload)
		}
	}
}

// TestOffloadResultRidesCompletionData pins the return path: an offload
// result frame crosses the wire as completion payload bytes, bit-exact,
// and still decodes with the offload codec on the far side.
func TestOffloadResultRidesCompletionData(t *testing.T) {
	res := offload.EncodeGetResult([]byte("value-bytes"), false, true)
	var f frameBuf
	f.start(frameCompletions)
	encodeCompletion(&f, 3, &hostif.Completion{Op: hostif.OpOffloadGet, Slot: 1, Done: 500}, res)
	d := decoder{b: f.finish()[headerBytes:]}
	var out hostif.Completion
	tag, data, err := decodeCompletion(&d, &out)
	if err != nil || d.done() != nil {
		t.Fatalf("decode: %v / %v", err, d.done())
	}
	if tag != 3 || out.Op != hostif.OpOffloadGet {
		t.Fatalf("tag=%d op=%v", tag, out.Op)
	}
	value, del, found, err := offload.DecodeGetResult(data)
	if err != nil || del || !found || string(value) != "value-bytes" {
		t.Fatalf("get result after wire = (%q, %v, %v, %v)", value, del, found, err)
	}
}
