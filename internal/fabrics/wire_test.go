package fabrics

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/internal/hostif"
	"repro/internal/vclock"
)

// sampleFrame encodes one representative ring-style frame with a small
// payload for the corruption tests.
func sampleFrame() []byte {
	var f frameBuf
	f.start(frameRing)
	f.u64(0) // cumulative ack
	f.u32(1)
	encodeCommand(&f, 7, 12345, &hostif.Command{
		Op:   hostif.OpWrite,
		NSID: 1,
		LPN:  42,
		Data: []byte("hello, fabric"),
		Descs: []hostif.PageDesc{
			{ID: 3, Offset: 0, Length: 4096},
		},
	})
	return append([]byte(nil), f.finish()...)
}

func readFrameBytes(b []byte) (byte, []byte, error) {
	var buf []byte
	return readFrame(bytes.NewReader(b), &buf)
}

func TestFrameRoundtrip(t *testing.T) {
	frame := sampleFrame()
	ftype, payload, err := readFrameBytes(frame)
	if err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
	if ftype != frameRing {
		t.Fatalf("frame type = %d, want %d", ftype, frameRing)
	}
	if !bytes.Equal(payload, frame[headerBytes:]) {
		t.Fatalf("payload mismatch")
	}
}

// TestFrameHeaderCorruption checks that every header-field corruption
// maps to its own typed error, in the documented validation order.
func TestFrameHeaderCorruption(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"bad magic byte 0", func(b []byte) []byte { b[0] = 'Z'; return b }, ErrBadMagic},
		{"bad magic byte 1", func(b []byte) []byte { b[1] = 'Z'; return b }, ErrBadMagic},
		{"future version", func(b []byte) []byte { b[2] = wireVersion + 1; return b }, ErrBadVersion},
		{"zero version", func(b []byte) []byte { b[2] = 0; return b }, ErrBadVersion},
		{"zero frame type", func(b []byte) []byte { b[3] = 0; return b }, ErrBadFrameType},
		{"unknown frame type", func(b []byte) []byte { b[3] = frameTypeMax + 1; return b }, ErrBadFrameType},
		{"oversized length", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], maxFrameBytes+1)
			return b
		}, ErrFrameTooLarge},
		{"length past input", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], uint32(len(b)))
			return b
		}, ErrTruncatedFrame},
		{"flipped crc", func(b []byte) []byte { b[8] ^= 0xFF; return b }, ErrCorruptFrame},
		{"flipped payload bit", func(b []byte) []byte { b[headerBytes] ^= 0x01; return b }, ErrCorruptFrame},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-3] }, ErrTruncatedFrame},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := readFrameBytes(tc.mutate(sampleFrame()))
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// TestFrameEveryTruncation feeds every strict prefix of a valid frame:
// each must fail cleanly (empty input is a clean EOF — the peer hung
// up between frames).
func TestFrameEveryTruncation(t *testing.T) {
	frame := sampleFrame()
	for n := 0; n < len(frame); n++ {
		_, _, err := readFrameBytes(frame[:n])
		switch {
		case n == 0:
			if err != io.EOF {
				t.Fatalf("prefix 0: got %v, want io.EOF", err)
			}
		case err == nil:
			t.Fatalf("prefix %d of %d accepted", n, len(frame))
		case !errors.Is(err, ErrTruncatedFrame):
			t.Fatalf("prefix %d: got %v, want %v", n, err, ErrTruncatedFrame)
		}
	}
}

// TestFrameEveryByteFlip flips each byte of a valid frame in turn;
// readFrame must never panic, and a nil error is only acceptable when
// the flip landed on the frame-type byte and produced another valid
// type with the payload intact (the CRC covers only the payload).
func TestFrameEveryByteFlip(t *testing.T) {
	frame := sampleFrame()
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x04
		ftype, _, err := readFrameBytes(mut)
		if err == nil {
			if i != 3 {
				t.Fatalf("flip at %d accepted", i)
			}
			if ftype < 1 || ftype > frameTypeMax {
				t.Fatalf("flip at %d yielded out-of-range type %d", i, ftype)
			}
		}
	}
}

func TestDecodeCommandRoundtrip(t *testing.T) {
	in := hostif.Command{
		Op:     hostif.OpZoneAppend,
		NSID:   3,
		LPN:    99,
		Pages:  8,
		Zone:   2,
		Length: 4096,
		Handle: 17,
		Data:   []byte{1, 2, 3, 4},
		Descs:  []hostif.PageDesc{{ID: 5, Offset: 1, Length: 2}, {ID: 6, Offset: 3, Length: 4}},
	}
	var f frameBuf
	f.start(frameRing)
	encodeCommand(&f, 31, 777, &in)
	d := decoder{b: f.finish()[headerBytes:]}
	var out hostif.Command
	seq, at, dstLen, err := decodeCommand(&d, &out)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := d.done(); err != nil {
		t.Fatalf("done: %v", err)
	}
	if seq != 31 || at != 777 || dstLen != 0 {
		t.Fatalf("seq=%d at=%d dstLen=%d", seq, at, dstLen)
	}
	if out.Op != in.Op || out.NSID != in.NSID || out.LPN != in.LPN ||
		out.Pages != in.Pages || out.Zone != in.Zone || out.Length != in.Length ||
		out.Handle != in.Handle || !bytes.Equal(out.Data, in.Data) ||
		len(out.Descs) != 2 || out.Descs[0] != in.Descs[0] || out.Descs[1] != in.Descs[1] {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", out, in)
	}
}

// TestDecodeCommandCorruption covers the payload-level failure modes:
// truncation at every offset, opcodes the ring may not carry, absurd
// descriptor counts and dst lengths, and trailing garbage.
func TestDecodeCommandCorruption(t *testing.T) {
	var f frameBuf
	f.start(frameRing)
	encodeCommand(&f, 1, 0, &hostif.Command{Op: hostif.OpRead, NSID: 1, Pages: 4,
		Descs: []hostif.PageDesc{{ID: 1}}})
	payload := append([]byte(nil), f.finish()[headerBytes:]...)

	t.Run("every truncation", func(t *testing.T) {
		for n := 0; n < len(payload); n++ {
			d := decoder{b: payload[:n]}
			var cmd hostif.Command
			if _, _, _, err := decodeCommand(&d, &cmd); !errors.Is(err, ErrBadPayload) {
				t.Fatalf("prefix %d: got %v, want %v", n, err, ErrBadPayload)
			}
		}
	})
	t.Run("admin opcode in ring", func(t *testing.T) {
		var f frameBuf
		f.start(frameRing)
		encodeCommand(&f, 1, 0, &hostif.Command{Op: hostif.OpAdminIdentify})
		d := decoder{b: f.finish()[headerBytes:]}
		var cmd hostif.Command
		if _, _, _, err := decodeCommand(&d, &cmd); !errors.Is(err, ErrBadOpcode) {
			t.Fatalf("got %v, want %v", err, ErrBadOpcode)
		}
	})
	t.Run("unknown opcode", func(t *testing.T) {
		var f frameBuf
		f.start(frameRing)
		encodeCommand(&f, 1, 0, &hostif.Command{Op: 250})
		d := decoder{b: f.finish()[headerBytes:]}
		var cmd hostif.Command
		if _, _, _, err := decodeCommand(&d, &cmd); !errors.Is(err, ErrBadOpcode) {
			t.Fatalf("got %v, want %v", err, ErrBadOpcode)
		}
	})
	t.Run("absurd desc count", func(t *testing.T) {
		mut := append([]byte(nil), payload...)
		// dstLen sits after seq(8) at(8) op(1) nsid(4) lpn(8) pages(4)
		// zone(4) length(8) handle(8) = offset 53; nDescs follows at 57.
		binary.LittleEndian.PutUint32(mut[57:], 1<<30)
		d := decoder{b: mut}
		var cmd hostif.Command
		if _, _, _, err := decodeCommand(&d, &cmd); !errors.Is(err, ErrBadPayload) {
			t.Fatalf("got %v, want %v", err, ErrBadPayload)
		}
	})
	t.Run("absurd dst length", func(t *testing.T) {
		mut := append([]byte(nil), payload...)
		binary.LittleEndian.PutUint32(mut[53:], maxFrameBytes+1)
		d := decoder{b: mut}
		var cmd hostif.Command
		if _, _, _, err := decodeCommand(&d, &cmd); !errors.Is(err, ErrBadPayload) {
			t.Fatalf("got %v, want %v", err, ErrBadPayload)
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		d := decoder{b: append(append([]byte(nil), payload...), 0xEE)}
		var cmd hostif.Command
		if _, _, _, err := decodeCommand(&d, &cmd); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if err := d.done(); !errors.Is(err, ErrBadPayload) {
			t.Fatalf("done: got %v, want %v", err, ErrBadPayload)
		}
	})
}

// TestCompletionErrorMapping pins the error codes: canonical host
// errors survive the wire as the same values (errors.Is works across
// the fabric), everything else arrives as a RemoteError with the
// server's message.
func TestCompletionErrorMapping(t *testing.T) {
	canonical := []error{
		nil, hostif.ErrQueueFull, hostif.ErrBadNSID, hostif.ErrUnsupported,
		hostif.ErrBadHandle, hostif.ErrBadLogPage, hostif.ErrQueueClosed,
	}
	for _, werr := range canonical {
		in := hostif.Completion{Op: hostif.OpRead, Slot: 9,
			Submitted: 100, Done: vclock.Time(200),
			Result: hostif.Result{Err: werr, Status: hostif.StatusOf(werr)}}
		var f frameBuf
		f.start(frameCompletions)
		encodeCompletion(&f, 5, &in, []byte("payload"))
		d := decoder{b: f.finish()[headerBytes:]}
		var out hostif.Completion
		tag, data, err := decodeCompletion(&d, &out)
		if err != nil || d.done() != nil {
			t.Fatalf("%v: decode failed: %v / %v", werr, err, d.done())
		}
		if tag != 5 || !bytes.Equal(data, []byte("payload")) {
			t.Fatalf("%v: tag=%d data=%q", werr, tag, data)
		}
		if werr == nil {
			if out.Err != nil {
				t.Fatalf("nil error arrived as %v", out.Err)
			}
		} else if !errors.Is(out.Err, werr) {
			t.Fatalf("error %v arrived as %v", werr, out.Err)
		}
		if out.Submitted != in.Submitted || out.Done != in.Done || out.Slot != in.Slot {
			t.Fatalf("%v: timing/slot mismatch: %+v vs %+v", werr, out, in)
		}
	}

	other := errors.New("media caught fire")
	var f frameBuf
	f.start(frameCompletions)
	encodeCompletion(&f, 1, &hostif.Completion{Op: hostif.OpWrite, Result: hostif.Result{Err: other}}, nil)
	d := decoder{b: f.finish()[headerBytes:]}
	var out hostif.Completion
	if _, _, err := decodeCompletion(&d, &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	var re *RemoteError
	if !errors.As(out.Err, &re) || re.Msg != other.Error() {
		t.Fatalf("non-canonical error arrived as %v", out.Err)
	}
}

// TestDecodeCompletionTruncation: every strict prefix of a completion
// entry fails cleanly.
func TestDecodeCompletionTruncation(t *testing.T) {
	var f frameBuf
	f.start(frameCompletions)
	encodeCompletion(&f, 2, &hostif.Completion{Op: hostif.OpRead, Result: hostif.Result{Err: hostif.ErrBadNSID}}, []byte{9, 9})
	payload := append([]byte(nil), f.finish()[headerBytes:]...)
	for n := 0; n < len(payload); n++ {
		d := decoder{b: payload[:n]}
		var c hostif.Completion
		if _, _, err := decodeCompletion(&d, &c); !errors.Is(err, ErrBadPayload) {
			t.Fatalf("prefix %d: got %v, want %v", n, err, ErrBadPayload)
		}
	}
}

// FuzzReadFrame: arbitrary bytes through the frame reader must never
// panic and must either fail or yield a frame whose CRC genuinely
// covers the returned payload.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(sampleFrame())
	trunc := sampleFrame()
	f.Add(trunc[:len(trunc)-2])
	bad := sampleFrame()
	bad[headerBytes] ^= 0xFF
	f.Add(bad)
	f.Fuzz(func(t *testing.T, data []byte) {
		var buf []byte
		ftype, payload, err := readFrame(bytes.NewReader(data), &buf)
		if err == nil && (ftype < 1 || ftype > frameTypeMax) {
			t.Fatalf("accepted out-of-range frame type %d", ftype)
		}
		_ = payload
	})
}

// FuzzDecodeCommand: arbitrary payloads through the command decoder
// must never panic.
func FuzzDecodeCommand(f *testing.F) {
	var fb frameBuf
	fb.start(frameRing)
	encodeCommand(&fb, 1, 0, &hostif.Command{Op: hostif.OpWrite, Data: []byte("x")})
	f.Add(append([]byte(nil), fb.finish()[headerBytes:]...))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := decoder{b: data}
		var cmd hostif.Command
		seq, _, dstLen, err := decodeCommand(&d, &cmd)
		if err == nil && (dstLen < 0 || dstLen > maxFrameBytes) {
			t.Fatalf("accepted dstLen %d (seq %d)", dstLen, seq)
		}
	})
}

// FuzzDecodeCompletion: arbitrary payloads through the completion
// decoder must never panic.
func FuzzDecodeCompletion(f *testing.F) {
	var fb frameBuf
	fb.start(frameCompletions)
	encodeCompletion(&fb, 1, &hostif.Completion{Op: hostif.OpRead}, []byte("y"))
	f.Add(append([]byte(nil), fb.finish()[headerBytes:]...))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := decoder{b: data}
		var c hostif.Completion
		_, _, _ = decodeCompletion(&d, &c)
	})
}
