// Package fault is the deterministic fault-injection layer of the
// device stack — the simulated counterpart of the QEMU OCSSD device's
// error-injection knobs. An Injector is seeded once and consulted by
// the device at every media operation (stripe program, page-read batch,
// chunk erase); its verdicts are a pure function of the seed and the
// operation sequence, so a faulty run is exactly as reproducible as a
// fault-free one.
//
// The taxonomy (see DESIGN.md, "Durability & fault model"):
//
//   - read errors: a vector read of a chunk fails with ErrReadError
//     (uncorrectable ECC); after GrowBadAfter errors on the same chunk
//     the verdict escalates to grow-bad and the device retires the
//     chunk (OFFLINE in the chunk report),
//   - program failures: a stripe program fails with ErrProgramFail and
//     the chunk goes OFFLINE, like a native NAND program failure,
//   - erase failures: a chunk reset fails with ErrEraseFail, OFFLINE,
//   - power cut: PowerCut(n) arms a trigger that kills the device at
//     the n-th subsequent media operation. Every operation from that
//     point returns ErrPowerCut; with TornWrites, a cut that lands on a
//     stripe program persists only a prefix of the stripe to the
//     durable backend — the classic torn write.
//
// The injector deliberately knows nothing about the device's address
// types: chunks are identified by an opaque uint64 key supplied by the
// caller, which keeps this package dependency-free.
package fault

import (
	"errors"
	"math/rand"
	"sync"
)

// Op classifies a media operation for fault matching.
type Op uint8

// Media operation classes.
const (
	OpRead Op = iota + 1
	OpProgram
	OpErase
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpProgram:
		return "program"
	case OpErase:
		return "erase"
	default:
		return "op?"
	}
}

// Typed errors surfaced to the FTLs. The device wraps them with the
// failing chunk address, so errors.Is works through the whole stack up
// to the host-interface completion status.
var (
	// ErrPowerCut is returned by every media operation after the armed
	// power cut fires: the device is dead until reopened from its
	// durable backend.
	ErrPowerCut = errors.New("fault: power lost")
	// ErrReadError is an injected uncorrectable media read error.
	ErrReadError = errors.New("fault: uncorrectable read error")
	// ErrProgramFail is an injected stripe-program failure.
	ErrProgramFail = errors.New("fault: program failure")
	// ErrEraseFail is an injected chunk-erase failure.
	ErrEraseFail = errors.New("fault: erase failure")
)

// Config parameterizes an Injector. All rates are per media operation
// of the matching class; zero rates draw no randomness at all, so an
// injector configured only with a power cut stays bit-deterministic
// regardless of operation mix.
type Config struct {
	// Seed drives every probabilistic decision.
	Seed int64
	// ReadErrorRate is the probability that a chunk's page-read batch
	// fails with ErrReadError.
	ReadErrorRate float64
	// GrowBadAfter escalates a chunk to OFFLINE after that many injected
	// read errors on it (0 = never escalate).
	GrowBadAfter int
	// ProgramFailRate is the probability that a stripe program fails
	// with ErrProgramFail (chunk goes OFFLINE).
	ProgramFailRate float64
	// EraseFailRate is the probability that a chunk reset fails with
	// ErrEraseFail (chunk goes OFFLINE).
	EraseFailRate float64
	// TornWrites makes a power cut that lands on a stripe program
	// persist a strict prefix of the stripe to the backend.
	TornWrites bool
}

// Verdict is the injector's decision for one media operation.
type Verdict struct {
	// PowerCut reports that the device dies at this operation.
	PowerCut bool
	// TornSectors is the number of sectors of the in-flight stripe that
	// persist when a power cut lands on a program (0 = none; only ever
	// non-zero with Config.TornWrites).
	TornSectors int
	// Err is the injected failure (nil = the operation proceeds).
	Err error
	// GrowBad transitions the chunk to OFFLINE alongside Err.
	GrowBad bool
}

// Stats counts injector activity; it is the payload of the device's
// fault log page.
type Stats struct {
	MediaOps     int64 // operations consulted
	ReadErrors   int64 // injected read errors
	ProgramFails int64 // injected program failures
	EraseFails   int64 // injected erase failures
	GrownBad     int64 // chunks escalated to OFFLINE
	CutArmed     bool  // a power cut is pending
	CutAfter     int64 // operations until it fires
	Dead         bool  // the power cut fired
}

// Injector decides the fate of media operations. Safe for concurrent
// use; decisions are serialized, so a deterministic operation order
// yields a deterministic fault sequence.
type Injector struct {
	mu       sync.Mutex
	cfg      Config
	rng      *rand.Rand
	readErrs map[uint64]int // per-chunk injected read errors
	cutAfter int64          // media ops until the cut fires; <0 disarmed
	dead     bool
	stats    Stats
}

// New builds an injector from cfg.
func New(cfg Config) *Injector {
	return &Injector{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		readErrs: make(map[uint64]int),
		cutAfter: -1,
	}
}

// PowerCut arms the trigger: the n-th media operation from now (n ≥ 1)
// dies with ErrPowerCut, and every operation after it. Re-arming
// replaces a pending trigger.
func (in *Injector) PowerCut(n int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if n < 1 {
		n = 1
	}
	in.cutAfter = n
}

// Dead reports whether the power cut has fired.
func (in *Injector) Dead() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.dead
}

// Stats returns a snapshot of the injector counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.stats
	s.CutArmed = in.cutAfter > 0
	s.CutAfter = in.cutAfter
	s.Dead = in.dead
	return s
}

// OnOp decides the fate of one media operation on the chunk identified
// by key. stripeSectors is the stripe size of a program (ignored for
// other classes); it bounds Verdict.TornSectors.
func (in *Injector) OnOp(op Op, key uint64, stripeSectors int) Verdict {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.dead {
		return Verdict{PowerCut: true, Err: ErrPowerCut}
	}
	in.stats.MediaOps++
	if in.cutAfter > 0 {
		in.cutAfter--
		if in.cutAfter == 0 {
			in.dead = true
			v := Verdict{PowerCut: true, Err: ErrPowerCut}
			if op == OpProgram && in.cfg.TornWrites && stripeSectors > 0 {
				v.TornSectors = in.rng.Intn(stripeSectors)
			}
			return v
		}
	}
	switch op {
	case OpRead:
		if in.cfg.ReadErrorRate > 0 && in.rng.Float64() < in.cfg.ReadErrorRate {
			in.stats.ReadErrors++
			in.readErrs[key]++
			v := Verdict{Err: ErrReadError}
			if in.cfg.GrowBadAfter > 0 && in.readErrs[key] >= in.cfg.GrowBadAfter {
				v.GrowBad = true
				in.stats.GrownBad++
				delete(in.readErrs, key) // retired: stop counting
			}
			return v
		}
	case OpProgram:
		if in.cfg.ProgramFailRate > 0 && in.rng.Float64() < in.cfg.ProgramFailRate {
			in.stats.ProgramFails++
			in.stats.GrownBad++
			return Verdict{Err: ErrProgramFail, GrowBad: true}
		}
	case OpErase:
		if in.cfg.EraseFailRate > 0 && in.rng.Float64() < in.cfg.EraseFailRate {
			in.stats.EraseFails++
			in.stats.GrownBad++
			return Verdict{Err: ErrEraseFail, GrowBad: true}
		}
	}
	return Verdict{}
}
