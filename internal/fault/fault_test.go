package fault

import (
	"errors"
	"testing"
)

func TestPowerCutFiresAtNthOp(t *testing.T) {
	in := New(Config{Seed: 1})
	in.PowerCut(3)
	for i := 0; i < 2; i++ {
		if v := in.OnOp(OpProgram, 0, 24); v.PowerCut || v.Err != nil {
			t.Fatalf("op %d: unexpected verdict %+v", i, v)
		}
	}
	v := in.OnOp(OpProgram, 0, 24)
	if !v.PowerCut || !errors.Is(v.Err, ErrPowerCut) {
		t.Fatalf("third op must cut: %+v", v)
	}
	if !in.Dead() {
		t.Fatal("injector must be dead after the cut")
	}
	// Every subsequent op is dead too.
	if v := in.OnOp(OpRead, 9, 0); !v.PowerCut {
		t.Fatalf("post-cut op survived: %+v", v)
	}
}

func TestTornWriteOnlyOnProgramCut(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		in := New(Config{Seed: seed, TornWrites: true})
		in.PowerCut(1)
		v := in.OnOp(OpProgram, 0, 24)
		if !v.PowerCut {
			t.Fatal("cut must fire")
		}
		if v.TornSectors < 0 || v.TornSectors >= 24 {
			t.Fatalf("torn sectors %d out of [0,24)", v.TornSectors)
		}
	}
	// A cut on a read never tears.
	in := New(Config{Seed: 1, TornWrites: true})
	in.PowerCut(1)
	if v := in.OnOp(OpRead, 0, 0); v.TornSectors != 0 {
		t.Fatalf("read cut tore: %+v", v)
	}
}

func TestDeterministicVerdictSequence(t *testing.T) {
	run := func() []Verdict {
		in := New(Config{Seed: 7, ReadErrorRate: 0.3, ProgramFailRate: 0.2, EraseFailRate: 0.1, GrowBadAfter: 2})
		var out []Verdict
		for i := 0; i < 200; i++ {
			out = append(out, in.OnOp(Op(i%3+1), uint64(i%5), 24))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGrowBadEscalation(t *testing.T) {
	in := New(Config{Seed: 3, ReadErrorRate: 1.0, GrowBadAfter: 3})
	grew := 0
	for i := 0; i < 3; i++ {
		v := in.OnOp(OpRead, 42, 0)
		if !errors.Is(v.Err, ErrReadError) {
			t.Fatalf("read %d: want ErrReadError, got %+v", i, v)
		}
		if v.GrowBad {
			grew++
			if i != 2 {
				t.Fatalf("escalated at read %d, want 2", i)
			}
		}
	}
	if grew != 1 {
		t.Fatalf("escalations = %d, want 1", grew)
	}
	st := in.Stats()
	if st.ReadErrors != 3 || st.GrownBad != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestZeroRatesDrawNoFaults(t *testing.T) {
	in := New(Config{Seed: 1})
	for i := 0; i < 1000; i++ {
		if v := in.OnOp(OpProgram, uint64(i), 24); v != (Verdict{}) {
			t.Fatalf("op %d: spurious verdict %+v", i, v)
		}
	}
	if st := in.Stats(); st.MediaOps != 1000 || st.ReadErrors+st.ProgramFails+st.EraseFails != 0 {
		t.Fatalf("stats = %+v", st)
	}
}
