package ftlcore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/ocssd"
	"repro/internal/ox"
	"repro/internal/vclock"
)

// Checkpoint stream layout:
//
//	header (64 bytes): magic | seq | walLSN | pages | entries | crc | pad
//	pages × MapPageBytes of mapping snapshot
//	trailer (16 bytes): magic | seq | crc(snapshot)
const (
	ckptMagic      = 0x4f58434b // "OXCK"
	ckptHeaderLen  = 64
	ckptTrailerLen = 16
)

// ErrNoCheckpoint is returned by Load when neither slot holds a valid
// checkpoint (first boot, or both torn).
var ErrNoCheckpoint = errors.New("ftlcore: no valid checkpoint")

// CheckpointConfig tunes the checkpoint process.
type CheckpointConfig struct {
	// SerializeMBps is the controller CPU cost of rendering the mapping
	// snapshot (charged on a core).
	SerializeMBps float64
}

// Checkpointer persists mapping snapshots into two alternating slots of
// reserved chunks (Figure 2: "mapping and block metadata may be
// persisted during checkpoint process"). Double buffering means a crash
// during checkpoint N leaves checkpoint N-1 intact.
type Checkpointer struct {
	media ox.Media
	ctrl  *ox.Controller
	cfg   CheckpointConfig
	slots [2][]ocssd.ChunkID
	seq   uint64
}

// NewCheckpointer builds a checkpointer over two reserved chunk slots.
// Each slot must be able to hold a full mapping snapshot.
func NewCheckpointer(media ox.Media, ctrl *ox.Controller, slots [2][]ocssd.ChunkID, cfg CheckpointConfig) (*Checkpointer, error) {
	if len(slots[0]) == 0 || len(slots[1]) == 0 {
		return nil, errors.New("ftlcore: checkpoint slots must hold at least one chunk each")
	}
	if cfg.SerializeMBps <= 0 {
		cfg.SerializeMBps = 2000
	}
	return &Checkpointer{media: media, ctrl: ctrl, cfg: cfg, slots: slots}, nil
}

// SlotBytesNeeded reports the stream size of a checkpoint for a map with
// the given number of mapping pages.
func SlotBytesNeeded(pages int) int {
	return ckptHeaderLen + pages*MapPageBytes + ckptTrailerLen
}

// Seq reports the sequence number of the last checkpoint written or loaded.
func (c *Checkpointer) Seq() uint64 { return c.seq }

// Write persists a full snapshot of m plus the WAL position (epoch,
// walLSN) into the next slot. It is a synchronous controller I/O; the
// returned time includes serialization CPU and media writes. After a
// successful write the map's dirty set is cleared.
func (c *Checkpointer) Write(now vclock.Time, m *PageMap, walEpoch uint64, walLSN LSN) (vclock.Time, error) {
	seq := c.seq + 1
	pages := m.Pages()
	stream := make([]byte, ckptHeaderLen, SlotBytesNeeded(pages))
	binary.LittleEndian.PutUint32(stream[0:], ckptMagic)
	binary.LittleEndian.PutUint64(stream[4:], seq)
	binary.LittleEndian.PutUint64(stream[12:], uint64(walLSN))
	binary.LittleEndian.PutUint32(stream[20:], uint32(pages))
	binary.LittleEndian.PutUint64(stream[24:], uint64(m.Len()))
	binary.LittleEndian.PutUint64(stream[32:], walEpoch)
	binary.LittleEndian.PutUint32(stream[40:], crc32.ChecksumIEEE(stream[0:40]))

	for p := 0; p < pages; p++ {
		pg, err := m.SerializePage(p)
		if err != nil {
			return now, err
		}
		stream = append(stream, pg...)
	}
	snapCRC := crc32.ChecksumIEEE(stream[ckptHeaderLen:])
	trailer := make([]byte, ckptTrailerLen)
	binary.LittleEndian.PutUint32(trailer[0:], ckptMagic)
	binary.LittleEndian.PutUint64(trailer[4:], seq)
	binary.LittleEndian.PutUint32(trailer[12:], snapCRC)
	stream = append(stream, trailer...)

	// Serialization CPU.
	end := c.ctrl.CPUWork(now, vclock.DurationFor(int64(len(stream)), c.cfg.SerializeMBps))

	slot := c.slots[seq%2]
	geo := c.media.Geometry()
	unit := geo.WSMin * geo.Chip.SectorSize
	// Reset previously used slot chunks.
	for _, id := range slot {
		info, err := c.media.Chunk(id)
		if err != nil {
			return end, err
		}
		if info.State == ocssd.ChunkOpen || info.State == ocssd.ChunkClosed {
			if end, err = c.media.Reset(end, id); err != nil {
				return end, err
			}
		}
	}
	// Stream the snapshot across the slot chunks.
	chunkBytes := int(geo.ChunkBytes())
	off := 0
	for ci := 0; ci < len(slot) && off < len(stream); ci++ {
		take := len(stream) - off
		if take > chunkBytes {
			take = chunkBytes
		}
		payload := stream[off : off+take]
		if rem := len(payload) % unit; rem != 0 {
			padded := make([]byte, len(payload)+unit-rem)
			copy(padded, payload)
			payload = padded
		}
		var err error
		if _, end, err = c.media.Append(end, slot[ci], payload); err != nil {
			return end, err
		}
		if end2, err := c.media.Pad(end, slot[ci]); err != nil {
			return end, err
		} else {
			end = end2
		}
		off += take
	}
	if off < len(stream) {
		return end, fmt.Errorf("ftlcore: checkpoint of %d bytes exceeds slot capacity %d",
			len(stream), len(slot)*chunkBytes)
	}
	c.ctrl.NoteControllerIO()
	c.seq = seq
	m.ClearDirty(m.DirtyPages())
	return end, nil
}

// Load restores the newest valid checkpoint into m and returns its WAL
// position (epoch, LSN). It tries both slots and picks the highest valid
// sequence.
func (c *Checkpointer) Load(now vclock.Time, m *PageMap) (uint64, LSN, vclock.Time, error) {
	type candidate struct {
		seq    uint64
		epoch  uint64
		walLSN LSN
		stream []byte
		pages  int
	}
	var best *candidate
	end := now
	for s := 0; s < 2; s++ {
		stream, e, err := c.readSlot(end, c.slots[s])
		end = e
		if err != nil || len(stream) < ckptHeaderLen+ckptTrailerLen {
			continue
		}
		if binary.LittleEndian.Uint32(stream[0:]) != ckptMagic {
			continue
		}
		if crc32.ChecksumIEEE(stream[0:40]) != binary.LittleEndian.Uint32(stream[40:]) {
			continue
		}
		seq := binary.LittleEndian.Uint64(stream[4:])
		walLSN := LSN(binary.LittleEndian.Uint64(stream[12:]))
		pages := int(binary.LittleEndian.Uint32(stream[20:]))
		epoch := binary.LittleEndian.Uint64(stream[32:])
		need := SlotBytesNeeded(pages)
		if len(stream) < need {
			continue
		}
		snap := stream[ckptHeaderLen : ckptHeaderLen+pages*MapPageBytes]
		trailer := stream[ckptHeaderLen+pages*MapPageBytes : need]
		if binary.LittleEndian.Uint32(trailer[0:]) != ckptMagic ||
			binary.LittleEndian.Uint64(trailer[4:]) != seq ||
			crc32.ChecksumIEEE(snap) != binary.LittleEndian.Uint32(trailer[12:]) {
			continue
		}
		if best == nil || seq > best.seq {
			best = &candidate{seq: seq, epoch: epoch, walLSN: walLSN, stream: snap, pages: pages}
		}
	}
	if best == nil {
		return 0, 0, end, ErrNoCheckpoint
	}
	// Install CPU cost mirrors serialization.
	end = c.ctrl.CPUWork(end, vclock.DurationFor(int64(len(best.stream)), c.cfg.SerializeMBps))
	for p := 0; p < best.pages && p < m.Pages(); p++ {
		if err := m.LoadPage(p, best.stream[p*MapPageBytes:(p+1)*MapPageBytes]); err != nil {
			return 0, 0, end, err
		}
	}
	m.ClearDirty(m.DirtyPages())
	c.seq = best.seq
	return best.epoch, best.walLSN, end, nil
}

// readSlot reads the written extent of every chunk in a slot, in order.
func (c *Checkpointer) readSlot(now vclock.Time, slot []ocssd.ChunkID) ([]byte, vclock.Time, error) {
	geo := c.media.Geometry()
	secSize := geo.Chip.SectorSize
	var stream []byte
	end := now
	for _, id := range slot {
		info, err := c.media.Chunk(id)
		if err != nil {
			return nil, end, err
		}
		if info.WP == 0 {
			break
		}
		buf := make([]byte, info.WP*secSize)
		ppas := make([]ocssd.PPA, info.WP)
		for s := range ppas {
			ppas[s] = id.PPAOf(s)
		}
		if end, err = c.media.VectorRead(end, ppas, buf); err != nil {
			return nil, end, err
		}
		stream = append(stream, buf...)
	}
	return stream, end, nil
}
