package ftlcore

import (
	"errors"
	"testing"

	"repro/internal/ocssd"
	"repro/internal/vclock"
)

func newCkptUnderTest(t *testing.T) (*Checkpointer, *PageMap, *ocssd.Device) {
	t.Helper()
	d, ctrl := testDevice(t, ocssd.Options{Seed: 1})
	slots := [2][]ocssd.ChunkID{
		{{Group: 0, PU: 0, Chunk: 0}, {Group: 0, PU: 1, Chunk: 0}},
		{{Group: 1, PU: 0, Chunk: 0}, {Group: 1, PU: 1, Chunk: 0}},
	}
	c, err := NewCheckpointer(d, ctrl, slots, CheckpointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewPageMap(MapPageEntries * 2)
	return c, m, d
}

func populate(m *PageMap, stride int64) {
	for i := int64(0); i < int64(m.Len()); i += stride {
		m.Update(i, ocssd.PPA{Group: int(i % 2), Chunk: int(i % 8), Sector: int(i % 96)})
	}
}

func TestCheckpointWriteLoadRoundTrip(t *testing.T) {
	c, m, _ := newCkptUnderTest(t)
	populate(m, 3)
	end, err := c.Write(0, m, 3, LSN(12345))
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if end <= 0 {
		t.Fatal("checkpoint should consume virtual time")
	}
	if c.Seq() != 1 {
		t.Fatalf("seq = %d", c.Seq())
	}
	if len(m.DirtyPages()) != 0 {
		t.Fatal("checkpoint should clear dirty pages")
	}

	m2 := NewPageMap(m.Len())
	_, walLSN, _, err := c.Load(end, m2)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if walLSN != LSN(12345) {
		t.Fatalf("walLSN = %d", walLSN)
	}
	for i := int64(0); i < int64(m.Len()); i++ {
		a, okA := m.Lookup(i)
		b, okB := m2.Lookup(i)
		if okA != okB || a != b {
			t.Fatalf("entry %d differs after load", i)
		}
	}
}

func TestCheckpointNoCheckpoint(t *testing.T) {
	c, m, _ := newCkptUnderTest(t)
	if _, _, _, err := c.Load(0, m); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestCheckpointDoubleBuffering(t *testing.T) {
	c, m, _ := newCkptUnderTest(t)
	populate(m, 5)
	end, err := c.Write(0, m, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Second checkpoint with different content goes to the other slot.
	m.Update(1, ocssd.PPA{Group: 1, PU: 1, Chunk: 7, Sector: 42})
	end, err = c.Write(end, m, 3, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Load must pick the newer checkpoint.
	m2 := NewPageMap(m.Len())
	_, walLSN, _, err := c.Load(end, m2)
	if err != nil {
		t.Fatal(err)
	}
	if walLSN != 200 {
		t.Fatalf("walLSN = %d, want 200 (newest)", walLSN)
	}
	got, ok := m2.Lookup(1)
	if !ok || got != (ocssd.PPA{Group: 1, PU: 1, Chunk: 7, Sector: 42}) {
		t.Fatalf("newest mapping lost: %v %v", got, ok)
	}
	if c.Seq() != 2 {
		t.Fatalf("seq = %d", c.Seq())
	}
}

func TestCheckpointAlternatesSlots(t *testing.T) {
	c, m, _ := newCkptUnderTest(t)
	populate(m, 4)
	end := vclock.Time(0)
	var err error
	// Three checkpoints: slot usage 1,0,1 — all must stay loadable.
	for i := 1; i <= 3; i++ {
		end, err = c.Write(end, m, 3, LSN(i*10))
		if err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
	}
	m2 := NewPageMap(m.Len())
	_, walLSN, _, err := c.Load(end, m2)
	if err != nil {
		t.Fatal(err)
	}
	if walLSN != 30 {
		t.Fatalf("walLSN = %d, want 30", walLSN)
	}
}

func TestCheckpointSurvivesCrash(t *testing.T) {
	c, m, d := newCkptUnderTest(t)
	populate(m, 2)
	end, err := c.Write(0, m, 3, 777)
	if err != nil {
		t.Fatal(err)
	}
	d.Crash()
	m2 := NewPageMap(m.Len())
	_, walLSN, _, err := c.Load(end, m2)
	if err != nil {
		t.Fatalf("Load after crash: %v", err)
	}
	if walLSN != 777 {
		t.Fatalf("walLSN = %d", walLSN)
	}
}

func TestCheckpointSlotValidation(t *testing.T) {
	d, ctrl := testDevice(t, ocssd.Options{Seed: 1})
	_, err := NewCheckpointer(d, ctrl, [2][]ocssd.ChunkID{{}, {{Group: 0, PU: 0, Chunk: 0}}}, CheckpointConfig{})
	if err == nil {
		t.Fatal("empty slot should be rejected")
	}
}

func TestCheckpointTooBigForSlot(t *testing.T) {
	d, ctrl := testDevice(t, ocssd.Options{Seed: 1})
	// One chunk = 384 KB; a map needing more must be rejected.
	slots := [2][]ocssd.ChunkID{
		{{Group: 0, PU: 0, Chunk: 0}},
		{{Group: 1, PU: 0, Chunk: 0}},
	}
	c, err := NewCheckpointer(d, ctrl, slots, CheckpointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewPageMap(MapPageEntries * 200) // 200 pages × 4 KB = 800 KB
	if _, err := c.Write(0, m, 3, 0); err == nil {
		t.Fatal("oversized checkpoint should fail")
	}
}

func TestSlotBytesNeeded(t *testing.T) {
	if SlotBytesNeeded(0) != ckptHeaderLen+ckptTrailerLen {
		t.Fatal("empty snapshot size wrong")
	}
	if SlotBytesNeeded(2) != ckptHeaderLen+2*MapPageBytes+ckptTrailerLen {
		t.Fatal("snapshot size wrong")
	}
}
