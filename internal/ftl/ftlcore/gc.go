package ftlcore

import (
	"sync"

	"repro/internal/ocssd"
	"repro/internal/ox"
	"repro/internal/vclock"
)

// ReverseMap records which logical page wrote each physical sector, so
// garbage collection can find the mapping entry to relocate. (Hardware
// FTLs keep this in the page OOB area; we keep it in controller RAM.)
// Per-chunk slabs live in a dense array indexed by flat chunk index —
// no map buckets, no hashing — allocated lazily on first write to a
// chunk and returned to a free list when the chunk is dropped, so at
// steady state a chunk's lifetime allocates nothing.
type ReverseMap struct {
	mu    sync.Mutex
	idx   chunkIndex
	slabs [][]int64 // per chunk, nil until first Set
	pool  [][]int64 // recycled slabs from dropped chunks
	n     int       // sectors per chunk
}

// NewReverseMap creates a reverse map for the geometry.
func NewReverseMap(geo ocssd.Geometry) *ReverseMap {
	idx := newChunkIndex(geo)
	return &ReverseMap{idx: idx, slabs: make([][]int64, idx.total), n: geo.SectorsPerChunk()}
}

// Set records that lba's data lives at ppa.
func (r *ReverseMap) Set(ppa ocssd.PPA, lba int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	flat := r.idx.flat(ppa.ChunkOf())
	s := r.slabs[flat]
	if s == nil {
		if n := len(r.pool); n > 0 {
			s = r.pool[n-1]
			r.pool = r.pool[:n-1]
		} else {
			s = make([]int64, r.n)
		}
		for i := range s {
			s[i] = -1
		}
		r.slabs[flat] = s
	}
	s[ppa.Sector] = lba
}

// Get reports the logical page that wrote ppa, if known.
func (r *ReverseMap) Get(ppa ocssd.PPA) (int64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.slabs[r.idx.flat(ppa.ChunkOf())]
	if s == nil || s[ppa.Sector] < 0 {
		return 0, false
	}
	return s[ppa.Sector], true
}

// Drop forgets a chunk (after reset), recycling its slab.
func (r *ReverseMap) Drop(id ocssd.ChunkID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	flat := r.idx.flat(id)
	if s := r.slabs[flat]; s != nil {
		r.slabs[flat] = nil
		r.pool = append(r.pool, s)
	}
}

// GCConfig tunes garbage collection.
type GCConfig struct {
	// FreeThreshold triggers collection when the allocator's pool drops
	// below it; TargetFree is the level collection restores.
	FreeThreshold int
	TargetFree    int
	// CPUPerSectorMove is controller CPU charged per relocated sector.
	CPUPerSectorMove vclock.Duration
	// GlobalVictims disables group marking: victims are picked device-
	// wide, spreading interference everywhere (the ablation baseline for
	// the §4.3 locality numbers).
	GlobalVictims bool
}

// GCStats aggregates collection activity and the interference accounting
// behind §4.3's locality percentages.
type GCStats struct {
	Collections     int64
	ChunksReclaimed int64
	SectorsMoved    int64
	// TotalAppIOs counts all application I/Os; IOsDuringGC counts those
	// issued while a collection was running; AffectedAppIOs counts those
	// that also landed on the marked group. The §4.3 locality claim is
	// 1 - Affected/DuringGC: with group-marked GC, (groups-1)/groups of
	// the I/O issued during collection never contends with it.
	TotalAppIOs    int64
	IOsDuringGC    int64
	AffectedAppIOs int64
}

// UnaffectedFraction reports the share of in-collection-window I/O that
// did not touch the marked group (the §4.3 percentages: 93.7% at 16
// channels, 87.5% at 8).
func (s GCStats) UnaffectedFraction() float64 {
	if s.IOsDuringGC == 0 {
		return 1
	}
	return 1 - float64(s.AffectedAppIOs)/float64(s.IOsDuringGC)
}

type gcWindow struct {
	group      int
	start, end vclock.Time
}

// GC is the garbage-collection component of Figure 2. §4.3: "OX-Block
// marks a group for collection. Then, background threads recycle victim
// chunks within that group. This guarantees locality of interferences
// from garbage collection."
type GC struct {
	media ox.Media
	ctrl  *ox.Controller
	alloc *Allocator
	val   *Validity
	rmap  *ReverseMap
	cfg   GCConfig
	geo   ocssd.Geometry

	// BeforeReset, when set, runs after a victim's live sectors are
	// relocated and before the victim is erased. FTLs use it to make
	// their relocation log records durable: without it, a crash between
	// relocation and reset could replay a mapping that points into an
	// erased chunk.
	BeforeReset func(now vclock.Time, victim ocssd.ChunkID) (vclock.Time, error)

	mu         sync.Mutex
	idx        chunkIndex
	candidates chunkSet        // closed data chunks, 1 bit per chunk
	dst        []ocssd.ChunkID // open GC destination per group
	dstOpen    []bool
	dstWP      []int
	reclaim    []int // pickGroup scratch, one counter per group
	marked     int   // group under collection; -1 when idle
	windows    []gcWindow
	samples    []gcSample
	stats      GCStats
}

// gcSample is one recorded application I/O for interference accounting.
type gcSample struct {
	group int
	at    vclock.Time
}

// NewGC builds the collector.
func NewGC(media ox.Media, ctrl *ox.Controller, alloc *Allocator, val *Validity, rmap *ReverseMap, cfg GCConfig) *GC {
	if cfg.CPUPerSectorMove <= 0 {
		cfg.CPUPerSectorMove = 2 * vclock.Microsecond
	}
	if cfg.TargetFree < cfg.FreeThreshold {
		cfg.TargetFree = cfg.FreeThreshold
	}
	geo := media.Geometry()
	idx := newChunkIndex(geo)
	return &GC{
		media:      media,
		ctrl:       ctrl,
		alloc:      alloc,
		val:        val,
		rmap:       rmap,
		cfg:        cfg,
		geo:        geo,
		idx:        idx,
		candidates: newChunkSet(idx.total),
		dst:        make([]ocssd.ChunkID, geo.Groups),
		dstOpen:    make([]bool, geo.Groups),
		dstWP:      make([]int, geo.Groups),
		reclaim:    make([]int, geo.Groups),
		marked:     -1,
	}
}

// AddCandidate registers a closed data chunk as collectable.
func (g *GC) AddCandidate(id ocssd.ChunkID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.candidates.add(g.idx.flat(id))
}

// CandidateCount reports the number of collectable chunks.
func (g *GC) CandidateCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.candidates.count()
}

// MarkedGroup reports the group currently marked for collection (-1 if
// none).
func (g *GC) MarkedGroup() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.marked
}

// Stats returns a snapshot of the collector statistics, including the
// interference accounting (recomputed from the recorded I/O samples and
// collection windows).
func (g *GC) Stats() GCStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.stats
	s.IOsDuringGC, s.AffectedAppIOs = 0, 0
	if len(g.windows) == 0 || len(g.samples) == 0 {
		return s
	}
	// Windows may overlap in virtual time (a collection starts at its
	// trigger's clock while the previous one is still draining), so scan
	// them all; there are few.
	for _, smp := range g.samples {
		in, hit := false, false
		for _, w := range g.windows {
			if smp.at >= w.start && smp.at < w.end {
				in = true
				if w.group == smp.group || w.group < 0 {
					hit = true
					break
				}
			}
		}
		if in {
			s.IOsDuringGC++
			if hit {
				s.AffectedAppIOs++
			}
		}
	}
	return s
}

// NoteAppIO records an application I/O to a group at a virtual instant.
// Overlap with collection windows is computed lazily in Stats, because a
// window covering this instant may be recorded (in real time) after the
// I/O is noted.
func (g *GC) NoteAppIO(group int, at vclock.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.stats.TotalAppIOs++
	if len(g.samples) < 1<<20 { // bound memory on very long runs
		g.samples = append(g.samples, gcSample{group: group, at: at})
	}
}

// Needed reports whether the free pool is below the collection threshold.
func (g *GC) Needed() bool {
	return g.alloc.FreeCount() < g.cfg.FreeThreshold
}

// Collect runs collection until the free pool reaches TargetFree or no
// profitable candidates remain. It marks one group at a time (the one
// with the most reclaimable space), collects it, and re-marks the next
// group if the target is still unmet — collection stays local at any
// instant, which is the §4.3 isolation property, while still being able
// to drain garbage device-wide. remap is called for each relocated live
// sector to update the mapping table; it returns false if the sector
// died in the meantime (the relocation is then abandoned harmlessly).
func (g *GC) Collect(now vclock.Time, remap func(lba int64, old, new ocssd.PPA) bool) (vclock.Time, error) {
	if !g.Needed() {
		return now, nil
	}
	end := now
	counted := false
	for g.alloc.FreeCount() < g.cfg.TargetFree {
		group := g.pickGroup()
		if group < 0 {
			break
		}
		if !counted {
			g.mu.Lock()
			g.stats.Collections++
			g.mu.Unlock()
			counted = true
		}
		windowGroup := group
		if g.cfg.GlobalVictims {
			// Without marking, collection traffic can land anywhere:
			// every in-window I/O is potentially affected.
			windowGroup = -1
		}
		g.mu.Lock()
		g.marked = group
		g.mu.Unlock()
		phaseStart := end
		progress := false
		for g.alloc.FreeCount() < g.cfg.TargetFree {
			victim, ok := g.pickVictim(group)
			if !ok {
				break
			}
			var err error
			end, err = g.collectChunk(end, victim, remap)
			if err != nil {
				g.mu.Lock()
				g.windows = append(g.windows, gcWindow{group: windowGroup, start: phaseStart, end: end})
				g.marked = -1
				g.mu.Unlock()
				return end, err
			}
			progress = true
		}
		g.mu.Lock()
		g.windows = append(g.windows, gcWindow{group: windowGroup, start: phaseStart, end: end})
		g.marked = -1
		g.mu.Unlock()
		if !progress {
			break
		}
	}
	return end, nil
}

// pickGroup marks the group with the most reclaimable sectors, counting
// only candidates above the profitability floor.
func (g *GC) pickGroup() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	reclaim := g.reclaim
	for i := range reclaim {
		reclaim[i] = 0
	}
	spc := g.geo.SectorsPerChunk()
	floor := spc - spc/minReclaimDenominator
	for flat := g.candidates.next(0); flat >= 0; flat = g.candidates.next(flat + 1) {
		v := g.val.ValidCount(g.idx.id(flat))
		if v > floor {
			continue
		}
		reclaim[flat/g.idx.perGroup] += spc - v
	}
	best, bestV := -1, 0
	for grp, v := range reclaim {
		if v > bestV {
			best, bestV = grp, v
		}
	}
	return best
}

// minReclaim is the profitability floor: a victim must have at least
// this fraction of its sectors dead, or collection would mostly copy
// live data around (write amplification without space gain).
const minReclaimDenominator = 8 // 1/8 of the chunk

// pickVictim selects the candidate with the fewest valid sectors, inside
// the marked group (or device-wide with GlobalVictims). Chunks without
// enough reclaimable space are never victims: moving a nearly-valid
// chunk frees (almost) nothing and only amplifies writes. The bitset
// scan runs in ascending flat order — which IS (group, pu, chunk)
// order — so keeping the first minimum seen gives the canonical
// lowest-identity tie-break with no comparator and no sort: victim
// choice, and therefore every downstream virtual-time result, is a
// pure function of the workload.
func (g *GC) pickVictim(group int) (ocssd.ChunkID, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	lo, hi := 0, g.idx.total
	if !g.cfg.GlobalVictims {
		lo = group * g.idx.perGroup
		hi = lo + g.idx.perGroup
	}
	spc := g.geo.SectorsPerChunk()
	floor := spc - spc/minReclaimDenominator
	bestFlat, bestValid := -1, -1
	for flat := g.candidates.next(lo); flat >= 0 && flat < hi; flat = g.candidates.next(flat + 1) {
		v := g.val.ValidCount(g.idx.id(flat))
		if v > floor {
			continue
		}
		if bestValid < 0 || v < bestValid {
			bestFlat, bestValid = flat, v
		}
	}
	if bestFlat < 0 {
		return ocssd.ChunkID{}, false
	}
	return g.idx.id(bestFlat), true
}

// collectChunk relocates the victim's live sectors into a destination
// chunk in the same group (device-side copy: no host data movement),
// remaps them, then resets the victim.
func (g *GC) collectChunk(now vclock.Time, victim ocssd.ChunkID, remap func(int64, ocssd.PPA, ocssd.PPA) bool) (vclock.Time, error) {
	end := now
	valids := g.val.ValidSectors(victim)
	if len(valids) > 0 {
		// Round the copy up to a ws_min multiple by appending stale
		// sectors; the extras are never remapped so they are dead on
		// arrival in the destination.
		src := valids
		if rem := len(src) % g.geo.WSMin; rem != 0 {
			pad := g.geo.WSMin - rem
			src = append(append([]ocssd.PPA(nil), valids...), make([]ocssd.PPA, pad)...)
			for i := 0; i < pad; i++ {
				src[len(valids)+i] = victim.PPAOf(i)
			}
		}
		moved := 0
		for moved < len(src) {
			dst, room, err := g.destination(victim.Group)
			if err != nil {
				return end, err
			}
			take := len(src) - moved
			if take > room {
				take = room - room%g.geo.WSMin
				if take == 0 {
					continue
				}
			}
			startSector, e, err := g.media.Copy(end, src[moved:moved+take], dst)
			if err != nil {
				return end, err
			}
			end = e
			end = g.ctrl.CPUWork(end, vclock.Duration(take)*g.cfg.CPUPerSectorMove)
			g.ctrl.NoteControllerIO()
			for i := 0; i < take; i++ {
				srcIdx := moved + i
				if srcIdx >= len(valids) {
					break // ws_min round-up filler
				}
				old := src[srcIdx]
				movedTo := dst.PPAOf(startSector + i)
				lba, known := g.rmap.Get(old)
				if known && remap(lba, old, movedTo) {
					g.val.MarkValid(movedTo)
					g.rmap.Set(movedTo, lba)
				}
				g.val.MarkInvalid(old)
			}
			g.mu.Lock()
			g.dstWP[victim.Group] += take
			g.stats.SectorsMoved += int64(take)
			g.mu.Unlock()
			moved += take
		}
	}
	if g.BeforeReset != nil {
		e, err := g.BeforeReset(end, victim)
		if err != nil {
			return end, err
		}
		end = e
	}
	// Reset the victim and recycle it.
	end2, err := g.alloc.Release(end, victim)
	if err == nil {
		end = end2
	}
	g.val.Drop(victim)
	g.rmap.Drop(victim)
	g.mu.Lock()
	g.candidates.remove(g.idx.flat(victim))
	g.stats.ChunksReclaimed++
	g.mu.Unlock()
	return end, nil
}

// destination returns the open GC destination chunk for a group and its
// remaining room, allocating one (in-group, for locality) as needed. A
// filled destination becomes a collection candidate itself.
func (g *GC) destination(group int) (ocssd.ChunkID, int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	spc := g.geo.SectorsPerChunk()
	if g.dstOpen[group] {
		if room := spc - g.dstWP[group]; room > 0 {
			return g.dst[group], room, nil
		}
		g.candidates.add(g.idx.flat(g.dst[group]))
		g.dstOpen[group] = false
	}
	id, err := g.alloc.Alloc(InGroup(group))
	if err != nil {
		// The marked group is exhausted: fall back to any group rather
		// than stalling collection (sacrifices locality, keeps liveness).
		id, err = g.alloc.Alloc(AnyTarget())
		if err != nil {
			return ocssd.ChunkID{}, 0, err
		}
	}
	g.dst[group] = id
	g.dstOpen[group] = true
	g.dstWP[group] = 0
	return id, spc, nil
}
