package ftlcore

import (
	"testing"

	"repro/internal/ocssd"
	"repro/internal/vclock"
)

// gcHarness wires a device, allocator, validity, reverse map, a page map
// and a GC into a miniature write path for testing collection.
type gcHarness struct {
	t     *testing.T
	d     *ocssd.Device
	alloc *Allocator
	val   *Validity
	rmap  *ReverseMap
	pmap  *PageMap
	gc    *GC
	geo   ocssd.Geometry
	now   vclock.Time
}

func newGCHarness(t *testing.T, cfg GCConfig) *gcHarness {
	d, ctrl := testDevice(t, ocssd.Options{Seed: 1})
	geo := d.Geometry()
	alloc := NewAllocator(d, nil)
	val := NewValidity(geo)
	rmap := NewReverseMap(geo)
	pmap := NewPageMap(4096)
	return &gcHarness{
		t: t, d: d, alloc: alloc, val: val, rmap: rmap, pmap: pmap,
		gc:  NewGC(d, ctrl, alloc, val, rmap, cfg),
		geo: geo,
	}
}

// fillChunk writes a whole chunk, mapping its sectors to the logical
// pages [lbaBase, lbaBase+sectorsPerChunk).
func (h *gcHarness) fillChunk(id ocssd.ChunkID, lbaBase int64) {
	h.t.Helper()
	n := h.geo.SectorsPerChunk()
	data := make([]byte, n*h.geo.Chip.SectorSize)
	for i := range data {
		data[i] = byte(lbaBase)
	}
	start, end, err := h.d.Append(h.now, id, data)
	if err != nil {
		h.t.Fatal(err)
	}
	h.now = end
	for s := 0; s < n; s++ {
		ppa := id.PPAOf(start + s)
		lba := lbaBase + int64(s)
		old, had, err := h.pmap.Update(lba, ppa)
		if err != nil {
			h.t.Fatal(err)
		}
		if had {
			h.val.MarkInvalid(old)
		}
		h.val.MarkValid(ppa)
		h.rmap.Set(ppa, lba)
	}
	h.gc.AddCandidate(id)
}

// remap is the mapping-update callback the owner would pass to Collect.
func (h *gcHarness) remap(lba int64, old, new ocssd.PPA) bool {
	cur, ok := h.pmap.Lookup(lba)
	if !ok || cur != old {
		return false
	}
	if _, _, err := h.pmap.Update(lba, new); err != nil {
		return false
	}
	return true
}

func TestGCCollectReclaimsDeadChunks(t *testing.T) {
	h := newGCHarness(t, GCConfig{FreeThreshold: 40, TargetFree: 40})
	// Fill two chunks with the SAME logical pages: the first becomes
	// fully dead.
	c0, _ := h.alloc.Alloc(InGroup(0))
	c1, _ := h.alloc.Alloc(InGroup(0))
	h.fillChunk(c0, 0)
	h.fillChunk(c1, 0) // overwrites all of c0's pages
	if h.val.ValidCount(c0) != 0 {
		t.Fatalf("c0 valid = %d, want 0", h.val.ValidCount(c0))
	}
	free := h.alloc.FreeCount()
	end, err := h.gc.Collect(h.now, h.remap)
	if err != nil {
		t.Fatal(err)
	}
	if h.alloc.FreeCount() <= free {
		t.Fatal("collection reclaimed nothing")
	}
	s := h.gc.Stats()
	if s.ChunksReclaimed == 0 || s.Collections != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// A fully dead chunk must not move any sectors.
	if s.SectorsMoved != 0 && h.val.ValidCount(c0) == 0 && s.ChunksReclaimed == 1 {
		t.Fatalf("dead chunk moved %d sectors", s.SectorsMoved)
	}
	if end < h.now {
		t.Fatal("time went backwards")
	}
}

func TestGCPreservesLiveData(t *testing.T) {
	h := newGCHarness(t, GCConfig{FreeThreshold: 64, TargetFree: 64})
	// Fill chunk A, then overwrite half its pages into chunk B: A is
	// half live. GC must relocate the live half and keep reads correct.
	cA, _ := h.alloc.Alloc(InGroup(0))
	h.fillChunk(cA, 0)
	n := h.geo.SectorsPerChunk()
	half := n / 2
	cB, _ := h.alloc.Alloc(InGroup(0))
	dataB := make([]byte, half*h.geo.Chip.SectorSize)
	for i := range dataB {
		dataB[i] = 0xBB
	}
	startB, end, err := h.d.Append(h.now, cB, dataB)
	if err != nil {
		t.Fatal(err)
	}
	h.now = end
	for s := 0; s < half; s++ {
		ppa := cB.PPAOf(startB + s)
		lba := int64(s) // overwrite first half
		old, had, _ := h.pmap.Update(lba, ppa)
		if had {
			h.val.MarkInvalid(old)
		}
		h.val.MarkValid(ppa)
		h.rmap.Set(ppa, lba)
	}
	if h.val.ValidCount(cA) != n-half {
		t.Fatalf("cA valid = %d, want %d", h.val.ValidCount(cA), n-half)
	}

	if _, err := h.gc.Collect(h.now, h.remap); err != nil {
		t.Fatal(err)
	}
	if h.gc.Stats().SectorsMoved == 0 {
		t.Fatal("live sectors should have moved")
	}
	// Every logical page must still read its value through the map.
	for lba := int64(half); lba < int64(n); lba++ {
		ppa, ok := h.pmap.Lookup(lba)
		if !ok {
			t.Fatalf("lba %d lost its mapping", lba)
		}
		buf := make([]byte, h.geo.Chip.SectorSize)
		if _, err := h.d.VectorRead(h.now+vclock.Time(vclock.Second), []ocssd.PPA{ppa}, buf); err != nil {
			t.Fatalf("read lba %d at %v: %v", lba, ppa, err)
		}
		if buf[0] != 0 { // fillChunk wrote byte(lbaBase)=0
			t.Fatalf("lba %d data corrupted: %x", lba, buf[0])
		}
	}
}

func TestGCGroupMarkingLocality(t *testing.T) {
	h := newGCHarness(t, GCConfig{FreeThreshold: 64, TargetFree: 64})
	// Make group 0 rich in garbage; group 1 untouched.
	c0, _ := h.alloc.Alloc(InGroup(0))
	c1, _ := h.alloc.Alloc(InGroup(0))
	h.fillChunk(c0, 0)
	h.fillChunk(c1, 0)
	if _, err := h.gc.Collect(h.now, h.remap); err != nil {
		t.Fatal(err)
	}
	// All collection windows must be on group 0.
	h.gc.mu.Lock()
	windows := append([]gcWindow(nil), h.gc.windows...)
	h.gc.mu.Unlock()
	if len(windows) == 0 {
		t.Fatal("no collection window recorded")
	}
	for _, w := range windows {
		if w.group != 0 {
			t.Fatalf("collection marked group %d, want 0", w.group)
		}
	}
	if h.gc.MarkedGroup() != -1 {
		t.Fatal("mark should clear after collection")
	}
}

func TestGCInterferenceAccounting(t *testing.T) {
	h := newGCHarness(t, GCConfig{FreeThreshold: 64, TargetFree: 64})
	c0, _ := h.alloc.Alloc(InGroup(0))
	c1, _ := h.alloc.Alloc(InGroup(0))
	h.fillChunk(c0, 0)
	h.fillChunk(c1, 0)
	start := h.now
	end, err := h.gc.Collect(start, h.remap)
	if err != nil {
		t.Fatal(err)
	}
	mid := start + (end-start)/2
	// An app I/O to the marked group during the window is affected...
	h.gc.NoteAppIO(0, mid)
	// ...one to another group is not, and one outside the window is not.
	h.gc.NoteAppIO(1, mid)
	h.gc.NoteAppIO(0, end+vclock.Time(vclock.Second))
	s := h.gc.Stats()
	if s.TotalAppIOs != 3 {
		t.Fatalf("total = %d", s.TotalAppIOs)
	}
	if s.AffectedAppIOs != 1 {
		t.Fatalf("affected = %d, want 1", s.AffectedAppIOs)
	}
}

func TestGCNotNeededIsNoOp(t *testing.T) {
	h := newGCHarness(t, GCConfig{FreeThreshold: 1, TargetFree: 1})
	end, err := h.gc.Collect(5, h.remap)
	if err != nil || end != 5 {
		t.Fatalf("no-op collect: end=%v err=%v", end, err)
	}
	if h.gc.Stats().Collections != 0 {
		t.Fatal("no-op should not count a collection")
	}
	if h.gc.Needed() {
		t.Fatal("pool is full; GC should not be needed")
	}
}

func TestGCRoundUpCopiesStaleSector(t *testing.T) {
	// A chunk with a valid count that is not a ws_min multiple exercises
	// the round-up path; data must stay correct.
	h := newGCHarness(t, GCConfig{FreeThreshold: 64, TargetFree: 64})
	cA, _ := h.alloc.Alloc(InGroup(0))
	h.fillChunk(cA, 0)
	// Overwrite lbas 5..n+4: cA keeps exactly 5 valid sectors (not a
	// ws_min multiple), exercising the round-up path.
	cB, _ := h.alloc.Alloc(InGroup(0))
	h.fillChunk(cB, 5)
	if got := h.val.ValidCount(cA); got != 5 {
		t.Fatalf("cA valid = %d, want 5", got)
	}
	if _, err := h.gc.Collect(h.now, h.remap); err != nil {
		t.Fatal(err)
	}
	if h.gc.Stats().SectorsMoved < 5 {
		t.Fatalf("moved = %d, want >= 5", h.gc.Stats().SectorsMoved)
	}
	// The five surviving pages must still be mapped and readable.
	for lba := int64(0); lba < 5; lba++ {
		ppa, ok := h.pmap.Lookup(lba)
		if !ok {
			t.Fatalf("lba %d lost", lba)
		}
		buf := make([]byte, h.geo.Chip.SectorSize)
		if _, err := h.d.VectorRead(h.now+vclock.Time(vclock.Second), []ocssd.PPA{ppa}, buf); err != nil {
			t.Fatalf("read lba %d: %v", lba, err)
		}
	}
}

func TestGCGlobalVictimsAblation(t *testing.T) {
	h := newGCHarness(t, GCConfig{FreeThreshold: 64, TargetFree: 64, GlobalVictims: true})
	c0, _ := h.alloc.Alloc(InGroup(0))
	c1, _ := h.alloc.Alloc(InGroup(1))
	h.fillChunk(c0, 0)
	h.fillChunk(c1, 0) // kills c0's pages
	if _, err := h.gc.Collect(h.now, h.remap); err != nil {
		t.Fatal(err)
	}
	if h.gc.Stats().ChunksReclaimed == 0 {
		t.Fatal("global GC reclaimed nothing")
	}
}

func TestGCCandidateCount(t *testing.T) {
	h := newGCHarness(t, GCConfig{FreeThreshold: 0, TargetFree: 0})
	if h.gc.CandidateCount() != 0 {
		t.Fatal("fresh GC should have no candidates")
	}
	h.gc.AddCandidate(ocssd.ChunkID{Group: 0, PU: 0, Chunk: 1})
	if h.gc.CandidateCount() != 1 {
		t.Fatal("candidate not registered")
	}
}
