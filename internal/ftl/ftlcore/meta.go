package ftlcore

import (
	"math/bits"

	"repro/internal/ocssd"
)

// chunkIndex maps ChunkIDs onto a dense flat index space, group-major:
// flat(id) = (group·PUsPerGroup + pu)·ChunksPerPU + chunk. Ascending
// flat order is exactly (group, pu, chunk) lexicographic order, so
// scans over flat-indexed arrays visit chunks in the canonical
// deterministic order for free — the packed replacement for the
// map-iterate-then-tie-break the collector used to do.
type chunkIndex struct {
	pusPerGroup int
	chunksPerPU int
	perGroup    int // chunks per group
	total       int
}

func newChunkIndex(geo ocssd.Geometry) chunkIndex {
	return chunkIndex{
		pusPerGroup: geo.PUsPerGroup,
		chunksPerPU: geo.ChunksPerPU,
		perGroup:    geo.PUsPerGroup * geo.ChunksPerPU,
		total:       geo.TotalPUs() * geo.ChunksPerPU,
	}
}

// flat returns the dense index of id.
func (x chunkIndex) flat(id ocssd.ChunkID) int {
	return (id.Group*x.pusPerGroup+id.PU)*x.chunksPerPU + id.Chunk
}

// id returns the ChunkID at a dense index.
func (x chunkIndex) id(flat int) ocssd.ChunkID {
	return ocssd.ChunkID{
		Group: flat / x.perGroup,
		PU:    (flat % x.perGroup) / x.chunksPerPU,
		Chunk: flat % x.chunksPerPU,
	}
}

// chunkSet is a bitset over flat chunk indices: 1 bit per chunk where
// the map[ChunkID]struct{} it replaces paid ~50 bytes per entry, and
// membership scans are word-at-a-time in deterministic ascending
// order.
type chunkSet struct {
	words []uint64
	n     int
}

func newChunkSet(total int) chunkSet {
	return chunkSet{words: make([]uint64, (total+63)/64)}
}

func (s *chunkSet) add(flat int) {
	w, b := flat/64, uint(flat%64)
	if s.words[w]&(1<<b) == 0 {
		s.words[w] |= 1 << b
		s.n++
	}
}

func (s *chunkSet) remove(flat int) {
	w, b := flat/64, uint(flat%64)
	if s.words[w]&(1<<b) != 0 {
		s.words[w] &^= 1 << b
		s.n--
	}
}

func (s *chunkSet) count() int { return s.n }

// next returns the smallest member ≥ from, or -1 when none remains.
func (s *chunkSet) next(from int) int {
	if from < 0 {
		from = 0
	}
	w := from / 64
	if w >= len(s.words) {
		return -1
	}
	word := s.words[w] >> uint(from%64)
	if word != 0 {
		return from + bits.TrailingZeros64(word)
	}
	for w++; w < len(s.words); w++ {
		if s.words[w] != 0 {
			return w*64 + bits.TrailingZeros64(s.words[w])
		}
	}
	return -1
}
