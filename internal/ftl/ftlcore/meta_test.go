package ftlcore

import (
	"math/rand"
	"testing"

	"repro/internal/ocssd"
)

func metaGeo() ocssd.Geometry {
	g := ocssd.DefaultGeometry()
	g.Groups, g.PUsPerGroup, g.ChunksPerPU = 3, 4, 5
	return g
}

// Flat indices enumerate chunks in (group, pu, chunk) order — the
// property pickVictim's ascending scan relies on for its canonical
// tie-break.
func TestChunkIndexOrder(t *testing.T) {
	idx := newChunkIndex(metaGeo())
	prev := -1
	for g := 0; g < 3; g++ {
		for u := 0; u < 4; u++ {
			for c := 0; c < 5; c++ {
				id := ocssd.ChunkID{Group: g, PU: u, Chunk: c}
				f := idx.flat(id)
				if f != prev+1 {
					t.Fatalf("flat(%v) = %d, want %d", id, f, prev+1)
				}
				if got := idx.id(f); got != id {
					t.Fatalf("id(%d) = %v, want %v", f, got, id)
				}
				prev = f
			}
		}
	}
	if idx.total != prev+1 {
		t.Fatalf("total = %d, want %d", idx.total, prev+1)
	}
}

// The bitset agrees with a reference map over a random add/remove/scan
// sequence: same count, same membership, and next() enumerates exactly
// the members in ascending order.
func TestChunkSetMatchesMap(t *testing.T) {
	const n = 333
	s := newChunkSet(n)
	ref := make(map[int]bool)
	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 5000; step++ {
		f := rng.Intn(n)
		if rng.Intn(2) == 0 {
			s.add(f)
			ref[f] = true
		} else {
			s.remove(f)
			delete(ref, f)
		}
	}
	if s.count() != len(ref) {
		t.Fatalf("count = %d, want %d", s.count(), len(ref))
	}
	got := 0
	last := -1
	for f := s.next(0); f >= 0; f = s.next(f + 1) {
		if !ref[f] {
			t.Fatalf("next yielded non-member %d", f)
		}
		if f <= last {
			t.Fatalf("next not ascending: %d after %d", f, last)
		}
		last = f
		got++
	}
	if got != len(ref) {
		t.Fatalf("next enumerated %d members, want %d", got, len(ref))
	}
	// Double add/remove must not skew the count.
	s.remove(7)
	c := s.count()
	s.add(7)
	s.add(7)
	if s.count() != c+1 {
		t.Fatalf("double add skewed count: %d, want %d", s.count(), c+1)
	}
	s.remove(7)
	s.remove(7)
	if s.count() != c {
		t.Fatalf("double remove skewed count: %d, want %d", s.count(), c)
	}
}
