// Package ftlcore is the paper's primary contribution in library form:
// the modular FTL of Figure 2. It provides the components that §4.1
// names — mapping, provisioning, caching, recovery log (WAL), checkpoint
// process, garbage collection and bad block management — as composable
// pieces that the three FTLs of §4.2 (OX-Block, OX-ELEOS, LightLSM) are
// built from.
package ftlcore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/ocssd"
)

// unmapped is the sentinel for an unmapped LBA entry.
const unmapped = ^uint64(0)

// MapPageEntries is the number of 8-byte entries per mapping page; one
// mapping page serializes to exactly 4 KB, the paper's read granularity.
const MapPageEntries = 512

// MapPageBytes is the serialized size of one mapping page.
const MapPageBytes = MapPageEntries * 8

// PageMap is the page-level mapping table of OX-Block (§4.2: "OX-Block
// maintains a 4KB-granularity page-level mapping table"). Entries map a
// logical page number to a packed PPA. The map tracks which 4 KB mapping
// pages are dirty since the last checkpoint, so the checkpoint process
// (Figure 2: "mapping and block metadata may be persisted during
// checkpoint process") can persist them.
type PageMap struct {
	mu      sync.RWMutex
	entries []uint64
	// dirty is a bitset over mapping-page indexes (bit p = mapping page
	// p dirtied since the last ClearDirty). A bitset keeps the write
	// hot path allocation-free and makes DirtyPages deterministic
	// (ascending), unlike the map it replaces.
	dirty  []uint64
	ndirty int
}

// NewPageMap creates a mapping table for n logical pages.
func NewPageMap(n int) *PageMap {
	m := &PageMap{
		entries: make([]uint64, n),
	}
	m.dirty = make([]uint64, (m.Pages()+63)/64)
	for i := range m.entries {
		m.entries[i] = unmapped
	}
	return m
}

// markDirty sets the dirty bit of one mapping page. Caller holds m.mu.
func (m *PageMap) markDirty(page int) {
	w, b := page/64, uint(page%64)
	if m.dirty[w]&(1<<b) == 0 {
		m.dirty[w] |= 1 << b
		m.ndirty++
	}
}

// Len reports the number of logical pages.
func (m *PageMap) Len() int { return len(m.entries) }

// Pages reports the number of 4 KB mapping pages (ceil division).
func (m *PageMap) Pages() int { return (len(m.entries) + MapPageEntries - 1) / MapPageEntries }

// Lookup returns the PPA mapped to the logical page, if any.
func (m *PageMap) Lookup(lpn int64) (ocssd.PPA, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if lpn < 0 || lpn >= int64(len(m.entries)) {
		return ocssd.PPA{}, false
	}
	v := m.entries[lpn]
	if v == unmapped {
		return ocssd.PPA{}, false
	}
	return ocssd.Unpack(v), true
}

// Update maps the logical page to ppa and returns the previous mapping
// (used by validity accounting to invalidate the old physical sector).
func (m *PageMap) Update(lpn int64, ppa ocssd.PPA) (old ocssd.PPA, hadOld bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if lpn < 0 || lpn >= int64(len(m.entries)) {
		return ocssd.PPA{}, false, fmt.Errorf("ftlcore: lpn %d out of range [0,%d)", lpn, len(m.entries))
	}
	v := m.entries[lpn]
	m.entries[lpn] = ppa.Pack()
	m.markDirty(int(lpn / MapPageEntries))
	if v == unmapped {
		return ocssd.PPA{}, false, nil
	}
	return ocssd.Unpack(v), true, nil
}

// Unmap removes the mapping for a logical page (trim), returning the
// previous mapping if there was one.
func (m *PageMap) Unmap(lpn int64) (old ocssd.PPA, hadOld bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if lpn < 0 || lpn >= int64(len(m.entries)) {
		return ocssd.PPA{}, false, fmt.Errorf("ftlcore: lpn %d out of range [0,%d)", lpn, len(m.entries))
	}
	v := m.entries[lpn]
	m.entries[lpn] = unmapped
	m.markDirty(int(lpn / MapPageEntries))
	if v == unmapped {
		return ocssd.PPA{}, false, nil
	}
	return ocssd.Unpack(v), true, nil
}

// DirtyPages returns the mapping-page indexes dirtied since the last
// ClearDirty, in ascending order.
func (m *PageMap) DirtyPages() []int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]int, 0, m.ndirty)
	for w, word := range m.dirty {
		for word != 0 {
			out = append(out, w*64+bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
	return out
}

// ClearDirty forgets dirtiness for the given mapping pages (after a
// checkpoint persisted them).
func (m *PageMap) ClearDirty(pages []int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range pages {
		if p < 0 || p >= len(m.dirty)*64 {
			continue
		}
		w, b := p/64, uint(p%64)
		if m.dirty[w]&(1<<b) != 0 {
			m.dirty[w] &^= 1 << b
			m.ndirty--
		}
	}
}

// SerializePage renders mapping page idx as exactly MapPageBytes bytes.
func (m *PageMap) SerializePage(idx int) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if idx < 0 || idx >= m.Pages() {
		return nil, fmt.Errorf("ftlcore: mapping page %d out of range", idx)
	}
	out := make([]byte, MapPageBytes)
	base := idx * MapPageEntries
	for i := 0; i < MapPageEntries; i++ {
		var v uint64 = unmapped
		if base+i < len(m.entries) {
			v = m.entries[base+i]
		}
		binary.LittleEndian.PutUint64(out[i*8:], v)
	}
	return out, nil
}

// LoadPage installs a serialized mapping page (recovery path).
func (m *PageMap) LoadPage(idx int, data []byte) error {
	if len(data) != MapPageBytes {
		return fmt.Errorf("ftlcore: mapping page payload %d bytes, want %d", len(data), MapPageBytes)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if idx < 0 || idx >= m.Pages() {
		return fmt.Errorf("ftlcore: mapping page %d out of range", idx)
	}
	base := idx * MapPageEntries
	for i := 0; i < MapPageEntries && base+i < len(m.entries); i++ {
		m.entries[base+i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	return nil
}

// MappedCount reports how many logical pages are currently mapped.
func (m *PageMap) MappedCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := 0
	for _, v := range m.entries {
		if v != unmapped {
			n++
		}
	}
	return n
}

// ErrVarEntry is returned for malformed variable-size map entries.
var ErrVarEntry = errors.New("ftlcore: invalid variable-size mapping entry")

// VarEntry is a variable-size mapping target: a byte extent within the
// physical log. §4.2 (OX-ELEOS): "with variable-sized pages of an
// arbitrary number of bytes, mapping becomes more challenging ...
// application-specific FTLs might require mapping at a granularity which
// is smaller than the unit of read on an Open-Channel SSD."
type VarEntry struct {
	PPA    ocssd.PPA // sector containing the first byte
	Offset int       // byte offset within that sector
	Length int       // extent length in bytes (may span sectors)
}

// VarMap maps logical page IDs to variable-size extents (OX-ELEOS).
type VarMap struct {
	mu      sync.RWMutex
	entries map[int64]VarEntry
}

// NewVarMap creates an empty variable-size mapping table.
func NewVarMap() *VarMap {
	return &VarMap{entries: make(map[int64]VarEntry)}
}

// Lookup returns the extent for a logical page ID.
func (m *VarMap) Lookup(id int64) (VarEntry, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	e, ok := m.entries[id]
	return e, ok
}

// Update maps a logical page ID to an extent.
func (m *VarMap) Update(id int64, e VarEntry) error {
	if e.Length <= 0 || e.Offset < 0 {
		return ErrVarEntry
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries[id] = e
	return nil
}

// Delete removes a logical page ID.
func (m *VarMap) Delete(id int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.entries, id)
}

// Len reports the number of mapped extents.
func (m *VarMap) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.entries)
}
