package ftlcore

import (
	"testing"
	"testing/quick"

	"repro/internal/ocssd"
)

func TestPageMapLookupUpdate(t *testing.T) {
	m := NewPageMap(1000)
	if m.Len() != 1000 {
		t.Fatalf("len = %d", m.Len())
	}
	if _, ok := m.Lookup(5); ok {
		t.Fatal("fresh map should be unmapped")
	}
	ppa := ocssd.PPA{Group: 1, PU: 2, Chunk: 3, Sector: 4}
	old, had, err := m.Update(5, ppa)
	if err != nil || had {
		t.Fatalf("first update: old=%v had=%v err=%v", old, had, err)
	}
	got, ok := m.Lookup(5)
	if !ok || got != ppa {
		t.Fatalf("lookup = %v, %v", got, ok)
	}
	ppa2 := ocssd.PPA{Group: 0, PU: 0, Chunk: 1, Sector: 9}
	old, had, err = m.Update(5, ppa2)
	if err != nil || !had || old != ppa {
		t.Fatalf("second update: old=%v had=%v err=%v", old, had, err)
	}
	if m.MappedCount() != 1 {
		t.Fatalf("mapped = %d, want 1", m.MappedCount())
	}
}

func TestPageMapBounds(t *testing.T) {
	m := NewPageMap(10)
	if _, _, err := m.Update(-1, ocssd.PPA{}); err == nil {
		t.Fatal("negative lpn should fail")
	}
	if _, _, err := m.Update(10, ocssd.PPA{}); err == nil {
		t.Fatal("lpn == len should fail")
	}
	if _, ok := m.Lookup(-1); ok {
		t.Fatal("negative lookup should miss")
	}
	if _, _, err := m.Unmap(11); err == nil {
		t.Fatal("out-of-range unmap should fail")
	}
}

func TestPageMapUnmap(t *testing.T) {
	m := NewPageMap(10)
	ppa := ocssd.PPA{Chunk: 1, Sector: 2}
	if _, _, err := m.Update(3, ppa); err != nil {
		t.Fatal(err)
	}
	old, had, err := m.Unmap(3)
	if err != nil || !had || old != ppa {
		t.Fatalf("unmap: %v %v %v", old, had, err)
	}
	if _, ok := m.Lookup(3); ok {
		t.Fatal("lookup after unmap should miss")
	}
	if _, had, _ := m.Unmap(3); had {
		t.Fatal("double unmap should report no old mapping")
	}
}

func TestPageMapDirtyTracking(t *testing.T) {
	m := NewPageMap(MapPageEntries * 3)
	if len(m.DirtyPages()) != 0 {
		t.Fatal("fresh map should be clean")
	}
	m.Update(0, ocssd.PPA{Sector: 1})                       // page 0
	m.Update(int64(MapPageEntries), ocssd.PPA{Sector: 2})   // page 1
	m.Update(int64(MapPageEntries)+5, ocssd.PPA{Sector: 3}) // page 1 again
	dirty := m.DirtyPages()
	if len(dirty) != 2 {
		t.Fatalf("dirty = %v, want 2 pages", dirty)
	}
	m.ClearDirty(dirty)
	if len(m.DirtyPages()) != 0 {
		t.Fatal("clear dirty failed")
	}
	m.Unmap(0)
	if len(m.DirtyPages()) != 1 {
		t.Fatal("unmap should dirty its page")
	}
}

func TestPageMapSerializeRoundTrip(t *testing.T) {
	m := NewPageMap(MapPageEntries + 100) // 2 pages, second partial
	for i := int64(0); i < int64(m.Len()); i += 7 {
		m.Update(i, ocssd.PPA{Group: int(i % 4), Chunk: int(i % 50), Sector: int(i % 90)})
	}
	if m.Pages() != 2 {
		t.Fatalf("pages = %d", m.Pages())
	}
	m2 := NewPageMap(m.Len())
	for p := 0; p < m.Pages(); p++ {
		data, err := m.SerializePage(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != MapPageBytes {
			t.Fatalf("page %d serialized to %d bytes", p, len(data))
		}
		if err := m2.LoadPage(p, data); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < int64(m.Len()); i++ {
		a, okA := m.Lookup(i)
		b, okB := m2.Lookup(i)
		if okA != okB || a != b {
			t.Fatalf("entry %d: %v/%v vs %v/%v", i, a, okA, b, okB)
		}
	}
}

func TestPageMapSerializeBounds(t *testing.T) {
	m := NewPageMap(10)
	if _, err := m.SerializePage(-1); err == nil {
		t.Fatal("negative page should fail")
	}
	if _, err := m.SerializePage(1); err == nil {
		t.Fatal("page beyond end should fail")
	}
	if err := m.LoadPage(0, make([]byte, 10)); err == nil {
		t.Fatal("short payload should fail")
	}
	if err := m.LoadPage(5, make([]byte, MapPageBytes)); err == nil {
		t.Fatal("page index out of range should fail")
	}
}

// Property: the map behaves exactly like a Go map from lpn to PPA.
func TestPageMapModelProperty(t *testing.T) {
	const n = 256
	f := func(ops []struct {
		Lpn    uint16
		Sector uint16
		Del    bool
	}) bool {
		m := NewPageMap(n)
		model := make(map[int64]ocssd.PPA)
		for _, op := range ops {
			lpn := int64(op.Lpn % n)
			if op.Del {
				m.Unmap(lpn)
				delete(model, lpn)
			} else {
				ppa := ocssd.PPA{Sector: int(op.Sector)}
				m.Update(lpn, ppa)
				model[lpn] = ppa
			}
		}
		if m.MappedCount() != len(model) {
			return false
		}
		for lpn, want := range model {
			got, ok := m.Lookup(lpn)
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestVarMap(t *testing.T) {
	m := NewVarMap()
	if _, ok := m.Lookup(1); ok {
		t.Fatal("fresh varmap should miss")
	}
	e := VarEntry{PPA: ocssd.PPA{Chunk: 2, Sector: 5}, Offset: 100, Length: 777}
	if err := m.Update(1, e); err != nil {
		t.Fatal(err)
	}
	got, ok := m.Lookup(1)
	if !ok || got != e {
		t.Fatalf("lookup = %+v, %v", got, ok)
	}
	if m.Len() != 1 {
		t.Fatal("len wrong")
	}
	m.Delete(1)
	if _, ok := m.Lookup(1); ok {
		t.Fatal("delete failed")
	}
	// Invalid entries rejected.
	if err := m.Update(2, VarEntry{Length: 0}); err == nil {
		t.Fatal("zero length should be rejected")
	}
	if err := m.Update(2, VarEntry{Offset: -1, Length: 5}); err == nil {
		t.Fatal("negative offset should be rejected")
	}
}

func TestValidityTracking(t *testing.T) {
	geo := ocssd.DefaultGeometry()
	v := NewValidity(geo)
	id := ocssd.ChunkID{Group: 1, PU: 2, Chunk: 3}
	if v.ValidCount(id) != 0 {
		t.Fatal("fresh chunk should have 0 valid")
	}
	v.MarkValid(id.PPAOf(0))
	v.MarkValid(id.PPAOf(5))
	v.MarkValid(id.PPAOf(5)) // idempotent
	if v.ValidCount(id) != 2 {
		t.Fatalf("valid = %d, want 2", v.ValidCount(id))
	}
	sectors := v.ValidSectors(id)
	if len(sectors) != 2 || sectors[0].Sector != 0 || sectors[1].Sector != 5 {
		t.Fatalf("sectors = %v", sectors)
	}
	v.MarkInvalid(id.PPAOf(0))
	v.MarkInvalid(id.PPAOf(0)) // idempotent
	if v.ValidCount(id) != 1 {
		t.Fatalf("valid = %d, want 1", v.ValidCount(id))
	}
	if v.InvalidCount(id, 10) != 9 {
		t.Fatalf("invalid = %d, want 9", v.InvalidCount(id, 10))
	}
	v.Drop(id)
	if v.ValidCount(id) != 0 || v.ValidSectors(id) != nil {
		t.Fatal("drop failed")
	}
	// Marking invalid on an untracked chunk is a no-op.
	v.MarkInvalid(id.PPAOf(1))
	if v.ValidCount(id) != 0 {
		t.Fatal("invalid on untracked chunk should be no-op")
	}
}

// Property: valid count always equals the cardinality of the marked set.
func TestValidityCountProperty(t *testing.T) {
	geo := ocssd.DefaultGeometry()
	spc := geo.SectorsPerChunk()
	f := func(ops []struct {
		Sector  uint16
		Invalid bool
	}) bool {
		v := NewValidity(geo)
		id := ocssd.ChunkID{}
		model := make(map[int]bool)
		for _, op := range ops {
			s := int(op.Sector) % spc
			if op.Invalid {
				v.MarkInvalid(id.PPAOf(s))
				delete(model, s)
			} else {
				v.MarkValid(id.PPAOf(s))
				model[s] = true
			}
		}
		return v.ValidCount(id) == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReverseMap(t *testing.T) {
	geo := ocssd.DefaultGeometry()
	r := NewReverseMap(geo)
	ppa := ocssd.PPA{Group: 0, PU: 1, Chunk: 2, Sector: 3}
	if _, ok := r.Get(ppa); ok {
		t.Fatal("fresh rmap should miss")
	}
	r.Set(ppa, 42)
	lba, ok := r.Get(ppa)
	if !ok || lba != 42 {
		t.Fatalf("get = %d, %v", lba, ok)
	}
	r.Drop(ppa.ChunkOf())
	if _, ok := r.Get(ppa); ok {
		t.Fatal("drop failed")
	}
}
