package ftlcore

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ocssd"
	"repro/internal/ox"
	"repro/internal/vclock"
)

// ErrNoFreeChunks is returned when provisioning cannot satisfy a request.
var ErrNoFreeChunks = errors.New("ftlcore: no free chunks available")

// Target selects where a chunk should be provisioned. The zero value
// means "anywhere" (round-robin across all PUs, which is what horizontal
// striping wants); InGroup confines allocation to one group (vertical
// placement, Figure 4); InPU pins an exact parallel unit.
type Target struct {
	Group int // -1 = any
	PU    int // -1 = any within the group
}

// AnyTarget allocates anywhere, rotating across PUs for parallelism.
func AnyTarget() Target { return Target{Group: -1, PU: -1} }

// InGroup allocates within one group (vertical placement).
func InGroup(g int) Target { return Target{Group: g, PU: -1} }

// InPU allocates on one exact parallel unit.
func InPU(g, u int) Target { return Target{Group: g, PU: u} }

// allocGroup is the per-group shard of the free pool. FTL foreground
// allocation (WAL rotation, stripe writers) and background jobs (GC
// destinations, checkpoint slots) targeting different groups never
// contend on a lock, mirroring the device's per-PU sharding.
type allocGroup struct {
	mu   sync.Mutex
	free [][]int // [pu] -> stack of free chunk ids
	rrPU int     // round-robin cursor within the group
}

// Allocator is the provisioning component of Figure 2: it owns the free
// chunk pool, skips offline chunks (bad block management) and hands out
// chunks according to placement targets. The pool is sharded per group;
// the aggregate count is a lock-free atomic.
type Allocator struct {
	media ox.Media
	geo   ocssd.Geometry

	groups  []allocGroup
	nfree   atomic.Int64
	rrGroup atomic.Int64 // round-robin cursor for AnyTarget

	offMu   sync.Mutex
	idx     chunkIndex
	offline chunkSet // retired (bad) chunks, 1 bit per chunk
}

// NewAllocator builds an allocator over the media's current chunk report.
// Chunks in reserved are withheld (the FTL keeps them for its log,
// checkpoint area or superblock); offline chunks are never handed out.
// Only chunks in the free state enter the pool: after a crash, closed or
// open chunks stay out until recovery explicitly frees them.
func NewAllocator(media ox.Media, reserved map[ocssd.ChunkID]bool) *Allocator {
	geo := media.Geometry()
	idx := newChunkIndex(geo)
	a := &Allocator{
		media:   media,
		geo:     geo,
		groups:  make([]allocGroup, geo.Groups),
		idx:     idx,
		offline: newChunkSet(idx.total),
	}
	for g := range a.groups {
		a.groups[g].free = make([][]int, geo.PUsPerGroup)
	}
	for _, ci := range media.Report() {
		switch {
		case ci.State == ocssd.ChunkOffline:
			a.offline.add(idx.flat(ci.ID))
		case reserved[ci.ID]:
			// withheld
		case ci.State == ocssd.ChunkFree:
			grp := &a.groups[ci.ID.Group]
			grp.free[ci.ID.PU] = append(grp.free[ci.ID.PU], ci.ID.Chunk)
			a.nfree.Add(1)
		}
	}
	return a
}

// FreeCount reports the number of chunks in the pool.
func (a *Allocator) FreeCount() int { return int(a.nfree.Load()) }

// FreeInGroup reports the number of free chunks in one group.
func (a *Allocator) FreeInGroup(g int) int {
	if g < 0 || g >= a.geo.Groups {
		return 0
	}
	grp := &a.groups[g]
	grp.mu.Lock()
	defer grp.mu.Unlock()
	n := 0
	for _, s := range grp.free {
		n += len(s)
	}
	return n
}

// Alloc takes a free chunk matching the target out of the pool.
func (a *Allocator) Alloc(t Target) (ocssd.ChunkID, error) {
	switch {
	case t.Group >= 0 && t.PU >= 0:
		if err := a.checkGroup(t.Group); err != nil {
			return ocssd.ChunkID{}, err
		}
		grp := &a.groups[t.Group]
		grp.mu.Lock()
		defer grp.mu.Unlock()
		return a.popPU(grp, t.Group, t.PU)
	case t.Group >= 0:
		if err := a.checkGroup(t.Group); err != nil {
			return ocssd.ChunkID{}, err
		}
		return a.popGroup(t.Group)
	default:
		// Round-robin across groups then PUs so consecutive allocations
		// stripe over all parallel units. The cursor advances with a CAS
		// so a concurrent allocator cannot lose the rotation (two racers
		// collapsing onto one group); on CAS failure the racer's newer
		// cursor wins. Single-threaded, this is the exact old rotation.
		start := a.rrGroup.Load()
		for i := 0; i < a.geo.Groups; i++ {
			g := (int(start) + i) % a.geo.Groups
			if id, err := a.popGroup(g); err == nil {
				a.rrGroup.CompareAndSwap(start, int64((g+1)%a.geo.Groups))
				return id, nil
			}
		}
		return ocssd.ChunkID{}, ErrNoFreeChunks
	}
}

func (a *Allocator) checkGroup(g int) error {
	if g < 0 || g >= a.geo.Groups {
		return fmt.Errorf("ftlcore: group %d out of range", g)
	}
	return nil
}

func (a *Allocator) popGroup(g int) (ocssd.ChunkID, error) {
	grp := &a.groups[g]
	grp.mu.Lock()
	defer grp.mu.Unlock()
	for i := 0; i < a.geo.PUsPerGroup; i++ {
		u := (grp.rrPU + i) % a.geo.PUsPerGroup
		if id, err := a.popPU(grp, g, u); err == nil {
			grp.rrPU = (u + 1) % a.geo.PUsPerGroup
			return id, nil
		}
	}
	return ocssd.ChunkID{}, ErrNoFreeChunks
}

// popPU pops one chunk off a PU stack. Caller holds the group lock.
func (a *Allocator) popPU(grp *allocGroup, g, u int) (ocssd.ChunkID, error) {
	if u < 0 || u >= a.geo.PUsPerGroup {
		return ocssd.ChunkID{}, fmt.Errorf("ftlcore: pu %d.%d out of range", g, u)
	}
	s := grp.free[u]
	if len(s) == 0 {
		return ocssd.ChunkID{}, ErrNoFreeChunks
	}
	c := s[len(s)-1]
	grp.free[u] = s[:len(s)-1]
	a.nfree.Add(-1)
	return ocssd.ChunkID{Group: g, PU: u, Chunk: c}, nil
}

// Release resets the chunk on media and returns it to the pool. A chunk
// that fails its reset is retired (bad block management).
func (a *Allocator) Release(now vclock.Time, id ocssd.ChunkID) (vclock.Time, error) {
	end, err := a.media.Reset(now, id)
	if err != nil {
		a.Retire(id)
		return end, err
	}
	a.ReturnFree(id)
	return end, nil
}

// ReturnFree puts an already-free chunk back into the pool without a
// reset (recovery uses this for chunks the report shows as free).
func (a *Allocator) ReturnFree(id ocssd.ChunkID) {
	grp := &a.groups[id.Group]
	grp.mu.Lock()
	grp.free[id.PU] = append(grp.free[id.PU], id.Chunk)
	grp.mu.Unlock()
	a.nfree.Add(1)
}

// Retire permanently removes a chunk from circulation (grown bad).
func (a *Allocator) Retire(id ocssd.ChunkID) {
	a.offMu.Lock()
	defer a.offMu.Unlock()
	a.offline.add(a.idx.flat(id))
}

// RetiredCount reports the number of chunks withheld as bad.
func (a *Allocator) RetiredCount() int {
	a.offMu.Lock()
	defer a.offMu.Unlock()
	return a.offline.count()
}

// StripeWriter appends data across a rotating set of open chunks, one
// per allocation target, giving the striped "horizontal" data path that
// OX-Block's logical log uses. Appends are ws_min multiples; each append
// goes to the next chunk in the rotation, so consecutive appends land on
// different parallel units and proceed concurrently.
type StripeWriter struct {
	media ox.Media
	alloc *Allocator
	geo   ocssd.Geometry
	t     Target
	width int // number of concurrently open chunks

	mu     sync.Mutex
	chunks []ocssd.ChunkID
	wps    []int
	next   int
}

// NewStripeWriter opens width chunks matching the target.
func NewStripeWriter(media ox.Media, alloc *Allocator, t Target, width int) (*StripeWriter, error) {
	if width <= 0 {
		return nil, errors.New("ftlcore: stripe width must be positive")
	}
	w := &StripeWriter{
		media:  media,
		alloc:  alloc,
		geo:    media.Geometry(),
		t:      t,
		width:  width,
		chunks: make([]ocssd.ChunkID, 0, width),
		wps:    make([]int, 0, width),
	}
	for i := 0; i < width; i++ {
		id, err := alloc.Alloc(t)
		if err != nil {
			return nil, err
		}
		w.chunks = append(w.chunks, id)
		w.wps = append(w.wps, 0)
	}
	return w, nil
}

// Append writes data (a ws_min multiple) to the next chunk in the
// rotation, allocating a replacement when a chunk fills. It returns the
// PPAs assigned to each written sector.
func (w *StripeWriter) Append(now vclock.Time, data []byte) ([]ocssd.PPA, vclock.Time, error) {
	secSize := w.geo.Chip.SectorSize
	n := len(data) / secSize
	if n == 0 || len(data)%secSize != 0 || n%w.geo.WSMin != 0 {
		return nil, now, fmt.Errorf("ftlcore: append of %d bytes is not a ws_min multiple", len(data))
	}
	w.mu.Lock()
	defer w.mu.Unlock()

	ppas := make([]ocssd.PPA, 0, n)
	end := now
	for len(data) > 0 {
		slot := w.next % w.width
		id := w.chunks[slot]
		room := w.geo.SectorsPerChunk() - w.wps[slot]
		if room == 0 {
			nid, err := w.alloc.Alloc(w.t)
			if err != nil {
				return nil, now, err
			}
			w.chunks[slot] = nid
			w.wps[slot] = 0
			id = nid
			room = w.geo.SectorsPerChunk()
		}
		take := n
		if take > room {
			take = room
		}
		// Keep appends ws_min aligned.
		take -= take % w.geo.WSMin
		if take == 0 {
			take = room // room is ws_min aligned by construction
		}
		start, e, err := w.media.Append(now, id, data[:take*secSize])
		if err != nil {
			return nil, now, err
		}
		if e > end {
			end = e
		}
		for s := 0; s < take; s++ {
			ppas = append(ppas, id.PPAOf(start+s))
		}
		w.wps[slot] += take
		data = data[take*secSize:]
		n -= take
		w.next++
	}
	return ppas, end, nil
}

// OpenChunks returns the chunks currently held open by the writer.
func (w *StripeWriter) OpenChunks() []ocssd.ChunkID {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]ocssd.ChunkID, len(w.chunks))
	copy(out, w.chunks)
	return out
}
