package ftlcore

import (
	"errors"
	"testing"

	"repro/internal/nand"
	"repro/internal/ocssd"
	"repro/internal/ox"
)

// testDevice returns a small device: 2 groups × 2 PUs × 8 chunks,
// 96 sectors per chunk (dual-plane TLC, ws_opt 24).
func testDevice(t *testing.T, opts ocssd.Options) (*ocssd.Device, *ox.Controller) {
	t.Helper()
	chip := nand.Geometry{
		Planes: 2, BlocksPerPlane: 8, PagesPerBlock: 12,
		SectorsPerPage: 4, SectorSize: 4096, Cell: nand.TLC,
	}
	geo := ocssd.Finish(ocssd.Geometry{
		Groups: 2, PUsPerGroup: 2, ChunksPerPU: 8, Chip: chip,
		ChannelMBps: 800, CacheMBps: 3200, CacheMB: 4, MaxOpenPerPU: 8,
	})
	d, err := ocssd.New(geo, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := ox.NewController(ox.DefaultConfig(), d)
	if err != nil {
		t.Fatal(err)
	}
	return d, ctrl
}

func TestAllocatorPoolAccounting(t *testing.T) {
	d, _ := testDevice(t, ocssd.Options{Seed: 1})
	a := NewAllocator(d, nil)
	if a.FreeCount() != 2*2*8 {
		t.Fatalf("free = %d, want 32", a.FreeCount())
	}
	id, err := a.Alloc(AnyTarget())
	if err != nil {
		t.Fatal(err)
	}
	if a.FreeCount() != 31 {
		t.Fatalf("free after alloc = %d", a.FreeCount())
	}
	// Returning requires the chunk to have been written (reset of a free
	// chunk errors); write a little first.
	data := make([]byte, d.Geometry().WSMin*d.Geometry().Chip.SectorSize)
	if _, _, err := d.Append(0, id, data); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Release(0, id); err != nil {
		t.Fatal(err)
	}
	if a.FreeCount() != 32 {
		t.Fatalf("free after release = %d", a.FreeCount())
	}
}

func TestAllocatorReservedWithheld(t *testing.T) {
	d, _ := testDevice(t, ocssd.Options{Seed: 1})
	reserved := map[ocssd.ChunkID]bool{
		{Group: 0, PU: 0, Chunk: 0}: true,
		{Group: 1, PU: 1, Chunk: 7}: true,
	}
	a := NewAllocator(d, reserved)
	if a.FreeCount() != 30 {
		t.Fatalf("free = %d, want 30", a.FreeCount())
	}
	// Exhaust the pool: the reserved chunks must never appear.
	for i := 0; i < 30; i++ {
		id, err := a.Alloc(AnyTarget())
		if err != nil {
			t.Fatal(err)
		}
		if reserved[id] {
			t.Fatalf("reserved chunk %v handed out", id)
		}
	}
	if _, err := a.Alloc(AnyTarget()); !errors.Is(err, ErrNoFreeChunks) {
		t.Fatalf("exhausted pool: %v", err)
	}
}

func TestAllocatorRoundRobinStripes(t *testing.T) {
	d, _ := testDevice(t, ocssd.Options{Seed: 1})
	a := NewAllocator(d, nil)
	// Four consecutive any-target allocations must hit 4 distinct PUs.
	seen := make(map[[2]int]bool)
	for i := 0; i < 4; i++ {
		id, err := a.Alloc(AnyTarget())
		if err != nil {
			t.Fatal(err)
		}
		seen[[2]int{id.Group, id.PU}] = true
	}
	if len(seen) != 4 {
		t.Fatalf("allocations covered %d PUs, want 4", len(seen))
	}
}

func TestAllocatorTargets(t *testing.T) {
	d, _ := testDevice(t, ocssd.Options{Seed: 1})
	a := NewAllocator(d, nil)
	for i := 0; i < 16; i++ {
		id, err := a.Alloc(InGroup(1))
		if err != nil {
			t.Fatal(err)
		}
		if id.Group != 1 {
			t.Fatalf("in-group alloc returned %v", id)
		}
	}
	if _, err := a.Alloc(InGroup(1)); !errors.Is(err, ErrNoFreeChunks) {
		t.Fatal("group 1 should be exhausted")
	}
	if a.FreeInGroup(1) != 0 || a.FreeInGroup(0) != 16 {
		t.Fatalf("free per group = %d/%d", a.FreeInGroup(0), a.FreeInGroup(1))
	}
	id, err := a.Alloc(InPU(0, 1))
	if err != nil || id.Group != 0 || id.PU != 1 {
		t.Fatalf("in-pu alloc = %v, %v", id, err)
	}
	if _, err := a.Alloc(InGroup(99)); err == nil {
		t.Fatal("out-of-range group should fail")
	}
	if _, err := a.Alloc(InPU(0, 99)); err == nil {
		t.Fatal("out-of-range PU should fail")
	}
}

func TestAllocatorSkipsOfflineChunks(t *testing.T) {
	d, _ := testDevice(t, ocssd.Options{Seed: 5, Reliability: nand.Reliability{FactoryBadRate: 0.3}})
	var offline int
	for _, ci := range d.Report() {
		if ci.State == ocssd.ChunkOffline {
			offline++
		}
	}
	if offline == 0 {
		t.Skip("seed produced no offline chunks")
	}
	a := NewAllocator(d, nil)
	if a.FreeCount() != 32-offline {
		t.Fatalf("free = %d, want %d", a.FreeCount(), 32-offline)
	}
	for {
		id, err := a.Alloc(AnyTarget())
		if err != nil {
			break
		}
		info, _ := d.Chunk(id)
		if info.State == ocssd.ChunkOffline {
			t.Fatalf("offline chunk %v handed out", id)
		}
	}
}

func TestAllocatorRetire(t *testing.T) {
	d, _ := testDevice(t, ocssd.Options{Seed: 1})
	a := NewAllocator(d, nil)
	a.Retire(ocssd.ChunkID{Group: 0, PU: 0, Chunk: 3})
	if a.RetiredCount() != 1 {
		t.Fatalf("retired = %d", a.RetiredCount())
	}
}

func TestStripeWriterStripesAcrossPUs(t *testing.T) {
	d, _ := testDevice(t, ocssd.Options{Seed: 1})
	a := NewAllocator(d, nil)
	w, err := NewStripeWriter(d, a, AnyTarget(), 4)
	if err != nil {
		t.Fatal(err)
	}
	geo := d.Geometry()
	unit := geo.WSOpt * geo.Chip.SectorSize
	puSeen := make(map[[2]int]bool)
	for i := 0; i < 4; i++ {
		ppas, _, err := w.Append(0, make([]byte, unit))
		if err != nil {
			t.Fatal(err)
		}
		if len(ppas) != geo.WSOpt {
			t.Fatalf("append returned %d ppas", len(ppas))
		}
		puSeen[[2]int{ppas[0].Group, ppas[0].PU}] = true
	}
	if len(puSeen) != 4 {
		t.Fatalf("4 appends covered %d PUs, want 4 (striping)", len(puSeen))
	}
}

func TestStripeWriterRotatesFullChunks(t *testing.T) {
	d, _ := testDevice(t, ocssd.Options{Seed: 1})
	a := NewAllocator(d, nil)
	w, err := NewStripeWriter(d, a, AnyTarget(), 1)
	if err != nil {
		t.Fatal(err)
	}
	geo := d.Geometry()
	chunkBytes := int(geo.ChunkBytes())
	// Write two chunks' worth through a width-1 writer.
	var ppas []ocssd.PPA
	for i := 0; i < 2; i++ {
		p, _, err := w.Append(0, make([]byte, chunkBytes))
		if err != nil {
			t.Fatal(err)
		}
		ppas = append(ppas, p...)
	}
	first := ppas[0].ChunkOf()
	second := ppas[len(ppas)-1].ChunkOf()
	if first == second {
		t.Fatal("writer did not rotate to a fresh chunk")
	}
	info, _ := d.Chunk(first)
	if info.State != ocssd.ChunkClosed {
		t.Fatalf("first chunk state = %v, want closed", info.State)
	}
}

func TestStripeWriterRejectsMisaligned(t *testing.T) {
	d, _ := testDevice(t, ocssd.Options{Seed: 1})
	a := NewAllocator(d, nil)
	w, err := NewStripeWriter(d, a, AnyTarget(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Append(0, make([]byte, 100)); err == nil {
		t.Fatal("misaligned append should fail")
	}
	if _, _, err := w.Append(0, nil); err == nil {
		t.Fatal("empty append should fail")
	}
	if _, err := NewStripeWriter(d, a, AnyTarget(), 0); err == nil {
		t.Fatal("zero width should fail")
	}
}

func TestStripeWriterSpansChunkBoundary(t *testing.T) {
	d, _ := testDevice(t, ocssd.Options{Seed: 1})
	a := NewAllocator(d, nil)
	w, err := NewStripeWriter(d, a, InPU(0, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	geo := d.Geometry()
	// Append 1.5 chunks in one call: must span two chunks.
	n := geo.SectorsPerChunk() + geo.SectorsPerChunk()/2
	ppas, _, err := w.Append(0, make([]byte, n*geo.Chip.SectorSize))
	if err != nil {
		t.Fatal(err)
	}
	if len(ppas) != n {
		t.Fatalf("got %d ppas, want %d", len(ppas), n)
	}
	chunks := make(map[ocssd.ChunkID]int)
	for _, p := range ppas {
		chunks[p.ChunkOf()]++
	}
	if len(chunks) != 2 {
		t.Fatalf("write spanned %d chunks, want 2", len(chunks))
	}
}
