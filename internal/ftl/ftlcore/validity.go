package ftlcore

import (
	"sync"

	"repro/internal/ocssd"
)

// Validity tracks, per chunk, which sectors hold live (mapped) data.
// The write path marks sectors valid when the mapping table points at
// them and invalid when an overwrite or trim unmaps them; garbage
// collection uses the counts to pick victims and the bitmaps to relocate
// only live sectors.
type Validity struct {
	geo ocssd.Geometry

	mu     sync.Mutex
	bitmap map[ocssd.ChunkID][]uint64
	valid  map[ocssd.ChunkID]int
}

// NewValidity creates an empty validity tracker for the geometry.
func NewValidity(geo ocssd.Geometry) *Validity {
	return &Validity{
		geo:    geo,
		bitmap: make(map[ocssd.ChunkID][]uint64),
		valid:  make(map[ocssd.ChunkID]int),
	}
}

func (v *Validity) words() int { return (v.geo.SectorsPerChunk() + 63) / 64 }

// MarkValid records that the sector at ppa holds live data.
func (v *Validity) MarkValid(ppa ocssd.PPA) {
	v.mu.Lock()
	defer v.mu.Unlock()
	id := ppa.ChunkOf()
	bm := v.bitmap[id]
	if bm == nil {
		bm = make([]uint64, v.words())
		v.bitmap[id] = bm
	}
	w, b := ppa.Sector/64, uint(ppa.Sector%64)
	if bm[w]&(1<<b) == 0 {
		bm[w] |= 1 << b
		v.valid[id]++
	}
}

// MarkInvalid records that the sector at ppa no longer holds live data.
func (v *Validity) MarkInvalid(ppa ocssd.PPA) {
	v.mu.Lock()
	defer v.mu.Unlock()
	id := ppa.ChunkOf()
	bm := v.bitmap[id]
	if bm == nil {
		return
	}
	w, b := ppa.Sector/64, uint(ppa.Sector%64)
	if bm[w]&(1<<b) != 0 {
		bm[w] &^= 1 << b
		v.valid[id]--
	}
}

// ValidCount reports the number of live sectors in a chunk.
func (v *Validity) ValidCount(id ocssd.ChunkID) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.valid[id]
}

// ValidSectors returns the PPAs of the live sectors of a chunk, in order.
func (v *Validity) ValidSectors(id ocssd.ChunkID) []ocssd.PPA {
	v.mu.Lock()
	defer v.mu.Unlock()
	bm := v.bitmap[id]
	if bm == nil {
		return nil
	}
	out := make([]ocssd.PPA, 0, v.valid[id])
	for s := 0; s < v.geo.SectorsPerChunk(); s++ {
		if bm[s/64]&(1<<uint(s%64)) != 0 {
			out = append(out, id.PPAOf(s))
		}
	}
	return out
}

// Drop forgets all state for a chunk (after it is reset).
func (v *Validity) Drop(id ocssd.ChunkID) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.bitmap, id)
	delete(v.valid, id)
}

// InvalidCount reports dead sectors in a chunk, given how many were
// written (the chunk's write pointer).
func (v *Validity) InvalidCount(id ocssd.ChunkID, written int) int {
	return written - v.ValidCount(id)
}
