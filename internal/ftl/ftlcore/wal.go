package ftlcore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"repro/internal/ocssd"
	"repro/internal/ox"
	"repro/internal/vclock"
)

// RecordType tags WAL records.
type RecordType uint8

// Record types. Zero is reserved: a zero type byte in the log stream
// means "padding — skip to the next stripe boundary".
const (
	recPad        RecordType = 0
	RecTxCommit   RecordType = 1 // payload: mapping updates of one transaction
	RecCheckpoint RecordType = 2 // payload: checkpoint sequence marker
	RecAppExtent  RecordType = 3 // payload: application-defined (OX-ELEOS)
	RecSegHeader  RecordType = 4 // payload: magic | epoch | startLSN; first record of every segment
	RecGCMove     RecordType = 5 // payload: mapping updates from a GC relocation
	RecTrim       RecordType = 6 // payload: unmapped logical pages
)

// segMagic identifies WAL segment header records when recovery scans the
// device for log chunks.
const segMagic = 0x4f584c4f47534547 // "OXLOGSEG"

// segHeaderPayloadLen is magic(8) + epoch(8) + startLSN(8).
const segHeaderPayloadLen = 24

// segHeaderEncodedLen is the on-log size of a segment header record.
const segHeaderEncodedLen = recHeaderLen + segHeaderPayloadLen + 4

// Record is one WAL entry.
type Record struct {
	Type    RecordType
	TxID    uint64
	Payload []byte
}

// recHeaderLen is type(1) + txid(8) + payloadLen(4); a crc32 (4 bytes)
// follows the payload.
const recHeaderLen = 1 + 8 + 4

// encodedLen reports the on-log size of a record.
func encodedLen(r Record) int { return recHeaderLen + len(r.Payload) + 4 }

func encodeRecord(dst []byte, r Record) int {
	dst[0] = byte(r.Type)
	binary.LittleEndian.PutUint64(dst[1:], r.TxID)
	binary.LittleEndian.PutUint32(dst[9:], uint32(len(r.Payload)))
	copy(dst[recHeaderLen:], r.Payload)
	n := recHeaderLen + len(r.Payload)
	binary.LittleEndian.PutUint32(dst[n:], crc32.ChecksumIEEE(dst[:n]))
	return n + 4
}

// decodeRecord parses one record from buf. ok=false means buf starts
// with padding or a torn/corrupt record (replay skips or stops there).
func decodeRecord(buf []byte) (Record, int, bool) {
	if len(buf) < recHeaderLen+4 || buf[0] == byte(recPad) {
		return Record{}, 0, false
	}
	plen := int(binary.LittleEndian.Uint32(buf[9:]))
	total := recHeaderLen + plen + 4
	if plen < 0 || total > len(buf) {
		return Record{}, 0, false
	}
	want := binary.LittleEndian.Uint32(buf[recHeaderLen+plen:])
	if crc32.ChecksumIEEE(buf[:recHeaderLen+plen]) != want {
		return Record{}, 0, false
	}
	r := Record{
		Type: RecordType(buf[0]),
		TxID: binary.LittleEndian.Uint64(buf[1:]),
	}
	if plen > 0 {
		r.Payload = append([]byte(nil), buf[recHeaderLen:recHeaderLen+plen]...)
	}
	return r, total, true
}

// LSN is a logical sequence number: the byte offset of a record in the
// logical log stream (monotonic across segment chunks; includes padding).
type LSN int64

// WAL errors.
var (
	ErrWALFull        = errors.New("ftlcore: WAL out of chunks")
	ErrRecordTooLarge = errors.New("ftlcore: record larger than a log segment")
	// ErrCorruptRecord reports a WAL record frame that fails its checksum
	// mid-log: later records exist in the segment, so this is corruption,
	// not the torn tail a power cut legitimately leaves at the end.
	ErrCorruptRecord = errors.New("ftlcore: corrupt WAL record")
)

// WALConfig tunes the recovery log.
type WALConfig struct {
	// Target selects where log chunks are provisioned.
	Target Target
	// CPUPerRecordReplay is controller CPU charged per replayed record
	// (parse + mapping update). It is the constant that makes recovery
	// time scale with log volume, as in Figure 3.
	CPUPerRecordReplay vclock.Duration
	// Epoch distinguishes log incarnations across crashes; recovery
	// bumps it so stale segments are never replayed twice.
	Epoch uint64
}

// WAL is the recovery-log component of Figure 2 ("recovery log may be
// persisted according to atomic requirements"). Records append to log
// chunks provisioned from the allocator. Sync pads the device stripe so
// everything appended becomes durable — the group-commit cost on an
// append-only device. Truncate recycles wholly-consumed segments after a
// checkpoint. Records never span segments: a record that does not fit in
// the active segment pads it out and opens a fresh one, so every segment
// starts at a record boundary and replay can parse each independently.
type WAL struct {
	media ox.Media
	ctrl  *ox.Controller
	alloc *Allocator
	cfg   WALConfig
	geo   ocssd.Geometry

	mu       sync.Mutex
	segments []walSegment // in log order; last is active
	buf      []byte       // record bytes not yet appended to media
	unitBuf  []byte       // reusable scratch for the padded sync unit
	zeroUnit []byte       // one ws_min unit of zeros for segment fill
	nextLSN  LSN
	headLSN  LSN // smallest retained LSN
	appended metrics64
}

type metrics64 struct {
	records int64
	syncs   int64
	padded  int64 // padding bytes written (sync + segment fill)
}

type walSegment struct {
	chunk    ocssd.ChunkID
	startLSN LSN // stream offset of the segment's first byte
	written  int // sectors on media (mirror of the device WP)
}

// NewWAL provisions the first log chunk, stamps its segment header and
// returns the log.
func NewWAL(media ox.Media, ctrl *ox.Controller, alloc *Allocator, cfg WALConfig) (*WAL, error) {
	if cfg.CPUPerRecordReplay <= 0 {
		cfg.CPUPerRecordReplay = 5 * vclock.Microsecond
	}
	w := &WAL{media: media, ctrl: ctrl, alloc: alloc, cfg: cfg, geo: media.Geometry()}
	w.unitBuf = make([]byte, w.unitBytes())
	w.zeroUnit = make([]byte, w.unitBytes())
	id, err := alloc.Alloc(cfg.Target)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWALFull, err)
	}
	w.segments = []walSegment{{chunk: id}}
	w.bufferSegHeader()
	return w, nil
}

// bufferSegHeader appends the active segment's header record to the RAM
// buffer (it flushes with the next data). Caller holds w.mu (or the WAL
// is not yet shared).
func (w *WAL) bufferSegHeader() {
	var payload [segHeaderPayloadLen]byte
	binary.LittleEndian.PutUint64(payload[0:], segMagic)
	binary.LittleEndian.PutUint64(payload[8:], w.cfg.Epoch)
	binary.LittleEndian.PutUint64(payload[16:], uint64(w.nextLSN))
	w.bufferRecord(Record{Type: RecSegHeader, TxID: w.cfg.Epoch, Payload: payload[:]})
}

// bufferRecord encodes r directly into the RAM buffer, avoiding a
// per-record staging allocation. Caller holds w.mu.
func (w *WAL) bufferRecord(r Record) {
	need := encodedLen(r)
	off := len(w.buf)
	if cap(w.buf)-off < need {
		grown := make([]byte, off, cap(w.buf)+need+4096)
		copy(grown, w.buf)
		w.buf = grown
	}
	w.buf = w.buf[:off+need]
	encodeRecord(w.buf[off:], r)
	w.nextLSN += LSN(need)
}

func (w *WAL) unitBytes() int    { return w.geo.WSMin * w.geo.Chip.SectorSize }
func (w *WAL) segmentBytes() int { return w.geo.SectorsPerChunk() * w.geo.Chip.SectorSize }

// active returns the active segment. Caller holds w.mu.
func (w *WAL) active() *walSegment { return &w.segments[len(w.segments)-1] }

// remainingLocked reports stream bytes left in the active segment,
// counting both media-written sectors and buffered bytes.
func (w *WAL) remainingLocked() int {
	seg := w.active()
	return w.segmentBytes() - seg.written*w.geo.Chip.SectorSize - len(w.buf)
}

// Append adds a record to the log. With sync set it returns only when
// the record is durable. It reports the record's LSN and completion time.
func (w *WAL) Append(now vclock.Time, r Record, sync bool) (LSN, vclock.Time, error) {
	if r.Type == recPad {
		return 0, now, errors.New("ftlcore: record type 0 is reserved for padding")
	}
	need := encodedLen(r)
	if need > w.segmentBytes()-segHeaderEncodedLen {
		return 0, now, ErrRecordTooLarge
	}
	w.mu.Lock()
	defer w.mu.Unlock()

	end := now
	var err error
	if need > w.remainingLocked() {
		if end, err = w.rotateLocked(end); err != nil {
			return 0, end, err
		}
	}
	lsn := w.nextLSN
	w.bufferRecord(r)
	w.appended.records++

	// Drain full ws_min units to media, then slide the remainder to the
	// front so the buffer's backing array is reused forever.
	unit := w.unitBytes()
	drained := 0
	for len(w.buf)-drained >= unit {
		end, err = w.appendUnit(end, w.buf[drained:drained+unit])
		if err != nil {
			w.buf = w.buf[:copy(w.buf, w.buf[drained:])]
			return lsn, end, err
		}
		drained += unit
	}
	if drained > 0 {
		w.buf = w.buf[:copy(w.buf, w.buf[drained:])]
	}
	if sync {
		if end, err = w.syncLocked(end); err != nil {
			return lsn, end, err
		}
	}
	return lsn, end, nil
}

// appendUnit writes one ws_min unit to the active segment. The caller
// holds w.mu and guarantees the segment has room.
func (w *WAL) appendUnit(now vclock.Time, unit []byte) (vclock.Time, error) {
	seg := w.active()
	_, end, err := w.media.Append(now, seg.chunk, unit)
	if err != nil {
		return now, err
	}
	seg.written += w.geo.WSMin
	w.ctrl.NoteControllerIO()
	return end, nil
}

// syncLocked flushes the buffered tail (padding it to a unit) and pads
// the device stripe so every appended record is durable.
func (w *WAL) syncLocked(now vclock.Time) (vclock.Time, error) {
	unit := w.unitBytes()
	if len(w.buf) > 0 {
		padded := w.unitBuf
		n := copy(padded, w.buf)
		clear(padded[n:])
		pad := unit - len(w.buf)
		end, err := w.appendUnit(now, padded)
		if err != nil {
			return now, err
		}
		w.nextLSN += LSN(pad) // pad bytes consume stream space
		w.appended.padded += int64(pad)
		w.buf = w.buf[:0]
		now = end
	}
	seg := w.active()
	end, err := w.media.Pad(now, seg.chunk)
	if err != nil {
		return now, err
	}
	info, err := w.media.Chunk(seg.chunk)
	if err != nil {
		return end, err
	}
	if skipped := info.WP - seg.written; skipped > 0 {
		w.nextLSN += LSN(skipped * w.geo.Chip.SectorSize)
		w.appended.padded += int64(skipped * w.geo.Chip.SectorSize)
		seg.written = info.WP
	}
	w.appended.syncs++
	return end, nil
}

// rotateLocked syncs, fills the active segment with zero padding and
// opens a fresh segment, so the next record starts a segment.
func (w *WAL) rotateLocked(now vclock.Time) (vclock.Time, error) {
	end, err := w.syncLocked(now)
	if err != nil {
		return end, err
	}
	seg := w.active()
	zero := w.zeroUnit
	for seg.written < w.geo.SectorsPerChunk() {
		if end, err = w.appendUnit(end, zero); err != nil {
			return end, err
		}
		w.nextLSN += LSN(w.unitBytes())
		w.appended.padded += int64(w.unitBytes())
	}
	id, err := w.alloc.Alloc(w.cfg.Target)
	if err != nil {
		return end, fmt.Errorf("%w: %v", ErrWALFull, err)
	}
	w.segments = append(w.segments, walSegment{chunk: id, startLSN: w.nextLSN})
	w.bufferSegHeader()
	return end, nil
}

// Sync makes all appended records durable.
func (w *WAL) Sync(now vclock.Time) (vclock.Time, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked(now)
}

// NextLSN reports the LSN the next record will receive.
func (w *WAL) NextLSN() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// HeadLSN reports the oldest retained LSN.
func (w *WAL) HeadLSN() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.headLSN
}

// Records reports how many records were appended in this incarnation.
func (w *WAL) Records() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended.records
}

// PaddedBytes reports total padding written (space amplification of
// synchronous commit on an append-only device).
func (w *WAL) PaddedBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended.padded
}

// Segments reports the log chunks holding records, oldest first.
func (w *WAL) Segments() []ocssd.ChunkID {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]ocssd.ChunkID, len(w.segments))
	for i, s := range w.segments {
		out[i] = s.chunk
	}
	return out
}

// Truncate discards records below upto: segments wholly below the mark
// are reset and returned to the allocator. §4.3: "the checkpoint process
// truncates the log at regular intervals".
func (w *WAL) Truncate(now vclock.Time, upto LSN) (vclock.Time, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	end := now
	for len(w.segments) > 1 && w.segments[1].startLSN <= upto {
		e, err := w.alloc.Release(now, w.segments[0].chunk)
		if err == nil && e > end {
			end = e
		}
		// On Release failure the chunk was retired; drop it either way.
		w.segments = w.segments[1:]
	}
	if w.segments[0].startLSN > w.headLSN {
		w.headLSN = w.segments[0].startLSN
	}
	if upto > w.headLSN {
		w.headLSN = upto
	}
	return end, nil
}

// Replay reads the log and invokes fn for every durable record with
// LSN ≥ from, charging media read time plus per-record controller CPU.
// Segment headers are consumed internally and not passed to fn. It
// reports the number of records replayed and the completion time.
// Replay cost is what Figure 3 measures.
func (w *WAL) Replay(now vclock.Time, from LSN, fn func(Record) error) (int, vclock.Time, error) {
	w.mu.Lock()
	segs := make([]walSegment, len(w.segments))
	copy(segs, w.segments)
	w.mu.Unlock()

	count := 0
	end := now
	for _, seg := range segs {
		n, e, err := replaySegment(w.media, w.ctrl, w.cfg, end, seg.chunk, seg.startLSN, from, fn)
		count += n
		end = e
		if err != nil {
			return count, end, err
		}
	}
	return count, end, nil
}

// replaySegment reads one segment's written extent and replays its
// records at or above from. Headers and padding are skipped.
func replaySegment(media ox.Media, ctrl *ox.Controller, cfg WALConfig, now vclock.Time,
	chunk ocssd.ChunkID, startLSN, from LSN, fn func(Record) error) (int, vclock.Time, error) {
	geo := media.Geometry()
	secSize := geo.Chip.SectorSize
	stripeBytes := geo.UnitOfWriteBytes()
	end := now
	info, err := media.Chunk(chunk)
	if err != nil {
		return 0, end, err
	}
	if info.WP == 0 {
		return 0, end, nil
	}
	segBytes := info.WP * secSize
	if startLSN+LSN(segBytes) <= from {
		return 0, end, nil // wholly below the replay point
	}
	buf := make([]byte, segBytes)
	ppas := make([]ocssd.PPA, info.WP)
	for s := range ppas {
		ppas[s] = chunk.PPAOf(s)
	}
	if end, err = media.VectorRead(end, ppas, buf); err != nil {
		return 0, end, err
	}
	count := 0
	off := 0
	for off < len(buf) {
		rec, n, ok := decodeRecord(buf[off:])
		if !ok {
			if buf[off] != byte(recPad) {
				// A record frame that fails to decode. Writing stops at a
				// tear, so a valid record at any later stripe boundary
				// (records realign there after every sync) proves this is
				// corruption rather than the torn tail of a power cut.
				for probe := (off/stripeBytes + 1) * stripeBytes; probe < len(buf); probe += stripeBytes {
					if _, _, valid := decodeRecord(buf[probe:]); valid {
						return count, end, fmt.Errorf("%w: %v byte %d", ErrCorruptRecord, chunk, off)
					}
				}
				break // torn tail: the log ends at the last durable record
			}
			// Padding: skip to the next stripe boundary.
			next := (off/stripeBytes + 1) * stripeBytes
			if next >= len(buf) {
				break
			}
			off = next
			continue
		}
		if rec.Type != RecSegHeader && startLSN+LSN(off) >= from {
			end = ctrl.CPUWork(end, cfg.CPUPerRecordReplay)
			if err := fn(rec); err != nil {
				return count, end, err
			}
			count++
		}
		off += n
	}
	return count, end, nil
}

// RecoveredSegment is a log segment found on media by ScanLog.
type RecoveredSegment struct {
	Chunk    ocssd.ChunkID
	Epoch    uint64
	StartLSN LSN
}

// ScanLog identifies WAL segments across the whole device by probing the
// first record of every written chunk for a segment header. It returns
// them ordered by (epoch, startLSN) together with the highest epoch seen
// (recovery starts its new log at a higher epoch). This is how recovery
// finds the log after all volatile state is lost.
func ScanLog(now vclock.Time, media ox.Media, ctrl *ox.Controller) ([]RecoveredSegment, uint64, vclock.Time, error) {
	geo := media.Geometry()
	secSize := geo.Chip.SectorSize
	probe := geo.WSMin
	var segs []RecoveredSegment
	var maxEpoch uint64
	end := now
	for _, ci := range media.Report() {
		if ci.WP == 0 || ci.State == ocssd.ChunkOffline {
			continue
		}
		n := probe
		if ci.WP < n {
			n = ci.WP
		}
		buf := make([]byte, n*secSize)
		ppas := make([]ocssd.PPA, n)
		for s := range ppas {
			ppas[s] = ci.ID.PPAOf(s)
		}
		e, err := media.VectorRead(end, ppas, buf)
		if err != nil {
			continue // unreadable chunk: not a (usable) log segment
		}
		end = e
		rec, _, ok := decodeRecord(buf)
		if !ok || rec.Type != RecSegHeader || len(rec.Payload) != segHeaderPayloadLen {
			continue
		}
		if binary.LittleEndian.Uint64(rec.Payload[0:]) != segMagic {
			continue
		}
		epoch := binary.LittleEndian.Uint64(rec.Payload[8:])
		start := LSN(binary.LittleEndian.Uint64(rec.Payload[16:]))
		segs = append(segs, RecoveredSegment{Chunk: ci.ID, Epoch: epoch, StartLSN: start})
		if epoch > maxEpoch {
			maxEpoch = epoch
		}
	}
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].Epoch != segs[j].Epoch {
			return segs[i].Epoch < segs[j].Epoch
		}
		return segs[i].StartLSN < segs[j].StartLSN
	})
	return segs, maxEpoch, end, nil
}

// ReplayLog replays recovered segments against fn: records of epochs
// newer than ckptEpoch replay fully; records of ckptEpoch replay from
// the checkpoint LSN; older epochs are skipped entirely.
func ReplayLog(now vclock.Time, media ox.Media, ctrl *ox.Controller, cfg WALConfig,
	segs []RecoveredSegment, ckptEpoch uint64, from LSN, fn func(Record) error) (int, vclock.Time, error) {
	if cfg.CPUPerRecordReplay <= 0 {
		cfg.CPUPerRecordReplay = 5 * vclock.Microsecond
	}
	count := 0
	end := now
	for _, seg := range segs {
		segFrom := from
		switch {
		case seg.Epoch < ckptEpoch:
			continue
		case seg.Epoch > ckptEpoch:
			segFrom = 0
		}
		n, e, err := replaySegment(media, ctrl, cfg, end, seg.Chunk, seg.StartLSN, segFrom, fn)
		count += n
		end = e
		if err != nil {
			return count, end, err
		}
	}
	return count, end, nil
}
