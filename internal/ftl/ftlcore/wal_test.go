package ftlcore

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/ocssd"
	"repro/internal/ox"
	"repro/internal/vclock"
)

func newWALUnderTest(t *testing.T) (*WAL, *ocssd.Device, *Allocator) {
	t.Helper()
	d, ctrl := testDevice(t, ocssd.Options{Seed: 1})
	a := NewAllocator(d, nil)
	w, err := NewWAL(d, ctrl, a, WALConfig{Target: AnyTarget()})
	if err != nil {
		t.Fatal(err)
	}
	return w, d, a
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	w, _, _ := newWALUnderTest(t)
	var want []Record
	now := vclock.Time(0)
	for i := 0; i < 20; i++ {
		r := Record{Type: RecTxCommit, TxID: uint64(i), Payload: bytes.Repeat([]byte{byte(i)}, i*7)}
		want = append(want, r)
		_, end, err := w.Append(now, r, false)
		if err != nil {
			t.Fatal(err)
		}
		now = end
	}
	if _, err := w.Sync(now); err != nil {
		t.Fatal(err)
	}
	var got []Record
	n, _, err := w.Replay(now, 0, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) {
		t.Fatalf("replayed %d records, want %d", n, len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || got[i].TxID != want[i].TxID || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestWALSyncMakesDurable(t *testing.T) {
	w, d, _ := newWALUnderTest(t)
	r := Record{Type: RecTxCommit, TxID: 7, Payload: []byte("hello")}
	_, end, err := w.Append(0, r, true)
	if err != nil {
		t.Fatal(err)
	}
	// Crash loses un-padded buffers; a synced record must survive.
	d.Crash()
	var got []Record
	if _, _, err := w.Replay(end, 0, func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].TxID != 7 {
		t.Fatalf("after crash: %+v", got)
	}
}

func TestWALUnsyncedRecordLostOnCrash(t *testing.T) {
	w, d, _ := newWALUnderTest(t)
	// A tiny unsynced record stays in the WAL's RAM buffer (never even
	// reaches the device stripe buffer).
	if _, _, err := w.Append(0, Record{Type: RecTxCommit, TxID: 9}, false); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	n, _, err := w.Replay(0, 0, func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("unsynced record survived crash: %d records", n)
	}
}

func TestWALSyncCostsStripeProgram(t *testing.T) {
	w, _, _ := newWALUnderTest(t)
	// A synchronous append must pay (at least) one NAND stripe program:
	// group commit on an append-only device is expensive — that is the
	// design point §4.3 makes about transactional FTL writes.
	_, end, err := w.Append(0, Record{Type: RecTxCommit, TxID: 1, Payload: make([]byte, 64)}, true)
	if err != nil {
		t.Fatal(err)
	}
	if end < vclock.Time(vclock.Millisecond) {
		t.Fatalf("sync completed in %v; a TLC stripe program costs milliseconds", end)
	}
	if w.PaddedBytes() == 0 {
		t.Fatal("sync of a small record must pad")
	}
}

func TestWALReplayFrom(t *testing.T) {
	w, _, _ := newWALUnderTest(t)
	now := vclock.Time(0)
	var lsns []LSN
	for i := 0; i < 10; i++ {
		lsn, end, err := w.Append(now, Record{Type: RecTxCommit, TxID: uint64(i)}, true)
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
		now = end
	}
	var got []uint64
	_, _, err := w.Replay(now, lsns[6], func(r Record) error {
		got = append(got, r.TxID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[0] != 6 {
		t.Fatalf("replay from lsn[6]: %v", got)
	}
}

func TestWALTruncateRecyclesChunks(t *testing.T) {
	w, d, a := newWALUnderTest(t)
	geo := d.Geometry()
	now := vclock.Time(0)
	freeBefore := a.FreeCount()
	// Write enough synced records to cross several segments: each sync
	// burns at least one stripe (24 sectors), chunk = 96 sectors.
	var lastLSN LSN
	for i := 0; i < 20; i++ {
		lsn, end, err := w.Append(now, Record{Type: RecTxCommit, TxID: uint64(i), Payload: make([]byte, 100)}, true)
		if err != nil {
			t.Fatal(err)
		}
		lastLSN = lsn
		now = end
	}
	if len(w.Segments()) < 3 {
		t.Fatalf("expected multiple segments, got %d (chunk=%d sectors)", len(w.Segments()), geo.SectorsPerChunk())
	}
	segsBefore := len(w.Segments())
	freeHeld := a.FreeCount()
	if freeHeld >= freeBefore {
		t.Fatalf("segments should hold chunks: free %d vs %d", freeHeld, freeBefore)
	}
	if _, err := w.Truncate(now, lastLSN); err != nil {
		t.Fatal(err)
	}
	if len(w.Segments()) >= segsBefore {
		t.Fatal("truncate did not drop segments")
	}
	if w.HeadLSN() < lastLSN {
		t.Fatalf("head = %d, want >= %d", w.HeadLSN(), lastLSN)
	}
	if a.FreeCount() <= freeHeld {
		t.Fatal("truncate should have returned chunks to the pool")
	}
	// Replay after truncate only sees the retained tail.
	n, _, err := w.Replay(now, lastLSN, func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records after truncate, want 1", n)
	}
}

func TestWALRecordTooLarge(t *testing.T) {
	w, d, _ := newWALUnderTest(t)
	huge := make([]byte, int(d.Geometry().ChunkBytes())+1)
	_, _, err := w.Append(0, Record{Type: RecTxCommit, Payload: huge}, false)
	if !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("err = %v, want ErrRecordTooLarge", err)
	}
}

func TestWALRecordNeverSpansSegments(t *testing.T) {
	w, d, _ := newWALUnderTest(t)
	geo := d.Geometry()
	now := vclock.Time(0)
	// Payload sized so a few records nearly fill a segment, forcing the
	// "does not fit" rotation path.
	payload := make([]byte, int(geo.ChunkBytes())/3)
	for i := 0; i < 7; i++ {
		_, end, err := w.Append(now, Record{Type: RecTxCommit, TxID: uint64(i), Payload: payload}, true)
		if err != nil {
			t.Fatal(err)
		}
		now = end
	}
	// Every record must replay intact despite the rotations.
	var got []uint64
	n, _, err := w.Replay(now, 0, func(r Record) error {
		if len(r.Payload) != len(payload) {
			return fmt.Errorf("payload truncated: %d", len(r.Payload))
		}
		got = append(got, r.TxID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("replayed %d, want 7 (%v)", n, got)
	}
}

func TestWALPadTypeReserved(t *testing.T) {
	w, _, _ := newWALUnderTest(t)
	if _, _, err := w.Append(0, Record{Type: recPad}, false); err == nil {
		t.Fatal("pad-typed record must be rejected")
	}
}

func TestWALReplayStopsOnCallbackError(t *testing.T) {
	w, _, _ := newWALUnderTest(t)
	now := vclock.Time(0)
	for i := 0; i < 5; i++ {
		_, end, err := w.Append(now, Record{Type: RecTxCommit, TxID: uint64(i)}, true)
		if err != nil {
			t.Fatal(err)
		}
		now = end
	}
	wantErr := errors.New("stop")
	n, _, err := w.Replay(now, 0, func(r Record) error {
		if r.TxID == 2 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	if n != 2 {
		t.Fatalf("replayed %d before stop, want 2", n)
	}
}

func TestWALRecordsCounter(t *testing.T) {
	w, _, _ := newWALUnderTest(t)
	for i := 0; i < 3; i++ {
		if _, _, err := w.Append(0, Record{Type: RecTxCommit}, false); err != nil {
			t.Fatal(err)
		}
	}
	if w.Records() != 3 {
		t.Fatalf("records = %d", w.Records())
	}
	if w.NextLSN() == 0 {
		t.Fatal("LSN should advance")
	}
}

func TestEncodeDecodeRecord(t *testing.T) {
	r := Record{Type: RecAppExtent, TxID: 12345, Payload: []byte("payload")}
	buf := make([]byte, encodedLen(r))
	n := encodeRecord(buf, r)
	if n != len(buf) {
		t.Fatalf("encoded %d, want %d", n, len(buf))
	}
	got, consumed, ok := decodeRecord(buf)
	if !ok || consumed != n {
		t.Fatalf("decode: ok=%v consumed=%d", ok, consumed)
	}
	if got.Type != r.Type || got.TxID != r.TxID || !bytes.Equal(got.Payload, r.Payload) {
		t.Fatalf("decoded %+v", got)
	}
	// Corruption is caught by the CRC.
	buf[recHeaderLen] ^= 0xFF
	if _, _, ok := decodeRecord(buf); ok {
		t.Fatal("corrupt record decoded")
	}
	// Truncation is caught.
	if _, _, ok := decodeRecord(buf[:len(buf)-1]); ok {
		t.Fatal("truncated record decoded")
	}
	// Padding is not a record.
	if _, _, ok := decodeRecord(make([]byte, 64)); ok {
		t.Fatal("padding decoded as record")
	}
}

// corruptMedia wraps a Media and xors bytes of one chunk on reads, to
// model bit rot between append and replay.
type corruptMedia struct {
	ox.Media
	chunk ocssd.ChunkID
	flip  map[int]byte // chunk byte offset → xor mask
}

func (c *corruptMedia) VectorRead(now vclock.Time, ppas []ocssd.PPA, dst []byte) (vclock.Time, error) {
	end, err := c.Media.VectorRead(now, ppas, dst)
	if err != nil {
		return end, err
	}
	sz := c.Media.Geometry().Chip.SectorSize
	for i, p := range ppas {
		if p.ChunkOf() != c.chunk {
			continue
		}
		for off, mask := range c.flip {
			if off/sz == p.Sector {
				dst[i*sz+off%sz] ^= mask
			}
		}
	}
	return end, nil
}

// syncedWAL builds a WAL with n synced single-record stripes, so record
// i sits at stripe boundary i (the segment header shares stripe 0).
func syncedWAL(t *testing.T, n int) (*WAL, *ocssd.Device, *ox.Controller) {
	t.Helper()
	d, ctrl := testDevice(t, ocssd.Options{Seed: 1})
	a := NewAllocator(d, nil)
	w, err := NewWAL(d, ctrl, a, WALConfig{Target: AnyTarget()})
	if err != nil {
		t.Fatal(err)
	}
	now := vclock.Time(0)
	for i := 0; i < n; i++ {
		r := Record{Type: RecTxCommit, TxID: uint64(i + 1), Payload: []byte{byte(i)}}
		if _, end, err := w.Append(now, r, true); err != nil {
			t.Fatal(err)
		} else {
			now = end
		}
	}
	return w, d, ctrl
}

func TestWALReplayCorruptMidLogTypedError(t *testing.T) {
	w, d, ctrl := syncedWAL(t, 3)
	seg := w.Segments()[0]
	stripe := d.Geometry().UnitOfWriteBytes()
	// Flip a byte inside record 2's frame (stripe 1). Records 1 and 3
	// still decode, so replay must fail typed instead of skipping.
	cm := &corruptMedia{Media: d, chunk: seg, flip: map[int]byte{stripe + 2: 0xff}}
	segs, _, _, err := ScanLog(0, cm, ctrl)
	if err != nil || len(segs) != 1 {
		t.Fatalf("ScanLog: %v, %d segments", err, len(segs))
	}
	var got []uint64
	n, _, err := ReplayLog(0, cm, ctrl, WALConfig{}, segs, 0, 0, func(r Record) error {
		got = append(got, r.TxID)
		return nil
	})
	if !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("want ErrCorruptRecord, got %v (replayed %v)", err, got)
	}
	if n != 1 || len(got) != 1 || got[0] != 1 {
		t.Fatalf("records before the corruption must replay: n=%d got=%v", n, got)
	}
}

func TestWALReplayTornTailStopsClean(t *testing.T) {
	w, d, ctrl := syncedWAL(t, 3)
	seg := w.Segments()[0]
	stripe := d.Geometry().UnitOfWriteBytes()
	// Corrupt the LAST record: no valid record follows, so this is
	// indistinguishable from a torn tail and replay stops cleanly.
	cm := &corruptMedia{Media: d, chunk: seg, flip: map[int]byte{2*stripe + 2: 0xff}}
	segs, _, _, err := ScanLog(0, cm, ctrl)
	if err != nil || len(segs) != 1 {
		t.Fatalf("ScanLog: %v, %d segments", err, len(segs))
	}
	var got []uint64
	n, _, err := ReplayLog(0, cm, ctrl, WALConfig{}, segs, 0, 0, func(r Record) error {
		got = append(got, r.TxID)
		return nil
	})
	if err != nil {
		t.Fatalf("torn tail must not be fatal: %v", err)
	}
	if n != 2 || len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("want records 1,2 before the tear: n=%d got=%v", n, got)
	}
}

// TestWALTornRecordFromCrash drives the real tear: a record larger than
// one ws_min unit drains partially to media, then power is lost. The
// persisted prefix fails its checksum and replay stops at the last
// durable record without an error.
func TestWALTornRecordFromCrash(t *testing.T) {
	d, ctrl := testDevice(t, ocssd.Options{Seed: 1, PowerLossProtected: true})
	a := NewAllocator(d, nil)
	w, err := NewWAL(d, ctrl, a, WALConfig{Target: AnyTarget()})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Append(0, Record{Type: RecTxCommit, TxID: 1, Payload: []byte("ok")}, true); err != nil {
		t.Fatal(err)
	}
	// A record spanning multiple units: its first unit reaches media, the
	// rest dies with controller RAM.
	big := Record{Type: RecTxCommit, TxID: 2, Payload: bytes.Repeat([]byte{0xab}, 5*w.unitBytes())}
	if _, _, err := w.Append(0, big, false); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	segs, _, _, err := ScanLog(0, d, ctrl)
	if err != nil || len(segs) != 1 {
		t.Fatalf("ScanLog: %v, %d segments", err, len(segs))
	}
	var got []uint64
	n, _, err := ReplayLog(0, d, ctrl, WALConfig{}, segs, 0, 0, func(r Record) error {
		got = append(got, r.TxID)
		return nil
	})
	if err != nil {
		t.Fatalf("crash tear must not be fatal: %v", err)
	}
	if n != 1 || len(got) != 1 || got[0] != 1 {
		t.Fatalf("want only the synced record: n=%d got=%v", n, got)
	}
}
