package hostif

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/lightlsm"
	"repro/internal/nand"
	"repro/internal/ocssd"
	"repro/internal/ox"
	"repro/internal/oxblock"
	"repro/internal/oxeleos"
	"repro/internal/vclock"
	"repro/internal/zns"
)

// attachNS attaches ns through the admin queue — the only way in.
func attachNS(t testing.TB, h *Host, ns Namespace) int {
	t.Helper()
	nsid, err := h.Admin().AttachNamespace(0, ns)
	if err != nil {
		t.Fatal(err)
	}
	return nsid
}

// openQP creates a medium-class I/O queue pair through the admin queue.
func openQP(t testing.TB, h *Host, depth int) *QueuePair {
	t.Helper()
	qp, err := h.Admin().CreateIOQueuePair(0, depth, ClassMedium)
	if err != nil {
		t.Fatal(err)
	}
	return qp
}

// testController builds a small simulated device + controller.
func testController(t testing.TB) *ox.Controller {
	t.Helper()
	chip := nand.Geometry{
		Planes:         2,
		BlocksPerPlane: 16,
		PagesPerBlock:  12,
		SectorsPerPage: 4,
		SectorSize:     4096,
		OOBPerPage:     64,
		Cell:           nand.TLC,
	}
	geo := ocssd.Finish(ocssd.Geometry{
		Groups:       2,
		PUsPerGroup:  2,
		ChunksPerPU:  16,
		Chip:         chip,
		ChannelMBps:  800,
		CacheMBps:    3200,
		CacheMB:      8,
		MaxOpenPerPU: 64,
	})
	dev, err := ocssd.New(geo, ocssd.Options{Seed: 1, PowerLossProtected: true})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := ox.NewController(ox.DefaultConfig(), dev)
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

// TestBlockNamespaceMatchesDirect is the zero-overhead proof behind the
// driver migration: the same OX-Block op sequence issued directly and
// through a queue pair yields bit-identical completion times and data.
func TestBlockNamespaceMatchesDirect(t *testing.T) {
	const pages = 512
	run := func(viaQP bool) ([]vclock.Time, [][]byte) {
		ctrl := testController(t)
		d, _, now, err := oxblock.New(ctrl, oxblock.Config{LogicalPages: pages}, 0)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 8*4096)
		for i := range data {
			data[i] = byte(i)
		}
		var times []vclock.Time
		var reads [][]byte
		if !viaQP {
			for i := 0; i < 6; i++ {
				now, err = d.Write(now, int64(i*16), data)
				if err != nil {
					t.Fatal(err)
				}
				times = append(times, now)
			}
			got, end, err := d.Read(now, 16, 8)
			if err != nil {
				t.Fatal(err)
			}
			times = append(times, end)
			reads = append(reads, got)
			end, err = d.Trim(end, 0, 16)
			if err != nil {
				t.Fatal(err)
			}
			times = append(times, end)
			return times, reads
		}
		host := NewHost(ctrl, HostConfig{})
		nsid := attachNS(t, host, NewBlockNamespace(d))
		qp := openQP(t, host, 1)
		do := func(cmd *Command, at vclock.Time) Completion {
			t.Helper()
			if err := qp.Push(at, cmd); err != nil {
				t.Fatal(err)
			}
			c := qp.MustReap()
			if c.Err != nil {
				t.Fatal(c.Err)
			}
			return c
		}
		for i := 0; i < 6; i++ {
			c := do(&Command{Op: OpWrite, NSID: nsid, LPN: int64(i * 16), Data: data}, now)
			now = c.Done
			times = append(times, now)
		}
		c := do(&Command{Op: OpRead, NSID: nsid, LPN: 16, Pages: 8}, now)
		times = append(times, c.Done)
		reads = append(reads, c.Data)
		c = do(&Command{Op: OpTrim, NSID: nsid, LPN: 0, Pages: 16}, c.Done)
		times = append(times, c.Done)
		return times, reads
	}
	dt, dr := run(false)
	qt, qr := run(true)
	if len(dt) != len(qt) {
		t.Fatalf("op counts differ: %d vs %d", len(dt), len(qt))
	}
	for i := range dt {
		if dt[i] != qt[i] {
			t.Fatalf("op %d: direct %v vs queue-pair %v", i, dt[i], qt[i])
		}
	}
	if !bytes.Equal(dr[0], qr[0]) {
		t.Fatal("read data differs between direct and queue-pair paths")
	}
}

func TestBlockPartitionIsolation(t *testing.T) {
	ctrl := testController(t)
	d, _, now, err := oxblock.New(ctrl, oxblock.Config{LogicalPages: 256}, 0)
	if err != nil {
		t.Fatal(err)
	}
	host := NewHost(ctrl, HostConfig{})
	nsA, err := NewBlockPartition(d, 0, 128)
	if err != nil {
		t.Fatal(err)
	}
	nsB, err := NewBlockPartition(d, 128, 128)
	if err != nil {
		t.Fatal(err)
	}
	a := attachNS(t, host, nsA)
	b := attachNS(t, host, nsB)
	qp := openQP(t, host, 1)

	data := make([]byte, 4096)
	for i := range data {
		data[i] = 0x5A
	}
	if err := qp.Push(now, &Command{Op: OpWrite, NSID: b, LPN: 3, Data: data}); err != nil {
		t.Fatal(err)
	}
	wc := qp.MustReap()
	if wc.Err != nil {
		t.Fatal(wc.Err)
	}
	// Namespace A still reads zeros at LPN 3; namespace B sees the data.
	if err := qp.Push(wc.Done, &Command{Op: OpRead, NSID: a, LPN: 3, Pages: 1}); err != nil {
		t.Fatal(err)
	}
	ra := qp.MustReap()
	if ra.Err != nil || ra.Data[0] != 0 {
		t.Fatalf("partition A leaked partition B's write: %v %x", ra.Err, ra.Data[0])
	}
	if err := qp.Push(ra.Done, &Command{Op: OpRead, NSID: b, LPN: 3, Pages: 1}); err != nil {
		t.Fatal(err)
	}
	rb := qp.MustReap()
	if rb.Err != nil || rb.Data[0] != 0x5A {
		t.Fatalf("partition B lost its write: %v %x", rb.Err, rb.Data[0])
	}
	// Out-of-range commands are rejected inside the partition bounds.
	if err := qp.Push(rb.Done, &Command{Op: OpRead, NSID: a, LPN: 120, Pages: 16}); err != nil {
		t.Fatal(err)
	}
	if oob := qp.MustReap(); !errors.Is(oob.Err, oxblock.ErrRange) {
		t.Fatalf("cross-partition read: %v, want ErrRange", oob.Err)
	}
}

func TestZoneNamespaceOps(t *testing.T) {
	ctrl := testController(t)
	tgt, err := zns.New(ctrl, zns.Config{})
	if err != nil {
		t.Fatal(err)
	}
	host := NewHost(ctrl, HostConfig{})
	nsid := attachNS(t, host, NewZoneNamespace(tgt))
	qp := openQP(t, host, 2)

	block := make([]byte, tgt.BlockSize())
	for i := range block {
		block[i] = 0xCD
	}
	for i := 0; i < 2; i++ {
		if _, err := qp.Submit(&Command{Op: OpZoneAppend, NSID: nsid, Zone: 1, Data: block}); err != nil {
			t.Fatal(err)
		}
	}
	qp.Ring(0)
	a1, a2 := qp.MustReap(), qp.MustReap()
	if a1.Err != nil || a2.Err != nil {
		t.Fatal(a1.Err, a2.Err)
	}
	if a1.Offset != 0 || a2.Offset != int64(tgt.BlockSize()) {
		t.Fatalf("append offsets %d/%d", a1.Offset, a2.Offset)
	}
	if err := qp.Push(a2.Done, &Command{
		Op: OpRead, NSID: nsid, Zone: 1, LPN: 0, Length: int64(tgt.BlockSize()),
	}); err != nil {
		t.Fatal(err)
	}
	rc := qp.MustReap()
	if rc.Err != nil || rc.Data[0] != 0xCD {
		t.Fatalf("zone read: %v", rc.Err)
	}
	if err := qp.Push(rc.Done, &Command{Op: OpZoneReset, NSID: nsid, Zone: 1}); err != nil {
		t.Fatal(err)
	}
	if c := qp.MustReap(); c.Err != nil {
		t.Fatal(c.Err)
	}
	zi, err := tgt.Zone(1)
	if err != nil || zi.WP != 0 {
		t.Fatalf("zone not reset: %+v %v", zi, err)
	}
	// Unsupported op on this namespace.
	if err := qp.Push(0, &Command{Op: OpTableCreate, NSID: nsid}); err != nil {
		t.Fatal(err)
	}
	if c := qp.MustReap(); !errors.Is(c.Err, ErrUnsupported) {
		t.Fatalf("table-create on zns: %v, want ErrUnsupported", c.Err)
	}
}

func TestEleosNamespaceOps(t *testing.T) {
	ctrl := testController(t)
	store, err := oxeleos.New(ctrl, oxeleos.Config{BufferBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	host := NewHost(ctrl, HostConfig{})
	nsid := attachNS(t, host, NewEleosNamespace(store))
	qp := openQP(t, host, 1)

	buf := make([]byte, 64*1024)
	for i := range buf {
		buf[i] = byte(i)
	}
	descs := []PageDesc{{ID: 7, Offset: 100, Length: 5000}}
	if err := qp.Push(0, &Command{Op: OpFlush, NSID: nsid, Data: buf, Descs: descs}); err != nil {
		t.Fatal(err)
	}
	fc := qp.MustReap()
	if fc.Err != nil {
		t.Fatal(fc.Err)
	}
	if err := qp.Push(fc.Done, &Command{Op: OpRead, NSID: nsid, LPN: 7}); err != nil {
		t.Fatal(err)
	}
	rc := qp.MustReap()
	if rc.Err != nil {
		t.Fatal(rc.Err)
	}
	if len(rc.Data) != 5000 || !bytes.Equal(rc.Data, buf[100:5100]) {
		t.Fatalf("page read returned %d bytes", len(rc.Data))
	}
	if err := qp.Push(rc.Done, &Command{Op: OpTrim, NSID: nsid, LPN: 7}); err != nil {
		t.Fatal(err)
	}
	if c := qp.MustReap(); c.Err != nil {
		t.Fatal(c.Err)
	}
	if err := qp.Push(0, &Command{Op: OpRead, NSID: nsid, LPN: 7}); err != nil {
		t.Fatal(err)
	}
	if c := qp.MustReap(); !errors.Is(c.Err, oxeleos.ErrNotFound) {
		t.Fatalf("read after delete: %v, want ErrNotFound", c.Err)
	}
}

// TestEnvClientMatchesDirect proves the mini-RocksDB sees identical
// timing whether it calls LightLSM directly or through queue pairs —
// the property that keeps the Figure 5/6 tables bit-identical.
func TestEnvClientMatchesDirect(t *testing.T) {
	type step struct {
		end vclock.Time
	}
	run := func(viaQP bool) []step {
		ctrl := testController(t)
		env, err := lightlsm.New(ctrl, lightlsm.Config{})
		if err != nil {
			t.Fatal(err)
		}
		var steps []step
		block := make([]byte, env.BlockSize())
		if !viaQP {
			w, err := env.CreateTable(0)
			if err != nil {
				t.Fatal(err)
			}
			now := vclock.Time(0)
			for i := 0; i < 4; i++ {
				if now, err = w.Append(now, block); err != nil {
					t.Fatal(err)
				}
				steps = append(steps, step{end: now})
			}
			h, end, err := w.Commit(now)
			if err != nil {
				t.Fatal(err)
			}
			steps = append(steps, step{end: end})
			dst := make([]byte, env.BlockSize())
			if end, err = env.ReadBlock(end, h, 2, dst); err != nil {
				t.Fatal(err)
			}
			steps = append(steps, step{end: end})
			if end, err = env.DeleteTable(end, h); err != nil {
				t.Fatal(err)
			}
			steps = append(steps, step{end: end})
			return steps
		}
		host := NewHost(ctrl, HostConfig{})
		cli, err := AttachLSM(host, env)
		if err != nil {
			t.Fatal(err)
		}
		w, err := cli.CreateTable(0)
		if err != nil {
			t.Fatal(err)
		}
		now := vclock.Time(0)
		for i := 0; i < 4; i++ {
			if now, err = w.Append(now, block); err != nil {
				t.Fatal(err)
			}
			steps = append(steps, step{end: now})
		}
		h, end, err := w.Commit(now)
		if err != nil {
			t.Fatal(err)
		}
		steps = append(steps, step{end: end})
		dst := make([]byte, cli.BlockSize())
		if end, err = cli.ReadBlock(end, h, 2, dst); err != nil {
			t.Fatal(err)
		}
		steps = append(steps, step{end: end})
		if end, err = cli.DeleteTable(end, h); err != nil {
			t.Fatal(err)
		}
		steps = append(steps, step{end: end})
		return steps
	}
	direct := run(false)
	viaQP := run(true)
	if len(direct) != len(viaQP) {
		t.Fatalf("step counts differ: %d vs %d", len(direct), len(viaQP))
	}
	for i := range direct {
		if direct[i].end != viaQP[i].end {
			t.Fatalf("step %d: direct %v vs queue-pair %v", i, direct[i].end, viaQP[i].end)
		}
	}
}

func TestHostLinkCharging(t *testing.T) {
	ctrl := testController(t)
	d, _, now, err := oxblock.New(ctrl, oxblock.Config{LogicalPages: 256}, 0)
	if err != nil {
		t.Fatal(err)
	}
	host := NewHost(ctrl, HostConfig{ChargeHostLink: true})
	nsid := attachNS(t, host, NewBlockNamespace(d))
	qp := openQP(t, host, 1)
	before := ctrl.Stats()
	data := make([]byte, 4*4096)
	if err := qp.Push(now, &Command{Op: OpWrite, NSID: nsid, LPN: 0, Data: data}); err != nil {
		t.Fatal(err)
	}
	wc := qp.MustReap()
	if wc.Err != nil {
		t.Fatal(wc.Err)
	}
	if err := qp.Push(wc.Done, &Command{Op: OpRead, NSID: nsid, LPN: 0, Pages: 4}); err != nil {
		t.Fatal(err)
	}
	rc := qp.MustReap()
	if rc.Err != nil {
		t.Fatal(rc.Err)
	}
	after := ctrl.Stats()
	if got := after.BytesHost - before.BytesHost; got != 2*int64(len(data)) {
		t.Fatalf("host link carried %d bytes, want %d (write in + read out)", got, 2*len(data))
	}
	if after.HostTransfers-before.HostTransfers != 2 {
		t.Fatalf("host transfers %d, want 2", after.HostTransfers-before.HostTransfers)
	}
}
