package hostif

import (
	"fmt"

	"repro/internal/ftl/ftlcore"
	"repro/internal/ocssd"
	"repro/internal/offload"
	"repro/internal/ox"
	"repro/internal/vclock"
	"repro/internal/zns"
)

// AdminParams carries the parameters of an admin command (ignored for
// data opcodes).
type AdminParams struct {
	// Log selects the page of an OpAdminGetLogPage.
	Log LogPage
	// Depth and Class size an OpAdminCreateIOQP.
	Depth int
	Class Class
	// QID names the target of an OpAdminDeleteIOQP, or — on an
	// OpAdminCreateIOQP — requests recreation of a previously deleted
	// queue pair under its original ID (0 allocates a fresh ID).
	QID int
	// Domain selects the arbitration domain an OpAdminCreateIOQP binds
	// the new queue pair to (0, the admin domain, by default). A
	// recreated queue pair keeps its original binding and ignores this
	// field.
	Domain int
	// Attach is the namespace of an OpAdminNamespaceAttach.
	Attach Namespace
}

// LogPage selects what an OpAdminGetLogPage returns in Result.Admin.
type LogPage uint8

const (
	// LogControllerStats returns the controller counters (ox.Stats).
	LogControllerStats LogPage = iota + 1
	// LogUtilization returns controller memory-bus and core-pool
	// utilization (UtilizationLog) computed at the command's doorbell
	// instant.
	LogUtilization
	// LogChunkReport returns the device chunk report
	// ([]ocssd.ChunkInfo) — the Open-Channel 2.0 report descriptor.
	LogChunkReport
	// LogMediaStats returns device counters (ocssd.Stats) when the
	// media exposes them.
	LogMediaStats
	// LogNamespaceStats returns the target namespace's FTL counters
	// (oxblock.Stats, oxeleos.Stats or lightlsm.Stats).
	LogNamespaceStats
	// LogZoneReport returns an OX-ZNS namespace's []zns.ZoneInfo.
	LogZoneReport
	// LogGCStats returns an OX-Block namespace's ftlcore.GCStats.
	LogGCStats
	// LogTableChunks returns the []ocssd.ChunkID backing the committed
	// LightLSM table named by Command.Handle.
	LogTableChunks
	// LogFaults returns the device fault log (ocssd.FaultLog): injected
	// fault counters, grown-bad chunk count and the recent retirement
	// ring, when the media keeps one.
	LogFaults
	// LogExecutor returns the execution-engine counters (ExecutorLog):
	// grants, dispatches, realized overlap, barrier and conflict stalls.
	LogExecutor
	// LogOffload returns the target namespace's computational-storage
	// counters (offload.Stats): offload command counts, host-link bytes
	// saved against the host-side alternative, and in-device compute
	// time.
	LogOffload
)

// IdentifyController is the OpAdminIdentify payload for NSID 0.
type IdentifyController struct {
	// Geometry is the Open-Channel device geometry.
	Geometry ocssd.Geometry
	// Controller is the OX controller resource configuration.
	Controller ox.Config
	// Namespaces is the number of attached namespaces.
	Namespaces int
	// IOQueuePairs is the number of live I/O queue pairs.
	IOQueuePairs int
	// AdminDepth is the admin queue depth.
	AdminDepth int
	// Weights are the active WRR arbitration bursts.
	Weights Weights
	// Executor is the active command-service engine; Workers is its
	// per-domain worker-pool size (0 for the serial executor) and
	// BatchSize its grant batch per arbitration acquisition (1 for the
	// pipelined executor, 0 for serial).
	Executor  ExecutorKind
	Workers   int
	BatchSize int
	// Domains is the number of arbitration domains.
	Domains int
}

// NamespaceIdentity is the OpAdminIdentify payload for NSID ≥ 1. Only
// the fields meaningful for the namespace's FTL are set.
type NamespaceIdentity struct {
	// NSID and Name identify the namespace.
	NSID int
	Name string
	// Capacity is the namespace size in 4 KB logical pages (OX-Block).
	Capacity int64
	// BlockSize is the unit of transfer in bytes (LightLSM and OX-ZNS
	// blocks; 4096 for OX-Block pages).
	BlockSize int
	// MaxTableBlocks is the SSTable capacity in blocks (LightLSM).
	MaxTableBlocks int
	// Zones and ZoneCapacity describe an OX-ZNS namespace.
	Zones        int
	ZoneCapacity int64
	// BufferBytes is the LSS I/O buffer size (OX-ELEOS).
	BufferBytes int
}

// UtilizationLog is the LogUtilization payload.
type UtilizationLog struct {
	// MemBus is memory-bus utilization in [0, 1] at the log instant.
	MemBus float64
	// Core is core-pool utilization in [0, 1] at the log instant.
	Core float64
}

// identifier is implemented by namespace adapters that can fill a
// NamespaceIdentity; others identify by name alone.
type identifier interface {
	identity() NamespaceIdentity
}

// logPager is implemented by namespace adapters serving log pages.
type logPager interface {
	logPage(now vclock.Time, cmd *Command) (any, error)
}

// mediaStats is the optional Media extension behind LogMediaStats.
type mediaStats interface {
	Stats() ocssd.Stats
}

// faultLogger is the optional Media extension behind LogFaults.
type faultLogger interface {
	FaultLog() ocssd.FaultLog
}

// execAdmin runs one admin command at virtual instant now. Admin
// commands are host-memory operations: they complete instantly in
// virtual time, so control-plane traffic never perturbs data-path
// timing. Caller holds execMu.
func (h *Host) execAdmin(now vclock.Time, cmd *Command) Result {
	res := Result{End: now}
	switch cmd.Op {
	case OpAdminIdentify:
		if cmd.NSID == 0 {
			id := IdentifyController{
				Geometry:     h.ctrl.Media().Geometry(),
				Controller:   h.ctrl.Config(),
				Namespaces:   len(h.namespaces()),
				IOQueuePairs: len(h.queuePairs()) - 1,
				AdminDepth:   h.adminQP.depth,
				Weights:      h.weights,
				Executor:     ExecutorSerial,
				Domains:      len(h.domains),
			}
			if eng := h.domains[0].eng; eng != nil {
				id.Executor = h.cfg.Executor
				id.Workers = eng.workers
				id.BatchSize = eng.batch
			}
			res.Admin = id
			return res
		}
		ns, err := h.namespaceOf(cmd.NSID)
		if err != nil {
			res.Err = err
			return res
		}
		id := NamespaceIdentity{Name: ns.Name()}
		if i, ok := ns.(identifier); ok {
			id = i.identity()
		}
		id.NSID = cmd.NSID
		res.Admin = id
	case OpAdminGetLogPage:
		res.Admin, res.Err = h.logPage(now, cmd)
	case OpAdminCreateIOQP:
		if cmd.Admin.QID != 0 {
			qp, err := h.reopenQueuePair(cmd.Admin.QID, cmd.Admin.Depth, cmd.Admin.Class)
			if err != nil {
				res.Err = err
				return res
			}
			res.Admin = qp
			return res
		}
		if dom := cmd.Admin.Domain; dom < 0 || dom >= len(h.domains) {
			res.Err = fmt.Errorf("%w: domain %d of %d", ErrBadQueueID, dom, len(h.domains))
			return res
		}
		res.Admin = h.openQueuePair(cmd.Admin.Domain, cmd.Admin.Depth, cmd.Admin.Class)
	case OpAdminDeleteIOQP:
		res.Err = h.deleteQueuePair(cmd.Admin.QID)
	case OpAdminNamespaceAttach:
		if cmd.Admin.Attach == nil {
			res.Err = fmt.Errorf("%w: nil namespace", ErrBadNSID)
			return res
		}
		res.Handle = uint64(h.attachNamespace(cmd.Admin.Attach))
	default:
		res.Err = fmt.Errorf("%w: %v", ErrUnsupported, cmd.Op)
	}
	return res
}

// logPage serves one OpAdminGetLogPage. Controller- and device-scoped
// pages are handled here; namespace-scoped pages route to the adapter.
func (h *Host) logPage(now vclock.Time, cmd *Command) (any, error) {
	switch cmd.Admin.Log {
	case LogControllerStats:
		return h.ctrl.Stats(), nil
	case LogUtilization:
		return UtilizationLog{
			MemBus: h.ctrl.Utilization(now),
			Core:   h.ctrl.CoreUtilization(now),
		}, nil
	case LogChunkReport:
		return h.ctrl.Media().Report(), nil
	case LogMediaStats:
		m, ok := h.ctrl.Media().(mediaStats)
		if !ok {
			return nil, fmt.Errorf("%w: media has no stats", ErrBadLogPage)
		}
		return m.Stats(), nil
	case LogFaults:
		m, ok := h.ctrl.Media().(faultLogger)
		if !ok {
			return nil, fmt.Errorf("%w: media has no fault log", ErrBadLogPage)
		}
		return m.FaultLog(), nil
	case LogExecutor:
		return h.executorLog(), nil
	}
	ns, err := h.namespaceOf(cmd.NSID)
	if err != nil {
		return nil, err
	}
	lp, ok := ns.(logPager)
	if !ok {
		return nil, fmt.Errorf("%w: %v on %s", ErrBadLogPage, cmd.Admin.Log, ns.Name())
	}
	return lp.logPage(now, cmd)
}

// AdminClient issues typed admin commands over the host's admin queue
// pair (queue 0) and reaps each completion synchronously — the way
// cmd/oxctl and the experiment drivers manage namespaces, queue pairs
// and diagnostics. One client is a single host actor; concurrent
// control-plane callers should each hold their own reference serialized
// externally (the experiment drivers issue admin commands only at
// setup and teardown).
type AdminClient struct {
	qp *QueuePair
}

// Admin returns the host's admin-queue client.
func (h *Host) Admin() *AdminClient { return &AdminClient{qp: h.adminQP} }

// Queue exposes the raw admin queue pair for callers that stage their
// own admin submissions (tests of admin/IO arbitration interleaving).
func (a *AdminClient) Queue() *QueuePair { return a.qp }

// do issues one admin command synchronously through the admin queue's
// arena.
func (a *AdminClient) do(now vclock.Time, cmd Command) (Completion, error) {
	ac := a.qp.AcquireCommand()
	*ac = cmd
	if err := a.qp.Push(now, ac); err != nil {
		return Completion{}, err
	}
	comp := a.qp.MustReap()
	return comp, comp.Err
}

// Identify reports the controller identity: geometry, resource
// configuration, attachment and queue counts, arbitration weights.
func (a *AdminClient) Identify(now vclock.Time) (IdentifyController, error) {
	comp, err := a.do(now, Command{Op: OpAdminIdentify})
	if err != nil {
		return IdentifyController{}, err
	}
	return comp.Admin.(IdentifyController), nil
}

// IdentifyNamespace reports one namespace's identity and geometry.
func (a *AdminClient) IdentifyNamespace(now vclock.Time, nsid int) (NamespaceIdentity, error) {
	comp, err := a.do(now, Command{Op: OpAdminIdentify, NSID: nsid})
	if err != nil {
		return NamespaceIdentity{}, err
	}
	return comp.Admin.(NamespaceIdentity), nil
}

// AttachNamespace attaches ns and returns its NSID (1-based).
func (a *AdminClient) AttachNamespace(now vclock.Time, ns Namespace) (int, error) {
	comp, err := a.do(now, Command{Op: OpAdminNamespaceAttach, Admin: AdminParams{Attach: ns}})
	if err != nil {
		return 0, err
	}
	return int(comp.Handle), nil
}

// CreateIOQueuePair creates an I/O queue pair with the given depth
// (minimum 1) and arbitration class, bound to arbitration domain 0.
func (a *AdminClient) CreateIOQueuePair(now vclock.Time, depth int, class Class) (*QueuePair, error) {
	return a.CreateIOQueuePairIn(now, depth, class, 0)
}

// CreateIOQueuePairIn creates an I/O queue pair bound to the given
// arbitration domain. Queue pairs whose commands may conflict — share
// a media footprint or mutable FTL state — must share a domain; the
// domain must exist (ErrBadQueueID otherwise).
func (a *AdminClient) CreateIOQueuePairIn(now vclock.Time, depth int, class Class, domain int) (*QueuePair, error) {
	comp, err := a.do(now, Command{
		Op:    OpAdminCreateIOQP,
		Admin: AdminParams{Depth: depth, Class: class, Domain: domain},
	})
	if err != nil {
		return nil, err
	}
	return comp.Admin.(*QueuePair), nil
}

// RecreateIOQueuePair recreates a deleted I/O queue pair under its
// original ID qid — session-scoped queue-pair resurrection for fabric
// reconnects. The ID must have been issued by an earlier create and
// must not be live; the recreated pair keeps the original arbitration
// tie-break identity.
func (a *AdminClient) RecreateIOQueuePair(now vclock.Time, qid, depth int, class Class) (*QueuePair, error) {
	if qid <= 0 {
		return nil, fmt.Errorf("%w: queue %d is not recreatable", ErrBadQueueID, qid)
	}
	comp, err := a.do(now, Command{
		Op:    OpAdminCreateIOQP,
		Admin: AdminParams{QID: qid, Depth: depth, Class: class},
	})
	if err != nil {
		return nil, err
	}
	return comp.Admin.(*QueuePair), nil
}

// DeleteIOQueuePair deletes qp. The queue must be idle: every slot
// reaped, nothing staged or visible (ErrQueueBusy otherwise).
func (a *AdminClient) DeleteIOQueuePair(now vclock.Time, qp *QueuePair) error {
	_, err := a.do(now, Command{Op: OpAdminDeleteIOQP, Admin: AdminParams{QID: qp.id}})
	return err
}

// GetLogPage returns the selected log page; nsid is 0 for controller-
// and device-scoped pages.
func (a *AdminClient) GetLogPage(now vclock.Time, page LogPage, nsid int) (any, error) {
	comp, err := a.do(now, Command{
		Op:    OpAdminGetLogPage,
		NSID:  nsid,
		Admin: AdminParams{Log: page},
	})
	if err != nil {
		return nil, err
	}
	return comp.Admin, nil
}

// ControllerStats returns the controller counters log page.
func (a *AdminClient) ControllerStats(now vclock.Time) (ox.Stats, error) {
	v, err := a.GetLogPage(now, LogControllerStats, 0)
	if err != nil {
		return ox.Stats{}, err
	}
	return v.(ox.Stats), nil
}

// Utilization returns controller memory-bus and core utilization at
// virtual instant now.
func (a *AdminClient) Utilization(now vclock.Time) (UtilizationLog, error) {
	v, err := a.GetLogPage(now, LogUtilization, 0)
	if err != nil {
		return UtilizationLog{}, err
	}
	return v.(UtilizationLog), nil
}

// ChunkReport returns the device's Open-Channel chunk report.
func (a *AdminClient) ChunkReport(now vclock.Time) ([]ocssd.ChunkInfo, error) {
	v, err := a.GetLogPage(now, LogChunkReport, 0)
	if err != nil {
		return nil, err
	}
	return v.([]ocssd.ChunkInfo), nil
}

// MediaStats returns the device counters log page.
func (a *AdminClient) MediaStats(now vclock.Time) (ocssd.Stats, error) {
	v, err := a.GetLogPage(now, LogMediaStats, 0)
	if err != nil {
		return ocssd.Stats{}, err
	}
	return v.(ocssd.Stats), nil
}

// FaultLog returns the device fault log page.
func (a *AdminClient) FaultLog(now vclock.Time) (ocssd.FaultLog, error) {
	v, err := a.GetLogPage(now, LogFaults, 0)
	if err != nil {
		return ocssd.FaultLog{}, err
	}
	return v.(ocssd.FaultLog), nil
}

// ExecutorStats returns the execution-engine log page: which engine is
// serving commands and, for the pipelined executor, how much overlap
// the worker pool realized.
func (a *AdminClient) ExecutorStats(now vclock.Time) (ExecutorLog, error) {
	v, err := a.GetLogPage(now, LogExecutor, 0)
	if err != nil {
		return ExecutorLog{}, err
	}
	return v.(ExecutorLog), nil
}

// OffloadStats returns a namespace's computational-storage counters
// log page.
func (a *AdminClient) OffloadStats(now vclock.Time, nsid int) (offload.Stats, error) {
	v, err := a.GetLogPage(now, LogOffload, nsid)
	if err != nil {
		return offload.Stats{}, err
	}
	return v.(offload.Stats), nil
}

// NamespaceStats returns a namespace's FTL counters; the concrete type
// depends on the adapter (oxblock.Stats, oxeleos.Stats, lightlsm.Stats).
func (a *AdminClient) NamespaceStats(now vclock.Time, nsid int) (any, error) {
	return a.GetLogPage(now, LogNamespaceStats, nsid)
}

// ZoneReport returns an OX-ZNS namespace's zone report.
func (a *AdminClient) ZoneReport(now vclock.Time, nsid int) ([]zns.ZoneInfo, error) {
	v, err := a.GetLogPage(now, LogZoneReport, nsid)
	if err != nil {
		return nil, err
	}
	return v.([]zns.ZoneInfo), nil
}

// GCStats returns an OX-Block namespace's garbage-collection counters.
func (a *AdminClient) GCStats(now vclock.Time, nsid int) (ftlcore.GCStats, error) {
	v, err := a.GetLogPage(now, LogGCStats, nsid)
	if err != nil {
		return ftlcore.GCStats{}, err
	}
	return v.(ftlcore.GCStats), nil
}

// TableChunks returns the chunks backing a committed LightLSM table.
func (a *AdminClient) TableChunks(now vclock.Time, nsid int, table uint64) ([]ocssd.ChunkID, error) {
	comp, err := a.do(now, Command{
		Op:     OpAdminGetLogPage,
		NSID:   nsid,
		Handle: table,
		Admin:  AdminParams{Log: LogTableChunks},
	})
	if err != nil {
		return nil, err
	}
	return comp.Admin.([]ocssd.ChunkID), nil
}
