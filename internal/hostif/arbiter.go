package hostif

import "fmt"

// Class is an NVMe-style weighted-round-robin arbitration class. A
// queue pair declares its class at creation (AdminCreateIOQP) and keeps
// it for life. The zero value is ClassMedium, so callers that do not
// care about QoS get the default service class.
type Class uint8

const (
	// ClassMedium is the default weighted class.
	ClassMedium Class = iota
	// ClassUrgent is strict-priority: an urgent queue with a visible
	// command is always served before any weighted class (only the
	// admin queue outranks it).
	ClassUrgent
	// ClassHigh is the heaviest weighted class.
	ClassHigh
	// ClassLow is the lightest weighted class.
	ClassLow
)

var classNames = [...]string{
	ClassMedium: "medium",
	ClassUrgent: "urgent",
	ClassHigh:   "high",
	ClassLow:    "low",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Weights are the per-class credit bursts of the weighted-round-robin
// arbiter: while a class has credits and a visible command, it is
// served and pays one credit; when every class holding visible commands
// is out of credits, all classes refill to their weight. Urgent and
// admin are strict-priority and never consume credits.
type Weights struct {
	High, Medium, Low int
}

// DefaultWeights returns the 8/4/2 burst used when HostConfig.Weights
// is zero.
func DefaultWeights() Weights { return Weights{High: 8, Medium: 4, Low: 2} }

// withDefaults replaces non-positive weights with the defaults, so a
// partially-filled Weights never starves a class entirely.
func (w Weights) withDefaults() Weights {
	d := DefaultWeights()
	if w.High <= 0 {
		w.High = d.High
	}
	if w.Medium <= 0 {
		w.Medium = d.Medium
	}
	if w.Low <= 0 {
		w.Low = d.Low
	}
	return w
}

// Arbitration buckets, in service-priority order. Separate from Class
// because the admin queue is not a Class a caller can request.
const (
	bucketAdmin = iota
	bucketUrgent
	bucketHigh
	bucketMedium
	bucketLow
	numBuckets
)

// wrr indexes the weighted buckets into the credit array.
var wrrBuckets = [...]int{bucketHigh, bucketMedium, bucketLow}

func bucketOf(qp *QueuePair) int {
	if qp.admin {
		return bucketAdmin
	}
	switch qp.class {
	case ClassUrgent:
		return bucketUrgent
	case ClassHigh:
		return bucketHigh
	case ClassLow:
		return bucketLow
	default:
		return bucketMedium
	}
}

// arbitrate picks the next queue pair of this domain to serve, or nil
// when none of the domain's queues has a visible command. Caller holds
// the domain's execMu.
//
// The decision is a pure function of (submission history, credit
// state): one scan over the per-queue atomic doorbell timestamps finds
// each bucket's earliest-doorbell queue (ties keep the lower queue ID,
// scanned first; within a queue, slots are FIFO); then the admin
// bucket wins outright, urgent next, and the weighted buckets consume
// credits in class order high → medium → low, refilling every class
// when all ready classes are dry. A host whose I/O queues are all one
// class therefore serves exactly the old flat round-robin order —
// earliest doorbell, ties on (queueID, slot) — which is what keeps the
// default-configuration figure tables byte-identical.
func (d *domain) arbitrate() *QueuePair {
	var best [numBuckets]*QueuePair
	var bestReady [numBuckets]int64
	for b := range bestReady {
		bestReady[b] = noHead
	}
	for _, qp := range d.queuePairs() {
		r := qp.headReady.Load()
		if r == noHead {
			continue
		}
		if b := bucketOf(qp); r < bestReady[b] {
			best[b], bestReady[b] = qp, r
		}
		// Equal ready times fall through: the earlier queue ID
		// (scanned first) keeps the grant.
	}
	if best[bucketAdmin] != nil {
		return best[bucketAdmin]
	}
	if best[bucketUrgent] != nil {
		return best[bucketUrgent]
	}
	if best[bucketHigh] == nil && best[bucketMedium] == nil && best[bucketLow] == nil {
		return nil
	}
	for {
		for i, b := range wrrBuckets {
			if best[b] != nil && d.credits[i] > 0 {
				d.credits[i]--
				return best[b]
			}
		}
		// Every ready class is out of credits: refill the burst.
		d.credits = [3]int{d.h.weights.High, d.h.weights.Medium, d.h.weights.Low}
	}
}
