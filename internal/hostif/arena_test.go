package hostif

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/vclock"
)

// TestArenaRecyclesSlotAfterReap pins the allocation-free contract:
// a closed submit/reap loop must hand the same Command storage back on
// every AcquireCommand, because the reap recycled it.
func TestArenaRecyclesSlotAfterReap(t *testing.T) {
	h, _ := testHost(t, vclock.Microsecond)
	qp := openQP(t, h, 1)

	first := qp.AcquireCommand()
	ptr := first
	for i := 0; i < 100; i++ {
		cmd := ptr
		if i > 0 {
			cmd = qp.AcquireCommand()
			if cmd != first {
				t.Fatalf("iteration %d: arena handed out new storage %p, want recycled %p", i, cmd, first)
			}
		}
		cmd.Op, cmd.LPN = OpWrite, int64(i)
		if err := qp.Push(vclock.Time(i), cmd); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		c := qp.MustReap()
		if c.Slot != uint64(i) {
			t.Fatalf("iteration %d: slot %d", i, c.Slot)
		}
	}
}

// TestArenaReapClearsCommand checks recycling drops payload references
// and zeroes fields before the next acquisition.
func TestArenaReapClearsCommand(t *testing.T) {
	h, _ := testHost(t, vclock.Microsecond)
	qp := openQP(t, h, 1)
	cmd := qp.AcquireCommand()
	cmd.Op, cmd.Data = OpWrite, make([]byte, 64)
	if err := qp.Push(0, cmd); err != nil {
		t.Fatal(err)
	}
	qp.MustReap()
	again := qp.AcquireCommand()
	if again != cmd {
		t.Fatalf("want recycled storage")
	}
	if again.Op != 0 || again.Data != nil {
		t.Fatalf("recycled command not cleared: %+v", again)
	}
}

// TestArenaReuseBeforeReapDetected: resubmitting an arena command whose
// completion has not been reaped is driver misuse and must be caught.
func TestArenaReuseBeforeReapDetected(t *testing.T) {
	h, _ := testHost(t, vclock.Microsecond)
	qp := openQP(t, h, 4)

	cmd := qp.AcquireCommand()
	cmd.Op = OpWrite
	if _, err := qp.Submit(cmd); err != nil {
		t.Fatal(err)
	}
	// Still staged (doorbell not rung): resubmission is already misuse.
	if _, err := qp.Submit(cmd); !errors.Is(err, ErrCommandInFlight) {
		t.Fatalf("staged resubmit: %v, want ErrCommandInFlight", err)
	}
	qp.Ring(0)
	// Visible but unexecuted: still in flight.
	if _, err := qp.Submit(cmd); !errors.Is(err, ErrCommandInFlight) {
		t.Fatalf("rung resubmit: %v, want ErrCommandInFlight", err)
	}
	// Executed but unreaped: the slot is still held.
	h.Drain()
	if _, err := qp.Submit(cmd); !errors.Is(err, ErrCommandInFlight) {
		t.Fatalf("pre-reap resubmit: %v, want ErrCommandInFlight", err)
	}
	qp.MustReap()
	// Reaped: the slot was recycled, the old pointer is dead.
	if _, err := qp.Submit(cmd); !errors.Is(err, ErrCommandRecycled) {
		t.Fatalf("post-reap resubmit: %v, want ErrCommandRecycled", err)
	}
	// The sanctioned path works again.
	fresh := qp.AcquireCommand()
	fresh.Op = OpWrite
	if err := qp.Push(0, fresh); err != nil {
		t.Fatal(err)
	}
	qp.MustReap()
}

// TestDriverOwnedCommandsBypassArena: commands the driver allocates
// itself are not tracked and may be resubmitted freely (the examples
// and old drivers do this).
func TestDriverOwnedCommandsBypassArena(t *testing.T) {
	h, _ := testHost(t, vclock.Microsecond)
	qp := openQP(t, h, 1)
	cmd := &Command{Op: OpWrite}
	for i := 0; i < 3; i++ {
		if err := qp.Push(vclock.Time(i), cmd); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		qp.MustReap()
	}
}

// TestShardedHostConcurrentStress hammers Submit/Ring/Reap from many
// goroutines on their own queue pairs (≥8, each with arena commands)
// while others call ReapAny and Outstanding — run under -race in CI to
// pin the per-queue-pair locking discipline.
func TestShardedHostConcurrentStress(t *testing.T) {
	h, _ := testHost(t, vclock.Microsecond)
	const queues = 8
	const opsPerQueue = 200
	qps := make([]*QueuePair, queues)
	for i := range qps {
		qps[i] = openQP(t, h, 4)
	}

	var wg sync.WaitGroup
	errs := make(chan error, queues)
	for i := range qps {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			qp := qps[q]
			reaped := 0
			for issued := 0; issued < opsPerQueue; {
				burst := 0
				for burst < qp.Depth() && issued < opsPerQueue {
					cmd := qp.AcquireCommand()
					cmd.Op, cmd.LPN = OpWrite, int64(q*1000+issued)
					if _, err := qp.Submit(cmd); err != nil {
						errs <- fmt.Errorf("queue %d submit %d: %w", q, issued, err)
						return
					}
					issued++
					burst++
				}
				qp.Ring(vclock.Time(issued) * vclock.Time(vclock.Microsecond))
				for {
					if _, ok := qp.Reap(); !ok {
						break
					}
					reaped++
				}
				_ = qp.Outstanding()
			}
			for reaped < opsPerQueue {
				if _, ok := qp.Reap(); ok {
					reaped++
				}
			}
		}(i)
	}
	// Concurrent global observers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			h.Drain()
			_ = h.Executed()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := h.Executed(); got != queues*opsPerQueue {
		t.Fatalf("executed %d commands, want %d", got, queues*opsPerQueue)
	}
	for i, qp := range qps {
		if n := qp.Outstanding(); n != 0 {
			t.Fatalf("queue %d still holds %d slots", i, n)
		}
	}
}
