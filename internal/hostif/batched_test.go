package hostif

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/vclock"
)

// TestBatchedMatchesSerialRandomized is the batched executor's
// equivalence oracle at the host level: the randomized multi-queue
// mixed-footprint workload (disjoint lanes, same-lane conflicts,
// exclusive barriers, admin interleavings) must produce completion
// streams bit-identical to the serial reference at every batch size —
// including batch size 1, which reduces the batched gather loop to the
// pipelined executor's one-grant-per-acquisition behavior.
func TestBatchedMatchesSerialRandomized(t *testing.T) {
	const queues, rounds, lanes = 6, 40, 4
	run := func(cfg HostConfig) []Completion {
		ctrl := testController(t)
		h := NewHost(ctrl, cfg)
		ns := newSlowNS(lanes, 9*vclock.Microsecond)
		attachNS(t, h, ns)
		qps := make([]*QueuePair, queues)
		for i := range qps {
			qps[i] = openQP(t, h, 4)
		}
		rng := rand.New(rand.NewSource(42))
		var out []Completion
		now := vclock.Time(0)
		for r := 0; r < rounds; r++ {
			for qi, qp := range qps {
				batch := rng.Intn(4)
				for b := 0; b < batch; b++ {
					op := OpWrite
					if rng.Intn(8) == 0 {
						op = OpFlush // exclusive: acts as a barrier
					}
					cmd := qp.AcquireCommand()
					cmd.Op = op
					cmd.Zone = rng.Intn(lanes)
					cmd.LPN = int64(r*1000 + qi*100 + b)
					if _, err := qp.Submit(cmd); err != nil {
						t.Fatal(err)
					}
				}
				qp.Ring(now.Add(vclock.Duration(rng.Intn(50)) * vclock.Microsecond))
			}
			if r%7 == 3 {
				if _, err := h.Admin().Identify(now); err != nil {
					t.Fatal(err)
				}
			}
			for {
				c, ok := h.ReapAny()
				if !ok {
					break
				}
				out = append(out, c)
			}
			now = now.Add(200 * vclock.Microsecond)
		}
		return out
	}
	serial := run(HostConfig{})
	for _, batch := range []int{1, 4, 16} {
		got := run(HostConfig{Executor: ExecutorBatched, Workers: 4, BatchSize: batch})
		if len(got) != len(serial) {
			t.Fatalf("batch=%d: %d completions vs serial %d", batch, len(got), len(serial))
		}
		for i := range serial {
			if keyOf(serial[i]) != keyOf(got[i]) {
				t.Fatalf("batch=%d: completion %d diverged:\nserial  %+v\nbatched %+v",
					batch, i, serial[i], got[i])
			}
		}
	}
}

// TestBatchedAmortizesAcquisitions proves the batch gather actually
// amortizes: with a deep multi-queue backlog visible at one doorbell
// instant, the batched executor takes far fewer arbitration
// acquisitions than it issues grants, while the executor log still
// identifies the engine and its batch size.
func TestBatchedAmortizesAcquisitions(t *testing.T) {
	h := NewHost(testController(t), HostConfig{Executor: ExecutorBatched, Workers: 4, BatchSize: 16})
	ns := newSlowNS(4, 10*vclock.Microsecond)
	attachNS(t, h, ns)
	qps := make([]*QueuePair, 4)
	for i := range qps {
		qps[i] = openQP(t, h, 8)
	}
	for round := 0; round < 4; round++ {
		for i, qp := range qps {
			for b := 0; b < 8; b++ {
				cmd := qp.AcquireCommand()
				cmd.Op, cmd.Zone, cmd.LPN = OpWrite, i, int64(round*100+b)
				if _, err := qp.Submit(cmd); err != nil {
					t.Fatal(err)
				}
			}
			qp.Ring(vclock.Time(round) * vclock.Time(vclock.Millisecond))
		}
		h.Drain()
		for _, qp := range qps {
			for {
				if _, ok := qp.Reap(); !ok {
					break
				}
			}
		}
	}
	log, err := h.Admin().ExecutorStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if log.Executor != ExecutorBatched || log.BatchSize != 16 {
		t.Fatalf("log identity: %+v", log)
	}
	if log.Grants == 0 || log.Acquisitions == 0 {
		t.Fatalf("no activity recorded: %+v", log)
	}
	// 128 I/O grants at 32 visible per drain: well under one acquisition
	// per four grants even counting the admin (inline) traffic.
	if ratio := float64(log.Acquisitions) / float64(log.Grants); ratio > 0.25 {
		t.Fatalf("acquisitions/grant = %.3f, want ≤ 0.25: %+v", ratio, log)
	}
}

// TestBatchedStressRace is the 8-queue mixed-footprint stress under the
// batched executor, meant for -race: concurrent submitters drive
// group-scoped appends, reads and exclusive resets while reapers
// consume completions, at several batch sizes.
func TestBatchedStressRace(t *testing.T) {
	const groups, rounds = 4, 30
	for _, batch := range []int{1, 4, 16} {
		h, nsid, report := znsHost(t, HostConfig{Executor: ExecutorBatched, Workers: 4, BatchSize: batch}, groups)
		zoneOf := make([][]int, groups)
		for _, zi := range report {
			zoneOf[zi.Group] = append(zoneOf[zi.Group], zi.Index)
		}
		id, err := h.Admin().IdentifyNamespace(0, nsid)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 2*groups; w++ {
			qp := openQP(t, h, 2)
			wg.Add(1)
			go func(w int, qp *QueuePair) {
				defer wg.Done()
				g := w % groups
				zone := zoneOf[g][w/groups%len(zoneOf[g])]
				block := make([]byte, id.BlockSize)
				now := vclock.Time(0)
				for r := 0; r < rounds; r++ {
					cmd := qp.AcquireCommand()
					switch r % 6 {
					case 5:
						cmd.Op, cmd.NSID, cmd.Zone = OpZoneReset, nsid, zone
					case 2:
						cmd.Op, cmd.NSID, cmd.Zone = OpRead, nsid, zone
						cmd.LPN, cmd.Length = 0, int64(id.BlockSize)
					default:
						cmd.Op, cmd.NSID, cmd.Zone, cmd.Data = OpZoneAppend, nsid, zone, block
					}
					if err := qp.Push(now, cmd); err != nil {
						t.Error(err)
						return
					}
					c := qp.MustReap()
					if c.Err != nil {
						t.Errorf("batch %d worker %d round %d: %v", batch, w, r, c.Err)
						return
					}
					now = c.Done
				}
			}(w, qp)
		}
		wg.Wait()
		log, err := h.Admin().ExecutorStats(0)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(2 * groups * rounds); log.Grants < want {
			t.Fatalf("batch %d: grants %d, want ≥ %d (%+v)", batch, log.Grants, want, log)
		}
	}
}

// TestDomainShardingMatchesSingleDomain pins the sharding reduction: a
// workload whose footprints never cross domains produces the identical
// completion stream — same order, same virtual times — whether all
// queue pairs share one arbitration domain or are split across two.
// Lanes are partitioned per domain (conflicting queue pairs must share
// a domain; that contract is what makes the split legal here).
func TestDomainShardingMatchesSingleDomain(t *testing.T) {
	const queuesPerDom, rounds, lanesPerDom = 3, 30, 2
	run := func(domains int) []Completion {
		h := NewHost(testController(t), HostConfig{Domains: domains})
		ns := newSlowNS(2*lanesPerDom, 9*vclock.Microsecond)
		attachNS(t, h, ns)
		var qps []*QueuePair
		var qdom []int
		for d := 0; d < 2; d++ {
			bind := 0
			if domains > 1 {
				bind = d
			}
			for q := 0; q < queuesPerDom; q++ {
				qp, err := h.Admin().CreateIOQueuePairIn(0, 4, ClassMedium, bind)
				if err != nil {
					t.Fatal(err)
				}
				qps = append(qps, qp)
				qdom = append(qdom, d)
			}
		}
		rng := rand.New(rand.NewSource(7))
		var out []Completion
		now := vclock.Time(0)
		for r := 0; r < rounds; r++ {
			for qi, qp := range qps {
				batch := rng.Intn(3)
				for b := 0; b < batch; b++ {
					cmd := qp.AcquireCommand()
					cmd.Op = OpWrite
					cmd.Zone = qdom[qi]*lanesPerDom + rng.Intn(lanesPerDom)
					cmd.LPN = int64(r*1000 + qi*100 + b)
					if _, err := qp.Submit(cmd); err != nil {
						t.Fatal(err)
					}
				}
				qp.Ring(now.Add(vclock.Duration(rng.Intn(40)) * vclock.Microsecond))
			}
			for {
				c, ok := h.ReapAny()
				if !ok {
					break
				}
				out = append(out, c)
			}
			now = now.Add(150 * vclock.Microsecond)
		}
		return out
	}
	single := run(1)
	sharded := run(2)
	if len(single) != len(sharded) || len(single) == 0 {
		t.Fatalf("completions %d vs %d", len(single), len(sharded))
	}
	for i := range single {
		if keyOf(single[i]) != keyOf(sharded[i]) {
			t.Fatalf("completion %d diverged:\nsingle  %+v\nsharded %+v", i, single[i], sharded[i])
		}
	}
}

// TestDomainBinding covers the domain control plane: out-of-range
// bindings are rejected, Identify reports the domain count, and the
// executor log exposes per-domain rows exactly when the host is
// sharded.
func TestDomainBinding(t *testing.T) {
	h := NewHost(testController(t), HostConfig{Domains: 2, Executor: ExecutorBatched, Workers: 2})
	if _, err := h.Admin().CreateIOQueuePairIn(0, 2, ClassMedium, 2); err == nil {
		t.Fatal("domain 2 of 2 accepted")
	}
	if _, err := h.Admin().CreateIOQueuePairIn(0, 2, ClassMedium, -1); err == nil {
		t.Fatal("negative domain accepted")
	}
	qp, err := h.Admin().CreateIOQueuePairIn(0, 2, ClassMedium, 1)
	if err != nil {
		t.Fatal(err)
	}
	id, err := h.Admin().Identify(0)
	if err != nil {
		t.Fatal(err)
	}
	if id.Domains != 2 || id.BatchSize != DefaultBatchSize {
		t.Fatalf("identify: %+v", id)
	}
	ns := newSlowNS(1, 5*vclock.Microsecond)
	attachNS(t, h, ns)
	cmd := qp.AcquireCommand()
	cmd.Op, cmd.Zone = OpWrite, 0
	if err := qp.Push(0, cmd); err != nil {
		t.Fatal(err)
	}
	if _, ok := qp.Reap(); !ok {
		t.Fatal("missing completion")
	}
	log, err := h.Admin().ExecutorStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if log.Domains != 2 || len(log.PerDomain) != 2 {
		t.Fatalf("per-domain stats: %+v", log)
	}
	// The I/O ran in domain 1; the admin traffic in domain 0.
	if log.PerDomain[1].Grants == 0 || log.PerDomain[0].Grants == 0 {
		t.Fatalf("domain activity: %+v", log)
	}
	if sum := log.PerDomain[0].Grants + log.PerDomain[1].Grants; sum != log.Grants {
		t.Fatalf("aggregate grants %d != per-domain sum %d", log.Grants, sum)
	}
}
