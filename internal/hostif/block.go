package hostif

import (
	"fmt"

	"repro/internal/offload"
	"repro/internal/oxblock"
	"repro/internal/vclock"
)

// BlockNamespace serves an OX-Block device — or an LPN partition of one
// — as a host-interface namespace. Partitions let several NVMe-style
// namespaces (tenants) share one device: each namespace addresses pages
// [0, pages) and the adapter rebases onto [base, base+pages).
type BlockNamespace struct {
	dev   *oxblock.Device
	base  int64
	pages int64
}

// NewBlockNamespace exposes the whole device as one namespace.
func NewBlockNamespace(dev *oxblock.Device) *BlockNamespace {
	return &BlockNamespace{dev: dev, pages: dev.LogicalPages()}
}

// NewBlockPartition exposes pages [base, base+pages) of dev as an
// isolated namespace.
func NewBlockPartition(dev *oxblock.Device, base, pages int64) (*BlockNamespace, error) {
	if base < 0 || pages <= 0 || base+pages > dev.LogicalPages() {
		return nil, fmt.Errorf("hostif: partition [%d,+%d) exceeds device capacity %d",
			base, pages, dev.LogicalPages())
	}
	return &BlockNamespace{dev: dev, base: base, pages: pages}, nil
}

// Name implements Namespace.
func (n *BlockNamespace) Name() string { return "oxblock" }

// identity serves AdminIdentify: a 4 KB block namespace of n.pages
// logical pages.
func (n *BlockNamespace) identity() NamespaceIdentity {
	return NamespaceIdentity{Name: n.Name(), Capacity: n.pages, BlockSize: 4096}
}

// logPage serves AdminGetLogPage: FTL counters and GC statistics.
func (n *BlockNamespace) logPage(now vclock.Time, cmd *Command) (any, error) {
	switch cmd.Admin.Log {
	case LogNamespaceStats:
		return n.dev.Stats(), nil
	case LogGCStats:
		return n.dev.GCStats(), nil
	case LogOffload:
		return n.dev.Offload().Stats(), nil
	default:
		return nil, fmt.Errorf("%w: %v on %s", ErrBadLogPage, cmd.Admin.Log, n.Name())
	}
}

// Footprint implements Namespace. Every OX-Block command is exclusive
// within its controller domain: reads, writes and trims run under the
// device-wide transaction lock and charge the shared controller core
// pool; writes additionally append to the WAL and may trigger group-
// marked GC or a checkpoint, whose media footprint is unknowable before
// execution. Partitions of one device share the domain, so tenants on
// one OX-Block device serialize exactly as the serial executor would —
// only commands on *different* controllers overlap.
func (n *BlockNamespace) Footprint(cmd *Command) Footprint {
	return ExclusiveFootprint(n.dev.Controller())
}

func (n *BlockNamespace) checkRange(lpn int64, pages int) error {
	if lpn < 0 || pages <= 0 || lpn+int64(pages) > n.pages {
		return fmt.Errorf("%w: [%d,+%d) of %d", oxblock.ErrRange, lpn, pages, n.pages)
	}
	return nil
}

// Execute implements Namespace.
func (n *BlockNamespace) Execute(now vclock.Time, cmd *Command) Result {
	switch cmd.Op {
	case OpWrite:
		pages := len(cmd.Data) / 4096
		if err := n.checkRange(cmd.LPN, pages); err != nil {
			return Result{End: now, Err: err}
		}
		end, err := n.dev.Write(now, n.base+cmd.LPN, cmd.Data)
		return Result{End: end, Err: err}
	case OpRead:
		if err := n.checkRange(cmd.LPN, cmd.Pages); err != nil {
			return Result{End: now, Err: err}
		}
		data, end, err := n.dev.Read(now, n.base+cmd.LPN, cmd.Pages)
		return Result{End: end, Err: err, Data: data}
	case OpTrim:
		if err := n.checkRange(cmd.LPN, cmd.Pages); err != nil {
			return Result{End: now, Err: err}
		}
		end, err := n.dev.Trim(now, n.base+cmd.LPN, cmd.Pages)
		return Result{End: end, Err: err}
	case OpFlush:
		end, err := n.dev.Checkpoint(now)
		return Result{End: end, Err: err}
	case OpOffloadScan:
		if err := n.checkRange(cmd.LPN, cmd.Pages); err != nil {
			return Result{End: now, Err: err}
		}
		pred, err := offload.DecodePredicate(cmd.Data)
		if err != nil {
			return Result{End: now, Err: err}
		}
		res, end, err := n.dev.OffloadScan(now, n.base+cmd.LPN, cmd.Pages, pred)
		return Result{End: end, Err: err, Data: res}
	default:
		return Result{End: now, Err: fmt.Errorf("%w: %v on %s", ErrUnsupported, cmd.Op, n.Name())}
	}
}
