package hostif

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/vclock"
)

// openClassQP creates an I/O queue pair of the given class.
func openClassQP(t testing.TB, h *Host, depth int, class Class) *QueuePair {
	t.Helper()
	qp, err := h.Admin().CreateIOQueuePair(0, depth, class)
	if err != nil {
		t.Fatal(err)
	}
	return qp
}

// TestWRRCreditSchedule pins the weighted-round-robin service pattern:
// with every class continuously backlogged at the same doorbell
// instant, the arbiter must serve exactly weight-sized bursts in class
// order — H H H M M L, refill, H H H M M L — nothing else.
func TestWRRCreditSchedule(t *testing.T) {
	ctrl := testController(t)
	ns := newFakeNS(10 * vclock.Microsecond)
	h := NewHost(ctrl, HostConfig{Weights: Weights{High: 3, Medium: 2, Low: 1}})
	if _, err := h.Admin().AttachNamespace(0, ns); err != nil {
		t.Fatal(err)
	}
	// Tag commands by class through LPN: 1xx high, 2xx medium, 3xx low.
	qh := openClassQP(t, h, 8, ClassHigh)
	qm := openClassQP(t, h, 8, ClassMedium)
	ql := openClassQP(t, h, 8, ClassLow)
	for i := int64(0); i < 6; i++ {
		if _, err := qh.Submit(&Command{Op: OpWrite, LPN: 100 + i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 4; i++ {
		if _, err := qm.Submit(&Command{Op: OpWrite, LPN: 200 + i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 2; i++ {
		if _, err := ql.Submit(&Command{Op: OpWrite, LPN: 300 + i}); err != nil {
			t.Fatal(err)
		}
	}
	qh.Ring(0)
	qm.Ring(0)
	ql.Ring(0)
	h.Drain()
	want := []int64{100, 101, 102, 200, 201, 300, 103, 104, 105, 202, 203, 301}
	got := ns.executed()
	if len(got) != len(want) {
		t.Fatalf("executed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("credit schedule diverged at %d: executed %v, want %v", i, got, want)
		}
	}
}

// TestWRRUrgentStrictPriority: an urgent queue is served before every
// weighted class even when its doorbell rings later.
func TestWRRUrgentStrictPriority(t *testing.T) {
	ctrl := testController(t)
	ns := newFakeNS(10 * vclock.Microsecond)
	h := NewHost(ctrl, HostConfig{})
	if _, err := h.Admin().AttachNamespace(0, ns); err != nil {
		t.Fatal(err)
	}
	qm := openClassQP(t, h, 4, ClassMedium)
	qu := openClassQP(t, h, 4, ClassUrgent)
	for i := int64(0); i < 3; i++ {
		if _, err := qm.Submit(&Command{Op: OpWrite, LPN: 200 + i}); err != nil {
			t.Fatal(err)
		}
	}
	qm.Ring(0)
	for i := int64(0); i < 3; i++ {
		if _, err := qu.Submit(&Command{Op: OpWrite, LPN: 100 + i}); err != nil {
			t.Fatal(err)
		}
	}
	qu.Ring(vclock.Time(5 * vclock.Microsecond)) // later doorbell, still first
	h.Drain()
	want := []int64{100, 101, 102, 200, 201, 202}
	got := ns.executed()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("urgent not strict: executed %v, want %v", got, want)
		}
	}
}

// TestWRRDeterminism runs one mixed-class staggered workload twice and
// requires bit-identical completion sequences — the credit schedule is
// part of the determinism contract.
func TestWRRDeterminism(t *testing.T) {
	run := func() []Completion {
		ctrl := testController(t)
		ns := newFakeNS(7 * vclock.Microsecond)
		h := NewHost(ctrl, HostConfig{})
		if _, err := h.Admin().AttachNamespace(0, ns); err != nil {
			t.Fatal(err)
		}
		classes := []Class{ClassUrgent, ClassHigh, ClassMedium, ClassMedium, ClassLow}
		qps := make([]*QueuePair, len(classes))
		for i, cl := range classes {
			qps[i] = openClassQP(t, h, 6, cl)
		}
		for i, qp := range qps {
			for j := 0; j < 6; j++ {
				at := vclock.Time(i*3+j*11) * vclock.Time(vclock.Microsecond)
				if err := qp.Push(at, &Command{Op: OpWrite, LPN: int64(i*100 + j)}); err != nil {
					t.Fatal(err)
				}
			}
		}
		var out []Completion
		for {
			c, ok := h.ReapAny()
			if !ok {
				break
			}
			out = append(out, c)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != 30 || len(b) != 30 {
		t.Fatalf("completions %d/%d, want 30", len(a), len(b))
	}
	for i := range a {
		if a[i].QueueID != b[i].QueueID || a[i].Slot != b[i].Slot || a[i].Done != b[i].Done {
			t.Fatalf("run divergence at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestAdminStrictOverIO proves the admin queue outranks I/O at the same
// doorbell instant: a delete aimed at a queue whose command is visible
// at the identical timestamp must run first and find the queue busy.
func TestAdminStrictOverIO(t *testing.T) {
	h, _ := testHost(t, 10*vclock.Microsecond)
	qp := openQP(t, h, 2)
	if _, err := qp.Submit(&Command{Op: OpWrite, LPN: 1}); err != nil {
		t.Fatal(err)
	}
	qp.Ring(0)
	// Raw admin submission at the same instant 0.
	admin := h.Admin().Queue()
	del := admin.AcquireCommand()
	del.Op, del.Admin = OpAdminDeleteIOQP, AdminParams{QID: qp.ID()}
	if err := admin.Push(0, del); err != nil {
		t.Fatal(err)
	}
	h.Drain()
	if c := admin.MustReap(); !errors.Is(c.Err, ErrQueueBusy) {
		t.Fatalf("delete of busy queue: %v, want ErrQueueBusy (admin must run before the I/O command)", c.Err)
	}
	if c := qp.MustReap(); c.Err != nil {
		t.Fatal(c.Err)
	}
}

// TestAdminIOInterleaving drives the control plane mid-workload: a
// queue pair created while I/O is in flight joins arbitration, and a
// drained queue pair can be deleted and refuses further submissions.
func TestAdminIOInterleaving(t *testing.T) {
	h, ns := testHost(t, 10*vclock.Microsecond)
	admin := h.Admin()
	q1 := openQP(t, h, 4)
	for i := int64(0); i < 2; i++ {
		if _, err := q1.Submit(&Command{Op: OpWrite, LPN: 100 + i}); err != nil {
			t.Fatal(err)
		}
	}
	q1.Ring(0)
	// Create a second queue over the admin queue while q1's commands
	// are visible; its identity is live immediately.
	q2, err := admin.CreateIOQueuePair(0, 2, ClassMedium)
	if err != nil {
		t.Fatal(err)
	}
	if err := q2.Push(0, &Command{Op: OpWrite, LPN: 200}); err != nil {
		t.Fatal(err)
	}
	for reaped := 0; reaped < 3; reaped++ {
		if _, ok := h.ReapAny(); !ok {
			t.Fatal("completion queue ran dry")
		}
	}
	if got := ns.executed(); len(got) != 3 {
		t.Fatalf("executed %v, want 3 commands", got)
	}
	// Admin identify reports the live queue count.
	id, err := admin.Identify(0)
	if err != nil {
		t.Fatal(err)
	}
	if id.IOQueuePairs != 2 || id.Namespaces != 1 {
		t.Fatalf("identify: %d queues / %d namespaces, want 2 / 1", id.IOQueuePairs, id.Namespaces)
	}
	// Delete the idle q2; its notification registration dies with it,
	// submissions then bounce, q1 is unaffected.
	q2.SetNotify(1, func(Notification) {})
	if err := admin.DeleteIOQueuePair(0, q2); err != nil {
		t.Fatal(err)
	}
	if n := h.notifiers.Load(); n != 0 {
		t.Fatalf("deleted queue leaked %d notifier registrations", n)
	}
	if _, err := q2.Submit(&Command{Op: OpWrite}); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("submit to deleted queue: %v, want ErrQueueClosed", err)
	}
	if err := admin.DeleteIOQueuePair(0, q2); !errors.Is(err, ErrBadQueueID) {
		t.Fatalf("double delete: %v, want ErrBadQueueID", err)
	}
	if err := q1.Push(0, &Command{Op: OpWrite, LPN: 102}); err != nil {
		t.Fatal(err)
	}
	if c := q1.MustReap(); c.Err != nil {
		t.Fatal(c.Err)
	}
	id, err = admin.Identify(0)
	if err != nil {
		t.Fatal(err)
	}
	if id.IOQueuePairs != 1 {
		t.Fatalf("identify after delete: %d queues, want 1", id.IOQueuePairs)
	}
}

// TestReapAnySkipsAdminQueue: admin completions belong to the admin
// driver; a data-plane ReapAny loop running next to control-plane
// calls must never steal them.
func TestReapAnySkipsAdminQueue(t *testing.T) {
	h, _ := testHost(t, vclock.Microsecond)
	admin := h.Admin().Queue()
	cmd := admin.AcquireCommand()
	cmd.Op = OpAdminIdentify
	if err := admin.Push(0, cmd); err != nil {
		t.Fatal(err)
	}
	if c, ok := h.ReapAny(); ok {
		t.Fatalf("ReapAny returned an admin completion: %+v", c)
	}
	if c := admin.MustReap(); c.Err != nil || c.Admin == nil {
		t.Fatalf("admin completion lost to ReapAny: %+v", c)
	}
}

// TestCommandPlaneSeparation: admin opcodes are rejected on I/O queues
// and data opcodes on the admin queue, at submission time.
func TestCommandPlaneSeparation(t *testing.T) {
	h, _ := testHost(t, vclock.Microsecond)
	qp := openQP(t, h, 1)
	if _, err := qp.Submit(&Command{Op: OpAdminIdentify}); !errors.Is(err, ErrAdminOnly) {
		t.Fatalf("admin op on I/O queue: %v, want ErrAdminOnly", err)
	}
	if _, err := h.Admin().Queue().Submit(&Command{Op: OpWrite}); !errors.Is(err, ErrIOOnAdmin) {
		t.Fatalf("I/O op on admin queue: %v, want ErrIOOnAdmin", err)
	}
}

// notifyRun drives an identical submission history — staggered
// doorbell bursts on four mixed-class queues — and consumes the
// completions either by polling ReapAny or by per-queue notification
// callbacks. The submission history is fixed up front, so the two
// modes must produce identical virtual timing.
func notifyRun(t *testing.T, viaNotify bool, threshold int) []Completion {
	t.Helper()
	h, _ := testHost(t, 9*vclock.Microsecond)
	const queues, perQueue, burst = 4, 12, 3
	classes := []Class{ClassHigh, ClassMedium, ClassMedium, ClassLow}
	qps := make([]*QueuePair, queues)
	for i := range qps {
		qps[i] = openClassQP(t, h, perQueue, classes[i])
	}
	var mu sync.Mutex
	var got []Completion
	if viaNotify {
		for i := range qps {
			q := i
			qps[q].SetNotify(threshold, func(n Notification) {
				for {
					c, ok := qps[q].Reap()
					if !ok {
						return
					}
					mu.Lock()
					got = append(got, c)
					mu.Unlock()
				}
			})
		}
	}
	// Predetermined doorbells: each queue rings bursts at staggered
	// instants, executions interleaving with later submissions.
	for b := 0; b < perQueue/burst; b++ {
		for q, qp := range qps {
			for i := 0; i < burst; i++ {
				cmd := qp.AcquireCommand()
				cmd.Op, cmd.LPN = OpWrite, int64(q*100+b*burst+i)
				if _, err := qp.Submit(cmd); err != nil {
					t.Fatal(err)
				}
			}
			qp.Ring(vclock.Time(b*40+q*5) * vclock.Time(vclock.Microsecond))
		}
		if viaNotify {
			h.Drain()
		} else {
			for i := 0; i < queues*burst; i++ {
				c, ok := h.ReapAny()
				if !ok {
					t.Fatal("completion queue ran dry")
				}
				got = append(got, c)
			}
		}
	}
	if viaNotify && len(got) != queues*perQueue {
		t.Fatalf("notified %d completions, want %d", len(got), queues*perQueue)
	}
	return got
}

// TestNotifyMatchesPollTiming is the timing-equality proof: the same
// submission history reaped by polling and by interrupt-style
// notification (at several coalescing thresholds) completes every
// command at the identical virtual instant.
func TestNotifyMatchesPollTiming(t *testing.T) {
	poll := notifyRun(t, false, 0)
	for _, threshold := range []int{1, 3} {
		notified := notifyRun(t, true, threshold)
		if len(poll) != len(notified) {
			t.Fatalf("threshold %d: %d vs %d completions", threshold, len(poll), len(notified))
		}
		// Per-command timing must match exactly; notification order may
		// batch differently, so compare per (queue, slot).
		key := func(c Completion) [2]uint64 { return [2]uint64{uint64(c.QueueID), c.Slot} }
		done := make(map[[2]uint64]vclock.Time, len(poll))
		for _, c := range poll {
			done[key(c)] = c.Done
		}
		for _, c := range notified {
			want, ok := done[key(c)]
			if !ok {
				t.Fatalf("threshold %d: unexpected completion %+v", threshold, c)
			}
			if c.Done != want {
				t.Fatalf("threshold %d: queue %d slot %d done %v, poll-mode %v",
					threshold, c.QueueID, c.Slot, c.Done, want)
			}
		}
	}
}

// TestNotifyCoalescing pins the coalescing contract: with threshold 3
// and 8 completions in one drain, the host fires 3+3 and flushes the
// final 2 at drain end.
func TestNotifyCoalescing(t *testing.T) {
	h, _ := testHost(t, 5*vclock.Microsecond)
	qp := openQP(t, h, 8)
	var batches []int
	var last vclock.Time
	qp.SetNotify(3, func(n Notification) {
		batches = append(batches, n.Coalesced)
		last = n.At
	})
	for i := int64(0); i < 8; i++ {
		if _, err := qp.Submit(&Command{Op: OpWrite, LPN: i}); err != nil {
			t.Fatal(err)
		}
	}
	qp.Ring(0)
	h.Drain()
	if len(batches) != 3 || batches[0] != 3 || batches[1] != 3 || batches[2] != 2 {
		t.Fatalf("coalesced batches %v, want [3 3 2]", batches)
	}
	if want := vclock.Time(8 * 5 * vclock.Microsecond); last != want {
		t.Fatalf("final notification at %v, want %v", last, want)
	}
	for i := 0; i < 8; i++ {
		qp.MustReap()
	}
}

// TestNotifyStressRace hammers 8 notified queue pairs from concurrent
// submitters (run under -race in CI): callbacks reap on whichever
// goroutine drove the drain while workers submit and ring.
func TestNotifyStressRace(t *testing.T) {
	h, _ := testHost(t, vclock.Microsecond)
	const queues = 8
	const opsPerQueue = 200
	const depth = 4
	qps := make([]*QueuePair, queues)
	var reaped [queues]atomic.Int64
	for i := range qps {
		qps[i] = openQP(t, h, depth)
		q := i
		qps[q].SetNotify(2, func(n Notification) {
			for {
				if _, ok := qps[q].Reap(); !ok {
					return
				}
				reaped[q].Add(1)
			}
		})
	}
	var wg sync.WaitGroup
	for i := range qps {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			qp := qps[q]
			var pending *Command
			for issued := 0; issued < opsPerQueue; {
				if pending == nil {
					pending = qp.AcquireCommand()
					pending.Op, pending.LPN = OpWrite, int64(q*1000+issued)
				}
				if _, err := qp.Submit(pending); err != nil {
					if errors.Is(err, ErrQueueFull) {
						qp.Ring(vclock.Time(issued) * vclock.Time(vclock.Microsecond))
						h.Drain()
						continue
					}
					t.Error(err)
					return
				}
				pending = nil
				issued++
				if issued%depth == 0 {
					qp.Ring(vclock.Time(issued) * vclock.Time(vclock.Microsecond))
					h.Drain()
				}
			}
			qp.Ring(vclock.Time(opsPerQueue) * vclock.Time(vclock.Microsecond))
			for reaped[q].Load() < opsPerQueue {
				h.Drain()
			}
		}(i)
	}
	wg.Wait()
	for q := range reaped {
		if n := reaped[q].Load(); n != opsPerQueue {
			t.Fatalf("queue %d reaped %d, want %d", q, n, opsPerQueue)
		}
	}
	if got := h.Executed(); got != queues*opsPerQueue {
		t.Fatalf("executed %d commands, want %d", got, queues*opsPerQueue)
	}
}
