package hostif

import (
	"fmt"

	"repro/internal/oxeleos"
	"repro/internal/vclock"
)

// PageDesc describes one logical page inside an OX-ELEOS LSS I/O
// buffer (aliased so drivers build descriptor slices once and hand
// them through the command layer without conversion).
type PageDesc = oxeleos.PageDesc

// EleosNamespace serves an OX-ELEOS log-structured store as a
// host-interface namespace: OpFlush writes one LSS I/O buffer (the
// Figure 7 path — both controller copies included), OpRead returns one
// logical page, OpTrim deletes one.
type EleosNamespace struct {
	store *oxeleos.Store
}

// NewEleosNamespace wraps store.
func NewEleosNamespace(store *oxeleos.Store) *EleosNamespace {
	return &EleosNamespace{store: store}
}

// Name implements Namespace.
func (n *EleosNamespace) Name() string { return "oxeleos" }

// identity serves AdminIdentify: the LSS I/O buffer geometry.
func (n *EleosNamespace) identity() NamespaceIdentity {
	return NamespaceIdentity{Name: n.Name(), BufferBytes: n.store.BufferBytes()}
}

// logPage serves AdminGetLogPage: the store's counters.
func (n *EleosNamespace) logPage(now vclock.Time, cmd *Command) (any, error) {
	switch cmd.Admin.Log {
	case LogNamespaceStats:
		return n.store.Stats(), nil
	default:
		return nil, fmt.Errorf("%w: %v on %s", ErrBadLogPage, cmd.Admin.Log, n.Name())
	}
}

// Footprint implements Namespace. OX-ELEOS commands are exclusive
// within their controller domain: flushes cross the controller memory
// bus (the Figure 7 copies) and every operation runs under the
// store-wide lock, so commands of one store never overlap.
func (n *EleosNamespace) Footprint(cmd *Command) Footprint {
	return ExclusiveFootprint(n.store.Controller())
}

// Execute implements Namespace.
func (n *EleosNamespace) Execute(now vclock.Time, cmd *Command) Result {
	switch cmd.Op {
	case OpFlush:
		end, err := n.store.Flush(now, cmd.Data, cmd.Descs)
		return Result{End: end, Err: err}
	case OpRead:
		data, end, err := n.store.ReadPage(now, cmd.LPN)
		return Result{End: end, Err: err, Data: data}
	case OpTrim:
		end, err := n.store.Delete(now, cmd.LPN)
		return Result{End: end, Err: err}
	default:
		return Result{End: now, Err: fmt.Errorf("%w: %v on %s", ErrUnsupported, cmd.Op, n.Name())}
	}
}
