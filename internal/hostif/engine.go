package hostif

import (
	"fmt"
	"runtime"
	"sync"
)

// This file is the pipelined execution engine — the second stage of the
// host's two-stage command service. The first stage (the sequencer) is
// the arbitration loop in host.go: it picks grants in deterministic WRR
// order, assigns each a monotonic sequence number and classifies its
// media footprint through Namespace.Footprint. This stage takes those
// grants and runs them on a pool of workers, overlapping commands whose
// footprints are disjoint while conflicting, admin, host-link-charged
// and footprint-unknown commands act as barriers. Completions come back
// through a reorder stage keyed by sequence number, so queue-pair
// completion order, notification order and every virtual-time result
// are bit-for-bit identical to the serial executor.
//
// Why this is deterministic: the sequencer dispatches in sequence
// order, and a grant is not dispatched while any in-flight command's
// footprint conflicts with it. Footprints are conservative (see the
// Footprint contract in hostif.go): two commands allowed in flight
// together share no virtual-time resource and no mutable FTL state, so
// their reservations commute and every Result.End equals its serial
// value. The reorder stage then releases completions to the queue pairs
// strictly in sequence order, which is exactly the serial executor's
// completion order.

// ExecutorKind selects the host's command-service engine.
type ExecutorKind string

const (
	// ExecutorSerial executes every granted command inline in the
	// arbitration loop — the reference oracle. The zero value of
	// HostConfig.Executor selects it.
	ExecutorSerial ExecutorKind = "serial"
	// ExecutorPipelined decouples arbitration from media execution:
	// grants with disjoint footprints run concurrently on a worker pool
	// and a deterministic reorder stage restores serial completion
	// order.
	ExecutorPipelined ExecutorKind = "pipelined"
)

// ExecutorLog is the LogExecutor admin log page: the pipeline counters
// that make the execution engine observable over queue 0.
type ExecutorLog struct {
	// Executor and Workers echo the host configuration.
	Executor ExecutorKind
	Workers  int
	// Grants counts commands granted by the sequencer (I/O and admin).
	Grants int64
	// Dispatched counts grants handed to the worker pool.
	Dispatched int64
	// Inline counts grants executed inline in the sequencer (admin
	// commands, host-link-charged data commands, unknown namespaces).
	Inline int64
	// Overlapped counts dispatches that entered the pool while at least
	// one other command was already in flight — the concurrency the
	// engine actually realized.
	Overlapped int64
	// BarrierStalls counts the times an inline command had to wait for
	// the pipeline to drain before executing.
	BarrierStalls int64
	// ConflictStalls counts the times a dispatch waited for an
	// in-flight command with a conflicting footprint to complete.
	ConflictStalls int64
	// MaxInflight is the high-water mark of concurrently dispatched
	// commands.
	MaxInflight int
}

// execJob is one granted command in flight through the worker pool.
type execJob struct {
	seq uint64
	qp  *QueuePair
	e   sqe
	ns  Namespace
}

// run executes the job's data path. It mirrors Host.exec for the
// non-admin, non-host-link case: the namespace adapter does all
// controller and media accounting itself.
func (j execJob) run() Completion {
	cmd := j.e.cmd
	res := j.ns.Execute(j.e.ready, cmd)
	res.Status = StatusOf(res.Err)
	return Completion{
		QueueID:   j.qp.id,
		Slot:      j.e.slot,
		Op:        cmd.Op,
		NSID:      cmd.NSID,
		Submitted: j.e.ready,
		Done:      res.End,
		Result:    res,
		cmd:       cmd,
	}
}

// execDone is one finished job waiting in the reorder stage.
type execDone struct {
	qp *QueuePair
	c  Completion
}

// inflightCmd tracks one dispatched command's footprint until its
// completion is released.
type inflightCmd struct {
	seq uint64
	fp  Footprint
}

// engine is the worker pool plus the reorder stage. The fields below
// resultMu are owned by the sequencer: they are only touched from the
// arbitration loop, under the host's execMu.
type engine struct {
	workers  int
	jobs     chan execJob
	stopOnce sync.Once

	resultMu sync.Mutex
	resultC  *sync.Cond
	done     map[uint64]execDone // finished jobs keyed by sequence number

	// Sequencer state (execMu).
	nextSeq     uint64        // next sequence number to assign
	nextRelease uint64        // next sequence number to complete
	inflight    []inflightCmd // dispatched, completion not yet released
	stats       ExecutorLog
}

// newEngine starts a worker pool of the given size (minimum 1; zero
// selects GOMAXPROCS). Workers live until the engine is stopped.
func newEngine(workers int) *engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	eng := &engine{
		workers: workers,
		jobs:    make(chan execJob, workers),
		done:    make(map[uint64]execDone),
	}
	eng.resultC = sync.NewCond(&eng.resultMu)
	eng.stats.Executor = ExecutorPipelined
	eng.stats.Workers = workers
	for i := 0; i < workers; i++ {
		go eng.worker()
	}
	return eng
}

// stop terminates the worker goroutines; idempotent. The pipeline must
// be idle (every drain leaves it empty).
func (eng *engine) stop() { eng.stopOnce.Do(func() { close(eng.jobs) }) }

// worker executes jobs and parks each result in the reorder stage.
// Jobs in flight together never conflict, so which worker runs which
// job — and in what wall-clock order — cannot affect any result.
func (eng *engine) worker() {
	for j := range eng.jobs {
		c := j.run()
		eng.resultMu.Lock()
		eng.done[j.seq] = execDone{qp: j.qp, c: c}
		eng.resultC.Signal()
		eng.resultMu.Unlock()
	}
}

// Release modes of the reorder stage.
const (
	releaseReady = iota // pop whatever is already finished
	releaseOne          // block until at least one completion releases
	releaseAll          // block until the pipeline is empty
)

// release pops finished completions from the reorder stage in sequence
// order and posts them to their queue pairs — the only place pipelined
// completions become visible, which is what keeps completion-queue and
// notification order identical to the serial executor. Caller is the
// sequencer, holding execMu.
func (eng *engine) release(h *Host, mode int) {
	for {
		eng.resultMu.Lock()
		d, ok := eng.done[eng.nextRelease]
		for !ok {
			if mode == releaseReady || len(eng.inflight) == 0 {
				eng.resultMu.Unlock()
				return
			}
			eng.resultC.Wait()
			d, ok = eng.done[eng.nextRelease]
		}
		delete(eng.done, eng.nextRelease)
		eng.resultMu.Unlock()

		if len(eng.inflight) == 0 || eng.inflight[0].seq != eng.nextRelease {
			panic(fmt.Sprintf("hostif: reorder stage released seq %d out of order", eng.nextRelease))
		}
		eng.inflight = eng.inflight[:copy(eng.inflight, eng.inflight[1:])]
		eng.nextRelease++
		d.qp.complete(d.c)
		h.executed.Add(1)
		if mode == releaseOne {
			mode = releaseReady
		}
	}
}

// barrier drains the pipeline completely: every dispatched command
// completes and releases. Caller holds execMu.
func (eng *engine) barrier(h *Host) {
	if len(eng.inflight) > 0 {
		eng.stats.BarrierStalls++
	}
	eng.release(h, releaseAll)
}

// conflicts reports whether fp conflicts with any in-flight command.
func (eng *engine) conflicts(fp Footprint) bool {
	for i := range eng.inflight {
		if fp.Conflicts(eng.inflight[i].fp) {
			return true
		}
	}
	return false
}

// dispatch hands one granted command to the worker pool, first waiting
// for any conflicting in-flight command to complete. Caller holds
// execMu.
func (eng *engine) dispatch(h *Host, j execJob, fp Footprint) {
	if eng.conflicts(fp) {
		eng.stats.ConflictStalls++
		for eng.conflicts(fp) {
			eng.release(h, releaseOne)
		}
	}
	if n := len(eng.inflight); n > 0 {
		eng.stats.Overlapped++
		if n+1 > eng.stats.MaxInflight {
			eng.stats.MaxInflight = n + 1
		}
	} else if eng.stats.MaxInflight == 0 {
		eng.stats.MaxInflight = 1
	}
	eng.inflight = append(eng.inflight, inflightCmd{seq: j.seq, fp: fp})
	eng.stats.Dispatched++
	eng.jobs <- j
}

// drainPipelinedLocked is the pipelined twin of drainLocked: the
// sequencer grants commands in arbitration order and feeds the
// execution engine; the reorder stage posts completions back in grant
// order. Caller holds execMu and delivers takeNotes() after releasing
// it.
func (h *Host) drainPipelinedLocked() {
	eng := h.eng
	for {
		// Opportunistically retire finished work so the in-flight window
		// (and its conflict scans) stay short.
		eng.release(h, releaseReady)
		best := h.arbitrate()
		if best == nil {
			eng.release(h, releaseAll)
			h.flushNotifies()
			return
		}
		e, ok := best.takeHead()
		if !ok {
			continue
		}
		seq := eng.nextSeq
		eng.nextSeq++
		eng.stats.Grants++
		cmd := e.cmd

		// Inline paths — each acts as a full barrier. Admin commands
		// mutate host structures the sequencer itself reads; host-link
		// transfers share one bus whose reservation order is the serial
		// order; a bad NSID never reaches an adapter.
		inline := cmd.Op.IsAdmin()
		var ns Namespace
		if !inline {
			if h.cfg.ChargeHostLink {
				inline = true
			} else if err := checkNSID(h.namespaces(), cmd.NSID); err != nil {
				inline = true
			} else {
				nsid := cmd.NSID
				if nsid == 0 {
					nsid = 1
				}
				ns = h.namespaces()[nsid-1]
			}
		}
		if inline {
			eng.barrier(h)
			if eng.nextRelease != seq {
				panic("hostif: sequencer released past an inline command")
			}
			eng.nextRelease = seq + 1
			eng.stats.Inline++
			best.complete(h.exec(best, e))
			if !cmd.Op.IsAdmin() {
				h.executed.Add(1)
			}
			continue
		}
		eng.dispatch(h, execJob{seq: seq, qp: best, e: e, ns: ns}, ns.Footprint(cmd).normalize())
	}
}

// executorLog snapshots the pipeline counters. Caller holds execMu (the
// admin path), so the sequencer state is quiescent. A serial host has
// no sequencer stats; it reports its executed I/O count as grants, all
// of them inline, with every pipeline counter zero.
func (h *Host) executorLog() ExecutorLog {
	if h.eng == nil {
		return ExecutorLog{
			Executor: ExecutorSerial,
			Grants:   h.executed.Load(),
			Inline:   h.executed.Load(),
		}
	}
	return h.eng.stats
}
