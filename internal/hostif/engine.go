package hostif

import (
	"fmt"
	"runtime"
	"sync"
)

// This file is the pipelined execution engine — the second stage of the
// host's two-stage command service. The first stage (the sequencer) is
// the arbitration loop in host.go: it picks grants in deterministic WRR
// order, assigns each a monotonic sequence number and classifies its
// media footprint through Namespace.Footprint. This stage takes those
// grants and runs them on a pool of workers, overlapping commands whose
// footprints are disjoint while conflicting, admin, host-link-charged
// and footprint-unknown commands act as barriers. Completions come back
// through a reorder stage keyed by sequence number, so queue-pair
// completion order, notification order and every virtual-time result
// are bit-for-bit identical to the serial executor.
//
// Why this is deterministic: the sequencer dispatches in sequence
// order, and a grant is not dispatched while any in-flight command's
// footprint conflicts with it. Footprints are conservative (see the
// Footprint contract in hostif.go): two commands allowed in flight
// together share no virtual-time resource and no mutable FTL state, so
// their reservations commute and every Result.End equals its serial
// value. The reorder stage then releases completions to the queue pairs
// strictly in sequence order, which is exactly the serial executor's
// completion order.

// ExecutorKind selects the host's command-service engine.
type ExecutorKind string

const (
	// ExecutorSerial executes every granted command inline in the
	// arbitration loop — the reference oracle. The zero value of
	// HostConfig.Executor selects it.
	ExecutorSerial ExecutorKind = "serial"
	// ExecutorPipelined decouples arbitration from media execution:
	// grants with disjoint footprints run concurrently on a worker pool
	// and a deterministic reorder stage restores serial completion
	// order.
	ExecutorPipelined ExecutorKind = "pipelined"
	// ExecutorBatched is the pipelined engine with batched sequencing:
	// the sequencer pulls up to HostConfig.BatchSize WRR grants per
	// arbitration acquisition, footprint-classifying the whole batch up
	// front, so workers amortize the arbitration rendezvous instead of
	// meeting the sequencer once per command. Conflicts within a batch
	// become intra-batch barriers; completions still release in strict
	// grant order, so results are bit-identical to the serial oracle.
	ExecutorBatched ExecutorKind = "batched"
)

// DefaultBatchSize is the grant-batch size of ExecutorBatched when
// HostConfig.BatchSize is zero.
const DefaultBatchSize = 16

// ExecutorLog is the LogExecutor admin log page: the pipeline counters
// that make the execution engine observable over queue 0. With several
// arbitration domains the top-level counters aggregate every domain
// and PerDomain carries the per-domain breakdown.
type ExecutorLog struct {
	// Executor, Workers, BatchSize and Domains echo the host
	// configuration (Workers and BatchSize are per domain).
	Executor  ExecutorKind
	Workers   int
	BatchSize int
	Domains   int
	// Grants counts commands granted by the sequencer (I/O and admin).
	Grants int64
	// Acquisitions counts arbitration acquisitions: sequencer rendezvous
	// at which at least one grant was pulled. The serial and pipelined
	// executors acquire once per grant; the batched executor amortizes
	// up to BatchSize grants per acquisition, so Acquisitions/Grants is
	// the amortization actually realized.
	Acquisitions int64
	// Dispatched counts grants handed to the worker pool.
	Dispatched int64
	// Inline counts grants executed inline in the sequencer (admin
	// commands, host-link-charged data commands, unknown namespaces).
	Inline int64
	// Overlapped counts dispatches that entered the pool while at least
	// one other command was already in flight — the concurrency the
	// engine actually realized.
	Overlapped int64
	// BarrierStalls counts the times an inline command had to wait for
	// the pipeline to drain before executing.
	BarrierStalls int64
	// ConflictStalls counts the times a dispatch waited for an
	// in-flight command with a conflicting footprint to complete — with
	// the batched executor, the intra-batch conflict barriers.
	ConflictStalls int64
	// MaxInflight is the high-water mark of concurrently dispatched
	// commands.
	MaxInflight int
	// PerDomain is the per-domain breakdown, one row per arbitration
	// domain in domain order (nil on single-domain hosts).
	PerDomain []DomainExecutorLog
}

// DomainExecutorLog is one arbitration domain's sequencer counters.
type DomainExecutorLog struct {
	// Domain is the domain index; QueuePairs counts the queue pairs
	// currently bound to it (the admin queue lives in domain 0).
	Domain     int
	QueuePairs int
	// The remaining fields mirror their ExecutorLog namesakes, scoped
	// to this domain's sequencer.
	Grants         int64
	Acquisitions   int64
	Dispatched     int64
	Inline         int64
	Overlapped     int64
	BarrierStalls  int64
	ConflictStalls int64
	MaxInflight    int
}

// execJob is one granted command in flight through the worker pool.
type execJob struct {
	seq uint64
	qp  *QueuePair
	e   sqe
	ns  Namespace
}

// run executes the job's data path. It mirrors Host.exec for the
// non-admin, non-host-link case: the namespace adapter does all
// controller and media accounting itself.
func (j execJob) run() Completion {
	cmd := j.e.cmd
	res := j.ns.Execute(j.e.ready, cmd)
	res.Status = StatusOf(res.Err)
	return Completion{
		QueueID:   j.qp.id,
		Slot:      j.e.slot,
		Op:        cmd.Op,
		NSID:      cmd.NSID,
		Submitted: j.e.ready,
		Done:      res.End,
		Result:    res,
		cmd:       cmd,
	}
}

// execDone is one finished job waiting in the reorder stage.
type execDone struct {
	qp *QueuePair
	c  Completion
}

// inflightCmd tracks one dispatched command's footprint until its
// completion is released.
type inflightCmd struct {
	seq uint64
	fp  Footprint
}

// grant is one arbitrated command gathered into a sequencer batch,
// footprint-classified at gather time. The namespace snapshot the
// classification read stays valid for the whole batch because an
// inline-class grant (the only kind that can mutate host structures)
// always terminates the batch it joins.
type grant struct {
	qp     *QueuePair
	e      sqe
	seq    uint64
	inline bool
	ns     Namespace
	fp     Footprint
}

// engine is the worker pool plus the reorder stage of one arbitration
// domain. The fields below resultMu are owned by the sequencer: they
// are only touched from the arbitration loop, under the domain's
// execMu.
type engine struct {
	workers  int
	batch    int // grants gathered per arbitration acquisition (1 = pipelined)
	jobs     chan execJob
	stopOnce sync.Once

	resultMu sync.Mutex
	resultC  *sync.Cond
	done     map[uint64]execDone // finished jobs keyed by sequence number

	// Sequencer state (execMu).
	nextSeq     uint64        // next sequence number to assign
	nextRelease uint64        // next sequence number to complete
	inflight    []inflightCmd // dispatched, completion not yet released
	batchBuf    []grant       // reusable gather buffer
	stats       DomainExecutorLog
}

// newEngine starts a worker pool of the given size (minimum 1; zero
// selects GOMAXPROCS) gathering batch grants per arbitration
// acquisition. Workers live until the engine is stopped.
func newEngine(workers, batch int) *engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if batch < 1 {
		batch = 1
	}
	eng := &engine{
		workers:  workers,
		batch:    batch,
		jobs:     make(chan execJob, workers),
		done:     make(map[uint64]execDone),
		batchBuf: make([]grant, 0, batch),
	}
	eng.resultC = sync.NewCond(&eng.resultMu)
	for i := 0; i < workers; i++ {
		go eng.worker()
	}
	return eng
}

// stop terminates the worker goroutines; idempotent. The pipeline must
// be idle (every drain leaves it empty).
func (eng *engine) stop() { eng.stopOnce.Do(func() { close(eng.jobs) }) }

// worker executes jobs and parks each result in the reorder stage.
// Jobs in flight together never conflict, so which worker runs which
// job — and in what wall-clock order — cannot affect any result.
func (eng *engine) worker() {
	for j := range eng.jobs {
		c := j.run()
		eng.resultMu.Lock()
		eng.done[j.seq] = execDone{qp: j.qp, c: c}
		eng.resultC.Signal()
		eng.resultMu.Unlock()
	}
}

// Release modes of the reorder stage.
const (
	releaseReady = iota // pop whatever is already finished
	releaseOne          // block until at least one completion releases
	releaseAll          // block until the pipeline is empty
)

// release pops finished completions from the reorder stage in sequence
// order and posts them to their queue pairs — the only place pipelined
// completions become visible, which is what keeps completion-queue and
// notification order identical to the serial executor. Caller is the
// sequencer, holding execMu.
func (eng *engine) release(h *Host, mode int) {
	for {
		eng.resultMu.Lock()
		d, ok := eng.done[eng.nextRelease]
		for !ok {
			if mode == releaseReady || len(eng.inflight) == 0 {
				eng.resultMu.Unlock()
				return
			}
			eng.resultC.Wait()
			d, ok = eng.done[eng.nextRelease]
		}
		delete(eng.done, eng.nextRelease)
		eng.resultMu.Unlock()

		if len(eng.inflight) == 0 || eng.inflight[0].seq != eng.nextRelease {
			panic(fmt.Sprintf("hostif: reorder stage released seq %d out of order", eng.nextRelease))
		}
		eng.inflight = eng.inflight[:copy(eng.inflight, eng.inflight[1:])]
		eng.nextRelease++
		d.qp.complete(d.c)
		h.executed.Add(1)
		if mode == releaseOne {
			mode = releaseReady
		}
	}
}

// barrier drains the pipeline completely: every dispatched command
// completes and releases. Caller holds execMu.
func (eng *engine) barrier(h *Host) {
	if len(eng.inflight) > 0 {
		eng.stats.BarrierStalls++
	}
	eng.release(h, releaseAll)
}

// conflicts reports whether fp conflicts with any in-flight command.
func (eng *engine) conflicts(fp Footprint) bool {
	for i := range eng.inflight {
		if fp.Conflicts(eng.inflight[i].fp) {
			return true
		}
	}
	return false
}

// dispatch hands one granted command to the worker pool, first waiting
// for any conflicting in-flight command to complete. Caller holds
// execMu.
func (eng *engine) dispatch(h *Host, j execJob, fp Footprint) {
	if eng.conflicts(fp) {
		eng.stats.ConflictStalls++
		for eng.conflicts(fp) {
			eng.release(h, releaseOne)
		}
	}
	if n := len(eng.inflight); n > 0 {
		eng.stats.Overlapped++
		if n+1 > eng.stats.MaxInflight {
			eng.stats.MaxInflight = n + 1
		}
	} else if eng.stats.MaxInflight == 0 {
		eng.stats.MaxInflight = 1
	}
	eng.inflight = append(eng.inflight, inflightCmd{seq: j.seq, fp: fp})
	eng.stats.Dispatched++
	eng.jobs <- j
}

// drainEngineLocked is the engine twin of drainLocked: the sequencer
// grants commands in arbitration order and feeds the execution engine;
// the reorder stage posts completions back in grant order. Per
// arbitration acquisition it gathers up to eng.batch grants,
// footprint-classifying each as it is pulled — with batch size 1 this
// is exactly the pipelined executor's grant-at-a-time rendezvous, and
// with larger batches the arbitration/release bookkeeping amortizes
// across the batch. Grant order is untouched by batching: arbitrate is
// a pure function of the doorbell and credit state, and neither
// gathering nor dispatching rings a doorbell, so pulling B grants
// back-to-back yields the same sequence the serial loop grants one at
// a time. An inline-class grant (admin, host-link-charged, bad NSID)
// terminates its batch: admin execution mutates the snapshots
// classification reads, so no grant is ever classified after an
// unexecuted admin command. Caller holds d.execMu and delivers
// takeNotes() after releasing it.
func (d *domain) drainEngineLocked() {
	h := d.h
	eng := d.eng
	for {
		// Opportunistically retire finished work so the in-flight window
		// (and its conflict scans) stay short.
		eng.release(h, releaseReady)

		// Gather one batch of grants.
		batch := eng.batchBuf[:0]
		for len(batch) < eng.batch {
			best := d.arbitrate()
			if best == nil {
				break
			}
			e, ok := best.takeHead()
			if !ok {
				continue
			}
			g := grant{qp: best, e: e, seq: eng.nextSeq}
			eng.nextSeq++
			eng.stats.Grants++
			cmd := e.cmd

			// Inline classes — each acts as a full barrier at dispatch.
			// Admin commands mutate host structures the sequencer itself
			// reads; host-link transfers share one bus whose reservation
			// order is the serial order; a bad NSID never reaches an
			// adapter.
			g.inline = cmd.Op.IsAdmin()
			if !g.inline {
				if h.cfg.ChargeHostLink {
					g.inline = true
				} else if err := checkNSID(h.namespaces(), cmd.NSID); err != nil {
					g.inline = true
				} else {
					nsid := cmd.NSID
					if nsid == 0 {
						nsid = 1
					}
					g.ns = h.namespaces()[nsid-1]
					g.fp = g.ns.Footprint(cmd).normalize()
				}
			}
			batch = append(batch, g)
			if g.inline {
				break
			}
		}
		eng.batchBuf = batch
		if len(batch) == 0 {
			eng.release(h, releaseAll)
			d.flushNotifies()
			return
		}
		eng.stats.Acquisitions++

		// Dispatch the batch in grant order. Intra-batch footprint
		// conflicts stall in dispatch until the conflicting in-flight
		// command releases; inline grants drain the pipeline first.
		for i := range batch {
			g := &batch[i]
			if g.inline {
				eng.barrier(h)
				if eng.nextRelease != g.seq {
					panic("hostif: sequencer released past an inline command")
				}
				eng.nextRelease = g.seq + 1
				eng.stats.Inline++
				g.qp.complete(h.exec(g.qp, g.e))
				if !g.e.cmd.Op.IsAdmin() {
					h.executed.Add(1)
				}
				continue
			}
			eng.dispatch(h, execJob{seq: g.seq, qp: g.qp, e: g.e, ns: g.ns}, g.fp)
		}
	}
}

// executorLog snapshots the sequencer counters of every domain,
// aggregated into the top-level ExecutorLog with a per-domain
// breakdown on multi-domain hosts. Caller holds execMu(0) (the admin
// path); other domains' counters are read under their own locks. A
// serial sequencer reports its grant count with every grant inline and
// one acquisition per grant, every pipeline counter zero.
func (h *Host) executorLog() ExecutorLog {
	log := ExecutorLog{
		Executor: ExecutorSerial,
		Domains:  len(h.domains),
	}
	if eng := h.domains[0].eng; eng != nil {
		log.Executor = h.cfg.Executor
		log.Workers = eng.workers
		log.BatchSize = eng.batch
	}
	var per []DomainExecutorLog
	if len(h.domains) > 1 {
		per = make([]DomainExecutorLog, 0, len(h.domains))
	}
	for i, d := range h.domains {
		if i > 0 {
			// Domain 0's lock is already held by the admin path; the
			// ascending acquisition respects the domain lock order.
			d.execMu.Lock()
		}
		dl := d.stats()
		if i > 0 {
			d.execMu.Unlock()
		}
		log.Grants += dl.Grants
		log.Acquisitions += dl.Acquisitions
		log.Dispatched += dl.Dispatched
		log.Inline += dl.Inline
		log.Overlapped += dl.Overlapped
		log.BarrierStalls += dl.BarrierStalls
		log.ConflictStalls += dl.ConflictStalls
		if dl.MaxInflight > log.MaxInflight {
			log.MaxInflight = dl.MaxInflight
		}
		if per != nil {
			per = append(per, dl)
		}
	}
	log.PerDomain = per
	return log
}

// stats snapshots one domain's sequencer counters. Caller holds the
// domain's execMu.
func (d *domain) stats() DomainExecutorLog {
	if d.eng == nil {
		return DomainExecutorLog{
			Domain:       d.id,
			QueuePairs:   len(d.queuePairs()),
			Grants:       d.grants,
			Acquisitions: d.grants,
			Inline:       d.grants,
		}
	}
	dl := d.eng.stats
	dl.Domain = d.id
	dl.QueuePairs = len(d.queuePairs())
	return dl
}
