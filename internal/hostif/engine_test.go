package hostif

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/nand"
	"repro/internal/ocssd"
	"repro/internal/ox"
	"repro/internal/vclock"
	"repro/internal/zns"
)

// slowNS is a Namespace with a controllable footprint: commands on
// different lanes reserve disjoint resources (overlap-safe), commands
// on one lane share that lane's resource. Lane = cmd.Zone; cmd.LPN
// tags the command for ordering checks.
type slowNS struct {
	dom   *int
	lanes []*vclock.Resource
	dur   vclock.Duration

	mu    sync.Mutex
	order []int64
}

func newSlowNS(lanes int, dur vclock.Duration) *slowNS {
	ns := &slowNS{dom: new(int), dur: dur}
	for i := 0; i < lanes; i++ {
		ns.lanes = append(ns.lanes, vclock.NewResource(fmt.Sprintf("lane%d", i)))
	}
	return ns
}

func (ns *slowNS) Name() string { return "slow" }

func (ns *slowNS) Footprint(cmd *Command) Footprint {
	if cmd.Op == OpFlush {
		return ExclusiveFootprint(ns.dom) // the barrier op
	}
	return GroupFootprint(ns.dom, cmd.Zone)
}

func (ns *slowNS) Execute(now vclock.Time, cmd *Command) Result {
	_, end := ns.lanes[cmd.Zone].Acquire(now, ns.dur)
	ns.mu.Lock()
	ns.order = append(ns.order, cmd.LPN)
	ns.mu.Unlock()
	return Result{End: end}
}

// pipelinedHost builds a host with the pipelined executor over a fresh
// test controller.
func pipelinedHost(t testing.TB, workers int) *Host {
	t.Helper()
	return NewHost(testController(t), HostConfig{Executor: ExecutorPipelined, Workers: workers})
}

// compKey is the comparable projection of a Completion used by the
// equivalence tests (payload slices are checked separately or nil).
type compKey struct {
	QueueID   int
	Slot      uint64
	Op        Op
	NSID      int
	Submitted vclock.Time
	Done      vclock.Time
	Err       error
	Offset    int64
	Handle    uint64
	Blocks    int
}

func keyOf(c Completion) compKey {
	return compKey{
		QueueID: c.QueueID, Slot: c.Slot, Op: c.Op, NSID: c.NSID,
		Submitted: c.Submitted, Done: c.Done, Err: c.Err,
		Offset: c.Offset, Handle: c.Handle, Blocks: c.Blocks,
	}
}

// TestPipelinedMatchesSerialRandomized is the executor-equivalence
// oracle at the host level: a randomized multi-queue workload with
// mixed footprints (disjoint lanes, same-lane conflicts, exclusive
// barriers, admin interleavings) must produce completion streams that
// are bit-identical — same order, same virtual times — under both
// executors.
func TestPipelinedMatchesSerialRandomized(t *testing.T) {
	const queues, rounds, lanes = 6, 40, 4
	run := func(cfg HostConfig) []Completion {
		ctrl := testController(t)
		h := NewHost(ctrl, cfg)
		ns := newSlowNS(lanes, 9*vclock.Microsecond)
		attachNS(t, h, ns)
		qps := make([]*QueuePair, queues)
		for i := range qps {
			qps[i] = openQP(t, h, 4)
		}
		rng := rand.New(rand.NewSource(42))
		var out []Completion
		now := vclock.Time(0)
		for r := 0; r < rounds; r++ {
			// Stage a random batch on each queue, one shared doorbell
			// instant per queue.
			for qi, qp := range qps {
				batch := rng.Intn(4)
				for b := 0; b < batch; b++ {
					op := OpWrite
					if rng.Intn(8) == 0 {
						op = OpFlush // exclusive: acts as a barrier
					}
					cmd := qp.AcquireCommand()
					cmd.Op = op
					cmd.Zone = rng.Intn(lanes)
					cmd.LPN = int64(r*1000 + qi*100 + b)
					if _, err := qp.Submit(cmd); err != nil {
						t.Fatal(err)
					}
				}
				qp.Ring(now.Add(vclock.Duration(rng.Intn(50)) * vclock.Microsecond))
			}
			// Interleave control plane: an admin identify mid-stream.
			if r%7 == 3 {
				if _, err := h.Admin().Identify(now); err != nil {
					t.Fatal(err)
				}
			}
			for {
				c, ok := h.ReapAny()
				if !ok {
					break
				}
				out = append(out, c)
			}
			now = now.Add(200 * vclock.Microsecond)
		}
		return out
	}
	serial := run(HostConfig{})
	for _, workers := range []int{1, 4} {
		pipe := run(HostConfig{Executor: ExecutorPipelined, Workers: workers})
		if len(pipe) != len(serial) {
			t.Fatalf("workers=%d: %d completions vs serial %d", workers, len(pipe), len(serial))
		}
		for i := range serial {
			if keyOf(serial[i]) != keyOf(pipe[i]) {
				t.Fatalf("workers=%d: completion %d diverged:\nserial    %+v\npipelined %+v",
					workers, i, serial[i], pipe[i])
			}
		}
	}
}

// TestPipelinedOverlapsDisjointFootprints proves the engine actually
// overlaps: commands on disjoint lanes dispatched from distinct queue
// pairs report realized overlap in the executor log page, and the
// completion order still matches arbitration order.
func TestPipelinedOverlapsDisjointFootprints(t *testing.T) {
	h := pipelinedHost(t, 4)
	ns := newSlowNS(4, 50*vclock.Microsecond)
	attachNS(t, h, ns)
	qps := make([]*QueuePair, 4)
	for i := range qps {
		qps[i] = openQP(t, h, 2)
	}
	for round := 0; round < 8; round++ {
		for i, qp := range qps {
			cmd := qp.AcquireCommand()
			cmd.Op, cmd.Zone, cmd.LPN = OpWrite, i, int64(round*10+i)
			if err := qp.Push(vclock.Time(round)*vclock.Time(vclock.Millisecond), cmd); err != nil {
				t.Fatal(err)
			}
		}
		h.Drain()
		for _, qp := range qps {
			if _, ok := qp.Reap(); !ok {
				t.Fatal("missing completion")
			}
		}
	}
	log, err := h.Admin().ExecutorStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if log.Executor != ExecutorPipelined || log.Workers != 4 {
		t.Fatalf("log identity: %+v", log)
	}
	if log.Dispatched == 0 || log.Overlapped == 0 {
		t.Fatalf("no realized overlap: %+v", log)
	}
	if log.MaxInflight < 2 {
		t.Fatalf("MaxInflight %d, want ≥ 2: %+v", log.MaxInflight, log)
	}
}

// TestPipelinedConflictSerializesInOrder pins the barrier rule:
// same-lane commands from different queues execute in grant order even
// with many workers available, and the exclusive op stalls the
// pipeline.
func TestPipelinedConflictSerializesInOrder(t *testing.T) {
	h := pipelinedHost(t, 8)
	ns := newSlowNS(2, 10*vclock.Microsecond)
	attachNS(t, h, ns)
	q0, q1, q2 := openQP(t, h, 4), openQP(t, h, 4), openQP(t, h, 4)

	push := func(qp *QueuePair, at vclock.Time, lane int, id int64, op Op) {
		t.Helper()
		cmd := qp.AcquireCommand()
		cmd.Op, cmd.Zone, cmd.LPN = op, lane, id
		if err := qp.Push(at, cmd); err != nil {
			t.Fatal(err)
		}
	}
	// All on lane 0: arbitration order is doorbell order (10, 20, 30),
	// and execution on the shared lane must follow it exactly.
	push(q0, 10, 0, 1, OpWrite)
	push(q1, 20, 0, 2, OpWrite)
	push(q2, 30, 0, 3, OpFlush) // exclusive
	push(q0, 40, 1, 4, OpWrite)
	h.Drain()
	ns.mu.Lock()
	got := append([]int64(nil), ns.order...)
	ns.mu.Unlock()
	want := []int64{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("executed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("executed %v, want %v", got, want)
		}
	}
	log, err := h.Admin().ExecutorStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if log.ConflictStalls == 0 {
		t.Fatalf("expected conflict stalls on the shared lane: %+v", log)
	}
}

// TestPipelinedNotifyMatchesSerial pins notification-order equality:
// coalesced interrupt delivery sees the same batches at the same
// virtual instants under both executors.
func TestPipelinedNotifyMatchesSerial(t *testing.T) {
	run := func(cfg HostConfig) []Notification {
		h := NewHost(testController(t), cfg)
		ns := newSlowNS(4, 11*vclock.Microsecond)
		attachNS(t, h, ns)
		qp := openQP(t, h, 8)
		var notes []Notification
		qp.SetNotify(3, func(n Notification) {
			n.Queue = nil // pointer differs across runs
			notes = append(notes, n)
		})
		for i := 0; i < 8; i++ {
			cmd := qp.AcquireCommand()
			cmd.Op, cmd.Zone, cmd.LPN = OpWrite, i%4, int64(i)
			if _, err := qp.Submit(cmd); err != nil {
				t.Fatal(err)
			}
		}
		qp.Ring(0)
		h.Drain()
		for {
			if _, ok := qp.Reap(); !ok {
				break
			}
		}
		return notes
	}
	serial := run(HostConfig{})
	pipe := run(HostConfig{Executor: ExecutorPipelined, Workers: 4})
	if len(serial) == 0 || len(serial) != len(pipe) {
		t.Fatalf("notifications %d vs %d", len(serial), len(pipe))
	}
	for i := range serial {
		if serial[i] != pipe[i] {
			t.Fatalf("notification %d diverged: %+v vs %+v", i, serial[i], pipe[i])
		}
	}
}

// znsHost builds a ZNS namespace on a cache-less multi-group rig — the
// configuration whose disjoint-group writes genuinely overlap — and
// returns the host, NSID and zone report.
func znsHost(t testing.TB, cfg HostConfig, groups int) (*Host, int, []zns.ZoneInfo) {
	t.Helper()
	chip := nand.Geometry{
		Planes:         2,
		BlocksPerPlane: 8,
		PagesPerBlock:  12,
		SectorsPerPage: 4,
		SectorSize:     4096,
		OOBPerPage:     64,
		Cell:           nand.TLC,
	}
	geo := ocssd.Finish(ocssd.Geometry{
		Groups:       groups,
		PUsPerGroup:  2,
		ChunksPerPU:  8,
		Chip:         chip,
		ChannelMBps:  800,
		CacheMBps:    3200,
		CacheMB:      0, // no write-back cache: group-scoped writes commute
		MaxOpenPerPU: 64,
	})
	dev, err := ocssd.New(geo, ocssd.Options{Seed: 1, PowerLossProtected: true})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := ox.NewController(ox.DefaultConfig(), dev)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := zns.New(ctrl, zns.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHost(ctrl, cfg)
	nsid, err := h.Admin().AttachNamespace(0, NewZoneNamespace(tgt))
	if err != nil {
		t.Fatal(err)
	}
	report, err := h.Admin().ZoneReport(0, nsid)
	if err != nil {
		t.Fatal(err)
	}
	return h, nsid, report
}

// TestPipelinedZNSMatchesSerial drives real media: zone appends, reads
// and resets across every group of a cache-less device, verifying
// virtual completion times are bit-identical between executors. This is
// the end-to-end audit that the device's per-PU sharding and per-group
// channels actually permit the overlap the footprints promise.
func TestPipelinedZNSMatchesSerial(t *testing.T) {
	const groups = 4
	run := func(cfg HostConfig) []compKey {
		h, nsid, report := znsHost(t, cfg, groups)
		// One zone per group, one queue pair per group.
		zoneOf := make([]int, 0, groups)
		seen := map[int]bool{}
		for _, zi := range report {
			if !seen[zi.Group] {
				seen[zi.Group] = true
				zoneOf = append(zoneOf, zi.Index)
			}
		}
		if len(zoneOf) != groups {
			t.Fatalf("zones per group: %d, want %d", len(zoneOf), groups)
		}
		qps := make([]*QueuePair, groups)
		for i := range qps {
			qps[i] = openQP(t, h, 2)
		}
		id, err := h.Admin().IdentifyNamespace(0, nsid)
		if err != nil {
			t.Fatal(err)
		}
		block := make([]byte, id.BlockSize)
		for i := range block {
			block[i] = byte(i)
		}
		var out []compKey
		for round := 0; round < 6; round++ {
			for i, qp := range qps {
				cmd := qp.AcquireCommand()
				cmd.Op, cmd.NSID, cmd.Zone, cmd.Data = OpZoneAppend, nsid, zoneOf[i], block
				if _, err := qp.Submit(cmd); err != nil {
					t.Fatal(err)
				}
				cmd = qp.AcquireCommand()
				cmd.Op, cmd.NSID, cmd.Zone = OpRead, nsid, zoneOf[i]
				cmd.LPN, cmd.Length = 0, int64(id.BlockSize)
				if _, err := qp.Submit(cmd); err != nil {
					t.Fatal(err)
				}
				qp.Ring(vclock.Time(round) * vclock.Time(vclock.Millisecond))
			}
			for {
				c, ok := h.ReapAny()
				if !ok {
					break
				}
				// Payload contents are covered by the zns tests; the
				// equivalence oracle here is identity of virtual timing.
				out = append(out, keyOf(c))
			}
		}
		return out
	}
	serial := run(HostConfig{})
	pipe := run(HostConfig{Executor: ExecutorPipelined, Workers: groups})
	if len(serial) != len(pipe) || len(serial) == 0 {
		t.Fatalf("completions %d vs %d", len(serial), len(pipe))
	}
	for i := range serial {
		if serial[i] != pipe[i] {
			t.Fatalf("completion %d diverged:\nserial    %+v\npipelined %+v", i, serial[i], pipe[i])
		}
	}
}

// TestPipelinedStressRace is the 8-queue mixed-footprint stress for the
// worker pool and reorder stage, meant for -race: concurrent submitters
// drive group-scoped appends, reads, exclusive resets and admin log
// reads while reapers consume completions.
func TestPipelinedStressRace(t *testing.T) {
	const groups, rounds = 4, 30
	h, nsid, report := znsHost(t, HostConfig{Executor: ExecutorPipelined, Workers: 4}, groups)
	// Two queue pairs per group: eight concurrent submitters with
	// overlapping (same-group) and disjoint (cross-group) footprints.
	zoneOf := make([][]int, groups)
	for _, zi := range report {
		zoneOf[zi.Group] = append(zoneOf[zi.Group], zi.Index)
	}
	id, err := h.Admin().IdentifyNamespace(0, nsid)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 2*groups; w++ {
		qp := openQP(t, h, 2)
		wg.Add(1)
		go func(w int, qp *QueuePair) {
			defer wg.Done()
			g := w % groups
			zone := zoneOf[g][w/groups%len(zoneOf[g])]
			block := make([]byte, id.BlockSize)
			now := vclock.Time(0)
			for r := 0; r < rounds; r++ {
				cmd := qp.AcquireCommand()
				switch r % 6 {
				case 5:
					cmd.Op, cmd.NSID, cmd.Zone = OpZoneReset, nsid, zone
				case 2:
					cmd.Op, cmd.NSID, cmd.Zone = OpRead, nsid, zone
					cmd.LPN, cmd.Length = 0, int64(id.BlockSize)
				default:
					cmd.Op, cmd.NSID, cmd.Zone, cmd.Data = OpZoneAppend, nsid, zone, block
				}
				if err := qp.Push(now, cmd); err != nil {
					t.Error(err)
					return
				}
				// Reap's drain executes every visible command (waiting out
				// the pipeline), so the completion is always present even
				// when another goroutine's drain ran ours.
				c := qp.MustReap()
				if c.Err != nil {
					t.Errorf("worker %d round %d: %v", w, r, c.Err)
					return
				}
				now = c.Done
			}
		}(w, qp)
	}
	wg.Wait()
	log, err := h.Admin().ExecutorStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(2 * groups * rounds); log.Grants < want {
		t.Fatalf("grants %d, want ≥ %d (%+v)", log.Grants, want, log)
	}
}
