package hostif

import (
	"fmt"

	"repro/internal/lightlsm"
	"repro/internal/lsm"
	"repro/internal/offload"
	"repro/internal/vclock"
)

// EnvClient implements lsm.Env by issuing host-interface commands over
// a queue pair — the mini-RocksDB then drives the LightLSM FTL the way
// RocksDB drives an NVMe device: every SSTable flush block, block read
// and table delete is a typed command through the submission queue.
// Calls are synchronous, so the adapter adds no virtual time of its
// own and preserves the FTL's exact accounting. Completions are
// consumed by polling Reap, or — after EnableNotify — by interrupt-
// style notification, with identical virtual timing.
//
// EnvClient is driven by one actor at a time, matching the LSM's
// single-dispatch design (§4.3).
type EnvClient struct {
	qp        *QueuePair
	nsid      int
	blockSize int
	maxBlocks int

	// Notification mode (EnableNotify): the registered callback reaps
	// into comp/gotComp instead of do() polling MustReap.
	notify  bool
	comp    Completion
	gotComp bool
}

// Statically assert EnvClient implements lsm.Env.
var _ lsm.Env = (*EnvClient)(nil)

// NewEnvClient builds a client over qp for the namespace attached
// under nsid, with the block geometry from its admin identity.
func NewEnvClient(qp *QueuePair, nsid int, id NamespaceIdentity) *EnvClient {
	return &EnvClient{
		qp:        qp,
		nsid:      nsid,
		blockSize: id.BlockSize,
		maxBlocks: id.MaxTableBlocks,
	}
}

// AttachLSM wires env into h over the admin queue — namespace attach,
// I/O queue-pair creation (depth 1, medium class) and the identify
// that reads the block geometry are all admin commands — and returns
// the lsm.Env client: the one-call setup for running the mini-RocksDB
// over queue pairs.
func AttachLSM(h *Host, env *lightlsm.Env) (*EnvClient, error) {
	admin := h.Admin()
	nsid, err := admin.AttachNamespace(0, NewLSMNamespace(env))
	if err != nil {
		return nil, fmt.Errorf("hostif: attaching lightlsm namespace: %w", err)
	}
	qp, err := admin.CreateIOQueuePair(0, 1, ClassMedium)
	if err != nil {
		return nil, fmt.Errorf("hostif: creating lightlsm queue pair: %w", err)
	}
	id, err := admin.IdentifyNamespace(0, nsid)
	if err != nil {
		return nil, fmt.Errorf("hostif: identifying lightlsm namespace: %w", err)
	}
	return NewEnvClient(qp, nsid, id), nil
}

// EnableNotify switches the client from polling to interrupt-style
// completion: each command is submitted, the host drains, and the
// completion arrives through the queue pair's notification callback
// (coalescing threshold 1 — the client is synchronous, one command in
// flight). Virtual timing is identical to polling.
func (c *EnvClient) EnableNotify() {
	c.notify = true
	c.qp.SetNotify(1, func(n Notification) {
		if comp, ok := c.qp.Reap(); ok {
			c.comp, c.gotComp = comp, true
		}
	})
}

// do issues one command synchronously. The command storage comes from
// the queue pair's arena and is recycled at the reap, so the client is
// single-actor, fully synchronous and allocation-free at steady state.
func (c *EnvClient) do(now vclock.Time, cmd Command) (Completion, error) {
	ac := c.qp.AcquireCommand()
	*ac = cmd
	ac.NSID = c.nsid
	if err := c.qp.Push(now, ac); err != nil {
		return Completion{}, err
	}
	if c.notify {
		c.gotComp = false
		c.qp.host.Drain()
		if !c.gotComp {
			panic("hostif: EnvClient notification did not deliver a completion")
		}
		return c.comp, c.comp.Err
	}
	comp := c.qp.MustReap()
	return comp, comp.Err
}

// NSID reports the namespace the client is bound to (admin log pages).
func (c *EnvClient) NSID() int { return c.nsid }

// BlockSize implements lsm.Env.
func (c *EnvClient) BlockSize() int { return c.blockSize }

// MaxTableBlocks implements lsm.Env.
func (c *EnvClient) MaxTableBlocks() int { return c.maxBlocks }

// CreateTable implements lsm.Env.
func (c *EnvClient) CreateTable(now vclock.Time) (lsm.TableWriter, error) {
	comp, err := c.do(now, Command{Op: OpTableCreate})
	if err != nil {
		return nil, err
	}
	return &writerClient{env: c, handle: comp.Handle}, nil
}

// ReadBlock implements lsm.Env.
func (c *EnvClient) ReadBlock(now vclock.Time, h lsm.TableHandle, block int, dst []byte) (vclock.Time, error) {
	comp, err := c.do(now, Command{
		Op:     OpTableRead,
		Handle: uint64(h.ID),
		Length: int64(h.Blocks),
		LPN:    int64(block),
		Dst:    dst,
	})
	return comp.Done, err
}

// OffloadGet issues an in-device point lookup: the device searches one
// SSTable block for key and only the (flags, value) result crosses the
// host link, instead of the full block. The signature matches
// lsm.Options.Lookup, so wiring `Lookup: env.OffloadGet` switches the
// mini-RocksDB's read path to computational storage.
func (c *EnvClient) OffloadGet(now vclock.Time, h lsm.TableHandle, block int, key []byte) (value []byte, deleted, found bool, end vclock.Time, err error) {
	comp, err := c.do(now, Command{
		Op:     OpOffloadGet,
		Handle: uint64(h.ID),
		Length: int64(h.Blocks),
		LPN:    int64(block),
		Data:   key,
	})
	if err != nil {
		return nil, false, false, comp.Done, err
	}
	value, deleted, found, err = offload.DecodeGetResult(comp.Data)
	return value, deleted, found, comp.Done, err
}

// OffloadCompact issues an in-device compaction: the device merges the
// input SSTables media-side and only the output table metadata crosses
// the host link. The signature matches lsm.Options.Compactor, so wiring
// `Compactor: env.OffloadCompact` offloads the LSM's merge work.
func (c *EnvClient) OffloadCompact(now vclock.Time, inputs []lsm.TableHandle, bitsPerKey int, dropDeletes bool) ([]*lsm.TableMeta, vclock.Time, error) {
	refs := make([]offload.TableRef, len(inputs))
	for i, h := range inputs {
		refs[i] = offload.TableRef{ID: uint64(h.ID), Blocks: uint32(h.Blocks)}
	}
	req := offload.CompactRequest{Inputs: refs, DropDeletes: dropDeletes, BitsPerKey: uint16(bitsPerKey)}
	comp, err := c.do(now, Command{Op: OpOffloadCompact, Data: req.Encode()})
	if err != nil {
		return nil, comp.Done, err
	}
	blobs, err := offload.DecodeCompactResult(comp.Data)
	if err != nil {
		return nil, comp.Done, err
	}
	metas := make([]*lsm.TableMeta, len(blobs))
	for i, b := range blobs {
		if metas[i], err = lsm.UnmarshalTableMeta(b); err != nil {
			return nil, comp.Done, err
		}
	}
	return metas, comp.Done, nil
}

// DeleteTable implements lsm.Env.
func (c *EnvClient) DeleteTable(now vclock.Time, h lsm.TableHandle) (vclock.Time, error) {
	comp, err := c.do(now, Command{
		Op:     OpTableDelete,
		Handle: uint64(h.ID),
		Length: int64(h.Blocks),
	})
	return comp.Done, err
}

// writerClient implements lsm.TableWriter over the queue pair.
type writerClient struct {
	env    *EnvClient
	handle uint64
}

// Append implements lsm.TableWriter.
func (w *writerClient) Append(now vclock.Time, block []byte) (vclock.Time, error) {
	comp, err := w.env.do(now, Command{Op: OpTableAppend, Handle: w.handle, Data: block})
	return comp.Done, err
}

// Commit implements lsm.TableWriter.
func (w *writerClient) Commit(now vclock.Time) (lsm.TableHandle, vclock.Time, error) {
	comp, err := w.env.do(now, Command{Op: OpTableCommit, Handle: w.handle})
	if err != nil {
		return lsm.TableHandle{}, comp.Done, err
	}
	return lsm.TableHandle{ID: lsm.TableID(comp.Handle), Blocks: comp.Blocks}, comp.Done, nil
}

// Abort implements lsm.TableWriter.
func (w *writerClient) Abort(now vclock.Time) (vclock.Time, error) {
	comp, err := w.env.do(now, Command{Op: OpTableAbort, Handle: w.handle})
	return comp.Done, err
}
