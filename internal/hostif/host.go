package hostif

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/ox"
)

// HostConfig tunes the host interface.
type HostConfig struct {
	// ChargeHostLink charges the controller host link (PCIe/40GE) for
	// each command's payload before dispatch and for returned read data
	// after completion — the host hop of a user I/O. Drivers that model
	// the host link themselves leave it off.
	ChargeHostLink bool

	// globalLock reintroduces the pre-sharding behavior for benchmark
	// comparison only: every Submit/Ring additionally serializes on the
	// host-wide execution lock, the way the old single-mutex host did.
	globalLock bool
}

// Host is the host-interface runtime: it owns the attached namespaces
// and queue pairs, and executes visible commands in deterministic
// arbitration order. One Host fronts one ox.Controller.
//
// Locking discipline: queue-pair state (slot accounting, staging,
// completion reaping, the command arena) lives behind each QueuePair's
// own mutex, so concurrent submitters on different queue pairs never
// contend. The only host-wide lock is execMu, which serializes the
// arbitration-and-execution step — picking the earliest-doorbell head
// across queues (a scan over per-queue atomic doorbell timestamps) and
// running it through the namespace adapter. Namespace and queue-pair
// registration use copy-on-write snapshots read lock-free on the
// submission path. execMu may acquire a QueuePair mutex, never the
// reverse.
type Host struct {
	ctrl *ox.Controller
	cfg  HostConfig

	setupMu sync.Mutex // serializes AddNamespace / OpenQueuePair
	ns      atomic.Pointer[[]Namespace]
	qps     atomic.Pointer[[]*QueuePair]

	execMu   sync.Mutex // arbitration + execution + completion consumption
	executed atomic.Int64
}

// NewHost builds a host interface over the controller.
func NewHost(ctrl *ox.Controller, cfg HostConfig) *Host {
	if ctrl == nil {
		panic("hostif: nil controller")
	}
	return &Host{ctrl: ctrl, cfg: cfg}
}

// Controller exposes the underlying controller (admin/diagnostics).
func (h *Host) Controller() *ox.Controller { return h.ctrl }

// namespaces returns the current namespace snapshot (lock-free).
func (h *Host) namespaces() []Namespace {
	if p := h.ns.Load(); p != nil {
		return *p
	}
	return nil
}

// queuePairs returns the current queue-pair snapshot (lock-free).
func (h *Host) queuePairs() []*QueuePair {
	if p := h.qps.Load(); p != nil {
		return *p
	}
	return nil
}

// AddNamespace attaches ns and returns its NSID (1-based).
func (h *Host) AddNamespace(ns Namespace) int {
	h.setupMu.Lock()
	defer h.setupMu.Unlock()
	cur := h.namespaces()
	next := make([]Namespace, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = ns
	h.ns.Store(&next)
	return len(next)
}

// Namespace returns the namespace with the given NSID (0 = namespace 1).
func (h *Host) Namespace(nsid int) (Namespace, error) {
	ns := h.namespaces()
	if err := checkNSID(ns, nsid); err != nil {
		return nil, err
	}
	if nsid == 0 {
		nsid = 1
	}
	return ns[nsid-1], nil
}

// checkNSID validates a command's namespace id against a snapshot.
func checkNSID(ns []Namespace, nsid int) error {
	if nsid == 0 && len(ns) > 0 {
		return nil
	}
	if nsid < 1 || nsid > len(ns) {
		return ErrBadNSID
	}
	return nil
}

// OpenQueuePair creates a queue pair with the given depth (minimum 1).
func (h *Host) OpenQueuePair(depth int) *QueuePair {
	if depth < 1 {
		depth = 1
	}
	h.setupMu.Lock()
	defer h.setupMu.Unlock()
	cur := h.queuePairs()
	qp := &QueuePair{host: h, id: len(cur), depth: depth}
	qp.headReady.Store(noHead)
	next := make([]*QueuePair, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = qp
	h.qps.Store(&next)
	return qp
}

// Executed reports the total number of commands executed (diagnostics).
func (h *Host) Executed() int64 { return h.executed.Load() }

// Drain executes every visible command across all queue pairs in
// arbitration order, filling the completion queues.
func (h *Host) Drain() {
	h.execMu.Lock()
	defer h.execMu.Unlock()
	h.drainLocked()
}

// noHead is the per-queue doorbell timestamp meaning "no visible
// command" — it loses every arbitration comparison.
const noHead = math.MaxInt64

// drainLocked is the arbitration loop: while any submission queue has a
// visible command, scan queues in ascending ID (round-robin order),
// serve the earliest-ready head, and break exact ready-time ties on
// (queueID, slot). Within a queue, commands execute in slot (FIFO)
// order. The order is a pure function of the submission history, which
// is what keeps figure tables bit-identical across runs.
//
// Caller holds execMu. The scan reads each queue's atomic doorbell
// timestamp — the winner's mutex is taken only to pop its head, so
// arbitration never blocks submitters on other queue pairs.
func (h *Host) drainLocked() {
	for {
		qps := h.queuePairs()
		var best *QueuePair
		bestReady := int64(noHead)
		for _, qp := range qps {
			if r := qp.headReady.Load(); r < bestReady {
				best, bestReady = qp, r
			}
			// Equal ready times fall through: the earlier queue ID
			// (scanned first) keeps the grant.
		}
		if best == nil {
			return
		}
		e, ok := best.takeHead()
		if !ok {
			continue
		}
		best.complete(h.exec(best, e))
		h.executed.Add(1)
	}
}

// exec runs one command: optional host-link transfer in, the namespace
// adapter (which routes through the FTL's own controller and media
// accounting), optional host-link transfer of returned data out.
// Caller holds execMu; no queue-pair mutex is held.
func (h *Host) exec(qp *QueuePair, e sqe) Completion {
	cmd := e.cmd
	start := e.ready
	if h.cfg.ChargeHostLink && len(cmd.Data) > 0 {
		start = h.ctrl.HostTransfer(start, int64(len(cmd.Data)))
	}
	ns := h.namespaces()
	var res Result
	if err := checkNSID(ns, cmd.NSID); err != nil {
		res = Result{End: start, Err: err}
	} else {
		nsid := cmd.NSID
		if nsid == 0 {
			nsid = 1
		}
		res = ns[nsid-1].Execute(start, cmd)
	}
	if h.cfg.ChargeHostLink && res.Err == nil {
		if n := len(res.Data); n > 0 {
			res.End = h.ctrl.HostTransfer(res.End, int64(n))
		} else if cmd.Op == OpTableRead && len(cmd.Dst) > 0 {
			res.End = h.ctrl.HostTransfer(res.End, int64(len(cmd.Dst)))
		}
	}
	return Completion{
		QueueID:   qp.id,
		Slot:      e.slot,
		Op:        cmd.Op,
		NSID:      cmd.NSID,
		Submitted: e.ready,
		Done:      res.End,
		Result:    res,
		cmd:       cmd,
	}
}

// ReapAny executes every visible command, then pops the globally
// earliest completion across all queue pairs — ordered by
// (Done, queueID, slot). Closed-loop drivers use it to advance the host
// actor whose command finishes first. It reports false when every
// completion queue is empty.
func (h *Host) ReapAny() (Completion, bool) {
	h.execMu.Lock()
	defer h.execMu.Unlock()
	h.drainLocked()
	// Completion queues are only mutated under execMu, so the scan sees
	// a stable snapshot; per-queue mutexes are taken around each access
	// to stay ordered with concurrent Outstanding/Submit readers.
	var bestQP *QueuePair
	bestIdx := -1
	var bestC Completion
	for _, qp := range h.queuePairs() {
		qp.mu.Lock()
		for i := 0; i < qp.cq.len(); i++ {
			c := qp.cq.at(i)
			if bestQP == nil || earlier(c, &bestC) {
				bestQP, bestIdx, bestC = qp, i, *c
			}
		}
		qp.mu.Unlock()
	}
	if bestQP == nil {
		return Completion{}, false
	}
	bestQP.mu.Lock()
	c := bestQP.cq.removeAt(bestIdx)
	bestQP.recycleLocked(c.cmd)
	bestQP.mu.Unlock()
	return c, true
}

// earlier orders completions by (Done, queueID, slot).
func earlier(a, b *Completion) bool {
	if a.Done != b.Done {
		return a.Done < b.Done
	}
	if a.QueueID != b.QueueID {
		return a.QueueID < b.QueueID
	}
	return a.Slot < b.Slot
}
