package hostif

import (
	"sync"

	"repro/internal/ox"
)

// HostConfig tunes the host interface.
type HostConfig struct {
	// ChargeHostLink charges the controller host link (PCIe/40GE) for
	// each command's payload before dispatch and for returned read data
	// after completion — the host hop of a user I/O. Drivers that model
	// the host link themselves leave it off.
	ChargeHostLink bool
}

// Host is the host-interface runtime: it owns the attached namespaces
// and queue pairs, and executes visible commands in deterministic
// arbitration order. One Host fronts one ox.Controller.
type Host struct {
	ctrl *ox.Controller
	cfg  HostConfig

	mu         sync.Mutex
	namespaces []Namespace
	qps        []*QueuePair
	executed   int64
}

// NewHost builds a host interface over the controller.
func NewHost(ctrl *ox.Controller, cfg HostConfig) *Host {
	if ctrl == nil {
		panic("hostif: nil controller")
	}
	return &Host{ctrl: ctrl, cfg: cfg}
}

// Controller exposes the underlying controller (admin/diagnostics).
func (h *Host) Controller() *ox.Controller { return h.ctrl }

// AddNamespace attaches ns and returns its NSID (1-based).
func (h *Host) AddNamespace(ns Namespace) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.namespaces = append(h.namespaces, ns)
	return len(h.namespaces)
}

// Namespace returns the namespace with the given NSID (0 = namespace 1).
func (h *Host) Namespace(nsid int) (Namespace, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.checkNSID(nsid); err != nil {
		return nil, err
	}
	if nsid == 0 {
		nsid = 1
	}
	return h.namespaces[nsid-1], nil
}

// checkNSID validates a command's namespace id. Caller holds h.mu.
func (h *Host) checkNSID(nsid int) error {
	if nsid == 0 && len(h.namespaces) > 0 {
		return nil
	}
	if nsid < 1 || nsid > len(h.namespaces) {
		return ErrBadNSID
	}
	return nil
}

// OpenQueuePair creates a queue pair with the given depth (minimum 1).
func (h *Host) OpenQueuePair(depth int) *QueuePair {
	if depth < 1 {
		depth = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	qp := &QueuePair{host: h, id: len(h.qps), depth: depth}
	h.qps = append(h.qps, qp)
	return qp
}

// Executed reports the total number of commands executed (diagnostics).
func (h *Host) Executed() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.executed
}

// Drain executes every visible command across all queue pairs in
// arbitration order, filling the completion queues.
func (h *Host) Drain() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.drainLocked()
}

// drainLocked is the arbitration loop: while any submission queue has a
// visible command, scan queues in ascending ID (round-robin order),
// serve the earliest-ready head, and break exact ready-time ties on
// (queueID, slot). Within a queue, commands execute in slot (FIFO)
// order. The order is a pure function of the submission history, which
// is what keeps figure tables bit-identical across runs.
func (h *Host) drainLocked() {
	for {
		var best *QueuePair
		for _, qp := range h.qps {
			head := qp.sqHead()
			if head == nil {
				continue
			}
			if best == nil || head.ready < best.sqHead().ready {
				best = qp
			}
			// Equal ready times fall through: the earlier queue ID
			// (scanned first) keeps the grant.
		}
		if best == nil {
			return
		}
		e := best.popSQ()
		best.cq = append(best.cq, h.execLocked(best, e))
		h.executed++
	}
}

// execLocked runs one command: optional host-link transfer in, the
// namespace adapter (which routes through the FTL's own controller and
// media accounting), optional host-link transfer of returned data out.
func (h *Host) execLocked(qp *QueuePair, e sqe) Completion {
	cmd := e.cmd
	start := e.ready
	if h.cfg.ChargeHostLink && len(cmd.Data) > 0 {
		start = h.ctrl.HostTransfer(start, int64(len(cmd.Data)))
	}
	var res Result
	if err := h.checkNSID(cmd.NSID); err != nil {
		res = Result{End: start, Err: err}
	} else {
		nsid := cmd.NSID
		if nsid == 0 {
			nsid = 1
		}
		res = h.namespaces[nsid-1].Execute(start, cmd)
	}
	if h.cfg.ChargeHostLink && res.Err == nil {
		if n := len(res.Data); n > 0 {
			res.End = h.ctrl.HostTransfer(res.End, int64(n))
		} else if cmd.Op == OpTableRead && len(cmd.Dst) > 0 {
			res.End = h.ctrl.HostTransfer(res.End, int64(len(cmd.Dst)))
		}
	}
	return Completion{
		QueueID:   qp.id,
		Slot:      e.slot,
		Op:        cmd.Op,
		NSID:      cmd.NSID,
		Submitted: e.ready,
		Done:      res.End,
		Result:    res,
	}
}

// ReapAny executes every visible command, then pops the globally
// earliest completion across all queue pairs — ordered by
// (Done, queueID, slot). Closed-loop drivers use it to advance the host
// actor whose command finishes first. It reports false when every
// completion queue is empty.
func (h *Host) ReapAny() (Completion, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.drainLocked()
	var bestQP *QueuePair
	bestIdx := -1
	for _, qp := range h.qps {
		for i := qp.cqHead; i < len(qp.cq); i++ {
			c := &qp.cq[i]
			if bestQP == nil || earlier(c, &bestQP.cq[bestIdx]) {
				bestQP, bestIdx = qp, i
			}
		}
	}
	if bestQP == nil {
		return Completion{}, false
	}
	c := bestQP.cq[bestIdx]
	copy(bestQP.cq[bestIdx:], bestQP.cq[bestIdx+1:])
	bestQP.cq[len(bestQP.cq)-1] = Completion{}
	bestQP.cq = bestQP.cq[:len(bestQP.cq)-1]
	if bestQP.cqHead == len(bestQP.cq) {
		bestQP.cq = bestQP.cq[:0]
		bestQP.cqHead = 0
	}
	return c, true
}

// earlier orders completions by (Done, queueID, slot).
func earlier(a, b *Completion) bool {
	if a.Done != b.Done {
		return a.Done < b.Done
	}
	if a.QueueID != b.QueueID {
		return a.QueueID < b.QueueID
	}
	return a.Slot < b.Slot
}
