package hostif

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/ox"
)

// HostConfig tunes the host interface.
type HostConfig struct {
	// ChargeHostLink charges the controller host link (PCIe/40GE) for
	// each data command's payload before dispatch and for returned read
	// data after completion — the host hop of a user I/O. Drivers that
	// model the host link themselves leave it off. Admin commands are
	// host-memory operations and are never charged.
	ChargeHostLink bool

	// Weights are the WRR arbitration credit bursts; zero fields take
	// DefaultWeights (8/4/2).
	Weights Weights

	// AdminDepth sizes the admin queue pair (queue 0); minimum and
	// default 16.
	AdminDepth int

	// Executor selects the command-service engine: ExecutorSerial (the
	// reference oracle; the zero value) runs every granted command
	// inline in the arbitration loop, ExecutorPipelined decouples
	// arbitration from media execution and overlaps grants with
	// disjoint footprints on a worker pool, and ExecutorBatched is the
	// pipelined engine pulling a batch of grants per arbitration
	// acquisition. All produce bit-identical completions; see engine.go.
	Executor ExecutorKind

	// Workers sizes the pipelined executor's worker pool; zero selects
	// GOMAXPROCS. Ignored by the serial executor. The worker count
	// affects wall-clock speed only, never results.
	Workers int

	// BatchSize caps how many WRR grants the batched sequencer gathers
	// and footprint-classifies per arbitration acquisition; zero selects
	// DefaultBatchSize. Ignored by the serial and pipelined executors
	// (pipelined is exactly batch size 1). The batch size affects
	// wall-clock amortization only, never results.
	BatchSize int

	// Domains is the number of arbitration domains (minimum and default
	// 1). Each domain is an independent sequencer — its own execution
	// lock, WRR credit state and (for the engine executors) worker pool
	// and reorder stage — so queue pairs bound to different domains
	// never contend on a shared serial section. Queue pairs bind to a
	// domain at creation (CreateIOQueuePairIn); the admin queue lives in
	// domain 0. Footprint conflicts are only detected within a domain:
	// queue pairs whose commands may share media resources or FTL state
	// must share a domain. A single-domain host behaves exactly like the
	// pre-domain host.
	Domains int

	// globalLock reintroduces the pre-sharding behavior for benchmark
	// comparison only: every Submit/Ring additionally serializes on the
	// host-wide execution lock, the way the old single-mutex host did.
	globalLock bool
}

// Host is the host-interface runtime: it owns the attached namespaces
// and queue pairs, and executes visible commands in deterministic
// arbitration order. One Host fronts one ox.Controller.
//
// The host carries both planes of the NVMe-style surface. Queue 0 is
// the admin queue pair, created with the host; every management
// operation — namespace attach, I/O queue-pair create/delete, identify,
// log pages — is a typed admin command issued through Admin(). I/O
// queue pairs come from AdminCreateIOQP with a depth and a WRR Class.
//
// Locking discipline: queue-pair state (slot accounting, staging,
// completion reaping, the command arena, notification coalescing)
// lives behind each QueuePair's own mutex, so concurrent submitters on
// different queue pairs never contend. Each arbitration domain carries
// one execMu, which serializes that domain's arbitration-and-execution
// step — picking the next head by admin > urgent > WRR credits (a scan
// over per-queue atomic doorbell timestamps) and running it through
// the namespace adapter or the admin executor. Namespace and
// queue-pair registration use copy-on-write snapshots read lock-free
// on the submission path. Lock order: execMu(domain 0) → execMu(domain
// 1) → … → setupMu → QueuePair.mu, never the reverse; host-wide
// operations (Drain, ReapAny) take every domain lock in ascending
// domain order, per-queue operations (Reap) take only their own
// domain's. Notification callbacks run with no host lock held.
type Host struct {
	ctrl *ox.Controller
	cfg  HostConfig

	setupMu sync.Mutex // serializes snapshot writers (attach/open/delete)
	ns      atomic.Pointer[[]Namespace]
	qps     atomic.Pointer[[]*QueuePair]
	nextQID int         // monotonic: queue IDs are never reused
	qidDom  map[int]int // queue ID → domain index (setupMu)

	adminQP *QueuePair
	weights Weights

	domains   []*domain
	executed  atomic.Int64
	notifiers atomic.Int32 // queue pairs with a notify handler
}

// domain is one arbitration domain: an independent sequencer over the
// queue pairs bound to it. Everything the pre-domain host serialized
// under its single host-wide execution lock lives here, once per
// domain.
type domain struct {
	h  *Host
	id int

	qps atomic.Pointer[[]*QueuePair] // queue pairs bound to this domain

	execMu  sync.Mutex // arbitration + execution + completion consumption
	credits [3]int     // high/medium/low WRR credits (execMu)
	grants  int64      // serial-sequencer grants (execMu; engine keeps its own)
	notes   []Notification
	noteBox *[]Notification // pool box the current notes buffer rides in

	// eng is the execution engine (nil with ExecutorSerial).
	eng *engine
}

// queuePairs returns the domain's queue-pair snapshot (lock-free).
func (d *domain) queuePairs() []*QueuePair {
	if p := d.qps.Load(); p != nil {
		return *p
	}
	return nil
}

// NewHost builds a host interface over the controller. The admin queue
// pair (queue 0) is created with the host; everything else is attached
// through admin commands.
func NewHost(ctrl *ox.Controller, cfg HostConfig) *Host {
	if ctrl == nil {
		panic("hostif: nil controller")
	}
	if cfg.AdminDepth < 16 {
		cfg.AdminDepth = 16
	}
	if cfg.Domains < 1 {
		cfg.Domains = 1
	}
	h := &Host{ctrl: ctrl, cfg: cfg, weights: cfg.Weights.withDefaults(), qidDom: make(map[int]int)}
	batch := 1
	switch cfg.Executor {
	case "", ExecutorSerial, ExecutorPipelined:
	case ExecutorBatched:
		batch = cfg.BatchSize
		if batch < 1 {
			batch = DefaultBatchSize
		}
	default:
		panic(fmt.Sprintf("hostif: unknown executor %q", cfg.Executor))
	}
	h.domains = make([]*domain, cfg.Domains)
	var engines []*engine
	for i := range h.domains {
		d := &domain{h: h, id: i}
		d.credits = [3]int{h.weights.High, h.weights.Medium, h.weights.Low}
		d.noteBox = notePool.Get().(*[]Notification)
		d.notes = (*d.noteBox)[:0]
		if cfg.Executor == ExecutorPipelined || cfg.Executor == ExecutorBatched {
			d.eng = newEngine(cfg.Workers, batch)
			engines = append(engines, d.eng)
		}
		h.domains[i] = d
	}
	h.adminQP = h.openQueuePair(0, cfg.AdminDepth, ClassMedium)
	h.adminQP.admin = true
	if engines != nil {
		// Workers idle on the jobs channel between drains; stop them
		// when the host itself becomes unreachable (the pipeline is
		// always empty outside a drain, so no work can be lost).
		runtime.SetFinalizer(h, func(*Host) {
			for _, eng := range engines {
				eng.stop()
			}
		})
	}
	return h
}

// namespaces returns the current namespace snapshot (lock-free).
func (h *Host) namespaces() []Namespace {
	if p := h.ns.Load(); p != nil {
		return *p
	}
	return nil
}

// queuePairs returns the current queue-pair snapshot (lock-free).
func (h *Host) queuePairs() []*QueuePair {
	if p := h.qps.Load(); p != nil {
		return *p
	}
	return nil
}

// attachNamespace appends ns and returns its NSID (1-based). Reached
// through OpAdminNamespaceAttach.
func (h *Host) attachNamespace(ns Namespace) int {
	h.setupMu.Lock()
	defer h.setupMu.Unlock()
	cur := h.namespaces()
	next := make([]Namespace, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = ns
	h.ns.Store(&next)
	return len(next)
}

// namespaceOf resolves a command's NSID (0 = namespace 1).
func (h *Host) namespaceOf(nsid int) (Namespace, error) {
	ns := h.namespaces()
	if err := checkNSID(ns, nsid); err != nil {
		return nil, err
	}
	if nsid == 0 {
		nsid = 1
	}
	return ns[nsid-1], nil
}

// checkNSID validates a command's namespace id against a snapshot.
func checkNSID(ns []Namespace, nsid int) error {
	if nsid == 0 && len(ns) > 0 {
		return nil
	}
	if nsid < 1 || nsid > len(ns) {
		return ErrBadNSID
	}
	return nil
}

// openQueuePair creates a queue pair bound to arbitration domain dom
// with the given depth (minimum 1) and arbitration class. Reached
// through OpAdminCreateIOQP.
func (h *Host) openQueuePair(dom, depth int, class Class) *QueuePair {
	if depth < 1 {
		depth = 1
	}
	h.setupMu.Lock()
	defer h.setupMu.Unlock()
	cur := h.queuePairs()
	qp := &QueuePair{host: h, dom: h.domains[dom], id: h.nextQID, depth: depth, class: class}
	h.qidDom[h.nextQID] = dom
	h.nextQID++
	qp.headReady.Store(noHead)
	next := make([]*QueuePair, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = qp
	h.qps.Store(&next)
	h.bindLocked(qp)
	return qp
}

// bindLocked appends qp to its domain's queue-pair snapshot. Caller
// holds setupMu.
func (h *Host) bindLocked(qp *QueuePair) {
	d := qp.dom
	cur := d.queuePairs()
	next := make([]*QueuePair, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = qp
	d.qps.Store(&next)
}

// reopenQueuePair recreates a previously deleted I/O queue pair under
// its original ID — the resumption path of a fabric session whose
// connection died: the recreated pair is the same logical queue
// continuing, so it keeps the arbitration tie-break identity — and the
// domain binding — its earlier incarnation held. The ID must have been
// issued before and must not be live (ErrBadQueueID / ErrQueueBusy
// otherwise); the never-reused discipline of nextQID is preserved
// because only IDs the host itself once handed out can come back.
// Reached through OpAdminCreateIOQP with a non-zero QID.
func (h *Host) reopenQueuePair(qid, depth int, class Class) (*QueuePair, error) {
	if depth < 1 {
		depth = 1
	}
	h.setupMu.Lock()
	defer h.setupMu.Unlock()
	if qid <= 0 || qid >= h.nextQID {
		return nil, fmt.Errorf("%w: queue %d was never issued", ErrBadQueueID, qid)
	}
	cur := h.queuePairs()
	for _, qp := range cur {
		if qp.id == qid {
			return nil, fmt.Errorf("%w: queue %d is live", ErrQueueBusy, qid)
		}
	}
	qp := &QueuePair{host: h, dom: h.domains[h.qidDom[qid]], id: qid, depth: depth, class: class}
	qp.headReady.Store(noHead)
	next := make([]*QueuePair, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = qp
	h.qps.Store(&next)
	h.bindLocked(qp)
	return qp, nil
}

// deleteQueuePair removes the idle I/O queue pair qid from arbitration
// and closes it to further submission. Queue IDs are never reused, so
// arbitration tie-breaks stay stable across deletions. Reached through
// OpAdminDeleteIOQP; caller holds execMu.
func (h *Host) deleteQueuePair(qid int) error {
	h.setupMu.Lock()
	defer h.setupMu.Unlock()
	cur := h.queuePairs()
	idx := -1
	for i, qp := range cur {
		if qp.id == qid {
			idx = i
			break
		}
	}
	if idx < 0 || cur[idx].admin {
		return ErrBadQueueID
	}
	qp := cur[idx]
	qp.mu.Lock()
	if qp.closed {
		qp.mu.Unlock()
		return ErrBadQueueID
	}
	if qp.inflightLocked() > 0 {
		qp.mu.Unlock()
		return ErrQueueBusy
	}
	qp.closed = true
	if qp.notifyFn != nil {
		// Drop the registration so a deleted queue never pins the
		// host's notifier count (and with it the drain-end flush scan).
		qp.notifyFn = nil
		h.notifiers.Add(-1)
	}
	qp.mu.Unlock()
	next := make([]*QueuePair, 0, len(cur)-1)
	next = append(next, cur[:idx]...)
	next = append(next, cur[idx+1:]...)
	h.qps.Store(&next)
	dcur := qp.dom.queuePairs()
	dnext := make([]*QueuePair, 0, len(dcur)-1)
	for _, dq := range dcur {
		if dq != qp {
			dnext = append(dnext, dq)
		}
	}
	qp.dom.qps.Store(&dnext)
	return nil
}

// Executed reports the total number of I/O commands executed
// (diagnostics; admin commands are not counted).
func (h *Host) Executed() int64 { return h.executed.Load() }

// Close releases the host's execution engine: the pipelined executor's
// worker goroutines exit immediately instead of waiting for the
// garbage collector's finalizer backstop. Programs that build hosts in
// a loop (sweeps, benchmarks) should Close each one when done with it.
// Closing a serial host is a no-op; Close is idempotent. The host must
// be idle — no Drain/Reap in progress and none issued afterwards.
func (h *Host) Close() {
	for _, d := range h.domains {
		if d.eng != nil {
			d.eng.stop()
		}
	}
}

// lockAll acquires every domain's execution lock in ascending domain
// order — the host-wide critical section of Drain and ReapAny.
func (h *Host) lockAll() {
	for _, d := range h.domains {
		d.execMu.Lock()
	}
}

// unlockAll releases every domain's execution lock.
func (h *Host) unlockAll() {
	for _, d := range h.domains {
		d.execMu.Unlock()
	}
}

// drainAllLocked drains every domain and collects their pending
// notifications in domain order. The first pending box is returned
// separately so the ubiquitous single-domain host allocates nothing.
// Caller holds all domain locks and delivers first, then rest, after
// releasing them.
func (h *Host) drainAllLocked() (first *[]Notification, rest []*[]Notification) {
	for _, d := range h.domains {
		d.drainLocked()
		if box := d.takeNotes(); box != nil {
			if first == nil {
				first = box
			} else {
				rest = append(rest, box)
			}
		}
	}
	return first, rest
}

// deliverAll delivers the notification boxes drainAllLocked collected,
// holding no locks.
func (h *Host) deliverAll(first *[]Notification, rest []*[]Notification) {
	h.deliver(first)
	for _, box := range rest {
		h.deliver(box)
	}
}

// Drain executes every visible command across all queue pairs in
// arbitration order, filling the completion queues and delivering any
// due notifications. With several domains, each domain drains
// independently in domain order.
func (h *Host) Drain() {
	h.lockAll()
	first, rest := h.drainAllLocked()
	h.unlockAll()
	h.deliverAll(first, rest)
}

// noHead is the per-queue doorbell timestamp meaning "no visible
// command" — it loses every arbitration comparison.
const noHead = math.MaxInt64

// drainLocked is the arbitration loop of one domain: while any of its
// submission queues has a visible command, let the arbiter pick one
// (admin strictly first, then urgent, then the weighted classes by
// credit — see arbitrate), serve its head, and repeat. Within a queue,
// commands execute in slot (FIFO) order. The order is a pure function
// of the submission history, which is what keeps figure tables
// bit-identical across runs. Partial notification batches are flushed
// when the drain runs dry (the coalescing-timer analog).
//
// With ExecutorPipelined or ExecutorBatched the same grant order feeds
// the worker pool instead (engine.go); the reorder stage restores this
// loop's completion order exactly, so all paths satisfy the same
// contract.
//
// Caller holds d.execMu and delivers takeNotes() after releasing it.
func (d *domain) drainLocked() {
	if d.eng != nil {
		d.drainEngineLocked()
		return
	}
	h := d.h
	for {
		best := d.arbitrate()
		if best == nil {
			d.flushNotifies()
			return
		}
		e, ok := best.takeHead()
		if !ok {
			continue
		}
		d.grants++
		best.complete(h.exec(best, e))
		if !e.cmd.Op.IsAdmin() {
			h.executed.Add(1)
		}
	}
}

// exec runs one command: optional host-link transfer in, the namespace
// adapter (which routes through the FTL's own controller and media
// accounting) or the admin executor, optional host-link transfer of
// returned data out. Caller holds execMu; no queue-pair mutex is held.
func (h *Host) exec(qp *QueuePair, e sqe) Completion {
	cmd := e.cmd
	if cmd.Op.IsAdmin() {
		res := h.execAdmin(e.ready, cmd)
		res.Status = StatusOf(res.Err)
		return Completion{
			QueueID:   qp.id,
			Slot:      e.slot,
			Op:        cmd.Op,
			NSID:      cmd.NSID,
			Submitted: e.ready,
			Done:      e.ready,
			Result:    res,
			cmd:       cmd,
		}
	}
	start := e.ready
	if h.cfg.ChargeHostLink && len(cmd.Data) > 0 {
		start = h.ctrl.HostTransfer(start, int64(len(cmd.Data)))
	}
	ns := h.namespaces()
	var res Result
	if err := checkNSID(ns, cmd.NSID); err != nil {
		res = Result{End: start, Err: err}
	} else {
		nsid := cmd.NSID
		if nsid == 0 {
			nsid = 1
		}
		res = ns[nsid-1].Execute(start, cmd)
	}
	if h.cfg.ChargeHostLink && res.Err == nil {
		if n := len(res.Data); n > 0 {
			res.End = h.ctrl.HostTransfer(res.End, int64(n))
		} else if cmd.Op == OpTableRead && len(cmd.Dst) > 0 {
			res.End = h.ctrl.HostTransfer(res.End, int64(len(cmd.Dst)))
		}
	}
	res.Status = StatusOf(res.Err)
	return Completion{
		QueueID:   qp.id,
		Slot:      e.slot,
		Op:        cmd.Op,
		NSID:      cmd.NSID,
		Submitted: e.ready,
		Done:      res.End,
		Result:    res,
		cmd:       cmd,
	}
}

// ReapAny executes every visible command, then pops the globally
// earliest I/O completion across the I/O queue pairs — ordered by
// (Done, queueID, slot). Closed-loop drivers use it to advance the host
// actor whose command finishes first. It reports false when every I/O
// completion queue is empty. Admin completions are never returned:
// they belong to whoever drives the admin queue (AdminClient reaps its
// own submissions), so a data-plane ReapAny loop can run concurrently
// with control-plane calls without stealing their completions.
func (h *Host) ReapAny() (Completion, bool) {
	h.lockAll()
	first, rest := h.drainAllLocked()
	// Completion queues are only mutated under their domain's execMu,
	// all of which are held, so the scan sees a stable snapshot;
	// per-queue mutexes are taken around each access to stay ordered
	// with concurrent Outstanding/Submit readers.
	var bestQP *QueuePair
	bestIdx := -1
	var bestC Completion
	for _, qp := range h.queuePairs() {
		if qp.admin {
			continue
		}
		qp.mu.Lock()
		for i := 0; i < qp.cq.len(); i++ {
			c := qp.cq.at(i)
			if bestQP == nil || earlier(c, &bestC) {
				bestQP, bestIdx, bestC = qp, i, *c
			}
		}
		qp.mu.Unlock()
	}
	if bestQP == nil {
		h.unlockAll()
		h.deliverAll(first, rest)
		return Completion{}, false
	}
	bestQP.mu.Lock()
	c := bestQP.cq.removeAt(bestIdx)
	bestQP.recycleLocked(c.cmd)
	bestQP.mu.Unlock()
	h.unlockAll()
	h.deliverAll(first, rest)
	return c, true
}

// earlier orders completions by (Done, queueID, slot).
func earlier(a, b *Completion) bool {
	if a.Done != b.Done {
		return a.Done < b.Done
	}
	if a.QueueID != b.QueueID {
		return a.QueueID < b.QueueID
	}
	return a.Slot < b.Slot
}
