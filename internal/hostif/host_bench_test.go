package hostif

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/vclock"
)

// nullNS is a namespace with a fixed per-command latency and no shared
// state, so the benchmark measures host-interface overhead — lock
// contention and per-command bookkeeping — rather than FTL work.
type nullNS struct{ dur vclock.Duration }

func (n nullNS) Name() string { return "null" }

func (n nullNS) Execute(now vclock.Time, cmd *Command) Result {
	return Result{End: now.Add(n.dur)}
}

// Footprint implements Namespace: stateless, so any command may overlap
// with any other (one shared pseudo-domain, disjoint group masks).
func (n nullNS) Footprint(cmd *Command) Footprint {
	return Footprint{Domain: nullDomain, Groups: 1 << uint(cmd.LPN&63)}
}

// nullDomain is the shared footprint domain of all nullNS instances.
var nullDomain = new(int)

// BenchmarkHostMultiSubmitter measures wall-clock scaling of N
// goroutines driving N queue pairs: each worker builds a payload per
// command (the host-side work a real submitter does), stages a
// doorbell batch, rings, and reaps the batch. The "global" variants
// reintroduce the pre-sharding behavior — one host-wide mutex in front
// of Submit and Ring — so a worker's payload prep and staging
// serialize against every other worker's submissions and drains, the
// way the old single-mutex host serialized them. Sharded queue pairs
// overlap all per-queue work; only the arbitration/execution step
// remains serial (it must be, for determinism).
func BenchmarkHostMultiSubmitter(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, global := range []bool{false, true} {
			mode := "sharded"
			if global {
				mode = "global"
			}
			b.Run(fmt.Sprintf("%s-%d", mode, workers), func(b *testing.B) {
				benchMultiSubmitter(b, workers, global)
			})
		}
	}
}

func benchMultiSubmitter(b *testing.B, workers int, global bool) {
	const depth = 8
	const payload = 4096
	ctrl := testController(b)
	h := NewHost(ctrl, HostConfig{globalLock: global})
	if _, err := h.Admin().AttachNamespace(0, nullNS{dur: vclock.Microsecond}); err != nil {
		b.Fatal(err)
	}
	qps := make([]*QueuePair, workers)
	for i := range qps {
		qps[i] = openQP(b, h, depth)
	}
	opsPerWorker := b.N/workers + 1
	b.SetBytes(payload)
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, qp *QueuePair) {
			defer wg.Done()
			buf := make([]byte, payload)
			now := vclock.Time(0)
			for done := 0; done < opsPerWorker; {
				batch := depth
				if left := opsPerWorker - done; left < batch {
					batch = left
				}
				for i := 0; i < batch; i++ {
					for j := range buf {
						buf[j] = byte(w + done + i + j)
					}
					cmd := qp.AcquireCommand()
					cmd.Op, cmd.LPN, cmd.Data = OpWrite, int64(done+i), buf
					if _, err := qp.Submit(cmd); err != nil {
						b.Error(err)
						return
					}
				}
				qp.Ring(now)
				for i := 0; i < batch; i++ {
					c := qp.MustReap()
					if c.Done > now {
						now = c.Done
					}
				}
				done += batch
			}
		}(w, qps[w])
	}
	wg.Wait()
}
