// Package hostif is the host-interface layer of the OX controller —
// the third layer of §4.1's design that parses NVMe/LightNVM commands
// arriving over queue pairs. The repo's FTL portfolio (OX-Block,
// OX-ELEOS, LightLSM, OX-ZNS) exposes bespoke blocking methods; this
// package unifies them behind one command surface so experiment
// drivers, db_bench and the cmd/ tools all speak the same protocol:
//
//   - typed Commands (Read, Write, Trim, Flush, ZoneAppend, TableRead,
//     ...) are placed in submission-queue slots and made visible with a
//     doorbell ring (batched submission = several Submits, one Ring),
//   - the Host arbitrates across submission queues deterministically
//     with NVMe-style weighted round-robin: the admin queue wins over
//     everything, urgent-class queues over the weighted classes, and
//     high/medium/low consume per-class credit bursts; within a class
//     the earliest doorbell wins and exact ties break on
//     (queueID, slot) — so the determinism contract of DESIGN.md holds
//     bit for bit,
//   - each command completes at a virtual instant computed by the
//     namespace adapter, which routes through the FTL's existing
//     ox.Controller accounting (controller CPU, memory-bus copies,
//     media reservations); the host link is charged per command when
//     the Host is configured with ChargeHostLink.
//
// The control plane is the admin queue pair (queue 0, created with the
// Host): namespace attachment, I/O queue-pair lifecycle, identify and
// log pages are typed admin commands, issued through AdminClient
// (admin.go). Completions are consumed by polling Reap/ReapAny or by
// interrupt-style notification with coalescing (notify.go); both see
// identical virtual timing.
//
// A Namespace is one FTL attached to the host; adapters for all four
// FTLs live in this package (block.go, eleos.go, zone.go, lsmns.go).
// Multiple namespaces can share one controller — NewBlockPartition
// carves disjoint LPN ranges of a single OX-Block device into
// NVMe-style namespaces for multi-tenant scenarios.
package hostif

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/ocssd"
	"repro/internal/vclock"
)

// Op is a typed host-interface command opcode.
type Op uint8

// The command set: the union of the FTL portfolio's data-path
// operations. Adapters return ErrUnsupported for ops outside their
// namespace's repertoire.
const (
	// OpRead reads data: a page extent (OX-Block), one logical page
	// (OX-ELEOS) or a zone byte range (OX-ZNS).
	OpRead Op = iota + 1
	// OpWrite writes data: a transactional page extent (OX-Block) or a
	// sequential write at the zone write pointer (OX-ZNS).
	OpWrite
	// OpTrim unmaps: a page extent (OX-Block) or one page (OX-ELEOS).
	OpTrim
	// OpFlush persists volatile state: an LSS I/O buffer flush
	// (OX-ELEOS) or a forced checkpoint (OX-Block).
	OpFlush
	// OpZoneAppend appends at the zone write pointer, returning where
	// the data landed (OX-ZNS).
	OpZoneAppend
	// OpZoneReset returns a zone to empty (OX-ZNS).
	OpZoneReset
	// OpZoneFinish transitions a zone to full (OX-ZNS).
	OpZoneFinish
	// OpTableCreate provisions a new SSTable writer (LightLSM).
	OpTableCreate
	// OpTableAppend appends one block to an open SSTable writer.
	OpTableAppend
	// OpTableCommit atomically publishes an SSTable.
	OpTableCommit
	// OpTableAbort discards an open SSTable writer.
	OpTableAbort
	// OpTableRead reads one block of a committed SSTable into Dst.
	OpTableRead
	// OpTableDelete releases a committed SSTable (chunk resets).
	OpTableDelete
	// OpOffloadGet resolves a point lookup inside the device (LightLSM):
	// the controller searches one SSTable block in place and returns only
	// the value, not the block. Handle names the table, Length its block
	// count, LPN the block index, Data the key; the result comes back in
	// Result.Data (offload.EncodeGetResult framing).
	OpOffloadGet
	// OpOffloadScan runs a predicate-filtered range scan inside the
	// device (OX-Block): the controller reads [LPN, LPN+Pages) and ships
	// only matching pages over the host link. Data carries the encoded
	// offload.Predicate; the result is offload.EncodeScanResult framing.
	OpOffloadScan
	// OpOffloadCompact merges committed SSTables inside the device
	// (LightLSM): the controller iterates the inputs, drops shadowed and
	// (optionally) deleted entries and builds the output tables, charging
	// media and in-device compute but no host-link block traffic. Data
	// carries the encoded offload.CompactRequest; the result is
	// offload.EncodeCompactResult framing (output table metas).
	OpOffloadCompact
)

// Admin opcodes occupy the high opcode range and are valid only on the
// admin queue pair (queue 0). They are the control plane: everything
// that used to be a direct Go method call on the Host or an adapter is
// one of these commands.
const (
	// OpAdminIdentify reports controller identity (NSID 0) or one
	// namespace's identity and geometry (NSID ≥ 1) in Result.Admin.
	OpAdminIdentify Op = iota + 0x80
	// OpAdminGetLogPage returns the log page selected by Admin.Log —
	// controller stats, utilization, chunk/zone reports, GC stats — in
	// Result.Admin.
	OpAdminGetLogPage
	// OpAdminCreateIOQP creates an I/O queue pair with Admin.Depth and
	// Admin.Class; Result.Admin carries the *QueuePair.
	OpAdminCreateIOQP
	// OpAdminDeleteIOQP deletes the idle I/O queue pair Admin.QID.
	OpAdminDeleteIOQP
	// OpAdminNamespaceAttach attaches Admin.Attach as a namespace;
	// Result.Handle carries the assigned NSID.
	OpAdminNamespaceAttach
)

// IsAdmin reports whether o is an admin opcode (admin queue only).
func (o Op) IsAdmin() bool { return o >= OpAdminIdentify }

var opNames = map[Op]string{
	OpRead:                 "read",
	OpWrite:                "write",
	OpTrim:                 "trim",
	OpFlush:                "flush",
	OpZoneAppend:           "zone-append",
	OpZoneReset:            "zone-reset",
	OpZoneFinish:           "zone-finish",
	OpTableCreate:          "table-create",
	OpTableAppend:          "table-append",
	OpTableCommit:          "table-commit",
	OpTableAbort:           "table-abort",
	OpTableRead:            "table-read",
	OpTableDelete:          "table-delete",
	OpOffloadGet:           "offload-get",
	OpOffloadScan:          "offload-scan",
	OpOffloadCompact:       "offload-compact",
	OpAdminIdentify:        "admin-identify",
	OpAdminGetLogPage:      "admin-get-log-page",
	OpAdminCreateIOQP:      "admin-create-ioqp",
	OpAdminDeleteIOQP:      "admin-delete-ioqp",
	OpAdminNamespaceAttach: "admin-namespace-attach",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Errors returned by the host interface.
var (
	ErrQueueFull   = errors.New("hostif: submission queue full")
	ErrBadNSID     = errors.New("hostif: unknown namespace")
	ErrUnsupported = errors.New("hostif: op not supported by namespace")
	ErrBadHandle   = errors.New("hostif: unknown handle")
	// ErrCommandInFlight flags arena-command misuse: the command was
	// resubmitted before its previous completion was reaped.
	ErrCommandInFlight = errors.New("hostif: arena command resubmitted before its completion was reaped")
	// ErrCommandRecycled flags arena-command misuse: the command's slot
	// was already recycled at Reap; acquire a fresh one.
	ErrCommandRecycled = errors.New("hostif: arena command reused after recycling; call AcquireCommand again")
	// ErrAdminOnly rejects an admin command submitted to an I/O queue.
	ErrAdminOnly = errors.New("hostif: admin command on I/O queue pair")
	// ErrIOOnAdmin rejects a data command submitted to the admin queue.
	ErrIOOnAdmin = errors.New("hostif: I/O command on admin queue pair")
	// ErrQueueClosed rejects submission to a deleted queue pair.
	ErrQueueClosed = errors.New("hostif: queue pair deleted")
	// ErrQueueBusy refuses to delete a queue pair with held slots.
	ErrQueueBusy = errors.New("hostif: queue pair has unreaped or in-flight commands")
	// ErrBadQueueID flags an unknown or non-deletable queue pair id.
	ErrBadQueueID = errors.New("hostif: unknown I/O queue pair")
	// ErrBadLogPage flags a log page the target cannot serve.
	ErrBadLogPage = errors.New("hostif: log page not supported")
)

// Status classifies a completion's Err into an NVMe-style status class
// so drivers and recovery paths can switch on failure kind without
// unwrapping error chains.
type Status uint8

// Completion status classes.
const (
	// StatusOK is a successful command.
	StatusOK Status = iota
	// StatusInvalid is a host- or FTL-side rejection: malformed
	// address, unsupported op, bad namespace — the media was fine.
	StatusInvalid
	// StatusMediaRead is an uncorrectable NAND read error.
	StatusMediaRead
	// StatusMediaWrite is a program or erase failure; the device has
	// retired the chunk (it is now offline).
	StatusMediaWrite
	// StatusOffline is an access to a chunk already marked offline.
	StatusOffline
	// StatusPowerLoss means the device lost power mid-command; no
	// further commands will succeed until the device is reopened.
	StatusPowerLoss
	// StatusInternal is any other failure.
	StatusInternal
)

var statusNames = [...]string{
	StatusOK:         "ok",
	StatusInvalid:    "invalid",
	StatusMediaRead:  "media-read",
	StatusMediaWrite: "media-write",
	StatusOffline:    "offline",
	StatusPowerLoss:  "power-loss",
	StatusInternal:   "internal",
}

func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// StatusOf classifies an error the way the completion path does. The
// media-error classes are driven by the typed errors of the fault
// injector and the device, so recovery code observes the same taxonomy
// whether it calls an FTL directly or goes through the host interface.
func StatusOf(err error) Status {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, fault.ErrPowerCut):
		return StatusPowerLoss
	case errors.Is(err, fault.ErrReadError):
		return StatusMediaRead
	case errors.Is(err, fault.ErrProgramFail), errors.Is(err, fault.ErrEraseFail):
		return StatusMediaWrite
	case errors.Is(err, ocssd.ErrOffline):
		return StatusOffline
	case errors.Is(err, ErrBadNSID), errors.Is(err, ErrUnsupported),
		errors.Is(err, ErrBadHandle), errors.Is(err, ErrAdminOnly),
		errors.Is(err, ErrIOOnAdmin), errors.Is(err, ErrBadLogPage),
		errors.Is(err, ocssd.ErrAddress), errors.Is(err, ocssd.ErrWritePointer),
		errors.Is(err, ocssd.ErrWriteSize), errors.Is(err, ocssd.ErrChunkState),
		errors.Is(err, ocssd.ErrChunkFull), errors.Is(err, ocssd.ErrUnwritten),
		errors.Is(err, ocssd.ErrOpenLimit), errors.Is(err, ocssd.ErrDataSize):
		return StatusInvalid
	default:
		return StatusInternal
	}
}

// Command is one submission-queue entry. Fields are interpreted per
// opcode and namespace; unused fields are ignored.
type Command struct {
	// Op selects the operation.
	Op Op
	// NSID routes the command to a namespace (1-based). Zero targets
	// namespace 1, the common single-namespace case.
	NSID int
	// LPN addresses the command: first logical page (OX-Block), logical
	// page ID (OX-ELEOS), zone byte offset (OX-ZNS) or SSTable block
	// index (OpTableRead).
	LPN int64
	// Pages is the extent length in 4 KB pages (OX-Block reads/trims).
	Pages int
	// Zone is the zone index (OX-ZNS).
	Zone int
	// Length is the byte length of an OX-ZNS read.
	Length int64
	// Handle names an open SSTable writer (OpTableAppend/Commit/Abort)
	// or a committed table (OpTableRead/Delete).
	Handle uint64
	// Data is the payload of writes, appends and flushes.
	Data []byte
	// Dst receives OpTableRead data (the lsm.Env contract reads into a
	// caller-owned buffer).
	Dst []byte
	// Descs are the page descriptors of an OX-ELEOS buffer flush.
	Descs []PageDesc
	// Admin carries admin-command parameters (admin opcodes only).
	Admin AdminParams
}

// Result is what a namespace adapter reports for one executed command.
type Result struct {
	// End is the virtual completion instant.
	End vclock.Time
	// Err is the command status (nil on success).
	Err error
	// Status classifies Err (StatusOK when nil); filled by the
	// completion path, so namespace adapters may leave it zero.
	Status Status
	// Data holds read results (OpRead).
	Data []byte
	// Offset is where an OpZoneAppend landed.
	Offset int64
	// Handle is a created writer (OpTableCreate), committed table
	// (OpTableCommit) or assigned NSID (OpAdminNamespaceAttach).
	Handle uint64
	// Blocks is a committed table's block count (OpTableCommit).
	Blocks int
	// Admin holds an admin command's typed payload: IdentifyController,
	// NamespaceIdentity, a log page value, or the created *QueuePair.
	// Nil for data commands, so the data path never touches it.
	Admin any
}

// Completion is one completion-queue entry.
type Completion struct {
	// QueueID and Slot identify the submission (slot is the queue-local
	// command sequence number).
	QueueID int
	Slot    uint64
	// Op and NSID echo the command.
	Op   Op
	NSID int
	// Submitted is the doorbell instant; Done is the completion instant.
	Submitted vclock.Time
	Done      vclock.Time
	Result

	// cmd remembers the submitted command so Reap can recycle its arena
	// slot (nil or ignored for driver-owned commands).
	cmd *Command
}

// Latency is the command's queue-to-completion virtual latency.
func (c Completion) Latency() vclock.Duration { return c.Done.Sub(c.Submitted) }

// Namespace is one FTL attached to the host interface. Execute runs a
// single command starting at virtual instant now and reports its
// completion; adapters translate opcodes into the FTL's native calls,
// so all controller and media accounting is the FTL's own.
type Namespace interface {
	// Name identifies the namespace (diagnostics).
	Name() string
	// Execute runs cmd at now. Implementations must be deterministic:
	// equal (state, now, cmd) sequences yield equal results.
	Execute(now vclock.Time, cmd *Command) Result
	// Footprint classifies the media resources cmd will touch before it
	// executes — the pipelined execution engine's overlap oracle. The
	// returned footprint must be conservative: two commands whose
	// footprints do not Conflict may Execute concurrently, and doing so
	// must leave every result and every virtual-time reservation exactly
	// as serial seq-order execution would (the determinism contract).
	Footprint(cmd *Command) Footprint
}

// Footprint describes the serialization scope of one data command: the
// timing domain it executes in and the device groups (channels) it
// touches. The pipelined executor overlaps commands whose footprints
// are disjoint and serializes the rest in grant order.
//
// Domain identifies the set of shared virtual-time resources the
// command may reserve — conventionally the *ox.Controller of the FTL's
// device stack, since controller cores, the memory bus and any
// device-wide FTL lock all live under it. It must be a comparable value
// (pointers are); commands in different domains never share state and
// may always overlap. A nil Domain means "unknown": the command
// conflicts with everything.
//
// Within a domain, Exclusive marks commands that must serialize against
// every other command of the domain (device-wide FTL transactions,
// write-back-cache admission, WAL appends, GC-triggering writes).
// Non-exclusive commands carry a Groups bitmask (bit g = device group
// g): two commands whose masks are disjoint touch disjoint per-group
// channel buses and per-PU chip timelines, so their reservations
// commute. A non-exclusive footprint with an empty mask is unknown and
// is normalized to Exclusive.
type Footprint struct {
	Domain    any
	Groups    uint64
	Exclusive bool
}

// ExclusiveFootprint is the whole-domain footprint: the command
// serializes against every other command of dom.
func ExclusiveFootprint(dom any) Footprint {
	return Footprint{Domain: dom, Exclusive: true}
}

// GroupFootprint scopes a command to a single device group of dom.
// Groups beyond the mask width (≥ 64) fall back to exclusive.
func GroupFootprint(dom any, group int) Footprint {
	if group < 0 || group >= 64 {
		return ExclusiveFootprint(dom)
	}
	return Footprint{Domain: dom, Groups: 1 << uint(group)}
}

// normalize folds the unknown cases into Exclusive.
func (f Footprint) normalize() Footprint {
	if f.Domain == nil || (!f.Exclusive && f.Groups == 0) {
		f.Exclusive = true
	}
	return f
}

// Conflicts reports whether two (normalized) footprints may not
// overlap in wall-clock time.
func (f Footprint) Conflicts(g Footprint) bool {
	if f.Domain == nil || g.Domain == nil {
		return true
	}
	if f.Domain != g.Domain {
		return false
	}
	if f.Exclusive || g.Exclusive {
		return true
	}
	return f.Groups&g.Groups != 0
}
