package hostif

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/vclock"
)

// fakeNS is a Namespace whose commands serialize on one resource with a
// fixed duration, recording execution order.
type fakeNS struct {
	res *vclock.Resource
	dur vclock.Duration

	mu    sync.Mutex
	order []int64 // cmd.LPN of each executed command, in order
}

func newFakeNS(dur vclock.Duration) *fakeNS {
	return &fakeNS{res: vclock.NewResource("fake"), dur: dur}
}

func (f *fakeNS) Name() string { return "fake" }

// Footprint implements Namespace: all commands serialize on one
// resource, so the namespace is one exclusive domain.
func (f *fakeNS) Footprint(cmd *Command) Footprint { return ExclusiveFootprint(f.res) }

func (f *fakeNS) Execute(now vclock.Time, cmd *Command) Result {
	_, end := f.res.Acquire(now, f.dur)
	f.mu.Lock()
	f.order = append(f.order, cmd.LPN)
	f.mu.Unlock()
	return Result{End: end}
}

func (f *fakeNS) executed() []int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int64(nil), f.order...)
}

func testHost(t *testing.T, dur vclock.Duration) (*Host, *fakeNS) {
	t.Helper()
	ctrl := testController(t)
	ns := newFakeNS(dur)
	h := NewHost(ctrl, HostConfig{})
	attachNS(t, h, ns)
	return h, ns
}

func TestArbitrationEarliestReadyThenQueueID(t *testing.T) {
	h, ns := testHost(t, 10*vclock.Microsecond)
	q0 := openQP(t, h, 4)
	q1 := openQP(t, h, 4)

	// q1 rings earlier than q0; within q0, slots stay FIFO; an exact
	// ready tie (q0 vs q1 at 50µs) goes to the lower queue ID.
	push := func(qp *QueuePair, at vclock.Time, id int64) {
		t.Helper()
		if err := qp.Push(at, &Command{Op: OpWrite, LPN: id}); err != nil {
			t.Fatal(err)
		}
	}
	push(q0, vclock.Time(50*vclock.Microsecond), 1)
	push(q0, vclock.Time(50*vclock.Microsecond), 2)
	push(q1, vclock.Time(20*vclock.Microsecond), 3)
	push(q1, vclock.Time(50*vclock.Microsecond), 4)
	h.Drain()
	want := []int64{3, 1, 2, 4}
	got := ns.executed()
	if len(got) != len(want) {
		t.Fatalf("executed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("executed %v, want %v", got, want)
		}
	}
}

func TestDoorbellBatching(t *testing.T) {
	h, ns := testHost(t, 10*vclock.Microsecond)
	qp := openQP(t, h, 8)

	for i := int64(0); i < 3; i++ {
		if _, err := qp.Submit(&Command{Op: OpWrite, LPN: i}); err != nil {
			t.Fatal(err)
		}
	}
	// Staged commands are invisible until the doorbell rings.
	h.Drain()
	if n := len(ns.executed()); n != 0 {
		t.Fatalf("executed %d commands before doorbell", n)
	}
	if _, ok := qp.Reap(); ok {
		t.Fatal("completion before doorbell")
	}
	if n := qp.Ring(vclock.Time(5 * vclock.Microsecond)); n != 3 {
		t.Fatalf("Ring made %d visible, want 3", n)
	}
	for i := 0; i < 3; i++ {
		c, ok := qp.Reap()
		if !ok {
			t.Fatalf("missing completion %d", i)
		}
		if c.Submitted != vclock.Time(5*vclock.Microsecond) {
			t.Fatalf("completion %d submitted at %v, want the doorbell instant", i, c.Submitted)
		}
		// Serialized on one resource: latency grows with queue position.
		if want := vclock.Duration(i+1) * 10 * vclock.Microsecond; c.Latency() != want {
			t.Fatalf("completion %d latency %v, want %v", i, c.Latency(), want)
		}
	}
}

func TestQueueDepthEnforced(t *testing.T) {
	h, _ := testHost(t, vclock.Microsecond)
	qp := openQP(t, h, 2)
	if err := qp.Push(0, &Command{Op: OpWrite}); err != nil {
		t.Fatal(err)
	}
	if err := qp.Push(0, &Command{Op: OpWrite}); err != nil {
		t.Fatal(err)
	}
	// Slots stay held until completions are reaped.
	if _, err := qp.Submit(&Command{Op: OpWrite}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: %v, want ErrQueueFull", err)
	}
	if _, ok := qp.Reap(); !ok {
		t.Fatal("no completion")
	}
	if _, err := qp.Submit(&Command{Op: OpWrite}); err != nil {
		t.Fatalf("submit after reap: %v", err)
	}
}

func TestFairnessAcrossQueuePairs(t *testing.T) {
	h, _ := testHost(t, 10*vclock.Microsecond)
	const queues, perQueue = 4, 8
	qps := make([]*QueuePair, queues)
	issued := make([]int, queues)
	for i := range qps {
		qps[i] = openQP(t, h, 1)
		if err := qps[i].Push(0, &Command{Op: OpWrite, LPN: int64(i)}); err != nil {
			t.Fatal(err)
		}
		issued[i]++
	}
	// Closed loop: symmetric tenants resubmit at each completion. With
	// identical command costs, round-robin arbitration must serve them
	// in a perfect cycle and finish them with equal service counts.
	// I/O queue IDs start at 1 (queue 0 is the admin queue).
	var sequence []int
	served := make([]int, queues)
	for reaped := 0; reaped < queues*perQueue; reaped++ {
		c, ok := h.ReapAny()
		if !ok {
			t.Fatal("completion queue ran dry")
		}
		q := c.QueueID - qps[0].ID()
		sequence = append(sequence, q)
		served[q]++
		if issued[q] < perQueue {
			if err := qps[q].Push(c.Done, &Command{Op: OpWrite, LPN: int64(q)}); err != nil {
				t.Fatal(err)
			}
			issued[q]++
		}
	}
	for q, n := range served {
		if n != perQueue {
			t.Fatalf("queue %d served %d, want %d (sequence %v)", q, n, perQueue, sequence)
		}
	}
	for i, q := range sequence {
		if q != i%queues {
			t.Fatalf("service order not round-robin at %d: %v", i, sequence)
		}
	}
}

// TestConcurrentSubmittersDeterministic pins the determinism contract
// under -race: goroutines race to stage and ring commands on their own
// queue pairs, yet the completion order is a pure function of the
// (fixed) ready times — identical across runs.
func TestConcurrentSubmittersDeterministic(t *testing.T) {
	run := func() []Completion {
		h, _ := testHost(t, 7*vclock.Microsecond)
		const queues, perQueue = 4, 6
		qps := make([]*QueuePair, queues)
		for i := range qps {
			qps[i] = openQP(t, h, perQueue)
		}
		var wg sync.WaitGroup
		for i := range qps {
			wg.Add(1)
			go func(q int) {
				defer wg.Done()
				for j := 0; j < perQueue; j++ {
					at := vclock.Time(q*3+j*11) * vclock.Time(vclock.Microsecond)
					if err := qps[q].Push(at, &Command{Op: OpWrite, LPN: int64(q*100 + j)}); err != nil {
						t.Error(err)
						return
					}
				}
			}(i)
		}
		wg.Wait()
		var out []Completion
		for {
			c, ok := h.ReapAny()
			if !ok {
				break
			}
			out = append(out, c)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != 24 || len(b) != 24 {
		t.Fatalf("completions %d/%d, want 24", len(a), len(b))
	}
	for i := range a {
		if a[i].QueueID != b[i].QueueID || a[i].Slot != b[i].Slot || a[i].Done != b[i].Done {
			t.Fatalf("run divergence at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestBadNamespaceRejectedAtSubmit(t *testing.T) {
	h, _ := testHost(t, vclock.Microsecond)
	qp := openQP(t, h, 1)
	if _, err := qp.Submit(&Command{Op: OpWrite, NSID: 9}); !errors.Is(err, ErrBadNSID) {
		t.Fatalf("submit to nsid 9: %v, want ErrBadNSID", err)
	}
}
