package hostif

import (
	"fmt"

	"repro/internal/lightlsm"
	"repro/internal/lsm"
	"repro/internal/offload"
	"repro/internal/vclock"
)

// LSMNamespace serves a LightLSM environment as a host-interface
// namespace. SSTable writers are NVMe-stream-like open resources: an
// OpTableCreate returns a writer handle, OpTableAppend/Commit/Abort
// address it, and OpTableCommit exchanges it for a committed table
// handle usable with OpTableRead/Delete.
type LSMNamespace struct {
	env        *lightlsm.Env
	writers    map[uint64]lsm.TableWriter
	nextWriter uint64
}

// NewLSMNamespace wraps env.
func NewLSMNamespace(env *lightlsm.Env) *LSMNamespace {
	return &LSMNamespace{env: env, writers: make(map[uint64]lsm.TableWriter)}
}

// Name implements Namespace.
func (n *LSMNamespace) Name() string { return "lightlsm" }

// identity serves AdminIdentify: the block and SSTable geometry the
// EnvClient needs to satisfy lsm.Env.
func (n *LSMNamespace) identity() NamespaceIdentity {
	return NamespaceIdentity{
		Name:           n.Name(),
		BlockSize:      n.env.BlockSize(),
		MaxTableBlocks: n.env.MaxTableBlocks(),
	}
}

// logPage serves AdminGetLogPage: FTL counters and per-table chunk
// placement (Command.Handle names the committed table).
func (n *LSMNamespace) logPage(now vclock.Time, cmd *Command) (any, error) {
	switch cmd.Admin.Log {
	case LogNamespaceStats:
		return n.env.Stats(), nil
	case LogOffload:
		return n.env.Offload().Stats(), nil
	case LogTableChunks:
		chunks, ok := n.env.TableChunks(lsm.TableID(cmd.Handle))
		if !ok {
			return nil, fmt.Errorf("%w: table %d", ErrBadHandle, cmd.Handle)
		}
		return chunks, nil
	default:
		return nil, fmt.Errorf("%w: %v on %s", ErrBadLogPage, cmd.Admin.Log, n.Name())
	}
}

// Footprint implements Namespace. LightLSM table commands are
// exclusive within their controller domain: the environment lock, the
// chunk allocator, the WAL and the adapter's own writer table are
// shared across every table, so commands of one environment never
// overlap. (The writer map below is mutated by Execute on the
// assumption that same-namespace commands are serialized — which this
// footprint is what guarantees under the pipelined executor.)
//
// The one exception is OpOffloadGet: its in-device path touches only
// the target block's group/PU media timelines and that group's lookup
// lane — no dispatch thread, no WAL, no writer table — so it is scoped
// to the block's device group and two offloaded lookups on disjoint
// groups may overlap. OpOffloadCompact writes tables (allocator, WAL)
// and stays exclusive.
func (n *LSMNamespace) Footprint(cmd *Command) Footprint {
	if cmd.Op == OpOffloadGet {
		if g, ok := n.env.BlockGroup(lsm.TableID(cmd.Handle), int(cmd.LPN)); ok {
			return GroupFootprint(n.env.Controller(), g)
		}
	}
	return ExclusiveFootprint(n.env.Controller())
}

func (n *LSMNamespace) writer(h uint64) (lsm.TableWriter, error) {
	w, ok := n.writers[h]
	if !ok {
		return nil, fmt.Errorf("%w: writer %d", ErrBadHandle, h)
	}
	return w, nil
}

// Execute implements Namespace.
func (n *LSMNamespace) Execute(now vclock.Time, cmd *Command) Result {
	switch cmd.Op {
	case OpTableCreate:
		w, err := n.env.CreateTable(now)
		if err != nil {
			return Result{End: now, Err: err}
		}
		n.nextWriter++
		n.writers[n.nextWriter] = w
		return Result{End: now, Handle: n.nextWriter}
	case OpTableAppend:
		w, err := n.writer(cmd.Handle)
		if err != nil {
			return Result{End: now, Err: err}
		}
		end, err := w.Append(now, cmd.Data)
		return Result{End: end, Err: err}
	case OpTableCommit:
		w, err := n.writer(cmd.Handle)
		if err != nil {
			return Result{End: now, Err: err}
		}
		h, end, err := w.Commit(now)
		if err != nil {
			return Result{End: end, Err: err}
		}
		delete(n.writers, cmd.Handle)
		return Result{End: end, Handle: uint64(h.ID), Blocks: h.Blocks}
	case OpTableAbort:
		w, err := n.writer(cmd.Handle)
		if err != nil {
			return Result{End: now, Err: err}
		}
		end, err := w.Abort(now)
		delete(n.writers, cmd.Handle)
		return Result{End: end, Err: err}
	case OpTableRead:
		h := lsm.TableHandle{ID: lsm.TableID(cmd.Handle), Blocks: int(cmd.Length)}
		end, err := n.env.ReadBlock(now, h, int(cmd.LPN), cmd.Dst)
		return Result{End: end, Err: err}
	case OpTableDelete:
		h := lsm.TableHandle{ID: lsm.TableID(cmd.Handle), Blocks: int(cmd.Length)}
		end, err := n.env.DeleteTable(now, h)
		return Result{End: end, Err: err}
	case OpOffloadGet:
		h := lsm.TableHandle{ID: lsm.TableID(cmd.Handle), Blocks: int(cmd.Length)}
		res, end, err := n.env.OffloadGet(now, h, int(cmd.LPN), cmd.Data)
		return Result{End: end, Err: err, Data: res}
	case OpOffloadCompact:
		req, err := offload.DecodeCompactRequest(cmd.Data)
		if err != nil {
			return Result{End: now, Err: err}
		}
		res, end, err := n.env.OffloadCompact(now, req)
		return Result{End: end, Err: err, Data: res}
	default:
		return Result{End: now, Err: fmt.Errorf("%w: %v on %s", ErrUnsupported, cmd.Op, n.Name())}
	}
}
