package hostif

import (
	"sync"

	"repro/internal/vclock"
)

// Notification is one interrupt-style completion signal: the queue
// pair has Coalesced completions ready to Reap, the last of which
// finished at virtual instant At. The callback runs outside every host
// lock, so it may Reap, Submit and Ring freely.
type Notification struct {
	// Queue is the queue pair whose completions are ready.
	Queue *QueuePair
	// At is the completion instant of the last coalesced completion —
	// the virtual time the interrupt fires.
	At vclock.Time
	// Coalesced is the number of completions this signal covers.
	Coalesced int
}

// SetNotify registers interrupt-style completion notification on the
// queue pair, replacing spin-polling Reap. Modeled on NVMe interrupt
// coalescing: the host fires fn once per threshold completions (the
// aggregation threshold), and flushes a partial batch at the end of
// every execution drain (the analog of the coalescing timer — no
// completion waits for traffic that may never come). threshold < 1
// means 1: fire on every completion. A nil fn disables notification.
//
// Delivery is deterministic: signals fire in completion order (drain-
// end flushes in queue-ID order), each carrying the virtual instant of
// its last completion, after the drain releases the execution lock.
// The callback runs on whichever goroutine drove the drain — with
// concurrent drivers it must be goroutine-safe. Notification does not
// consume completions: the callback (or anyone else) still Reaps, and
// virtual timing is identical to polling, which
// TestNotifyMatchesPollTiming pins.
func (qp *QueuePair) SetNotify(threshold int, fn func(Notification)) {
	if threshold < 1 {
		threshold = 1
	}
	qp.mu.Lock()
	defer qp.mu.Unlock()
	if (fn != nil) == (qp.notifyFn != nil) {
		// Same registration state: just swap the handler in place.
	} else if fn != nil {
		qp.host.notifiers.Add(1)
	} else {
		qp.host.notifiers.Add(-1)
	}
	qp.notifyFn = fn
	qp.notifyEvery = threshold
	qp.notifyPend = 0
}

// noteCompletion records one completion toward the queue pair's
// coalescing threshold, appending a due notification to the pair's
// domain's pending list. Caller holds the domain's execMu and qp.mu.
func (qp *QueuePair) noteCompletion(done vclock.Time) {
	if qp.notifyFn == nil {
		return
	}
	qp.notifyPend++
	qp.notifyLast = done
	if qp.notifyPend >= qp.notifyEvery {
		qp.dom.notes = append(qp.dom.notes, Notification{
			Queue:     qp,
			At:        done,
			Coalesced: qp.notifyPend,
		})
		qp.notifyPend = 0
	}
}

// flushNotifies appends a signal for every queue pair of the domain
// holding a partial coalescing batch — called once at the end of a
// drain, in queue-ID order. Caller holds the domain's execMu.
func (d *domain) flushNotifies() {
	if d.h.notifiers.Load() == 0 {
		return
	}
	for _, qp := range d.queuePairs() {
		qp.mu.Lock()
		if qp.notifyFn != nil && qp.notifyPend > 0 {
			d.notes = append(d.notes, Notification{
				Queue:     qp,
				At:        qp.notifyLast,
				Coalesced: qp.notifyPend,
			})
			qp.notifyPend = 0
		}
		qp.mu.Unlock()
	}
}

// notePool recycles boxed pending-notification buffers. The box (a
// *[]Notification) travels intact from takeNotes through deliver and
// back into the pool, so notification-mode drivers allocate nothing at
// steady state and poll-mode drivers (which always take the nil fast
// path) never touch the pool at all.
var notePool = sync.Pool{New: func() any { return new([]Notification) }}

// takeNotes detaches the domain's pending notification list as a boxed
// slice, leaving a recycled buffer in its place. Caller holds the
// domain's execMu; the result is delivered after the lock is released.
func (d *domain) takeNotes() *[]Notification {
	if len(d.notes) == 0 {
		return nil
	}
	box := d.noteBox
	*box = d.notes
	fresh := notePool.Get().(*[]Notification)
	d.notes = (*fresh)[:0]
	d.noteBox = fresh
	return box
}

// deliver invokes the callbacks for a detached notification list, in
// order, holding no locks, then recycles the box.
func (h *Host) deliver(box *[]Notification) {
	if box == nil {
		return
	}
	notes := *box
	for i := range notes {
		n := notes[i]
		n.Queue.mu.Lock()
		fn := n.Queue.notifyFn
		n.Queue.mu.Unlock()
		if fn != nil {
			fn(n)
		}
	}
	*box = notes[:0]
	notePool.Put(box)
}
