package hostif

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/lightlsm"
	"repro/internal/lsm"
	"repro/internal/nand"
	"repro/internal/ocssd"
	"repro/internal/offload"
	"repro/internal/ox"
	"repro/internal/vclock"
)

// offloadController builds the standard small test device, optionally
// with a fault injector wired in.
func offloadController(t testing.TB, inj *fault.Injector) *ox.Controller {
	t.Helper()
	chip := nand.Geometry{
		Planes: 2, BlocksPerPlane: 16, PagesPerBlock: 12,
		SectorsPerPage: 4, SectorSize: 4096, OOBPerPage: 64, Cell: nand.TLC,
	}
	geo := ocssd.Finish(ocssd.Geometry{
		Groups: 2, PUsPerGroup: 2, ChunksPerPU: 16, Chip: chip,
		ChannelMBps: 800, CacheMBps: 3200, CacheMB: 8, MaxOpenPerPU: 64,
	})
	dev, err := ocssd.New(geo, ocssd.Options{Seed: 1, PowerLossProtected: true, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := ox.NewController(ox.DefaultConfig(), dev)
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

// sstBlock builds one raw SSTable block of the environment's block size
// holding a single key/value entry (the on-media entry format that
// lsm.SearchBlock scans: u16 key length, u32 flags+value length, u64
// sequence, key, value; a zero key length terminates the block).
func sstBlock(size int, key, value string) []byte {
	b := make([]byte, size)
	binary.LittleEndian.PutUint16(b[0:], uint16(len(key)))
	binary.LittleEndian.PutUint32(b[2:], uint32(len(value)))
	binary.LittleEndian.PutUint64(b[6:], 1)
	copy(b[14:], key)
	copy(b[14+len(key):], value)
	return b
}

// commitTable writes the given blocks directly into the environment and
// commits them as one table.
func commitTable(t *testing.T, env *lightlsm.Env, now vclock.Time, blocks ...[]byte) (lsm.TableHandle, vclock.Time) {
	t.Helper()
	w, err := env.CreateTable(now)
	if err != nil {
		t.Fatal(err)
	}
	end := now
	for _, b := range blocks {
		if end, err = w.Append(end, b); err != nil {
			t.Fatal(err)
		}
	}
	h, end, err := w.Commit(end)
	if err != nil {
		t.Fatal(err)
	}
	return h, end
}

// TestOffloadGetFaultClassification pins the satellite rule: an
// offloaded lookup that hits an injected NAND read fault must surface
// the same typed media-read status as a host-side block read — not an
// opaque internal error — and the underlying injector error must stay
// unwrappable from the completion.
func TestOffloadGetFaultClassification(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 3, ReadErrorRate: 1, GrowBadAfter: 1 << 30})
	ctrl := offloadController(t, inj)
	env, err := lightlsm.New(ctrl, lightlsm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	host := NewHost(ctrl, HostConfig{})
	nsid := attachNS(t, host, NewLSMNamespace(env))
	qp := openQP(t, host, 2)

	// Writes are unaffected by ReadErrorRate, so the fill succeeds.
	h, now := commitTable(t, env, 0, sstBlock(env.BlockSize(), "k", "v"))

	cmd := qp.AcquireCommand()
	*cmd = Command{
		Op: OpOffloadGet, NSID: nsid,
		Handle: uint64(h.ID), Length: int64(h.Blocks), LPN: 0,
		Data: []byte("k"),
	}
	if err := qp.Push(now, cmd); err != nil {
		t.Fatal(err)
	}
	comp := qp.MustReap()
	if comp.Err == nil {
		t.Fatal("offload get unexpectedly succeeded under ReadErrorRate=1")
	}
	if comp.Status != StatusMediaRead {
		t.Fatalf("offload get status = %v (err %v), want media-read", comp.Status, comp.Err)
	}
	if !errors.Is(comp.Err, fault.ErrReadError) {
		t.Fatalf("completion error %v does not unwrap to fault.ErrReadError", comp.Err)
	}
	fl, err := host.Admin().FaultLog(comp.Done)
	if err != nil {
		t.Fatal(err)
	}
	if fl.Injected.ReadErrors == 0 {
		t.Fatalf("fault log reports no read errors: %+v", fl)
	}
}

// offloadGetWorkload builds a two-table vertical-placement rig (one
// table per device group), then pushes interleaved OpOffloadGet rounds
// from two queue pairs. It returns the per-queue completion streams and
// the host, so callers can check overlap stats or compare executors.
func offloadGetWorkload(t *testing.T, cfg HostConfig) (*Host, [2][]Completion) {
	t.Helper()
	ctrl := offloadController(t, nil)
	env, err := lightlsm.New(ctrl, lightlsm.Config{Placement: lightlsm.Vertical, TableChunks: 2})
	if err != nil {
		t.Fatal(err)
	}
	host := NewHost(ctrl, cfg)
	nsid := attachNS(t, host, NewLSMNamespace(env))

	// Vertical placement round-robins tables across groups, so the two
	// tables land on disjoint chip timelines and offload lanes.
	var handles [2]lsm.TableHandle
	now := vclock.Time(0)
	for i := range handles {
		block := sstBlock(env.BlockSize(), fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i))
		handles[i], now = commitTable(t, env, now, block)
	}
	g0, ok0 := env.BlockGroup(handles[0].ID, 0)
	g1, ok1 := env.BlockGroup(handles[1].ID, 0)
	if !ok0 || !ok1 || g0 == g1 {
		t.Fatalf("tables share group (%d ok=%v, %d ok=%v); vertical placement should separate them", g0, ok0, g1, ok1)
	}

	qps := [2]*QueuePair{openQP(t, host, 2), openQP(t, host, 2)}
	var out [2][]Completion
	for round := 0; round < 8; round++ {
		at := now.Add(vclock.Duration(round) * vclock.Millisecond)
		for i, qp := range qps {
			cmd := qp.AcquireCommand()
			*cmd = Command{
				Op: OpOffloadGet, NSID: nsid,
				Handle: uint64(handles[i].ID), Length: int64(handles[i].Blocks), LPN: 0,
				Data: []byte(fmt.Sprintf("key-%d", i)),
			}
			if err := qp.Push(at, cmd); err != nil {
				t.Fatal(err)
			}
		}
		host.Drain()
		for i, qp := range qps {
			comp, ok := qp.Reap()
			if !ok {
				t.Fatal("missing completion")
			}
			if comp.Err != nil {
				t.Fatal(comp.Err)
			}
			value, del, found, err := offload.DecodeGetResult(comp.Data)
			if err != nil {
				t.Fatal(err)
			}
			want := fmt.Sprintf("value-%d", i)
			if !found || del || string(value) != want {
				t.Fatalf("offload get = (%q, del=%v, found=%v), want %q", value, del, found, want)
			}
			out[i] = append(out[i], comp)
		}
	}
	return host, out
}

// TestOffloadGetOverlapsDisjointGroups proves the group-scoped
// footprint of OpOffloadGet is real: offloaded lookups on tables in
// different device groups overlap under the pipelined executor, and the
// completion streams — order, virtual times, payloads — stay
// bit-identical to the serial executor.
func TestOffloadGetOverlapsDisjointGroups(t *testing.T) {
	pipe, pipeOut := offloadGetWorkload(t, HostConfig{Executor: ExecutorPipelined, Workers: 4})
	log, err := pipe.Admin().ExecutorStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if log.Dispatched == 0 || log.Overlapped == 0 {
		t.Fatalf("no realized overlap across groups: %+v", log)
	}
	if log.MaxInflight < 2 {
		t.Fatalf("MaxInflight %d, want ≥ 2: %+v", log.MaxInflight, log)
	}

	_, serialOut := offloadGetWorkload(t, HostConfig{})
	for q := range serialOut {
		if len(serialOut[q]) != len(pipeOut[q]) {
			t.Fatalf("queue %d: %d pipelined completions vs %d serial", q, len(pipeOut[q]), len(serialOut[q]))
		}
		for i := range serialOut[q] {
			s, p := serialOut[q][i], pipeOut[q][i]
			if keyOf(s) != keyOf(p) || !bytes.Equal(s.Data, p.Data) {
				t.Fatalf("queue %d completion %d diverged:\nserial    %+v\npipelined %+v", q, i, s, p)
			}
		}
	}
}

// TestOffloadedDBMatchesHostDB runs the same mini-RocksDB workload
// twice over the host interface — once all host-side, once with point
// lookups and compactions offloaded into the device — and requires
// identical query results. Offloading moves work and bytes, never
// answers.
func TestOffloadedDBMatchesHostDB(t *testing.T) {
	const puts, keySpace, valueSize = 300, 100, 2048

	type result struct {
		values map[string]string
		stats  offload.Stats
	}
	run := func(offloaded bool) result {
		ctrl := offloadController(t, nil)
		env, err := lightlsm.New(ctrl, lightlsm.Config{TableChunks: 1})
		if err != nil {
			t.Fatal(err)
		}
		host := NewHost(ctrl, HostConfig{})
		client, err := AttachLSM(host, env)
		if err != nil {
			t.Fatal(err)
		}
		opts := lsm.Options{
			Env:           client,
			MemtableBytes: 32 << 10,
			Seed:          7,
		}
		if offloaded {
			opts.Lookup = client.OffloadGet
			opts.Compactor = client.OffloadCompact
		}
		db, err := lsm.Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		value := make([]byte, valueSize)
		now := vclock.Time(0)
		for i := 0; i < puts; i++ {
			rng.Read(value)
			key := fmt.Sprintf("key-%04d", rng.Intn(keySpace))
			if now, err = db.Put(now, []byte(key), value); err != nil {
				t.Fatal(err)
			}
		}
		if now, err = db.Flush(now); err != nil {
			t.Fatal(err)
		}
		now = db.WaitIdle(now)

		res := result{values: make(map[string]string)}
		for i := 0; i < keySpace; i++ {
			key := fmt.Sprintf("key-%04d", i)
			v, end, err := db.Get(now, []byte(key))
			if err != nil && !errors.Is(err, lsm.ErrNotFound) {
				t.Fatal(err)
			}
			now = end
			if err == nil {
				res.values[key] = string(v)
			}
		}
		if res.stats, err = host.Admin().OffloadStats(now, client.NSID()); err != nil {
			t.Fatal(err)
		}
		return res
	}

	hostSide := run(false)
	devSide := run(true)
	if len(hostSide.values) != len(devSide.values) {
		t.Fatalf("host found %d keys, device %d", len(hostSide.values), len(devSide.values))
	}
	for k, v := range hostSide.values {
		if devSide.values[k] != v {
			t.Fatalf("key %s: offloaded value differs from host value", k)
		}
	}
	if hostSide.stats.Gets != 0 || hostSide.stats.Compactions != 0 {
		t.Fatalf("host-side run used the offload engine: %+v", hostSide.stats)
	}
	if devSide.stats.Gets == 0 || devSide.stats.Compactions == 0 {
		t.Fatalf("offloaded run did not exercise the engine: %+v", devSide.stats)
	}
	if devSide.stats.BytesSaved() <= 0 {
		t.Fatalf("offloading saved no host-link bytes: %+v", devSide.stats)
	}
}
