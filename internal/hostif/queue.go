package hostif

import (
	"sync"
	"sync/atomic"

	"repro/internal/vclock"
)

// sqe is one submission-queue entry.
type sqe struct {
	cmd   *Command
	slot  uint64
	ready vclock.Time // doorbell instant (valid once rung)
}

// Arena command states (tracked per queue pair, keyed by pointer, so
// drivers remain free to overwrite a whole Command value).
const (
	cmdFree     uint8 = iota // on the free list, must be re-acquired
	cmdAcquired              // owned by the driver, submittable
	cmdInflight              // submitted, completion not yet reaped
)

// QueuePair is one submission/completion queue pair. A host actor owns
// a queue pair and drives it in three steps: Submit stages commands in
// submission-queue slots, Ring makes every staged entry visible to the
// controller at one doorbell instant (batched submission), and Reap
// consumes completion-queue entries. Push is the depth-1 convenience
// (Submit + Ring). SetNotify replaces Reap-polling with interrupt-
// style completion notification.
//
// I/O queue pairs are created by the admin command AdminCreateIOQP
// (AdminClient.CreateIOQueuePair) with a depth and a WRR arbitration
// Class, and retired by AdminDeleteIOQP once idle. Queue 0 is the
// admin queue pair, which carries only admin opcodes and is served
// with strict priority.
//
// Depth bounds the commands in flight: staged, visible, executing and
// completed-but-unreaped entries all hold their slot until reaped,
// exactly like an NVMe queue pair whose CQ entries must be consumed
// before their SQ slots recycle.
//
// All queue-pair state sits behind the pair's own mutex: Submit, Ring
// and slot accounting on one queue pair never contend with other queue
// pairs of the same Host. A single queue pair is driven by one actor at
// a time; different queue pairs may be driven concurrently.
type QueuePair struct {
	host  *Host
	dom   *domain // arbitration domain the pair is bound to
	id    int
	depth int
	class Class
	admin bool // queue 0: admin opcodes only, strict priority

	// headReady mirrors the doorbell timestamp of the oldest visible
	// entry (noHead when none) so the host's arbitration scan reads one
	// atomic per queue instead of taking every queue's mutex.
	headReady atomic.Int64

	mu        sync.Mutex
	closed    bool             // deleted via AdminDeleteIOQP
	staged    ring[sqe]        // submitted, doorbell not yet rung
	rung      ring[sqe]        // visible to the controller, FIFO
	cq        ring[Completion] // completions awaiting Reap
	executing int              // popped from rung, completion not yet queued
	nextSlot  uint64

	// Command arena: recycled at Reap, with misuse detection.
	free  []*Command
	state map[*Command]uint8

	// Interrupt coalescing (SetNotify): fire notifyFn per notifyEvery
	// completions; notifyPend/notifyLast track the open batch.
	notifyFn    func(Notification)
	notifyEvery int
	notifyPend  int
	notifyLast  vclock.Time
}

// ID reports the queue pair's identifier (arbitration tie-break key;
// 0 is the admin queue).
func (qp *QueuePair) ID() int { return qp.id }

// Depth reports the configured queue depth.
func (qp *QueuePair) Depth() int { return qp.depth }

// Class reports the queue pair's WRR arbitration class.
func (qp *QueuePair) Class() Class { return qp.class }

// inflightLocked counts slots held: staged + visible + executing +
// unreaped completions. Caller holds qp.mu.
func (qp *QueuePair) inflightLocked() int {
	return qp.staged.len() + qp.rung.len() + qp.executing + qp.cq.len()
}

// AcquireCommand returns a Command from the queue pair's arena. The
// command is owned by the caller until submitted; its slot is recycled
// automatically when its completion is reaped, so a closed submit/reap
// loop reuses the same storage forever. Fields are zeroed.
func (qp *QueuePair) AcquireCommand() *Command {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	if n := len(qp.free); n > 0 {
		cmd := qp.free[n-1]
		qp.free = qp.free[:n-1]
		qp.state[cmd] = cmdAcquired
		return cmd
	}
	if qp.state == nil {
		qp.state = make(map[*Command]uint8)
	}
	cmd := new(Command)
	qp.state[cmd] = cmdAcquired
	return cmd
}

// recycleLocked returns an arena command to the free list after its
// completion was reaped. Driver-owned commands pass through untouched.
// Caller holds qp.mu.
func (qp *QueuePair) recycleLocked(cmd *Command) {
	if cmd == nil {
		return
	}
	if _, ok := qp.state[cmd]; !ok {
		return // not arena-owned
	}
	*cmd = Command{} // drop payload references
	qp.state[cmd] = cmdFree
	qp.free = append(qp.free, cmd)
}

// ReleaseCommand returns an acquired-but-unsubmitted arena command to
// the free list: the discard path for a command whose Submit was
// rejected (queue full, bad namespace, plane mismatch), so rejection
// under backpressure does not leak arena slots. In-flight and already-
// recycled commands are left untouched — their misuse is detected at
// the next Submit.
func (qp *QueuePair) ReleaseCommand(cmd *Command) {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	if st, ok := qp.state[cmd]; ok && st == cmdAcquired {
		qp.recycleLocked(cmd)
	}
}

// Submit stages cmd in the next free submission slot without ringing
// the doorbell. It returns the slot, or ErrQueueFull when every slot is
// held by an in-flight or unreaped command. Plane mismatches are
// rejected (ErrAdminOnly / ErrIOOnAdmin): admin opcodes belong on the
// admin queue, data opcodes on I/O queues; a deleted queue returns
// ErrQueueClosed. Arena commands are checked for misuse: resubmitting
// one whose completion has not been reaped returns ErrCommandInFlight,
// and submitting one already recycled at Reap returns
// ErrCommandRecycled.
func (qp *QueuePair) Submit(cmd *Command) (uint64, error) {
	if cmd.Op.IsAdmin() != qp.admin {
		if qp.admin {
			return 0, ErrIOOnAdmin
		}
		return 0, ErrAdminOnly
	}
	if !cmd.Op.IsAdmin() {
		if err := checkNSID(qp.host.namespaces(), cmd.NSID); err != nil {
			return 0, err
		}
	}
	if qp.host.cfg.globalLock {
		qp.dom.execMu.Lock()
		defer qp.dom.execMu.Unlock()
	}
	qp.mu.Lock()
	defer qp.mu.Unlock()
	if qp.closed {
		return 0, ErrQueueClosed
	}
	st, arena := qp.state[cmd]
	if arena {
		switch st {
		case cmdInflight:
			return 0, ErrCommandInFlight
		case cmdFree:
			return 0, ErrCommandRecycled
		}
	}
	if qp.inflightLocked() >= qp.depth {
		return 0, ErrQueueFull
	}
	slot := qp.nextSlot
	qp.nextSlot++
	qp.staged.push(sqe{cmd: cmd, slot: slot})
	if arena {
		qp.state[cmd] = cmdInflight
	}
	return slot, nil
}

// Ring rings the doorbell at virtual instant now: every staged entry
// becomes visible to the controller with submission timestamp now, in
// slot order. It returns the number of entries made visible.
func (qp *QueuePair) Ring(now vclock.Time) int {
	if qp.host.cfg.globalLock {
		qp.dom.execMu.Lock()
		defer qp.dom.execMu.Unlock()
	}
	qp.mu.Lock()
	defer qp.mu.Unlock()
	n := qp.staged.len()
	if n == 0 {
		return 0
	}
	wasEmpty := qp.rung.len() == 0
	for i := 0; i < n; i++ {
		e := qp.staged.pop()
		e.ready = now
		qp.rung.push(e)
	}
	if wasEmpty {
		qp.headReady.Store(int64(now))
	}
	return n
}

// takeHead pops the oldest visible entry and refreshes the atomic
// doorbell timestamp. Caller holds the domain's execMu (only the
// arbitration loop consumes visible entries).
func (qp *QueuePair) takeHead() (sqe, bool) {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	if qp.rung.len() == 0 {
		return sqe{}, false
	}
	e := qp.rung.pop()
	if qp.rung.len() > 0 {
		qp.headReady.Store(int64(qp.rung.at(0).ready))
	} else {
		qp.headReady.Store(noHead)
	}
	qp.executing++
	return e, true
}

// complete queues an executed command's completion and advances the
// notification coalescing batch. Caller holds the domain's execMu.
func (qp *QueuePair) complete(c Completion) {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	qp.cq.push(c)
	qp.executing--
	qp.noteCompletion(c.Done)
}

// Push submits cmd and rings the doorbell at now: the single-command
// submission every blocking driver uses.
func (qp *QueuePair) Push(now vclock.Time, cmd *Command) error {
	if _, err := qp.Submit(cmd); err != nil {
		return err
	}
	qp.Ring(now)
	return nil
}

// Reap pops the oldest completion-queue entry, first letting the
// queue pair's arbitration domain execute every visible command. It
// reports false when the completion queue is empty. Reaping recycles
// the completed command's arena slot. Only the pair's own domain
// drains: queue pairs in other domains are untouched.
func (qp *QueuePair) Reap() (Completion, bool) {
	d := qp.dom
	d.execMu.Lock()
	d.drainLocked()
	notes := d.takeNotes()
	qp.mu.Lock()
	var c Completion
	ok := qp.cq.len() > 0
	if ok {
		c = qp.cq.pop()
		qp.recycleLocked(c.cmd)
	}
	qp.mu.Unlock()
	d.execMu.Unlock()
	qp.host.deliver(notes)
	return c, ok
}

// MustReap is Reap for drivers whose protocol guarantees a completion
// is pending; it panics on an empty completion queue (driver bug).
func (qp *QueuePair) MustReap() Completion {
	c, ok := qp.Reap()
	if !ok {
		panic("hostif: MustReap on empty completion queue")
	}
	return c
}

// Outstanding reports slots currently held (in flight plus unreaped).
func (qp *QueuePair) Outstanding() int {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	return qp.inflightLocked()
}
