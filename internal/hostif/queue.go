package hostif

import (
	"repro/internal/vclock"
)

// sqe is one submission-queue entry.
type sqe struct {
	cmd   *Command
	slot  uint64
	ready vclock.Time // doorbell instant (valid once rung)
}

// QueuePair is one submission/completion queue pair. A host actor owns
// a queue pair and drives it in three steps: Submit stages commands in
// submission-queue slots, Ring makes every staged entry visible to the
// controller at one doorbell instant (batched submission), and Reap
// consumes completion-queue entries. Push is the depth-1 convenience
// (Submit + Ring).
//
// Depth bounds the commands in flight: staged, visible and completed-
// but-unreaped entries all hold their slot until reaped, exactly like
// an NVMe queue pair whose CQ entries must be consumed before their SQ
// slots recycle.
//
// Methods are safe for concurrent use with other queue pairs of the
// same Host; a single queue pair is driven by one actor at a time.
type QueuePair struct {
	host     *Host
	id       int
	depth    int
	staged   []sqe // submitted, doorbell not yet rung
	rung     []sqe // visible to the controller, FIFO from rungHead
	rungHead int
	cq       []Completion // completions, FIFO from cqHead
	cqHead   int
	nextSlot uint64
}

// sqHead returns the next visible entry, or nil. Caller holds host.mu.
func (qp *QueuePair) sqHead() *sqe {
	if qp.rungHead >= len(qp.rung) {
		return nil
	}
	return &qp.rung[qp.rungHead]
}

// popSQ consumes the head visible entry, recycling ring capacity when
// the queue empties. Caller holds host.mu.
func (qp *QueuePair) popSQ() sqe {
	e := qp.rung[qp.rungHead]
	qp.rung[qp.rungHead] = sqe{}
	qp.rungHead++
	if qp.rungHead == len(qp.rung) {
		qp.rung = qp.rung[:0]
		qp.rungHead = 0
	}
	return e
}

// ID reports the queue pair's identifier (arbitration tie-break key).
func (qp *QueuePair) ID() int { return qp.id }

// Depth reports the configured queue depth.
func (qp *QueuePair) Depth() int { return qp.depth }

// inflight counts slots held: staged + visible + unreaped completions.
// Caller holds host.mu.
func (qp *QueuePair) inflight() int {
	return len(qp.staged) + (len(qp.rung) - qp.rungHead) + (len(qp.cq) - qp.cqHead)
}

// Submit stages cmd in the next free submission slot without ringing
// the doorbell. It returns the slot, or ErrQueueFull when every slot is
// held by an in-flight or unreaped command.
func (qp *QueuePair) Submit(cmd *Command) (uint64, error) {
	h := qp.host
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.checkNSID(cmd.NSID); err != nil {
		return 0, err
	}
	if qp.inflight() >= qp.depth {
		return 0, ErrQueueFull
	}
	slot := qp.nextSlot
	qp.nextSlot++
	qp.staged = append(qp.staged, sqe{cmd: cmd, slot: slot})
	return slot, nil
}

// Ring rings the doorbell at virtual instant now: every staged entry
// becomes visible to the controller with submission timestamp now, in
// slot order. It returns the number of entries made visible.
func (qp *QueuePair) Ring(now vclock.Time) int {
	h := qp.host
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(qp.staged)
	for i := range qp.staged {
		qp.staged[i].ready = now
		qp.rung = append(qp.rung, qp.staged[i])
	}
	qp.staged = qp.staged[:0]
	return n
}

// Push submits cmd and rings the doorbell at now: the single-command
// submission every blocking driver uses.
func (qp *QueuePair) Push(now vclock.Time, cmd *Command) error {
	if _, err := qp.Submit(cmd); err != nil {
		return err
	}
	qp.Ring(now)
	return nil
}

// Reap pops the oldest completion-queue entry, first letting the host
// execute every visible command. It reports false when the completion
// queue is empty.
func (qp *QueuePair) Reap() (Completion, bool) {
	h := qp.host
	h.mu.Lock()
	defer h.mu.Unlock()
	h.drainLocked()
	if qp.cqHead >= len(qp.cq) {
		return Completion{}, false
	}
	c := qp.cq[qp.cqHead]
	qp.cq[qp.cqHead] = Completion{}
	qp.cqHead++
	if qp.cqHead == len(qp.cq) {
		qp.cq = qp.cq[:0]
		qp.cqHead = 0
	}
	return c, true
}

// MustReap is Reap for drivers whose protocol guarantees a completion
// is pending; it panics on an empty completion queue (driver bug).
func (qp *QueuePair) MustReap() Completion {
	c, ok := qp.Reap()
	if !ok {
		panic("hostif: MustReap on empty completion queue")
	}
	return c
}

// Outstanding reports slots currently held (in flight plus unreaped).
func (qp *QueuePair) Outstanding() int {
	qp.host.mu.Lock()
	defer qp.host.mu.Unlock()
	return qp.inflight()
}
