package hostif

import (
	"errors"
	"testing"

	"repro/internal/vclock"
)

// TestRecreateIOQueuePair pins the session-resumption queue-pair
// lifecycle: a deleted queue pair can be recreated under its original
// ID, the recreated pair works end to end, and the never-reused ID
// discipline still rejects IDs that were never issued or are live.
func TestRecreateIOQueuePair(t *testing.T) {
	ctrl := testController(t)
	ns := newFakeNS(10 * vclock.Microsecond)
	h := NewHost(ctrl, HostConfig{})
	if _, err := h.Admin().AttachNamespace(0, ns); err != nil {
		t.Fatal(err)
	}
	admin := h.Admin()

	qp, err := admin.CreateIOQueuePair(0, 4, ClassHigh)
	if err != nil {
		t.Fatal(err)
	}
	qid := qp.ID()

	// Live ID cannot be recreated.
	if _, err := admin.RecreateIOQueuePair(0, qid, 4, ClassHigh); !errors.Is(err, ErrQueueBusy) {
		t.Fatalf("recreate of live queue: %v, want ErrQueueBusy", err)
	}
	// Never-issued IDs are rejected.
	if _, err := admin.RecreateIOQueuePair(0, qid+100, 4, ClassHigh); !errors.Is(err, ErrBadQueueID) {
		t.Fatalf("recreate of unissued queue: %v, want ErrBadQueueID", err)
	}
	// The admin queue (ID 0) is never recreatable.
	if _, err := admin.RecreateIOQueuePair(0, 0, 4, ClassHigh); !errors.Is(err, ErrBadQueueID) {
		t.Fatalf("recreate of queue 0: %v, want ErrBadQueueID", err)
	}

	if err := admin.DeleteIOQueuePair(0, qp); err != nil {
		t.Fatal(err)
	}
	re, err := admin.RecreateIOQueuePair(0, qid, 4, ClassLow)
	if err != nil {
		t.Fatal(err)
	}
	if re.ID() != qid {
		t.Fatalf("recreated queue ID %d, want %d", re.ID(), qid)
	}
	if re.Class() != ClassLow {
		t.Fatalf("recreated queue class %v, want ClassLow", re.Class())
	}
	// Fresh creates continue the monotonic ID sequence past the
	// recreated ID.
	fresh, err := admin.CreateIOQueuePair(0, 1, ClassMedium)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID() <= qid {
		t.Fatalf("fresh queue ID %d not past recreated %d", fresh.ID(), qid)
	}

	// The recreated pair executes commands like any other.
	if err := re.Push(0, &Command{Op: OpWrite, LPN: 7}); err != nil {
		t.Fatal(err)
	}
	h.Drain()
	comp, ok := re.Reap()
	if !ok || comp.Err != nil {
		t.Fatalf("reap on recreated queue: ok=%v err=%v", ok, comp.Err)
	}
	if comp.QueueID != qid {
		t.Fatalf("completion queue ID %d, want %d", comp.QueueID, qid)
	}
	// Double-recreate while live fails again.
	if _, err := admin.RecreateIOQueuePair(0, qid, 4, ClassLow); !errors.Is(err, ErrQueueBusy) {
		t.Fatalf("recreate of recreated live queue: %v, want ErrQueueBusy", err)
	}
}
