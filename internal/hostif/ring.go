package hostif

// ring is a growable circular FIFO. Slots are recycled in place, so at
// steady state a queue pair's submission and completion queues reuse
// the same backing storage forever — pushes allocate only while the
// ring is still growing toward its high-water mark, exactly like a
// real NVMe ring whose size is fixed at queue creation.
type ring[T any] struct {
	buf  []T
	head int // index of the oldest element
	n    int // live elements
}

func (r *ring[T]) len() int { return r.n }

// at returns the i-th element from the head (0 = oldest).
func (r *ring[T]) at(i int) *T {
	return &r.buf[(r.head+i)%len(r.buf)]
}

// push appends v at the tail, growing the ring if full.
func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

// pop removes and returns the head element, zeroing its slot so the
// ring drops references into reclaimed payloads.
func (r *ring[T]) pop() T {
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v
}

// removeAt removes and returns the i-th element from the head,
// preserving the order of the rest (completion queues pop by global
// completion order, not only FIFO).
func (r *ring[T]) removeAt(i int) T {
	v := *r.at(i)
	for j := i; j < r.n-1; j++ {
		*r.at(j) = *r.at(j + 1)
	}
	var zero T
	*r.at(r.n - 1) = zero
	r.n--
	return v
}

// grow doubles capacity, compacting the live window to the front.
func (r *ring[T]) grow() {
	c := 2 * len(r.buf)
	if c < 8 {
		c = 8
	}
	buf := make([]T, c)
	for i := 0; i < r.n; i++ {
		buf[i] = *r.at(i)
	}
	r.buf = buf
	r.head = 0
}
