package hostif

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/nand"
	"repro/internal/ocssd"
	"repro/internal/ox"
	"repro/internal/oxblock"
)

func TestStatusOfTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		want Status
	}{
		{nil, StatusOK},
		{fault.ErrPowerCut, StatusPowerLoss},
		{fmt.Errorf("wrapped: %w", fault.ErrReadError), StatusMediaRead},
		{fault.ErrProgramFail, StatusMediaWrite},
		{fault.ErrEraseFail, StatusMediaWrite},
		{ocssd.ErrOffline, StatusOffline},
		{ErrBadNSID, StatusInvalid},
		{ocssd.ErrUnwritten, StatusInvalid},
		{errors.New("mystery"), StatusInternal},
	}
	for _, c := range cases {
		if got := StatusOf(c.err); got != c.want {
			t.Errorf("StatusOf(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestCompletionCarriesMediaStatus injects NAND read errors under a
// block namespace and checks the typed status surfaces in completions
// and that the fault log page reports the injections.
func TestCompletionCarriesMediaStatus(t *testing.T) {
	chip := nand.Geometry{
		Planes: 2, BlocksPerPlane: 16, PagesPerBlock: 12,
		SectorsPerPage: 4, SectorSize: 4096, Cell: nand.TLC,
	}
	geo := ocssd.Finish(ocssd.Geometry{
		Groups: 2, PUsPerGroup: 2, ChunksPerPU: 16, Chip: chip,
		ChannelMBps: 800, CacheMBps: 3200, CacheMB: 8, MaxOpenPerPU: 64,
	})
	inj := fault.New(fault.Config{Seed: 3, ReadErrorRate: 1, GrowBadAfter: 1 << 30})
	dev, err := ocssd.New(geo, ocssd.Options{Seed: 1, PowerLossProtected: true, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := ox.NewController(ox.DefaultConfig(), dev)
	if err != nil {
		t.Fatal(err)
	}
	d, _, now, err := oxblock.New(ctrl, oxblock.Config{LogicalPages: 256}, 0)
	if err != nil {
		t.Fatal(err)
	}
	host := NewHost(ctrl, HostConfig{})
	nsid := attachNS(t, host, NewBlockNamespace(d))
	qp := openQP(t, host, 4)

	data := make([]byte, 8*4096)
	wcmd := qp.AcquireCommand()
	*wcmd = Command{Op: OpWrite, NSID: nsid, LPN: 0, Data: data}
	if err := qp.Push(now, wcmd); err != nil {
		t.Fatal(err)
	}
	wc := qp.MustReap()
	if wc.Err != nil {
		t.Fatal(wc.Err)
	}
	if wc.Status != StatusOK {
		t.Fatalf("write status = %v, want ok", wc.Status)
	}
	now = wc.Done

	// Every read fails (rate 1): the completion must classify it.
	rcmd := qp.AcquireCommand()
	*rcmd = Command{Op: OpRead, NSID: nsid, LPN: 0, Pages: 8}
	if err := qp.Push(now, rcmd); err != nil {
		t.Fatal(err)
	}
	rc := qp.MustReap()
	if rc.Err == nil {
		t.Fatal("read unexpectedly succeeded under ReadErrorRate=1")
	}
	if rc.Status != StatusMediaRead {
		t.Fatalf("read status = %v (err %v), want media-read", rc.Status, rc.Err)
	}

	fl, err := host.Admin().FaultLog(rc.Done)
	if err != nil {
		t.Fatal(err)
	}
	if fl.Injected.ReadErrors == 0 {
		t.Fatalf("fault log reports no read errors: %+v", fl)
	}
}
