package hostif

import (
	"fmt"

	"repro/internal/vclock"
	"repro/internal/zns"
)

// ZoneNamespace serves an OX-ZNS target as a host-interface namespace
// with the NVMe ZNS command set: OpZoneAppend, write-at-write-pointer
// (OpWrite), zone reads (OpRead), OpZoneReset and OpZoneFinish.
type ZoneNamespace struct {
	tgt *zns.Target
}

// NewZoneNamespace wraps tgt.
func NewZoneNamespace(tgt *zns.Target) *ZoneNamespace {
	return &ZoneNamespace{tgt: tgt}
}

// Name implements Namespace.
func (n *ZoneNamespace) Name() string { return "oxzns" }

// identity serves AdminIdentify: the zoned geometry.
func (n *ZoneNamespace) identity() NamespaceIdentity {
	return NamespaceIdentity{
		Name:         n.Name(),
		BlockSize:    n.tgt.BlockSize(),
		Zones:        n.tgt.Zones(),
		ZoneCapacity: n.tgt.ZoneCapacity(),
	}
}

// logPage serves AdminGetLogPage: the NVMe ZNS zone report.
func (n *ZoneNamespace) logPage(now vclock.Time, cmd *Command) (any, error) {
	switch cmd.Admin.Log {
	case LogZoneReport:
		return n.tgt.Report(), nil
	default:
		return nil, fmt.Errorf("%w: %v on %s", ErrBadLogPage, cmd.Admin.Log, n.Name())
	}
}

// Execute implements Namespace.
func (n *ZoneNamespace) Execute(now vclock.Time, cmd *Command) Result {
	switch cmd.Op {
	case OpZoneAppend:
		off, end, err := n.tgt.Append(now, cmd.Zone, cmd.Data)
		return Result{End: end, Err: err, Offset: off}
	case OpWrite:
		end, err := n.tgt.Write(now, cmd.Zone, cmd.LPN, cmd.Data)
		return Result{End: end, Err: err}
	case OpRead:
		data, end, err := n.tgt.Read(now, cmd.Zone, cmd.LPN, cmd.Length)
		return Result{End: end, Err: err, Data: data}
	case OpZoneReset:
		end, err := n.tgt.Reset(now, cmd.Zone)
		return Result{End: end, Err: err}
	case OpZoneFinish:
		end, err := n.tgt.Finish(now, cmd.Zone)
		return Result{End: end, Err: err}
	default:
		return Result{End: now, Err: fmt.Errorf("%w: %v on %s", ErrUnsupported, cmd.Op, n.Name())}
	}
}
