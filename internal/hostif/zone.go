package hostif

import (
	"fmt"

	"repro/internal/vclock"
	"repro/internal/zns"
)

// ZoneNamespace serves an OX-ZNS target as a host-interface namespace
// with the NVMe ZNS command set: OpZoneAppend, write-at-write-pointer
// (OpWrite), zone reads (OpRead), OpZoneReset and OpZoneFinish.
type ZoneNamespace struct {
	tgt *zns.Target
}

// NewZoneNamespace wraps tgt.
func NewZoneNamespace(tgt *zns.Target) *ZoneNamespace {
	return &ZoneNamespace{tgt: tgt}
}

// Name implements Namespace.
func (n *ZoneNamespace) Name() string { return "oxzns" }

// identity serves AdminIdentify: the zoned geometry.
func (n *ZoneNamespace) identity() NamespaceIdentity {
	return NamespaceIdentity{
		Name:         n.Name(),
		BlockSize:    n.tgt.BlockSize(),
		Zones:        n.tgt.Zones(),
		ZoneCapacity: n.tgt.ZoneCapacity(),
	}
}

// logPage serves AdminGetLogPage: the NVMe ZNS zone report.
func (n *ZoneNamespace) logPage(now vclock.Time, cmd *Command) (any, error) {
	switch cmd.Admin.Log {
	case LogZoneReport:
		return n.tgt.Report(), nil
	default:
		return nil, fmt.Errorf("%w: %v on %s", ErrBadLogPage, cmd.Admin.Log, n.Name())
	}
}

// Footprint implements Namespace. A zone is confined to one device
// group, so a zone command's media footprint is exactly that group:
// the per-group channel bus, the group's per-PU chip timelines and the
// zone's own state. Commands on zones in different groups share
// nothing and overlap freely under the pipelined executor — the §2.2
// "parallel units never interfere" argument, end to end. Writes on a
// device with a write-back cache are the exception (cache admission is
// device-global), so they fall back to exclusive; reads never touch
// the cache tracker and stay group-scoped on any device. Out-of-range
// zones and foreign opcodes are unknown → exclusive.
func (n *ZoneNamespace) Footprint(cmd *Command) Footprint {
	dom := n.tgt.Controller()
	switch cmd.Op {
	case OpRead:
	case OpWrite, OpZoneAppend, OpZoneReset, OpZoneFinish:
		if !n.tgt.ConcurrentWriteSafe() {
			return ExclusiveFootprint(dom)
		}
	default:
		return ExclusiveFootprint(dom)
	}
	g, ok := n.tgt.ZoneGroup(cmd.Zone)
	if !ok {
		return ExclusiveFootprint(dom)
	}
	return GroupFootprint(dom, g)
}

// Execute implements Namespace.
func (n *ZoneNamespace) Execute(now vclock.Time, cmd *Command) Result {
	switch cmd.Op {
	case OpZoneAppend:
		off, end, err := n.tgt.Append(now, cmd.Zone, cmd.Data)
		return Result{End: end, Err: err, Offset: off}
	case OpWrite:
		end, err := n.tgt.Write(now, cmd.Zone, cmd.LPN, cmd.Data)
		return Result{End: end, Err: err}
	case OpRead:
		data, end, err := n.tgt.Read(now, cmd.Zone, cmd.LPN, cmd.Length)
		return Result{End: end, Err: err, Data: data}
	case OpZoneReset:
		end, err := n.tgt.Reset(now, cmd.Zone)
		return Result{End: end, Err: err}
	case OpZoneFinish:
		end, err := n.tgt.Finish(now, cmd.Zone)
		return Result{End: end, Err: err}
	default:
		return Result{End: now, Err: fmt.Errorf("%w: %v on %s", ErrUnsupported, cmd.Op, n.Name())}
	}
}
