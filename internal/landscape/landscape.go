// Package landscape encodes Figure 1 of the paper: the SSD landscape
// organized by FTL placement (host vs controller) and FTL abstraction
// (block device, ZNS, application-specific), with the extra dimensions
// §3.1 identifies (storage chip, FTL integration, transparency, access).
package landscape

import (
	"fmt"
	"sort"
	"strings"
)

// Abstraction is the FTL abstraction dimension (columns of Figure 1).
type Abstraction int

// Abstractions.
const (
	BlockDevice Abstraction = iota
	ZNS
	AppSpecific
)

func (a Abstraction) String() string {
	switch a {
	case BlockDevice:
		return "Block-device"
	case ZNS:
		return "ZNS"
	case AppSpecific:
		return "App-Specific"
	default:
		return fmt.Sprintf("Abstraction(%d)", int(a))
	}
}

// Placement is the FTL placement dimension (rows of Figure 1).
type Placement int

// Placements.
const (
	Host Placement = iota
	Controller
)

func (p Placement) String() string {
	if p == Controller {
		return "Controller"
	}
	return "Host"
}

// Integration is where the FTL code runs.
type Integration int

// Integration levels.
const (
	Firmware Integration = iota
	KernelSpace
	UserSpace
)

func (i Integration) String() string {
	switch i {
	case Firmware:
		return "embedded"
	case KernelSpace:
		return "kernel space"
	case UserSpace:
		return "user space"
	default:
		return fmt.Sprintf("Integration(%d)", int(i))
	}
}

// Model is one SSD model of Figure 1.
type Model struct {
	Name        string
	Abstraction Abstraction
	Placement   Placement
	Chips       string // storage chip note (e.g. "MLC/TLC")
	Integration Integration
	WhiteBox    bool // FTL transparency
	Access      Placement
	Available   bool // lighter color in the figure = not fully available
}

// Models returns Figure 1's entries.
func Models() []Model {
	return []Model{
		{"Fusion-IO", BlockDevice, Host, "SLC/MLC", KernelSpace, false, Host, true},
		{"pblk", BlockDevice, Host, "MLC/TLC", KernelSpace, true, Host, true},
		{"SPDK", BlockDevice, Host, "MLC/TLC", UserSpace, true, Host, true},
		{"LightNVM target for ZNS", ZNS, Host, "TLC", KernelSpace, true, Host, false},
		{"RocksDB NVM engine", AppSpecific, Host, "MLC/TLC", UserSpace, true, Host, true},
		{"Traditional SSDs", BlockDevice, Controller, "any", Firmware, false, Host, true},
		{"Smart SSD", BlockDevice, Controller, "QLC", Firmware, false, Controller, true},
		{"OX-Block", BlockDevice, Controller, "MLC", UserSpace, true, Controller, true},
		{"ZNS SSD", ZNS, Controller, "any", Firmware, false, Host, false},
		{"OX-ZNS", ZNS, Controller, "TLC", UserSpace, true, Controller, false},
		{"KV-SSD", AppSpecific, Controller, "QLC", Firmware, false, Host, true},
		{"Pliops", AppSpecific, Controller, "TLC", UserSpace, false, Controller, true},
		{"OX-ELEOS, LightLSM", AppSpecific, Controller, "MLC", UserSpace, true, Controller, true},
	}
}

// Quadrant returns the models in one (placement, abstraction) cell.
func Quadrant(p Placement, a Abstraction) []Model {
	var out []Model
	for _, m := range Models() {
		if m.Placement == p && m.Abstraction == a {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Detail renders a model's parenthetical, matching the figure's format:
// (chips, integration, box, access).
func (m Model) Detail() string {
	box := "black box"
	if m.WhiteBox {
		box = "white box"
	}
	return fmt.Sprintf("(%s, %s, %s, %s)", m.Chips, m.Integration, box, strings.ToLower(m.Access.String()))
}

// Render draws Figure 1 as a text table.
func Render() string {
	var b strings.Builder
	cols := []Abstraction{BlockDevice, ZNS, AppSpecific}
	rows := []Placement{Host, Controller}
	b.WriteString("Figure 1: SSD models by FTL placement (rows) and abstraction (columns)\n")
	b.WriteString("(* = not fully available at publication time)\n\n")
	for _, p := range rows {
		fmt.Fprintf(&b, "== FTL placement: %s ==\n", p)
		for _, a := range cols {
			fmt.Fprintf(&b, "  [%s]\n", a)
			for _, m := range Quadrant(p, a) {
				mark := ""
				if !m.Available {
					mark = " *"
				}
				fmt.Fprintf(&b, "    - %s%s %s\n", m.Name, mark, m.Detail())
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
