package landscape

import (
	"strings"
	"testing"
)

func TestModelsMatchFigure1(t *testing.T) {
	ms := Models()
	if len(ms) != 13 {
		t.Fatalf("Figure 1 has 13 models, got %d", len(ms))
	}
	byName := make(map[string]Model)
	for _, m := range ms {
		byName[m.Name] = m
	}
	// Spot-check the quadrants the paper's §3.1 discussion highlights.
	ox := byName["OX-Block"]
	if ox.Placement != Controller || ox.Abstraction != BlockDevice || !ox.WhiteBox {
		t.Fatalf("OX-Block misplaced: %+v", ox)
	}
	lsm := byName["OX-ELEOS, LightLSM"]
	if lsm.Placement != Controller || lsm.Abstraction != AppSpecific || lsm.Access != Controller {
		t.Fatalf("OX-ELEOS/LightLSM misplaced: %+v", lsm)
	}
	// "Traditional SSDs and SmartSSD are in the same quadrant" (§3.1).
	trad, smart := byName["Traditional SSDs"], byName["Smart SSD"]
	if trad.Placement != smart.Placement || trad.Abstraction != smart.Abstraction {
		t.Fatal("traditional and SmartSSD should share a quadrant")
	}
	// The unavailable (lighter) models.
	for _, name := range []string{"LightNVM target for ZNS", "ZNS SSD", "OX-ZNS"} {
		if byName[name].Available {
			t.Fatalf("%s should be marked unavailable", name)
		}
	}
}

func TestQuadrant(t *testing.T) {
	q := Quadrant(Controller, AppSpecific)
	if len(q) != 3 { // KV-SSD, Pliops, OX-ELEOS+LightLSM
		t.Fatalf("controller/app-specific has %d models, want 3", len(q))
	}
	if len(Quadrant(Host, ZNS)) != 1 {
		t.Fatal("host/ZNS should hold only the LightNVM target")
	}
}

func TestRenderContainsAllModels(t *testing.T) {
	out := Render()
	for _, m := range Models() {
		if !strings.Contains(out, m.Name) {
			t.Fatalf("render is missing %q", m.Name)
		}
	}
	if !strings.Contains(out, "white box") || !strings.Contains(out, "black box") {
		t.Fatal("transparency dimension missing from render")
	}
}

func TestStringers(t *testing.T) {
	if BlockDevice.String() != "Block-device" || ZNS.String() != "ZNS" || AppSpecific.String() != "App-Specific" {
		t.Fatal("abstraction names wrong")
	}
	if Host.String() != "Host" || Controller.String() != "Controller" {
		t.Fatal("placement names wrong")
	}
	if Firmware.String() != "embedded" || KernelSpace.String() != "kernel space" || UserSpace.String() != "user space" {
		t.Fatal("integration names wrong")
	}
}
