// Package lightlsm implements LightLSM (§4.2–4.3): an application-
// specific FTL that "exposes Open-Channel SSDs as a RocksDB environment
// supporting SSTable flush and block reads".
//
// Key design decisions reproduced from the paper:
//
//   - The RocksDB block is the unit of transfer and must be a multiple
//     of the device's unit of write — exactly one 96 KB wordline stripe
//     here (§4.2).
//   - An SSTable occupies whole chunks; its size is the number of chunks
//     times the chunk size (§4.3: 32 PUs × 24 MB = 768 MB on the paper's
//     drive). SSTable deletion therefore causes chunk resets only —
//     garbage collection never copies valid pages.
//   - Horizontal placement stripes a table's chunks across all parallel
//     units; vertical placement confines them to a single group
//     (Figure 4), trading single-stream bandwidth for isolation between
//     compaction and flush.
//   - A single dispatch goroutine submits all media I/O "so that there
//     are no concurrent accesses to the write pointers" (§4.3); it is
//     modeled as a serially-reusable resource with a per-I/O cost.
//   - SSTable flush commits atomically through the FTL's metadata log,
//     so "RocksDB does not need MANIFEST" (§5).
package lightlsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/ftl/ftlcore"
	"repro/internal/lsm"
	"repro/internal/ocssd"
	"repro/internal/offload"
	"repro/internal/ox"
	"repro/internal/vclock"
)

// Placement selects the SSTable-to-PU mapping of Figure 4.
type Placement int

// Placement policies.
const (
	Horizontal Placement = iota // stripe across all PUs
	Vertical                    // confine each table to one group
)

func (p Placement) String() string {
	if p == Vertical {
		return "vertical"
	}
	return "horizontal"
}

// Errors returned by the environment.
var (
	ErrTableFull    = errors.New("lightlsm: table is full")
	ErrBlockRange   = errors.New("lightlsm: block index out of range")
	ErrUnknownTable = errors.New("lightlsm: unknown table")
)

// Config tunes the environment.
type Config struct {
	Placement Placement
	// TableChunks is the number of chunks per SSTable (0 = total PUs,
	// the paper's sizing rule).
	TableChunks int
	// DispatchCPU is the single dispatch thread's per-submission cost.
	DispatchCPU vclock.Duration
}

// Stats aggregates environment activity.
type Stats struct {
	TablesCreated int64
	TablesDeleted int64
	BlocksWritten int64
	BlocksRead    int64
	ChunkResets   int64
}

// Env is the LightLSM environment; it satisfies lsm.Env.
type Env struct {
	ctrl  *ox.Controller
	media ox.Media
	geo   ocssd.Geometry
	cfg   Config

	mu        sync.Mutex
	alloc     *ftlcore.Allocator
	wal       *ftlcore.WAL
	dispatch  *vclock.Resource
	tables    map[lsm.TableID]*tableInfo
	nextID    lsm.TableID
	nextGroup int
	stats     Stats

	ppaPool  sync.Pool // recycled []ocssd.PPA stripes for block reads
	blockBuf sync.Pool // recycled block buffers for in-device lookups
	offl     *offload.Engine
}

type tableInfo struct {
	chunks []ocssd.ChunkID
	blocks int
}

// Statically assert Env implements lsm.Env.
var _ lsm.Env = (*Env)(nil)

// baseEnv builds the environment skeleton shared by New and Recover.
func baseEnv(ctrl *ox.Controller, cfg Config) (*Env, error) {
	geo := ctrl.Media().Geometry()
	if cfg.TableChunks <= 0 {
		cfg.TableChunks = geo.TotalPUs()
	}
	if cfg.Placement == Vertical {
		perGroup := geo.PUsPerGroup * geo.ChunksPerPU
		if cfg.TableChunks > perGroup {
			return nil, fmt.Errorf("lightlsm: vertical table of %d chunks exceeds group capacity %d",
				cfg.TableChunks, perGroup)
		}
	}
	if cfg.DispatchCPU <= 0 {
		cfg.DispatchCPU = 3 * vclock.Microsecond
	}
	e := &Env{
		ctrl:     ctrl,
		media:    ctrl.Media(),
		geo:      geo,
		cfg:      cfg,
		dispatch: vclock.NewResource("lightlsm-dispatch"),
		tables:   make(map[lsm.TableID]*tableInfo),
		offl:     offload.NewEngine(geo.Groups, offload.DefaultConfig()),
	}
	e.alloc = ftlcore.NewAllocator(e.media, nil)
	return e, nil
}

// New opens a LightLSM environment on the controller's media.
func New(ctrl *ox.Controller, cfg Config) (*Env, error) {
	e, err := baseEnv(ctrl, cfg)
	if err != nil {
		return nil, err
	}
	e.wal, err = ftlcore.NewWAL(e.media, ctrl, e.alloc, ftlcore.WALConfig{Target: ftlcore.AnyTarget(), Epoch: 1})
	if err != nil {
		return nil, err
	}
	return e, nil
}

// RecoveryReport summarizes one crash recovery.
type RecoveryReport struct {
	ReplayedSegments int
	ReplayedRecords  int
	Tables           int
	Dropped          int // tables pruned because their chunks were reset
	End              vclock.Time
}

// Recover reopens a LightLSM environment after a crash. Every commit is
// one durable metadata-log record (§5: RocksDB drops its MANIFEST), so
// the table set is rebuilt by replaying RecAppExtent records minus the
// RecTrim deletions. A deletion is logged lazily (sync=false), so a
// crash can lose the trim record after the chunks were already reset;
// such half-deleted tables are detected by checking that every chunk
// still holds the blocks the commit record claims, and pruned.
func Recover(now vclock.Time, ctrl *ox.Controller, cfg Config) (*Env, *RecoveryReport, error) {
	e, err := baseEnv(ctrl, cfg)
	if err != nil {
		return nil, nil, err
	}
	segs, maxEpoch, end, err := ftlcore.ScanLog(now, e.media, ctrl)
	if err != nil {
		return nil, nil, err
	}
	walCfg := ftlcore.WALConfig{Target: ftlcore.AnyTarget()}
	st := &replayState{
		claim: make(map[ocssd.ChunkID]int),
		tseq:  make(map[lsm.TableID]int),
	}
	n, end, err := ftlcore.ReplayLog(end, e.media, ctrl, walCfg, segs, 0, 0, func(r ftlcore.Record) error {
		return e.applyRecord(st, r)
	})
	if err != nil {
		return nil, nil, err
	}
	dropped := e.pruneRecovered(st)
	e.wal, err = ftlcore.NewWAL(e.media, ctrl, e.alloc, ftlcore.WALConfig{Target: ftlcore.AnyTarget(), Epoch: maxEpoch + 1})
	if err != nil {
		return nil, nil, err
	}
	rep := &RecoveryReport{
		ReplayedSegments: len(segs),
		ReplayedRecords:  n,
		Tables:           len(e.tables),
		Dropped:          dropped,
		End:              end,
	}
	return e, rep, nil
}

// replayState tracks chunk ownership in replay order so pruning can
// resolve double claims: a deletion is logged lazily, so after a crash
// two commit records may name the same chunk — the later one (by
// replay order) owns it, because allocation only reuses chunks the
// earlier table already released.
type replayState struct {
	seq   int
	claim map[ocssd.ChunkID]int // chunk -> seq of its latest claimant
	tseq  map[lsm.TableID]int   // table -> seq of its commit record
}

// applyRecord rebuilds the table set from one WAL record. Only called
// during Recover, before the environment is shared.
func (e *Env) applyRecord(st *replayState, r ftlcore.Record) error {
	switch r.Type {
	case ftlcore.RecAppExtent:
		if len(r.Payload) < 12 {
			return fmt.Errorf("lightlsm: short commit record (%d bytes)", len(r.Payload))
		}
		id := lsm.TableID(binary.LittleEndian.Uint64(r.Payload[0:]))
		blocks := int(binary.LittleEndian.Uint32(r.Payload[8:]))
		nchunks := (len(r.Payload) - 12) / 8
		chunks := make([]ocssd.ChunkID, nchunks)
		st.seq++
		for i := 0; i < nchunks; i++ {
			chunks[i] = ocssd.Unpack(binary.LittleEndian.Uint64(r.Payload[12+i*8:])).ChunkOf()
			st.claim[chunks[i]] = st.seq
		}
		st.tseq[id] = st.seq
		e.tables[id] = &tableInfo{chunks: chunks, blocks: blocks}
		if id > e.nextID {
			e.nextID = id
		}
	case ftlcore.RecTrim:
		for off := 0; off+8 <= len(r.Payload); off += 8 {
			delete(e.tables, lsm.TableID(binary.LittleEndian.Uint64(r.Payload[off:])))
		}
	}
	return nil
}

// pruneRecovered drops recovered tables whose chunks are gone: either
// the crash landed between the chunk resets of a DeleteTable and its
// lazily-synced trim record (write pointers too low), or a later
// commit reused the chunks (ownership conflict).
func (e *Env) pruneRecovered(st *replayState) int {
	dropped := 0
	for id, t := range e.tables {
		ok := len(t.chunks) > 0
		for i, c := range t.chunks {
			if st.claim[c] != st.tseq[id] {
				ok = false
				break
			}
			// Block b lands on chunk b%n, so chunk i holds
			// ceil((blocks-i)/n) full stripes.
			need := (t.blocks - i + len(t.chunks) - 1) / len(t.chunks)
			if need <= 0 {
				continue
			}
			info, err := e.media.Chunk(c)
			if err != nil || int(info.WP) < need*e.geo.WSOpt {
				ok = false
				break
			}
		}
		if !ok {
			delete(e.tables, id)
			dropped++
		}
	}
	return dropped
}

// Stats returns a snapshot of environment statistics.
func (e *Env) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Placement reports the configured placement policy.
func (e *Env) Placement() Placement { return e.cfg.Placement }

// BlockSize implements lsm.Env: exactly the device's unit of write
// (96 KB on the paper's dual-plane TLC drive).
func (e *Env) BlockSize() int { return e.geo.UnitOfWriteBytes() }

// BlocksPerChunk reports how many SSTable blocks fit one chunk.
func (e *Env) BlocksPerChunk() int { return e.geo.StripesPerChunk() }

// Controller reports the OX controller the environment accounts
// against — the execution domain of every LightLSM table command. Table
// operations share the environment lock, the allocator and the WAL, so
// commands of one environment never overlap in wall-clock time.
func (e *Env) Controller() *ox.Controller { return e.ctrl }

// MaxTableBlocks implements lsm.Env: chunks × blocks-per-chunk.
func (e *Env) MaxTableBlocks() int { return e.cfg.TableChunks * e.BlocksPerChunk() }

// TableBytes reports the SSTable capacity in bytes (§4.3's sizing:
// number of chunks × chunk size).
func (e *Env) TableBytes() int64 { return int64(e.cfg.TableChunks) * e.geo.ChunkBytes() }

// TableChunks returns the chunks backing a committed table (for
// placement inspection).
func (e *Env) TableChunks(id lsm.TableID) ([]ocssd.ChunkID, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[id]
	if !ok {
		return nil, false
	}
	return append([]ocssd.ChunkID(nil), t.chunks...), true
}

// dispatchIO serializes an I/O submission through the single dispatch
// thread (§4.3) and returns when the submission is done.
func (e *Env) dispatchIO(now vclock.Time) vclock.Time {
	_, end := e.dispatch.Acquire(now, e.cfg.DispatchCPU)
	return end
}

// allocateTable provisions the chunks of a new table per the placement.
func (e *Env) allocateTable() ([]ocssd.ChunkID, error) {
	chunks := make([]ocssd.ChunkID, 0, e.cfg.TableChunks)
	free := func(ids []ocssd.ChunkID) {
		for _, id := range ids {
			e.alloc.ReturnFree(id)
		}
	}
	switch e.cfg.Placement {
	case Vertical:
		// Try each group starting from the rotation cursor so one busy
		// group does not block allocation.
		for attempt := 0; attempt < e.geo.Groups; attempt++ {
			g := e.nextGroup % e.geo.Groups
			e.nextGroup++
			if e.alloc.FreeInGroup(g) < e.cfg.TableChunks {
				continue
			}
			ok := true
			for i := 0; i < e.cfg.TableChunks; i++ {
				id, err := e.alloc.Alloc(ftlcore.InGroup(g))
				if err != nil {
					free(chunks)
					chunks = chunks[:0]
					ok = false
					break
				}
				chunks = append(chunks, id)
			}
			if ok {
				return chunks, nil
			}
		}
		return nil, ftlcore.ErrNoFreeChunks
	default: // Horizontal: round-robin across all PUs
		for i := 0; i < e.cfg.TableChunks; i++ {
			id, err := e.alloc.Alloc(ftlcore.AnyTarget())
			if err != nil {
				free(chunks)
				return nil, err
			}
			chunks = append(chunks, id)
		}
		return chunks, nil
	}
}

// CreateTable implements lsm.Env: it provisions the table's chunks.
func (e *Env) CreateTable(now vclock.Time) (lsm.TableWriter, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	chunks, err := e.allocateTable()
	if err != nil {
		return nil, err
	}
	e.stats.TablesCreated++
	return &tableWriter{env: e, chunks: chunks}, nil
}

type tableWriter struct {
	env    *Env
	chunks []ocssd.ChunkID
	blocks int
	done   bool
}

// Append implements lsm.TableWriter: block i lands on chunk i%n at its
// write pointer, one full wordline stripe per block. Consecutive blocks
// hit different parallel units, so a flush streams at the placement's
// aggregate bandwidth.
func (w *tableWriter) Append(now vclock.Time, block []byte) (vclock.Time, error) {
	e := w.env
	if w.done {
		return now, errors.New("lightlsm: append to finished table")
	}
	if len(block) != e.BlockSize() {
		return now, fmt.Errorf("lightlsm: block is %d bytes, want %d", len(block), e.BlockSize())
	}
	if w.blocks >= e.MaxTableBlocks() {
		return now, ErrTableFull
	}
	target := w.chunks[w.blocks%len(w.chunks)]
	end := e.dispatchIO(now)
	_, end, err := e.media.Append(end, target, block)
	if err != nil {
		return end, err
	}
	w.blocks++
	e.mu.Lock()
	e.stats.BlocksWritten++
	e.mu.Unlock()
	e.ctrl.NoteUserIO()
	return end, nil
}

// Commit implements lsm.TableWriter: the table becomes visible via one
// durable metadata-log record — the atomic SSTable flush that lets
// RocksDB drop its MANIFEST (§5).
func (w *tableWriter) Commit(now vclock.Time) (lsm.TableHandle, vclock.Time, error) {
	e := w.env
	if w.done {
		return lsm.TableHandle{}, now, errors.New("lightlsm: double commit")
	}
	w.done = true
	e.mu.Lock()
	e.nextID++
	id := e.nextID
	e.tables[id] = &tableInfo{chunks: w.chunks, blocks: w.blocks}
	e.mu.Unlock()

	payload := make([]byte, 8+4+len(w.chunks)*8)
	binary.LittleEndian.PutUint64(payload[0:], uint64(id))
	binary.LittleEndian.PutUint32(payload[8:], uint32(w.blocks))
	for i, c := range w.chunks {
		binary.LittleEndian.PutUint64(payload[12+i*8:], c.PPAOf(0).Pack())
	}
	_, end, err := e.wal.Append(now, ftlcore.Record{Type: ftlcore.RecAppExtent, TxID: uint64(id), Payload: payload}, true)
	if err != nil {
		return lsm.TableHandle{}, end, err
	}
	e.ctrl.NoteControllerIO()
	return lsm.TableHandle{ID: id, Blocks: w.blocks}, end, nil
}

// Abort implements lsm.TableWriter: written chunks are reset and
// returned to the pool.
func (w *tableWriter) Abort(now vclock.Time) (vclock.Time, error) {
	e := w.env
	if w.done {
		return now, nil
	}
	w.done = true
	end := now
	for _, id := range w.chunks {
		info, err := e.media.Chunk(id)
		if err != nil {
			continue
		}
		if info.State == ocssd.ChunkFree {
			e.alloc.ReturnFree(id)
			continue
		}
		if e2, err := e.alloc.Release(end, id); err == nil {
			end = e2
		}
	}
	return end, nil
}

// ReadBlock implements lsm.Env: one block is one VectorRead of a whole
// wordline stripe (the unit of read forced up to the unit of write that
// §4.2 and §5's interface fallacy discuss).
func (e *Env) ReadBlock(now vclock.Time, h lsm.TableHandle, block int, dst []byte) (vclock.Time, error) {
	e.mu.Lock()
	t, ok := e.tables[h.ID]
	e.mu.Unlock()
	if !ok {
		return now, fmt.Errorf("%w: %d", ErrUnknownTable, h.ID)
	}
	if block < 0 || block >= t.blocks {
		return now, fmt.Errorf("%w: %d of %d", ErrBlockRange, block, t.blocks)
	}
	if len(dst) < e.BlockSize() {
		return now, fmt.Errorf("lightlsm: dst %d bytes, want %d", len(dst), e.BlockSize())
	}
	chunk := t.chunks[block%len(t.chunks)]
	stripe := block / len(t.chunks)
	// Recycle the boxed slice header along with the stripe storage:
	// Put(&local) would heap-allocate a fresh header per read.
	pp, _ := e.ppaPool.Get().(*[]ocssd.PPA)
	if pp == nil {
		s := make([]ocssd.PPA, e.geo.WSOpt)
		pp = &s
	}
	ppas := *pp
	base := stripe * e.geo.WSOpt
	for i := range ppas {
		ppas[i] = chunk.PPAOf(base + i)
	}
	end := e.dispatchIO(now)
	end, err := e.media.VectorRead(end, ppas, dst[:e.BlockSize()])
	e.ppaPool.Put(pp)
	if err != nil {
		return end, err
	}
	e.mu.Lock()
	e.stats.BlocksRead++
	e.mu.Unlock()
	e.ctrl.NoteUserIO()
	return end, nil
}

// DeleteTable implements lsm.Env: §4.3 — "Each SSTable deletion only
// causes chunk erases", never page copies.
func (e *Env) DeleteTable(now vclock.Time, h lsm.TableHandle) (vclock.Time, error) {
	e.mu.Lock()
	t, ok := e.tables[h.ID]
	if ok {
		delete(e.tables, h.ID)
	}
	e.mu.Unlock()
	if !ok {
		return now, fmt.Errorf("%w: %d", ErrUnknownTable, h.ID)
	}
	// Log the deletion durably BEFORE erasing anything: once a chunk is
	// reset the allocator may hand it to a new table, and a crash that
	// lost the trim record would resurrect this table pointing at the
	// new table's data. Forcing the record first makes the erase safe —
	// recovery either sees the trim (table gone) or the chunks were
	// never touched (table resurrects intact).
	payload := make([]byte, 8)
	binary.LittleEndian.PutUint64(payload, uint64(h.ID))
	_, end, err := e.wal.Append(now, ftlcore.Record{Type: ftlcore.RecTrim, TxID: uint64(h.ID), Payload: payload}, true)
	if err != nil {
		return end, err
	}
	for _, id := range t.chunks {
		info, err := e.media.Chunk(id)
		if err != nil {
			continue
		}
		if info.State == ocssd.ChunkFree {
			e.alloc.ReturnFree(id)
			continue
		}
		end = e.dispatchIO(end)
		if e2, err := e.alloc.Release(end, id); err == nil {
			end = e2
		}
		e.mu.Lock()
		e.stats.ChunkResets++
		e.mu.Unlock()
	}
	e.mu.Lock()
	e.stats.TablesDeleted++
	e.mu.Unlock()
	return end, nil
}

// FreeChunks reports the allocator pool size (capacity planning in
// benchmarks).
func (e *Env) FreeChunks() int { return e.alloc.FreeCount() }

// --- Computational storage (internal/offload) ----------------------------

// Offload returns the environment's in-device compute engine (stats
// and cost model of the offloaded commands).
func (e *Env) Offload() *offload.Engine { return e.offl }

// BlockGroup reports the device group holding the given block of a
// committed table — the pipelined executor's footprint oracle for
// offloaded lookups: two OffloadGets on disjoint groups touch disjoint
// chip timelines and lookup lanes, so their commands may overlap. ok
// is false for unknown tables or out-of-range blocks.
func (e *Env) BlockGroup(id lsm.TableID, block int) (int, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[id]
	if !ok || block < 0 || block >= t.blocks {
		return 0, false
	}
	return t.chunks[block%len(t.chunks)].Group, true
}

// OffloadGet resolves a point lookup inside the device (OpOffloadGet):
// the block is read from NAND into device RAM, searched by the offload
// engine's per-group lane, and only the EncodeGetResult frame — flags
// plus the value — is returned for the host link. The path deliberately
// bypasses the host-facing dispatch thread and every other device-wide
// resource: it touches only the block's own group/PU media timelines
// and that group's lookup lane, which is what makes the adapter's
// GroupFootprint sound under the pipelined executor. Media faults
// surface as the injector's typed errors (wrapped with %w), so
// hostif.StatusOf classifies them exactly as host-side block reads.
func (e *Env) OffloadGet(now vclock.Time, h lsm.TableHandle, block int, key []byte) (res []byte, end vclock.Time, err error) {
	e.mu.Lock()
	t, ok := e.tables[h.ID]
	e.mu.Unlock()
	if !ok {
		return nil, now, fmt.Errorf("%w: %d", ErrUnknownTable, h.ID)
	}
	if block < 0 || block >= t.blocks {
		return nil, now, fmt.Errorf("%w: %d of %d", ErrBlockRange, block, t.blocks)
	}
	chunk := t.chunks[block%len(t.chunks)]
	stripe := block / len(t.chunks)
	bp, _ := e.blockBuf.Get().(*[]byte)
	if bp == nil {
		s := make([]byte, e.BlockSize())
		bp = &s
	}
	buf := (*bp)[:e.BlockSize()]
	pp, _ := e.ppaPool.Get().(*[]ocssd.PPA)
	if pp == nil {
		s := make([]ocssd.PPA, e.geo.WSOpt)
		pp = &s
	}
	ppas := *pp
	base := stripe * e.geo.WSOpt
	for i := range ppas {
		ppas[i] = chunk.PPAOf(base + i)
	}
	end, err = e.media.VectorRead(now, ppas, buf)
	e.ppaPool.Put(pp)
	if err != nil {
		e.blockBuf.Put(bp)
		return nil, end, fmt.Errorf("lightlsm: offload get: %w", err)
	}
	end = e.offl.GetCost(end, chunk.Group, e.BlockSize())
	value, del, found := lsm.SearchBlock(buf, key)
	res = offload.EncodeGetResult(value, del, found)
	e.blockBuf.Put(bp)
	e.mu.Lock()
	e.stats.BlocksRead++
	e.mu.Unlock()
	e.ctrl.NoteUserIO()
	e.offl.NoteGet(found, len(res), e.BlockSize())
	return res, end, nil
}

// OffloadCompact merges committed tables inside the device
// (OpOffloadCompact): the exact host-side merge machinery
// (lsm.MergeTables) runs against the environment directly, so the
// output tables are bit-identical to a host compaction — but the block
// traffic stays device-side, only the marshaled output metadata
// crosses the host link, and the merge is charged to the offload
// engine's compute unit on top of the media cost.
func (e *Env) OffloadCompact(now vclock.Time, req offload.CompactRequest) (res []byte, end vclock.Time, err error) {
	inputs := make([]lsm.TableHandle, len(req.Inputs))
	inBlocks := 0
	for i, r := range req.Inputs {
		inputs[i] = lsm.TableHandle{ID: lsm.TableID(r.ID), Blocks: int(r.Blocks)}
		inBlocks += int(r.Blocks)
	}
	metas, end, err := lsm.MergeTables(e, now, inputs, int(req.BitsPerKey), req.DropDeletes)
	if err != nil {
		return nil, end, fmt.Errorf("lightlsm: offload compact: %w", err)
	}
	end = e.offl.MergeCost(end, int64(inBlocks)*int64(e.BlockSize()))
	blobs := make([][]byte, len(metas))
	outBlocks := 0
	for i, m := range metas {
		blobs[i] = m.Marshal()
		outBlocks += m.Handle.Blocks
	}
	res = offload.EncodeCompactResult(blobs)
	// The host-side alternative streams every input block up and every
	// output block back down the host link.
	direct := int64(inBlocks+outBlocks) * int64(e.BlockSize())
	e.offl.NoteCompact(inBlocks+outBlocks, int64(len(res)), direct)
	return res, end, nil
}
