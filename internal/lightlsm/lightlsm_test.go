package lightlsm

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/lsm"
	"repro/internal/nand"
	"repro/internal/ocssd"
	"repro/internal/ox"
	"repro/internal/vclock"
)

func testRig(t *testing.T) *ox.Controller {
	t.Helper()
	chip := nand.Geometry{
		Planes: 2, BlocksPerPlane: 32, PagesPerBlock: 24,
		SectorsPerPage: 4, SectorSize: 4096, Cell: nand.TLC,
	}
	geo := ocssd.Finish(ocssd.Geometry{
		Groups: 4, PUsPerGroup: 2, ChunksPerPU: 32, Chip: chip,
		ChannelMBps: 800, CacheMBps: 3200, CacheMB: 8, MaxOpenPerPU: 16,
	})
	dev, err := ocssd.New(geo, ocssd.Options{Seed: 1, PowerLossProtected: true})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := ox.NewController(ox.DefaultConfig(), dev)
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

func newEnv(t *testing.T, cfg Config) *Env {
	t.Helper()
	e, err := New(testRig(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBlockSizeIsUnitOfWrite(t *testing.T) {
	e := newEnv(t, Config{})
	// §4.2: dual-plane TLC → 96 KB.
	if e.BlockSize() != 96*1024 {
		t.Fatalf("block size = %d, want 96KB", e.BlockSize())
	}
	// §4.3: SSTable = #PUs × chunk size.
	if e.TableBytes() != int64(8)*e.geo.ChunkBytes() {
		t.Fatalf("table bytes = %d", e.TableBytes())
	}
	if e.MaxTableBlocks() != 8*e.BlocksPerChunk() {
		t.Fatalf("max blocks = %d", e.MaxTableBlocks())
	}
}

func block(e *Env, fill byte) []byte {
	return bytes.Repeat([]byte{fill}, e.BlockSize())
}

func writeTable(t *testing.T, e *Env, blocks int, fill byte) (lsm.TableHandle, vclock.Time) {
	t.Helper()
	w, err := e.CreateTable(0)
	if err != nil {
		t.Fatal(err)
	}
	now := vclock.Time(0)
	for i := 0; i < blocks; i++ {
		if now, err = w.Append(now, block(e, fill+byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	h, now, err := w.Commit(now)
	if err != nil {
		t.Fatal(err)
	}
	return h, now
}

func TestWriteReadTable(t *testing.T) {
	e := newEnv(t, Config{})
	h, now := writeTable(t, e, 12, 0x10)
	if h.Blocks != 12 {
		t.Fatalf("blocks = %d", h.Blocks)
	}
	dst := make([]byte, e.BlockSize())
	for i := 0; i < 12; i++ {
		var err error
		if now, err = e.ReadBlock(now, h, i, dst); err != nil {
			t.Fatalf("read block %d: %v", i, err)
		}
		if dst[0] != 0x10+byte(i) || dst[len(dst)-1] != 0x10+byte(i) {
			t.Fatalf("block %d content wrong", i)
		}
	}
	if _, err := e.ReadBlock(now, h, 12, dst); !errors.Is(err, ErrBlockRange) {
		t.Fatalf("out-of-range read: %v", err)
	}
	st := e.Stats()
	if st.BlocksWritten != 12 || st.BlocksRead != 12 || st.TablesCreated != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHorizontalPlacementStripesAllPUs(t *testing.T) {
	e := newEnv(t, Config{Placement: Horizontal})
	h, _ := writeTable(t, e, 8, 1)
	chunks, ok := e.TableChunks(h.ID)
	if !ok || len(chunks) != 8 {
		t.Fatalf("chunks = %d", len(chunks))
	}
	pus := make(map[[2]int]bool)
	for _, c := range chunks {
		pus[[2]int{c.Group, c.PU}] = true
	}
	// 8 chunks over 8 PUs: every PU holds part of the table (Figure 4).
	if len(pus) != 8 {
		t.Fatalf("horizontal table covers %d PUs, want 8", len(pus))
	}
}

func TestVerticalPlacementConfinesToGroup(t *testing.T) {
	e := newEnv(t, Config{Placement: Vertical})
	h1, _ := writeTable(t, e, 8, 1)
	h2, _ := writeTable(t, e, 8, 2)
	c1, _ := e.TableChunks(h1.ID)
	c2, _ := e.TableChunks(h2.ID)
	g1 := c1[0].Group
	for _, c := range c1 {
		if c.Group != g1 {
			t.Fatalf("vertical table spans groups %d and %d", g1, c.Group)
		}
	}
	g2 := c2[0].Group
	for _, c := range c2 {
		if c.Group != g2 {
			t.Fatal("second table spans groups")
		}
	}
	// Consecutive tables rotate to different groups.
	if g1 == g2 {
		t.Fatalf("consecutive vertical tables on the same group %d", g1)
	}
	if e.Placement().String() != "vertical" {
		t.Fatal("placement accessor wrong")
	}
}

func TestVerticalTableTooBigRejected(t *testing.T) {
	ctrl := testRig(t)
	// 4 groups × 2 PUs × 32 chunks: one group holds 64 chunks.
	if _, err := New(ctrl, Config{Placement: Vertical, TableChunks: 100}); err == nil {
		t.Fatal("oversized vertical table should be rejected")
	}
}

func TestDeleteTableResetsChunksOnly(t *testing.T) {
	e := newEnv(t, Config{})
	h, now := writeTable(t, e, 16, 3)
	free := e.FreeChunks()
	now, err := e.DeleteTable(now, h)
	if err != nil {
		t.Fatal(err)
	}
	if e.FreeChunks() <= free {
		t.Fatal("delete did not return chunks")
	}
	if e.Stats().ChunkResets == 0 {
		t.Fatal("delete should reset chunks (§4.3)")
	}
	dst := make([]byte, e.BlockSize())
	if _, err := e.ReadBlock(now, h, 0, dst); !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("read of deleted table: %v", err)
	}
	if _, err := e.DeleteTable(now, h); !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestAbortReleasesChunks(t *testing.T) {
	e := newEnv(t, Config{})
	w, err := e.CreateTable(0)
	if err != nil {
		t.Fatal(err)
	}
	now := vclock.Time(0)
	if now, err = w.Append(now, block(e, 1)); err != nil {
		t.Fatal(err)
	}
	free := e.FreeChunks()
	if _, err := w.Abort(now); err != nil {
		t.Fatal(err)
	}
	if e.FreeChunks() <= free {
		t.Fatal("abort did not release chunks")
	}
	if _, err := w.Append(now, block(e, 1)); err == nil {
		t.Fatal("append after abort should fail")
	}
}

func TestTableOverflow(t *testing.T) {
	e := newEnv(t, Config{TableChunks: 1})
	w, err := e.CreateTable(0)
	if err != nil {
		t.Fatal(err)
	}
	now := vclock.Time(0)
	for i := 0; i < e.MaxTableBlocks(); i++ {
		if now, err = w.Append(now, block(e, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Append(now, block(e, 0)); !errors.Is(err, ErrTableFull) {
		t.Fatalf("overflow append: %v", err)
	}
}

func TestWrongBlockSizeRejected(t *testing.T) {
	e := newEnv(t, Config{})
	w, _ := e.CreateTable(0)
	if _, err := w.Append(0, make([]byte, 4096)); err == nil {
		t.Fatal("short block should be rejected")
	}
}

func TestDispatchThreadSerializesSubmissions(t *testing.T) {
	e := newEnv(t, Config{DispatchCPU: 100 * vclock.Microsecond})
	h, _ := writeTable(t, e, 2, 1)
	dst := make([]byte, e.BlockSize())
	// Two reads submitted at the same instant: the second's dispatch
	// must queue behind the first (§4.3's single dispatch thread).
	e1, err := e.ReadBlock(0, h, 0, dst)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := e.ReadBlock(0, h, 1, dst)
	if err != nil {
		t.Fatal(err)
	}
	if e2 < e1 {
		t.Fatalf("expected dispatch serialization: %v then %v", e1, e2)
	}
	if e.dispatch.Busy() < 2*100*vclock.Microsecond {
		t.Fatal("dispatch cost not accounted")
	}
}

func TestLSMOverLightLSMEndToEnd(t *testing.T) {
	// Full integration: the mini-RocksDB over the LightLSM env on the
	// simulated OCSSD.
	e := newEnv(t, Config{Placement: Horizontal, TableChunks: 4})
	db, err := lsm.Open(lsm.Options{
		Env:           e,
		MemtableBytes: 256 * 1024,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := vclock.Time(0)
	const n = 2000
	val := bytes.Repeat([]byte{0xCD}, 1024) // 1 KB values, like db_bench
	for i := 0; i < n; i++ {
		k := []byte{byte(i >> 8), byte(i), 0x10, 0x20}
		if now, err = db.Put(now, k, val); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	now = db.WaitIdle(now)
	for i := 0; i < n; i += 97 {
		k := []byte{byte(i >> 8), byte(i), 0x10, 0x20}
		got, n2, err := db.Get(now, k)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("value mismatch at %d", i)
		}
		now = n2
	}
	if db.Stats().Flushes == 0 {
		t.Fatal("no flush through LightLSM")
	}
	if e.Stats().BlocksWritten == 0 {
		t.Fatal("no blocks written to the device")
	}
}
