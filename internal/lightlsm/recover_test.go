package lightlsm

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/lsm"
	"repro/internal/nand"
	"repro/internal/ocssd"
	"repro/internal/ox"
	"repro/internal/vclock"
)

func durableGeo() ocssd.Geometry {
	chip := nand.Geometry{
		Planes: 2, BlocksPerPlane: 32, PagesPerBlock: 24,
		SectorsPerPage: 4, SectorSize: 4096, Cell: nand.TLC,
	}
	return ocssd.Finish(ocssd.Geometry{
		Groups: 4, PUsPerGroup: 2, ChunksPerPU: 32, Chip: chip,
		ChannelMBps: 800, CacheMBps: 3200, CacheMB: 8, MaxOpenPerPU: 16,
	})
}

// TestRecoverAfterPowerCut commits SSTables on a file-backed device,
// cuts power mid-flush, and verifies Recover resurrects every committed
// table (with readable blocks) while dropping deleted ones.
func TestRecoverAfterPowerCut(t *testing.T) {
	geo := durableGeo()
	path := filepath.Join(t.TempDir(), "lsm.img")
	inj := fault.New(fault.Config{Seed: 11})
	dev, err := ocssd.New(geo, ocssd.Options{
		Seed: 1, PowerLossProtected: true, BackendPath: path, Faults: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := ox.NewController(ox.DefaultConfig(), dev)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{TableChunks: 4}
	e, err := New(ctrl, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// commit writes a table of `blocks` blocks filled with `fill` and
	// returns its handle; reports power cut via ok=false.
	now := vclock.Time(0)
	commit := func(blocks int, fill byte) (lsm.TableHandle, bool) {
		w, err := e.CreateTable(now)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < blocks; i++ {
			end, err := w.Append(now, block(e, fill+byte(i)))
			if err != nil {
				if errors.Is(err, fault.ErrPowerCut) {
					return lsm.TableHandle{}, false
				}
				t.Fatalf("Append: %v", err)
			}
			now = end
		}
		h, end, err := w.Commit(now)
		if err != nil {
			if errors.Is(err, fault.ErrPowerCut) {
				return lsm.TableHandle{}, false
			}
			t.Fatalf("Commit: %v", err)
		}
		now = end
		return h, true
	}

	type want struct {
		h    lsm.TableHandle
		fill byte
	}
	var committed []want
	h1, _ := commit(6, 0x10)
	committed = append(committed, want{h1, 0x10})
	h2, _ := commit(3, 0x40)
	committed = append(committed, want{h2, 0x40})
	hDel, _ := commit(2, 0x70)
	if end, err := e.DeleteTable(now, hDel); err != nil {
		t.Fatalf("DeleteTable: %v", err)
	} else {
		now = end
	}

	// Arm the cut and keep committing until it fires mid-table.
	inj.PowerCut(9)
	for fill := byte(0x80); ; fill += 8 {
		h, ok := commit(4, fill)
		if !ok {
			break
		}
		committed = append(committed, want{h, fill})
		if fill > 0xe0 {
			t.Fatal("power cut never fired")
		}
	}
	dev.Close()

	dev2, err := ocssd.OpenDevice(geo, ocssd.Options{Seed: 1, PowerLossProtected: true, BackendPath: path})
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	defer dev2.Close()
	ctrl2, err := ox.NewController(ox.DefaultConfig(), dev2)
	if err != nil {
		t.Fatal(err)
	}
	e2, rep, err := Recover(now, ctrl2, cfg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rep.ReplayedSegments == 0 || rep.ReplayedRecords == 0 {
		t.Fatalf("recovery replayed nothing: %+v", rep)
	}
	now = rep.End

	if _, ok := e2.TableChunks(hDel.ID); ok {
		t.Fatalf("deleted table %d resurrected", hDel.ID)
	}
	dst := make([]byte, e2.BlockSize())
	for _, w := range committed {
		for b := 0; b < w.h.Blocks; b++ {
			end, err := e2.ReadBlock(now, w.h, b, dst)
			if err != nil {
				t.Fatalf("table %d block %d: lost committed data: %v", w.h.ID, b, err)
			}
			now = end
			if !bytes.Equal(dst, block(e2, w.fill+byte(b))) {
				t.Fatalf("table %d block %d: content mismatch after recovery", w.h.ID, b)
			}
		}
	}

	// New commits must not collide with recovered table IDs.
	hNew, ok := commitOn(t, e2, &now, 2, 0x05)
	if !ok {
		t.Fatal("post-recovery commit failed")
	}
	for _, w := range committed {
		if hNew.ID == w.h.ID {
			t.Fatalf("table ID %d reused after recovery", hNew.ID)
		}
	}
	if _, err := e2.ReadBlock(now, hNew, 0, dst); err != nil || !bytes.Equal(dst, block(e2, 0x05)) {
		t.Fatalf("post-recovery table unreadable: %v", err)
	}
}

func commitOn(t *testing.T, e *Env, now *vclock.Time, blocks int, fill byte) (lsm.TableHandle, bool) {
	t.Helper()
	w, err := e.CreateTable(*now)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < blocks; i++ {
		end, err := w.Append(*now, block(e, fill+byte(i)))
		if err != nil {
			return lsm.TableHandle{}, false
		}
		*now = end
	}
	h, end, err := w.Commit(*now)
	if err != nil {
		return lsm.TableHandle{}, false
	}
	*now = end
	return h, true
}
