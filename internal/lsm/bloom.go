package lsm

import "encoding/binary"

// bloom is a standard bloom filter with k derived from bits-per-key,
// matching RocksDB's full-filter behaviour closely enough for the
// paper's observation that random-read cost "depend[s] on the
// performance of bloom filters".
type bloom struct {
	bits []byte
	k    uint32
}

// newBloomFromKeys builds a filter over the given keys.
func newBloomFromKeys(keys [][]byte, bitsPerKey int) *bloom {
	b := newBloomSized(len(keys), bitsPerKey)
	for _, key := range keys {
		b.add(key)
	}
	return b
}

// newBloomFromHashes builds a filter from pre-computed key hashes, so
// table builds do not have to retain a copy of every key just to size
// and fill the filter.
func newBloomFromHashes(hashes []uint32, bitsPerKey int) *bloom {
	b := newBloomSized(len(hashes), bitsPerKey)
	for _, h := range hashes {
		b.addHash(h)
	}
	return b
}

// newBloomSized returns an empty filter sized for n keys.
func newBloomSized(n, bitsPerKey int) *bloom {
	if bitsPerKey <= 0 {
		bitsPerKey = 10
	}
	k := uint32(float64(bitsPerKey) * 69 / 100) // bitsPerKey * ln2
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	nBits := n * bitsPerKey
	if nBits < 64 {
		nBits = 64
	}
	return &bloom{bits: make([]byte, (nBits+7)/8), k: k}
}

func bloomHash(key []byte) uint32 {
	// FNV-1a style hash with a seed mix, as in LevelDB's bloom.
	var h uint32 = 0x811c9dc5
	for _, c := range key {
		h ^= uint32(c)
		h *= 0x01000193
	}
	return h
}

func (b *bloom) add(key []byte) { b.addHash(bloomHash(key)) }

func (b *bloom) addHash(h uint32) {
	delta := h>>17 | h<<15
	nBits := uint32(len(b.bits) * 8)
	for i := uint32(0); i < b.k; i++ {
		pos := h % nBits
		b.bits[pos/8] |= 1 << (pos % 8)
		h += delta
	}
}

// mayContain reports whether the key might be in the set.
func (b *bloom) mayContain(key []byte) bool {
	if b == nil || len(b.bits) == 0 {
		return true
	}
	h := bloomHash(key)
	delta := h>>17 | h<<15
	nBits := uint32(len(b.bits) * 8)
	for i := uint32(0); i < b.k; i++ {
		pos := h % nBits
		if b.bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}

// marshal serializes the filter (k followed by the bit array).
func (b *bloom) marshal() []byte {
	out := make([]byte, 4+len(b.bits))
	binary.LittleEndian.PutUint32(out, b.k)
	copy(out[4:], b.bits)
	return out
}

// unmarshalBloom parses a serialized filter.
func unmarshalBloom(data []byte) *bloom {
	if len(data) < 4 {
		return nil
	}
	return &bloom{k: binary.LittleEndian.Uint32(data), bits: append([]byte(nil), data[4:]...)}
}
