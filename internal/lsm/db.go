package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/vclock"
)

// ErrNotFound is returned by Get for absent or deleted keys.
var ErrNotFound = errors.New("lsm: not found")

// Options tunes the tree. Zero values select defaults.
type Options struct {
	Env Env
	// MemtableBytes triggers a flush (default 4 MB).
	MemtableBytes int64
	// L0CompactTrigger is the L0 file count that starts compaction (4).
	L0CompactTrigger int
	// L0StallTrigger is the L0 file count at which writers stall (8) —
	// RocksDB's stop-writes threshold, the source of Figure 6's
	// throughput fluctuation.
	L0StallTrigger int
	// L1TargetBytes caps L1 before spilling into L2 (default 4 tables).
	L1TargetBytes int64
	// BloomBitsPerKey sizes table filters (10).
	BloomBitsPerKey int
	// RateLimitMBps throttles flush+compaction writes, like RocksDB's
	// rate limiter (0 = unlimited).
	RateLimitMBps float64
	// CPUPerOp is the host CPU cost of a memtable insert or probe (2µs).
	CPUPerOp vclock.Duration
	// FlushWorkers is the number of concurrent background flushes
	// (RocksDB max_background_flushes; default 4). Parallel flushes are
	// what let vertical placement scale across groups.
	FlushWorkers int
	// MaxImmutables bounds queued immutable memtables before writers
	// stall (RocksDB max_write_buffer_number; default FlushWorkers+1).
	MaxImmutables int
	// CompactWorkers is the number of concurrent compactions (2).
	CompactWorkers int
	// Seed drives skiplist height choices.
	Seed int64
	// Lookup, when set, resolves a positive table probe inside the
	// device (OpOffloadGet): instead of reading the block over the host
	// link and searching it host-side, the device searches block in
	// place and returns only the value. Bloom probe and block-index
	// lookup stay host-side either way (table metadata lives in
	// controller RAM). The returned value must remain valid until the
	// next Lookup or ReadBlock call. Nil selects the host-side path.
	Lookup func(now vclock.Time, h TableHandle, block int, key []byte) (value []byte, del, found bool, end vclock.Time, err error)
	// Compactor, when set, runs table merges inside the device
	// (OpOffloadCompact): inputs are merged newest-first device-side
	// and only the output tables' metadata crosses the host link. The
	// outputs must be bit-identical to the host-side merge of the same
	// inputs (MergeTables guarantees this). Nil selects the host-side
	// path.
	Compactor func(now vclock.Time, inputs []TableHandle, bitsPerKey int, dropDeletes bool) ([]*TableMeta, vclock.Time, error)
}

func (o *Options) fill() error {
	if o.Env == nil {
		return errors.New("lsm: options need an Env")
	}
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 4 << 20
	}
	if o.L0CompactTrigger <= 0 {
		o.L0CompactTrigger = 4
	}
	if o.L0StallTrigger <= 0 {
		o.L0StallTrigger = 2 * o.L0CompactTrigger
	}
	if o.L1TargetBytes <= 0 {
		o.L1TargetBytes = 4 * int64(o.Env.BlockSize()) * int64(o.Env.MaxTableBlocks())
	}
	if o.BloomBitsPerKey <= 0 {
		o.BloomBitsPerKey = 10
	}
	if o.CPUPerOp <= 0 {
		o.CPUPerOp = 2 * vclock.Microsecond
	}
	if o.FlushWorkers <= 0 {
		o.FlushWorkers = 4
	}
	if o.MaxImmutables <= 0 {
		o.MaxImmutables = o.FlushWorkers + 1
	}
	if o.CompactWorkers <= 0 {
		o.CompactWorkers = 2
	}
	return nil
}

// Stats aggregates tree activity.
type Stats struct {
	Puts, Gets, Deletes          int64
	Flushes                      int64
	Compactions                  int64
	BytesFlushed                 int64
	BytesCompacted               int64
	BlockReads                   int64
	BloomSkips                   int64
	TrivialMoves                 int64
	StallTime                    vclock.Duration
	TablesL0, TablesL1, TablesL2 int
}

// DB is the LSM tree. Methods take and return virtual time; the zero
// time is the epoch. DB methods are safe for concurrent use, though the
// deterministic experiment drivers call them from one goroutine.
type DB struct {
	opts Options
	env  Env

	mu           sync.Mutex
	seq          uint64
	mem          *skiplist
	imms         []immEntry   // flushing memtables, newest first
	l0           []*TableMeta // newest first
	l1           []*TableMeta // sorted, non-overlapping
	l2           []*TableMeta // sorted, non-overlapping
	flushPool    *vclock.Pool
	compactPool  *vclock.Pool
	rate         *vclock.Resource
	compactEnd   vclock.Time
	lastFlushEnd vclock.Time
	l1Cursor     int
	readBuf      []byte // reusable Get block buffer (guarded by mu)
	stats        Stats
}

// immEntry is a memtable whose flush completes at end (virtual time).
type immEntry struct {
	table *skiplist
	end   vclock.Time
}

// Open creates an empty tree over the environment.
func Open(opts Options) (*DB, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	db := &DB{
		opts:        opts,
		env:         opts.Env,
		mem:         newSkiplist(opts.Seed),
		flushPool:   vclock.NewPool("lsm-flush", opts.FlushWorkers),
		compactPool: vclock.NewPool("lsm-compact", opts.CompactWorkers),
	}
	if opts.RateLimitMBps > 0 {
		db.rate = vclock.NewResource("lsm-rate")
	}
	return db, nil
}

// Stats returns a snapshot of tree statistics.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := db.stats
	s.TablesL0, s.TablesL1, s.TablesL2 = len(db.l0), len(db.l1), len(db.l2)
	return s
}

// Levels reports the current table counts per level (L0, L1, L2).
func (db *DB) Levels() [3]int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return [3]int{len(db.l0), len(db.l1), len(db.l2)}
}

// Put stores key→value. The returned time includes any write stall.
func (db *DB) Put(now vclock.Time, key, value []byte) (vclock.Time, error) {
	return db.write(now, key, value, false)
}

// Delete writes a tombstone for key.
func (db *DB) Delete(now vclock.Time, key []byte) (vclock.Time, error) {
	return db.write(now, key, nil, true)
}

func (db *DB) write(now vclock.Time, key, value []byte, del bool) (vclock.Time, error) {
	if len(key) == 0 {
		return now, errors.New("lsm: empty key")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	now = now.Add(db.opts.CPUPerOp)
	db.seq++
	db.mem.insert(key, db.seq, value, del)
	if del {
		db.stats.Deletes++
	} else {
		db.stats.Puts++
	}
	if db.mem.size >= db.opts.MemtableBytes {
		var err error
		if now, err = db.rotateLocked(now); err != nil {
			return now, err
		}
	}
	return now, nil
}

// rotateLocked turns the active memtable into an immutable one and
// flushes it in the background. The caller's clock advances only when
// it must stall: too many queued immutable memtables, or too many L0
// files (RocksDB's stop-writes conditions).
func (db *DB) rotateLocked(now vclock.Time) (vclock.Time, error) {
	// Prune memtables whose flushes have completed by now.
	keep := db.imms[:0]
	for _, im := range db.imms {
		if im.end > now {
			keep = append(keep, im)
		}
	}
	db.imms = keep
	if len(db.imms) >= db.opts.MaxImmutables {
		// All write buffers are full: stall until the earliest pending
		// flush completes.
		earliest := db.imms[0].end
		for _, im := range db.imms[1:] {
			if im.end < earliest {
				earliest = im.end
			}
		}
		db.stats.StallTime += earliest.Sub(now)
		now = earliest
		keep = db.imms[:0]
		for _, im := range db.imms {
			if im.end > now {
				keep = append(keep, im)
			}
		}
		db.imms = keep
	}
	if len(db.l0) >= db.opts.L0StallTrigger && db.compactEnd > now {
		// Too many L0 files: stop writes until compaction catches up.
		db.stats.StallTime += db.compactEnd.Sub(now)
		now = db.compactEnd
	}
	imm := db.mem
	db.mem = newSkiplist(db.opts.Seed + int64(db.seq))

	// Execute the flush inline, accounting its time on a flush worker.
	start := vclock.Max(now, db.flushPool.NextFree())
	clock := start
	var entries []Entry
	for n := imm.first(); n != nil; n = n.next[0] {
		entries = append(entries, Entry{Key: n.key, Seq: n.seq, Value: n.value, Del: n.del})
	}
	metas, end, err := buildTables(db.env, clock, &sliceIterator{entries: entries}, db.opts.BloomBitsPerKey, false)
	if err != nil {
		return now, fmt.Errorf("lsm: flush: %w", err)
	}
	var bytesOut int64
	for _, m := range metas {
		bytesOut += m.Bytes
	}
	if db.rate != nil {
		_, rEnd := db.rate.Acquire(start, vclock.DurationFor(bytesOut, db.opts.RateLimitMBps))
		end = vclock.Max(end, rEnd)
	}
	db.flushPool.Acquire(start, end.Sub(start))
	// Newest tables first in L0.
	db.l0 = append(append([]*TableMeta(nil), metas...), db.l0...)
	db.imms = append([]immEntry{{table: imm, end: end}}, db.imms...)
	db.lastFlushEnd = end
	db.stats.Flushes++
	db.stats.BytesFlushed += bytesOut

	return now, db.maybeCompactLocked(now)
}

// Flush forces the active memtable out (used by benchmarks to settle).
func (db *DB) Flush(now vclock.Time) (vclock.Time, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.mem.count == 0 {
		return now, nil
	}
	now, err := db.rotateLocked(now)
	if err != nil {
		return now, err
	}
	if db.lastFlushEnd > now {
		now = db.lastFlushEnd
	}
	db.imms = nil
	return now, nil
}

// WaitIdle advances the clock past all background work (benchmarks).
func (db *DB) WaitIdle(now vclock.Time) vclock.Time {
	db.mu.Lock()
	defer db.mu.Unlock()
	now = vclock.Max(now, db.lastFlushEnd)
	now = vclock.Max(now, db.compactEnd)
	return now
}

// maybeCompactLocked runs the leveled compaction policy.
func (db *DB) maybeCompactLocked(now vclock.Time) error {
	if len(db.l0) >= db.opts.L0CompactTrigger {
		if err := db.compactL0Locked(now); err != nil {
			return err
		}
	}
	var l1Bytes int64
	for _, t := range db.l1 {
		l1Bytes += t.Bytes
	}
	if l1Bytes > db.opts.L1TargetBytes && len(db.l1) > 0 {
		if err := db.compactL1Locked(now); err != nil {
			return err
		}
	}
	return nil
}

// compactL0Locked first moves every L0 table that overlaps neither its
// L0 siblings nor L1 straight into L1 (a trivial move, no I/O — the
// optimization that makes sequential fills cheap in RocksDB), then
// merges whatever remains with the overlapping L1 tables.
func (db *DB) compactL0Locked(now vclock.Time) error {
	var moved, staying []*TableMeta
	for i, t := range db.l0 {
		clean := true
		for j, o := range db.l0 {
			if i != j && t.Overlaps(o.Smallest, o.Largest) {
				clean = false
				break
			}
		}
		if clean {
			for _, o := range db.l1 {
				if t.Overlaps(o.Smallest, o.Largest) {
					clean = false
					break
				}
			}
		}
		if clean {
			moved = append(moved, t)
		} else {
			staying = append(staying, t)
		}
	}
	if len(moved) > 0 {
		db.l1 = append(db.l1, moved...)
		sort.Slice(db.l1, func(i, j int) bool {
			return bytes.Compare(db.l1[i].Smallest, db.l1[j].Smallest) < 0
		})
		db.l0 = staying
		db.stats.TrivialMoves += int64(len(moved))
	}
	if len(db.l0) < db.opts.L0CompactTrigger {
		return nil
	}
	inputs := append([]*TableMeta(nil), db.l0...) // newest first
	var lo, hi []byte
	for _, t := range inputs {
		if lo == nil || bytes.Compare(t.Smallest, lo) < 0 {
			lo = t.Smallest
		}
		if hi == nil || bytes.Compare(t.Largest, hi) > 0 {
			hi = t.Largest
		}
	}
	var keepL1, inL1 []*TableMeta
	for _, t := range db.l1 {
		if t.Overlaps(lo, hi) {
			inL1 = append(inL1, t)
		} else {
			keepL1 = append(keepL1, t)
		}
	}
	start := vclock.Max(now, db.compactPool.NextFree())
	merged := append(append([]*TableMeta(nil), inputs...), inL1...)
	metas, end, err := db.mergeLocked(start, merged, false)
	if err != nil {
		return fmt.Errorf("lsm: L0 compaction: %w", err)
	}
	clock := end
	var bytesOut int64
	for _, m := range metas {
		bytesOut += m.Bytes
	}
	if db.rate != nil {
		_, rEnd := db.rate.Acquire(start, vclock.DurationFor(bytesOut, db.opts.RateLimitMBps))
		clock = vclock.Max(clock, rEnd)
	}
	// Delete inputs (chunk resets on LightLSM: §4.3 "Each SSTable
	// deletion only causes chunk erases").
	for _, t := range merged {
		if clock, err = db.env.DeleteTable(clock, t.Handle); err != nil {
			return err
		}
	}
	db.compactPool.Acquire(start, clock.Sub(start))
	db.compactEnd = vclock.Max(db.compactEnd, clock)
	db.l0 = nil
	db.l1 = append(keepL1, metas...)
	sort.Slice(db.l1, func(i, j int) bool {
		return bytes.Compare(db.l1[i].Smallest, db.l1[j].Smallest) < 0
	})
	db.stats.Compactions++
	db.stats.BytesCompacted += bytesOut
	return nil
}

// compactL1Locked spills one L1 table (round-robin) into L2, dropping
// tombstones at the bottom.
func (db *DB) compactL1Locked(now vclock.Time) error {
	if len(db.l1) == 0 {
		return nil
	}
	db.l1Cursor %= len(db.l1)
	victim := db.l1[db.l1Cursor]
	rest := append([]*TableMeta(nil), db.l1[:db.l1Cursor]...)
	rest = append(rest, db.l1[db.l1Cursor+1:]...)

	var keepL2, inL2 []*TableMeta
	for _, t := range db.l2 {
		if t.Overlaps(victim.Smallest, victim.Largest) {
			inL2 = append(inL2, t)
		} else {
			keepL2 = append(keepL2, t)
		}
	}
	start := vclock.Max(now, db.compactPool.NextFree())
	merged := append([]*TableMeta{victim}, inL2...)
	metas, end, err := db.mergeLocked(start, merged, true)
	if err != nil {
		return fmt.Errorf("lsm: L1 compaction: %w", err)
	}
	clock := end
	var bytesOut int64
	for _, m := range metas {
		bytesOut += m.Bytes
	}
	if db.rate != nil {
		_, rEnd := db.rate.Acquire(start, vclock.DurationFor(bytesOut, db.opts.RateLimitMBps))
		clock = vclock.Max(clock, rEnd)
	}
	for _, t := range merged {
		if clock, err = db.env.DeleteTable(clock, t.Handle); err != nil {
			return err
		}
	}
	db.compactPool.Acquire(start, clock.Sub(start))
	db.compactEnd = vclock.Max(db.compactEnd, clock)
	db.l1 = rest
	db.l1Cursor++
	db.l2 = append(keepL2, metas...)
	sort.Slice(db.l2, func(i, j int) bool {
		return bytes.Compare(db.l2[i].Smallest, db.l2[j].Smallest) < 0
	})
	db.stats.Compactions++
	db.stats.BytesCompacted += bytesOut
	return nil
}

// mergeLocked merges inputs (newest first) into fresh tables starting
// at start, either host-side — streaming every input block over the
// environment and rebuilding outputs locally — or through the
// Compactor offload hook, which runs the same merge inside the device
// and returns only the output metadata. Both paths produce identical
// tables; they differ in where the merge executes and what crosses the
// host link.
func (db *DB) mergeLocked(start vclock.Time, inputs []*TableMeta, dropDeletes bool) ([]*TableMeta, vclock.Time, error) {
	if db.opts.Compactor != nil {
		hs := make([]TableHandle, len(inputs))
		for i, t := range inputs {
			hs[i] = t.Handle
		}
		return db.opts.Compactor(start, hs, db.opts.BloomBitsPerKey, dropDeletes)
	}
	clock := start
	its := make([]entryIterator, 0, len(inputs))
	for _, t := range inputs {
		its = append(its, newTableIterator(db.env, t, &clock))
	}
	return buildTables(db.env, clock, newDedupIterator(newMergeIterator(its)),
		db.opts.BloomBitsPerKey, dropDeletes)
}

// Get returns the newest value for key. Each table probe costs a bloom
// check; a positive probe reads one whole block — the paper's config
// (no block cache, no compression) makes every random read at least one
// 96 KB block transfer.
func (db *DB) Get(now vclock.Time, key []byte) ([]byte, vclock.Time, error) {
	return db.GetInto(now, key, nil)
}

// GetInto is Get with a caller-owned result buffer: the value is
// copied into dst (grown as needed, capacity reused), so steady-state
// read loops allocate nothing. On a miss the returned slice is nil.
func (db *DB) GetInto(now vclock.Time, key, dst []byte) ([]byte, vclock.Time, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	now = now.Add(db.opts.CPUPerOp)
	snapshot := db.seq
	db.stats.Gets++

	if v, del, found := db.mem.get(key, snapshot); found {
		return db.answer(v, del, now, dst)
	}
	for _, im := range db.imms {
		if im.end <= now {
			continue // flush already completed: the table serves it
		}
		if v, del, found := im.table.get(key, snapshot); found {
			return db.answer(v, del, now, dst)
		}
	}
	// L0: newest first, ranges overlap.
	for _, t := range db.l0 {
		v, del, found, end, err := db.searchTable(now, t, key)
		if err != nil {
			return nil, end, err
		}
		now = end
		if found {
			return db.answer(v, del, now, dst)
		}
	}
	for _, level := range [][]*TableMeta{db.l1, db.l2} {
		idx := sort.Search(len(level), func(i int) bool {
			return bytes.Compare(level[i].Largest, key) >= 0
		})
		if idx < len(level) && level[idx].Overlaps(key, key) {
			v, del, found, end, err := db.searchTable(now, level[idx], key)
			if err != nil {
				return nil, end, err
			}
			now = end
			if found {
				return db.answer(v, del, now, dst)
			}
		}
	}
	return nil, now, ErrNotFound
}

func (db *DB) answer(v []byte, del bool, now vclock.Time, dst []byte) ([]byte, vclock.Time, error) {
	if del {
		return nil, now, ErrNotFound
	}
	if cap(dst) < len(v) {
		dst = make([]byte, len(v))
	} else {
		dst = dst[:len(v)]
	}
	copy(dst, v)
	return dst, now, nil
}

// searchTable probes one table for key. The returned value aliases the
// DB's reusable read buffer (valid until the next searchTable call);
// answer copies it before it escapes.
func (db *DB) searchTable(now vclock.Time, t *TableMeta, key []byte) (v []byte, del, found bool, end vclock.Time, err error) {
	now = now.Add(200) // bloom probe CPU
	if !t.Filter.mayContain(key) {
		db.stats.BloomSkips++
		return nil, false, false, now, nil
	}
	blockIdx := t.blockFor(key)
	if blockIdx < 0 {
		return nil, false, false, now, nil
	}
	if db.opts.Lookup != nil {
		// Offloaded probe: the device searches the block in place and
		// only the value crosses the host link.
		v, del, found, end, err = db.opts.Lookup(now, t.Handle, blockIdx, key)
		if err != nil {
			return nil, false, false, end, err
		}
		db.stats.BlockReads++
		return v, del, found, end, nil
	}
	if len(db.readBuf) < db.env.BlockSize() {
		db.readBuf = make([]byte, db.env.BlockSize())
	}
	buf := db.readBuf
	now, err = db.env.ReadBlock(now, t.Handle, blockIdx, buf)
	if err != nil {
		return nil, false, false, now, err
	}
	db.stats.BlockReads++
	v, del, found = searchBlock(buf, key)
	return v, del, found, now, nil
}

// Iterator streams live keys in order, merging all levels. It snapshots
// the table lists at creation; block read time accrues to the clock
// passed to Next.
type Iterator struct {
	db    *DB
	merge *dedupIterator
	clock *vclock.Time
}

// NewIterator opens an iterator at the current version. The iterator
// shares *clock: every block read advances it.
func (db *DB) NewIterator(clock *vclock.Time) *Iterator {
	db.mu.Lock()
	defer db.mu.Unlock()
	var its []entryIterator
	its = append(its, &memIterator{node: db.mem.first()})
	for _, im := range db.imms {
		if im.end <= *clock {
			continue // flush already completed: its table is in L0
		}
		its = append(its, &memIterator{node: im.table.first()})
	}
	for _, t := range db.l0 {
		its = append(its, newTableIterator(db.env, t, clock))
	}
	for _, level := range [][]*TableMeta{db.l1, db.l2} {
		for _, t := range level {
			its = append(its, newTableIterator(db.env, t, clock))
		}
	}
	return &Iterator{db: db, merge: newDedupIterator(newMergeIterator(its)), clock: clock}
}

// Next returns the next live key/value; ok=false at the end. The
// returned slices are zero-copy views into the iterator's buffers and
// stay valid only until the next call — copy them to retain.
func (it *Iterator) Next() (key, value []byte, ok bool) {
	for {
		e, more := it.merge.next()
		if !more {
			return nil, nil, false
		}
		*it.clock = it.clock.Add(it.db.opts.CPUPerOp)
		if e.Del {
			continue
		}
		return e.Key, e.Value, true
	}
}

// memIterator walks a skiplist.
type memIterator struct {
	node *slNode
}

func (m *memIterator) next() (Entry, bool) {
	if m.node == nil {
		return Entry{}, false
	}
	n := m.node
	m.node = n.next[0]
	return Entry{Key: n.key, Seq: n.seq, Value: n.value, Del: n.del}, true
}
