package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/vclock"
)

func testDB(t *testing.T, opts Options) *DB {
	t.Helper()
	if opts.Env == nil {
		opts.Env = NewMemEnv(16*1024, 8)
	}
	if opts.MemtableBytes == 0 {
		opts.MemtableBytes = 32 * 1024
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func key(i int) []byte   { return []byte(fmt.Sprintf("key%08d", i)) }
func value(i int) []byte { return bytes.Repeat([]byte{byte(i%250 + 1)}, 100) }

func TestPutGetMemtable(t *testing.T) {
	db := testDB(t, Options{})
	now, err := db.Put(0, key(1), value(1))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := db.Get(now, key(1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, value(1)) {
		t.Fatal("value mismatch")
	}
	if _, _, err := db.Get(now, key(2)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	db := testDB(t, Options{})
	if _, err := db.Put(0, nil, value(1)); err == nil {
		t.Fatal("empty key should fail")
	}
}

func TestOverwriteAndDelete(t *testing.T) {
	db := testDB(t, Options{})
	now := vclock.Time(0)
	var err error
	for v := 0; v < 5; v++ {
		if now, err = db.Put(now, key(7), value(v)); err != nil {
			t.Fatal(err)
		}
	}
	got, now, err := db.Get(now, key(7))
	if err != nil || !bytes.Equal(got, value(4)) {
		t.Fatalf("newest version lost: %v", err)
	}
	if now, err = db.Delete(now, key(7)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Get(now, key(7)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key visible: %v", err)
	}
}

func TestFlushToL0AndGet(t *testing.T) {
	db := testDB(t, Options{})
	now := vclock.Time(0)
	var err error
	for i := 0; i < 200; i++ {
		if now, err = db.Put(now, key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	now, err = db.Flush(now)
	if err != nil {
		t.Fatal(err)
	}
	if db.Stats().Flushes == 0 {
		t.Fatal("no flush happened")
	}
	for i := 0; i < 200; i += 17 {
		got, n2, err := db.Get(now, key(i))
		if err != nil {
			t.Fatalf("get %d after flush: %v", i, err)
		}
		if !bytes.Equal(got, value(i)) {
			t.Fatalf("key %d value mismatch", i)
		}
		now = n2
	}
	if db.Stats().BlockReads == 0 {
		t.Fatal("gets from tables should read blocks")
	}
}

func TestCompactionKeepsNewest(t *testing.T) {
	db := testDB(t, Options{MemtableBytes: 16 * 1024, L0CompactTrigger: 2})
	now := vclock.Time(0)
	var err error
	// Several rounds of overwrites force flushes and L0 compactions.
	for round := 0; round < 8; round++ {
		for i := 0; i < 100; i++ {
			if now, err = db.Put(now, key(i), value(round*1000+i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if db.Stats().Compactions == 0 {
		t.Fatal("no compaction happened")
	}
	now = db.WaitIdle(now)
	for i := 0; i < 100; i += 7 {
		got, n2, err := db.Get(now, key(i))
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !bytes.Equal(got, value(7*1000+i)) {
			t.Fatalf("key %d: stale value after compaction", i)
		}
		now = n2
	}
}

func TestTombstoneSurvivesCompaction(t *testing.T) {
	db := testDB(t, Options{MemtableBytes: 16 * 1024, L0CompactTrigger: 2})
	now := vclock.Time(0)
	var err error
	for i := 0; i < 150; i++ {
		if now, err = db.Put(now, key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if now, err = db.Delete(now, key(42)); err != nil {
		t.Fatal(err)
	}
	// Churn to force flush+compaction of the tombstone.
	for i := 150; i < 400; i++ {
		if now, err = db.Put(now, key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	now = db.WaitIdle(now)
	if _, _, err := db.Get(now, key(42)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key resurrected: %v", err)
	}
	got, _, err := db.Get(now, key(41))
	if err != nil || !bytes.Equal(got, value(41)) {
		t.Fatalf("neighbor key lost: %v", err)
	}
}

func TestIteratorSortedUniqueLive(t *testing.T) {
	db := testDB(t, Options{MemtableBytes: 16 * 1024, L0CompactTrigger: 2})
	now := vclock.Time(0)
	var err error
	const n = 300
	for i := n - 1; i >= 0; i-- { // insert in reverse order
		if now, err = db.Put(now, key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite some, delete some.
	for i := 0; i < n; i += 10 {
		if now, err = db.Put(now, key(i), value(i+5000)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 5; i < n; i += 50 {
		if now, err = db.Delete(now, key(i)); err != nil {
			t.Fatal(err)
		}
	}
	clock := db.WaitIdle(now)
	it := db.NewIterator(&clock)
	var prev []byte
	count := 0
	for {
		k, v, ok := it.Next()
		if !ok {
			break
		}
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("iterator out of order: %q after %q", k, prev)
		}
		prev = append(prev[:0], k...)
		var i int
		fmt.Sscanf(string(k), "key%d", &i)
		want := value(i)
		if i%10 == 0 {
			want = value(i + 5000)
		}
		if !bytes.Equal(v, want) {
			t.Fatalf("key %q wrong value", k)
		}
		count++
	}
	wantCount := n - len(deleted(n))
	if count != wantCount {
		t.Fatalf("iterator yielded %d keys, want %d", count, wantCount)
	}
}

func deleted(n int) []int {
	var out []int
	for i := 5; i < n; i += 50 {
		if i%10 != 0 { // overwrites after delete don't exist here; deletes at i%50==5 never overwritten
			out = append(out, i)
		}
	}
	// Deletions happened after overwrites, so all i%50==5 keys are gone.
	out = out[:0]
	for i := 5; i < n; i += 50 {
		out = append(out, i)
	}
	return out
}

func TestWriteStallsAccounted(t *testing.T) {
	// A slow env with a tiny memtable must eventually stall writers.
	env := NewMemEnv(16*1024, 4)
	env.WriteLatency = 50 * vclock.Millisecond
	db := testDB(t, Options{Env: env, MemtableBytes: 8 * 1024, L0CompactTrigger: 100, L0StallTrigger: 100})
	now := vclock.Time(0)
	var err error
	for i := 0; i < 2000; i++ {
		if now, err = db.Put(now, key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if db.Stats().StallTime == 0 {
		t.Fatal("writers never stalled against a slow env")
	}
}

func TestRateLimiterSlowsFlushes(t *testing.T) {
	run := func(mbps float64) vclock.Time {
		env := NewMemEnv(16*1024, 8)
		env.WriteLatency = 0
		db := testDB(t, Options{Env: env, MemtableBytes: 16 * 1024, RateLimitMBps: mbps})
		now := vclock.Time(0)
		var err error
		for i := 0; i < 3000; i++ {
			if now, err = db.Put(now, key(i), value(i)); err != nil {
				t.Fatal(err)
			}
		}
		return db.WaitIdle(now)
	}
	fast := run(0)   // unlimited
	slow := run(0.5) // 0.5 MB/s
	if slow <= fast {
		t.Fatalf("rate limiter had no effect: %v vs %v", fast, slow)
	}
}

func TestBloomSkipsTableReads(t *testing.T) {
	db := testDB(t, Options{MemtableBytes: 16 * 1024})
	now := vclock.Time(0)
	var err error
	for i := 0; i < 500; i++ {
		if now, err = db.Put(now, key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	now, err = db.Flush(now)
	if err != nil {
		t.Fatal(err)
	}
	// Probe many absent keys: blooms should avoid most block reads.
	before := db.Stats().BlockReads
	for i := 10000; i < 10200; i++ {
		db.Get(now, key(i))
	}
	reads := db.Stats().BlockReads - before
	if db.Stats().BloomSkips == 0 {
		t.Fatal("bloom filters never skipped")
	}
	if reads > 40 { // 200 probes, expect <10% false positives per table
		t.Fatalf("absent-key probes read %d blocks; blooms ineffective", reads)
	}
}

func TestLevelsPopulate(t *testing.T) {
	db := testDB(t, Options{MemtableBytes: 16 * 1024, L0CompactTrigger: 2, L1TargetBytes: 64 * 1024})
	now := vclock.Time(0)
	var err error
	for i := 0; i < 4000; i++ {
		if now, err = db.Put(now, key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	levels := db.Levels()
	if levels[1] == 0 && levels[2] == 0 {
		t.Fatalf("levels = %v; compaction never populated L1/L2", levels)
	}
	// The paper's setup ends fill-sequential with 3 levels on disk.
	if levels[2] == 0 {
		t.Logf("L2 empty (levels=%v); acceptable for small fills", levels)
	}
}

// Property: the DB agrees with a model map under random workloads.
func TestDBModelProperty(t *testing.T) {
	f := func(ops []struct {
		K   uint16
		V   uint16
		Del bool
	}) bool {
		db := testDB(t, Options{MemtableBytes: 8 * 1024, L0CompactTrigger: 2})
		model := make(map[string][]byte)
		now := vclock.Time(0)
		var err error
		for _, op := range ops {
			k := key(int(op.K % 64))
			if op.Del {
				if now, err = db.Delete(now, k); err != nil {
					return false
				}
				delete(model, string(k))
			} else {
				v := value(int(op.V))
				if now, err = db.Put(now, k, v); err != nil {
					return false
				}
				model[string(k)] = v
			}
		}
		now = db.WaitIdle(now)
		for k, want := range model {
			got, n2, err := db.Get(now, []byte(k))
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
			now = n2
		}
		// Absent keys answer NotFound.
		for i := 100; i < 110; i++ {
			if _, _, err := db.Get(now, key(i)); !errors.Is(err, ErrNotFound) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSkiplistOrdering(t *testing.T) {
	s := newSkiplist(1)
	s.insert([]byte("b"), 1, []byte("b1"), false)
	s.insert([]byte("a"), 2, []byte("a2"), false)
	s.insert([]byte("a"), 5, []byte("a5"), false)
	s.insert([]byte("c"), 3, nil, true)
	// Internal order: a@5, a@2, b@1, c@3.
	n := s.first()
	wantKeys := []string{"a", "a", "b", "c"}
	wantSeqs := []uint64{5, 2, 1, 3}
	for i := 0; n != nil; i++ {
		if string(n.key) != wantKeys[i] || n.seq != wantSeqs[i] {
			t.Fatalf("position %d: %s@%d", i, n.key, n.seq)
		}
		n = n.next[0]
	}
	// get returns the newest visible version.
	v, del, found := s.get([]byte("a"), 10)
	if !found || del || string(v) != "a5" {
		t.Fatalf("get a@10: %q %v %v", v, del, found)
	}
	// Snapshot reads see older versions.
	v, _, found = s.get([]byte("a"), 3)
	if !found || string(v) != "a2" {
		t.Fatalf("get a@3: %q", v)
	}
	if _, _, found := s.get([]byte("zz"), 10); found {
		t.Fatal("absent key found")
	}
	if _, del, _ := s.get([]byte("c"), 10); !del {
		t.Fatal("tombstone lost")
	}
}

func TestBloomFilterBasics(t *testing.T) {
	keys := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	b := newBloomFromKeys(keys, 10)
	for _, k := range keys {
		if !b.mayContain(k) {
			t.Fatalf("false negative on %q", k)
		}
	}
	// Round-trip through marshal.
	b2 := unmarshalBloom(b.marshal())
	for _, k := range keys {
		if !b2.mayContain(k) {
			t.Fatalf("false negative after round-trip on %q", k)
		}
	}
	fp := 0
	for i := 0; i < 1000; i++ {
		if b.mayContain(key(i)) {
			fp++
		}
	}
	if fp > 100 {
		t.Fatalf("false positive rate %d/1000 too high", fp)
	}
	// nil filter answers true (no filter = must check).
	var nilB *bloom
	if !nilB.mayContain([]byte("x")) {
		t.Fatal("nil bloom must not skip")
	}
}

func TestBlockEncodeDecode(t *testing.T) {
	var buf []byte
	var err error
	entries := []Entry{
		{Key: []byte("a"), Seq: 3, Value: []byte("va")},
		{Key: []byte("b"), Seq: 2, Del: true},
		{Key: []byte("c"), Seq: 1, Value: bytes.Repeat([]byte("x"), 100)},
	}
	for _, e := range entries {
		buf, err = appendEntry(buf, e, 4096)
		if err != nil {
			t.Fatal(err)
		}
	}
	padded := make([]byte, 4096)
	copy(padded, buf)
	got := decodeBlock(padded)
	if len(got) != 3 {
		t.Fatalf("decoded %d entries", len(got))
	}
	for i, e := range entries {
		if !bytes.Equal(got[i].Key, e.Key) || got[i].Seq != e.Seq || got[i].Del != e.Del ||
			!bytes.Equal(got[i].Value, e.Value) {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, got[i], e)
		}
	}
	// Block-full detection.
	big := Entry{Key: []byte("k"), Value: bytes.Repeat([]byte("y"), 5000)}
	if _, err := appendEntry(nil, big, 4096); !errors.Is(err, errBlockFull) {
		t.Fatalf("oversized entry: %v", err)
	}
}

func TestMemEnvLifecycle(t *testing.T) {
	env := NewMemEnv(4096, 4)
	w, err := env.CreateTable(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(0, make([]byte, 100)); err == nil {
		t.Fatal("short block should fail")
	}
	now := vclock.Time(0)
	for i := 0; i < 4; i++ {
		if now, err = w.Append(now, make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Append(now, make([]byte, 4096)); err == nil {
		t.Fatal("table overflow should fail")
	}
	h, now, err := w.Commit(now)
	if err != nil || h.Blocks != 4 {
		t.Fatalf("commit: %+v %v", h, err)
	}
	if _, _, err := w.Commit(now); err == nil {
		t.Fatal("double commit should fail")
	}
	dst := make([]byte, 4096)
	if _, err := env.ReadBlock(now, h, 0, dst); err != nil {
		t.Fatal(err)
	}
	if _, err := env.ReadBlock(now, h, 9, dst); err == nil {
		t.Fatal("out-of-range block should fail")
	}
	if _, err := env.DeleteTable(now, h); err != nil {
		t.Fatal(err)
	}
	if _, err := env.ReadBlock(now, h, 0, dst); err == nil {
		t.Fatal("read of deleted table should fail")
	}
	if env.TableCount() != 0 {
		t.Fatal("table leak")
	}
}
