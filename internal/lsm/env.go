// Package lsm is a miniature RocksDB: a log-structured merge tree with a
// skiplist memtable, block-based SSTables with bloom filters, leveled
// compaction, write stalls and a rate limiter. It exists to reproduce
// the paper's db_bench experiments (Figures 5 and 6): the LSM runs over
// an Env, and the LightLSM Env (internal/lightlsm) places SSTables on an
// Open-Channel SSD with horizontal or vertical placement.
//
// All timing is virtual: operations take a vclock.Time and return their
// completion instant. Background work (flush, compaction) executes
// inline but is accounted on dedicated worker resources, so writers
// stall in virtual time exactly when RocksDB would (memtable full, too
// many L0 files).
package lsm

import (
	"fmt"
	"sync"

	"repro/internal/vclock"
)

// TableID identifies an SSTable within an Env.
type TableID uint64

// TableHandle names a stored SSTable.
type TableHandle struct {
	ID     TableID
	Blocks int // number of fixed-size blocks
}

// Env is the storage environment the LSM runs on (§4.2: "LightLSM
// exposes Open-Channel SSDs as a RocksDB environment supporting SSTable
// flush and block reads").
type Env interface {
	// BlockSize is the unit of transfer for reads and writes (§4.2: on a
	// dual-plane TLC drive it must be a multiple of 96 KB).
	BlockSize() int
	// MaxTableBlocks is the SSTable capacity in blocks.
	MaxTableBlocks() int
	// CreateTable starts an SSTable flush.
	CreateTable(now vclock.Time) (TableWriter, error)
	// ReadBlock reads one block of a committed table into dst.
	ReadBlock(now vclock.Time, h TableHandle, block int, dst []byte) (vclock.Time, error)
	// DeleteTable releases a table's storage (chunk resets on LightLSM).
	DeleteTable(now vclock.Time, h TableHandle) (vclock.Time, error)
}

// TableWriter accumulates the blocks of one SSTable flush and commits
// them atomically.
type TableWriter interface {
	// Append writes the next block (exactly BlockSize bytes).
	Append(now vclock.Time, block []byte) (vclock.Time, error)
	// Commit atomically publishes the table.
	Commit(now vclock.Time) (TableHandle, vclock.Time, error)
	// Abort discards the table.
	Abort(now vclock.Time) (vclock.Time, error)
}

// MemEnv is a RAM-backed Env with a flat per-block latency, used by unit
// tests and as the "POSIX file system" baseline.
type MemEnv struct {
	blockSize    int
	tableBlocks  int
	ReadLatency  vclock.Duration // per block
	WriteLatency vclock.Duration

	mu     sync.Mutex
	nextID TableID
	tables map[TableID][][]byte
}

// NewMemEnv creates a memory environment.
func NewMemEnv(blockSize, tableBlocks int) *MemEnv {
	return &MemEnv{
		blockSize:    blockSize,
		tableBlocks:  tableBlocks,
		ReadLatency:  100 * vclock.Microsecond,
		WriteLatency: 50 * vclock.Microsecond,
		tables:       make(map[TableID][][]byte),
	}
}

// BlockSize implements Env.
func (e *MemEnv) BlockSize() int { return e.blockSize }

// MaxTableBlocks implements Env.
func (e *MemEnv) MaxTableBlocks() int { return e.tableBlocks }

// CreateTable implements Env.
func (e *MemEnv) CreateTable(now vclock.Time) (TableWriter, error) {
	return &memWriter{env: e}, nil
}

type memWriter struct {
	env    *MemEnv
	blocks [][]byte
	done   bool
}

func (w *memWriter) Append(now vclock.Time, block []byte) (vclock.Time, error) {
	if w.done {
		return now, fmt.Errorf("lsm: append to committed table")
	}
	if len(block) != w.env.blockSize {
		return now, fmt.Errorf("lsm: block is %d bytes, want %d", len(block), w.env.blockSize)
	}
	if len(w.blocks) >= w.env.tableBlocks {
		return now, fmt.Errorf("lsm: table overflow (%d blocks)", w.env.tableBlocks)
	}
	cp := make([]byte, len(block))
	copy(cp, block)
	w.blocks = append(w.blocks, cp)
	return now.Add(w.env.WriteLatency), nil
}

func (w *memWriter) Commit(now vclock.Time) (TableHandle, vclock.Time, error) {
	if w.done {
		return TableHandle{}, now, fmt.Errorf("lsm: double commit")
	}
	w.done = true
	e := w.env
	e.mu.Lock()
	defer e.mu.Unlock()
	e.nextID++
	id := e.nextID
	e.tables[id] = w.blocks
	return TableHandle{ID: id, Blocks: len(w.blocks)}, now, nil
}

func (w *memWriter) Abort(now vclock.Time) (vclock.Time, error) {
	w.done = true
	w.blocks = nil
	return now, nil
}

// ReadBlock implements Env.
func (e *MemEnv) ReadBlock(now vclock.Time, h TableHandle, block int, dst []byte) (vclock.Time, error) {
	e.mu.Lock()
	blocks, ok := e.tables[h.ID]
	e.mu.Unlock()
	if !ok {
		return now, fmt.Errorf("lsm: table %d not found", h.ID)
	}
	if block < 0 || block >= len(blocks) {
		return now, fmt.Errorf("lsm: block %d out of range (table has %d)", block, len(blocks))
	}
	copy(dst, blocks[block])
	return now.Add(e.ReadLatency), nil
}

// DeleteTable implements Env.
func (e *MemEnv) DeleteTable(now vclock.Time, h TableHandle) (vclock.Time, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.tables, h.ID)
	return now, nil
}

// TableCount reports live tables (tests).
func (e *MemEnv) TableCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.tables)
}
