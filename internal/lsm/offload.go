package lsm

import (
	"encoding/binary"
	"fmt"

	"repro/internal/vclock"
)

// This file is the LSM side of the computational-storage subsystem
// (internal/offload): the primitives a device-resident engine needs to
// resolve point lookups and run compactions without the host. They are
// deliberately thin exports over the same block-search and
// merge/build machinery the host-side paths use, so an offloaded
// operation produces bit-identical tables and values.

// SearchBlock scans one raw SSTable block for key in place — the
// in-device half of an offloaded point lookup (OpOffloadGet). The
// returned value aliases block.
func SearchBlock(block, key []byte) (value []byte, del, found bool) {
	return searchBlock(block, key)
}

// MergeTables merges the given committed tables into fresh tables on
// env, newest-first inputs shadowing older ones, and returns the output
// metadata — the device-side half of an offloaded compaction
// (OpOffloadCompact). It runs the exact iterator/builder machinery of
// the host-side compaction, so outputs are bit-identical to a host
// merge of the same inputs; only where it executes (and what crosses
// the host link) differs. Iteration needs nothing beyond each input's
// handle: block indexes and entry order are self-describing.
func MergeTables(env Env, now vclock.Time, inputs []TableHandle, bitsPerKey int, dropDeletes bool) ([]*TableMeta, vclock.Time, error) {
	clock := now
	its := make([]entryIterator, 0, len(inputs))
	for _, h := range inputs {
		its = append(its, newTableIterator(env, &TableMeta{Handle: h}, &clock))
	}
	return buildTables(env, clock, newDedupIterator(newMergeIterator(its)), bitsPerKey, dropDeletes)
}

// Marshal serializes the table metadata — handle, key range, block
// index, bloom filter, counters — so an offloaded compaction can
// return its outputs' metadata through a command result instead of the
// host rebuilding it by scanning the tables.
func (t *TableMeta) Marshal() []byte {
	n := 8 + 4 + 4 + 8 // handle id, blocks, entries, bytes
	n += 4 + len(t.Smallest)
	n += 4 + len(t.Largest)
	var filter []byte
	if t.Filter != nil {
		filter = t.Filter.marshal()
	}
	n += 4 + len(filter)
	n += 4
	for _, k := range t.FirstKeys {
		n += 4 + len(k)
	}
	out := make([]byte, 0, n)
	var u32 [4]byte
	var u64 [8]byte
	putBytes := func(b []byte) {
		binary.LittleEndian.PutUint32(u32[:], uint32(len(b)))
		out = append(out, u32[:]...)
		out = append(out, b...)
	}
	binary.LittleEndian.PutUint64(u64[:], uint64(t.Handle.ID))
	out = append(out, u64[:]...)
	binary.LittleEndian.PutUint32(u32[:], uint32(t.Handle.Blocks))
	out = append(out, u32[:]...)
	binary.LittleEndian.PutUint32(u32[:], uint32(t.Entries))
	out = append(out, u32[:]...)
	binary.LittleEndian.PutUint64(u64[:], uint64(t.Bytes))
	out = append(out, u64[:]...)
	putBytes(t.Smallest)
	putBytes(t.Largest)
	putBytes(filter)
	binary.LittleEndian.PutUint32(u32[:], uint32(len(t.FirstKeys)))
	out = append(out, u32[:]...)
	for _, k := range t.FirstKeys {
		putBytes(k)
	}
	return out
}

// UnmarshalTableMeta parses a Marshal frame.
func UnmarshalTableMeta(b []byte) (*TableMeta, error) {
	bad := fmt.Errorf("lsm: malformed table meta (%d bytes)", len(b))
	off := 0
	need := func(n int) bool { return off+n <= len(b) }
	takeBytes := func() ([]byte, bool) {
		if !need(4) {
			return nil, false
		}
		l := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if l < 0 || !need(l) {
			return nil, false
		}
		v := b[off : off+l]
		off += l
		if len(v) == 0 {
			return nil, true
		}
		return append([]byte(nil), v...), true
	}
	if !need(24) {
		return nil, bad
	}
	t := &TableMeta{}
	t.Handle.ID = TableID(binary.LittleEndian.Uint64(b[off:]))
	t.Handle.Blocks = int(binary.LittleEndian.Uint32(b[off+8:]))
	t.Entries = int(binary.LittleEndian.Uint32(b[off+12:]))
	t.Bytes = int64(binary.LittleEndian.Uint64(b[off+16:]))
	off += 24
	var ok bool
	if t.Smallest, ok = takeBytes(); !ok {
		return nil, bad
	}
	if t.Largest, ok = takeBytes(); !ok {
		return nil, bad
	}
	var filter []byte
	if filter, ok = takeBytes(); !ok {
		return nil, bad
	}
	if len(filter) > 0 {
		t.Filter = unmarshalBloom(filter)
	}
	if !need(4) {
		return nil, bad
	}
	count := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if count < 0 || count > len(b) {
		return nil, bad
	}
	if count > 0 {
		t.FirstKeys = make([][]byte, count)
		for i := range t.FirstKeys {
			if t.FirstKeys[i], ok = takeBytes(); !ok {
				return nil, bad
			}
		}
	}
	if off != len(b) {
		return nil, bad
	}
	return t, nil
}
