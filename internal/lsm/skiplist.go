package lsm

import (
	"bytes"
	"math/rand"
)

const maxHeight = 12

// skiplist is an ordered map from internal keys to values. Internal
// ordering: user key ascending, then sequence number descending, so the
// newest version of a key comes first.
//
// Nodes and key/value bytes are carved out of chunked arenas owned by
// the skiplist: memtables live briefly and die wholesale, so per-insert
// allocations would only feed the garbage collector. Pointers into a
// chunk stay valid because chunks are never grown in place — a full
// chunk is abandoned (kept alive by the nodes pointing into it) and a
// fresh one started.
type skiplist struct {
	head   *slNode
	height int
	rng    *rand.Rand
	size   int64 // approximate bytes
	count  int

	nodes []slNode // current node arena chunk
	bytes []byte   // current key/value arena chunk
}

const (
	nodeChunk    = 512       // nodes per arena chunk
	byteChunkMin = 64 * 1024 // minimum key/value arena chunk size
)

// newNode carves one node out of the arena.
func (s *skiplist) newNode() *slNode {
	if len(s.nodes) == cap(s.nodes) {
		s.nodes = make([]slNode, 0, nodeChunk)
	}
	s.nodes = append(s.nodes, slNode{})
	return &s.nodes[len(s.nodes)-1]
}

// copyBytes stores a copy of b in the arena and returns it.
func (s *skiplist) copyBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	if cap(s.bytes)-len(s.bytes) < len(b) {
		n := byteChunkMin
		if len(b) > n {
			n = len(b)
		}
		s.bytes = make([]byte, 0, n)
	}
	off := len(s.bytes)
	s.bytes = append(s.bytes, b...)
	return s.bytes[off : off+len(b) : off+len(b)]
}

type slNode struct {
	key   []byte
	seq   uint64
	value []byte // nil means tombstone
	del   bool
	next  [maxHeight]*slNode
}

func newSkiplist(seed int64) *skiplist {
	return &skiplist{
		head:   &slNode{},
		height: 1,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// cmpInternal orders by (key asc, seq desc).
func cmpInternal(aKey []byte, aSeq uint64, bKey []byte, bSeq uint64) int {
	if c := bytes.Compare(aKey, bKey); c != 0 {
		return c
	}
	switch {
	case aSeq > bSeq:
		return -1
	case aSeq < bSeq:
		return 1
	default:
		return 0
	}
}

func (s *skiplist) randomHeight() int {
	h := 1
	for h < maxHeight && s.rng.Intn(4) == 0 {
		h++
	}
	return h
}

// insert adds an entry. Duplicate (key, seq) pairs are not expected.
func (s *skiplist) insert(key []byte, seq uint64, value []byte, del bool) {
	var prev [maxHeight]*slNode
	x := s.head
	for level := s.height - 1; level >= 0; level-- {
		for x.next[level] != nil && cmpInternal(x.next[level].key, x.next[level].seq, key, seq) < 0 {
			x = x.next[level]
		}
		prev[level] = x
	}
	h := s.randomHeight()
	if h > s.height {
		for level := s.height; level < h; level++ {
			prev[level] = s.head
		}
		s.height = h
	}
	n := s.newNode()
	n.key = s.copyBytes(key)
	n.seq = seq
	n.del = del
	if !del {
		n.value = s.copyBytes(value)
	}
	for level := 0; level < h; level++ {
		n.next[level] = prev[level].next[level]
		prev[level].next[level] = n
	}
	s.size += int64(len(key) + len(value) + 32)
	s.count++
}

// get returns the newest version of key at or below maxSeq.
// found=false means the key is absent; del=true means tombstone.
func (s *skiplist) get(key []byte, maxSeq uint64) (value []byte, del, found bool) {
	x := s.head
	for level := s.height - 1; level >= 0; level-- {
		for x.next[level] != nil && cmpInternal(x.next[level].key, x.next[level].seq, key, maxSeq) < 0 {
			x = x.next[level]
		}
	}
	n := x.next[0]
	if n == nil || !bytes.Equal(n.key, key) || n.seq > maxSeq {
		return nil, false, false
	}
	return n.value, n.del, true
}

// first returns the first node (smallest internal key).
func (s *skiplist) first() *slNode { return s.head.next[0] }

// seek returns the first node with internal key ≥ (key, maxSeq).
func (s *skiplist) seek(key []byte, maxSeq uint64) *slNode {
	x := s.head
	for level := s.height - 1; level >= 0; level-- {
		for x.next[level] != nil && cmpInternal(x.next[level].key, x.next[level].seq, key, maxSeq) < 0 {
			x = x.next[level]
		}
	}
	return x.next[0]
}
