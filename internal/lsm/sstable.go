package lsm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/vclock"
)

// Entry is one internal LSM record.
type Entry struct {
	Key   []byte
	Seq   uint64
	Value []byte
	Del   bool
}

// Block format: repeated entries
//
//	keyLen uint16 | flagsValLen uint32 | seq uint64 | key | value
//
// keyLen == 0 terminates the block; the rest is zero padding. The high
// bit of flagsValLen marks a tombstone.
const (
	entryHeader = 2 + 4 + 8
	delFlag     = 1 << 31
)

var errBlockFull = errors.New("lsm: block full")

// appendEntry encodes e into buf if it fits within blockSize.
func appendEntry(buf []byte, e Entry, blockSize int) ([]byte, error) {
	need := entryHeader + len(e.Key) + len(e.Value)
	// Leave room for the 2-byte terminator.
	if len(buf)+need+2 > blockSize {
		return buf, errBlockFull
	}
	var hdr [entryHeader]byte
	binary.LittleEndian.PutUint16(hdr[0:], uint16(len(e.Key)))
	fv := uint32(len(e.Value))
	if e.Del {
		fv |= delFlag
	}
	binary.LittleEndian.PutUint32(hdr[2:], fv)
	binary.LittleEndian.PutUint64(hdr[6:], e.Seq)
	buf = append(buf, hdr[:]...)
	buf = append(buf, e.Key...)
	buf = append(buf, e.Value...)
	return buf, nil
}

// decodeBlockInto appends all entries of a block to dst without copying
// key or value bytes: the returned entries alias block and stay valid
// only until block's backing buffer is overwritten. The write hot path
// (compaction, scans) consumes entries before their buffer is reused,
// so the alias never escapes — this is the "zero-copy where the caller
// permits" contract of DESIGN.md.
func decodeBlockInto(dst []Entry, block []byte) []Entry {
	off := 0
	for off+entryHeader <= len(block) {
		keyLen := int(binary.LittleEndian.Uint16(block[off:]))
		if keyLen == 0 {
			break
		}
		fv := binary.LittleEndian.Uint32(block[off+2:])
		seq := binary.LittleEndian.Uint64(block[off+6:])
		valLen := int(fv &^ delFlag)
		del := fv&delFlag != 0
		off += entryHeader
		if off+keyLen+valLen > len(block) {
			break // torn block
		}
		e := Entry{
			Key: block[off : off+keyLen : off+keyLen],
			Seq: seq,
			Del: del,
		}
		off += keyLen
		if !del {
			e.Value = block[off : off+valLen : off+valLen]
		}
		off += valLen
		dst = append(dst, e)
	}
	return dst
}

// decodeBlock parses all entries of a block into freshly allocated
// key/value buffers (callers that retain entries indefinitely).
func decodeBlock(block []byte) []Entry {
	out := decodeBlockInto(nil, block)
	for i := range out {
		out[i].Key = append([]byte(nil), out[i].Key...)
		if out[i].Value != nil {
			out[i].Value = append([]byte(nil), out[i].Value...)
		}
	}
	return out
}

// searchBlock scans a block for key in place, with no decoding
// allocations. Entries are (key asc, seq desc), so the first match is
// the newest version. The returned value aliases block.
func searchBlock(block, key []byte) (value []byte, del, found bool) {
	off := 0
	for off+entryHeader <= len(block) {
		keyLen := int(binary.LittleEndian.Uint16(block[off:]))
		if keyLen == 0 {
			break
		}
		fv := binary.LittleEndian.Uint32(block[off+2:])
		valLen := int(fv &^ delFlag)
		off += entryHeader
		if off+keyLen+valLen > len(block) {
			break // torn block
		}
		if bytes.Equal(block[off:off+keyLen], key) {
			off += keyLen
			if fv&delFlag != 0 {
				return nil, true, true
			}
			return block[off : off+valLen : off+valLen], false, true
		}
		off += keyLen + valLen
	}
	return nil, false, false
}

// TableMeta is the in-memory metadata of one SSTable: block index
// (first key per block), bloom filter and key range. RocksDB keeps
// these in index/filter blocks inside the table; LightLSM holds them in
// controller RAM (they are rebuildable by scanning the table).
type TableMeta struct {
	Handle    TableHandle
	FirstKeys [][]byte
	Smallest  []byte
	Largest   []byte
	Filter    *bloom
	Entries   int
	Bytes     int64
}

// Overlaps reports whether the table's key range intersects [lo, hi].
// nil bounds mean unbounded.
func (t *TableMeta) Overlaps(lo, hi []byte) bool {
	if hi != nil && bytes.Compare(t.Smallest, hi) > 0 {
		return false
	}
	if lo != nil && bytes.Compare(t.Largest, lo) < 0 {
		return false
	}
	return true
}

// blockFor returns the index of the last block whose first key is ≤ key
// (the only block that can contain key), or -1.
func (t *TableMeta) blockFor(key []byte) int {
	lo, hi := 0, len(t.FirstKeys)-1
	ans := -1
	for lo <= hi {
		mid := (lo + hi) / 2
		if bytes.Compare(t.FirstKeys[mid], key) <= 0 {
			ans = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return ans
}

// entryIterator yields entries in internal-key order.
type entryIterator interface {
	// next returns the next entry; ok=false at exhaustion.
	next() (Entry, bool)
}

// buildTables drains iter into one or more SSTables of at most
// maxBlocks blocks each, returning their metadata. bitsPerKey sizes the
// bloom filters; dropDeletes elides tombstones (bottom level only).
// Each table flush is atomic (Commit).
func buildTables(env Env, now vclock.Time, iter entryIterator, bitsPerKey int, dropDeletes bool) ([]*TableMeta, vclock.Time, error) {
	blockSize := env.BlockSize()
	maxBlocks := env.MaxTableBlocks()
	var metas []*TableMeta
	end := now

	var (
		w          TableWriter
		meta       *TableMeta
		hashes     []uint32 // bloom hashes of the current table's keys
		block      []byte
		padded     []byte // reusable full-block staging buffer
		blockFirst []byte
		err        error
	)
	flushBlock := func() error {
		if len(block) == 0 {
			return nil
		}
		if padded == nil {
			padded = make([]byte, blockSize)
		}
		n := copy(padded, block)
		clear(padded[n:])
		if end, err = w.Append(end, padded); err != nil {
			return err
		}
		meta.FirstKeys = append(meta.FirstKeys, blockFirst)
		meta.Bytes += int64(blockSize)
		block = block[:0]
		blockFirst = nil
		return nil
	}
	finishTable := func() error {
		if w == nil {
			return nil
		}
		if err := flushBlock(); err != nil {
			return err
		}
		if meta.Entries == 0 {
			_, err := w.Abort(end)
			w, meta = nil, nil
			hashes = hashes[:0]
			return err
		}
		var h TableHandle
		if h, end, err = w.Commit(end); err != nil {
			return err
		}
		meta.Handle = h
		meta.Filter = newBloomFromHashes(hashes, bitsPerKey)
		metas = append(metas, meta)
		w, meta = nil, nil
		hashes = hashes[:0]
		return nil
	}

	for {
		e, ok := iter.next()
		if !ok {
			break
		}
		if dropDeletes && e.Del {
			continue
		}
		if w == nil {
			if w, err = env.CreateTable(end); err != nil {
				return metas, end, err
			}
			meta = &TableMeta{Smallest: append([]byte(nil), e.Key...)}
		}
		if len(block) == 0 {
			blockFirst = append([]byte(nil), e.Key...)
		}
		block, err = appendEntry(block, e, blockSize)
		if errors.Is(err, errBlockFull) {
			if err := flushBlock(); err != nil {
				return metas, end, err
			}
			if len(meta.FirstKeys) >= maxBlocks {
				if err := finishTable(); err != nil {
					return metas, end, err
				}
				if w, err = env.CreateTable(end); err != nil {
					return metas, end, err
				}
				meta = &TableMeta{Smallest: append([]byte(nil), e.Key...)}
			}
			blockFirst = append([]byte(nil), e.Key...)
			if block, err = appendEntry(block, e, blockSize); err != nil {
				return metas, end, fmt.Errorf("lsm: entry larger than a block: %w", err)
			}
		} else if err != nil {
			return metas, end, err
		}
		meta.Entries++
		meta.Largest = append(meta.Largest[:0], e.Key...)
		hashes = append(hashes, bloomHash(e.Key))
	}
	if err := finishTable(); err != nil {
		return metas, end, err
	}
	return metas, end, nil
}

// tableIterator streams a committed table's entries block by block.
// Entries are decoded zero-copy: they alias the iterator's block
// buffers. Two buffers alternate, so an entry handed out from one block
// survives the read of the next block — exactly the lifetime a merge
// heap needs when it refills a source's head after copying the previous
// one out.
type tableIterator struct {
	env      Env
	meta     *TableMeta
	now      *vclock.Time // shared clock advanced by block reads
	blockIdx int
	entries  []Entry
	pos      int
	bufs     [2][]byte
	cur      int
}

// newTableIterator creates an iterator over one table. Block read time
// accrues to *now.
func newTableIterator(env Env, meta *TableMeta, now *vclock.Time) *tableIterator {
	return &tableIterator{env: env, meta: meta, now: now}
}

func (it *tableIterator) next() (Entry, bool) {
	for it.pos >= len(it.entries) {
		if it.blockIdx >= it.meta.Handle.Blocks {
			return Entry{}, false
		}
		it.cur ^= 1
		if it.bufs[it.cur] == nil {
			it.bufs[it.cur] = make([]byte, it.env.BlockSize())
		}
		buf := it.bufs[it.cur]
		end, err := it.env.ReadBlock(*it.now, it.meta.Handle, it.blockIdx, buf)
		if err != nil {
			return Entry{}, false
		}
		*it.now = end
		it.entries = decodeBlockInto(it.entries[:0], buf)
		it.pos = 0
		it.blockIdx++
	}
	e := it.entries[it.pos]
	it.pos++
	return e, true
}

// mergeIterator merges several entryIterators in internal-key order;
// inputs must each be internally sorted. On ties (same key and seq),
// earlier inputs win (callers order inputs newest-first). Heads are
// stored by value beside a live bitmap, so advancing the merge never
// allocates (an Entry box per merged entry used to dominate the flush
// path's allocation profile).
type mergeIterator struct {
	its   []entryIterator
	heads []Entry
	live  []bool
}

func newMergeIterator(its []entryIterator) *mergeIterator {
	m := &mergeIterator{its: its, heads: make([]Entry, len(its)), live: make([]bool, len(its))}
	for i := range its {
		m.heads[i], m.live[i] = its[i].next()
	}
	return m
}

func (m *mergeIterator) next() (Entry, bool) {
	best := -1
	for i := range m.heads {
		if !m.live[i] {
			continue
		}
		if best < 0 || cmpInternal(m.heads[i].Key, m.heads[i].Seq, m.heads[best].Key, m.heads[best].Seq) < 0 {
			best = i
		}
	}
	if best < 0 {
		return Entry{}, false
	}
	e := m.heads[best]
	m.heads[best], m.live[best] = m.its[best].next()
	return e, true
}

// dedupIterator keeps only the newest version of each key.
type dedupIterator struct {
	in      entryIterator
	lastKey []byte
	primed  bool
	head    Entry
	headOK  bool
}

func newDedupIterator(in entryIterator) *dedupIterator { return &dedupIterator{in: in} }

func (d *dedupIterator) next() (Entry, bool) {
	for {
		var e Entry
		var ok bool
		if d.primed {
			e, ok = d.head, d.headOK
			d.primed = false
		} else {
			e, ok = d.in.next()
		}
		if !ok {
			return Entry{}, false
		}
		if d.lastKey != nil && bytes.Equal(e.Key, d.lastKey) {
			continue // older version of the same key
		}
		d.lastKey = append(d.lastKey[:0], e.Key...)
		return e, true
	}
}

// sliceIterator iterates a pre-built entry slice.
type sliceIterator struct {
	entries []Entry
	pos     int
}

func (s *sliceIterator) next() (Entry, bool) {
	if s.pos >= len(s.entries) {
		return Entry{}, false
	}
	e := s.entries[s.pos]
	s.pos++
	return e, true
}
