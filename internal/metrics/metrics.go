// Package metrics provides the measurement plumbing for the experiment
// harness: counters, latency histograms and virtual-time series (used for
// the throughput-over-time plots of Figure 6).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/vclock"
)

// Counter is a monotonically increasing event count, safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// Histogram records virtual durations in power-of-two buckets from 1 µs.
// It answers count, mean and approximate percentiles.
type Histogram struct {
	mu      sync.Mutex
	buckets [64]int64
	count   int64
	sum     vclock.Duration
	min     vclock.Duration
	max     vclock.Duration
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

func bucketFor(d vclock.Duration) int {
	us := int64(d) / int64(vclock.Microsecond)
	b := 0
	for us > 0 && b < 63 {
		us >>= 1
		b++
	}
	return b
}

// Observe records one duration.
func (h *Histogram) Observe(d vclock.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets[bucketFor(d)]++
	h.count++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean reports the average observed duration, or 0 when empty.
func (h *Histogram) Mean() vclock.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return vclock.Duration(int64(h.sum) / h.count)
}

// Min reports the smallest observation, or 0 when empty.
func (h *Histogram) Min() vclock.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest observation.
func (h *Histogram) Max() vclock.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Percentile reports an upper bound on the p-th percentile (p in [0,100]),
// at bucket granularity.
func (h *Histogram) Percentile(p float64) vclock.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	target := int64(math.Ceil(p / 100 * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for b, n := range h.buckets {
		seen += n
		if seen >= target {
			// Upper edge of bucket b: 2^b microseconds (bucket 0 is <1µs).
			if b == 0 {
				return vclock.Microsecond
			}
			return vclock.Duration(int64(1)<<uint(b)) * vclock.Microsecond
		}
	}
	return h.max
}

// LatencyRow renders h as the three latency cells experiment tables
// use — p50, p95 and p99 — formatted as virtual durations. An empty
// histogram renders as dashes so absent command types stay readable.
func LatencyRow(h *Histogram) []string {
	if h == nil || h.Count() == 0 {
		return []string{"-", "-", "-"}
	}
	return []string{
		h.Percentile(50).String(),
		h.Percentile(95).String(),
		h.Percentile(99).String(),
	}
}

// Timeline buckets event counts by virtual time, producing a
// throughput-versus-time series. Safe for concurrent use.
type Timeline struct {
	mu     sync.Mutex
	width  vclock.Duration
	counts map[int64]int64
}

// NewTimeline returns a timeline with the given bucket width.
func NewTimeline(bucket vclock.Duration) *Timeline {
	if bucket <= 0 {
		bucket = vclock.Second
	}
	return &Timeline{width: bucket, counts: make(map[int64]int64)}
}

// Record adds n events at virtual instant t.
func (tl *Timeline) Record(t vclock.Time, n int64) {
	if t < 0 {
		t = 0
	}
	b := int64(t) / int64(tl.width)
	tl.mu.Lock()
	tl.counts[b] += n
	tl.mu.Unlock()
}

// BucketWidth reports the configured bucket width.
func (tl *Timeline) BucketWidth() vclock.Duration { return tl.width }

// Point is one sample of a timeline series.
type Point struct {
	T    vclock.Time // bucket start
	Rate float64     // events per virtual second over the bucket
}

// Series returns the timeline as (bucket start, events/sec) points in
// time order, including zero-rate gaps between first and last bucket.
func (tl *Timeline) Series() []Point {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	if len(tl.counts) == 0 {
		return nil
	}
	keys := make([]int64, 0, len(tl.counts))
	for k := range tl.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	first, last := keys[0], keys[len(keys)-1]
	out := make([]Point, 0, last-first+1)
	secs := tl.width.Seconds()
	for b := first; b <= last; b++ {
		out = append(out, Point{
			T:    vclock.Time(b * int64(tl.width)),
			Rate: float64(tl.counts[b]) / secs,
		})
	}
	return out
}

// Total reports the total number of recorded events.
func (tl *Timeline) Total() int64 {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	var n int64
	for _, c := range tl.counts {
		n += c
	}
	return n
}

// MeanRate reports total events divided by the covered span, in events
// per virtual second. Zero when fewer than one bucket is covered.
func (tl *Timeline) MeanRate() float64 {
	s := tl.Series()
	if len(s) == 0 {
		return 0
	}
	span := float64(len(s)) * tl.width.Seconds()
	return float64(tl.Total()) / span
}

// PeakRate reports the highest per-bucket rate.
func (tl *Timeline) PeakRate() float64 {
	var peak float64
	for _, p := range tl.Series() {
		if p.Rate > peak {
			peak = p.Rate
		}
	}
	return peak
}

// Throughput is a convenience: ops completed over an interval, as ops/sec.
func Throughput(ops int64, elapsed vclock.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds()
}

// Fmt renders a rate in thousands of operations per second, matching how
// the paper reports Figure 5 ("operations/sec – in thousands").
func Fmt(rate float64) string {
	return fmt.Sprintf("%.3f", rate/1000)
}
