package metrics

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/vclock"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("value = %d, want 8000", c.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Min() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram should answer zeros")
	}
	h.Observe(10 * vclock.Microsecond)
	h.Observe(20 * vclock.Microsecond)
	h.Observe(30 * vclock.Microsecond)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 20*vclock.Microsecond {
		t.Fatalf("mean = %v, want 20µs", h.Mean())
	}
	if h.Min() != 10*vclock.Microsecond || h.Max() != 30*vclock.Microsecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5)
	if h.Min() != 0 {
		t.Fatalf("negative observation should clamp to 0, min=%v", h.Min())
	}
}

func TestHistogramPercentileMonotone(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(vclock.Duration(i) * vclock.Microsecond)
	}
	p50 := h.Percentile(50)
	p99 := h.Percentile(99)
	if p50 > p99 {
		t.Fatalf("p50 %v > p99 %v", p50, p99)
	}
	if p100 := h.Percentile(100); p100 < p99 {
		t.Fatalf("p100 %v < p99 %v", p100, p99)
	}
	// Out-of-range percentiles clamp rather than panic.
	if h.Percentile(-1) <= 0 || h.Percentile(200) <= 0 {
		t.Fatal("clamped percentiles should still answer")
	}
}

// Property: percentile never exceeds 2x the true value's bucket upper
// bound and the histogram count always matches observations.
func TestHistogramCountProperty(t *testing.T) {
	f := func(samples []uint32) bool {
		h := NewHistogram()
		for _, s := range samples {
			h.Observe(vclock.Duration(s) * vclock.Microsecond)
		}
		return h.Count() == int64(len(samples))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTimelineSeries(t *testing.T) {
	tl := NewTimeline(vclock.Second)
	tl.Record(0, 100)
	tl.Record(vclock.Time(500*vclock.Millisecond), 100)
	tl.Record(vclock.Time(2*vclock.Second), 50) // gap at bucket 1
	s := tl.Series()
	if len(s) != 3 {
		t.Fatalf("series length = %d, want 3 (with gap)", len(s))
	}
	if s[0].Rate != 200 {
		t.Fatalf("bucket0 rate = %v, want 200", s[0].Rate)
	}
	if s[1].Rate != 0 {
		t.Fatalf("gap bucket rate = %v, want 0", s[1].Rate)
	}
	if s[2].Rate != 50 {
		t.Fatalf("bucket2 rate = %v, want 50", s[2].Rate)
	}
	if tl.Total() != 250 {
		t.Fatalf("total = %d, want 250", tl.Total())
	}
}

func TestTimelineEmpty(t *testing.T) {
	tl := NewTimeline(vclock.Second)
	if tl.Series() != nil || tl.MeanRate() != 0 || tl.PeakRate() != 0 {
		t.Fatal("empty timeline should answer zeros")
	}
}

func TestTimelineRates(t *testing.T) {
	tl := NewTimeline(vclock.Second)
	tl.Record(0, 10)
	tl.Record(vclock.Time(vclock.Second), 30)
	if tl.PeakRate() != 30 {
		t.Fatalf("peak = %v, want 30", tl.PeakRate())
	}
	if tl.MeanRate() != 20 {
		t.Fatalf("mean = %v, want 20", tl.MeanRate())
	}
}

func TestTimelineDefaultsAndClamps(t *testing.T) {
	tl := NewTimeline(0)
	if tl.BucketWidth() != vclock.Second {
		t.Fatal("zero width should default to 1s")
	}
	tl.Record(-5, 1) // negative time clamps to bucket 0
	if tl.Total() != 1 {
		t.Fatal("record at negative time lost")
	}
}

func TestThroughputAndFmt(t *testing.T) {
	if Throughput(1000, vclock.Second) != 1000 {
		t.Fatal("throughput wrong")
	}
	if Throughput(1000, 0) != 0 {
		t.Fatal("zero elapsed should be 0")
	}
	if got := Fmt(13091); got != "13.091" {
		t.Fatalf("Fmt = %q, want 13.091", got)
	}
}

func TestLatencyRow(t *testing.T) {
	if got := LatencyRow(nil); got[0] != "-" || got[1] != "-" || got[2] != "-" {
		t.Fatalf("nil histogram row = %v", got)
	}
	h := NewHistogram()
	if got := LatencyRow(h); got[0] != "-" {
		t.Fatalf("empty histogram row = %v", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(10 * vclock.Microsecond)
	}
	for i := 0; i < 3; i++ {
		h.Observe(10 * vclock.Millisecond)
	}
	row := LatencyRow(h)
	if len(row) != 3 {
		t.Fatalf("row has %d cells", len(row))
	}
	if row[0] != h.Percentile(50).String() || row[2] != h.Percentile(99).String() {
		t.Fatalf("row %v does not match percentiles", row)
	}
	// The tail observation shows up only in the p99 cell.
	if row[0] == row[2] {
		t.Fatalf("p50 and p99 should differ: %v", row)
	}
}
