// Package nand simulates NAND flash chips at the level of detail §2.1 of
// the paper requires: planes, blocks, pages, sectors, out-of-bound areas,
// paired pages and per-cell-type (SLC/MLC/TLC/QLC) timing. The simulator
// enforces the physical programming rules — erase before write, strictly
// sequential page programming within a block, paired pages readable only
// once their whole wordline is programmed — and models wear (P/E cycles),
// grown bad blocks and read bit errors.
//
// A Chip is a pure state machine: timing is exposed as durations that the
// device layer (internal/ocssd) composes with channel and chip resources.
package nand

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/vclock"
)

// CellType is the number of bits stored per flash cell.
type CellType int

// Supported NAND cell technologies.
const (
	SLC CellType = iota + 1 // 1 bit/cell
	MLC                     // 2 bits/cell
	TLC                     // 3 bits/cell
	QLC                     // 4 bits/cell
)

func init() {
	// Guard against iota drift: the constants double as bits-per-cell.
	if SLC != 1 || MLC != 2 || TLC != 3 || QLC != 4 {
		panic("nand: cell type constants must equal bits per cell")
	}
}

// BitsPerCell reports the number of bits a cell of this type stores,
// which is also the number of paired pages per wordline (§2.1).
func (c CellType) BitsPerCell() int { return int(c) }

func (c CellType) String() string {
	switch c {
	case SLC:
		return "SLC"
	case MLC:
		return "MLC"
	case TLC:
		return "TLC"
	case QLC:
		return "QLC"
	default:
		return fmt.Sprintf("CellType(%d)", int(c))
	}
}

// Valid reports whether c is one of the four known technologies.
func (c CellType) Valid() bool { return c >= SLC && c <= QLC }

// TimingProfile holds the virtual durations of the three array operations.
// Program is indexed by the page's position within its wordline: lower
// pages program faster than upper pages on MLC/TLC/QLC chips.
type TimingProfile struct {
	Read    vclock.Duration   // tR: array read of one page
	Program []vclock.Duration // tProg per paired-page index (len = bits/cell)
	Erase   vclock.Duration   // tBERS: erase of one block
}

// DefaultTiming returns representative datasheet timings for a cell type.
// Absolute values matter less than the ratios: read ≪ program ≪ erase,
// and upper paired pages program slower than lower ones.
func DefaultTiming(c CellType) TimingProfile {
	us := vclock.Microsecond
	ms := vclock.Millisecond
	switch c {
	case SLC:
		return TimingProfile{Read: 25 * us, Program: []vclock.Duration{200 * us}, Erase: 2 * ms}
	case MLC:
		return TimingProfile{Read: 50 * us, Program: []vclock.Duration{400 * us, 1200 * us}, Erase: 4 * ms}
	case TLC:
		return TimingProfile{Read: 70 * us, Program: []vclock.Duration{500 * us, 1500 * us, 3000 * us}, Erase: 6 * ms}
	case QLC:
		return TimingProfile{Read: 110 * us, Program: []vclock.Duration{700 * us, 1800 * us, 3500 * us, 5500 * us}, Erase: 10 * ms}
	default:
		return TimingProfile{Read: 50 * us, Program: []vclock.Duration{500 * us}, Erase: 5 * ms}
	}
}

// Geometry describes one chip. All counts are per chip.
type Geometry struct {
	Planes         int      // 1, 2 or 4 (§2.1)
	BlocksPerPlane int      // erase blocks per plane
	PagesPerBlock  int      // program pages per block
	SectorsPerPage int      // read sectors per page (typically 4)
	SectorSize     int      // bytes per sector (typically 4096)
	OOBPerPage     int      // out-of-bound bytes per page
	Cell           CellType // bits per cell
}

// Validate reports whether the geometry is internally consistent.
func (g Geometry) Validate() error {
	switch {
	case !g.Cell.Valid():
		return fmt.Errorf("nand: invalid cell type %d", int(g.Cell))
	case g.Planes != 1 && g.Planes != 2 && g.Planes != 4:
		return fmt.Errorf("nand: planes must be 1, 2 or 4, got %d", g.Planes)
	case g.BlocksPerPlane <= 0 || g.PagesPerBlock <= 0 || g.SectorsPerPage <= 0 || g.SectorSize <= 0:
		return errors.New("nand: geometry counts must be positive")
	case g.PagesPerBlock%g.Cell.BitsPerCell() != 0:
		return fmt.Errorf("nand: pages per block (%d) must be a multiple of bits per cell (%d)",
			g.PagesPerBlock, g.Cell.BitsPerCell())
	case g.OOBPerPage < 0:
		return errors.New("nand: negative OOB size")
	}
	return nil
}

// PageBytes reports the data payload of one page (sectors only, no OOB).
func (g Geometry) PageBytes() int { return g.SectorsPerPage * g.SectorSize }

// BlockBytes reports the data payload of one block.
func (g Geometry) BlockBytes() int64 {
	return int64(g.PagesPerBlock) * int64(g.PageBytes())
}

// ChipBytes reports the data payload of the whole chip.
func (g Geometry) ChipBytes() int64 {
	return int64(g.Planes) * int64(g.BlocksPerPlane) * g.BlockBytes()
}

// Wordlines reports the number of wordlines per block (pages / bits-per-cell).
func (g Geometry) Wordlines() int { return g.PagesPerBlock / g.Cell.BitsPerCell() }

// UnitOfWrite reports the natural write unit of the chip in bytes:
// sectors-per-page × paired pages × planes × sector size (§2.1). On a
// dual-plane TLC chip with 4 KB sectors this is 96 KB; on a 4-plane QLC
// chip it is 256 KB.
func (g Geometry) UnitOfWrite() int {
	return g.SectorsPerPage * g.Cell.BitsPerCell() * g.Planes * g.SectorSize
}

// Reliability tunes the failure injection model.
type Reliability struct {
	Endurance       int     // P/E cycles before a block wears out (0 = unlimited)
	FactoryBadRate  float64 // probability a block is bad from the factory
	ProgramFailRate float64 // probability a program op fails (block grows bad)
	// ReadErrorBase is the per-read probability of a correctable bit error
	// at zero wear; the probability grows linearly to 10x at Endurance.
	ReadErrorBase float64
}

// DefaultReliability returns a mild failure model suitable for tests.
func DefaultReliability() Reliability {
	return Reliability{Endurance: 3000, FactoryBadRate: 0.002, ProgramFailRate: 0, ReadErrorBase: 0}
}

// Errors reported by chip operations.
var (
	ErrBadBlock         = errors.New("nand: bad block")
	ErrNotErased        = errors.New("nand: program to non-erased page")
	ErrOutOfOrder       = errors.New("nand: pages must be programmed sequentially within a block")
	ErrUnwritten        = errors.New("nand: read of unwritten page")
	ErrPairedIncomplete = errors.New("nand: read of page whose wordline is not fully programmed")
	ErrAddress          = errors.New("nand: address out of range")
	ErrWornOut          = errors.New("nand: block exceeded endurance")
	ErrProgramFail      = errors.New("nand: program failure")
	ErrDataSize         = errors.New("nand: payload size does not match page size")
)

type page struct {
	data []byte // empty until programmed (unless zero is set)
	oob  []byte
	zero bool // programmed with all-zero data; stored deduplicated
}

// programmed reports whether the page holds data. Erase truncates data
// buffers instead of dropping them, so steady-state program/erase
// cycles (GC, chunk resets) reuse page storage; the memory retained is
// bounded by the pages that last held non-zero data (all-zero programs
// release their buffer, see Program).
func (p *page) programmed() bool { return len(p.data) > 0 || p.zero }

type block struct {
	next   int // index of the next page to program (write pointer)
	erases int
	bad    bool
	grown  bool // bad grew during use (vs factory)
	pages  []page
}

// Stats aggregates chip operation counts.
type Stats struct {
	Reads      int64
	Programs   int64
	Erases     int64
	BitErrors  int64 // injected correctable read errors
	GrownBad   int64 // blocks that went bad during use
	FactoryBad int64
}

// Chip is one simulated NAND die. Methods are safe for concurrent use;
// the chip serializes state mutations internally (operation *timing*
// serialization is the device layer's job, via a vclock.Resource).
type Chip struct {
	geo    Geometry
	timing TimingProfile
	rel    Reliability

	mu       sync.Mutex
	planes   [][]block // [plane][block]
	rng      *rand.Rand
	stats    Stats
	zeroPage []byte // shared buffer returned for all-zero pages
}

// New creates a chip with the given geometry, timing and reliability
// model. The seed drives all failure injection deterministically.
func New(geo Geometry, timing TimingProfile, rel Reliability, seed int64) (*Chip, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if len(timing.Program) != geo.Cell.BitsPerCell() {
		return nil, fmt.Errorf("nand: timing has %d program entries, cell type needs %d",
			len(timing.Program), geo.Cell.BitsPerCell())
	}
	c := &Chip{
		geo:    geo,
		timing: timing,
		rel:    rel,
		rng:    rand.New(rand.NewSource(seed)),
	}
	c.planes = make([][]block, geo.Planes)
	for p := range c.planes {
		c.planes[p] = make([]block, geo.BlocksPerPlane)
		for b := range c.planes[p] {
			blk := &c.planes[p][b]
			blk.pages = make([]page, geo.PagesPerBlock)
			if rel.FactoryBadRate > 0 && c.rng.Float64() < rel.FactoryBadRate {
				blk.bad = true
				c.stats.FactoryBad++
			}
		}
	}
	return c, nil
}

// Geometry reports the chip geometry.
func (c *Chip) Geometry() Geometry { return c.geo }

// Timing reports the chip timing profile.
func (c *Chip) Timing() TimingProfile { return c.timing }

// ReadTime reports tR for one page.
func (c *Chip) ReadTime() vclock.Duration { return c.timing.Read }

// ProgramTime reports tProg for the page at index pageIdx within its
// block, which depends on the page's position within its wordline.
func (c *Chip) ProgramTime(pageIdx int) vclock.Duration {
	bits := c.geo.Cell.BitsPerCell()
	return c.timing.Program[pageIdx%bits]
}

// EraseTime reports tBERS for one block.
func (c *Chip) EraseTime() vclock.Duration { return c.timing.Erase }

// Stats returns a copy of the chip's operation counters.
func (c *Chip) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Chip) checkAddr(plane, blk, pg int) error {
	if plane < 0 || plane >= c.geo.Planes ||
		blk < 0 || blk >= c.geo.BlocksPerPlane ||
		pg < 0 || pg >= c.geo.PagesPerBlock {
		return ErrAddress
	}
	return nil
}

// IsBad reports whether the block is marked bad (factory or grown).
func (c *Chip) IsBad(plane, blk int) bool {
	if err := c.checkAddr(plane, blk, 0); err != nil {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.planes[plane][blk].bad
}

// Erases reports the P/E cycle count of a block.
func (c *Chip) Erases(plane, blk int) int {
	if err := c.checkAddr(plane, blk, 0); err != nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.planes[plane][blk].erases
}

// WritePointer reports the next programmable page index of a block.
func (c *Chip) WritePointer(plane, blk int) int {
	if err := c.checkAddr(plane, blk, 0); err != nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.planes[plane][blk].next
}

// Program writes one full page (data payload plus optional OOB bytes).
// It enforces: the block is not bad, the page is the block's next
// sequential page, and the payload is exactly one page. A program
// failure (injected) marks the block grown-bad and returns ErrProgramFail.
func (c *Chip) Program(plane, blk, pg int, data, oob []byte) error {
	if err := c.checkAddr(plane, blk, pg); err != nil {
		return err
	}
	if len(data) != c.geo.PageBytes() {
		return fmt.Errorf("%w: got %d, want %d", ErrDataSize, len(data), c.geo.PageBytes())
	}
	if len(oob) > c.geo.OOBPerPage {
		return fmt.Errorf("%w: oob %d exceeds %d", ErrDataSize, len(oob), c.geo.OOBPerPage)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b := &c.planes[plane][blk]
	if b.bad {
		return ErrBadBlock
	}
	if pg != b.next {
		if pg < b.next {
			return ErrNotErased
		}
		return ErrOutOfOrder
	}
	if c.rel.ProgramFailRate > 0 && c.rng.Float64() < c.rel.ProgramFailRate {
		b.bad = true
		b.grown = true
		c.stats.GrownBad++
		return ErrProgramFail
	}
	p := &b.pages[pg]
	if isZero(data) {
		// WAL padding and chunk pads program whole zero pages; dedup
		// them so padding never consumes simulator memory — including
		// any buffer retained from a previous program/erase cycle.
		p.data = nil
		p.zero = true
	} else {
		p.data = append(p.data[:0], data...)
		p.zero = false
	}
	if len(oob) > 0 {
		p.oob = append(p.oob[:0], oob...)
	}
	b.next++
	c.stats.Programs++
	return nil
}

func isZero(b []byte) bool {
	for len(b) >= 8 {
		if b[0]|b[1]|b[2]|b[3]|b[4]|b[5]|b[6]|b[7] != 0 {
			return false
		}
		b = b[8:]
	}
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// Read returns the data payload and OOB of a page. It enforces the
// paired-page rule: the page's wordline must be fully programmed
// (§2.1: "All paired pages must be written before one of them can be
// read"). The returned error may be a correctable bit error injection,
// reported as nil with the BitErrors counter incremented (the device
// corrects it via ECC but pays the accounting).
func (c *Chip) Read(plane, blk, pg int) (data, oob []byte, err error) {
	if err := c.checkAddr(plane, blk, pg); err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b := &c.planes[plane][blk]
	if b.bad {
		return nil, nil, ErrBadBlock
	}
	p := &b.pages[pg]
	if !p.programmed() {
		return nil, nil, ErrUnwritten
	}
	bits := c.geo.Cell.BitsPerCell()
	wordline := pg / bits
	wlEnd := (wordline + 1) * bits
	if b.next < wlEnd {
		return nil, nil, ErrPairedIncomplete
	}
	if base := c.rel.ReadErrorBase; base > 0 {
		prob := base
		if c.rel.Endurance > 0 {
			prob *= 1 + 9*float64(b.erases)/float64(c.rel.Endurance)
		}
		if c.rng.Float64() < prob {
			c.stats.BitErrors++
		}
	}
	c.stats.Reads++
	if p.zero {
		if c.zeroPage == nil {
			c.zeroPage = make([]byte, c.geo.PageBytes())
		}
		return c.zeroPage, p.oob, nil
	}
	return p.data, p.oob, nil
}

// Erase erases one block on one plane, resetting its write pointer.
// Exceeding the endurance limit marks the block grown-bad.
func (c *Chip) Erase(plane, blk int) error {
	if err := c.checkAddr(plane, blk, 0); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b := &c.planes[plane][blk]
	if b.bad {
		return ErrBadBlock
	}
	b.erases++
	if c.rel.Endurance > 0 && b.erases > c.rel.Endurance {
		b.bad = true
		b.grown = true
		c.stats.GrownBad++
		return ErrWornOut
	}
	for i := range b.pages {
		b.pages[i].data = b.pages[i].data[:0]
		b.pages[i].oob = b.pages[i].oob[:0]
		b.pages[i].zero = false
	}
	b.next = 0
	c.stats.Erases++
	return nil
}

// EraseMulti erases the same block index on every plane, modeling a
// multi-plane erase. The first error aborts and is returned.
func (c *Chip) EraseMulti(blk int) error {
	for p := 0; p < c.geo.Planes; p++ {
		if err := c.Erase(p, blk); err != nil {
			return err
		}
	}
	return nil
}

// MarkBad explicitly retires a block (bad media management, §2.2).
func (c *Chip) MarkBad(plane, blk int) error {
	if err := c.checkAddr(plane, blk, 0); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b := &c.planes[plane][blk]
	if !b.bad {
		b.bad = true
		b.grown = true
		c.stats.GrownBad++
	}
	return nil
}
