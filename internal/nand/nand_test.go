package nand

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/vclock"
)

func testGeo(cell CellType, planes int) Geometry {
	return Geometry{
		Planes:         planes,
		BlocksPerPlane: 8,
		PagesPerBlock:  24,
		SectorsPerPage: 4,
		SectorSize:     4096,
		OOBPerPage:     64,
		Cell:           cell,
	}
}

func newChip(t *testing.T, cell CellType, planes int) *Chip {
	t.Helper()
	geo := testGeo(cell, planes)
	c, err := New(geo, DefaultTiming(cell), Reliability{}, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func pageData(geo Geometry, fill byte) []byte {
	return bytes.Repeat([]byte{fill}, geo.PageBytes())
}

func TestCellTypeProperties(t *testing.T) {
	cases := []struct {
		c    CellType
		bits int
		name string
	}{{SLC, 1, "SLC"}, {MLC, 2, "MLC"}, {TLC, 3, "TLC"}, {QLC, 4, "QLC"}}
	for _, tc := range cases {
		if tc.c.BitsPerCell() != tc.bits {
			t.Errorf("%v bits = %d, want %d", tc.c, tc.c.BitsPerCell(), tc.bits)
		}
		if tc.c.String() != tc.name {
			t.Errorf("String = %q, want %q", tc.c.String(), tc.name)
		}
		if !tc.c.Valid() {
			t.Errorf("%v should be valid", tc.c)
		}
	}
	if CellType(9).Valid() {
		t.Error("CellType(9) should be invalid")
	}
}

func TestGeometryDerived(t *testing.T) {
	g := testGeo(TLC, 2)
	if g.PageBytes() != 16384 {
		t.Fatalf("PageBytes = %d", g.PageBytes())
	}
	if g.BlockBytes() != 24*16384 {
		t.Fatalf("BlockBytes = %d", g.BlockBytes())
	}
	if g.ChipBytes() != 2*8*24*16384 {
		t.Fatalf("ChipBytes = %d", g.ChipBytes())
	}
	if g.Wordlines() != 8 {
		t.Fatalf("Wordlines = %d, want 8", g.Wordlines())
	}
	// The paper's running example: dual-plane TLC, 4 sectors/page, 4KB
	// sectors => unit of write = 96KB.
	if g.UnitOfWrite() != 96*1024 {
		t.Fatalf("UnitOfWrite = %d, want 96KB", g.UnitOfWrite())
	}
	// §2.1: QLC with 4 planes => 256KB unit of write.
	q := testGeo(QLC, 4)
	if q.UnitOfWrite() != 256*1024 {
		t.Fatalf("QLC×4 UnitOfWrite = %d, want 256KB", q.UnitOfWrite())
	}
}

func TestGeometryValidate(t *testing.T) {
	good := testGeo(TLC, 2)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	bad := good
	bad.Planes = 3
	if bad.Validate() == nil {
		t.Error("3 planes should be rejected")
	}
	bad = good
	bad.PagesPerBlock = 25 // not a multiple of 3 bits
	if bad.Validate() == nil {
		t.Error("pages not multiple of bits should be rejected")
	}
	bad = good
	bad.Cell = CellType(7)
	if bad.Validate() == nil {
		t.Error("unknown cell type should be rejected")
	}
	bad = good
	bad.SectorSize = 0
	if bad.Validate() == nil {
		t.Error("zero sector size should be rejected")
	}
	bad = good
	bad.OOBPerPage = -1
	if bad.Validate() == nil {
		t.Error("negative OOB should be rejected")
	}
}

func TestNewRejectsTimingMismatch(t *testing.T) {
	geo := testGeo(TLC, 2)
	_, err := New(geo, DefaultTiming(SLC), Reliability{}, 1)
	if err == nil {
		t.Fatal("SLC timing on TLC chip should be rejected")
	}
}

func TestDefaultTimingOrdering(t *testing.T) {
	for _, c := range []CellType{SLC, MLC, TLC, QLC} {
		tp := DefaultTiming(c)
		if len(tp.Program) != c.BitsPerCell() {
			t.Fatalf("%v: %d program timings", c, len(tp.Program))
		}
		if tp.Read >= tp.Program[0] {
			t.Errorf("%v: read should be faster than program", c)
		}
		if tp.Program[len(tp.Program)-1] >= tp.Erase {
			t.Errorf("%v: program should be faster than erase", c)
		}
		for i := 1; i < len(tp.Program); i++ {
			if tp.Program[i] <= tp.Program[i-1] {
				t.Errorf("%v: upper paired page %d should be slower", c, i)
			}
		}
	}
	// Density costs latency: each step up in bits/cell reads slower.
	if !(DefaultTiming(SLC).Read < DefaultTiming(MLC).Read &&
		DefaultTiming(MLC).Read < DefaultTiming(TLC).Read &&
		DefaultTiming(TLC).Read < DefaultTiming(QLC).Read) {
		t.Error("read latency should grow with density")
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	c := newChip(t, SLC, 1)
	geo := c.Geometry()
	want := pageData(geo, 0xAB)
	oob := []byte("meta")
	if err := c.Program(0, 0, 0, want, oob); err != nil {
		t.Fatalf("Program: %v", err)
	}
	got, gotOOB, err := c.Read(0, 0, 0)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data mismatch")
	}
	if !bytes.Equal(gotOOB, oob) {
		t.Fatal("oob mismatch")
	}
}

func TestProgramSequentialRule(t *testing.T) {
	c := newChip(t, SLC, 1)
	d := pageData(c.Geometry(), 1)
	if err := c.Program(0, 0, 1, d, nil); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("skip-ahead program: %v, want ErrOutOfOrder", err)
	}
	if err := c.Program(0, 0, 0, d, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Program(0, 0, 0, d, nil); !errors.Is(err, ErrNotErased) {
		t.Fatalf("reprogram: %v, want ErrNotErased", err)
	}
	if c.WritePointer(0, 0) != 1 {
		t.Fatalf("wp = %d, want 1", c.WritePointer(0, 0))
	}
}

func TestProgramWrongSize(t *testing.T) {
	c := newChip(t, SLC, 1)
	if err := c.Program(0, 0, 0, []byte{1, 2, 3}, nil); !errors.Is(err, ErrDataSize) {
		t.Fatalf("short payload: %v, want ErrDataSize", err)
	}
	big := make([]byte, c.Geometry().OOBPerPage+1)
	if err := c.Program(0, 0, 0, pageData(c.Geometry(), 0), big); !errors.Is(err, ErrDataSize) {
		t.Fatalf("oversized oob: %v, want ErrDataSize", err)
	}
}

func TestPairedPageRule(t *testing.T) {
	// TLC: wordline = 3 pages. Page 0 unreadable until pages 0..2 written.
	c := newChip(t, TLC, 1)
	d := pageData(c.Geometry(), 7)
	if err := c.Program(0, 0, 0, d, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Read(0, 0, 0); !errors.Is(err, ErrPairedIncomplete) {
		t.Fatalf("read before wordline complete: %v, want ErrPairedIncomplete", err)
	}
	if err := c.Program(0, 0, 1, d, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Read(0, 0, 1); !errors.Is(err, ErrPairedIncomplete) {
		t.Fatalf("still incomplete: %v", err)
	}
	if err := c.Program(0, 0, 2, d, nil); err != nil {
		t.Fatal(err)
	}
	for pg := 0; pg < 3; pg++ {
		if _, _, err := c.Read(0, 0, pg); err != nil {
			t.Fatalf("read page %d after wordline complete: %v", pg, err)
		}
	}
}

func TestSLCHasNoPairedRestriction(t *testing.T) {
	c := newChip(t, SLC, 1)
	d := pageData(c.Geometry(), 7)
	if err := c.Program(0, 0, 0, d, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Read(0, 0, 0); err != nil {
		t.Fatalf("SLC page should be readable immediately: %v", err)
	}
}

func TestReadUnwritten(t *testing.T) {
	c := newChip(t, SLC, 1)
	if _, _, err := c.Read(0, 0, 0); !errors.Is(err, ErrUnwritten) {
		t.Fatalf("read unwritten: %v, want ErrUnwritten", err)
	}
}

func TestEraseResetsBlock(t *testing.T) {
	c := newChip(t, SLC, 1)
	d := pageData(c.Geometry(), 3)
	for pg := 0; pg < 4; pg++ {
		if err := c.Program(0, 0, pg, d, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Erase(0, 0); err != nil {
		t.Fatal(err)
	}
	if c.WritePointer(0, 0) != 0 {
		t.Fatal("erase should reset write pointer")
	}
	if _, _, err := c.Read(0, 0, 0); !errors.Is(err, ErrUnwritten) {
		t.Fatalf("read after erase: %v, want ErrUnwritten", err)
	}
	if c.Erases(0, 0) != 1 {
		t.Fatalf("erases = %d, want 1", c.Erases(0, 0))
	}
	// Reprogram after erase must work.
	if err := c.Program(0, 0, 0, d, nil); err != nil {
		t.Fatalf("program after erase: %v", err)
	}
}

func TestEraseMulti(t *testing.T) {
	c := newChip(t, SLC, 2)
	d := pageData(c.Geometry(), 1)
	for p := 0; p < 2; p++ {
		if err := c.Program(p, 3, 0, d, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.EraseMulti(3); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 2; p++ {
		if c.Erases(p, 3) != 1 {
			t.Fatalf("plane %d erases = %d", p, c.Erases(p, 3))
		}
	}
}

func TestEnduranceWearOut(t *testing.T) {
	geo := testGeo(SLC, 1)
	c, err := New(geo, DefaultTiming(SLC), Reliability{Endurance: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Erase(0, 0); err != nil {
			t.Fatalf("erase %d: %v", i, err)
		}
	}
	if err := c.Erase(0, 0); !errors.Is(err, ErrWornOut) {
		t.Fatalf("4th erase: %v, want ErrWornOut", err)
	}
	if !c.IsBad(0, 0) {
		t.Fatal("worn block should be bad")
	}
	if err := c.Erase(0, 0); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("erase of bad block: %v, want ErrBadBlock", err)
	}
}

func TestMarkBad(t *testing.T) {
	c := newChip(t, SLC, 1)
	if err := c.MarkBad(0, 5); err != nil {
		t.Fatal(err)
	}
	if !c.IsBad(0, 5) {
		t.Fatal("block should be bad")
	}
	d := pageData(c.Geometry(), 1)
	if err := c.Program(0, 5, 0, d, nil); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("program to bad block: %v", err)
	}
	if _, _, err := c.Read(0, 5, 0); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("read of bad block: %v", err)
	}
	if got := c.Stats().GrownBad; got != 1 {
		t.Fatalf("grown bad = %d, want 1", got)
	}
	// Marking twice must not double count.
	if err := c.MarkBad(0, 5); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().GrownBad; got != 1 {
		t.Fatalf("grown bad after re-mark = %d, want 1", got)
	}
}

func TestFactoryBadBlocks(t *testing.T) {
	geo := testGeo(SLC, 2)
	geo.BlocksPerPlane = 500
	c, err := New(geo, DefaultTiming(SLC), Reliability{FactoryBadRate: 0.05}, 42)
	if err != nil {
		t.Fatal(err)
	}
	n := c.Stats().FactoryBad
	if n == 0 {
		t.Fatal("expected some factory bad blocks at 5% over 1000 blocks")
	}
	if n > 120 {
		t.Fatalf("factory bad = %d, implausibly many", n)
	}
}

func TestProgramFailInjection(t *testing.T) {
	geo := testGeo(SLC, 1)
	c, err := New(geo, DefaultTiming(SLC), Reliability{ProgramFailRate: 1.0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := pageData(geo, 1)
	if err := c.Program(0, 0, 0, d, nil); !errors.Is(err, ErrProgramFail) {
		t.Fatalf("program: %v, want ErrProgramFail", err)
	}
	if !c.IsBad(0, 0) {
		t.Fatal("failed block should be marked bad")
	}
}

func TestReadErrorInjectionGrowsWithWear(t *testing.T) {
	geo := testGeo(SLC, 1)
	geo.PagesPerBlock = 64
	c, err := New(geo, DefaultTiming(SLC), Reliability{Endurance: 10, ReadErrorBase: 0.05}, 7)
	if err != nil {
		t.Fatal(err)
	}
	d := pageData(geo, 1)
	readAll := func() {
		if err := c.Program(0, 0, 0, d, nil); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			if _, _, err := c.Read(0, 0, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	readAll()
	fresh := c.Stats().BitErrors
	// Wear the block close to its endurance, then read again.
	for i := 0; i < 9; i++ {
		if err := c.Erase(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	readAll()
	worn := c.Stats().BitErrors - fresh
	if worn <= fresh {
		t.Fatalf("bit errors should grow with wear: fresh=%d worn=%d", fresh, worn)
	}
}

func TestAddressValidation(t *testing.T) {
	c := newChip(t, SLC, 1)
	d := pageData(c.Geometry(), 0)
	for _, bad := range [][3]int{{-1, 0, 0}, {1, 0, 0}, {0, -1, 0}, {0, 8, 0}, {0, 0, -1}, {0, 0, 24}} {
		if err := c.Program(bad[0], bad[1], bad[2], d, nil); !errors.Is(err, ErrAddress) {
			t.Errorf("program %v: %v, want ErrAddress", bad, err)
		}
		if _, _, err := c.Read(bad[0], bad[1], bad[2]); !errors.Is(err, ErrAddress) {
			t.Errorf("read %v: %v, want ErrAddress", bad, err)
		}
	}
	if err := c.Erase(0, 99); !errors.Is(err, ErrAddress) {
		t.Errorf("erase: %v, want ErrAddress", err)
	}
	if err := c.MarkBad(9, 9); !errors.Is(err, ErrAddress) {
		t.Errorf("markbad: %v, want ErrAddress", err)
	}
	if c.Erases(9, 9) != 0 || c.WritePointer(9, 9) != 0 || !c.IsBad(9, 9) {
		t.Error("out-of-range queries should answer safe defaults")
	}
}

func TestProgramTimePerPairedPage(t *testing.T) {
	c := newChip(t, TLC, 1)
	tp := c.Timing()
	// Pages 0,1,2 are the three paired pages of wordline 0.
	if c.ProgramTime(0) != tp.Program[0] || c.ProgramTime(1) != tp.Program[1] || c.ProgramTime(2) != tp.Program[2] {
		t.Fatal("program time should follow paired index")
	}
	// Page 3 starts wordline 1, back to the lower-page timing.
	if c.ProgramTime(3) != tp.Program[0] {
		t.Fatal("page 3 should use lower-page timing")
	}
	if c.ReadTime() != tp.Read || c.EraseTime() != tp.Erase {
		t.Fatal("read/erase timing accessors mismatch")
	}
}

func TestStatsCounting(t *testing.T) {
	c := newChip(t, SLC, 1)
	d := pageData(c.Geometry(), 1)
	for pg := 0; pg < 3; pg++ {
		if err := c.Program(0, 0, pg, d, nil); err != nil {
			t.Fatal(err)
		}
	}
	for pg := 0; pg < 3; pg++ {
		if _, _, err := c.Read(0, 0, pg); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Erase(0, 0); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Programs != 3 || s.Reads != 3 || s.Erases != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// Property: any sequence of in-order programs followed by reads of
// completed wordlines round-trips the data exactly.
func TestRoundTripProperty(t *testing.T) {
	geo := testGeo(MLC, 1)
	f := func(seed int64, fills []byte) bool {
		c, err := New(geo, DefaultTiming(MLC), Reliability{}, seed)
		if err != nil {
			return false
		}
		n := len(fills)
		if n > geo.PagesPerBlock {
			n = geo.PagesPerBlock
		}
		for pg := 0; pg < n; pg++ {
			if err := c.Program(0, 0, pg, pageData(geo, fills[pg]), nil); err != nil {
				return false
			}
		}
		bits := geo.Cell.BitsPerCell()
		complete := (n / bits) * bits
		for pg := 0; pg < complete; pg++ {
			got, _, err := c.Read(0, 0, pg)
			if err != nil {
				return false
			}
			if got[0] != fills[pg] || got[len(got)-1] != fills[pg] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the write pointer equals the number of successful programs
// since the last erase, and never exceeds pages-per-block.
func TestWritePointerProperty(t *testing.T) {
	geo := testGeo(SLC, 1)
	f := func(ops []bool) bool {
		c, err := New(geo, DefaultTiming(SLC), Reliability{}, 1)
		if err != nil {
			return false
		}
		want := 0
		d := pageData(geo, 1)
		for _, program := range ops {
			if program && want < geo.PagesPerBlock {
				if err := c.Program(0, 0, want, d, nil); err != nil {
					return false
				}
				want++
			} else if !program {
				if err := c.Erase(0, 0); err != nil {
					return false
				}
				want = 0
			}
			if c.WritePointer(0, 0) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	geo := testGeo(SLC, 2)
	geo.BlocksPerPlane = 200
	mk := func() int64 {
		c, err := New(geo, DefaultTiming(SLC), Reliability{FactoryBadRate: 0.1}, 99)
		if err != nil {
			t.Fatal(err)
		}
		return c.Stats().FactoryBad
	}
	if mk() != mk() {
		t.Fatal("same seed must produce the same factory bad map")
	}
}

func TestDurationForHelper(t *testing.T) {
	// Sanity-check that vclock integrates: transferring one 16KB page at
	// 800 MB/s takes 20.48µs of virtual time.
	d := vclock.DurationFor(16384, 800)
	if d < 20*vclock.Microsecond || d > 21*vclock.Microsecond {
		t.Fatalf("transfer time = %v", d)
	}
}
