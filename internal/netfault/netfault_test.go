package netfault_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/fabrics"
	"repro/internal/hostif"
	"repro/internal/netfault"
	"repro/internal/oxblock"
	"repro/internal/vclock"
)

const pageBytes = 4 * 4096 // default rig: 4 sectors/page × 4KiB; LPNs are sector-granular, so page IO strides by 4

// rig builds a small OX-Block host served over an in-process fabric.
func rig(t testing.TB) (*fabrics.Server, vclock.Time) {
	t.Helper()
	_, ctrl, err := exp.DefaultRig().Build()
	if err != nil {
		t.Fatalf("rig: %v", err)
	}
	d, _, now, err := oxblock.New(ctrl, oxblock.Config{LogicalPages: 512}, 0)
	if err != nil {
		t.Fatalf("oxblock: %v", err)
	}
	host := hostif.NewHost(ctrl, hostif.HostConfig{ChargeHostLink: true})
	if _, err := host.Admin().AttachNamespace(now, hostif.NewBlockNamespace(d)); err != nil {
		t.Fatalf("attach: %v", err)
	}
	srv := fabrics.NewServer(host)
	t.Cleanup(func() { srv.Close() })
	return srv, now
}

// redial is the aggressive budget the fault tests run under: pipes are
// cheap, so back off in microseconds, not milliseconds.
var redial = fabrics.RedialConfig{
	MaxAttempts: 40,
	Base:        200 * time.Microsecond,
	Cap:         2 * time.Millisecond,
	Seed:        11,
}

// runOps drives a closed-loop workload — n page writes, then n reads
// verifying payload round-trips — and returns every completion's
// virtual Done instant in op order. Because the session layer replays
// at original doorbell instants and the server dedups re-delivered
// sequence numbers, this slice must be identical no matter what the
// fault script did to the connection.
func runOps(t *testing.T, qp *fabrics.QueuePair, now vclock.Time, n int) []vclock.Time {
	t.Helper()
	dones := make([]vclock.Time, 0, 2*n)
	at := now
	for i := 0; i < n; i++ {
		payload := make([]byte, pageBytes)
		for j := range payload {
			payload[j] = byte(i*31 + j)
		}
		cmd := qp.AcquireCommand()
		cmd.Op, cmd.NSID, cmd.LPN, cmd.Data = hostif.OpWrite, 1, int64(i*4), payload
		if err := qp.Push(at, cmd); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		c := qp.MustReap()
		if c.Err != nil {
			t.Fatalf("write %d completion: %v", i, c.Err)
		}
		dones = append(dones, c.Done)
		at = c.Done
	}
	for i := 0; i < n; i++ {
		cmd := qp.AcquireCommand()
		cmd.Op, cmd.NSID, cmd.LPN, cmd.Pages = hostif.OpRead, 1, int64(i*4), 4
		if err := qp.Push(at, cmd); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		c := qp.MustReap()
		if c.Err != nil {
			t.Fatalf("read %d completion: %v", i, c.Err)
		}
		want := make([]byte, pageBytes)
		for j := range want {
			want[j] = byte(i*31 + j)
		}
		if !bytes.Equal(c.Data, want) {
			p := 0
			for p < len(c.Data) && p < len(want) && c.Data[p] == want[p] {
				p++
			}
			t.Fatalf("read %d returned wrong bytes: len=%d want %d, common prefix %d, got[%d:%d+4]=%v",
				i, len(c.Data), len(want), p, p, p, c.Data[p:min(p+4, len(c.Data))])
		}
		dones = append(dones, c.Done)
		at = c.Done
	}
	return dones
}

// cleanBaseline runs the workload with no proxy at all.
func cleanBaseline(t *testing.T, n int) []vclock.Time {
	t.Helper()
	srv, now := rig(t)
	qp, err := fabrics.Loopback(srv).QueuePair(now, 4, hostif.ClassMedium, 1)
	if err != nil {
		t.Fatalf("queue pair: %v", err)
	}
	defer qp.Close()
	return runOps(t, qp, now, n)
}

// stormRun runs the same workload through a fault proxy.
func stormRun(t *testing.T, n int, pcfg netfault.Config, ccfg fabrics.Config) (*netfault.Proxy, *fabrics.QueuePair, []vclock.Time) {
	t.Helper()
	srv, now := rig(t)
	proxy := netfault.New(fabrics.LoopbackDial(srv), pcfg)
	qp, err := fabrics.NewClient(proxy.Dial).WithConfig(ccfg).QueuePair(now, 4, hostif.ClassMedium, 1)
	if err != nil {
		t.Fatalf("queue pair: %v", err)
	}
	t.Cleanup(func() { qp.Close() })
	return proxy, qp, runOps(t, qp, now, n)
}

func sameDones(t *testing.T, got, want []vclock.Time, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d completions, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: op %d Done=%v, clean run Done=%v", label, i, got[i], want[i])
		}
	}
}

// TestPassthrough: an empty script is a transparent wire — identical
// virtual results, zero faults, one dial.
func TestPassthrough(t *testing.T) {
	const n = 4
	want := cleanBaseline(t, n)
	proxy, qp, got := stormRun(t, n, netfault.Config{}, fabrics.Config{})
	sameDones(t, got, want, "passthrough")
	st := proxy.Stats()
	if st.Dials != 1 {
		t.Fatalf("dials = %d, want 1", st.Dials)
	}
	if st.DataFrames != 2*n {
		t.Fatalf("data frames = %d, want %d", st.DataFrames, 2*n)
	}
	if st.Kills+st.Drops+st.Truncates+st.Delays+st.Stalls+st.Partitions != 0 {
		t.Fatalf("faults fired on an empty script: %+v", st)
	}
	if s := qp.Stats(); s.Redials != 0 {
		t.Fatalf("redials = %d, want 0", s.Redials)
	}
}

// TestReplayDedupAcrossKillOffsets is the replay property test: kill
// or drop the connection at every frame offset of the workload and
// require the virtual completion timeline to be byte-for-byte the
// clean run's. A Kill lands after the command reached the server, so
// correctness requires the server to dedup the replayed sequence
// number (double-applying a write would shift media timing and break
// Done equality); a Drop lands before, so correctness requires the
// replay to re-execute at the original doorbell instant.
func TestReplayDedupAcrossKillOffsets(t *testing.T) {
	const n = 6
	want := cleanBaseline(t, n)
	for _, action := range []netfault.Action{netfault.Kill, netfault.Drop} {
		for k := 1; k <= 2*n; k++ {
			label := action.String()
			proxy, qp, got := stormRun(t, n,
				netfault.Config{Script: []netfault.Event{{After: k, Action: action}}},
				fabrics.Config{Redial: redial})
			sameDones(t, got, want, label)
			st := proxy.Stats()
			fired := st.Kills + st.Drops
			if fired != 1 {
				t.Fatalf("%s@%d: %d faults fired, want 1", label, k, fired)
			}
			if s := qp.Stats(); s.Redials != 1 {
				t.Fatalf("%s@%d: redials = %d, want 1", label, k, s.Redials)
			}
		}
	}
}

// TestTruncateResume: a torn frame detaches the server side; the
// session resumes and the timeline is unchanged.
func TestTruncateResume(t *testing.T) {
	const n = 4
	want := cleanBaseline(t, n)
	proxy, qp, got := stormRun(t, n,
		netfault.Config{Script: []netfault.Event{{After: 3, Action: netfault.Truncate}}},
		fabrics.Config{Redial: redial})
	sameDones(t, got, want, "truncate")
	if st := proxy.Stats(); st.Truncates != 1 {
		t.Fatalf("truncates = %d, want 1", st.Truncates)
	}
	if s := qp.Stats(); s.Redials != 1 {
		t.Fatalf("redials = %d, want 1", s.Redials)
	}
}

// TestPartitionBackoff: the sever also refuses the next three dials,
// so the redial loop has to back off through ErrPartitioned before
// the session resumes.
func TestPartitionBackoff(t *testing.T) {
	const n = 4
	want := cleanBaseline(t, n)
	proxy, qp, got := stormRun(t, n,
		netfault.Config{Script: []netfault.Event{{After: 2, Action: netfault.Partition, RefuseDials: 3}}},
		fabrics.Config{Redial: redial})
	sameDones(t, got, want, "partition")
	st := proxy.Stats()
	if st.Partitions != 1 || st.RefusedDials != 3 {
		t.Fatalf("partitions = %d refused = %d, want 1 and 3", st.Partitions, st.RefusedDials)
	}
	if st.Dials != 2 {
		t.Fatalf("dials = %d, want 2 (initial + post-partition)", st.Dials)
	}
	if s := qp.Stats(); s.Redials != 1 {
		t.Fatalf("redials = %d, want 1", s.Redials)
	}
}

// TestDelayPassesThrough: a held frame delays wall-clock delivery but
// cannot touch virtual time, and triggers no redial.
func TestDelayPassesThrough(t *testing.T) {
	const n = 4
	want := cleanBaseline(t, n)
	proxy, qp, got := stormRun(t, n,
		netfault.Config{Script: []netfault.Event{{After: 2, Action: netfault.Delay, Delay: 30 * time.Millisecond}}},
		fabrics.Config{})
	sameDones(t, got, want, "delay")
	if st := proxy.Stats(); st.Delays != 1 {
		t.Fatalf("delays = %d, want 1", st.Delays)
	}
	if s := qp.Stats(); s.Redials != 0 {
		t.Fatalf("redials = %d, want 0", s.Redials)
	}
}

// TestStallRescuedByKeepAlive: a stalled connection stays open but
// silent — only the keep-alive deadline can detect it. The client's
// read deadline (KATO) fires before the server's reaper
// (KATO + KATO/4), so the resume lands while the session is still
// claimable, and the swallowed command replays.
func TestStallRescuedByKeepAlive(t *testing.T) {
	const n = 4
	want := cleanBaseline(t, n)
	proxy, qp, got := stormRun(t, n,
		netfault.Config{Script: []netfault.Event{{After: 2, Action: netfault.Stall}}},
		fabrics.Config{KeepAlive: 200 * time.Millisecond, Redial: redial})
	sameDones(t, got, want, "stall")
	if st := proxy.Stats(); st.Stalls != 1 {
		t.Fatalf("stalls = %d, want 1", st.Stalls)
	}
	if s := qp.Stats(); s.Redials != 1 {
		t.Fatalf("redials = %d, want 1", s.Redials)
	}
}
