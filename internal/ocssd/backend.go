package ocssd

// The durable backend gives the simulated device a life across process
// restarts, mirroring the QEMU OCSSD 2.0 device's file-backed storage:
// sector data persists to one flat file and chunk-state transitions
// append to a checksummed chunk-state log (the moral equivalent of
// QEMU's lchunkstate table, but as a log so a power cut can only ever
// tear its tail). Persistence is a wall-clock side effect: it never
// touches virtual timing, so enabling the backend does not perturb any
// scenario table.
//
// File layout (see DESIGN.md, "Durability & fault model"):
//
//	<path>        sector data, addressed by flat chunk index:
//	              offset = (flat*sectorsPerChunk + sector) * sectorSize
//	<path>.cklog  36-byte header, then 20-byte records:
//	              flat(4) state(1) zero(3) wp(4) wear(4) crc32(4)
//
// Records are appended on every durable transition — stripe program,
// reset, close, offline — and the last record per chunk wins at
// restore. A record is only appended after its data write, so a cut
// between the two leaves the write pointer pointing at fully persisted
// data (prefix consistency). A torn or short record at the log tail is
// detected by its checksum and truncated, never fatal.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

const (
	ckMagic     = "OXCKLOG1"
	ckVersion   = 1
	ckHeaderLen = 36 // magic(8) version(4) groups(4) pus(4) chunks(4) spc(4) secSize(4) crc(4)
	ckRecordLen = 20 // flat(4) state(1) zero(3) wp(4) wear(4) crc(4)
)

// ErrBackendGeometry rejects opening a backend formatted for a
// different device geometry.
var ErrBackendGeometry = errors.New("ocssd: backend geometry mismatch")

// chunkDurable is the restored durable state of one chunk.
type chunkDurable struct {
	state ChunkState
	wp    int
	wear  int
}

// backendStore owns the two backing files. Log appends are serialized
// by mu; data writes target disjoint offsets per parallel unit and need
// no lock of their own.
type backendStore struct {
	geo  Geometry
	data *os.File
	log  *os.File

	mu     sync.Mutex
	logOff int64
	dead   bool
}

// LogPath is the chunk-state log companion of a backend data file.
func LogPath(backendPath string) string { return backendPath + ".cklog" }

func encodeCkHeader(geo Geometry) []byte {
	h := make([]byte, ckHeaderLen)
	copy(h, ckMagic)
	binary.LittleEndian.PutUint32(h[8:], ckVersion)
	binary.LittleEndian.PutUint32(h[12:], uint32(geo.Groups))
	binary.LittleEndian.PutUint32(h[16:], uint32(geo.PUsPerGroup))
	binary.LittleEndian.PutUint32(h[20:], uint32(geo.ChunksPerPU))
	binary.LittleEndian.PutUint32(h[24:], uint32(geo.SectorsPerChunk()))
	binary.LittleEndian.PutUint32(h[28:], uint32(geo.Chip.SectorSize))
	binary.LittleEndian.PutUint32(h[32:], crc32.ChecksumIEEE(h[:32]))
	return h
}

// checkCkHeader validates a header against geo. ok=false means the
// header is absent or torn (treat the backend as unformatted); a
// non-nil error means it is valid but for another geometry.
func checkCkHeader(h []byte, geo Geometry) (bool, error) {
	if len(h) < ckHeaderLen || string(h[:8]) != ckMagic {
		return false, nil
	}
	if crc32.ChecksumIEEE(h[:32]) != binary.LittleEndian.Uint32(h[32:]) {
		return false, nil
	}
	if binary.LittleEndian.Uint32(h[8:]) != ckVersion {
		return false, nil
	}
	if binary.LittleEndian.Uint32(h[12:]) != uint32(geo.Groups) ||
		binary.LittleEndian.Uint32(h[16:]) != uint32(geo.PUsPerGroup) ||
		binary.LittleEndian.Uint32(h[20:]) != uint32(geo.ChunksPerPU) ||
		binary.LittleEndian.Uint32(h[24:]) != uint32(geo.SectorsPerChunk()) ||
		binary.LittleEndian.Uint32(h[28:]) != uint32(geo.Chip.SectorSize) {
		return false, fmt.Errorf("%w: log header does not match %v", ErrBackendGeometry, geo)
	}
	return true, nil
}

// openBackend opens (or formats) the backing files. With reset the
// files are truncated and a fresh header written; otherwise the chunk
// log is scanned — torn tail truncated — and the surviving chunk table
// returned for restore.
func openBackend(path string, geo Geometry, reset bool) (*backendStore, map[uint32]chunkDurable, error) {
	flags := os.O_RDWR | os.O_CREATE
	data, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("ocssd: backend data: %w", err)
	}
	logF, err := os.OpenFile(LogPath(path), flags, 0o644)
	if err != nil {
		data.Close()
		return nil, nil, fmt.Errorf("ocssd: backend log: %w", err)
	}
	b := &backendStore{geo: geo, data: data, log: logF}

	format := func() (*backendStore, map[uint32]chunkDurable, error) {
		if err := data.Truncate(0); err != nil {
			b.Close()
			return nil, nil, err
		}
		if err := logF.Truncate(0); err != nil {
			b.Close()
			return nil, nil, err
		}
		if _, err := logF.WriteAt(encodeCkHeader(geo), 0); err != nil {
			b.Close()
			return nil, nil, err
		}
		b.logOff = ckHeaderLen
		return b, nil, nil
	}
	if reset {
		return format()
	}

	raw, err := io.ReadAll(logF)
	if err != nil {
		b.Close()
		return nil, nil, fmt.Errorf("ocssd: backend log: %w", err)
	}
	ok, err := checkCkHeader(raw, geo)
	if err != nil {
		b.Close()
		return nil, nil, err
	}
	if !ok {
		// Absent or torn header: nothing durable yet — format fresh.
		return format()
	}

	table := make(map[uint32]chunkDurable)
	total := uint32(geo.Groups * geo.PUsPerGroup * geo.ChunksPerPU)
	off := ckHeaderLen
	for off+ckRecordLen <= len(raw) {
		rec := raw[off : off+ckRecordLen]
		if crc32.ChecksumIEEE(rec[:16]) != binary.LittleEndian.Uint32(rec[16:]) {
			break // torn tail
		}
		flat := binary.LittleEndian.Uint32(rec)
		if flat >= total {
			break // corrupt record: stop at the last good prefix
		}
		table[flat] = chunkDurable{
			state: ChunkState(rec[4]),
			wp:    int(binary.LittleEndian.Uint32(rec[8:])),
			wear:  int(binary.LittleEndian.Uint32(rec[12:])),
		}
		off += ckRecordLen
	}
	// Truncate the torn tail so future appends extend a clean log.
	if err := logF.Truncate(int64(off)); err != nil {
		b.Close()
		return nil, nil, err
	}
	b.logOff = int64(off)
	return b, table, nil
}

// dataOffset is the byte offset of (flat, sector) in the data file.
func (b *backendStore) dataOffset(flat uint32, sector int) int64 {
	return (int64(flat)*int64(b.geo.SectorsPerChunk()) + int64(sector)) * int64(b.geo.Chip.SectorSize)
}

// writeData persists sector bytes. A dead backend (post power-cut)
// silently drops writes: the simulated device has no power to persist.
func (b *backendStore) writeData(flat uint32, sector int, p []byte) error {
	b.mu.Lock()
	dead := b.dead
	b.mu.Unlock()
	if dead {
		return nil
	}
	if _, err := b.data.WriteAt(p, b.dataOffset(flat, sector)); err != nil {
		return fmt.Errorf("ocssd: backend data write: %w", err)
	}
	return nil
}

// readData reads sector bytes at restore; holes (never-written space)
// read as zeros.
func (b *backendStore) readData(flat uint32, sector int, p []byte) error {
	n, err := b.data.ReadAt(p, b.dataOffset(flat, sector))
	if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
		clear(p[n:])
		return nil
	}
	if err != nil {
		return fmt.Errorf("ocssd: backend data read: %w", err)
	}
	return nil
}

// logState appends one chunk-state record. Dead backends drop it.
func (b *backendStore) logState(flat uint32, state ChunkState, wp, wear int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dead {
		return nil
	}
	var rec [ckRecordLen]byte
	binary.LittleEndian.PutUint32(rec[0:], flat)
	rec[4] = byte(state)
	binary.LittleEndian.PutUint32(rec[8:], uint32(wp))
	binary.LittleEndian.PutUint32(rec[12:], uint32(wear))
	binary.LittleEndian.PutUint32(rec[16:], crc32.ChecksumIEEE(rec[:16]))
	if _, err := b.log.WriteAt(rec[:], b.logOff); err != nil {
		return fmt.Errorf("ocssd: backend log write: %w", err)
	}
	b.logOff += ckRecordLen
	return nil
}

// markDead stops all persistence: the power is gone.
func (b *backendStore) markDead() {
	b.mu.Lock()
	b.dead = true
	b.mu.Unlock()
}

// Close releases the backing files.
func (b *backendStore) Close() error {
	err1 := b.data.Close()
	err2 := b.log.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
