package ocssd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

// sectorFill is the deterministic content oracle: every sector's fill
// byte is a pure function of its address.
func sectorFill(id ChunkID, sector int) byte {
	return byte(sector*7 + id.Chunk*31 + id.PU*13 + id.Group*3 + 1)
}

func fillSectors(geo Geometry, id ChunkID, start, n int) []byte {
	sz := geo.Chip.SectorSize
	out := make([]byte, n*sz)
	for s := 0; s < n; s++ {
		v := sectorFill(id, start+s)
		blk := out[s*sz : (s+1)*sz]
		for i := range blk {
			blk[i] = v
		}
	}
	return out
}

// checkSector reads one sector from the device and compares it against
// the content oracle (or zeros for padded sectors).
func checkSector(t *testing.T, d *Device, p PPA, want byte) {
	t.Helper()
	sz := d.Geometry().Chip.SectorSize
	buf := make([]byte, sz)
	if _, err := d.VectorRead(0, []PPA{p}, buf); err != nil {
		t.Fatalf("read %v: %v", p, err)
	}
	for i, b := range buf {
		if b != want {
			t.Fatalf("%v byte %d = %#x, want %#x", p, i, b, want)
		}
	}
}

func TestBackendRoundTrip(t *testing.T) {
	geo := smallGeo()
	path := filepath.Join(t.TempDir(), "dev.img")
	opts := Options{Seed: 7, PowerLossProtected: true, BackendPath: path}
	d := newDev(t, geo, opts)
	spc := geo.SectorsPerChunk()

	closed := ChunkID{0, 0, 0}
	open := ChunkID{1, 1, 3}
	worn := ChunkID{0, 1, 2}

	// Fill one chunk completely (ends Closed).
	for s := 0; s < spc; s += geo.WSMin {
		if _, _, err := d.Append(0, closed, fillSectors(geo, closed, s, geo.WSMin)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	// Leave another mid-chunk with a buffered partial stripe.
	openSectors := geo.WSOpt + 2*geo.WSMin
	for s := 0; s < openSectors; s += geo.WSMin {
		if _, _, err := d.Append(0, open, fillSectors(geo, open, s, geo.WSMin)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	// Write and reset a third chunk so wear survives the round trip.
	if _, _, err := d.Append(0, worn, fillSectors(geo, worn, 0, geo.WSMin)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if _, err := d.Reset(0, worn); err != nil {
		t.Fatalf("reset: %v", err)
	}
	if _, err := d.FlushAll(0); err != nil {
		t.Fatalf("flush: %v", err)
	}
	before := d.Report()
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	d2, err := OpenDevice(geo, opts)
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	defer d2.Close()
	after := d2.Report()
	if len(before) != len(after) {
		t.Fatalf("report lengths differ: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("chunk %v restored as %+v, want %+v", before[i].ID, after[i], before[i])
		}
	}
	for s := 0; s < spc; s++ {
		checkSector(t, d2, closed.PPAOf(s), sectorFill(closed, s))
	}
	for s := 0; s < openSectors; s++ {
		checkSector(t, d2, open.PPAOf(s), sectorFill(open, s))
	}
	// FlushAll padded the open chunk to the next stripe boundary: those
	// sectors must read back as zeros.
	padded := openSectors + (geo.WSOpt-openSectors%geo.WSOpt)%geo.WSOpt
	for s := openSectors; s < padded; s++ {
		checkSector(t, d2, open.PPAOf(s), 0)
	}
	// The restored open chunk accepts further appends at its write pointer.
	if _, _, err := d2.Append(0, open, fillSectors(geo, open, padded, geo.WSMin)); err != nil {
		t.Fatalf("append after restore: %v", err)
	}
}

// TestChunkLogTornTailProperty crashes the chunk-state log at every
// byte offset: reopening must always succeed and restore exactly the
// table described by the longest valid record prefix.
func TestChunkLogTornTailProperty(t *testing.T) {
	geo := smallGeo()
	dir := t.TempDir()
	path := filepath.Join(dir, "dev.img")
	d := newDev(t, geo, Options{Seed: 1, BackendPath: path})
	ids := []ChunkID{{0, 0, 1}, {0, 1, 5}, {1, 0, 2}}
	for _, id := range ids {
		for s := 0; s < geo.SectorsPerChunk(); s += geo.WSOpt {
			if _, _, err := d.Append(0, id, fillSectors(geo, id, s, geo.WSOpt)); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
	}
	if _, err := d.Reset(0, ids[0]); err != nil {
		t.Fatalf("reset: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	raw, err := os.ReadFile(LogPath(path))
	if err != nil {
		t.Fatal(err)
	}
	dataRaw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if (len(raw)-ckHeaderLen)%ckRecordLen != 0 || len(raw) <= ckHeaderLen {
		t.Fatalf("unexpected log size %d", len(raw))
	}

	// expectTable replays the first k records by hand.
	expectTable := func(k int) map[uint32]chunkDurable {
		out := make(map[uint32]chunkDurable)
		for r := 0; r < k; r++ {
			rec := raw[ckHeaderLen+r*ckRecordLen:]
			out[binary.LittleEndian.Uint32(rec)] = chunkDurable{
				state: ChunkState(rec[4]),
				wp:    int(binary.LittleEndian.Uint32(rec[8:])),
				wear:  int(binary.LittleEndian.Uint32(rec[12:])),
			}
		}
		return out
	}
	sameTable := func(t *testing.T, got, want map[uint32]chunkDurable) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("table size %d, want %d", len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("chunk %d restored as %+v, want %+v", k, got[k], v)
			}
		}
	}

	crash := filepath.Join(dir, "crash.img")
	for cut := 0; cut <= len(raw); cut++ {
		if err := os.WriteFile(crash, dataRaw, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(LogPath(crash), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		b, table, err := openBackend(crash, geo, false)
		if err != nil {
			t.Fatalf("cut %d: openBackend: %v", cut, err)
		}
		want := map[uint32]chunkDurable{}
		if cut >= ckHeaderLen {
			want = expectTable((cut - ckHeaderLen) / ckRecordLen)
		}
		sameTable(t, table, want)
		// The truncated log must accept fresh appends.
		if err := b.logState(0, ChunkFree, 0, 9); err != nil {
			t.Fatalf("cut %d: append after truncation: %v", cut, err)
		}
		b.Close()
	}

	// A corrupted record mid-log stops the scan at the last good prefix.
	nrec := (len(raw) - ckHeaderLen) / ckRecordLen
	for r := 0; r < nrec; r++ {
		bad := append([]byte(nil), raw...)
		bad[ckHeaderLen+r*ckRecordLen+5] ^= 0xff
		if err := os.WriteFile(crash, dataRaw, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(LogPath(crash), bad, 0o644); err != nil {
			t.Fatal(err)
		}
		b, table, err := openBackend(crash, geo, false)
		if err != nil {
			t.Fatalf("record %d: openBackend: %v", r, err)
		}
		sameTable(t, table, expectTable(r))
		b.Close()
	}
}

// TestPowerCutNeverLosesAckedWrites sweeps a power cut across every
// media-op index of a PLP write burst: after reopening from the
// backend, every acknowledged write must read back intact.
func TestPowerCutNeverLosesAckedWrites(t *testing.T) {
	geo := smallGeo()
	chunks := []ChunkID{{0, 0, 1}, {0, 1, 2}, {1, 0, 3}, {1, 1, 4}}
	spc := geo.SectorsPerChunk()
	for cut := int64(1); cut <= 50; cut++ {
		path := filepath.Join(t.TempDir(), fmt.Sprintf("dev%d.img", cut))
		inj := fault.New(fault.Config{Seed: cut})
		opts := Options{Seed: 3, PowerLossProtected: true, BackendPath: path, Faults: inj}
		d := newDev(t, geo, opts)
		inj.PowerCut(cut)

		wp := map[ChunkID]int{}
		var acked []PPA
		dead := false
		for round := 0; round < 120 && !dead; round++ {
			id := chunks[round%len(chunks)]
			if wp[id]+geo.WSMin > spc {
				continue
			}
			_, _, err := d.Append(0, id, fillSectors(geo, id, wp[id], geo.WSMin))
			switch {
			case errors.Is(err, fault.ErrPowerCut):
				dead = true
				continue
			case err != nil:
				t.Fatalf("cut %d: append: %v", cut, err)
			}
			for s := 0; s < geo.WSMin; s++ {
				acked = append(acked, id.PPAOf(wp[id]+s))
			}
			wp[id] += geo.WSMin
			if round%9 == 4 {
				if _, err := d.Pad(0, id); errors.Is(err, fault.ErrPowerCut) {
					dead = true
				} else if err != nil {
					t.Fatalf("cut %d: pad: %v", cut, err)
				} else {
					wp[id] += (geo.WSOpt - wp[id]%geo.WSOpt) % geo.WSOpt
				}
			}
			if round%7 == 2 && len(acked) > 0 {
				buf := make([]byte, geo.Chip.SectorSize)
				if _, err := d.VectorRead(0, acked[:1], buf); errors.Is(err, fault.ErrPowerCut) {
					dead = true
				} else if err != nil {
					t.Fatalf("cut %d: read: %v", cut, err)
				}
			}
		}
		d.Close()

		reopened, err := OpenDevice(geo, Options{Seed: 3, PowerLossProtected: true, BackendPath: path})
		if err != nil {
			t.Fatalf("cut %d: OpenDevice: %v", cut, err)
		}
		for _, p := range acked {
			checkSector(t, reopened, p, sectorFill(p.ChunkOf(), p.Sector))
		}
		reopened.Close()
	}
}

// TestTornWriteCut drops power on a stripe program of an unprotected
// device with torn writes enabled: the restored write pointer must be
// stripe-aligned and cover only intact pre-cut data, and sectors at or
// beyond it must read as unwritten.
func TestTornWriteCut(t *testing.T) {
	geo := smallGeo()
	id := ChunkID{0, 0, 1}
	for seed := int64(1); seed <= 10; seed++ {
		path := filepath.Join(t.TempDir(), "dev.img")
		inj := fault.New(fault.Config{Seed: seed, TornWrites: true})
		d := newDev(t, geo, Options{Seed: 3, BackendPath: path, Faults: inj})
		inj.PowerCut(3) // dies on the third stripe program

		var lastErr error
		written := 0
		for s := 0; s < geo.SectorsPerChunk(); s += geo.WSOpt {
			_, _, lastErr = d.Append(0, id, fillSectors(geo, id, s, geo.WSOpt))
			if lastErr != nil {
				break
			}
			written += geo.WSOpt
		}
		if !errors.Is(lastErr, fault.ErrPowerCut) {
			t.Fatalf("seed %d: want power cut, got %v", seed, lastErr)
		}
		d.Close()

		reopened, err := OpenDevice(geo, Options{Seed: 3, BackendPath: path})
		if err != nil {
			t.Fatalf("seed %d: OpenDevice: %v", seed, err)
		}
		info, err := reopened.Chunk(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.WP%geo.WSOpt != 0 || info.WP != written {
			t.Fatalf("seed %d: restored wp %d, want %d (stripe-aligned pre-cut data)", seed, info.WP, written)
		}
		for s := 0; s < info.WP; s++ {
			checkSector(t, reopened, id.PPAOf(s), sectorFill(id, s))
		}
		if info.WP < geo.SectorsPerChunk() {
			buf := make([]byte, geo.Chip.SectorSize)
			if _, err := reopened.VectorRead(0, []PPA{id.PPAOf(info.WP)}, buf); !errors.Is(err, ErrUnwritten) {
				t.Fatalf("seed %d: torn sector readable: %v", seed, err)
			}
		}
		reopened.Close()
	}
}

func TestOpenDeviceGeometryMismatch(t *testing.T) {
	geo := smallGeo()
	path := filepath.Join(t.TempDir(), "dev.img")
	d := newDev(t, geo, Options{Seed: 1, BackendPath: path})
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	other := geo
	other.Groups = 1
	other = Finish(other)
	if _, err := OpenDevice(other, Options{Seed: 1, BackendPath: path}); !errors.Is(err, ErrBackendGeometry) {
		t.Fatalf("want ErrBackendGeometry, got %v", err)
	}
	// A valid-looking but torn header is formatted fresh, not fatal.
	if err := os.WriteFile(LogPath(path), []byte("OXCKLOG1 short"), 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDevice(geo, Options{Seed: 1, BackendPath: path})
	if err != nil {
		t.Fatalf("torn header must format fresh: %v", err)
	}
	d2.Close()
}

func TestInjectedReadErrorsGrowBad(t *testing.T) {
	geo := smallGeo()
	inj := fault.New(fault.Config{Seed: 1, ReadErrorRate: 1, GrowBadAfter: 2})
	d := newDev(t, geo, Options{Seed: 1, Faults: inj})
	id := ChunkID{0, 0, 1}
	if _, _, err := d.Append(0, id, fillSectors(geo, id, 0, geo.WSOpt)); err != nil {
		t.Fatalf("append: %v", err)
	}
	buf := make([]byte, geo.Chip.SectorSize)
	for i := 0; i < 2; i++ {
		if _, err := d.VectorRead(0, []PPA{id.PPAOf(0)}, buf); !errors.Is(err, fault.ErrReadError) {
			t.Fatalf("read %d: want ErrReadError, got %v", i, err)
		}
	}
	info, err := d.Chunk(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != ChunkOffline {
		t.Fatalf("chunk not retired: %v", info.State)
	}
	if _, err := d.VectorRead(0, []PPA{id.PPAOf(0)}, buf); !errors.Is(err, ErrOffline) {
		t.Fatalf("want ErrOffline after grow-bad, got %v", err)
	}
	fl := d.FaultLog()
	if fl.Injected.ReadErrors != 2 || fl.Injected.GrownBad != 1 || fl.GrownBadChunks != 1 {
		t.Fatalf("fault log counters: %+v", fl)
	}
	if len(fl.Events) == 0 || fl.Events[len(fl.Events)-1].Chunk != id {
		t.Fatalf("fault log events: %+v", fl.Events)
	}
}
