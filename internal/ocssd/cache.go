package ocssd

import (
	"container/heap"
	"sync"

	"repro/internal/vclock"
)

// cacheTracker models the controller's write-back cache occupancy in
// virtual time. Each admitted write occupies cache space until its data
// has been programmed to NAND (its "free at" instant, known when the
// flush is scheduled). Admission of a new write may have to wait until
// enough earlier entries drain.
type cacheTracker struct {
	mu       sync.Mutex
	capacity int64
	occupied int64
	entries  entryHeap // pending entries ordered by freeAt
}

type cacheEntry struct {
	freeAt vclock.Time
	bytes  int64
}

type entryHeap []cacheEntry

func (h entryHeap) Len() int           { return len(h) }
func (h entryHeap) Less(i, j int) bool { return h[i].freeAt < h[j].freeAt }
func (h entryHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x any)        { *h = append(*h, x.(cacheEntry)) }
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func newCacheTracker(capacity int64) *cacheTracker {
	return &cacheTracker{capacity: capacity}
}

// enabled reports whether write-back caching is on.
func (c *cacheTracker) enabled() bool { return c != nil && c.capacity > 0 }

// admit returns the earliest instant ≥ now at which bytes of cache space
// are available, draining entries whose flushes complete by then. The
// space is reserved; release it by scheduling the flush with occupy.
func (c *cacheTracker) admit(now vclock.Time, bytes int64) vclock.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := now
	// Drain everything already flushed by t.
	for len(c.entries) > 0 && c.entries[0].freeAt <= t {
		e := heap.Pop(&c.entries).(cacheEntry)
		c.occupied -= e.bytes
	}
	// Wait for further drains until the new entry fits. An over-sized
	// write proceeds once the cache is fully drained (occupancy may then
	// transiently exceed capacity, as with any single huge I/O).
	for c.occupied+bytes > c.capacity && len(c.entries) > 0 {
		e := heap.Pop(&c.entries).(cacheEntry)
		c.occupied -= e.bytes
		if e.freeAt > t {
			t = e.freeAt
		}
	}
	c.occupied += bytes
	return t
}

// occupy records that the bytes admitted earlier will be freed at freeAt
// (the virtual completion of their NAND program).
func (c *cacheTracker) occupy(freeAt vclock.Time, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// admit already counted these bytes as occupied; the entry just
	// records when future admissions may drain them. Every admitted byte
	// must be covered by exactly one occupy call so holds never leak.
	heap.Push(&c.entries, cacheEntry{freeAt: freeAt, bytes: bytes})
}

// occupancy reports bytes held at the given instant (for tests).
func (c *cacheTracker) occupancy(now vclock.Time) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.entries) > 0 && c.entries[0].freeAt <= now {
		e := heap.Pop(&c.entries).(cacheEntry)
		c.occupied -= e.bytes
	}
	return c.occupied
}
